package fakeclick

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDetectWithObserver verifies the facade's observability wiring: the
// run produces a trace whose ricd.detect span carries the Fig 8b phase
// split, the phase spans cover ≥ 90% of the reported Elapsed, the trace
// JSON round-trips, and the registry saw the run.
func TestDetectWithObserver(t *testing.T) {
	g, _ := syntheticGraph(t)
	cfg := smallConfig()
	o := NewObserver("ricd")
	cfg.Observer = o

	rep, err := Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("Report.Trace is nil with an Observer configured")
	}
	o.Trace.Finish()

	e := rep.Trace.Export()
	det := e.Find("ricd.detect")
	if det == nil {
		t.Fatalf("trace has no ricd.detect span; spans: %v", e.SpanNames())
	}
	for _, phase := range []string{"detection", "screening", "identification", "hotset", "graph_generator", "prune", "extract"} {
		if det.Find(phase) == nil {
			t.Errorf("trace missing %q span; spans: %v", phase, e.SpanNames())
		}
	}

	// Acceptance: phase spans cover ≥ 90% of the measured detection time.
	covered := det.CoveredDuration()
	if covered < time.Duration(0.9*float64(rep.Elapsed)) {
		t.Errorf("phase spans cover %v of Elapsed %v (< 90%%)", covered, rep.Elapsed)
	}

	data, err := rep.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Find("ricd.detect") == nil {
		t.Error("serialized trace lost the ricd.detect span")
	}

	if got := o.Counter("ricd.detections").Value(); got != 1 {
		t.Errorf("ricd.detections = %d, want 1", got)
	}
	if o.Histogram("ricd.detect").Count() != 1 {
		t.Error("ricd.detect histogram empty")
	}
	if len(o.Metrics.Snapshot()) == 0 {
		t.Error("metrics snapshot empty")
	}
}

// TestDetectObserverDisabled pins the no-op default: no observer, no
// trace, identical results.
func TestDetectObserverDisabled(t *testing.T) {
	g, _ := syntheticGraph(t)
	rep, err := Detect(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Error("Report.Trace should be nil without an Observer")
	}
}

// TestStreamObserver verifies sweep-type accounting on the incremental
// path: first sweep is full, later sweeps are incremental, and both are
// recorded distinctly.
func TestStreamObserver(t *testing.T) {
	g, ds := syntheticGraph(t)
	cfg := smallConfig()
	o := NewObserver("stream")
	cfg.Observer = o

	det, err := NewStreamDetector(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Sweep(); err != nil {
		t.Fatal(err)
	}
	det.AddClicks(uint32(ds.NumNormalUsers-1), uint32(ds.NumNormalItems-1), 1)
	rep, err := det.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("stream Report.Trace is nil with an Observer configured")
	}

	if got := o.Counter("stream.sweeps.full").Value(); got != 1 {
		t.Errorf("stream.sweeps.full = %d, want 1", got)
	}
	if got := o.Counter("stream.sweeps.incremental").Value(); got != 1 {
		t.Errorf("stream.sweeps.incremental = %d, want 1", got)
	}
	if got := o.Counter("stream.events").Value(); got != 1 {
		t.Errorf("stream.events = %d, want 1", got)
	}

	o.Trace.Finish()
	e := o.Trace.Export()
	var sweeps int
	for _, c := range e.Children {
		if c.Name == "stream.sweep" {
			sweeps++
		}
	}
	if sweeps != 2 {
		t.Errorf("trace has %d stream.sweep spans, want 2", sweeps)
	}
}

// TestDetectWithAuditSink verifies the facade's audit wiring: Config.Audit
// alone (no Observer) produces a JSONL trail bracketed by run.start /
// run.end with one verdict per reported group, while Report.Trace stays
// nil — the audit sink must not imply tracing.
func TestDetectWithAuditSink(t *testing.T) {
	g, _ := syntheticGraph(t)
	cfg := smallConfig()
	var buf bytes.Buffer
	cfg.Audit = NewAuditSink(&buf, 16)

	rep, err := Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Error("Report.Trace is non-nil without a configured Observer")
	}
	if len(rep.Groups) == 0 {
		t.Fatal("no groups; verdict assertions would be vacuous")
	}

	var first, last AuditEvent
	verdicts := 0
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	for i, line := range lines {
		var e AuditEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("audit line %d: %v", i+1, err)
		}
		if i == 0 {
			first = e
		}
		last = e
		if e.Type == obs.EventGroupVerdict {
			verdicts++
			if e.Score != rep.Groups[e.Group-1].Score {
				t.Errorf("verdict for group %d has score %v, report says %v",
					e.Group, e.Score, rep.Groups[e.Group-1].Score)
			}
		}
	}
	if first.Type != obs.EventRunStart || last.Type != obs.EventRunEnd {
		t.Errorf("trail bracketed by %q..%q, want run.start..run.end", first.Type, last.Type)
	}
	if verdicts != len(rep.Groups) {
		t.Errorf("%d verdicts for %d groups", verdicts, len(rep.Groups))
	}
	// The ring keeps the most recent events for in-process inspection.
	ring := cfg.Audit.Events()
	if len(ring) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(ring))
	}
	if ring[len(ring)-1].Type != obs.EventRunEnd {
		t.Errorf("ring tail is %q, want run.end", ring[len(ring)-1].Type)
	}
}
