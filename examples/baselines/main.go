// Baseline bake-off: run RICD and every competitor from the paper's
// evaluation (LPA, Common Neighbors, Louvain, COPYCATCH, FRAUDAR, the
// naive algorithm — each with the screening module attached, as in Fig 8)
// on the same synthetic workload and print precision/recall/F1 and wall
// time side by side.
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// The full-scale dataset (1:1000 of the paper's Taobao table): on the
	// small test dataset every detector saturates; differentiation needs
	// the mega-campaign, the confuser populations, and the COPYCATCH
	// budget pressure that only appear at this scale.
	ds := synth.MustGenerate(synth.DefaultConfig())
	fmt.Printf("dataset: %v; %d labeled abnormal nodes in %d groups\n\n",
		ds.Graph, ds.Truth.NumAbnormal(), len(ds.Groups))

	p := core.DefaultParams()

	// The paper's Fig 8 competitor set plus the related-work detectors,
	// all from the registry; non-RICD entries get the +UI screening.
	var detectors []detect.Detector
	for _, name := range []string{"ricd", "lpa", "cn", "louvain", "copycatch",
		"fraudar", "naive", "quasi", "catchsync", "riskrules"} {
		d, err := baselines.New(name, p, name != "ricd")
		if err != nil {
			log.Fatal(err)
		}
		detectors = append(detectors, d)
	}

	fmt.Printf("%-14s %9s %9s %9s %12s\n", "detector", "precision", "recall", "F1", "elapsed")
	for _, d := range detectors {
		res, err := d.Detect(ds.Graph)
		if err != nil {
			log.Fatalf("%s: %v", d.Name(), err)
		}
		ev := metrics.Evaluate(res, ds.Truth)
		fmt.Printf("%-14s %9.3f %9.3f %9.3f %12v\n",
			d.Name(), ev.Precision, ev.Recall, ev.F1, res.Elapsed.Round(1e5))
	}
}
