// Adaptive adversary: the paper's strict attack model (Section III-A)
// assumes attackers know exactly how RICD works. This example plays that
// adversary: it sweeps the evasion knobs a crowd-work campaign controls —
// crew size, per-target click intensity, participation discipline, and
// camouflage volume — and reports, for each strategy, whether RICD catches
// the group and how much recommendation exposure the attack bought. The
// punchline is the paper's property (3): every strategy that stays invisible
// also stays useless, because evading the (α,k₁,k₂)-biclique extraction
// caps the fake co-click mass an attacker can place.
package main

import (
	"fmt"
	"log"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/i2i"
	"repro/internal/metrics"
	"repro/internal/synth"
)

type strategy struct {
	name          string
	attackers     int
	targetClicks  int
	participation float64
	camoItems     int
}

func main() {
	log.SetFlags(0)

	strategies := []strategy{
		{"textbook (paper-optimal)", 16, 16, 0.95, 3},
		{"bigger crew", 30, 16, 0.95, 3},
		{"lighter touch", 16, 8, 0.95, 3},
		{"sloppy crew (low participation)", 16, 16, 0.55, 3},
		{"tiny crew (below k1)", 7, 16, 0.95, 3},
		{"camouflage heavy", 16, 16, 0.95, 20},
		{"whisper attack (tiny + light)", 7, 6, 0.95, 3},
		{"saturation (targets go hot)", 60, 18, 0.95, 3},
	}

	// T_hot is the operator's main defense against the saturation evasion
	// of Fig 9e: set it above any plausible single-campaign fake-click
	// mass. In this 2k-user marketplace that is ~800 clicks.
	params := core.DefaultParams()
	params.THot = 800

	fmt.Printf("%-34s %8s %9s %9s %10s\n",
		"strategy", "caught?", "recall", "precision", "exposure")
	for _, s := range strategies {
		caught, recall, precision, exposure := playStrategy(s, params)
		caughtStr := "no"
		if caught {
			caughtStr = "YES"
		}
		fmt.Printf("%-34s %8s %9.2f %9.2f %9.1f%%\n",
			s.name, caughtStr, recall, precision, 100*exposure)
	}
	fmt.Println("\nreading the table: every strategy that stays under RICD's radar had to")
	fmt.Println("give up fake co-click mass — fewer workers, fewer clicks, or weaker")
	fmt.Println("discipline (the Zarankiewicz cap of property 3). In this toy 2k-user")
	fmt.Println("marketplace that reduced mass still hijacks slots, because the hot items'")
	fmt.Println("organic co-click mass is thin; at Taobao scale the same capped budget")
	fmt.Println("drowns in millions of organic co-clicks (Eq 1 dilution) and buys nothing.")
	fmt.Println("The one exception, saturating targets past T_hot (the Fig 9e evasion),")
	fmt.Println("demands so much fake mass that a brand-new item leaping into the hot")
	fmt.Println("range is trivially caught by newness rules outside RICD.")
}

// playStrategy builds a marketplace with one attack group following the
// strategy, runs RICD, and measures both detection and the attack's payoff
// (share of the ridden hot items' top-10 slots captured by targets).
func playStrategy(s strategy, params core.Params) (caught bool, recall, precision, exposure float64) {
	cfg := synth.SmallConfig()
	cfg.Attack.Groups = 1
	cfg.Attack.CampaignGroups = 0
	cfg.Attack.AttackersMin = s.attackers
	cfg.Attack.AttackersMax = s.attackers
	cfg.Attack.TargetClicksMin = s.targetClicks
	cfg.Attack.TargetClicksMax = s.targetClicks + 4
	cfg.Attack.Participation = s.participation
	cfg.Attack.CamouflageItemsMin = s.camoItems
	cfg.Attack.CamouflageItemsMax = s.camoItems

	ds, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := &core.Detector{Params: params}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		log.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	caught = len(res.Groups) > 0 && ev.Recall > 0.3

	// Attack payoff: exposure of the targets in the ridden hot items'
	// top-10 recommendation lists.
	grp := ds.Groups[0]
	targets := map[bipartite.NodeID]bool{}
	for _, v := range grp.Targets {
		targets[v] = true
	}
	e := i2i.TargetExposure(ds.Graph, grp.HotItems, targets, 10)
	return caught, ev.Recall, ev.Precision, e.Share()
}
