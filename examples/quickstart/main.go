// Quickstart: generate a small e-commerce click workload with implanted
// "Ride Item's Coattails" attacks, detect the attack groups through the
// public API, and show how cleaning the fake clicks restores the
// item-to-item recommendations.
package main

import (
	"fmt"
	"log"

	fakeclick "repro"
	"repro/internal/clicktable"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. A marketplace with 3 implanted attack groups (the synthetic
	// substitute for the paper's Taobao click table).
	ds := synth.MustGenerate(synth.SmallConfig())
	g := fakeclick.NewGraph()
	ds.Table.Each(func(r clicktable.Record) bool {
		g.AddClicks(r.UserID, r.ItemID, r.Clicks)
		return true
	})
	fmt.Printf("marketplace: %d users, %d items, %d click pairs\n",
		g.NumUsers(), g.NumItems(), g.NumEdges())

	// 2. Before detection: the attack has hijacked the hot item's
	// recommendation list.
	grp := ds.Groups[0]
	anchor := grp.HotItems[0]
	target := grp.Targets[0]
	fmt.Printf("\nI2I score of target %d next to hot item %d: %.4f\n",
		target, anchor, fakeclick.I2IScore(g, anchor, target))
	fmt.Printf("top-5 recommendations after clicking hot item %d: %v\n",
		anchor, fakeclick.Recommend(g, anchor, 5))

	// 3. Detect. T_hot=400 matches this marketplace's hot range; leaving
	// it zero would derive a threshold from the data instead.
	cfg := fakeclick.DefaultConfig()
	cfg.THot = 400
	cfg.TClick = 12
	rep, err := fakeclick.Detect(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetected %d attack groups in %v:\n", len(rep.Groups), rep.Elapsed)
	for i, grp := range rep.Groups {
		fmt.Printf("  group %d: %d crowd-worker accounts, %d target items (risk %.1f)\n",
			i+1, len(grp.Users), len(grp.Items), grp.Score)
	}
	fmt.Println("highest-risk accounts:")
	for _, n := range rep.TopUsers(3) {
		fmt.Printf("  user %d (risk score %.0f)\n", n.ID, n.Score)
	}

	// 4. Clean the fake clicks and watch the manipulation collapse.
	cleaned := fakeclick.CleanClicks(g, rep)
	fmt.Printf("\nafter cleaning: %d click pairs remain\n", cleaned.NumEdges())
	fmt.Printf("I2I score of target %d next to hot item %d: %.4f\n",
		target, anchor, fakeclick.I2IScore(cleaned, anchor, target))
	fmt.Printf("top-5 recommendations after clicking hot item %d: %v\n",
		anchor, fakeclick.Recommend(cleaned, anchor, 5))
}
