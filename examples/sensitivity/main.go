// Sensitivity sweep: explore how the RICD parameters trade precision
// against recall on a synthetic workload — a miniature of the paper's
// Fig 9 that an operator can rerun against their own traffic before
// choosing production thresholds, optionally finishing with the Fig 7
// feedback loop to hit a target output size.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	ds := synth.MustGenerate(synth.SmallConfig())
	base := core.DefaultParams()
	base.THot = 400

	sweep := func(name string, values []float64, mutate func(*core.Params, float64)) {
		fmt.Printf("%s sweep:\n", name)
		fmt.Printf("  %8s %9s %9s %9s %7s\n", name, "precision", "recall", "F1", "groups")
		for _, v := range values {
			p := base
			mutate(&p, v)
			d := &core.Detector{Params: p}
			res, err := d.Detect(ds.Graph)
			if err != nil {
				log.Fatal(err)
			}
			ev := metrics.Evaluate(res, ds.Truth)
			fmt.Printf("  %8v %9.3f %9.3f %9.3f %7d\n",
				v, ev.Precision, ev.Recall, ev.F1, len(res.Groups))
		}
		fmt.Println()
	}

	sweep("k1", []float64{5, 8, 10, 13, 16},
		func(p *core.Params, v float64) { p.K1 = int(v) })
	sweep("k2", []float64{5, 8, 10, 13, 16},
		func(p *core.Params, v float64) { p.K2 = int(v) })
	sweep("alpha", []float64{0.7, 0.8, 0.9, 1.0},
		func(p *core.Params, v float64) { p.Alpha = v })
	sweep("T_click", []float64{10, 12, 14, 16},
		func(p *core.Params, v float64) { p.TClick = uint32(v) })

	// The Fig 7 feedback loop: ask for more output than the strict
	// parameters yield and watch the loop relax T_click, α, k₁/k₂.
	strict := base
	strict.TClick = 18
	fr, err := core.DetectWithFeedback(ds.Graph, strict, ds.Truth.NumAbnormal(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feedback loop: started at T_click=18, finished after %d rounds "+
		"with T_click=%d alpha=%.1f k1=%d k2=%d → %d nodes (expectation %d, met=%v)\n",
		fr.Iterations, fr.Params.TClick, fr.Params.Alpha, fr.Params.K1, fr.Params.K2,
		fr.Result.NumNodes(), ds.Truth.NumAbnormal(), fr.MetExpectation)
}
