// Campaign monitor: the Section VII case study as a running application.
// A marketing campaign approaches; crowd workers start pumping fake clicks
// at the target items days before it begins. The monitor ingests the click
// stream day by day, runs RICD each morning, and cleans fake traffic the
// day the attack is caught — reproducing the Fig 10 timeline including the
// account-association audit of the caught group.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	fakeclick "repro"
	"repro/internal/clicktable"
	"repro/internal/i2i"
	"repro/internal/synth"
)

const days = 6

func main() {
	log.SetFlags(0)

	ds := synth.MustGenerate(synth.SmallConfig())
	cfg := fakeclick.DefaultConfig()
	cfg.THot = 400
	cfg.TClick = 12

	fmt.Println("== daily monitoring (attack clicks accumulate day by day) ==")
	caughtDay := 0
	for day := 1; day <= days; day++ {
		g := snapshotAt(ds, float64(day)/days)
		rep, err := fakeclick.Detect(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: %6d clicks, %2d suspicious groups, %3d accounts flagged\n",
			day, g.TotalClicks(), len(rep.Groups), len(rep.Users))
		if caughtDay == 0 && len(rep.Groups) == len(ds.Groups) {
			caughtDay = day
		}
	}
	if caughtDay == 0 {
		fmt.Println("not every group matured within the window")
	} else {
		fmt.Printf("all %d implanted groups caught by day %d\n", len(ds.Groups), caughtDay)
	}

	// The caught group's agency audit (the paper: >85% of caught accounts
	// are associated with each other).
	g := snapshotAt(ds, 1)
	rep, err := fakeclick.Detect(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	agencyOf := map[uint32]int{}
	for _, grp := range ds.Groups {
		for i, u := range grp.Attackers {
			agencyOf[u] = grp.Agency[i]
		}
	}
	if len(rep.Groups) > 0 {
		counts := map[int]int{}
		total := 0
		for _, u := range rep.Groups[0].Users {
			if ag, ok := agencyOf[u]; ok {
				counts[ag]++
				total++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if total > 0 {
			fmt.Printf("account association in the top group: %.0f%% share one agency\n",
				100*float64(best)/float64(total))
		}
	}

	// The Fig 10 traffic timeline for one target item, from the campaign
	// traffic model.
	fmt.Println("\n== Fig 10: target-item traffic through the campaign ==")
	timeline, err := i2i.SimulateCampaign(i2i.DefaultCampaignConfig())
	if err != nil {
		log.Fatal(err)
	}
	maxTotal := 0.0
	for _, pt := range timeline {
		if pt.Total() > maxTotal {
			maxTotal = pt.Total()
		}
	}
	for _, pt := range timeline {
		bar := strings.Repeat("#", int(math.Round(pt.Total()/maxTotal*40)))
		note := ""
		switch pt.Day {
		case 3:
			note = "  <- attack begins"
		case 6:
			note = "  <- campaign starts"
		case 9:
			note = "  <- RICD detects, clicks cleaned"
		case 13:
			note = "  <- seller delists the items"
		}
		fmt.Printf("day %2d %7.1f |%-40s|%s\n", pt.Day, pt.Total(), bar, note)
	}
}

// snapshotAt rebuilds the click graph with the attack traffic scaled to
// `frac` of its final volume; background traffic is fully present.
func snapshotAt(ds *synth.Dataset, frac float64) *fakeclick.Graph {
	g := fakeclick.NewGraph()
	ds.Table.Each(func(r clicktable.Record) bool {
		w := r.Clicks
		if int(r.UserID) >= ds.NumNormalUsers {
			w = uint32(math.Ceil(float64(r.Clicks) * frac))
		}
		g.AddClicks(r.UserID, r.ItemID, w)
		return true
	})
	return g
}
