// Streaming detection: the paper's Section VIII future-work direction as a
// running application. Click events arrive continuously; the incremental
// detector re-screens cached groups and scopes fresh extraction to the
// users touched since the last sweep, so each sweep after the first costs
// a fraction of a full batch detection.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	ds := synth.MustGenerate(synth.SmallConfig())

	// Split the dataset: background traffic is already in the warehouse,
	// the attack arrives as a live stream.
	background := clicktable.New(ds.Table.Len())
	var attack []clicktable.Record
	ds.Table.Each(func(r clicktable.Record) bool {
		if int(r.UserID) >= ds.NumNormalUsers {
			attack = append(attack, r)
		} else {
			background.AppendRecord(r)
		}
		return true
	})

	params := core.DefaultParams()
	params.THot = 400
	det, err := stream.New(background, params)
	if err != nil {
		log.Fatal(err)
	}

	// Initial sweep over clean traffic (full detection).
	res, err := det.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial sweep over %d background rows: %d groups (took %v)\n",
		background.Len(), len(res.Groups), res.Elapsed)

	// Stream the attack in five ticks, sweeping after each.
	chunk := (len(attack) + 4) / 5
	for tick := 0; tick < 5; tick++ {
		lo := tick * chunk
		hi := lo + chunk
		if hi > len(attack) {
			hi = len(attack)
		}
		det.AddBatch(attack[lo:hi])

		t0 := time.Now()
		res, err := det.Detect()
		if err != nil {
			log.Fatal(err)
		}
		incElapsed := time.Since(t0)

		ev := metrics.Evaluate(res, ds.Truth)
		fmt.Printf("tick %d: +%3d events | %d groups | recall %.2f precision %.2f | sweep %v\n",
			tick+1, hi-lo, len(res.Groups), ev.Recall, ev.Precision, incElapsed.Round(time.Microsecond))
	}

	// Compare the final incremental state against a from-scratch batch run.
	t0 := time.Now()
	full, err := det.FullDetect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference batch detection: %d groups in %v (incremental sweeps above "+
		"re-used cached groups + dirty-region scoping)\n",
		len(full.Groups), time.Since(t0).Round(time.Microsecond))
}
