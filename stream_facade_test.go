package fakeclick

import (
	"testing"

	"repro/internal/clicktable"
)

func TestStreamDetectorCatchesStreamedAttack(t *testing.T) {
	g, ds := syntheticGraph(t)

	// Warm-start from the background traffic only.
	background := NewGraph()
	var attack []clicktable.Record
	ds.Table.Each(func(r clicktable.Record) bool {
		if int(r.UserID) >= ds.NumNormalUsers {
			attack = append(attack, r)
		} else {
			background.AddClicks(r.UserID, r.ItemID, r.Clicks)
		}
		return true
	})

	sd, err := NewStreamDetector(background, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 0 {
		t.Fatalf("clean traffic produced %d groups", len(rep.Groups))
	}

	for _, r := range attack {
		sd.AddClicks(r.UserID, r.ItemID, r.Clicks)
	}
	rep, err = sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("streamed attack not detected")
	}
	tp := 0
	for _, u := range rep.Users {
		if ds.Truth.Users[u] {
			tp++
		}
	}
	if prec := float64(tp) / float64(len(rep.Users)); prec < 0.9 {
		t.Errorf("stream precision = %v, want ≥ 0.9", prec)
	}
	if len(rep.RankedUsers) == 0 {
		t.Error("no ranked users in stream report")
	}
	_ = g // the unsplit graph is only used to derive the dataset
}

func TestStreamDetectorFullSweepAgrees(t *testing.T) {
	g, _ := syntheticGraph(t)
	sd, err := NewStreamDetector(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	full, err := sd.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Groups) != len(full.Groups) {
		t.Errorf("first sweep %d groups, full sweep %d", len(inc.Groups), len(full.Groups))
	}
}

func TestStreamDetectorEmptyStart(t *testing.T) {
	cfg := smallConfig()
	sd, err := NewStreamDetector(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 0 {
		t.Errorf("empty stream produced groups")
	}
}

func TestStreamDetectorValidatesConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Alpha = 7
	if _, err := NewStreamDetector(nil, cfg); err == nil {
		t.Error("expected config error")
	}
}
