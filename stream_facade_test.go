package fakeclick

import (
	"testing"

	"repro/internal/clicktable"
)

func TestStreamDetectorCatchesStreamedAttack(t *testing.T) {
	g, ds := syntheticGraph(t)

	// Warm-start from the background traffic only.
	background := NewGraph()
	var attack []clicktable.Record
	ds.Table.Each(func(r clicktable.Record) bool {
		if int(r.UserID) >= ds.NumNormalUsers {
			attack = append(attack, r)
		} else {
			background.AddClicks(r.UserID, r.ItemID, r.Clicks)
		}
		return true
	})

	sd, err := NewStreamDetector(background, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 0 {
		t.Fatalf("clean traffic produced %d groups", len(rep.Groups))
	}

	for _, r := range attack {
		sd.AddClicks(r.UserID, r.ItemID, r.Clicks)
	}
	rep, err = sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("streamed attack not detected")
	}
	tp := 0
	for _, u := range rep.Users {
		if ds.Truth.Users[u] {
			tp++
		}
	}
	if prec := float64(tp) / float64(len(rep.Users)); prec < 0.9 {
		t.Errorf("stream precision = %v, want ≥ 0.9", prec)
	}
	if len(rep.RankedUsers) == 0 {
		t.Error("no ranked users in stream report")
	}
	_ = g // the unsplit graph is only used to derive the dataset
}

func TestStreamDetectorFullSweepAgrees(t *testing.T) {
	g, _ := syntheticGraph(t)
	sd, err := NewStreamDetector(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	full, err := sd.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Groups) != len(full.Groups) {
		t.Errorf("first sweep %d groups, full sweep %d", len(inc.Groups), len(full.Groups))
	}
}

func TestStreamDetectorEmptyStart(t *testing.T) {
	cfg := smallConfig()
	sd, err := NewStreamDetector(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 0 {
		t.Errorf("empty stream produced groups")
	}
}

func TestStreamDetectorValidatesConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Alpha = 7
	if _, err := NewStreamDetector(nil, cfg); err == nil {
		t.Error("expected config error")
	}
}

// TestStreamDetectorDurableRecovery exercises the facade's durable mode:
// stream an attack into a detector backed by Config.Durability, abandon it
// without Close (a crash), reopen the same directory, and require the
// recovered detector to report the same groups as the dead one did.
func TestStreamDetectorDurableRecovery(t *testing.T) {
	_, ds := syntheticGraph(t)
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.Durability = &StreamDurability{Dir: dir, SnapshotEvery: 500}

	if _, err := NewStreamDetector(NewGraph(), cfg); err == nil {
		t.Fatal("durable detector accepted a warm-start graph")
	}
	noThresholds := cfg
	noThresholds.THot = 0
	if _, err := NewStreamDetector(nil, noThresholds); err == nil {
		t.Fatal("durable detector accepted derived thresholds")
	}

	sd, err := NewStreamDetector(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := sd.Recovery(); rec == nil || !rec.ColdStart {
		t.Fatalf("fresh directory recovery = %+v, want cold start", rec)
	}
	ds.Table.Each(func(r clicktable.Record) bool {
		sd.AddClicks(r.UserID, r.ItemID, r.Clicks)
		return true
	})
	rep, err := sd.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("streamed attack not detected before the crash")
	}
	if err := sd.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	// Crash: the detector is abandoned, sd.Close() never runs.

	sd2, err := NewStreamDetector(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sd2.Close()
	rec := sd2.Recovery()
	if rec == nil || rec.ColdStart {
		t.Fatalf("recovery = %+v, want warm", rec)
	}
	if rec.SnapshotClock == 0 && rec.ReplayedRecords == 0 {
		t.Fatalf("recovery reconstructed nothing: %+v", rec)
	}
	rep2, err := sd2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Groups) != len(rep.Groups) {
		t.Fatalf("recovered sweep found %d groups, pre-crash found %d", len(rep2.Groups), len(rep.Groups))
	}
	for i := range rep.Groups {
		if rep2.Groups[i].Score != rep.Groups[i].Score ||
			len(rep2.Groups[i].Users) != len(rep.Groups[i].Users) ||
			len(rep2.Groups[i].Items) != len(rep.Groups[i].Items) {
			t.Fatalf("group %d diverged after recovery:\n pre-crash %+v\n recovered %+v",
				i, rep.Groups[i], rep2.Groups[i])
		}
	}
	if err := sd2.Snapshot(); err != nil {
		t.Fatal(err)
	}
}
