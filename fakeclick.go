// Package fakeclick detects large-scale fake click information — the
// "Ride Item's Coattails" attack — in e-commerce user-item click logs. It
// is the public facade of a from-scratch reproduction of:
//
//	Li, Li, Huang, Zhang, Wang, Lu, Zhou.
//	"Large-scale Fake Click Detection for E-commerce Recommendation
//	Systems", ICDE 2021.
//
// The attack forges co-clicks between popular ("hot") items and low-quality
// target items so that item-to-item recommenders surface the targets next
// to the hot items. The detector (RICD) models each attack group as a
// dense near-biclique in the user-item click graph, extracts candidates
// with the (α,k₁,k₂)-extension biclique pruning of the paper's Algorithm 3,
// screens them with the user-behavior and item-behavior checks of
// Section V-B, and ranks survivors by risk score.
//
// Quick start:
//
//	g := fakeclick.NewGraph()
//	for _, r := range records {
//	    g.AddClicks(r.UserID, r.ItemID, r.Clicks)
//	}
//	report, err := fakeclick.Detect(g, fakeclick.DefaultConfig())
//	...
//	for _, grp := range report.Groups { ... }
package fakeclick

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/i2i"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Graph is a user-item click graph under construction or ready for
// detection. User and item IDs are independent dense uint32 namespaces.
type Graph struct {
	builder *bipartite.Builder
	built   *bipartite.Graph
}

// NewGraph returns an empty click graph.
func NewGraph() *Graph {
	return &Graph{builder: bipartite.NewBuilder(0, 0)}
}

// AddClicks records that user clicked item `clicks` times. Duplicate pairs
// accumulate. Adding clicks after a Detect call is allowed; the graph is
// rebuilt lazily.
func (g *Graph) AddClicks(user, item uint32, clicks uint32) {
	g.builder.Add(user, item, clicks)
	g.built = nil
}

// LoadCSV ingests a click table in the repository's CSV interchange format
// (header "user_id,item_id,click").
func (g *Graph) LoadCSV(r io.Reader) error {
	tbl, err := clicktable.ReadCSV(r)
	if err != nil {
		return fmt.Errorf("fakeclick: %w", err)
	}
	tbl.Each(func(rec clicktable.Record) bool {
		g.builder.Add(rec.UserID, rec.ItemID, rec.Clicks)
		return true
	})
	g.built = nil
	return nil
}

// NumUsers returns the number of user IDs present (max ID + 1).
func (g *Graph) NumUsers() int { return g.graph().NumUsers() }

// NumItems returns the number of item IDs present (max ID + 1).
func (g *Graph) NumItems() int { return g.graph().NumItems() }

// NumEdges returns the number of distinct (user, item) click pairs.
func (g *Graph) NumEdges() int { return g.graph().LiveEdges() }

// TotalClicks returns the total click volume.
func (g *Graph) TotalClicks() uint64 { return g.graph().LiveClicks() }

func (g *Graph) graph() *bipartite.Graph {
	if g.built == nil {
		g.built = g.builder.Build()
	}
	return g.built
}

// Config are the detection parameters; the field semantics follow the
// paper (see core.Params for the full documentation).
type Config struct {
	// K1 and K2 are the minimum users and items per attack group.
	K1, K2 int
	// Alpha is the near-biclique extension tolerance in (0, 1].
	Alpha float64
	// THot is the hot-item click threshold; 0 derives it from the data
	// via the 80/20 rule of Section IV-A.
	THot uint64
	// TClick is the abnormal-click threshold; 0 derives it via Eq 4.
	TClick uint32
	// SkipScreening disables the suspicious-group screening module
	// (the RICD-UI ablation).
	SkipScreening bool
	// SeedUsers and SeedItems optionally restrict detection to the
	// neighborhoods of known-bad nodes.
	SeedUsers []uint32
	SeedItems []uint32
	// Workers bounds the parallelism of the sharded detection pipeline
	// (component shard pool, square-pruning rounds, screening); 0 uses
	// GOMAXPROCS.
	Workers int
	// Serial disables the component-sharded parallel orchestration and
	// runs the monolithic single-goroutine reference pipeline instead.
	// Output is identical either way (the sharded path is validated
	// against the serial one group-for-group and score-for-score); Serial
	// exists as the oracle switch for that validation and for debugging.
	Serial bool
	// NoFrontier disables the dirty-frontier incremental square pruning
	// and makes every fixpoint round rescan all live vertices. Output is
	// identical either way (the frontier loop is validated against the
	// rescan loop byte-for-byte); NoFrontier exists as the oracle switch
	// for that validation and for debugging, mirroring Serial.
	NoFrontier bool
	// NoDelta makes a StreamDetector rebuild its sweep graph from the full
	// click history on every sweep instead of patching only the clicks since
	// the last build onto the previous graph. Output is byte-identical
	// either way (the patch path is validated against the rebuild path
	// graph-for-graph and group-for-group); NoDelta exists as the oracle
	// switch for that validation, mirroring Serial and NoFrontier. Batch
	// Detect ignores it.
	NoDelta bool
	// CompactFraction tunes a StreamDetector's delta-maintenance compaction
	// policy: once the raw clicks pending since the last compaction exceed
	// this fraction of the aggregated base table, the next graph build folds
	// them in with a full rebuild instead of patching. 0 means the default
	// (0.5); ignored under NoDelta. Batch Detect ignores it.
	CompactFraction float64
	// NoCache disables the cross-sweep component verdict cache: every
	// sweep re-prunes, re-extracts and re-screens every component live.
	// Output is identical either way (the cached path is validated against
	// the cache-free one group-for-group and epoch-for-epoch); NoCache
	// exists as the oracle switch for that validation, mirroring Serial,
	// NoFrontier and NoDelta.
	NoCache bool
	// CacheBytes bounds the verdict cache's memory (0 = 32 MiB). Entries
	// beyond the bound are evicted oldest-sweep-first.
	CacheBytes int64
	// Cache, when non-nil, is a verdict cache shared across batch
	// Detect/DetectContext calls (construct with NewVerdictCache): repeated
	// detections over a slowly changing graph — the resweep loop of
	// cmd/serve — skip every component whose subgraph is unchanged since
	// the previous run. A StreamDetector ignores it and owns a private
	// cache instead (disable with NoCache, bound with CacheBytes). Ignored
	// when NoCache is set or Audit is attached (the audit trail needs the
	// full decision replay).
	Cache *VerdictCache
	// Observer, when non-nil, receives the run's stage trace (per-phase
	// spans mirroring the paper's Fig 8b split) and pipeline metrics; the
	// trace is echoed on Report.Trace. Construct one with
	// NewObserver("ricd") and export via its Trace/Metrics fields. A nil
	// Observer disables all instrumentation at no cost.
	Observer *obs.Observer
	// Audit, when non-nil, receives the run's explainable audit trail:
	// one structured event (AuditEvent) per pipeline decision — every
	// pruned vertex with the bound that removed it, every screened-out
	// node with the check it failed, every feedback widening with old and
	// new parameters, and every final group verdict with its risk score.
	// Construct one with NewAuditSink. Works with or without Observer; a
	// nil Audit disables the trail at no cost (events are never built).
	Audit *obs.EventSink
	// Durability, when non-nil, makes a StreamDetector persist every click
	// and sweep commit to a write-ahead log with periodic atomic snapshots
	// under its Dir, so a crashed detector reopens exactly where it
	// stopped (see StreamDetector.Recovery). Requires explicit THot and
	// TClick — derived thresholds could silently differ across restarts —
	// and no warm-start graph. Batch Detect ignores it.
	Durability *StreamDurability
	// Serve, when non-nil, is the online serving hook: every complete
	// detection outcome is compiled into an immutable verdict index
	// (Report.Index) and published to the store atomically — a
	// StreamDetector publishes after every committed sweep, the batch
	// entry points after every complete run. Partial (cut-short) outcomes
	// are never published; the previous epoch keeps serving. Mount the
	// store behind NewVerdictServer to answer /v1/user, /v1/item,
	// /v1/pair, /v1/group, /v1/check and /healthz. Construct with
	// NewVerdictStore.
	Serve *VerdictStore
}

// AuditEvent is one entry of the detection audit trail; see the obs
// package's Event documentation for the field semantics. Events serialize
// as JSONL via the sink's writer.
type AuditEvent = obs.Event

// NewAuditSink returns an audit sink for Config.Audit. Events are written
// to w as JSON Lines (one event per line, concurrency-safe, never torn)
// and the last `ring` events are retained in memory (0 disables
// retention). A nil w with ring > 0 gives a memory-only sink.
func NewAuditSink(w io.Writer, ring int) *obs.EventSink { return obs.NewEventSink(w, ring) }

// NewObserver returns an observability hook for Config.Observer: a stage
// trace rooted at rootName plus a metrics registry. Re-exported from the
// internal obs package so applications can construct one.
func NewObserver(rootName string) *obs.Observer { return obs.NewObserver(rootName) }

// VerdictIndex is an immutable, epoch-stamped query index over one
// detection outcome: per-user and per-item verdicts with risk scores and
// group memberships, pair ("is this co-click inside a detected group")
// lookups, and group forensics. Compile one with Report.Index; publish it
// via a VerdictStore. See the serve package for the full documentation.
type VerdictIndex = serve.Index

// VerdictStore is the atomic publication point between a detector and the
// query servers: Publish swaps in a freshly compiled VerdictIndex under
// the next epoch; concurrent readers are lock-free and never observe a
// half-built index (Config.Serve).
type VerdictStore = serve.Store

// VerdictCache is the cross-sweep component verdict cache (Config.Cache):
// a bounded, oldest-sweep-evicted map from component fingerprint to cached
// per-component detection outcome. Safe for concurrent use; see DESIGN.md
// §15 for the fingerprint soundness argument.
type VerdictCache = core.VerdictCache

// NewVerdictCache constructs a verdict cache bounded to maxBytes of cached
// verdict data (≤ 0 means the 32 MiB default) for Config.Cache.
func NewVerdictCache(maxBytes int64) *VerdictCache { return core.NewVerdictCache(maxBytes) }

// NewVerdictStore returns an empty verdict store for Config.Serve. The
// observer (nil allowed) receives serve.* swap metrics and one audit
// event per index publication.
func NewVerdictStore(o *obs.Observer) *VerdictStore { return serve.NewStore(o) }

// NewVerdictServer returns the HTTP query handler over a verdict store:
// GET /v1/user/{id}, /v1/item/{id}, /v1/pair?u=&i=, /v1/group/{id}, POST
// /v1/check (batch), GET /healthz. See serve.Options for the in-flight
// bound, shedding and health wiring.
func NewVerdictServer(store *VerdictStore, opts serve.Options) http.Handler {
	return serve.NewServer(store, opts)
}

// DefaultConfig returns the paper's experiment defaults with data-derived
// thresholds.
func DefaultConfig() Config {
	return Config{K1: 10, K2: 10, Alpha: 1.0}
}

// Group is one detected attack group: suspicious users (crowd-worker
// accounts) and suspicious items (attack targets), with a risk score and
// the forensic statistics an analyst reviews before acting.
type Group struct {
	Users []uint32
	Items []uint32
	Score float64

	// Density is in-group edges / (users × items); 1.0 is a perfect
	// biclique.
	Density float64
	// MeanEdgeClicks is the average click weight of in-group edges —
	// crowd workers hammer targets, so this runs far above the
	// marketplace per-edge mean.
	MeanEdgeClicks float64
	// OutsideShare is the fraction of the group items' clicks coming
	// from users outside the group (organic traffic).
	OutsideShare float64
}

// RankedNode is a node with its identification-module risk score.
type RankedNode struct {
	ID    uint32
	Score float64
}

// Report is a detection outcome.
type Report struct {
	// Groups are detected attack groups, most suspicious first.
	Groups []Group
	// Users and Items are the deduplicated suspicious node sets.
	Users []uint32
	Items []uint32
	// RankedUsers and RankedItems order all suspicious nodes by risk
	// score for top-k triage.
	RankedUsers []RankedNode
	RankedItems []RankedNode
	// Elapsed is the end-to-end detection wall time.
	Elapsed time.Duration
	// THot and TClick are the thresholds actually used (data-derived
	// when the config left them zero).
	THot   uint64
	TClick uint32
	// Trace is the stage trace of this run; nil unless Config.Observer
	// was set. Render it with Trace.Tree() or serialize with
	// Trace.JSON().
	Trace *obs.Trace

	// Partial reports that the run was cut short — by context
	// cancellation, deadline expiry, or an isolated stage panic — and the
	// report holds only what the completed stages produced. Stage names
	// the pipeline stage that was interrupted and Err carries the cause
	// (context.Canceled, context.DeadlineExceeded, or a *StageError).
	Partial bool
	Stage   string
	Err     error
}

// StageError is the error produced when a pipeline stage panics: the panic
// is recovered at the stage boundary and surfaced as an error naming the
// stage, never as a process crash. Re-exported for errors.As matching.
type StageError = detect.StageError

// Summary renders a one-paragraph human-readable digest of the report.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Partial {
		if r.Stage != "" {
			fmt.Fprintf(&b, "PARTIAL result — run interrupted during %q: %v\n", r.Stage, r.Err)
		} else {
			fmt.Fprintf(&b, "PARTIAL result — run interrupted: %v\n", r.Err)
		}
	}
	fmt.Fprintf(&b, "detected %d attack group(s): %d suspicious accounts, %d suspicious items "+
		"(T_hot=%d, T_click=%d, %v)\n",
		len(r.Groups), len(r.Users), len(r.Items), r.THot, r.TClick, r.Elapsed.Round(time.Millisecond))
	for i, grp := range r.Groups {
		fmt.Fprintf(&b, "  group %d: %d accounts × %d items, risk %.1f, density %.2f, "+
			"mean edge clicks %.1f, organic share %.0f%%\n",
			i+1, len(grp.Users), len(grp.Items), grp.Score,
			grp.Density, grp.MeanEdgeClicks, 100*grp.OutsideShare)
	}
	return b.String()
}

// Index compiles the report into an immutable VerdictIndex for the online
// serving layer. The index answers exactly what a direct scan of the
// report answers — a user/item is suspicious iff it appears in a group
// (with its RankedUsers/RankedItems risk score), a pair is in-group iff
// some single group contains both ends — which the query-equivalence
// harness pins byte-for-byte. The index references the report's slices
// without copying; do not mutate the report afterwards.
func (r *Report) Index() *VerdictIndex {
	d := serve.Data{THot: r.THot, TClick: r.TClick, Partial: r.Partial}
	for _, grp := range r.Groups {
		d.Groups = append(d.Groups, serve.Group{
			Users:          grp.Users,
			Items:          grp.Items,
			Score:          grp.Score,
			Density:        grp.Density,
			MeanEdgeClicks: grp.MeanEdgeClicks,
			OutsideShare:   grp.OutsideShare,
		})
	}
	for _, n := range r.RankedUsers {
		d.RankedUsers = append(d.RankedUsers, serve.Scored{ID: n.ID, Score: n.Score})
	}
	for _, n := range r.RankedItems {
		d.RankedItems = append(d.RankedItems, serve.Scored{ID: n.ID, Score: n.Score})
	}
	return serve.Build(d)
}

// TopUsers returns the k highest-risk users.
func (r *Report) TopUsers(k int) []RankedNode { return topK(r.RankedUsers, k) }

// TopItems returns the k highest-risk items.
func (r *Report) TopItems(k int) []RankedNode { return topK(r.RankedItems, k) }

func topK(nodes []RankedNode, k int) []RankedNode {
	if k > len(nodes) {
		k = len(nodes)
	}
	if k <= 0 {
		return nil
	}
	return nodes[:k]
}

// Detect runs the RICD framework on the graph.
func Detect(g *Graph, cfg Config) (*Report, error) {
	return DetectContext(context.Background(), g, cfg)
}

// DetectContext is Detect under a context: cancellation and deadline
// expiry are honored cooperatively throughout the pipeline (stage
// boundaries, pruning rounds, parallel pruning workers, per screened
// group), so detection stops within a fraction of a pruning round of the
// context's cancellation.
//
// A cut-short run degrades gracefully rather than failing: DetectContext
// returns a non-nil PARTIAL report — whatever the completed stages
// produced — with Report.Partial set, Report.Stage naming the interrupted
// stage, and Report.Err carrying the cause. The returned error is nil on
// cancellation/deadline (the partial report IS the answer to a bounded
// run) and non-nil only for real failures: invalid parameters, or a stage
// panic surfaced as a *StageError (alongside the partial report).
func DetectContext(ctx context.Context, g *Graph, cfg Config) (*Report, error) {
	bg := g.graph()
	params, err := resolveParams(bg, cfg)
	if err != nil {
		return nil, err
	}
	d := &core.Detector{Params: params, Seeds: detect.Seeds{
		Users: cfg.SeedUsers,
		Items: cfg.SeedItems,
	}, Obs: auditObserver(cfg)}
	if cfg.SkipScreening {
		d.Variant = core.VariantUI
	}
	res, err := d.DetectContext(ctx, bg)
	rep, err := finishReport(bg, res, params, cfg.Observer, err)
	publishVerdicts(cfg, rep, err)
	return rep, err
}

// publishVerdicts compiles and publishes a complete report to Config.Serve
// (nil store or partial/failed outcome: no-op — the previous epoch keeps
// serving). A Publish failure is already counted and audited by the store;
// the detection outcome stands regardless, so it is not propagated here.
func publishVerdicts(cfg Config, rep *Report, err error) {
	if cfg.Serve == nil || rep == nil || rep.Partial || err != nil {
		return
	}
	_ = cfg.Serve.Publish(rep.Index())
}

// auditObserver returns the observer the pipeline should run under:
// cfg.Observer, augmented with cfg.Audit as its event sink. Auditing
// without an Observer gets a private observer carrying just the sink, so
// Report.Trace stays nil exactly when Config.Observer was nil.
func auditObserver(cfg Config) *obs.Observer {
	if cfg.Audit == nil {
		return cfg.Observer
	}
	o := cfg.Observer
	if o == nil {
		o = obs.NewObserver("ricd")
	}
	if o.Events == nil {
		o.Events = cfg.Audit
	}
	return o
}

// DetectWithExpectation runs Detect and, if the output is smaller than
// expectedNodes, relaxes parameters with the feedback strategy of Fig 7
// (up to maxRounds detection runs) until the expectation is met or every
// knob reaches its floor.
func DetectWithExpectation(g *Graph, cfg Config, expectedNodes, maxRounds int) (*Report, error) {
	return DetectWithExpectationContext(context.Background(), g, cfg, expectedNodes, maxRounds)
}

// DetectWithExpectationContext is DetectWithExpectation under a context.
// The context budget covers the whole feedback loop; when it expires
// mid-loop, the report holds the best result so far (the last complete
// run when one finished, else the interrupted run's partial output) with
// the same Partial/Stage/Err tagging as DetectContext.
func DetectWithExpectationContext(ctx context.Context, g *Graph, cfg Config,
	expectedNodes, maxRounds int) (*Report, error) {

	bg := g.graph()
	params, err := resolveParams(bg, cfg)
	if err != nil {
		return nil, err
	}
	fr, err := core.DetectWithFeedbackContext(ctx, bg, params, expectedNodes, maxRounds, auditObserver(cfg))
	rep, err := finishReport(bg, fr.Result, fr.Params, cfg.Observer, err)
	publishVerdicts(cfg, rep, err)
	return rep, err
}

// finishReport applies the graceful-degradation contract shared by the
// context entry points: a nil error or a pure cancellation yields a
// report (partial on cancellation); a stage panic yields the partial
// report AND its *StageError; anything else fails outright.
func finishReport(bg *bipartite.Graph, res *detect.Result, params core.Params,
	o *obs.Observer, err error) (*Report, error) {

	if err == nil {
		return buildReport(bg, res, params, o), nil
	}
	if res == nil {
		return nil, fmt.Errorf("fakeclick: %w", err)
	}
	rep := buildReport(bg, res, params, o)
	rep.Partial = true
	rep.Stage = res.StageReached
	rep.Err = err
	var se *StageError
	if errors.As(err, &se) {
		return rep, fmt.Errorf("fakeclick: %w", err)
	}
	return rep, nil
}

func resolveParams(bg *bipartite.Graph, cfg Config) (core.Params, error) {
	params := core.DefaultParams()
	params.K1, params.K2 = cfg.K1, cfg.K2
	params.Alpha = cfg.Alpha
	params.Workers = cfg.Workers
	params.NoShard = cfg.Serial
	params.NoFrontier = cfg.NoFrontier
	if cfg.Cache != nil && !cfg.NoCache {
		params.Cache = cfg.Cache
	}
	if cfg.THot != 0 || cfg.TClick != 0 {
		params.THot = cfg.THot
		params.TClick = cfg.TClick
	}
	if cfg.THot == 0 || cfg.TClick == 0 {
		sp := cfg.Observer.Root().Start("derive_thresholds")
		th := core.DeriveThresholds(bg)
		if cfg.THot == 0 {
			params.THot = th.THot
		}
		if cfg.TClick == 0 {
			params.TClick = th.TClick
		}
		sp.SetInt("t_hot", int64(params.THot))
		sp.SetInt("t_click", int64(params.TClick))
		sp.End()
	}
	if err := params.Validate(); err != nil {
		return params, fmt.Errorf("fakeclick: %w", err)
	}
	return params, nil
}

func buildReport(bg *bipartite.Graph, res *detect.Result, params core.Params, o *obs.Observer) *Report {
	sp := o.Root().Start("report")
	defer sp.End()
	rep := &Report{
		Elapsed: res.Elapsed,
		THot:    params.THot,
		TClick:  params.TClick,
		Users:   res.Users(),
		Items:   res.Items(),
	}
	if o != nil {
		rep.Trace = o.Trace
	}
	for _, grp := range res.Groups {
		st := core.ComputeGroupStats(bg, grp)
		rep.Groups = append(rep.Groups, Group{
			Users:          grp.Users,
			Items:          grp.Items,
			Score:          grp.Score,
			Density:        st.Density,
			MeanEdgeClicks: st.MeanEdgeClicks,
			OutsideShare:   st.OutsideShare,
		})
	}
	ranking := core.RankResult(bg, res)
	for _, n := range ranking.Users {
		rep.RankedUsers = append(rep.RankedUsers, RankedNode{ID: n.ID, Score: n.Score})
	}
	for _, n := range ranking.Items {
		rep.RankedItems = append(rep.RankedItems, RankedNode{ID: n.ID, Score: n.Score})
	}
	return rep
}

// Explain renders the evidence trail for one detected group (by index into
// rep.Groups): block statistics, each account's hot-vs-target click
// pattern, and each item's supporter-vs-organic profile. This is the
// artifact a platform analyst reviews before punishing accounts.
func Explain(g *Graph, rep *Report, group int) (string, error) {
	if group < 0 || group >= len(rep.Groups) {
		return "", fmt.Errorf("fakeclick: group index %d out of range [0,%d)", group, len(rep.Groups))
	}
	bg := g.graph()
	params := core.DefaultParams()
	params.THot = rep.THot
	params.TClick = rep.TClick
	hot := core.ComputeHotSet(bg, params.THot)
	grp := detect.Group{Users: rep.Groups[group].Users, Items: rep.Groups[group].Items}
	return core.ExplainGroup(bg, grp, hot, params), nil
}

// Recommend returns the top-k item-to-item recommendations for a user who
// just clicked anchor — the I2I serving path (Eq 1) the attack manipulates.
// Exposed so applications can inspect the attack's effect before and after
// cleaning.
func Recommend(g *Graph, anchor uint32, k int) []uint32 {
	return i2i.Recommend(g.graph(), anchor, k)
}

// I2IScore returns the Eq 1 relevance score between anchor and candidate
// (0 if they are never co-clicked).
func I2IScore(g *Graph, anchor, candidate uint32) float64 {
	for _, s := range i2i.Scores(g.graph(), anchor) {
		if s.Item == candidate {
			return s.Score
		}
	}
	return 0
}

// CleanClicks returns a copy of the graph with every edge incident to the
// reported suspicious users removed — the "clean the false click
// information" step of the paper's case study (Section VII).
func CleanClicks(g *Graph, rep *Report) *Graph {
	sus := make(map[uint32]bool, len(rep.Users))
	for _, u := range rep.Users {
		sus[u] = true
	}
	out := NewGraph()
	bg := g.graph()
	bg.EachLiveUser(func(u bipartite.NodeID) bool {
		if sus[u] {
			return true
		}
		bg.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			out.AddClicks(u, v, w)
			return true
		})
		return true
	})
	return out
}
