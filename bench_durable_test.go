// Durability cost panel: running
//
//	go test -run TestWriteBenchDurableJSON -benchjsondurable BENCH_durable.json
//
// measures what the WAL costs the ingest hot path (off / flushed / fsynced
// per batch) and what each full-buffer shed policy costs an Offer under
// burst, and writes the results as JSON so CI can track the durability
// tax the same way it tracks observability overhead (BENCH_obs.json).
package fakeclick_test

import (
	"context"
	"flag"
	"testing"
	"time"

	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/stream"
)

var benchDurableJSONPath = flag.String("benchjsondurable", "", "write the durability benchmark panel to this JSON file")

// ingestBatch is the unit of streaming ingestion in these benchmarks: 512
// clicks per AddBatch, which is one WAL AppendAll (and so one fsync when
// the policy demands it) — the realistic amortization, not a per-click
// fsync strawman.
const ingestBatch = 512

func durableBenchParams() core.Params {
	p := core.DefaultParams()
	p.THot = 400
	return p
}

func durableBenchBatch() []clicktable.Record {
	batch := make([]clicktable.Record, ingestBatch)
	for i := range batch {
		batch[i] = clicktable.Record{
			UserID: uint32(i * 37 % 4096),
			ItemID: uint32(i * 13 % 512),
			Clicks: uint32(1 + i%3),
		}
	}
	return batch
}

// benchIngest streams b.N clicks through AddBatch; dur == nil is the
// memory-only baseline, otherwise the detector writes ahead to a WAL in a
// fresh temp directory. ns/op is therefore cost *per click*.
func benchIngest(b *testing.B, dur *stream.Durability) {
	var d *stream.Detector
	var err error
	if dur == nil {
		d, err = stream.New(nil, durableBenchParams())
	} else {
		cfg := *dur
		cfg.Dir = b.TempDir()
		d, _, err = stream.Open(cfg, durableBenchParams(), nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	batch := durableBenchBatch()
	b.ResetTimer()
	for n := 0; n < b.N; n += ingestBatch {
		end := ingestBatch
		if rest := b.N - n; rest < end {
			end = rest
		}
		d.AddBatch(batch[:end])
	}
	b.StopTimer()
	if derr := d.DurabilityErr(); derr != nil {
		b.Fatal(derr)
	}
}

// BenchmarkStreamIngestNoWAL is the memory-only ingest baseline.
func BenchmarkStreamIngestNoWAL(b *testing.B) { benchIngest(b, nil) }

// BenchmarkStreamIngestWALNoFsync writes every click ahead to the WAL but
// lets the OS page cache absorb it (survives process death, not power
// loss). The spread over NoWAL is the encode+write tax.
func BenchmarkStreamIngestWALNoFsync(b *testing.B) {
	benchIngest(b, &stream.Durability{Sync: durable.SyncNever})
}

// BenchmarkStreamIngestWALFsync additionally fsyncs once per batch — the
// full durability guarantee. The spread over WALNoFsync is the price of
// surviving power loss.
func BenchmarkStreamIngestWALFsync(b *testing.B) {
	benchIngest(b, &stream.Durability{Sync: durable.SyncAlways})
}

// benchOffer hammers a live buffer (drainer running) with b.N clicks and
// measures Offer latency under burst for one shed policy. BlockWait is
// kept tiny so a full buffer under the block policy costs a bounded stall,
// not a benchmark hang.
func benchOffer(b *testing.B, policy stream.ShedPolicy) {
	d, err := stream.New(nil, durableBenchParams())
	if err != nil {
		b.Fatal(err)
	}
	buf := stream.NewBuffer(d, stream.BufferConfig{
		Capacity:  1024,
		Policy:    policy,
		BlockWait: time.Millisecond,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Offer(clicktable.Record{
			UserID: uint32(i % 4096),
			ItemID: uint32(i % 512),
			Clicks: 1,
		})
	}
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := buf.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBufferOfferBlock measures burst Offers under backpressure.
func BenchmarkBufferOfferBlock(b *testing.B) { benchOffer(b, stream.ShedBlock) }

// BenchmarkBufferOfferShedOldest measures burst Offers when a full buffer
// sacrifices its oldest pending click.
func BenchmarkBufferOfferShedOldest(b *testing.B) { benchOffer(b, stream.ShedOldest) }

// BenchmarkBufferOfferShedNewest measures burst Offers when a full buffer
// rejects the incoming click.
func BenchmarkBufferOfferShedNewest(b *testing.B) { benchOffer(b, stream.ShedNewest) }

// TestWriteBenchDurableJSON runs the durability panel and writes
// -benchjsondurable. Skipped unless the flag is set, so ordinary test runs
// stay fast.
func TestWriteBenchDurableJSON(t *testing.T) {
	if *benchDurableJSONPath == "" {
		t.Skip("set -benchjsondurable <path> to emit the durability benchmark panel")
	}
	panel := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"StreamIngestNoWAL", BenchmarkStreamIngestNoWAL},
		{"StreamIngestWALNoFsync", BenchmarkStreamIngestWALNoFsync},
		{"StreamIngestWALFsync", BenchmarkStreamIngestWALFsync},
		{"BufferOfferBlock", BenchmarkBufferOfferBlock},
		{"BufferOfferShedOldest", BenchmarkBufferOfferShedOldest},
		{"BufferOfferShedNewest", BenchmarkBufferOfferShedNewest},
	}
	var out struct {
		Note    string        `json:"note"`
		Results []benchResult `json:"results"`
	}
	out.Note = "generated by `go test -run TestWriteBenchDurableJSON -benchjsondurable`; ns_per_op is per click — compare StreamIngestNoWAL vs WALNoFsync for the write-ahead tax and vs WALFsync for the power-loss guarantee; BufferOffer* rows are shed-policy latency under burst"
	for _, p := range panel {
		r := testing.Benchmark(p.fn)
		out.Results = append(out.Results, benchResult{
			Name:        p.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-24s %d iters, %.0f ns/op", p.name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}
	writeBenchJSON(t, *benchDurableJSONPath, &out)
}
