package bipartite

import (
	"testing"
)

// testGraph builds the small fixture used across the package tests:
//
//	u0 — v0(3), v1(1)
//	u1 — v0(2), v1(5), v2(1)
//	u2 — v2(7)
//	u3 — (isolated)
//	v3   (isolated)
func testGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.Add(0, 0, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(1, 1, 5)
	b.Add(1, 2, 1)
	b.Add(2, 2, 7)
	return b.Build()
}

func TestBuildCounts(t *testing.T) {
	g := testGraph(t)
	if got, want := g.NumUsers(), 4; got != want {
		t.Errorf("NumUsers = %d, want %d", got, want)
	}
	if got, want := g.NumItems(), 4; got != want {
		t.Errorf("NumItems = %d, want %d", got, want)
	}
	if got, want := g.LiveEdges(), 6; got != want {
		t.Errorf("LiveEdges = %d, want %d", got, want)
	}
	if got, want := g.LiveClicks(), uint64(19); got != want {
		t.Errorf("LiveClicks = %d, want %d", got, want)
	}
}

func TestBuildMergesDuplicates(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 2)
	b.Add(0, 0, 3)
	b.Add(0, 0, 1)
	g := b.Build()
	if got, want := g.LiveEdges(), 1; got != want {
		t.Fatalf("LiveEdges = %d, want %d", got, want)
	}
	if got, want := g.Weight(0, 0), uint32(6); got != want {
		t.Errorf("Weight(0,0) = %d, want %d", got, want)
	}
}

func TestBuildIgnoresZeroClicks(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	g := b.Build()
	if g.LiveEdges() != 0 {
		t.Errorf("LiveEdges = %d, want 0", g.LiveEdges())
	}
}

func TestBuilderGrowsOnLargeIDs(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(9, 5, 1)
	g := b.Build()
	if g.NumUsers() != 10 || g.NumItems() != 6 {
		t.Errorf("dims = (%d,%d), want (10,6)", g.NumUsers(), g.NumItems())
	}
}

func TestDegreesAndStrength(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u        NodeID
		deg      int
		strength uint64
	}{
		{0, 2, 4}, {1, 3, 8}, {2, 1, 7}, {3, 0, 0},
	}
	for _, c := range cases {
		if got := g.UserDegree(c.u); got != c.deg {
			t.Errorf("UserDegree(%d) = %d, want %d", c.u, got, c.deg)
		}
		if got := g.UserStrength(c.u); got != c.strength {
			t.Errorf("UserStrength(%d) = %d, want %d", c.u, got, c.strength)
		}
	}
	if got, want := g.ItemDegree(0), 2; got != want {
		t.Errorf("ItemDegree(0) = %d, want %d", got, want)
	}
	if got, want := g.ItemStrength(2), uint64(8); got != want {
		t.Errorf("ItemStrength(2) = %d, want %d", got, want)
	}
}

func TestWeightAndHasEdge(t *testing.T) {
	g := testGraph(t)
	if got, want := g.Weight(1, 1), uint32(5); got != want {
		t.Errorf("Weight(1,1) = %d, want %d", got, want)
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true, want false")
	}
	if g.Weight(99, 0) != 0 || g.Weight(0, 99) != 0 {
		t.Error("out-of-range Weight should be 0")
	}
}

func TestRemoveUserUpdatesCounterpart(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(1)
	if g.UserAlive(1) {
		t.Fatal("user 1 still alive after removal")
	}
	if got, want := g.LiveUsers(), 3; got != want {
		t.Errorf("LiveUsers = %d, want %d", got, want)
	}
	if got, want := g.ItemDegree(0), 1; got != want {
		t.Errorf("ItemDegree(0) = %d, want %d", got, want)
	}
	if got, want := g.ItemStrength(1), uint64(1); got != want {
		t.Errorf("ItemStrength(1) = %d, want %d", got, want)
	}
	if got, want := g.LiveEdges(), 3; got != want {
		t.Errorf("LiveEdges = %d, want %d", got, want)
	}
	if got, want := g.LiveClicks(), uint64(11); got != want {
		t.Errorf("LiveClicks = %d, want %d", got, want)
	}
	// Edge queries to the dead user must be zero.
	if g.Weight(1, 1) != 0 {
		t.Error("Weight to dead user should be 0")
	}
}

func TestRemoveItemUpdatesCounterpart(t *testing.T) {
	g := testGraph(t)
	g.RemoveItem(2)
	if got, want := g.UserDegree(2), 0; got != want {
		t.Errorf("UserDegree(2) = %d, want %d", got, want)
	}
	if got, want := g.UserDegree(1), 2; got != want {
		t.Errorf("UserDegree(1) = %d, want %d", got, want)
	}
	if got, want := g.UserStrength(1), uint64(7); got != want {
		t.Errorf("UserStrength(1) = %d, want %d", got, want)
	}
}

func TestRemoveIsIdempotent(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(0)
	edges, clicks := g.LiveEdges(), g.LiveClicks()
	g.RemoveUser(0)
	if g.LiveEdges() != edges || g.LiveClicks() != clicks {
		t.Error("double removal changed edge accounting")
	}
}

func TestNeighborIterationSkipsDead(t *testing.T) {
	g := testGraph(t)
	g.RemoveItem(1)
	var got []NodeID
	g.EachUserNeighbor(1, func(v NodeID, _ uint32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("neighbors of u1 after removing v1 = %v, want [0 2]", got)
	}
}

func TestNeighborEarlyStop(t *testing.T) {
	g := testGraph(t)
	n := 0
	g.EachUserNeighbor(1, func(NodeID, uint32) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early-stop iterated %d times, want 1", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := testGraph(t)
	c := g.Clone()
	c.RemoveUser(0)
	if !g.UserAlive(0) {
		t.Error("removal on clone affected original")
	}
	if got, want := g.LiveEdges(), 6; got != want {
		t.Errorf("original LiveEdges = %d, want %d", got, want)
	}
	if got, want := c.LiveEdges(), 4; got != want {
		t.Errorf("clone LiveEdges = %d, want %d", got, want)
	}
}

func TestClonePreservesDeletions(t *testing.T) {
	g := testGraph(t)
	g.RemoveItem(0)
	c := g.Clone()
	if c.ItemAlive(0) {
		t.Error("clone resurrected deleted item")
	}
	if c.LiveEdges() != g.LiveEdges() {
		t.Error("clone edge count differs")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	g2 := FromEdges(edges)
	if g2.LiveEdges() != g.LiveEdges() || g2.LiveClicks() != g.LiveClicks() {
		t.Errorf("FromEdges(Edges()) = %v, want same accounting as %v", g2, g)
	}
	for _, e := range edges {
		if g2.Weight(e.U, e.V) != e.Weight {
			t.Errorf("edge (%d,%d) weight %d not preserved", e.U, e.V, e.Weight)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := testGraph(t)
	sub, err := InducedSubgraph(g, []NodeID{0, 1}, []NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sub.LiveEdges(), 4; got != want {
		t.Errorf("LiveEdges = %d, want %d", got, want)
	}
	if sub.UserAlive(2) || sub.ItemAlive(2) {
		t.Error("vertices outside the induced sets should be dead")
	}
	if !g.UserAlive(2) {
		t.Error("InducedSubgraph mutated the source graph")
	}
}

func TestInducedSubgraphRejectsOutOfRange(t *testing.T) {
	g := testGraph(t)
	if _, err := InducedSubgraph(g, []NodeID{99}, nil); err == nil {
		t.Error("expected error for out-of-range user")
	}
	if _, err := InducedSubgraph(g, nil, []NodeID{99}); err == nil {
		t.Error("expected error for out-of-range item")
	}
}

func TestCompact(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(0)
	g.RemoveItem(1)
	c, userOf, itemOf := Compact(g)
	if c.NumUsers() != 3 || c.NumItems() != 3 {
		t.Fatalf("compact dims = (%d,%d), want (3,3)", c.NumUsers(), c.NumItems())
	}
	// Every compacted edge must correspond to an original live edge.
	for _, e := range c.Edges() {
		ou, ov := userOf[e.U], itemOf[e.V]
		if g.Weight(ou, ov) != e.Weight {
			t.Errorf("compacted edge (%d,%d,%d) maps to (%d,%d) with weight %d",
				e.U, e.V, e.Weight, ou, ov, g.Weight(ou, ov))
		}
	}
	if c.LiveEdges() != g.LiveEdges() {
		t.Errorf("compact LiveEdges = %d, want %d", c.LiveEdges(), g.LiveEdges())
	}
}

func TestRemoveAllVertices(t *testing.T) {
	g := testGraph(t)
	for u := 0; u < g.NumUsers(); u++ {
		g.RemoveUser(NodeID(u))
	}
	if g.LiveEdges() != 0 || g.LiveClicks() != 0 || g.LiveUsers() != 0 {
		t.Errorf("after removing all users: %v", g)
	}
	for v := 0; v < g.NumItems(); v++ {
		if got := g.ItemDegree(NodeID(v)); got != 0 {
			t.Errorf("ItemDegree(%d) = %d after all users removed", v, got)
		}
	}
}
