package bipartite

import (
	"reflect"
	"testing"
)

func TestCommonUserNeighbors(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 1, 2}, // share v0, v1
		{0, 2, 0},
		{1, 2, 1}, // share v2
		{0, 3, 0}, // u3 isolated
		{0, 0, 2}, // self: all own neighbors
	}
	for _, c := range cases {
		if got := CommonUserNeighbors(g, c.a, c.b); got != c.want {
			t.Errorf("CommonUserNeighbors(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonItemNeighbors(t *testing.T) {
	g := testGraph(t)
	if got, want := CommonItemNeighbors(g, 0, 1), 2; got != want { // u0, u1
		t.Errorf("CommonItemNeighbors(0,1) = %d, want %d", got, want)
	}
	if got, want := CommonItemNeighbors(g, 0, 2), 1; got != want { // u1
		t.Errorf("CommonItemNeighbors(0,2) = %d, want %d", got, want)
	}
}

func TestCommonNeighborsRespectDeletion(t *testing.T) {
	g := testGraph(t)
	g.RemoveItem(0)
	if got, want := CommonUserNeighbors(g, 0, 1), 1; got != want {
		t.Errorf("after deleting v0: CommonUserNeighbors(0,1) = %d, want %d", got, want)
	}
	g.RemoveUser(1)
	if got := CommonUserNeighbors(g, 0, 1); got != 0 {
		t.Errorf("common neighbors with dead user = %d, want 0", got)
	}
}

func TestCommonNeighborsAtLeast(t *testing.T) {
	g := testGraph(t)
	for k := 0; k <= 4; k++ {
		want := CommonUserNeighbors(g, 0, 1) >= k
		if got := CommonUserNeighborsAtLeast(g, 0, 1, k); got != want {
			t.Errorf("CommonUserNeighborsAtLeast(0,1,%d) = %v, want %v", k, got, want)
		}
		wantI := CommonItemNeighbors(g, 0, 1) >= k
		if got := CommonItemNeighborsAtLeast(g, 0, 1, k); got != wantI {
			t.Errorf("CommonItemNeighborsAtLeast(0,1,%d) = %v, want %v", k, got, wantI)
		}
	}
}

func TestTwoHopUsers(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u    NodeID
		want []NodeID
	}{
		{0, []NodeID{1}},
		{1, []NodeID{0, 2}},
		{2, []NodeID{1}},
		{3, nil},
	}
	for _, c := range cases {
		got := TwoHopUsers(g, c.u)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("TwoHopUsers(%d) = %v, want %v", c.u, got, c.want)
		}
	}
}

func TestTwoHopItems(t *testing.T) {
	g := testGraph(t)
	got := TwoHopItems(g, 0)
	want := []NodeID{1, 2} // via u0: v1; via u1: v1, v2
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TwoHopItems(0) = %v, want %v", got, want)
	}
}

func TestTwoHopRespectsDeletion(t *testing.T) {
	g := testGraph(t)
	g.RemoveItem(2) // cuts u1↔u2 connection
	got := TwoHopUsers(g, 1)
	want := []NodeID{0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TwoHopUsers(1) after deleting v2 = %v, want %v", got, want)
	}
}
