package bipartite

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// satAggregate is the test-side oracle for aggregated edge lists: sort by
// (U, V) and merge duplicates with saturating addition — the semantics
// clicktable.Aggregate applies before any graph is built, and therefore
// the semantics PatchGraph must reproduce.
func satAggregate(edges []Edge) []Edge {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	var out []Edge
	for i := 0; i < len(sorted); {
		e := sorted[i]
		sum := uint64(e.Weight)
		j := i + 1
		for j < len(sorted) && sorted[j].U == e.U && sorted[j].V == e.V {
			sum += uint64(sorted[j].Weight)
			j++
		}
		if sum > math.MaxUint32 {
			sum = math.MaxUint32
		}
		e.Weight = uint32(sum)
		if e.Weight > 0 {
			out = append(out, e)
		}
		i = j
	}
	return out
}

// sameGraph compares every observable of two graphs: dimensions, live
// accounting, per-vertex degrees/strengths/adjacency, and the serialized
// byte stream — the byte-identity contract PatchGraph promises.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumItems() != want.NumItems() {
		t.Fatalf("dims: got %d×%d, want %d×%d",
			got.NumUsers(), got.NumItems(), want.NumUsers(), want.NumItems())
	}
	if got.LiveUsers() != want.LiveUsers() || got.LiveItems() != want.LiveItems() ||
		got.LiveEdges() != want.LiveEdges() || got.LiveClicks() != want.LiveClicks() {
		t.Fatalf("live accounting: got %v, want %v", got, want)
	}
	sameAdj := func(side string, a, b [][]Arc, deg []int32, wantDeg []int32, str, wantStr []uint64) {
		for i := range a {
			if deg[i] != wantDeg[i] || str[i] != wantStr[i] {
				t.Fatalf("%s %d: deg/strength (%d, %d), want (%d, %d)",
					side, i, deg[i], str[i], wantDeg[i], wantStr[i])
			}
			if len(a[i]) != len(b[i]) {
				t.Fatalf("%s %d: adjacency len %d, want %d", side, i, len(a[i]), len(b[i]))
			}
			for k := range a[i] {
				if a[i][k] != b[i][k] {
					t.Fatalf("%s %d arc %d: %+v, want %+v", side, i, k, a[i][k], b[i][k])
				}
			}
		}
	}
	sameAdj("user", got.uAdj, want.uAdj, got.uDeg, want.uDeg, got.uStrength, want.uStrength)
	sameAdj("item", got.vAdj, want.vAdj, got.vDeg, want.vDeg, got.vStrength, want.vStrength)
	var gb, wb bytes.Buffer
	if err := WriteBinary(&gb, got); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&wb, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatalf("serialized graphs differ (%d vs %d bytes)", gb.Len(), wb.Len())
	}
}

// checkPatchOracle builds base from baseEdges, patches the aggregated
// delta on, and compares against a from-scratch build over the combined
// history.
func checkPatchOracle(t *testing.T, baseEdges, deltaEdges []Edge) {
	t.Helper()
	baseAgg := satAggregate(baseEdges)
	base := FromEdges(baseAgg)
	before := base.Edges()
	delta := satAggregate(deltaEdges)

	got := PatchGraph(base, delta)
	want := FromEdges(satAggregate(append(append([]Edge(nil), baseAgg...), delta...)))
	sameGraph(t, got, want)
	// The base is copy-on-write input, never mutated — not even the rows
	// the patch rewrote (Clone shares adjacency, so an in-place rewrite
	// would corrupt every outstanding snapshot).
	after := base.Edges()
	if len(before) != len(after) {
		t.Fatalf("patch mutated base: %d edges before, %d after", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("patch mutated base edge %d: %+v -> %+v", i, before[i], after[i])
		}
	}
}

func TestPatchGraphHandCases(t *testing.T) {
	cases := []struct {
		name  string
		base  []Edge
		delta []Edge
	}{
		{"merge existing edge", []Edge{{1, 2, 3}, {1, 5, 1}, {4, 2, 7}}, []Edge{{1, 2, 10}}},
		{"splice new edges into existing row", []Edge{{1, 2, 3}, {1, 9, 1}}, []Edge{{1, 1, 4}, {1, 5, 2}, {1, 12, 8}}},
		{"new user beyond range", []Edge{{0, 0, 1}}, []Edge{{7, 3, 2}}},
		{"new item beyond range", []Edge{{0, 0, 1}}, []Edge{{0, 9, 2}}},
		{"disjoint delta", []Edge{{1, 1, 1}, {2, 2, 2}}, []Edge{{3, 3, 3}, {4, 4, 4}}},
		{"saturating merge", []Edge{{1, 1, math.MaxUint32 - 1}}, []Edge{{1, 1, 5}}},
		{"saturated base stays saturated", []Edge{{1, 1, math.MaxUint32}}, []Edge{{1, 1, 1}}},
		{"empty base", nil, []Edge{{2, 3, 4}}},
		{"user with no base edges", []Edge{{5, 5, 5}}, []Edge{{2, 1, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkPatchOracle(t, tc.base, tc.delta)
		})
	}
}

func TestPatchGraphEmptyDeltaReturnsBase(t *testing.T) {
	base := FromEdges([]Edge{{1, 2, 3}})
	if got := PatchGraph(base, nil); got != base {
		t.Error("empty delta must return the base graph unchanged")
	}
}

func TestPatchGraphRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	base := FromEdges([]Edge{{1, 2, 3}, {4, 5, 6}})
	mustPanic("unsorted delta", func() {
		PatchGraph(base, []Edge{{2, 1, 1}, {1, 1, 1}})
	})
	mustPanic("duplicate delta pair", func() {
		PatchGraph(base, []Edge{{1, 1, 1}, {1, 1, 2}})
	})
	mustPanic("zero-weight delta edge", func() {
		PatchGraph(base, []Edge{{1, 1, 0}})
	})
	pruned := base.Clone()
	pruned.RemoveUser(1)
	mustPanic("pruned base", func() {
		PatchGraph(pruned, []Edge{{2, 2, 1}})
	})
}

// TestPatchGraphChain patches repeatedly — each result is the next base —
// mirroring how the streaming detector chains patches between compactions.
func TestPatchGraphChain(t *testing.T) {
	var history []Edge
	g := FromEdges(nil)
	for step := 0; step < 12; step++ {
		var delta []Edge
		for k := 0; k < 5; k++ {
			delta = append(delta, Edge{
				U:      NodeID((step*13 + k*7) % 40),
				V:      NodeID((step*5 + k*11) % 25),
				Weight: uint32(step + k + 1),
			})
		}
		agg := satAggregate(delta)
		g = PatchGraph(g, agg)
		history = append(history, agg...)
		sameGraph(t, g, FromEdges(satAggregate(history)))
	}
}

// FuzzGraphPatch decodes a byte string into a base history and a delta,
// then demands PatchGraph produce a graph byte-identical to building the
// combined history from scratch.
func FuzzGraphPatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 0, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add(bytes.Repeat([]byte{7, 3, 250, 9}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each 4-byte chunk is one edge: user, item, weight-ish, routing.
		// The routing byte sends the edge to the base or the delta; small
		// moduli force collisions so merges actually happen, and weights
		// near MaxUint32 exercise saturation.
		var baseEdges, deltaEdges []Edge
		for i := 0; i+4 <= len(data); i += 4 {
			w := uint32(data[i+2])
			if w%5 == 0 {
				w = math.MaxUint32 - uint32(data[i+2])
			}
			e := Edge{U: NodeID(data[i] % 16), V: NodeID(data[i+1] % 16), Weight: w}
			if data[i+3]%3 == 0 {
				deltaEdges = append(deltaEdges, e)
			} else {
				baseEdges = append(baseEdges, e)
			}
		}
		checkPatchOracle(t, baseEdges, deltaEdges)
	})
}

// TestPatchWeightMergeProperty is the quick.Check law for duplicate-edge
// weight merging: however a pair's click history is split between the base
// and the delta, the patched edge weight is the saturated sum of the whole
// history — saturating addition composes, so patching aggregates of
// aggregates loses nothing.
func TestPatchWeightMergeProperty(t *testing.T) {
	property := func(baseWeights, deltaWeights []uint32) bool {
		var base, delta []Edge
		var total uint64
		for _, w := range baseWeights {
			if w == 0 {
				continue
			}
			base = append(base, Edge{U: 1, V: 1, Weight: w})
			total += uint64(w)
		}
		for _, w := range deltaWeights {
			if w == 0 {
				continue
			}
			delta = append(delta, Edge{U: 1, V: 1, Weight: w})
			total += uint64(w)
		}
		if len(delta) == 0 {
			return true
		}
		g := PatchGraph(FromEdges(satAggregate(base)), satAggregate(delta))
		want := total
		if want > math.MaxUint32 {
			want = math.MaxUint32
		}
		return g.Weight(1, 1) == uint32(want) && g.LiveClicks() == want
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}
