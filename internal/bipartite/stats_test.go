package bipartite

import (
	"math"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestStatsUserSide(t *testing.T) {
	g := testGraph(t)
	s := Stats(g, UserSide)
	// Strengths: 4, 8, 7, 0 → mean 4.75; degrees: 2,3,1,0 → mean 1.5.
	if !almostEqual(s.AvgClicks, 4.75, 1e-9) {
		t.Errorf("AvgClicks = %v, want 4.75", s.AvgClicks)
	}
	if !almostEqual(s.AvgDegree, 1.5, 1e-9) {
		t.Errorf("AvgDegree = %v, want 1.5", s.AvgDegree)
	}
	wantVar := (16.0+64+49+0)/4 - 4.75*4.75
	if !almostEqual(s.StdevClicks, math.Sqrt(wantVar), 1e-9) {
		t.Errorf("StdevClicks = %v, want %v", s.StdevClicks, math.Sqrt(wantVar))
	}
}

func TestStatsItemSide(t *testing.T) {
	g := testGraph(t)
	s := Stats(g, ItemSide)
	// Item strengths: 5, 6, 8, 0 → mean 4.75; degrees 2,2,2,0 → 1.5.
	if !almostEqual(s.AvgClicks, 4.75, 1e-9) {
		t.Errorf("AvgClicks = %v, want 4.75", s.AvgClicks)
	}
	if !almostEqual(s.AvgDegree, 1.5, 1e-9) {
		t.Errorf("AvgDegree = %v, want 1.5", s.AvgDegree)
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	s := Stats(g, UserSide)
	if s.AvgClicks != 0 || s.AvgDegree != 0 || s.StdevClicks != 0 {
		t.Errorf("empty graph stats = %+v, want zeros", s)
	}
}

func TestStatsReflectDeletions(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(3) // drop the zero-strength user
	s := Stats(g, UserSide)
	if !almostEqual(s.AvgClicks, 19.0/3.0, 1e-9) {
		t.Errorf("AvgClicks = %v, want %v", s.AvgClicks, 19.0/3.0)
	}
}

func TestHistogramBuckets(t *testing.T) {
	g := testGraph(t)
	h := Histogram(g, UserSide)
	// Strengths 4, 8, 7, 0: bucket 0 (zero) → 1; [4,8) → u0 and u2; [8,16) → u1.
	total := 0
	for _, c := range h.Count {
		total += c
	}
	if total != g.LiveUsers() {
		t.Fatalf("histogram covers %d users, want %d", total, g.LiveUsers())
	}
	if h.Count[0] != 1 {
		t.Errorf("zero bucket = %d, want 1", h.Count[0])
	}
	find := func(low uint64) int {
		for i, l := range h.BucketLow {
			if l == low && i > 0 {
				return h.Count[i]
			}
		}
		return -1
	}
	if got := find(4); got != 2 {
		t.Errorf("bucket [4,8) = %d, want 2", got)
	}
	if got := find(8); got != 1 {
		t.Errorf("bucket [8,16) = %d, want 1", got)
	}
}

func TestGiniClicksBounds(t *testing.T) {
	// All-equal strengths → Gini 0.
	b := NewBuilder(4, 4)
	for i := NodeID(0); i < 4; i++ {
		b.Add(i, i, 10)
	}
	g := b.Build()
	if gini := GiniClicks(g, UserSide); !almostEqual(gini, 0, 1e-9) {
		t.Errorf("uniform Gini = %v, want 0", gini)
	}
	// One vertex holds everything → Gini → (n-1)/n.
	b2 := NewBuilder(4, 1)
	b2.Add(0, 0, 1000)
	b2.Add(1, 0, 0)
	g2 := b2.Build()
	gini := GiniClicks(g2, UserSide)
	if gini < 0.7 {
		t.Errorf("concentrated Gini = %v, want > 0.7", gini)
	}
}

func TestTopClickShare(t *testing.T) {
	// 10 users: one with 90 clicks, nine with 1 click gives top-10% share ≈ 0.909.
	b := NewBuilder(10, 1)
	b.Add(0, 0, 91)
	for i := NodeID(1); i < 10; i++ {
		b.Add(i, 0, 1)
	}
	g := b.Build()
	share := TopClickShare(g, UserSide, 0.1)
	if !almostEqual(share, 0.91, 1e-9) {
		t.Errorf("TopClickShare = %v, want 0.91", share)
	}
	if s := TopClickShare(g, UserSide, 1.0); !almostEqual(s, 1.0, 1e-9) {
		t.Errorf("full share = %v, want 1", s)
	}
}

func TestTopClickShareEmpty(t *testing.T) {
	g := NewGraph(0, 0)
	if s := TopClickShare(g, ItemSide, 0.2); s != 0 {
		t.Errorf("empty share = %v, want 0", s)
	}
}
