package bipartite

import "sort"

// This file implements the sorted-adjacency set operations that dominate the
// cost of the square-pruning stage of RICD (Algorithm 3) and of the
// common-neighbors baseline: intersection counting and two-hop neighborhood
// expansion.

// CommonUserNeighbors returns the number of live items adjacent to both
// users a and b (|a.adj ∩ b.adj| in the paper's notation).
func CommonUserNeighbors(g *Graph, a, b NodeID) int {
	if !g.UserAlive(a) || !g.UserAlive(b) {
		return 0
	}
	return countCommon(g.uAdj[a], g.uAdj[b], g.vAlive)
}

// CommonItemNeighbors returns the number of live users adjacent to both
// items a and b.
func CommonItemNeighbors(g *Graph, a, b NodeID) int {
	if !g.ItemAlive(a) || !g.ItemAlive(b) {
		return 0
	}
	return countCommon(g.vAdj[a], g.vAdj[b], g.uAlive)
}

// CommonUserNeighborsAtLeast reports whether users a and b share at least k
// live item neighbors, short-circuiting once k is reached.
func CommonUserNeighborsAtLeast(g *Graph, a, b NodeID, k int) bool {
	if k <= 0 {
		return true
	}
	if !g.UserAlive(a) || !g.UserAlive(b) {
		return false
	}
	return countCommonAtLeast(g.uAdj[a], g.uAdj[b], g.vAlive, k)
}

// CommonItemNeighborsAtLeast reports whether items a and b share at least k
// live user neighbors, short-circuiting once k is reached.
func CommonItemNeighborsAtLeast(g *Graph, a, b NodeID, k int) bool {
	if k <= 0 {
		return true
	}
	if !g.ItemAlive(a) || !g.ItemAlive(b) {
		return false
	}
	return countCommonAtLeast(g.vAdj[a], g.vAdj[b], g.uAlive, k)
}

func countCommon(a, b []Arc, alive []bool) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].To < b[j].To:
			i++
		case a[i].To > b[j].To:
			j++
		default:
			if alive[a[i].To] {
				n++
			}
			i++
			j++
		}
	}
	return n
}

func countCommonAtLeast(a, b []Arc, alive []bool, k int) bool {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Not enough remaining entries to ever reach k: bail out.
		rem := len(a) - i
		if len(b)-j < rem {
			rem = len(b) - j
		}
		if n+rem < k {
			return false
		}
		switch {
		case a[i].To < b[j].To:
			i++
		case a[i].To > b[j].To:
			j++
		default:
			if alive[a[i].To] {
				n++
				if n >= k {
					return true
				}
			}
			i++
			j++
		}
	}
	return n >= k
}

// TwoHopUsers returns the live users reachable from user u through one live
// item, excluding u itself. The result is sorted and duplicate-free. This is
// the candidate set the square-pruning stage must test for (α,k)-neighbor
// relations: any user sharing zero items trivially fails the test.
func TwoHopUsers(g *Graph, u NodeID) []NodeID {
	if !g.UserAlive(u) {
		return nil
	}
	seen := map[NodeID]struct{}{}
	g.EachUserNeighbor(u, func(v NodeID, _ uint32) bool {
		g.EachItemNeighbor(v, func(u2 NodeID, _ uint32) bool {
			if u2 != u {
				seen[u2] = struct{}{}
			}
			return true
		})
		return true
	})
	return sortedKeys(seen)
}

// TwoHopItems returns the live items reachable from item v through one live
// user, excluding v itself. The result is sorted and duplicate-free.
func TwoHopItems(g *Graph, v NodeID) []NodeID {
	if !g.ItemAlive(v) {
		return nil
	}
	seen := map[NodeID]struct{}{}
	g.EachItemNeighbor(v, func(u NodeID, _ uint32) bool {
		g.EachUserNeighbor(u, func(v2 NodeID, _ uint32) bool {
			if v2 != v {
				seen[v2] = struct{}{}
			}
			return true
		})
		return true
	})
	return sortedKeys(seen)
}

func sortedKeys(m map[NodeID]struct{}) []NodeID {
	if len(m) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
