package bipartite

import (
	"reflect"
	"testing"
)

// recordingObserver records every removal notification plus the live
// neighborhood of the removed vertex as seen AT hook time, to pin the
// contract that the observer fires before any mutation.
type recordingObserver struct {
	g     *Graph
	users []NodeID
	items []NodeID
	nbrs  map[string][]NodeID
}

func newRecordingObserver(g *Graph) *recordingObserver {
	return &recordingObserver{g: g, nbrs: map[string][]NodeID{}}
}

func (r *recordingObserver) UserRemoved(u NodeID) {
	r.users = append(r.users, u)
	var nbrs []NodeID
	r.g.EachUserNeighbor(u, func(v NodeID, _ uint32) bool {
		nbrs = append(nbrs, v)
		return true
	})
	r.nbrs["u"+string(rune('0'+u))] = nbrs
}

func (r *recordingObserver) ItemRemoved(v NodeID) {
	r.items = append(r.items, v)
	var nbrs []NodeID
	r.g.EachItemNeighbor(v, func(u NodeID, _ uint32) bool {
		nbrs = append(nbrs, u)
		return true
	})
	r.nbrs["v"+string(rune('0'+v))] = nbrs
}

func TestRemovalObserverSeesPreRemovalAdjacency(t *testing.T) {
	g := testGraph(t)
	obs := newRecordingObserver(g)
	if prev := g.SetRemovalObserver(obs); prev != nil {
		t.Fatalf("fresh graph reported a previous observer: %v", prev)
	}

	g.RemoveItem(1) // v1 — live users {0, 1} at removal time
	g.RemoveUser(1) // u1 — v1 already dead, so live items {0, 2}
	g.RemoveUser(1) // no-op: already dead, must not notify again

	if want := []NodeID{1}; !reflect.DeepEqual(obs.users, want) {
		t.Errorf("user notifications = %v, want %v", obs.users, want)
	}
	if want := []NodeID{1}; !reflect.DeepEqual(obs.items, want) {
		t.Errorf("item notifications = %v, want %v", obs.items, want)
	}
	if want := []NodeID{0, 1}; !reflect.DeepEqual(obs.nbrs["v1"], want) {
		t.Errorf("v1 hook-time neighbors = %v, want %v (pre-removal, live only)", obs.nbrs["v1"], want)
	}
	if want := []NodeID{0, 2}; !reflect.DeepEqual(obs.nbrs["u1"], want) {
		t.Errorf("u1 hook-time neighbors = %v, want %v (v1 dead by then)", obs.nbrs["u1"], want)
	}
}

func TestSetRemovalObserverSaveRestore(t *testing.T) {
	g := testGraph(t)
	first := newRecordingObserver(g)
	second := newRecordingObserver(g)

	if prev := g.SetRemovalObserver(first); prev != nil {
		t.Fatalf("unexpected previous observer %v", prev)
	}
	prev := g.SetRemovalObserver(second)
	if prev != RemovalObserver(first) {
		t.Fatalf("SetRemovalObserver returned %v, want the first observer", prev)
	}
	g.RemoveUser(0)
	if len(first.users) != 0 || len(second.users) != 1 {
		t.Errorf("notifications went to the wrong observer: first=%v second=%v", first.users, second.users)
	}
	g.SetRemovalObserver(prev) // restore
	g.RemoveUser(2)
	if len(first.users) != 1 || len(second.users) != 1 {
		t.Errorf("restore failed: first=%v second=%v", first.users, second.users)
	}
}

func TestRemovalEpochCountsEffectiveRemovals(t *testing.T) {
	g := testGraph(t)
	if g.RemovalEpoch() != 0 {
		t.Fatalf("fresh graph epoch = %d, want 0", g.RemovalEpoch())
	}
	g.RemoveUser(0)
	g.RemoveUser(0) // no-op must not bump the epoch
	g.RemoveItem(2)
	if got := g.RemovalEpoch(); got != 2 {
		t.Errorf("epoch = %d, want 2 (no-op removals excluded)", got)
	}

	// Clones inherit the epoch but advance independently, and deliberately
	// drop the observer (mass-edited clones must not spam it).
	obs := newRecordingObserver(g)
	g.SetRemovalObserver(obs)
	c := g.Clone()
	if c.RemovalEpoch() != g.RemovalEpoch() {
		t.Errorf("clone epoch = %d, want %d", c.RemovalEpoch(), g.RemovalEpoch())
	}
	c.RemoveUser(1)
	if c.RemovalEpoch() != 3 || g.RemovalEpoch() != 2 {
		t.Errorf("epochs entangled: clone=%d source=%d", c.RemovalEpoch(), g.RemovalEpoch())
	}
	if len(obs.users) != 0 {
		t.Errorf("clone removal notified the source's observer: %v", obs.users)
	}
}
