package bipartite

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	builder := NewBuilder(5000, 1000)
	for e := 0; e < 40000; e++ {
		builder.Add(NodeID(rng.Intn(5000)), NodeID(rng.Intn(1000)), uint32(1+rng.Intn(10)))
	}
	return builder.Build()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, 40000)
	for i := range edges {
		edges[i] = Edge{
			U:      NodeID(rng.Intn(5000)),
			V:      NodeID(rng.Intn(1000)),
			Weight: uint32(1 + rng.Intn(10)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder(5000, 1000)
		builder.AddEdges(edges)
		_ = builder.Build()
	}
}

func BenchmarkCommonUserNeighbors(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CommonUserNeighbors(g, NodeID(i%1000), NodeID((i+7)%1000))
	}
}

func BenchmarkTwoHopUsers(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoHopUsers(g, NodeID(i%1000))
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkRemoveAndClone(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		for u := NodeID(0); u < 500; u++ {
			c.RemoveUser(u)
		}
	}
}

func BenchmarkStats(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stats(g, UserSide)
		Stats(g, ItemSide)
	}
}
