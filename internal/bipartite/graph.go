// Package bipartite implements a weighted bipartite graph tailored to
// user-item click data. It is the substrate shared by every detection
// algorithm in this repository.
//
// The two vertex sides are called "users" (left, U) and "items" (right, V).
// An edge (u, v, w) records that user u clicked item v exactly w times.
// The representation is an adjacency-list structure with support for
// cheap logical deletion of vertices, which the pruning-style algorithms
// (RICD core pruning, FRAUDAR peeling, ...) rely on heavily.
package bipartite

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex within one side of the graph. User IDs and
// item IDs are separate namespaces: user 3 and item 3 are distinct vertices.
type NodeID = uint32

// Side distinguishes the two vertex classes of the bipartite graph.
type Side uint8

// The two sides of the bipartite graph.
const (
	UserSide Side = iota
	ItemSide
)

// String returns "user" or "item".
func (s Side) String() string {
	if s == UserSide {
		return "user"
	}
	return "item"
}

// Arc is one directed half of an undirected weighted edge: the neighbor on
// the opposite side and the click weight.
type Arc struct {
	To     NodeID
	Weight uint32
}

// Edge is an undirected weighted edge between user U and item V.
type Edge struct {
	U, V   NodeID
	Weight uint32
}

// Graph is a weighted bipartite graph with logical vertex deletion.
//
// Vertices are dense integers 0..NumUsers-1 and 0..NumItems-1. Deleting a
// vertex marks it dead and updates the live degrees of its neighbors in
// O(degree); adjacency slices are never rewritten, so iteration must skip
// dead endpoints (the Neighbors / EachNeighbor helpers do this).
type Graph struct {
	uAdj [][]Arc // uAdj[u] sorted by To
	vAdj [][]Arc // vAdj[v] sorted by To

	uAlive []bool
	vAlive []bool

	uDeg []int32 // live degree of each user
	vDeg []int32 // live degree of each item

	uStrength []uint64 // live click weight incident to each user
	vStrength []uint64 // live click weight incident to each item

	liveUsers int
	liveItems int
	liveEdges int
	liveClick uint64

	removals uint64          // epoch counter: total vertex removals applied
	observer RemovalObserver // notified at the start of each removal; may be nil
}

// RemovalObserver is notified synchronously at the START of RemoveUser /
// RemoveItem, before any liveness state is mutated: the vertex and its
// adjacency are still fully traversable, so the observer sees the graph
// exactly as it was when the removal was decided. Incremental algorithms
// (the dirty-frontier square pruning in internal/core) use this to mark the
// removed vertex's surviving neighborhood for re-evaluation.
type RemovalObserver interface {
	UserRemoved(u NodeID)
	ItemRemoved(v NodeID)
}

// NewGraph returns an empty graph with capacity for the given number of
// users and items and no edges. Use a Builder to construct a populated graph.
func NewGraph(numUsers, numItems int) *Graph {
	g := &Graph{
		uAdj:      make([][]Arc, numUsers),
		vAdj:      make([][]Arc, numItems),
		uAlive:    make([]bool, numUsers),
		vAlive:    make([]bool, numItems),
		uDeg:      make([]int32, numUsers),
		vDeg:      make([]int32, numItems),
		uStrength: make([]uint64, numUsers),
		vStrength: make([]uint64, numItems),
		liveUsers: numUsers,
		liveItems: numItems,
	}
	for i := range g.uAlive {
		g.uAlive[i] = true
	}
	for i := range g.vAlive {
		g.vAlive[i] = true
	}
	return g
}

// NumUsers returns the total number of user vertices ever allocated,
// including dead ones.
func (g *Graph) NumUsers() int { return len(g.uAdj) }

// NumItems returns the total number of item vertices ever allocated,
// including dead ones.
func (g *Graph) NumItems() int { return len(g.vAdj) }

// LiveUsers returns the number of user vertices not deleted.
func (g *Graph) LiveUsers() int { return g.liveUsers }

// LiveItems returns the number of item vertices not deleted.
func (g *Graph) LiveItems() int { return g.liveItems }

// LiveEdges returns the number of edges whose both endpoints are alive.
func (g *Graph) LiveEdges() int { return g.liveEdges }

// LiveClicks returns the total click weight over live edges.
func (g *Graph) LiveClicks() uint64 { return g.liveClick }

// UserAlive reports whether user u exists and has not been deleted.
func (g *Graph) UserAlive(u NodeID) bool {
	return int(u) < len(g.uAlive) && g.uAlive[u]
}

// ItemAlive reports whether item v exists and has not been deleted.
func (g *Graph) ItemAlive(v NodeID) bool {
	return int(v) < len(g.vAlive) && g.vAlive[v]
}

// UserDegree returns the live degree (number of live item neighbors) of u.
func (g *Graph) UserDegree(u NodeID) int { return int(g.uDeg[u]) }

// ItemDegree returns the live degree (number of live user neighbors) of v.
func (g *Graph) ItemDegree(v NodeID) int { return int(g.vDeg[v]) }

// UserStrength returns the total live click weight incident to user u.
func (g *Graph) UserStrength(u NodeID) uint64 { return g.uStrength[u] }

// ItemStrength returns the total live click weight incident to item v,
// i.e. the item's total click count from live users.
func (g *Graph) ItemStrength(v NodeID) uint64 { return g.vStrength[v] }

// Weight returns the click weight of edge (u, v), or 0 if the edge does not
// exist or either endpoint is dead.
func (g *Graph) Weight(u, v NodeID) uint32 {
	if !g.UserAlive(u) || !g.ItemAlive(v) {
		return 0
	}
	adj := g.uAdj[u]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].To >= v })
	if i < len(adj) && adj[i].To == v {
		return adj[i].Weight
	}
	return 0
}

// HasEdge reports whether the live edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.Weight(u, v) > 0 }

// EachUserNeighbor calls fn for every live item neighbor of user u with the
// edge weight. Iteration is in increasing item-ID order. If fn returns false
// the iteration stops early.
func (g *Graph) EachUserNeighbor(u NodeID, fn func(v NodeID, w uint32) bool) {
	if !g.UserAlive(u) {
		return
	}
	for _, a := range g.uAdj[u] {
		if g.vAlive[a.To] {
			if !fn(a.To, a.Weight) {
				return
			}
		}
	}
}

// EachItemNeighbor calls fn for every live user neighbor of item v with the
// edge weight. Iteration is in increasing user-ID order. If fn returns false
// the iteration stops early.
func (g *Graph) EachItemNeighbor(v NodeID, fn func(u NodeID, w uint32) bool) {
	if !g.ItemAlive(v) {
		return
	}
	for _, a := range g.vAdj[v] {
		if g.uAlive[a.To] {
			if !fn(a.To, a.Weight) {
				return
			}
		}
	}
}

// UserNeighbors returns the live item neighbors of u as a fresh slice,
// sorted by item ID.
func (g *Graph) UserNeighbors(u NodeID) []Arc {
	var out []Arc
	g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
		out = append(out, Arc{To: v, Weight: w})
		return true
	})
	return out
}

// ItemNeighbors returns the live user neighbors of v as a fresh slice,
// sorted by user ID.
func (g *Graph) ItemNeighbors(v NodeID) []Arc {
	var out []Arc
	g.EachItemNeighbor(v, func(u NodeID, w uint32) bool {
		out = append(out, Arc{To: u, Weight: w})
		return true
	})
	return out
}

// SetRemovalObserver installs o as the graph's removal observer and returns
// the previous one (nil if none), so callers can save/restore around a scoped
// use. Observers do not survive Clone or CompactComponent: clones are
// mass-edited by unrelated passes, and compact graphs live in a different ID
// space.
func (g *Graph) SetRemovalObserver(o RemovalObserver) (prev RemovalObserver) {
	prev, g.observer = g.observer, o
	return prev
}

// RemovalEpoch returns the total number of vertex removals ever applied to
// this graph (no-op removals of already-dead vertices do not count). Clones
// inherit the epoch of their source, so two graphs that underwent the same
// removal sequence — e.g. the sharded and serial prune paths — report the
// same epoch.
func (g *Graph) RemovalEpoch() uint64 { return g.removals }

// RemoveUser deletes user u and its incident edges. Removing an already-dead
// user is a no-op.
func (g *Graph) RemoveUser(u NodeID) {
	if !g.UserAlive(u) {
		return
	}
	if g.observer != nil {
		g.observer.UserRemoved(u)
	}
	g.removals++
	g.uAlive[u] = false
	g.liveUsers--
	for _, a := range g.uAdj[u] {
		if g.vAlive[a.To] {
			g.vDeg[a.To]--
			g.vStrength[a.To] -= uint64(a.Weight)
			g.liveEdges--
			g.liveClick -= uint64(a.Weight)
		}
	}
	g.uDeg[u] = 0
	g.uStrength[u] = 0
}

// RemoveItem deletes item v and its incident edges. Removing an already-dead
// item is a no-op.
func (g *Graph) RemoveItem(v NodeID) {
	if !g.ItemAlive(v) {
		return
	}
	if g.observer != nil {
		g.observer.ItemRemoved(v)
	}
	g.removals++
	g.vAlive[v] = false
	g.liveItems--
	for _, a := range g.vAdj[v] {
		if g.uAlive[a.To] {
			g.uDeg[a.To]--
			g.uStrength[a.To] -= uint64(a.Weight)
			g.liveEdges--
			g.liveClick -= uint64(a.Weight)
		}
	}
	g.vDeg[v] = 0
	g.vStrength[v] = 0
}

// Remove deletes the vertex id on the given side.
func (g *Graph) Remove(s Side, id NodeID) {
	if s == UserSide {
		g.RemoveUser(id)
	} else {
		g.RemoveItem(id)
	}
}

// EachLiveUser calls fn for every live user in increasing ID order.
func (g *Graph) EachLiveUser(fn func(u NodeID) bool) {
	for u := range g.uAlive {
		if g.uAlive[u] {
			if !fn(NodeID(u)) {
				return
			}
		}
	}
}

// EachLiveItem calls fn for every live item in increasing ID order.
func (g *Graph) EachLiveItem(fn func(v NodeID) bool) {
	for v := range g.vAlive {
		if g.vAlive[v] {
			if !fn(NodeID(v)) {
				return
			}
		}
	}
}

// LiveUserIDs returns the IDs of all live users in increasing order.
func (g *Graph) LiveUserIDs() []NodeID {
	out := make([]NodeID, 0, g.liveUsers)
	g.EachLiveUser(func(u NodeID) bool { out = append(out, u); return true })
	return out
}

// LiveItemIDs returns the IDs of all live items in increasing order.
func (g *Graph) LiveItemIDs() []NodeID {
	out := make([]NodeID, 0, g.liveItems)
	g.EachLiveItem(func(v NodeID) bool { out = append(out, v); return true })
	return out
}

// Edges returns all live edges in (user, item) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.liveEdges)
	g.EachLiveUser(func(u NodeID) bool {
		g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
			out = append(out, Edge{U: u, V: v, Weight: w})
			return true
		})
		return true
	})
	return out
}

// Clone returns a deep copy of the graph, preserving deletions.
// Adjacency slices are shared because they are immutable after build;
// only the mutable liveness state is copied. The removal epoch carries over;
// the removal observer deliberately does not (see SetRemovalObserver).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		removals:  g.removals,
		uAdj:      g.uAdj,
		vAdj:      g.vAdj,
		uAlive:    append([]bool(nil), g.uAlive...),
		vAlive:    append([]bool(nil), g.vAlive...),
		uDeg:      append([]int32(nil), g.uDeg...),
		vDeg:      append([]int32(nil), g.vDeg...),
		uStrength: append([]uint64(nil), g.uStrength...),
		vStrength: append([]uint64(nil), g.vStrength...),
		liveUsers: g.liveUsers,
		liveItems: g.liveItems,
		liveEdges: g.liveEdges,
		liveClick: g.liveClick,
	}
	return c
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("bipartite.Graph{users=%d/%d items=%d/%d edges=%d clicks=%d}",
		g.liveUsers, len(g.uAdj), g.liveItems, len(g.vAdj), g.liveEdges, g.liveClick)
}
