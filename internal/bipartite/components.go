package bipartite

import "sort"

// Component is a connected set of live users and items.
type Component struct {
	Users []NodeID
	Items []NodeID
}

// Size returns the total number of vertices in the component.
func (c Component) Size() int { return len(c.Users) + len(c.Items) }

// ConnectedComponents returns the connected components of the live part of
// g, largest first. Isolated vertices (live degree 0) form singleton
// components and are included.
func ConnectedComponents(g *Graph) []Component {
	uSeen := make([]bool, g.NumUsers())
	vSeen := make([]bool, g.NumItems())
	var comps []Component

	// BFS queue entries encode side in the high bit of a uint64 to avoid
	// allocating a struct per frontier entry.
	const itemBit = uint64(1) << 32

	bfs := func(startUser NodeID) Component {
		var comp Component
		queue := []uint64{uint64(startUser)}
		uSeen[startUser] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur&itemBit == 0 {
				u := NodeID(cur)
				comp.Users = append(comp.Users, u)
				g.EachUserNeighbor(u, func(v NodeID, _ uint32) bool {
					if !vSeen[v] {
						vSeen[v] = true
						queue = append(queue, uint64(v)|itemBit)
					}
					return true
				})
			} else {
				v := NodeID(cur &^ itemBit)
				comp.Items = append(comp.Items, v)
				g.EachItemNeighbor(v, func(u NodeID, _ uint32) bool {
					if !uSeen[u] {
						uSeen[u] = true
						queue = append(queue, uint64(u))
					}
					return true
				})
			}
		}
		sort.Slice(comp.Users, func(i, j int) bool { return comp.Users[i] < comp.Users[j] })
		sort.Slice(comp.Items, func(i, j int) bool { return comp.Items[i] < comp.Items[j] })
		return comp
	}

	g.EachLiveUser(func(u NodeID) bool {
		if !uSeen[u] {
			comps = append(comps, bfs(u))
		}
		return true
	})
	// Items unreachable from any user (isolated items).
	g.EachLiveItem(func(v NodeID) bool {
		if !vSeen[v] {
			vSeen[v] = true
			comps = append(comps, Component{Items: []NodeID{v}})
		}
		return true
	})

	sort.SliceStable(comps, func(i, j int) bool { return comps[i].Size() > comps[j].Size() })
	return comps
}

// CompactComponent builds a standalone compact graph containing exactly the
// vertices of comp, which must be closed under live adjacency in g — e.g. an
// element of ConnectedComponents(g). It returns the compact graph and the
// local→original ID mappings for both sides.
//
// Local IDs are assigned by position in comp.Users/comp.Items (both sorted
// ascending), so userOf and itemOf are strictly increasing: ID comparisons,
// and therefore every ID-ordered traversal, agree between the compact graph
// and g. Unlike Compact, no Builder round-trip and no whole-graph scan is
// involved — the cost is proportional to the component alone, which is what
// the sharded pruning path relies on.
//
// The compact graph starts at removal epoch 0 with no removal observer:
// incremental passes attach their own per-shard observer to c, and the
// shard's removals reach g (bumping g's epoch) only when the merger replays
// them through g.RemoveUser/RemoveItem.
func CompactComponent(g *Graph, comp Component) (c *Graph, userOf, itemOf []NodeID) {
	userOf, itemOf = comp.Users, comp.Items
	localU := make(map[NodeID]NodeID, len(userOf))
	localV := make(map[NodeID]NodeID, len(itemOf))
	for i, u := range userOf {
		localU[u] = NodeID(i)
	}
	for i, v := range itemOf {
		localV[v] = NodeID(i)
	}

	c = NewGraph(len(userOf), len(itemOf))
	for lu, u := range userOf {
		arcs := make([]Arc, 0, g.UserDegree(u))
		g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
			lv, ok := localV[v]
			if !ok {
				panic("bipartite: CompactComponent: neighbor outside component")
			}
			// EachUserNeighbor ascends by original item ID and localV is
			// monotone, so arcs stay sorted by To.
			arcs = append(arcs, Arc{To: lv, Weight: w})
			c.uStrength[lu] += uint64(w)
			c.vStrength[lv] += uint64(w)
			c.vDeg[lv]++
			c.liveEdges++
			c.liveClick += uint64(w)
			return true
		})
		c.uAdj[lu] = arcs
		c.uDeg[lu] = int32(len(arcs))
	}
	for lv, v := range itemOf {
		arcs := make([]Arc, 0, c.vDeg[lv])
		g.EachItemNeighbor(v, func(u NodeID, w uint32) bool {
			lu, ok := localU[u]
			if !ok {
				panic("bipartite: CompactComponent: neighbor outside component")
			}
			arcs = append(arcs, Arc{To: lu, Weight: w})
			return true
		})
		c.vAdj[lv] = arcs
	}
	return c, userOf, itemOf
}
