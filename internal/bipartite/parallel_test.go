package bipartite

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomEdges returns a seeded multiset of edges with deliberate duplicates,
// so duplicate-merging is exercised on every run.
func randomEdges(seed int64, n, users, items int) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{
			U:      NodeID(rng.Intn(users)),
			V:      NodeID(rng.Intn(items)),
			Weight: uint32(1 + rng.Intn(9)),
		})
	}
	return edges
}

// graphsEqual compares every observable of two graphs: sizes, totals,
// degrees, strengths, and both adjacency directions including weights.
func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumItems() != want.NumItems() {
		t.Fatalf("sizes %d/%d, want %d/%d", got.NumUsers(), got.NumItems(), want.NumUsers(), want.NumItems())
	}
	if got.LiveEdges() != want.LiveEdges() || got.LiveClicks() != want.LiveClicks() {
		t.Fatalf("edges/clicks %d/%d, want %d/%d", got.LiveEdges(), got.LiveClicks(), want.LiveEdges(), want.LiveClicks())
	}
	for u := 0; u < want.NumUsers(); u++ {
		id := NodeID(u)
		if got.UserDegree(id) != want.UserDegree(id) || got.UserStrength(id) != want.UserStrength(id) {
			t.Fatalf("user %d degree/strength diverge", u)
		}
		if !reflect.DeepEqual(got.UserNeighbors(id), want.UserNeighbors(id)) {
			t.Fatalf("user %d adjacency diverges:\n got %v\nwant %v", u, got.UserNeighbors(id), want.UserNeighbors(id))
		}
	}
	for v := 0; v < want.NumItems(); v++ {
		id := NodeID(v)
		if got.ItemDegree(id) != want.ItemDegree(id) || got.ItemStrength(id) != want.ItemStrength(id) {
			t.Fatalf("item %d degree/strength diverge", v)
		}
		if !reflect.DeepEqual(got.ItemNeighbors(id), want.ItemNeighbors(id)) {
			t.Fatalf("item %d adjacency diverges:\n got %v\nwant %v", v, got.ItemNeighbors(id), want.ItemNeighbors(id))
		}
	}
}

func TestBuildWorkersMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		edges := randomEdges(seed, 30000, 900, 250)

		ref := NewBuilder(0, 0)
		ref.AddEdges(edges)
		want := ref.BuildSerial()

		for _, w := range []int{2, 3, 8} {
			b := NewBuilder(0, 0)
			b.AddEdges(edges)
			got := b.BuildWorkers(w)
			graphsEqual(t, got, want)
		}
	}
}

func TestBuildWorkersSmallInputFallsBackToSerial(t *testing.T) {
	// Below the parallel grain the same builder must still produce the
	// reference graph (the fallback path), including edge cases: empty and
	// all-duplicates inputs.
	b := NewBuilder(0, 0)
	if g := b.BuildWorkers(8); g.LiveEdges() != 0 {
		t.Fatalf("empty build has %d edges", g.LiveEdges())
	}
	b = NewBuilder(0, 0)
	for i := 0; i < 100; i++ {
		b.Add(3, 5, 2)
	}
	g := b.BuildWorkers(8)
	if g.LiveEdges() != 1 || g.Weight(3, 5) != 200 {
		t.Fatalf("duplicate merge: edges=%d w=%d, want 1/200", g.LiveEdges(), g.Weight(3, 5))
	}
}

func TestCompactComponentPreservesStructure(t *testing.T) {
	// Two separated blocks plus noise; prune one user so liveness filtering
	// is exercised, then compact each component and verify it mirrors the
	// original component exactly under the ID mappings.
	b := NewBuilder(0, 0)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			b.Add(NodeID(u), NodeID(v), uint32(1+u+v))
		}
	}
	for u := 20; u < 26; u++ {
		for v := 30; v < 35; v++ {
			b.Add(NodeID(u), NodeID(v), 3)
		}
	}
	g := b.Build()
	g.RemoveUser(7)
	g.RemoveItem(2)

	comps := ConnectedComponents(g)
	var nonTrivial int
	for _, comp := range comps {
		if len(comp.Users) == 0 {
			continue
		}
		nonTrivial++
		c, userOf, itemOf := CompactComponent(g, comp)
		if c.NumUsers() != len(comp.Users) || c.NumItems() != len(comp.Items) {
			t.Fatalf("compact sizes %d/%d, want %d/%d", c.NumUsers(), c.NumItems(), len(comp.Users), len(comp.Items))
		}
		totalEdges := 0
		for lu, u := range userOf {
			if c.UserDegree(NodeID(lu)) != g.UserDegree(u) {
				t.Fatalf("user %d compact degree %d, original %d", u, c.UserDegree(NodeID(lu)), g.UserDegree(u))
			}
			if c.UserStrength(NodeID(lu)) != g.UserStrength(u) {
				t.Fatalf("user %d strength diverges", u)
			}
			got := c.UserNeighbors(NodeID(lu))
			want := g.UserNeighbors(u)
			if len(got) != len(want) {
				t.Fatalf("user %d adjacency length diverges", u)
			}
			for i := range got {
				if itemOf[got[i].To] != want[i].To || got[i].Weight != want[i].Weight {
					t.Fatalf("user %d arc %d maps to (%d,%d), want (%d,%d)",
						u, i, itemOf[got[i].To], got[i].Weight, want[i].To, want[i].Weight)
				}
			}
			totalEdges += len(got)
		}
		for lv, v := range itemOf {
			if c.ItemDegree(NodeID(lv)) != g.ItemDegree(v) || c.ItemStrength(NodeID(lv)) != g.ItemStrength(v) {
				t.Fatalf("item %d degree/strength diverge", v)
			}
			got := c.ItemNeighbors(NodeID(lv))
			want := g.ItemNeighbors(v)
			for i := range got {
				if userOf[got[i].To] != want[i].To || got[i].Weight != want[i].Weight {
					t.Fatalf("item %d adjacency diverges", v)
				}
			}
		}
		if totalEdges != c.LiveEdges() {
			t.Fatalf("edge total %d, graph reports %d", totalEdges, c.LiveEdges())
		}
	}
	if nonTrivial < 2 {
		t.Fatalf("expected ≥ 2 user-bearing components, got %d", nonTrivial)
	}
}

func TestCompactComponentAgreesWithCompact(t *testing.T) {
	// On a single-component graph, CompactComponent must reproduce the
	// Builder-based Compact exactly.
	b := NewBuilder(0, 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		b.Add(NodeID(rng.Intn(15)), NodeID(rng.Intn(12)), uint32(1+rng.Intn(4)))
	}
	g := b.Build()
	g.RemoveUser(3)
	g.RemoveItem(8)

	comps := ConnectedComponents(g)
	if len(comps) != 1 {
		t.Skipf("graph split into %d components; test wants 1", len(comps))
	}
	want, wantUsers, wantItems := Compact(g)
	got, gotUsers, gotItems := CompactComponent(g, comps[0])
	if !reflect.DeepEqual(gotUsers, wantUsers) || !reflect.DeepEqual(gotItems, wantItems) {
		t.Fatal("ID mappings diverge from Compact")
	}
	graphsEqual(t, got, want)
}
