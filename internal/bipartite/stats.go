package bipartite

import (
	"math"
	"sort"
)

// SideStats summarizes the click activity of one side of the graph, matching
// the columns of the paper's Table II.
type SideStats struct {
	// AvgClicks is the average total click weight per live vertex
	// (Avg_clk for users, i.e. clicks issued; for items, clicks received).
	AvgClicks float64
	// AvgDegree is the average number of distinct live counterparts
	// (Avg_cnt in the paper).
	AvgDegree float64
	// StdevClicks is the population standard deviation of total click
	// weight per live vertex (Stdev in the paper).
	StdevClicks float64
}

// Stats computes Table II-style statistics for the requested side of g.
func Stats(g *Graph, s Side) SideStats {
	var n int
	var sum, sumSq float64
	var deg int64
	add := func(strength uint64, degree int) {
		n++
		x := float64(strength)
		sum += x
		sumSq += x * x
		deg += int64(degree)
	}
	if s == UserSide {
		g.EachLiveUser(func(u NodeID) bool {
			add(g.UserStrength(u), g.UserDegree(u))
			return true
		})
	} else {
		g.EachLiveItem(func(v NodeID) bool {
			add(g.ItemStrength(v), g.ItemDegree(v))
			return true
		})
	}
	if n == 0 {
		return SideStats{}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return SideStats{
		AvgClicks:   mean,
		AvgDegree:   float64(deg) / float64(n),
		StdevClicks: math.Sqrt(variance),
	}
}

// ClickHistogram is a log-binned histogram of per-vertex total clicks, used
// to reproduce the heavy-tailed distributions of the paper's Fig 2.
type ClickHistogram struct {
	// BucketLow[i] is the inclusive lower click bound of bucket i; buckets
	// are powers of two: [1,2), [2,4), [4,8), ...; bucket 0 counts
	// zero-click vertices.
	BucketLow []uint64
	Count     []int
}

// Histogram builds the log-binned click histogram for the requested side.
func Histogram(g *Graph, s Side) ClickHistogram {
	counts := map[int]int{}
	maxBucket := 0
	observe := func(strength uint64) {
		b := 0
		if strength > 0 {
			b = 1 + bitsLen(strength) // [1,2)→1, [2,4)→2, ...
		}
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	if s == UserSide {
		g.EachLiveUser(func(u NodeID) bool { observe(g.UserStrength(u)); return true })
	} else {
		g.EachLiveItem(func(v NodeID) bool { observe(g.ItemStrength(v)); return true })
	}
	h := ClickHistogram{
		BucketLow: make([]uint64, maxBucket+1),
		Count:     make([]int, maxBucket+1),
	}
	for b := 0; b <= maxBucket; b++ {
		if b > 0 {
			h.BucketLow[b] = uint64(1) << uint(b-1)
		}
		h.Count[b] = counts[b]
	}
	return h
}

func bitsLen(x uint64) int {
	n := -1
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// GiniClicks returns the Gini coefficient of the per-vertex total click
// distribution for the requested side — a scalar heavy-tail measure used by
// the synthetic-data validation tests (a Pareto 80/20 split corresponds to a
// Gini of about 0.6 or more).
func GiniClicks(g *Graph, s Side) float64 {
	var xs []float64
	if s == UserSide {
		g.EachLiveUser(func(u NodeID) bool {
			xs = append(xs, float64(g.UserStrength(u)))
			return true
		})
	} else {
		g.EachLiveItem(func(v NodeID) bool {
			xs = append(xs, float64(g.ItemStrength(v)))
			return true
		})
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// TopClickShare returns the fraction of total click weight captured by the
// top `fraction` (for example 0.2) of vertices on side s, ranked by clicks.
// A Pareto-principle dataset has TopClickShare(g, ItemSide, 0.2) ≈ 0.8.
func TopClickShare(g *Graph, s Side, fraction float64) float64 {
	var xs []uint64
	if s == UserSide {
		g.EachLiveUser(func(u NodeID) bool {
			xs = append(xs, g.UserStrength(u))
			return true
		})
	} else {
		g.EachLiveItem(func(v NodeID) bool {
			xs = append(xs, g.ItemStrength(v))
			return true
		})
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] > xs[j] })
	k := int(math.Ceil(fraction * float64(len(xs))))
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	var top, total uint64
	for i, x := range xs {
		if i < k {
			top += x
		}
		total += x
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
