package bipartite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary graph format is a compact snapshot of the live part of a graph:
//
//	magic "BPG1" | numUsers u32 | numItems u32 | numEdges u32
//	then numEdges × (user u32 | item u32 | weight u32), little endian,
//	sorted by (user, item).
//
// Dead vertices are written as vertices with no edges; liveness is not
// preserved across a round trip (loading yields an all-live graph), which is
// what the offline pipeline wants: pruning state is transient.

var binaryMagic = [4]byte{'B', 'P', 'G', '1'}

// WriteBinary writes the live part of g to w in the binary graph format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("bipartite: write header: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.NumUsers()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.NumItems()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(g.LiveEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("bipartite: write header: %w", err)
	}
	var rec [12]byte
	var werr error
	g.EachLiveUser(func(u NodeID) bool {
		g.EachUserNeighbor(u, func(v NodeID, wgt uint32) bool {
			binary.LittleEndian.PutUint32(rec[0:], u)
			binary.LittleEndian.PutUint32(rec[4:], v)
			binary.LittleEndian.PutUint32(rec[8:], wgt)
			if _, err := bw.Write(rec[:]); err != nil {
				werr = fmt.Errorf("bipartite: write edge: %w", err)
				return false
			}
			return true
		})
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary graph format from r.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("bipartite: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("bipartite: bad magic %q", magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("bipartite: read header: %w", err)
	}
	numUsers := binary.LittleEndian.Uint32(hdr[0:])
	numItems := binary.LittleEndian.Uint32(hdr[4:])
	numEdges := binary.LittleEndian.Uint32(hdr[8:])
	// Vertex counts drive per-vertex allocations in Build; refuse headers
	// claiming absurd sizes so corrupt streams fail cleanly, not by OOM.
	const maxVertices = 1 << 28
	if numUsers > maxVertices || numItems > maxVertices {
		return nil, fmt.Errorf("bipartite: header claims %d users / %d items", numUsers, numItems)
	}

	b := NewBuilder(int(numUsers), int(numItems))
	var rec [12]byte
	for i := uint32(0); i < numEdges; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("bipartite: read edge %d/%d: %w", i, numEdges, err)
		}
		u := binary.LittleEndian.Uint32(rec[0:])
		v := binary.LittleEndian.Uint32(rec[4:])
		w := binary.LittleEndian.Uint32(rec[8:])
		if u >= numUsers || v >= numItems {
			return nil, fmt.Errorf("bipartite: edge %d (%d,%d) out of range (%d users, %d items)",
				i, u, v, numUsers, numItems)
		}
		b.Add(u, v, w)
	}
	return b.Build(), nil
}
