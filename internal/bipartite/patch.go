package bipartite

import (
	"fmt"
	"sort"
)

// PatchGraph builds the graph a from-scratch Build over base's edges plus
// delta would produce, without re-running the build: untouched users keep
// their adjacency slices (safe to share — adjacency is immutable after
// build), and only the rows of users and the columns of items appearing in
// delta are rewritten, merging weights for existing edges and splicing new
// ones in sorted position. Cost is O(|delta| + Σ degree(touched vertices)),
// independent of the size of base.
//
// Weight merges saturate at MaxUint32, matching clicktable.Aggregate's
// semantics: because saturating addition composes (cap(a+b) equals
// cap(cap(a)+cap(b)) for uint64 partial sums), patching an aggregated base
// with an aggregated delta yields exactly the aggregate of the full
// history, which is what makes the result byte-identical to the rebuild
// path the streaming detector pins as its oracle.
//
// Preconditions, checked and enforced by panic (violations are programming
// errors, not data errors): base must be fully live — no vertex ever
// removed — and delta must be sorted by (U, V) with unique pairs and
// non-zero weights, i.e. aggregated. The returned graph is fully live,
// carries no removal observer, and shares no mutable state with base; base
// itself is never modified. An empty delta returns base unchanged.
func PatchGraph(base *Graph, delta []Edge) *Graph {
	if base.removals != 0 || base.liveUsers != len(base.uAdj) || base.liveItems != len(base.vAdj) {
		panic("bipartite: PatchGraph requires a fully live base graph")
	}
	if len(delta) == 0 {
		return base
	}
	validateDelta(delta)

	numUsers, numItems := len(base.uAdj), len(base.vAdj)
	for _, e := range delta {
		if int(e.U) >= numUsers {
			numUsers = int(e.U) + 1
		}
		if int(e.V) >= numItems {
			numItems = int(e.V) + 1
		}
	}

	g := &Graph{
		uAdj:      growAdj(base.uAdj, numUsers),
		vAdj:      growAdj(base.vAdj, numItems),
		uAlive:    allTrue(numUsers),
		vAlive:    allTrue(numItems),
		uDeg:      growCopy(base.uDeg, numUsers),
		vDeg:      growCopy(base.vDeg, numItems),
		uStrength: growCopy(base.uStrength, numUsers),
		vStrength: growCopy(base.vStrength, numItems),
		liveUsers: numUsers,
		liveItems: numItems,
		liveEdges: base.liveEdges,
		liveClick: base.liveClick,
	}

	// User rows: delta is already sorted by (U, V), so each user's new arcs
	// are one contiguous run, itself sorted by item — merge it into the
	// user's existing sorted row.
	for i := 0; i < len(delta); {
		u := delta[i].U
		j := i + 1
		for j < len(delta) && delta[j].U == u {
			j++
		}
		row := mergeArcRuns(g.uAdj[u], delta[i:j], func(e Edge) Arc {
			return Arc{To: e.V, Weight: e.Weight}
		})
		var strength uint64
		for _, a := range row {
			strength += uint64(a.Weight)
		}
		g.liveEdges += len(row) - len(g.uAdj[u])
		g.liveClick += strength - g.uStrength[u]
		g.uAdj[u] = row
		g.uDeg[u] = int32(len(row))
		g.uStrength[u] = strength
		i = j
	}

	// Item columns: regroup the delta by (V, U) and rewrite each touched
	// item's column the same way.
	byItem := append([]Edge(nil), delta...)
	sort.Slice(byItem, func(i, j int) bool {
		if byItem[i].V != byItem[j].V {
			return byItem[i].V < byItem[j].V
		}
		return byItem[i].U < byItem[j].U
	})
	for i := 0; i < len(byItem); {
		v := byItem[i].V
		j := i + 1
		for j < len(byItem) && byItem[j].V == v {
			j++
		}
		col := mergeArcRuns(g.vAdj[v], byItem[i:j], func(e Edge) Arc {
			return Arc{To: e.U, Weight: e.Weight}
		})
		var strength uint64
		for _, a := range col {
			strength += uint64(a.Weight)
		}
		g.vAdj[v] = col
		g.vDeg[v] = int32(len(col))
		g.vStrength[v] = strength
		i = j
	}
	return g
}

// validateDelta panics unless delta is aggregated: sorted by (U, V),
// unique pairs, non-zero weights.
func validateDelta(delta []Edge) {
	for i, e := range delta {
		if e.Weight == 0 {
			panic(fmt.Sprintf("bipartite: PatchGraph delta edge %d has zero weight", i))
		}
		if i > 0 {
			p := delta[i-1]
			if e.U < p.U || (e.U == p.U && e.V <= p.V) {
				panic(fmt.Sprintf("bipartite: PatchGraph delta not sorted/unique at edge %d", i))
			}
		}
	}
}

// mergeArcRuns merges a sorted arc slice with a sorted run of delta edges
// into a fresh sorted slice, saturating weights where keys collide. arcOf
// projects a delta edge onto the arc being merged (item for user rows,
// user for item columns).
func mergeArcRuns(old []Arc, run []Edge, arcOf func(Edge) Arc) []Arc {
	out := make([]Arc, 0, len(old)+len(run))
	i, j := 0, 0
	for i < len(old) && j < len(run) {
		a, b := old[i], arcOf(run[j])
		switch {
		case a.To < b.To:
			out = append(out, a)
			i++
		case a.To > b.To:
			out = append(out, b)
			j++
		default:
			out = append(out, Arc{To: a.To, Weight: satAdd32(a.Weight, b.Weight)})
			i++
			j++
		}
	}
	out = append(out, old[i:]...)
	for ; j < len(run); j++ {
		out = append(out, arcOf(run[j]))
	}
	return out
}

// satAdd32 adds two click weights, saturating at MaxUint32 — the same cap
// clicktable.Aggregate applies when it merges duplicate rows.
func satAdd32(a, b uint32) uint32 {
	s := uint64(a) + uint64(b)
	if s > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(s)
}

func growAdj(adj [][]Arc, n int) [][]Arc {
	out := make([][]Arc, n)
	copy(out, adj)
	return out
}

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func growCopy[T int32 | uint64](s []T, n int) []T {
	out := make([]T, n)
	copy(out, s)
	return out
}
