package bipartite

import (
	"bytes"
	"testing"
)

// FuzzReadBinary asserts the graph deserializer never panics on corrupt
// bytes and that accepted graphs re-serialize losslessly.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	b := NewBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(2, 0, 7)
	if err := WriteBinary(&seed, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("BPG1"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if back.LiveEdges() != g.LiveEdges() || back.LiveClicks() != g.LiveClicks() {
			t.Fatalf("round trip changed accounting: %v vs %v", back, g)
		}
	})
}
