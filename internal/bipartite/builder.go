package bipartite

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Builder accumulates click records and produces an immutable-adjacency
// Graph. Duplicate (user, item) records are merged by summing their weights,
// mirroring how a click log aggregates into the TaoBao_UI_Clicks table.
//
// The zero value is not usable; construct with NewBuilder.
type Builder struct {
	numUsers int
	numItems int
	edges    []Edge
}

// NewBuilder returns a Builder for a graph with at least the given number of
// user and item vertices. Adding an edge with a larger ID grows the graph.
func NewBuilder(numUsers, numItems int) *Builder {
	return &Builder{numUsers: numUsers, numItems: numItems}
}

// Add records that user u clicked item v clicks times. Zero-click records
// are ignored. Multiple Add calls for the same pair accumulate.
func (b *Builder) Add(u, v NodeID, clicks uint32) {
	if clicks == 0 {
		return
	}
	if int(u) >= b.numUsers {
		b.numUsers = int(u) + 1
	}
	if int(v) >= b.numItems {
		b.numItems = int(v) + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: clicks})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.Add(e.U, e.V, e.Weight)
	}
}

// NumEdges returns the number of raw (pre-merge) records added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build constructs the Graph. The Builder may be reused afterwards; the
// built graph does not alias the builder's storage. Large edge lists are
// built with up to GOMAXPROCS goroutines; the result is identical to
// BuildSerial regardless of worker count.
func (b *Builder) Build() *Graph {
	return b.BuildWorkers(0)
}

// BuildWorkers is Build with an explicit worker bound (0 means GOMAXPROCS).
// Small inputs fall back to the serial path — fan-out only pays past a few
// thousand edges per worker.
func (b *Builder) BuildWorkers(workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(b.edges) / parallelBuildGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		return b.BuildSerial()
	}
	return b.buildParallel(workers)
}

// parallelBuildGrain is the minimum number of edges per worker before the
// parallel build path is worth its coordination overhead.
const parallelBuildGrain = 4096

// BuildSerial is the single-goroutine reference implementation of Build,
// kept as the oracle the parallel path is tested against.
func (b *Builder) BuildSerial() *Graph {
	// Sort by (U, V) so duplicates are adjacent and adjacency ends up sorted.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})

	g := NewGraph(b.numUsers, b.numItems)
	var merged []Edge
	for i := 0; i < len(b.edges); {
		e := b.edges[i]
		j := i + 1
		for j < len(b.edges) && b.edges[j].U == e.U && b.edges[j].V == e.V {
			e.Weight += b.edges[j].Weight
			j++
		}
		merged = append(merged, e)
		i = j
	}

	for _, e := range merged {
		g.uAdj[e.U] = append(g.uAdj[e.U], Arc{To: e.V, Weight: e.Weight})
		g.uDeg[e.U]++
		g.uStrength[e.U] += uint64(e.Weight)
		g.vDeg[e.V]++
		g.vStrength[e.V] += uint64(e.Weight)
		g.liveEdges++
		g.liveClick += uint64(e.Weight)
	}
	// Item adjacency: bucket by item, already in user order because merged
	// is sorted by (U, V).
	for _, e := range merged {
		g.vAdj[e.V] = append(g.vAdj[e.V], Arc{To: e.U, Weight: e.Weight})
	}
	return g
}

// buildParallel is the multi-goroutine build: parallel chunk sort + pairwise
// merges, a serial duplicate-merging scan, then CSR arena fills where the
// user side is a straight parallel copy (the merged list IS the user-side
// CSR order) and the item side is a parallel scatter with atomic per-bucket
// cursors followed by a per-bucket sort that restores the deterministic
// ascending-user order.
func (b *Builder) buildParallel(workers int) *Graph {
	less := func(e, f Edge) bool {
		if e.U != f.U {
			return e.U < f.U
		}
		return e.V < f.V
	}

	// Phase 1: sort chunks of the raw edge list in parallel, in place.
	n := len(b.edges)
	chunk := (n + workers - 1) / workers
	var runs [][]Edge
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		runs = append(runs, b.edges[lo:hi:hi])
	}
	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r []Edge) {
			defer wg.Done()
			sort.Slice(r, func(i, j int) bool { return less(r[i], r[j]) })
		}(r)
	}
	wg.Wait()

	// Phase 2: merge sorted runs pairwise until one remains.
	for len(runs) > 1 {
		next := make([][]Edge, (len(runs)+1)/2)
		var mg sync.WaitGroup
		for i := 0; i+1 < len(runs); i += 2 {
			mg.Add(1)
			go func(i int) {
				defer mg.Done()
				next[i/2] = mergeRuns(runs[i], runs[i+1], less)
			}(i)
		}
		if len(runs)%2 == 1 {
			next[len(next)-1] = runs[len(runs)-1]
		}
		mg.Wait()
		runs = next
	}
	sorted := runs[0]

	// Phase 3: merge adjacent duplicates (serial scan; output stays sorted).
	merged := make([]Edge, 0, len(sorted))
	for i := 0; i < len(sorted); {
		e := sorted[i]
		j := i + 1
		for j < len(sorted) && sorted[j].U == e.U && sorted[j].V == e.V {
			e.Weight += sorted[j].Weight
			j++
		}
		merged = append(merged, e)
		i = j
	}

	// Phase 4: degrees, strengths and edge totals in one serial scan.
	g := NewGraph(b.numUsers, b.numItems)
	for _, e := range merged {
		g.uDeg[e.U]++
		g.vDeg[e.V]++
		g.uStrength[e.U] += uint64(e.Weight)
		g.vStrength[e.V] += uint64(e.Weight)
		g.liveEdges++
		g.liveClick += uint64(e.Weight)
	}

	// Phase 5: user-side CSR. merged is sorted by (U, V), so position i of
	// merged IS position i of the user-side arena — a parallel copy.
	uOff := make([]int, b.numUsers+1)
	for u := 0; u < b.numUsers; u++ {
		uOff[u+1] = uOff[u] + int(g.uDeg[u])
	}
	arenaU := make([]Arc, len(merged))
	parallelRange(len(merged), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arenaU[i] = Arc{To: merged[i].V, Weight: merged[i].Weight}
		}
	})
	for u := 0; u < b.numUsers; u++ {
		g.uAdj[u] = arenaU[uOff[u]:uOff[u+1]:uOff[u+1]]
	}

	// Phase 6: item-side CSR. Scatter with atomic per-item cursors (write
	// order races across workers), then sort each bucket by To — user IDs
	// are unique within a bucket, so the result is deterministic.
	vOff := make([]int, b.numItems+1)
	for v := 0; v < b.numItems; v++ {
		vOff[v+1] = vOff[v] + int(g.vDeg[v])
	}
	arenaV := make([]Arc, len(merged))
	vCur := make([]int32, b.numItems)
	parallelRange(len(merged), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := merged[i]
			slot := vOff[e.V] + int(atomic.AddInt32(&vCur[e.V], 1)) - 1
			arenaV[slot] = Arc{To: e.U, Weight: e.Weight}
		}
	})
	parallelRange(b.numItems, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			bucket := arenaV[vOff[v]:vOff[v+1]]
			sort.Slice(bucket, func(i, j int) bool { return bucket[i].To < bucket[j].To })
		}
	})
	for v := 0; v < b.numItems; v++ {
		g.vAdj[v] = arenaV[vOff[v]:vOff[v+1]:vOff[v+1]]
	}
	return g
}

// mergeRuns merges two sorted edge runs into a fresh sorted slice.
func mergeRuns(a, b []Edge, less func(e, f Edge) bool) []Edge {
	out := make([]Edge, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// parallelRange splits [0, n) into at most `workers` contiguous spans and
// runs fn on each concurrently, waiting for all.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// FromEdges is a convenience constructor building a graph directly from an
// edge list. Vertex counts are inferred from the maximum IDs present.
func FromEdges(edges []Edge) *Graph {
	b := NewBuilder(0, 0)
	b.AddEdges(edges)
	return b.Build()
}

// Compact rewrites the graph dropping dead vertices and returns the new
// graph along with mappings from new IDs back to the IDs in g. Algorithms
// that repeatedly scan all vertices after heavy pruning use this to shrink
// their working set.
func Compact(g *Graph) (c *Graph, userOf, itemOf []NodeID) {
	userOf = g.LiveUserIDs()
	itemOf = g.LiveItemIDs()
	newU := make(map[NodeID]NodeID, len(userOf))
	newV := make(map[NodeID]NodeID, len(itemOf))
	for i, u := range userOf {
		newU[u] = NodeID(i)
	}
	for i, v := range itemOf {
		newV[v] = NodeID(i)
	}
	b := NewBuilder(len(userOf), len(itemOf))
	for _, u := range userOf {
		g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
			b.Add(newU[u], newV[v], w)
			return true
		})
	}
	return b.Build(), userOf, itemOf
}

// InducedSubgraph returns the subgraph of g induced by the given user and
// item sets, in the original ID space (vertices outside the sets are dead in
// the result). Unknown IDs are rejected with an error.
func InducedSubgraph(g *Graph, users, items []NodeID) (*Graph, error) {
	for _, u := range users {
		if int(u) >= g.NumUsers() {
			return nil, fmt.Errorf("bipartite: induced subgraph: user %d out of range", u)
		}
	}
	for _, v := range items {
		if int(v) >= g.NumItems() {
			return nil, fmt.Errorf("bipartite: induced subgraph: item %d out of range", v)
		}
	}
	sub := g.Clone()
	keepU := make(map[NodeID]bool, len(users))
	keepV := make(map[NodeID]bool, len(items))
	for _, u := range users {
		keepU[u] = true
	}
	for _, v := range items {
		keepV[v] = true
	}
	sub.EachLiveUser(func(u NodeID) bool {
		if !keepU[u] {
			sub.RemoveUser(u)
		}
		return true
	})
	sub.EachLiveItem(func(v NodeID) bool {
		if !keepV[v] {
			sub.RemoveItem(v)
		}
		return true
	})
	return sub, nil
}
