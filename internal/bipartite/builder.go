package bipartite

import (
	"fmt"
	"sort"
)

// Builder accumulates click records and produces an immutable-adjacency
// Graph. Duplicate (user, item) records are merged by summing their weights,
// mirroring how a click log aggregates into the TaoBao_UI_Clicks table.
//
// The zero value is not usable; construct with NewBuilder.
type Builder struct {
	numUsers int
	numItems int
	edges    []Edge
}

// NewBuilder returns a Builder for a graph with at least the given number of
// user and item vertices. Adding an edge with a larger ID grows the graph.
func NewBuilder(numUsers, numItems int) *Builder {
	return &Builder{numUsers: numUsers, numItems: numItems}
}

// Add records that user u clicked item v clicks times. Zero-click records
// are ignored. Multiple Add calls for the same pair accumulate.
func (b *Builder) Add(u, v NodeID, clicks uint32) {
	if clicks == 0 {
		return
	}
	if int(u) >= b.numUsers {
		b.numUsers = int(u) + 1
	}
	if int(v) >= b.numItems {
		b.numItems = int(v) + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: clicks})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.Add(e.U, e.V, e.Weight)
	}
}

// NumEdges returns the number of raw (pre-merge) records added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build constructs the Graph. The Builder may be reused afterwards; the
// built graph does not alias the builder's storage.
func (b *Builder) Build() *Graph {
	// Sort by (U, V) so duplicates are adjacent and adjacency ends up sorted.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})

	g := NewGraph(b.numUsers, b.numItems)
	var merged []Edge
	for i := 0; i < len(b.edges); {
		e := b.edges[i]
		j := i + 1
		for j < len(b.edges) && b.edges[j].U == e.U && b.edges[j].V == e.V {
			e.Weight += b.edges[j].Weight
			j++
		}
		merged = append(merged, e)
		i = j
	}

	for _, e := range merged {
		g.uAdj[e.U] = append(g.uAdj[e.U], Arc{To: e.V, Weight: e.Weight})
		g.uDeg[e.U]++
		g.uStrength[e.U] += uint64(e.Weight)
		g.vDeg[e.V]++
		g.vStrength[e.V] += uint64(e.Weight)
		g.liveEdges++
		g.liveClick += uint64(e.Weight)
	}
	// Item adjacency: bucket by item, already in user order because merged
	// is sorted by (U, V).
	for _, e := range merged {
		g.vAdj[e.V] = append(g.vAdj[e.V], Arc{To: e.U, Weight: e.Weight})
	}
	return g
}

// FromEdges is a convenience constructor building a graph directly from an
// edge list. Vertex counts are inferred from the maximum IDs present.
func FromEdges(edges []Edge) *Graph {
	b := NewBuilder(0, 0)
	b.AddEdges(edges)
	return b.Build()
}

// Compact rewrites the graph dropping dead vertices and returns the new
// graph along with mappings from new IDs back to the IDs in g. Algorithms
// that repeatedly scan all vertices after heavy pruning use this to shrink
// their working set.
func Compact(g *Graph) (c *Graph, userOf, itemOf []NodeID) {
	userOf = g.LiveUserIDs()
	itemOf = g.LiveItemIDs()
	newU := make(map[NodeID]NodeID, len(userOf))
	newV := make(map[NodeID]NodeID, len(itemOf))
	for i, u := range userOf {
		newU[u] = NodeID(i)
	}
	for i, v := range itemOf {
		newV[v] = NodeID(i)
	}
	b := NewBuilder(len(userOf), len(itemOf))
	for _, u := range userOf {
		g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
			b.Add(newU[u], newV[v], w)
			return true
		})
	}
	return b.Build(), userOf, itemOf
}

// InducedSubgraph returns the subgraph of g induced by the given user and
// item sets, in the original ID space (vertices outside the sets are dead in
// the result). Unknown IDs are rejected with an error.
func InducedSubgraph(g *Graph, users, items []NodeID) (*Graph, error) {
	for _, u := range users {
		if int(u) >= g.NumUsers() {
			return nil, fmt.Errorf("bipartite: induced subgraph: user %d out of range", u)
		}
	}
	for _, v := range items {
		if int(v) >= g.NumItems() {
			return nil, fmt.Errorf("bipartite: induced subgraph: item %d out of range", v)
		}
	}
	sub := g.Clone()
	keepU := make(map[NodeID]bool, len(users))
	keepV := make(map[NodeID]bool, len(items))
	for _, u := range users {
		keepU[u] = true
	}
	for _, v := range items {
		keepV[v] = true
	}
	sub.EachLiveUser(func(u NodeID) bool {
		if !keepU[u] {
			sub.RemoveUser(u)
		}
		return true
	})
	sub.EachLiveItem(func(v NodeID) bool {
		if !keepV[v] {
			sub.RemoveItem(v)
		}
		return true
	})
	return sub, nil
}
