package bipartite

import (
	"reflect"
	"testing"
)

func TestConnectedComponentsBasic(t *testing.T) {
	// One big component (u1—v2—u2 bridges everything) plus two isolated
	// vertices: {u0,u1,u2} × {v0,v1,v2}, u3 isolated, v3 isolated.
	g := testGraph(t)
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %+v", len(comps), comps)
	}
	if !reflect.DeepEqual(comps[0].Users, []NodeID{0, 1, 2}) ||
		!reflect.DeepEqual(comps[0].Items, []NodeID{0, 1, 2}) {
		t.Errorf("largest component = %+v", comps[0])
	}
	// Components are ordered largest-first.
	for i := 1; i < len(comps); i++ {
		if comps[i].Size() > comps[i-1].Size() {
			t.Errorf("components not sorted by size: %d before %d",
				comps[i-1].Size(), comps[i].Size())
		}
	}
}

func TestConnectedComponentsAfterCut(t *testing.T) {
	g := testGraph(t)
	// u1—v2 is the bridge between {u0,u1,v0,v1} and {u2,v2}; removing v2
	// detaches u2 entirely.
	g.RemoveItem(2)
	comps := ConnectedComponents(g)
	// {u0,u1,v0,v1}, {u2}, {u3}, {v3}
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %+v", len(comps), comps)
	}
	if comps[0].Size() != 4 {
		t.Errorf("largest component size = %d, want 4", comps[0].Size())
	}
}

func TestConnectedComponentsEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	if comps := ConnectedComponents(g); len(comps) != 0 {
		t.Errorf("empty graph: got %d components", len(comps))
	}
}

func TestConnectedComponentsCoverAllVertices(t *testing.T) {
	g := testGraph(t)
	comps := ConnectedComponents(g)
	users, items := 0, 0
	for _, c := range comps {
		users += len(c.Users)
		items += len(c.Items)
	}
	if users != g.LiveUsers() || items != g.LiveItems() {
		t.Errorf("components cover %d users / %d items, want %d / %d",
			users, items, g.LiveUsers(), g.LiveItems())
	}
}

func TestConnectedComponentsIgnoreDead(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(3)
	g.RemoveItem(3)
	comps := ConnectedComponents(g)
	for _, c := range comps {
		for _, u := range c.Users {
			if u == 3 {
				t.Error("dead user 3 appeared in a component")
			}
		}
		for _, v := range c.Items {
			if v == 3 {
				t.Error("dead item 3 appeared in a component")
			}
		}
	}
}
