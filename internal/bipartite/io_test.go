package bipartite

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers() != g.NumUsers() || g2.NumItems() != g.NumItems() {
		t.Fatalf("dims = (%d,%d), want (%d,%d)",
			g2.NumUsers(), g2.NumItems(), g.NumUsers(), g.NumItems())
	}
	if g2.LiveEdges() != g.LiveEdges() || g2.LiveClicks() != g.LiveClicks() {
		t.Errorf("accounting = %v, want %v", g2, g)
	}
	for _, e := range g.Edges() {
		if g2.Weight(e.U, e.V) != e.Weight {
			t.Errorf("edge (%d,%d): weight %d, want %d", e.U, e.V, g2.Weight(e.U, e.V), e.Weight)
		}
	}
}

func TestBinaryRoundTripDropsDeadEdges(t *testing.T) {
	g := testGraph(t)
	g.RemoveUser(1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weight(1, 1) != 0 {
		t.Error("edge of deleted user survived round trip")
	}
	if g2.LiveEdges() != g.LiveEdges() {
		t.Errorf("LiveEdges = %d, want %d", g2.LiveEdges(), g.LiveEdges())
	}
}

func TestReadBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX garbage")); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestReadBinaryRejectsTruncated(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestReadBinaryRejectsOutOfRangeEdge(t *testing.T) {
	// Hand-craft a header claiming 1 user / 1 item, then an edge to user 7.
	var buf bytes.Buffer
	buf.Write([]byte("BPG1"))
	buf.Write([]byte{1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0}) // 1 user, 1 item, 1 edge
	buf.Write([]byte{7, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0}) // edge (7, 0, 1)
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("expected error for out-of-range edge")
	}
}
