package bipartite

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a reproducible random bipartite graph from a seed.
func randomGraph(seed int64, maxUsers, maxItems, maxEdges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	nu := 1 + rng.Intn(maxUsers)
	ni := 1 + rng.Intn(maxItems)
	b := NewBuilder(nu, ni)
	ne := rng.Intn(maxEdges)
	for i := 0; i < ne; i++ {
		b.Add(NodeID(rng.Intn(nu)), NodeID(rng.Intn(ni)), uint32(1+rng.Intn(20)))
	}
	return b.Build()
}

// Property: for any graph, the sum of user strengths equals the sum of item
// strengths equals LiveClicks, and the sum of user degrees equals the sum of
// item degrees equals LiveEdges — before and after arbitrary deletions.
func TestPropertyDegreeStrengthConservation(t *testing.T) {
	f := func(seed int64, kills []uint16) bool {
		g := randomGraph(seed, 40, 40, 200)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for _, k := range kills {
			if rng.Intn(2) == 0 {
				g.RemoveUser(NodeID(int(k) % g.NumUsers()))
			} else {
				g.RemoveItem(NodeID(int(k) % g.NumItems()))
			}
		}
		var uDeg, vDeg int
		var uStr, vStr uint64
		g.EachLiveUser(func(u NodeID) bool {
			uDeg += g.UserDegree(u)
			uStr += g.UserStrength(u)
			return true
		})
		g.EachLiveItem(func(v NodeID) bool {
			vDeg += g.ItemDegree(v)
			vStr += g.ItemStrength(v)
			return true
		})
		return uDeg == g.LiveEdges() && vDeg == g.LiveEdges() &&
			uStr == g.LiveClicks() && vStr == g.LiveClicks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adjacency is symmetric — u lists v with weight w iff v lists u
// with weight w.
func TestPropertyAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 30, 150)
		ok := true
		g.EachLiveUser(func(u NodeID) bool {
			g.EachUserNeighbor(u, func(v NodeID, w uint32) bool {
				found := false
				g.EachItemNeighbor(v, func(u2 NodeID, w2 uint32) bool {
					if u2 == u {
						found = w2 == w
						return false
					}
					return true
				})
				if !found {
					ok = false
				}
				return ok
			})
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: binary serialization round-trips the live edge set exactly.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 25, 120)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.LiveEdges() != g.LiveEdges() || g2.LiveClicks() != g.LiveClicks() {
			return false
		}
		for _, e := range g.Edges() {
			if g2.Weight(e.U, e.V) != e.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Compact preserves the multiset of edge weights and all live
// counts.
func TestPropertyCompactPreservesEdges(t *testing.T) {
	f := func(seed int64, kills []uint16) bool {
		g := randomGraph(seed, 30, 30, 150)
		for i, k := range kills {
			if i%2 == 0 {
				g.RemoveUser(NodeID(int(k) % g.NumUsers()))
			} else {
				g.RemoveItem(NodeID(int(k) % g.NumItems()))
			}
		}
		c, userOf, itemOf := Compact(g)
		if c.LiveUsers() != g.LiveUsers() || c.LiveItems() != g.LiveItems() ||
			c.LiveEdges() != g.LiveEdges() || c.LiveClicks() != g.LiveClicks() {
			return false
		}
		for _, e := range c.Edges() {
			if g.Weight(userOf[e.U], itemOf[e.V]) != e.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: connected components partition the live vertex set (each live
// vertex appears in exactly one component).
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 30, 80)
		comps := ConnectedComponents(g)
		seenU := map[NodeID]int{}
		seenV := map[NodeID]int{}
		for _, c := range comps {
			for _, u := range c.Users {
				seenU[u]++
			}
			for _, v := range c.Items {
				seenV[v]++
			}
		}
		if len(seenU) != g.LiveUsers() || len(seenV) != g.LiveItems() {
			return false
		}
		for _, n := range seenU {
			if n != 1 {
				return false
			}
		}
		for _, n := range seenV {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: CommonUserNeighborsAtLeast agrees with the exact count for all k.
func TestPropertyCommonNeighborsAtLeastAgrees(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 20, 100)
		rng := rand.New(rand.NewSource(seed + 7))
		for trial := 0; trial < 20; trial++ {
			a := NodeID(rng.Intn(g.NumUsers()))
			b := NodeID(rng.Intn(g.NumUsers()))
			exact := CommonUserNeighbors(g, a, b)
			for k := 0; k <= exact+2; k++ {
				if CommonUserNeighborsAtLeast(g, a, b, k) != (exact >= k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

