package detect

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
)

func TestResultUnions(t *testing.T) {
	res := &Result{Groups: []Group{
		{Users: []bipartite.NodeID{3, 1}, Items: []bipartite.NodeID{7}},
		{Users: []bipartite.NodeID{1, 2}, Items: []bipartite.NodeID{7, 5}},
	}}
	if got, want := res.Users(), []bipartite.NodeID{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Users = %v, want %v", got, want)
	}
	if got, want := res.Items(), []bipartite.NodeID{5, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("Items = %v, want %v", got, want)
	}
	if res.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", res.NumNodes())
	}
}

func TestResultEmpty(t *testing.T) {
	res := &Result{}
	if res.Users() != nil || res.Items() != nil || res.NumNodes() != 0 {
		t.Errorf("empty result unions: %v %v", res.Users(), res.Items())
	}
}

func TestGroupSize(t *testing.T) {
	g := Group{Users: make([]bipartite.NodeID, 3), Items: make([]bipartite.NodeID, 2)}
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
}

func TestLabels(t *testing.T) {
	l := NewLabels()
	l.Users[4] = true
	l.Users[2] = true
	l.Items[9] = true
	if l.NumAbnormal() != 3 {
		t.Errorf("NumAbnormal = %d, want 3", l.NumAbnormal())
	}
	if got, want := l.UserIDs(), []bipartite.NodeID{2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("UserIDs = %v, want %v", got, want)
	}
	if got, want := l.ItemIDs(), []bipartite.NodeID{9}; !reflect.DeepEqual(got, want) {
		t.Errorf("ItemIDs = %v, want %v", got, want)
	}
}

func TestSeedsEmpty(t *testing.T) {
	if !(Seeds{}).Empty() {
		t.Error("zero Seeds should be empty")
	}
	if (Seeds{Users: []bipartite.NodeID{1}}).Empty() {
		t.Error("seeded Seeds reported empty")
	}
	if (Seeds{Items: []bipartite.NodeID{1}}).Empty() {
		t.Error("item-seeded Seeds reported empty")
	}
}
