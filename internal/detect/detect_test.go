package detect

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
)

func TestResultUnions(t *testing.T) {
	res := &Result{Groups: []Group{
		{Users: []bipartite.NodeID{3, 1}, Items: []bipartite.NodeID{7}},
		{Users: []bipartite.NodeID{1, 2}, Items: []bipartite.NodeID{7, 5}},
	}}
	if got, want := res.Users(), []bipartite.NodeID{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Users = %v, want %v", got, want)
	}
	if got, want := res.Items(), []bipartite.NodeID{5, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("Items = %v, want %v", got, want)
	}
	if res.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", res.NumNodes())
	}
}

// TestResultUnionMemoized verifies the dedup-union is computed once: the
// same backing slice comes back on every call, repeated reads stay stable,
// and no caller needs to re-mutate Groups after the first read for the
// cached view to be correct.
func TestResultUnionMemoized(t *testing.T) {
	res := &Result{Groups: []Group{
		{Users: []bipartite.NodeID{3, 1}, Items: []bipartite.NodeID{7}},
		{Users: []bipartite.NodeID{1, 2}, Items: []bipartite.NodeID{7, 5}},
	}}
	u1, u2 := res.Users(), res.Users()
	i1, i2 := res.Items(), res.Items()
	if &u1[0] != &u2[0] || &i1[0] != &i2[0] {
		t.Error("repeated Users/Items calls recompute the union instead of memoizing")
	}
	// Mutating Groups after the first read is unsupported; the memoized
	// view must stay the snapshot taken at first read, not pick up (or
	// corrupt on) later appends.
	res.Groups = append(res.Groups, Group{Users: []bipartite.NodeID{99}})
	if got, want := res.Users(), []bipartite.NodeID{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("post-mutation Users = %v, want memoized %v", got, want)
	}
	if res.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want memoized 5", res.NumNodes())
	}
}

// TestResultUnionConcurrent reads the unions from many goroutines; run
// with -race to verify the once-guarded memoization.
func TestResultUnionConcurrent(t *testing.T) {
	res := &Result{Groups: []Group{
		{Users: []bipartite.NodeID{1, 2}, Items: []bipartite.NodeID{3}},
	}}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			if len(res.Users()) != 2 || len(res.Items()) != 1 {
				t.Error("concurrent union read wrong")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	close(done)
}

func TestResultEmpty(t *testing.T) {
	res := &Result{}
	if res.Users() != nil || res.Items() != nil || res.NumNodes() != 0 {
		t.Errorf("empty result unions: %v %v", res.Users(), res.Items())
	}
}

func TestGroupSize(t *testing.T) {
	g := Group{Users: make([]bipartite.NodeID, 3), Items: make([]bipartite.NodeID, 2)}
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
}

func TestLabels(t *testing.T) {
	l := NewLabels()
	l.Users[4] = true
	l.Users[2] = true
	l.Items[9] = true
	if l.NumAbnormal() != 3 {
		t.Errorf("NumAbnormal = %d, want 3", l.NumAbnormal())
	}
	if got, want := l.UserIDs(), []bipartite.NodeID{2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("UserIDs = %v, want %v", got, want)
	}
	if got, want := l.ItemIDs(), []bipartite.NodeID{9}; !reflect.DeepEqual(got, want) {
		t.Errorf("ItemIDs = %v, want %v", got, want)
	}
}

func TestSeedsEmpty(t *testing.T) {
	if !(Seeds{}).Empty() {
		t.Error("zero Seeds should be empty")
	}
	if (Seeds{Users: []bipartite.NodeID{1}}).Empty() {
		t.Error("seeded Seeds reported empty")
	}
	if (Seeds{Items: []bipartite.NodeID{1}}).Empty() {
		t.Error("item-seeded Seeds reported empty")
	}
}
