// Package detect defines the types shared by every "Ride Item's Coattails"
// detection algorithm in this repository: the attack-group representation,
// the detection result, the ground-truth labels produced by the synthetic
// attack injector, and the Detector interface the RICD core and all
// baselines implement.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bipartite"
)

// StageError reports that one named stage of a detection pipeline failed.
// Detectors convert a stage panic into a *StageError instead of letting it
// kill the process, so an always-on risk-control service survives a bug in
// any single stage. Either Panic (the recovered value) or Err (a wrapped
// error) is set, never both.
type StageError struct {
	// Stage is the pipeline stage that failed, e.g. "prune" or
	// "engine.superstep".
	Stage string
	// Panic is the recovered panic value when the stage panicked.
	Panic any
	// Err is the underlying error when the stage failed without panicking.
	Err error
}

// Error implements error.
func (e *StageError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("detect: stage %q panicked: %v", e.Stage, e.Panic)
	}
	return fmt.Sprintf("detect: stage %q: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error (nil for panics).
func (e *StageError) Unwrap() error { return e.Err }

// RunStage executes fn as the named pipeline stage, converting a panic into
// a *StageError. It is the panic-isolation primitive shared by the RICD
// core, the BSP engine and the stream detector.
func RunStage(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Panic: r}
		}
	}()
	return fn()
}

// Group is one suspected "Ride Item's Coattails" attack group: a set of
// suspicious users (crowd workers) and suspicious items (attack targets).
type Group struct {
	Users []bipartite.NodeID
	Items []bipartite.NodeID
	// Score is an optional detector-specific suspiciousness score
	// (higher is more suspicious); 0 when the detector does not score.
	Score float64
}

// Size returns the total number of nodes in the group.
func (g Group) Size() int { return len(g.Users) + len(g.Items) }

// Result is the output of a detection run.
type Result struct {
	// Groups are the detected attack groups, most suspicious first when
	// the detector scores groups.
	Groups []Group
	// Elapsed is the end-to-end wall time of the detection run.
	Elapsed time.Duration
	// DetectElapsed and ScreenElapsed split Elapsed into the group
	// detection phase and the screening (UI) phase, reproducing the
	// stacking of the paper's Fig 8b. They may be zero for detectors
	// without that structure.
	DetectElapsed time.Duration
	ScreenElapsed time.Duration

	// Partial reports that the run was cut short — by cancellation,
	// deadline expiry, or an isolated stage failure — and Groups holds only
	// what the completed stages produced (the graceful-degradation
	// contract: best-effort results instead of nothing).
	Partial bool
	// StageReached names the pipeline stage at which a partial run stopped;
	// empty for complete runs.
	StageReached string

	// union memoizes the Users/Items dedup-union: reporting, metrics and
	// tracing all call them repeatedly. Groups must be final before the
	// first Users/Items call (every detector builds Groups fully before
	// returning); the returned slices are shared and must not be mutated.
	union struct {
		once  sync.Once
		users []bipartite.NodeID
		items []bipartite.NodeID
	}
}

// Users returns the deduplicated, sorted union of suspicious users across
// all groups (U_sus in the paper's problem definition). The union is
// computed once and cached; callers must not mutate the returned slice or
// append to r.Groups after the first call.
func (r *Result) Users() []bipartite.NodeID {
	r.memoizeUnion()
	return r.union.users
}

// Items returns the deduplicated, sorted union of suspicious items across
// all groups (V_sus in the paper's problem definition). Caching caveats as
// for Users.
func (r *Result) Items() []bipartite.NodeID {
	r.memoizeUnion()
	return r.union.items
}

func (r *Result) memoizeUnion() {
	r.union.once.Do(func() {
		r.union.users = unionNodes(r.Groups, func(g Group) []bipartite.NodeID { return g.Users })
		r.union.items = unionNodes(r.Groups, func(g Group) []bipartite.NodeID { return g.Items })
	})
}

// NumNodes returns the total number of distinct suspicious nodes.
func (r *Result) NumNodes() int { return len(r.Users()) + len(r.Items()) }

func unionNodes(groups []Group, get func(Group) []bipartite.NodeID) []bipartite.NodeID {
	seen := map[bipartite.NodeID]struct{}{}
	for _, g := range groups {
		for _, id := range get(g) {
			seen[id] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]bipartite.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Detector is a "Ride Item's Coattails" attack detector. Detect must not
// mutate g; detectors that prune work on a Clone.
type Detector interface {
	// Name identifies the detector in experiment output ("RICD", "LPA", ...).
	Name() string
	// Detect finds suspicious attack groups in the click graph.
	Detect(g *bipartite.Graph) (*Result, error)
}

// Labels is the ground truth for a dataset: which users are crowd workers
// and which items are attack targets. Hot items are victims, not targets,
// and are therefore not labeled.
type Labels struct {
	Users map[bipartite.NodeID]bool
	Items map[bipartite.NodeID]bool
}

// NewLabels returns empty ground truth.
func NewLabels() *Labels {
	return &Labels{
		Users: map[bipartite.NodeID]bool{},
		Items: map[bipartite.NodeID]bool{},
	}
}

// NumAbnormal returns the number of labeled abnormal nodes.
func (l *Labels) NumAbnormal() int { return len(l.Users) + len(l.Items) }

// UserIDs returns the sorted abnormal user IDs.
func (l *Labels) UserIDs() []bipartite.NodeID { return sortedIDs(l.Users) }

// ItemIDs returns the sorted abnormal item IDs.
func (l *Labels) ItemIDs() []bipartite.NodeID { return sortedIDs(l.Items) }

func sortedIDs(m map[bipartite.NodeID]bool) []bipartite.NodeID {
	out := make([]bipartite.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Seeds is a partial set of known abnormal nodes supplied by "the business
// department" — in this reproduction, a sample of the ground truth. RICD's
// group detection module (Algorithm 2) can use seeds to prune the input
// graph.
type Seeds struct {
	Users []bipartite.NodeID
	Items []bipartite.NodeID
}

// Empty reports whether no seeds are present.
func (s Seeds) Empty() bool { return len(s.Users) == 0 && len(s.Items) == 0 }
