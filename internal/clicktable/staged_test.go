package clicktable

import (
	"math/rand"
	"reflect"
	"testing"
)

func rows(t *Table) []Record {
	var out []Record
	t.Each(func(r Record) bool { out = append(out, r); return true })
	return out
}

func stagedRows(s *Staged) []Record {
	var out []Record
	s.Each(func(r Record) bool { out = append(out, r); return true })
	return out
}

func TestAggregateFastPathReturnsReceiver(t *testing.T) {
	tbl := sampleTable() // already strictly increasing by (user, item)
	if got := tbl.Aggregate(); got != tbl {
		t.Error("aggregated input must be returned as-is")
	}
	unsorted := New(3)
	unsorted.Append(2, 1, 1)
	unsorted.Append(1, 1, 1)
	agg := unsorted.Aggregate()
	if agg == unsorted {
		t.Fatal("unsorted input took the fast path")
	}
	// Idempotence: re-aggregating shares no extra work — same pointer out.
	if again := agg.Aggregate(); again != agg {
		t.Error("Aggregate(Aggregate(t)) must return the same table")
	}
}

func TestAggregateFastPathRejectsDuplicates(t *testing.T) {
	tbl := New(2)
	tbl.Append(1, 1, 1)
	tbl.Append(1, 1, 2) // sorted but duplicate pair: must still merge
	agg := tbl.Aggregate()
	if agg == tbl {
		t.Fatal("duplicate pairs took the fast path")
	}
	if want := []Record{{1, 1, 3}}; !reflect.DeepEqual(rows(agg), want) {
		t.Errorf("rows = %+v, want %+v", rows(agg), want)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := New(0).Aggregate(); got.Len() != 0 {
		t.Errorf("empty aggregate has %d rows", got.Len())
	}
}

// TestStagedMatchesPlainAggregate drives a Staged through random appends
// interleaved with Delta/MarkPatched/Compact and checks, at every step,
// that its total row multiset aggregates to exactly what one flat table
// receiving the same appends aggregates to — the invariant that makes the
// staged table a drop-in source for graph builds.
func TestStagedMatchesPlainAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStaged(nil)
	flat := New(0)
	for step := 0; step < 500; step++ {
		u, v, c := uint32(rng.Intn(30)), uint32(rng.Intn(20)), uint32(rng.Intn(4))
		s.Append(u, v, c)
		flat.Append(u, v, c)
		switch step % 7 {
		case 2:
			s.MarkPatched()
		case 5:
			s.Compact()
		}
		if s.Len() != s.BaseLen()+s.PendingLen() {
			t.Fatalf("Len %d != BaseLen %d + PendingLen %d", s.Len(), s.BaseLen(), s.PendingLen())
		}
		all := New(s.Len())
		s.Each(func(r Record) bool { all.AppendRecord(r); return true })
		if got, want := rows(all.Aggregate()), rows(flat.Aggregate()); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: staged aggregate diverged:\n got %+v\nwant %+v", step, got, want)
		}
	}
}

func TestStagedDelta(t *testing.T) {
	s := NewStaged(nil)
	s.Append(5, 2, 1)
	s.Append(1, 9, 2)
	s.Compact() // base: {(1,9), (5,2)}
	s.Append(3, 1, 4)
	s.MarkPatched() // patched rows leave the delta
	s.Append(7, 1, 2)
	s.Append(3, 4, 1)
	s.Append(7, 1, 3) // duplicate pair: delta must aggregate it

	if got := s.DeltaLen(); got != 3 {
		t.Fatalf("DeltaLen = %d, want 3", got)
	}
	if got := s.PendingLen(); got != 4 {
		t.Fatalf("PendingLen = %d, want 4", got)
	}
	d := s.Delta()
	wantRecords := []Record{{3, 4, 1}, {7, 1, 5}}
	if !reflect.DeepEqual(rows(d.Records), wantRecords) {
		t.Errorf("Delta records = %+v, want %+v", rows(d.Records), wantRecords)
	}
	if want := []uint32{3, 7}; !reflect.DeepEqual(d.Users, want) {
		t.Errorf("Delta users = %v, want %v", d.Users, want)
	}
	if want := []uint32{1, 4}; !reflect.DeepEqual(d.Items, want) {
		t.Errorf("Delta items = %v, want %v", d.Items, want)
	}

	s.MarkPatched()
	if got := s.DeltaLen(); got != 0 {
		t.Errorf("DeltaLen after MarkPatched = %d, want 0", got)
	}
	if empty := s.Delta(); empty.Records.Len() != 0 || empty.Users != nil || empty.Items != nil {
		t.Errorf("empty delta = %+v", empty)
	}
}

func TestStagedCompactFoldsPending(t *testing.T) {
	s := NewStaged(nil)
	s.Append(2, 2, 1)
	s.Compact()
	s.Append(2, 2, 3)
	s.Append(1, 1, 1)
	s.Compact()
	if s.PendingLen() != 0 || s.DeltaLen() != 0 {
		t.Fatalf("pending after compact: %d/%d", s.PendingLen(), s.DeltaLen())
	}
	want := []Record{{1, 1, 1}, {2, 2, 4}}
	if !reflect.DeepEqual(rows(s.Base()), want) {
		t.Errorf("base = %+v, want %+v", rows(s.Base()), want)
	}
	// Compacting with nothing pending is free and changes nothing.
	base := s.Base()
	s.Compact()
	if s.Base() != base {
		t.Error("no-op compact rebuilt the base")
	}
}

func TestStagedNewTakesOwnership(t *testing.T) {
	initial := New(2)
	initial.Append(1, 1, 1)
	s := NewStaged(initial)
	if s.PendingLen() != 1 || s.BaseLen() != 0 {
		t.Fatalf("initial rows must start pending: base %d pending %d", s.BaseLen(), s.PendingLen())
	}
	if want := []Record{{1, 1, 1}}; !reflect.DeepEqual(stagedRows(s), want) {
		t.Errorf("rows = %+v, want %+v", stagedRows(s), want)
	}
}

func TestStagedCloneIsDeep(t *testing.T) {
	s := NewStaged(nil)
	s.Append(1, 1, 1)
	s.Compact()
	s.Append(2, 2, 2)
	s.MarkPatched()
	s.Append(3, 3, 3)

	c := s.Clone()
	s.Append(4, 4, 4)
	s.Compact()

	if c.BaseLen() != 1 || c.PendingLen() != 2 || c.DeltaLen() != 1 {
		t.Errorf("clone state: base %d pending %d delta %d, want 1/2/1",
			c.BaseLen(), c.PendingLen(), c.DeltaLen())
	}
	want := []Record{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}
	if !reflect.DeepEqual(stagedRows(c), want) {
		t.Errorf("clone rows = %+v, want %+v", stagedRows(c), want)
	}
}

func TestStagedEachEarlyStop(t *testing.T) {
	s := NewStaged(nil)
	s.Append(1, 1, 1)
	s.Compact()
	s.Append(2, 2, 2)
	n := 0
	s.Each(func(Record) bool { n++; return false })
	if n != 1 {
		t.Errorf("visited %d rows, want 1", n)
	}
}
