package clicktable

import "sort"

// Staged is a click table split into an aggregated base and a pending tail,
// the table-side half of delta-maintained graph builds: the base stays
// sorted and duplicate-free while fresh rows accumulate in the pending
// tail, so the owner can ask for just the rows that arrived since its last
// build (Delta) instead of re-aggregating the full history, and fold the
// tail into the base only at compaction time (Compact).
//
// The owner tracks which prefix of the pending tail its derived state
// (e.g. a patched bipartite graph) already reflects via MarkPatched; rows
// beyond that watermark are the current delta.
//
// Staged is not safe for concurrent use; the owner serializes access.
type Staged struct {
	base    *Table // aggregated: sorted by (user, item), unique pairs
	pending *Table // raw rows appended since the last Compact
	patched int    // pending rows [0, patched) already applied by the owner
}

// NewStaged returns a staged table whose pending tail starts as initial
// (nil or empty starts empty). Ownership of initial transfers to the
// Staged; callers that keep using the table must pass initial.Clone().
// Everything starts in the pending tail, so the owner's first build sees
// the whole history as delta — a full build.
func NewStaged(initial *Table) *Staged {
	if initial == nil {
		initial = New(0)
	}
	return &Staged{base: New(0), pending: initial}
}

// Append adds a row to the pending tail. Zero-click rows are dropped,
// matching Table.Append.
func (s *Staged) Append(user, item, clicks uint32) {
	s.pending.Append(user, item, clicks)
}

// AppendRecord adds a row from a Record value.
func (s *Staged) AppendRecord(r Record) { s.pending.AppendRecord(r) }

// Len returns the total number of rows: aggregated base plus raw pending.
func (s *Staged) Len() int { return s.base.Len() + s.pending.Len() }

// BaseLen returns the number of aggregated base rows (distinct (user, item)
// pairs as of the last Compact).
func (s *Staged) BaseLen() int { return s.base.Len() }

// PendingLen returns the number of raw rows appended since the last
// Compact, patched or not — the growth the compaction policy measures
// against the base.
func (s *Staged) PendingLen() int { return s.pending.Len() }

// DeltaLen returns the number of raw pending rows not yet covered by
// MarkPatched: the work outstanding for the owner's next build.
func (s *Staged) DeltaLen() int { return s.pending.Len() - s.patched }

// Base returns the aggregated base table. The caller must not mutate it.
func (s *Staged) Base() *Table { return s.base }

// Each calls fn for every row — base rows in (user, item) order, then
// pending rows in arrival order — stopping early if fn returns false. The
// iteration order is deterministic, which the durability layer relies on
// when serializing snapshots.
func (s *Staged) Each(fn func(Record) bool) {
	stopped := false
	s.base.Each(func(r Record) bool {
		if !fn(r) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	s.pending.Each(fn)
}

// Delta is the aggregate view of the unpatched pending rows: the records
// merged and sorted the same way Table.Aggregate sorts them, plus the
// distinct user and item IDs they touch (ascending) — exactly what a graph
// patcher needs to know which rows and columns to rewrite.
type Delta struct {
	Records *Table
	Users   []uint32
	Items   []uint32
}

// Delta aggregates the pending rows beyond the patched watermark. The
// receiver is unchanged; call MarkPatched once the returned delta has been
// applied.
func (s *Staged) Delta() Delta {
	tail := New(s.DeltaLen())
	for i := s.patched; i < s.pending.Len(); i++ {
		tail.AppendRecord(s.pending.Row(i))
	}
	agg := tail.Aggregate()
	d := Delta{Records: agg}
	var lastU, lastV uint32
	agg.Each(func(r Record) bool {
		if len(d.Users) == 0 || r.UserID != lastU {
			d.Users = append(d.Users, r.UserID)
			lastU = r.UserID
		}
		if len(d.Items) == 0 || r.ItemID != lastV {
			d.Items = append(d.Items, r.ItemID)
			lastV = r.ItemID
		}
		return true
	})
	// Records are sorted by (user, item): users fall out deduplicated and
	// ascending, items deduplicated but in first-seen order — sort them.
	sort.Slice(d.Items, func(i, j int) bool { return d.Items[i] < d.Items[j] })
	d.Items = dedupSorted(d.Items)
	return d
}

func dedupSorted(ids []uint32) []uint32 {
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// MarkPatched records that every current pending row has been applied to
// the owner's derived state; subsequent Delta calls cover only rows
// appended after this point.
func (s *Staged) MarkPatched() { s.patched = s.pending.Len() }

// Compact folds the pending tail into the base: the concatenation is fully
// re-aggregated (the same sort+merge a from-scratch build pays, which is
// what keeps compaction cost identical to the historical full-rebuild
// path), the tail empties, and the patched watermark resets. With an empty
// tail the base's aggregated invariant makes this free (Aggregate's fast
// path).
func (s *Staged) Compact() {
	if s.pending.Len() == 0 {
		s.base = s.base.Aggregate()
		return
	}
	all := s.base.Clone()
	s.pending.Each(func(r Record) bool {
		all.AppendRecord(r)
		return true
	})
	s.base = all.Aggregate()
	s.pending = New(0)
	s.patched = 0
}

// Clone returns a deep copy sharing nothing with the receiver, including
// the patched watermark — the durability layer snapshots staged tables this
// way under the ingest lock.
func (s *Staged) Clone() *Staged {
	return &Staged{base: s.base.Clone(), pending: s.pending.Clone(), patched: s.patched}
}
