package clicktable

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that anything it
// accepts round-trips through WriteCSV → ReadCSV unchanged.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("user_id,item_id,click\n1,2,3\n"))
	f.Add([]byte("user_id,item_id,click\n"))
	f.Add([]byte("user_id,item_id,click\n0,0,0\n4294967295,4294967295,4294967295\n"))
	f.Add([]byte("x"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if back.Len() != tbl.Len() {
			t.Fatalf("round trip changed length: %d → %d", tbl.Len(), back.Len())
		}
		for i := 0; i < tbl.Len(); i++ {
			if back.Row(i) != tbl.Row(i) {
				t.Fatalf("row %d changed: %+v → %+v", i, tbl.Row(i), back.Row(i))
			}
		}
	})
}

// FuzzReadBinary asserts the binary parser never panics or over-allocates
// on corrupt input, and accepted tables round-trip.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	tbl := New(2)
	tbl.Append(1, 2, 3)
	tbl.Append(7, 8, 9)
	if err := WriteBinary(&seed, tbl); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CTB1"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, got); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil || back.Len() != got.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
