package clicktable

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		if got.Row(i) != tbl.Row(i) {
			t.Errorf("row %d = %+v, want %+v", i, got.Row(i), tbl.Row(i))
		}
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("user_id,item_id,click\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d, want 0", got.Len())
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("expected header error")
	}
}

func TestCSVRejectsBadFields(t *testing.T) {
	cases := []string{
		"user_id,item_id,click\nx,2,3\n",
		"user_id,item_id,click\n1,y,3\n",
		"user_id,item_id,click\n1,2,z\n",
		"user_id,item_id,click\n1,2\n",
		"user_id,item_id,click\n-1,2,3\n",
		"user_id,item_id,click\n99999999999,2,3\n", // overflows uint32
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(0)
		for i := 0; i < rng.Intn(200); i++ {
			tbl.Append(rng.Uint32(), rng.Uint32(), 1+uint32(rng.Intn(1000)))
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != tbl.Len() {
			return false
		}
		for i := 0; i < tbl.Len(); i++ {
			if got.Row(i) != tbl.Row(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSVErrorDiagnostics(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must carry for operators
	}{
		{"", "missing header row"},
		{"user_id,item_id,click\n1,2,99999999999\n", "out of range for uint32"},
		{"user_id,item_id,click\n-7,2,3\n", "negative"},
		{"user_id,item_id,click\n1,2,x\n", "not an unsigned integer"},
		{"user_id,item_id,click\n1,2,3\n4,5,6\n1,2,x\n", "line 4"},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("no error for %q", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error for %q = %q, want it to mention %q", tc.in, err, tc.want)
		}
	}
}
