// Package clicktable implements the user-item click table that the paper
// calls TaoBao_UI_Clicks: a three-column relation (User_ID, Item_ID, Click)
// holding aggregated click counts, together with the scale and statistics
// computations of the paper's Tables I and II and the conversion to the
// bipartite click graph (the TableToBiGraph step of Algorithm 2).
package clicktable

import (
	"fmt"
	"sort"

	"repro/internal/bipartite"
)

// Record is one row of the click table: user UserID clicked item ItemID
// Clicks times.
type Record struct {
	UserID uint32
	ItemID uint32
	Clicks uint32
}

// Table is an in-memory click table. Rows are stored column-wise to keep
// large tables compact and scan-friendly.
type Table struct {
	users  []uint32
	items  []uint32
	clicks []uint32
}

// New returns an empty table with capacity for n rows.
func New(n int) *Table {
	return &Table{
		users:  make([]uint32, 0, n),
		items:  make([]uint32, 0, n),
		clicks: make([]uint32, 0, n),
	}
}

// Append adds a row. Zero-click rows are dropped, matching the semantics of
// an aggregated click log.
func (t *Table) Append(user, item, clicks uint32) {
	if clicks == 0 {
		return
	}
	t.users = append(t.users, user)
	t.items = append(t.items, item)
	t.clicks = append(t.clicks, clicks)
}

// AppendRecord adds a row from a Record value.
func (t *Table) AppendRecord(r Record) { t.Append(r.UserID, r.ItemID, r.Clicks) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.users) }

// Row returns row i.
func (t *Table) Row(i int) Record {
	return Record{UserID: t.users[i], ItemID: t.items[i], Clicks: t.clicks[i]}
}

// Each calls fn for every row in order. If fn returns false iteration stops.
func (t *Table) Each(fn func(Record) bool) {
	for i := range t.users {
		if !fn(Record{UserID: t.users[i], ItemID: t.items[i], Clicks: t.clicks[i]}) {
			return
		}
	}
}

// Clone returns a deep copy of the table. The copy shares nothing with the
// receiver, so it stays stable while the original keeps ingesting — the
// durability layer snapshots tables this way under the ingest lock.
func (t *Table) Clone() *Table {
	c := New(t.Len())
	c.users = append(c.users, t.users...)
	c.items = append(c.items, t.items...)
	c.clicks = append(c.clicks, t.clicks...)
	return c
}

// Aggregate merges duplicate (user, item) rows by summing clicks, returning
// a table sorted by (user, item). The receiver is unchanged. Click sums
// saturate at MaxUint32 rather than wrapping.
//
// An already-aggregated table (strictly increasing (user, item) rows) is
// returned as-is — no sort, no copy — so Aggregate is idempotent and free
// to call defensively: Aggregate(Aggregate(t)) returns the same *Table.
func (t *Table) Aggregate() *Table {
	if t.aggregated() {
		return t
	}
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if t.users[i] != t.users[j] {
			return t.users[i] < t.users[j]
		}
		return t.items[i] < t.items[j]
	})
	out := New(t.Len())
	for p := 0; p < len(idx); {
		i := idx[p]
		u, v, c := t.users[i], t.items[i], uint64(t.clicks[i])
		q := p + 1
		for q < len(idx) && t.users[idx[q]] == u && t.items[idx[q]] == v {
			c += uint64(t.clicks[idx[q]])
			q++
		}
		if c > 1<<32-1 {
			c = 1<<32 - 1
		}
		out.Append(u, v, uint32(c))
		p = q
	}
	return out
}

// aggregated reports whether the rows are strictly increasing by
// (user, item) — the invariant Aggregate's output satisfies: sorted with no
// duplicate pairs (zero-click rows can never be appended).
func (t *Table) aggregated() bool {
	for i := 1; i < len(t.users); i++ {
		if t.users[i] < t.users[i-1] {
			return false
		}
		if t.users[i] == t.users[i-1] && t.items[i] <= t.items[i-1] {
			return false
		}
	}
	return true
}

// Scale summarizes the table the way the paper's Table I does.
type Scale struct {
	Users       int    // distinct user IDs present
	Items       int    // distinct item IDs present
	Edges       int    // distinct (user, item) pairs
	TotalClicks uint64 // sum of the Click column
}

// Scale computes Table I-style scale numbers.
func (t *Table) Scale() Scale {
	users := map[uint32]struct{}{}
	items := map[uint32]struct{}{}
	pairs := map[uint64]struct{}{}
	var total uint64
	for i := range t.users {
		users[t.users[i]] = struct{}{}
		items[t.items[i]] = struct{}{}
		pairs[uint64(t.users[i])<<32|uint64(t.items[i])] = struct{}{}
		total += uint64(t.clicks[i])
	}
	return Scale{Users: len(users), Items: len(items), Edges: len(pairs), TotalClicks: total}
}

// String renders the scale like the paper's Table I row.
func (s Scale) String() string {
	return fmt.Sprintf("users=%d items=%d edges=%d total_clicks=%d",
		s.Users, s.Items, s.Edges, s.TotalClicks)
}

// ToGraph converts the table to a bipartite click graph. Duplicate rows are
// merged by summing clicks (the graph builder does this). This is the
// TableToBiGraph function of the paper's Algorithm 2.
func (t *Table) ToGraph() *bipartite.Graph {
	b := bipartite.NewBuilder(0, 0)
	for i := range t.users {
		b.Add(t.users[i], t.items[i], t.clicks[i])
	}
	return b.Build()
}

// FromGraph materializes the live part of a bipartite graph back into a
// click table sorted by (user, item).
func FromGraph(g *bipartite.Graph) *Table {
	t := New(g.LiveEdges())
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			t.Append(u, v, w)
			return true
		})
		return true
	})
	return t
}
