package clicktable

import "math"

// SideStats mirrors the per-side rows of the paper's Table II.
type SideStats struct {
	AvgClicks   float64 // Avg_clk: mean total clicks per entity
	AvgCount    float64 // Avg_cnt: mean number of distinct counterparts
	StdevClicks float64 // Stdev: population stdev of total clicks
}

// Stats holds both rows of Table II.
type Stats struct {
	User SideStats
	Item SideStats
}

// ComputeStats computes Table II for the table. Rows are aggregated by
// entity; duplicate (user, item) rows count as one counterpart but their
// clicks accumulate, matching an aggregated click log.
func ComputeStats(t *Table) Stats {
	type acc struct {
		clicks uint64
		pairs  map[uint32]struct{}
	}
	userAcc := map[uint32]*acc{}
	itemAcc := map[uint32]*acc{}
	get := func(m map[uint32]*acc, k uint32) *acc {
		a := m[k]
		if a == nil {
			a = &acc{pairs: map[uint32]struct{}{}}
			m[k] = a
		}
		return a
	}
	t.Each(func(r Record) bool {
		ua := get(userAcc, r.UserID)
		ua.clicks += uint64(r.Clicks)
		ua.pairs[r.ItemID] = struct{}{}
		ia := get(itemAcc, r.ItemID)
		ia.clicks += uint64(r.Clicks)
		ia.pairs[r.UserID] = struct{}{}
		return true
	})
	side := func(m map[uint32]*acc) SideStats {
		n := len(m)
		if n == 0 {
			return SideStats{}
		}
		var sum, sumSq float64
		var cnt int
		for _, a := range m {
			x := float64(a.clicks)
			sum += x
			sumSq += x * x
			cnt += len(a.pairs)
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return SideStats{
			AvgClicks:   mean,
			AvgCount:    float64(cnt) / float64(n),
			StdevClicks: math.Sqrt(variance),
		}
	}
	return Stats{User: side(userAcc), Item: side(itemAcc)}
}
