package clicktable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary click-table format — the compact warehouse snapshot used when CSV
// is too slow to scan:
//
//	magic "CTB1" | rows u64 | rows × (user u32 | item u32 | click u32),
//	little endian, in table order.

var binaryMagic = [4]byte{'C', 'T', 'B', '1'}

// WriteBinary writes the table in the binary click-table format.
func WriteBinary(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("clicktable: write magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(t.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("clicktable: write header: %w", err)
	}
	var rec [12]byte
	for i := 0; i < t.Len(); i++ {
		r := t.Row(i)
		binary.LittleEndian.PutUint32(rec[0:], r.UserID)
		binary.LittleEndian.PutUint32(rec[4:], r.ItemID)
		binary.LittleEndian.PutUint32(rec[8:], r.Clicks)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("clicktable: write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBinary reads a table in the binary click-table format.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("clicktable: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("clicktable: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("clicktable: read header: %w", err)
	}
	rows := binary.LittleEndian.Uint64(hdr[:])
	const maxRows = 1 << 33 // refuse absurd headers outright
	if rows > maxRows {
		return nil, fmt.Errorf("clicktable: header claims %d rows", rows)
	}
	// Never trust the header for the allocation size: a corrupt header on
	// a short stream must fail with a read error, not an OOM. Capacity
	// grows with data actually present.
	capHint := rows
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t := New(int(capHint))
	var rec [12]byte
	for i := uint64(0); i < rows; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("clicktable: read row %d/%d: %w", i, rows, err)
		}
		t.Append(
			binary.LittleEndian.Uint32(rec[0:]),
			binary.LittleEndian.Uint32(rec[4:]),
			binary.LittleEndian.Uint32(rec[8:]),
		)
	}
	return t, nil
}
