package clicktable

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		if got.Row(i) != tbl.Row(i) {
			t.Errorf("row %d = %+v, want %+v", i, got.Row(i), tbl.Row(i))
		}
	}
}

func TestBinaryEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, New(0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d, want 0", got.Len())
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXXgarbage.....")); err == nil {
		t.Error("expected magic error")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 8, len(data) - 4} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("expected error at cut %d", cut)
		}
	}
}

func TestBinaryRejectsAbsurdHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CTB1")
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // ~2^63 rows
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("expected header-size error")
	}
}
