package clicktable

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CSV format: a header row "user_id,item_id,click" followed by one row per
// record. This is the interchange format of cmd/synthgen and cmd/ricd.

// csvHeader is the canonical header row.
var csvHeader = []string{"user_id", "item_id", "click"}

// WriteCSV writes the table in CSV format.
func WriteCSV(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("clicktable: write header: %w", err)
	}
	rec := make([]string, 3)
	for i := 0; i < t.Len(); i++ {
		r := t.Row(i)
		rec[0] = strconv.FormatUint(uint64(r.UserID), 10)
		rec[1] = strconv.FormatUint(uint64(r.ItemID), 10)
		rec[2] = strconv.FormatUint(uint64(r.Clicks), 10)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("clicktable: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("clicktable: flush: %w", err)
	}
	return bw.Flush()
}

// parseField parses one uint32 CSV field with an operator-grade diagnosis:
// negative values and values past the uint32 range get their own messages
// instead of strconv's generic ones.
func parseField(line int, name, s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err == nil {
		return uint32(v), nil
	}
	switch {
	case strings.HasPrefix(strings.TrimSpace(s), "-"):
		return 0, fmt.Errorf("clicktable: line %d: %s %q is negative (IDs and clicks must be non-negative integers)", line, name, s)
	case errors.Is(err, strconv.ErrRange):
		return 0, fmt.Errorf("clicktable: line %d: %s %q out of range for uint32 (max %d)", line, name, s, uint64(math.MaxUint32))
	default:
		return 0, fmt.Errorf("clicktable: line %d: %s %q is not an unsigned integer", line, name, s)
	}
}

// ReadCSV reads a table in CSV format. The header row is validated.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true

	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("clicktable: empty input: missing header row %q", strings.Join(csvHeader, ","))
	}
	if err != nil {
		return nil, fmt.Errorf("clicktable: read header: %w", err)
	}
	for i, want := range csvHeader {
		if hdr[i] != want {
			return nil, fmt.Errorf("clicktable: bad header column %d: got %q, want %q", i, hdr[i], want)
		}
	}

	t := New(0)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("clicktable: line %d: %w", line, err)
		}
		u, err := parseField(line, "user_id", rec[0])
		if err != nil {
			return nil, err
		}
		v, err := parseField(line, "item_id", rec[1])
		if err != nil {
			return nil, err
		}
		c, err := parseField(line, "click", rec[2])
		if err != nil {
			return nil, err
		}
		t.Append(u, v, c)
	}
}
