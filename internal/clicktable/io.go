package clicktable

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV format: a header row "user_id,item_id,click" followed by one row per
// record. This is the interchange format of cmd/synthgen and cmd/ricd.

// csvHeader is the canonical header row.
var csvHeader = []string{"user_id", "item_id", "click"}

// WriteCSV writes the table in CSV format.
func WriteCSV(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("clicktable: write header: %w", err)
	}
	rec := make([]string, 3)
	for i := 0; i < t.Len(); i++ {
		r := t.Row(i)
		rec[0] = strconv.FormatUint(uint64(r.UserID), 10)
		rec[1] = strconv.FormatUint(uint64(r.ItemID), 10)
		rec[2] = strconv.FormatUint(uint64(r.Clicks), 10)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("clicktable: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("clicktable: flush: %w", err)
	}
	return bw.Flush()
}

// ReadCSV reads a table in CSV format. The header row is validated.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true

	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("clicktable: read header: %w", err)
	}
	for i, want := range csvHeader {
		if hdr[i] != want {
			return nil, fmt.Errorf("clicktable: bad header column %d: got %q, want %q", i, hdr[i], want)
		}
	}

	t := New(0)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("clicktable: line %d: %w", line, err)
		}
		u, err := strconv.ParseUint(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("clicktable: line %d: bad user_id %q: %w", line, rec[0], err)
		}
		v, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("clicktable: line %d: bad item_id %q: %w", line, rec[1], err)
		}
		c, err := strconv.ParseUint(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("clicktable: line %d: bad click %q: %w", line, rec[2], err)
		}
		t.Append(uint32(u), uint32(v), uint32(c))
	}
}
