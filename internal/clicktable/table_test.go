package clicktable

import (
	"math"
	"reflect"
	"testing"
)

func sampleTable() *Table {
	t := New(8)
	t.Append(1, 1, 3)
	t.Append(1, 2, 1)
	t.Append(2, 1, 2)
	t.Append(2, 2, 5)
	t.Append(2, 3, 1)
	t.Append(3, 3, 7)
	return t
}

func TestAppendAndRow(t *testing.T) {
	tbl := sampleTable()
	if tbl.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tbl.Len())
	}
	want := Record{UserID: 2, ItemID: 2, Clicks: 5}
	if got := tbl.Row(3); got != want {
		t.Errorf("Row(3) = %+v, want %+v", got, want)
	}
}

func TestAppendDropsZeroClicks(t *testing.T) {
	tbl := New(1)
	tbl.Append(1, 1, 0)
	if tbl.Len() != 0 {
		t.Errorf("zero-click row was kept")
	}
}

func TestEachEarlyStop(t *testing.T) {
	tbl := sampleTable()
	n := 0
	tbl.Each(func(Record) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("visited %d rows, want 2", n)
	}
}

func TestAggregateMergesDuplicates(t *testing.T) {
	tbl := New(4)
	tbl.Append(5, 7, 2)
	tbl.Append(1, 1, 1)
	tbl.Append(5, 7, 3)
	tbl.Append(5, 6, 1)
	agg := tbl.Aggregate()
	if agg.Len() != 3 {
		t.Fatalf("aggregated Len = %d, want 3", agg.Len())
	}
	var got []Record
	agg.Each(func(r Record) bool { got = append(got, r); return true })
	want := []Record{{1, 1, 1}, {5, 6, 1}, {5, 7, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("aggregated rows = %+v, want %+v", got, want)
	}
	if tbl.Len() != 4 {
		t.Error("Aggregate mutated the receiver")
	}
}

func TestScale(t *testing.T) {
	tbl := sampleTable()
	tbl.Append(1, 1, 2) // duplicate pair: must not raise Edges
	s := tbl.Scale()
	if s.Users != 3 || s.Items != 3 || s.Edges != 6 || s.TotalClicks != 21 {
		t.Errorf("Scale = %+v, want {3 3 6 21}", s)
	}
}

func TestToGraphRoundTrip(t *testing.T) {
	tbl := sampleTable()
	g := tbl.ToGraph()
	if g.LiveEdges() != 6 || g.LiveClicks() != 19 {
		t.Fatalf("graph accounting = %v", g)
	}
	if got, want := g.Weight(2, 2), uint32(5); got != want {
		t.Errorf("Weight(2,2) = %d, want %d", got, want)
	}
	back := FromGraph(g)
	if back.Len() != tbl.Len() {
		t.Fatalf("round-trip Len = %d, want %d", back.Len(), tbl.Len())
	}
	if back.Scale() != tbl.Scale() {
		t.Errorf("round-trip scale = %+v, want %+v", back.Scale(), tbl.Scale())
	}
}

func TestComputeStats(t *testing.T) {
	tbl := sampleTable()
	s := ComputeStats(tbl)
	// User totals: u1=4, u2=8, u3=7 → mean 19/3; counts 2,3,1 → 2.
	if !almost(s.User.AvgClicks, 19.0/3.0) {
		t.Errorf("User.AvgClicks = %v, want %v", s.User.AvgClicks, 19.0/3.0)
	}
	if !almost(s.User.AvgCount, 2.0) {
		t.Errorf("User.AvgCount = %v, want 2", s.User.AvgCount)
	}
	// Item totals: i1=5, i2=6, i3=8 → mean 19/3; counts 2,2,2 → 2.
	if !almost(s.Item.AvgClicks, 19.0/3.0) {
		t.Errorf("Item.AvgClicks = %v, want %v", s.Item.AvgClicks, 19.0/3.0)
	}
	if !almost(s.Item.AvgCount, 2.0) {
		t.Errorf("Item.AvgCount = %v, want 2", s.Item.AvgCount)
	}
	wantVar := (25.0+36+64)/3 - (19.0/3)*(19.0/3)
	if !almost(s.Item.StdevClicks, math.Sqrt(wantVar)) {
		t.Errorf("Item.StdevClicks = %v, want %v", s.Item.StdevClicks, math.Sqrt(wantVar))
	}
}

func TestComputeStatsDuplicateRows(t *testing.T) {
	tbl := New(2)
	tbl.Append(1, 1, 2)
	tbl.Append(1, 1, 3)
	s := ComputeStats(tbl)
	if !almost(s.User.AvgClicks, 5) || !almost(s.User.AvgCount, 1) {
		t.Errorf("duplicate rows: %+v", s.User)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New(0))
	if s.User != (SideStats{}) || s.Item != (SideStats{}) {
		t.Errorf("empty stats = %+v, want zeros", s)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
