package i2i

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bipartite"
)

// recGraph: anchor item 0 clicked by u0,u1. u0 also clicks item 1 (×3);
// u1 clicks items 1 (×1) and 2 (×2). u2 clicks item 3 only (no co-click).
func recGraph() *bipartite.Graph {
	b := bipartite.NewBuilder(3, 4)
	b.Add(0, 0, 1)
	b.Add(0, 1, 3)
	b.Add(1, 0, 2)
	b.Add(1, 1, 1)
	b.Add(1, 2, 2)
	b.Add(2, 3, 5)
	return b.Build()
}

func TestCoClicks(t *testing.T) {
	g := recGraph()
	co := CoClicks(g, 0)
	want := map[bipartite.NodeID]uint64{1: 4, 2: 2}
	if !reflect.DeepEqual(co, want) {
		t.Errorf("CoClicks = %v, want %v", co, want)
	}
}

func TestScoresNormalized(t *testing.T) {
	g := recGraph()
	scores := Scores(g, 0)
	if len(scores) != 2 {
		t.Fatalf("got %d scores, want 2", len(scores))
	}
	if scores[0].Item != 1 || math.Abs(scores[0].Score-4.0/6.0) > 1e-12 {
		t.Errorf("top score = %+v, want item 1 score 2/3", scores[0])
	}
	var sum float64
	for _, s := range scores {
		sum += s.Score
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestScoresNoCoClicks(t *testing.T) {
	g := recGraph()
	if s := Scores(g, 3); s != nil {
		t.Errorf("item 3 has no co-clicks, got %v", s)
	}
}

func TestRecommend(t *testing.T) {
	g := recGraph()
	got := Recommend(g, 0, 1)
	if !reflect.DeepEqual(got, []bipartite.NodeID{1}) {
		t.Errorf("Recommend = %v, want [1]", got)
	}
	if got := Recommend(g, 0, 10); len(got) != 2 {
		t.Errorf("Recommend k>n returned %d items", len(got))
	}
}

func TestRank(t *testing.T) {
	g := recGraph()
	if r := Rank(g, 0, 2); r != 2 {
		t.Errorf("Rank(0,2) = %d, want 2", r)
	}
	if r := Rank(g, 0, 3); r != 0 {
		t.Errorf("Rank of non-co-clicked item = %d, want 0", r)
	}
}

func TestAttackRaisesScoreAndRank(t *testing.T) {
	// Attack: users 10..14 click anchor 0 once and target 2 many times.
	// The target's rank in anchor's list must improve.
	g := recGraph()
	before := Rank(g, 0, 2)

	b := bipartite.NewBuilder(15, 4)
	for _, e := range g.Edges() {
		b.Add(e.U, e.V, e.Weight)
	}
	for u := bipartite.NodeID(10); u < 15; u++ {
		b.Add(u, 0, 1)
		b.Add(u, 2, 15)
	}
	attacked := b.Build()
	after := Rank(attacked, 0, 2)
	if after >= before {
		t.Errorf("attack did not improve rank: before %d, after %d", before, after)
	}
	if after != 1 {
		t.Errorf("attacked target rank = %d, want 1", after)
	}
}
