package i2i

import "testing"

func TestCampaignConfigValidation(t *testing.T) {
	if err := DefaultCampaignConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.Days = 0 },
		func(c *CampaignConfig) { c.AttackStartDay = 0 },
		func(c *CampaignConfig) { c.AttackStartDay = c.Days + 1 },
		func(c *CampaignConfig) { c.DetectionDay = c.AttackStartDay - 1 },
		func(c *CampaignConfig) { c.DelistDay = c.DetectionDay - 1 },
		func(c *CampaignConfig) { c.RampDays = 0 },
		func(c *CampaignConfig) { c.CTR = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultCampaignConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCampaignTimelineShape(t *testing.T) {
	cfg := DefaultCampaignConfig()
	pts, err := SimulateCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != cfg.Days {
		t.Fatalf("got %d points, want %d", len(pts), cfg.Days)
	}
	day := func(d int) TrafficPoint { return pts[d-1] }

	// Before the attack: pure base traffic, no abnormal.
	for d := 1; d < cfg.AttackStartDay; d++ {
		if day(d).Abnormal != 0 {
			t.Errorf("day %d has abnormal traffic before attack", d)
		}
		if day(d).Normal != cfg.BaseTraffic {
			t.Errorf("day %d normal = %v, want base %v", d, day(d).Normal, cfg.BaseTraffic)
		}
	}

	// Abnormal traffic appears at attack start and grows through the ramp
	// (Fig 10: "abnormal traffic had begun to increase before Day 6").
	if day(cfg.AttackStartDay).Abnormal <= 0 {
		t.Error("no abnormal traffic at attack start")
	}
	if day(cfg.AttackStartDay+1).Abnormal < day(cfg.AttackStartDay).Abnormal {
		t.Error("abnormal traffic not ramping up")
	}

	// Normal traffic grows rapidly once the campaign starts (days 6-9).
	if day(cfg.CampaignStartDay+1).Normal <= day(cfg.CampaignStartDay-1).Normal {
		t.Error("campaign did not lift misled normal traffic")
	}

	// Detection cleans fake clicks: abnormal drops to zero.
	for d := cfg.DetectionDay; d <= cfg.Days; d++ {
		if day(d).Abnormal != 0 {
			t.Errorf("day %d: abnormal traffic after detection", d)
		}
	}

	// The day after detection, normal traffic falls back near base
	// (Fig 10: "restored to the normal level (Day 10)").
	post := day(cfg.DetectionDay + 1).Normal
	peak := day(cfg.DetectionDay - 1).Normal
	if post >= peak/2 {
		t.Errorf("post-cleanup normal %v not clearly below peak %v", post, peak)
	}

	// After delisting: zero everything.
	for d := cfg.DelistDay; d <= cfg.Days; d++ {
		if day(d).Total() != 0 {
			t.Errorf("day %d: traffic after delisting", d)
		}
	}
}

func TestCampaignScoreResetsOnDetection(t *testing.T) {
	cfg := DefaultCampaignConfig()
	pts, err := SimulateCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preDetect := pts[cfg.DetectionDay-2].I2IScore
	atDetect := pts[cfg.DetectionDay-1].I2IScore
	if preDetect <= 0 {
		t.Error("I2I score not lifted before detection")
	}
	if atDetect != 0 {
		t.Errorf("I2I score = %v on detection day, want 0 after cleanup", atDetect)
	}
}

func TestCampaignTotal(t *testing.T) {
	p := TrafficPoint{Normal: 3, Abnormal: 4}
	if p.Total() != 7 {
		t.Errorf("Total = %v, want 7", p.Total())
	}
}

func TestSimulateCampaignRejectsBadConfig(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Days = 0
	if _, err := SimulateCampaign(cfg); err == nil {
		t.Error("expected error")
	}
}
