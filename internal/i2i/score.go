// Package i2i implements the item-to-item relevance model the "Ride Item's
// Coattails" attack manipulates: the I2I-score of Eq 1, a top-k
// recommender built on it, the attacker's click-allocation problem of
// Eqs 2–3 with its closed-form optimal strategy, and the campaign traffic
// simulator behind the Section VII case study.
package i2i

import (
	"sort"

	"repro/internal/bipartite"
)

// ItemScore is one entry of an anchor item's I2I score list.
type ItemScore struct {
	Item bipartite.NodeID
	// CoClicks is C_i: total clicks on Item by users who clicked the anchor.
	CoClicks uint64
	// Score is S_i = C_i / Σ_j C_j (Eq 1).
	Score float64
}

// CoClicks computes C_i for every item co-clicked with anchor: the total
// click weight spent on item i by users who clicked the anchor item. The
// anchor itself is excluded.
func CoClicks(g *bipartite.Graph, anchor bipartite.NodeID) map[bipartite.NodeID]uint64 {
	out := map[bipartite.NodeID]uint64{}
	g.EachItemNeighbor(anchor, func(u bipartite.NodeID, _ uint32) bool {
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if v != anchor {
				out[v] += uint64(w)
			}
			return true
		})
		return true
	})
	return out
}

// Scores computes the normalized I2I score list of an anchor item, sorted
// by descending score with ties broken by ascending item ID.
func Scores(g *bipartite.Graph, anchor bipartite.NodeID) []ItemScore {
	co := CoClicks(g, anchor)
	if len(co) == 0 {
		return nil
	}
	var total uint64
	for _, c := range co {
		total += c
	}
	out := make([]ItemScore, 0, len(co))
	for item, c := range co {
		out = append(out, ItemScore{Item: item, CoClicks: c, Score: float64(c) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Recommend returns the top-k recommendation list for a user who just
// clicked the anchor item — the I2I serving path the attack hijacks.
func Recommend(g *bipartite.Graph, anchor bipartite.NodeID, k int) []bipartite.NodeID {
	scores := Scores(g, anchor)
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]bipartite.NodeID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, scores[i].Item)
	}
	return out
}

// Rank returns the 1-based position of target in anchor's score list, or 0
// if the target does not co-occur at all.
func Rank(g *bipartite.Graph, anchor, target bipartite.NodeID) int {
	for i, s := range Scores(g, anchor) {
		if s.Item == target {
			return i + 1
		}
	}
	return 0
}
