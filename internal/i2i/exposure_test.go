package i2i

import (
	"testing"

	"repro/internal/bipartite"
)

// exposureGraph: anchor 0 heavily co-clicked with target 1 (by attack users)
// and lightly with normal items 2, 3. Anchor 4 is untouched.
func exposureGraph() *bipartite.Graph {
	b := bipartite.NewBuilder(30, 6)
	// Attack: users 0..9 click anchor 0 and hammer target 1.
	for u := bipartite.NodeID(0); u < 10; u++ {
		b.Add(u, 0, 1)
		b.Add(u, 1, 15)
	}
	// Normal co-clicks.
	b.Add(10, 0, 2)
	b.Add(10, 2, 1)
	b.Add(11, 0, 1)
	b.Add(11, 3, 1)
	// Anchor 4's independent traffic.
	b.Add(12, 4, 3)
	b.Add(12, 5, 1)
	return b.Build()
}

func TestTargetExposure(t *testing.T) {
	g := exposureGraph()
	targets := map[bipartite.NodeID]bool{1: true}
	e := TargetExposure(g, []bipartite.NodeID{0, 4}, targets, 2)
	if e.Anchors != 2 || e.Slots != 4 {
		t.Fatalf("anchors/slots = %d/%d, want 2/4", e.Anchors, e.Slots)
	}
	// Target 1 dominates anchor 0's list; anchor 4's list has no targets.
	if e.TargetSlots != 1 {
		t.Errorf("TargetSlots = %d, want 1", e.TargetSlots)
	}
	if e.AnchorsHit != 1 {
		t.Errorf("AnchorsHit = %d, want 1", e.AnchorsHit)
	}
	if e.Share() != 0.25 {
		t.Errorf("Share = %v, want 0.25", e.Share())
	}
}

func TestTargetExposureSkipsDeadAnchors(t *testing.T) {
	g := exposureGraph()
	g.RemoveItem(0)
	e := TargetExposure(g, []bipartite.NodeID{0}, map[bipartite.NodeID]bool{1: true}, 3)
	if e.Anchors != 0 || e.Slots != 0 || e.Share() != 0 {
		t.Errorf("dead anchor counted: %+v", e)
	}
}

func TestExposureDropsAfterRemovingAttackers(t *testing.T) {
	g := exposureGraph()
	targets := map[bipartite.NodeID]bool{1: true}
	before := TargetExposure(g, []bipartite.NodeID{0}, targets, 1)
	// Clean: remove the attack users.
	for u := bipartite.NodeID(0); u < 10; u++ {
		g.RemoveUser(u)
	}
	after := TargetExposure(g, []bipartite.NodeID{0}, targets, 1)
	if before.TargetSlots != 1 {
		t.Fatalf("pre-clean target not in top-1: %+v", before)
	}
	if after.TargetSlots != 0 {
		t.Errorf("post-clean target still recommended: %+v", after)
	}
}

func TestHotAnchors(t *testing.T) {
	g := exposureGraph()
	anchors := HotAnchors(g, 10)
	// Anchor 0 has 14 clicks, target 1 has 150; others are below 10.
	want := map[bipartite.NodeID]bool{0: true, 1: true}
	if len(anchors) != 2 {
		t.Fatalf("HotAnchors = %v", anchors)
	}
	for _, a := range anchors {
		if !want[a] {
			t.Errorf("unexpected hot anchor %d", a)
		}
	}
}
