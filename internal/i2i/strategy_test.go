package i2i

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttackScoreEq2(t *testing.T) {
	// baseSum=100, cInit=1, cPrime=10, c=10: S = 11/(100+11) = 11/111.
	got := AttackScore(100, 1, 10, 10)
	want := 11.0 / 111.0
	if got != want {
		t.Errorf("AttackScore = %v, want %v", got, want)
	}
	// Wasting clicks elsewhere (c > cPrime) must lower the score.
	if AttackScore(100, 1, 10, 15) >= got {
		t.Error("wasted clicks did not lower the score")
	}
}

func TestAttackScoreZeroDenominator(t *testing.T) {
	if s := AttackScore(0, 0, 0, 0); s != 0 {
		t.Errorf("degenerate score = %v, want 0", s)
	}
}

func TestOptimalStrategyClosedForm(t *testing.T) {
	cp, c := OptimalStrategy(20)
	if cp != 18 || c != 18 {
		t.Errorf("OptimalStrategy(20) = (%d,%d), want (18,18)", cp, c)
	}
	cp, c = OptimalStrategy(1)
	if cp != 0 || c != 0 {
		t.Errorf("OptimalStrategy(1) = (%d,%d), want (0,0)", cp, c)
	}
}

// Property (Eq 3): the exhaustive maximizer always equals the closed form
// C′ = C = C_b − 2, for any base mass and budget.
func TestPropertyBestStrategyIsClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseSum := uint64(1 + rng.Intn(100000))
		cInit := uint64(1 + rng.Intn(3))
		budget := 2 + rng.Intn(30)
		cp, c, score := BestStrategy(baseSum, cInit, budget)
		wantCp, wantC := OptimalStrategy(budget)
		if cp != wantCp || c != wantC {
			return false
		}
		return score == AttackScore(baseSum, cInit, wantCp, wantC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the attack score is monotone increasing in cPrime at fixed c.
func TestPropertyScoreMonotoneInTargetClicks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseSum := uint64(1 + rng.Intn(10000))
		cInit := uint64(1 + rng.Intn(3))
		c := 1 + rng.Intn(30)
		prev := -1.0
		for cp := 0; cp <= c; cp++ {
			s := AttackScore(baseSum, cInit, cp, c)
			if s <= prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
