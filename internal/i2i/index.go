package i2i

import (
	"runtime"
	"sync"

	"repro/internal/bipartite"
)

// Index is a precomputed top-k I2I recommendation table — the serving-side
// artifact a production recommender materializes nightly from the click
// log, and the thing the "Ride Item's Coattails" attack ultimately poisons.
type Index struct {
	k     int
	lists map[bipartite.NodeID][]ItemScore
}

// BuildIndex precomputes the top-k score lists of the given anchor items in
// parallel across `workers` goroutines (0 means GOMAXPROCS).
func BuildIndex(g *bipartite.Graph, anchors []bipartite.NodeID, k, workers int) *Index {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(anchors) {
		workers = len(anchors)
	}
	idx := &Index{k: k, lists: make(map[bipartite.NodeID][]ItemScore, len(anchors))}
	if len(anchors) == 0 {
		return idx
	}

	type entry struct {
		anchor bipartite.NodeID
		list   []ItemScore
	}
	results := make([]entry, len(anchors))
	var wg sync.WaitGroup
	chunk := (len(anchors) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(anchors) {
			hi = len(anchors)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				scores := Scores(g, anchors[i])
				if len(scores) > k {
					scores = scores[:k]
				}
				results[i] = entry{anchor: anchors[i], list: scores}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, e := range results {
		idx.lists[e.anchor] = e.list
	}
	return idx
}

// K returns the list depth the index was built with.
func (idx *Index) K() int { return idx.k }

// Anchors returns the number of indexed anchor items.
func (idx *Index) Anchors() int { return len(idx.lists) }

// List returns the precomputed score list of an anchor (nil if the anchor
// was not indexed).
func (idx *Index) List(anchor bipartite.NodeID) []ItemScore {
	return idx.lists[anchor]
}

// Recommend returns the indexed top-k item IDs for an anchor.
func (idx *Index) Recommend(anchor bipartite.NodeID) []bipartite.NodeID {
	list := idx.lists[anchor]
	out := make([]bipartite.NodeID, 0, len(list))
	for _, s := range list {
		out = append(out, s.Item)
	}
	return out
}

// Rank returns the 1-based indexed position of target in anchor's list, or
// 0 when absent (not co-clicked, below the top-k cut, or anchor unindexed).
func (idx *Index) Rank(anchor, target bipartite.NodeID) int {
	for i, s := range idx.lists[anchor] {
		if s.Item == target {
			return i + 1
		}
	}
	return 0
}
