package i2i

import (
	"testing"

	"repro/internal/synth"
)

func BenchmarkScores(b *testing.B) {
	ds := synth.MustGenerate(synth.SmallConfig())
	anchors := HotAnchors(ds.Graph, 300)
	if len(anchors) == 0 {
		b.Fatal("no anchors")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scores(ds.Graph, anchors[i%len(anchors)])
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	ds := synth.MustGenerate(synth.SmallConfig())
	anchors := HotAnchors(ds.Graph, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildIndex(ds.Graph, anchors, 10, 0)
	}
}

func BenchmarkSimulateCampaign(b *testing.B) {
	cfg := DefaultCampaignConfig()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCampaign(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
