package i2i

import "fmt"

// Campaign simulation for the Section VII case study (Fig 10): the traffic
// trajectory of a target item through a marketing-campaign attack —
// pre-campaign fake-click ramp-up, campaign-driven organic growth via the
// hijacked recommendation slot, detection and cleanup, and final delisting.
//
// The normal-traffic component is driven mechanistically through the
// I2I-score: exposure of the target in the hot item's recommendation list
// is proportional to its (possibly manipulated) score, and misled organic
// clicks are exposure × anchor traffic × click-through rate.

// CampaignConfig parametrizes the simulation. Days are 1-based like Fig 10.
type CampaignConfig struct {
	Days int

	// AttackStartDay is when crowd workers start clicking (before the
	// campaign in the case study).
	AttackStartDay int
	// CampaignStartDay is when the marketing campaign begins (Day 6),
	// multiplying the hot item's traffic.
	CampaignStartDay int
	// DetectionDay is when RICD catches the group and fake clicks are
	// cleaned (Day 9).
	DetectionDay int
	// DelistDay is when the seller removes the items (Day 13).
	DelistDay int

	// BaseTraffic is the target's organic daily clicks before any attack.
	BaseTraffic float64
	// FakeClicksPerDay is the crowd workers' daily fake-click volume once
	// the ramp is complete.
	FakeClicksPerDay float64
	// RampDays is how many days the fake traffic takes to reach full rate.
	RampDays int

	// AnchorBaseCoClicks is Σ C_j of the ridden hot item before the attack.
	AnchorBaseCoClicks float64
	// AnchorDailyTraffic is the hot item's daily click traffic outside the
	// campaign window; CampaignBoost multiplies it during the campaign.
	AnchorDailyTraffic float64
	CampaignBoost      float64
	// CTR converts recommendation exposure into clicks.
	CTR float64
}

// DefaultCampaignConfig mirrors the case-study timeline: 13 days, attack
// from day 3, campaign from day 6, detection on day 9, delisting on day 13.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Days:               13,
		AttackStartDay:     3,
		CampaignStartDay:   6,
		DetectionDay:       9,
		DelistDay:          13,
		BaseTraffic:        40,
		FakeClicksPerDay:   220,
		RampDays:           3,
		AnchorBaseCoClicks: 20000,
		AnchorDailyTraffic: 8000,
		CampaignBoost:      3.0,
		CTR:                0.12,
	}
}

// Validate reports configuration errors.
func (c CampaignConfig) Validate() error {
	switch {
	case c.Days < 1:
		return fmt.Errorf("i2i: Days must be ≥ 1, got %d", c.Days)
	case c.AttackStartDay < 1 || c.AttackStartDay > c.Days:
		return fmt.Errorf("i2i: AttackStartDay %d outside [1,%d]", c.AttackStartDay, c.Days)
	case c.DetectionDay < c.AttackStartDay:
		return fmt.Errorf("i2i: DetectionDay %d before AttackStartDay %d", c.DetectionDay, c.AttackStartDay)
	case c.DelistDay < c.DetectionDay:
		return fmt.Errorf("i2i: DelistDay %d before DetectionDay %d", c.DelistDay, c.DetectionDay)
	case c.RampDays < 1:
		return fmt.Errorf("i2i: RampDays must be ≥ 1, got %d", c.RampDays)
	case c.CTR < 0 || c.CTR > 1:
		return fmt.Errorf("i2i: CTR must be in [0,1], got %v", c.CTR)
	}
	return nil
}

// TrafficPoint is one day of the Fig 10 series.
type TrafficPoint struct {
	Day int
	// Normal is organic traffic: base demand plus recommendation-misled
	// clicks.
	Normal float64
	// Abnormal is the crowd workers' fake-click traffic.
	Abnormal float64
	// I2IScore is the manipulated score of the target in the hot item's
	// list at the end of the day.
	I2IScore float64
}

// Total returns the day's combined traffic.
func (p TrafficPoint) Total() float64 { return p.Normal + p.Abnormal }

// SimulateCampaign produces the Fig 10 timeline.
func SimulateCampaign(cfg CampaignConfig) ([]TrafficPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]TrafficPoint, 0, cfg.Days)
	cumFake := 0.0 // accumulated fake co-clicks feeding the I2I score
	prevScore := 0.0

	for day := 1; day <= cfg.Days; day++ {
		var p TrafficPoint
		p.Day = day

		delisted := day >= cfg.DelistDay

		// Fake clicks ramp from the attack start until detection cleanup.
		if !delisted && day >= cfg.AttackStartDay && day < cfg.DetectionDay {
			ramp := float64(day-cfg.AttackStartDay+1) / float64(cfg.RampDays)
			if ramp > 1 {
				ramp = 1
			}
			p.Abnormal = cfg.FakeClicksPerDay * ramp
		}
		cumFake += p.Abnormal
		if day >= cfg.DetectionDay {
			cumFake = 0 // the platform cleans the false click information
		}

		// The manipulated I2I score (Eq 1 with fake co-click mass added).
		p.I2IScore = cumFake / (cfg.AnchorBaseCoClicks + cumFake)

		// Organic traffic: base demand plus misled recommendation clicks,
		// driven by yesterday's score (serving lags the log pipeline).
		if !delisted {
			anchor := cfg.AnchorDailyTraffic
			if day >= cfg.CampaignStartDay {
				anchor *= cfg.CampaignBoost
			}
			p.Normal = cfg.BaseTraffic + anchor*cfg.CTR*prevScore
		}

		prevScore = p.I2IScore
		out = append(out, p)
	}
	return out, nil
}
