package i2i

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/synth"
)

func TestIndexMatchesDirectComputation(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	anchors := HotAnchors(ds.Graph, 300)
	if len(anchors) == 0 {
		t.Fatal("no hot anchors in fixture")
	}
	idx := BuildIndex(ds.Graph, anchors, 5, 4)
	if idx.Anchors() != len(anchors) || idx.K() != 5 {
		t.Fatalf("index covers %d anchors k=%d, want %d/5", idx.Anchors(), idx.K(), len(anchors))
	}
	for _, a := range anchors {
		want := Recommend(ds.Graph, a, 5)
		got := idx.Recommend(a)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("anchor %d: indexed %v, direct %v", a, got, want)
		}
	}
}

func TestIndexWorkerIndependence(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	anchors := HotAnchors(ds.Graph, 300)
	one := BuildIndex(ds.Graph, anchors, 4, 1)
	many := BuildIndex(ds.Graph, anchors, 4, 8)
	for _, a := range anchors {
		if !reflect.DeepEqual(one.List(a), many.List(a)) {
			t.Errorf("anchor %d differs across worker counts", a)
		}
	}
}

func TestIndexRank(t *testing.T) {
	g := recGraph()
	idx := BuildIndex(g, []bipartite.NodeID{0}, 2, 2)
	if r := idx.Rank(0, 1); r != 1 {
		t.Errorf("Rank(0,1) = %d, want 1", r)
	}
	if r := idx.Rank(0, 99); r != 0 {
		t.Errorf("Rank of absent item = %d, want 0", r)
	}
	if r := idx.Rank(5, 1); r != 0 {
		t.Errorf("Rank under unindexed anchor = %d, want 0", r)
	}
}

func TestIndexEmptyAnchors(t *testing.T) {
	g := recGraph()
	idx := BuildIndex(g, nil, 3, 4)
	if idx.Anchors() != 0 {
		t.Errorf("empty build indexed %d anchors", idx.Anchors())
	}
	if idx.Recommend(0) != nil && len(idx.Recommend(0)) != 0 {
		t.Error("unindexed anchor returned recommendations")
	}
}
