package i2i

// The attacker's click-allocation problem (Section IV-A). A crowd worker
// has a click budget C_b for one attack task. Establishing the hot→target
// link costs two clicks (one on each). Of the remaining C ≤ C_b−2 clicks,
// C′ go to the target item and C−C′ to other items. Eq 2 gives the
// resulting I2I-score; Eq 3 proves S is maximized iff C′ = C = C_b−2 —
// click the hot item once, then pour everything into the target.

// AttackScore evaluates Eq 2: the I2I-score of the target item after the
// worker spends cPrime of c additional clicks on it.
//
//	baseSum = C_1 + … + C_n  (co-click mass of the hot item before attack)
//	cInit   = C_{n+1}        (target's initial co-clicks; ≥ 1 once linked)
func AttackScore(baseSum, cInit uint64, cPrime, c int) float64 {
	num := float64(cInit) + float64(cPrime)
	den := float64(baseSum) + float64(cInit) + float64(cPrime) + float64(c-cPrime)
	if den == 0 {
		return 0
	}
	return num / den
}

// BestStrategy searches all feasible allocations 0 ≤ C′ ≤ C ≤ budget−2 and
// returns the maximizer. By Eq 3 the result is always C′ = C = budget−2;
// the exhaustive search exists so tests can verify the closed form.
func BestStrategy(baseSum, cInit uint64, budget int) (cPrime, c int, score float64) {
	best := -1.0
	for cc := 0; cc <= budget-2; cc++ {
		for cp := 0; cp <= cc; cp++ {
			if s := AttackScore(baseSum, cInit, cp, cc); s > best {
				best, cPrime, c = s, cp, cc
			}
		}
	}
	return cPrime, c, best
}

// OptimalStrategy returns the closed-form optimum of Eq 3: spend every
// spare click on the target.
func OptimalStrategy(budget int) (cPrime, c int) {
	if budget < 2 {
		return 0, 0
	}
	return budget - 2, budget - 2
}
