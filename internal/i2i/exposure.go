package i2i

import "repro/internal/bipartite"

// Exposure quantifies the attack's end-to-end payoff: how much of the
// recommendation real estate next to hot items the target items captured.
// The paper's case study argues RICD "protects hundreds of thousands of
// users from incorrect recommendations"; this is the measurement behind
// that claim — slots occupied by targets × anchor traffic × CTR is the
// volume of misled clicks.
type Exposure struct {
	// Anchors is the number of anchor items evaluated.
	Anchors int
	// Slots is Anchors × k: the total recommendation slots examined.
	Slots int
	// TargetSlots is how many of those slots are held by target items.
	TargetSlots int
	// AnchorsHit is the number of anchors with ≥ 1 target in their list.
	AnchorsHit int
}

// Share returns the fraction of examined slots held by targets.
func (e Exposure) Share() float64 {
	if e.Slots == 0 {
		return 0
	}
	return float64(e.TargetSlots) / float64(e.Slots)
}

// TargetExposure computes the exposure of `targets` in the top-k
// recommendation lists of the given anchor items.
func TargetExposure(g *bipartite.Graph, anchors []bipartite.NodeID,
	targets map[bipartite.NodeID]bool, k int) Exposure {

	var e Exposure
	for _, anchor := range anchors {
		if !g.ItemAlive(anchor) {
			continue
		}
		recs := Recommend(g, anchor, k)
		e.Anchors++
		e.Slots += k
		hit := false
		for _, item := range recs {
			if targets[item] {
				e.TargetSlots++
				hit = true
			}
		}
		if hit {
			e.AnchorsHit++
		}
	}
	return e
}

// HotAnchors returns the live items with total clicks ≥ tHot — the anchor
// set whose recommendation lists an attack tries to infiltrate.
func HotAnchors(g *bipartite.Graph, tHot uint64) []bipartite.NodeID {
	var out []bipartite.NodeID
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemStrength(v) >= tHot {
			out = append(out, v)
		}
		return true
	})
	return out
}
