package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

func labelsFrom(users, items []bipartite.NodeID) *detect.Labels {
	l := detect.NewLabels()
	for _, u := range users {
		l.Users[u] = true
	}
	for _, v := range items {
		l.Items[v] = true
	}
	return l
}

func resultFrom(users, items []bipartite.NodeID) *detect.Result {
	return &detect.Result{Groups: []detect.Group{{Users: users, Items: items}}}
}

func TestEvaluateExact(t *testing.T) {
	truth := labelsFrom([]bipartite.NodeID{1, 2, 3}, []bipartite.NodeID{10})
	res := resultFrom([]bipartite.NodeID{1, 2, 4}, []bipartite.NodeID{10, 11})
	ev := Evaluate(res, truth)
	// tp = {1,2,10} = 3; output = 5; known = 4.
	if ev.TruePositives != 3 || ev.Output != 5 || ev.Known != 4 {
		t.Fatalf("counts = %+v", ev)
	}
	if !almost(ev.Precision, 0.6) || !almost(ev.Recall, 0.75) {
		t.Errorf("P=%v R=%v, want 0.6/0.75", ev.Precision, ev.Recall)
	}
	wantF1 := 2 * 0.6 * 0.75 / (0.6 + 0.75)
	if !almost(ev.F1, wantF1) {
		t.Errorf("F1 = %v, want %v", ev.F1, wantF1)
	}
}

func TestEvaluatePerSide(t *testing.T) {
	truth := labelsFrom([]bipartite.NodeID{1, 2}, []bipartite.NodeID{10, 11})
	res := resultFrom([]bipartite.NodeID{1}, []bipartite.NodeID{10, 11, 12})
	u := EvaluateUsers(res, truth)
	if !almost(u.Precision, 1.0) || !almost(u.Recall, 0.5) {
		t.Errorf("users: %v", u)
	}
	i := EvaluateItems(res, truth)
	if !almost(i.Precision, 2.0/3.0) || !almost(i.Recall, 1.0) {
		t.Errorf("items: %v", i)
	}
}

func TestEvaluateEmptyOutput(t *testing.T) {
	truth := labelsFrom([]bipartite.NodeID{1}, nil)
	ev := Evaluate(&detect.Result{}, truth)
	if ev.Precision != 0 || ev.Recall != 0 || ev.F1 != 0 {
		t.Errorf("empty output eval = %+v", ev)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	ev := Evaluate(resultFrom([]bipartite.NodeID{1}, nil), detect.NewLabels())
	if ev.Recall != 0 || ev.Precision != 0 {
		t.Errorf("empty truth eval = %+v", ev)
	}
}

func TestEvaluateDeduplicatesAcrossGroups(t *testing.T) {
	truth := labelsFrom([]bipartite.NodeID{1}, nil)
	res := &detect.Result{Groups: []detect.Group{
		{Users: []bipartite.NodeID{1}},
		{Users: []bipartite.NodeID{1}}, // same user in two groups
	}}
	ev := Evaluate(res, truth)
	if ev.Output != 1 || ev.TruePositives != 1 {
		t.Errorf("duplicate user double-counted: %+v", ev)
	}
}

func TestEvaluateNodes(t *testing.T) {
	truth := labelsFrom([]bipartite.NodeID{1}, []bipartite.NodeID{2})
	ev := EvaluateNodes([]bipartite.NodeID{1, 3}, []bipartite.NodeID{2}, truth)
	if ev.TruePositives != 2 || ev.Output != 3 || ev.Known != 2 {
		t.Errorf("EvaluateNodes = %+v", ev)
	}
}

func TestEvalString(t *testing.T) {
	ev := Eval{Precision: 0.5, Recall: 0.25, F1: 1.0 / 3, TruePositives: 1, Output: 2, Known: 4}
	s := ev.String()
	for _, want := range []string{"P=0.500", "R=0.250", "tp=1", "out=2", "known=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: precision and recall are always within [0,1], and F1 is the
// harmonic mean (or 0 when both are 0).
func TestPropertyMetricBounds(t *testing.T) {
	f := func(outIDs, truthIDs []uint16) bool {
		truth := detect.NewLabels()
		for _, id := range truthIDs {
			truth.Users[bipartite.NodeID(id)] = true
		}
		var users []bipartite.NodeID
		for _, id := range outIDs {
			users = append(users, bipartite.NodeID(id))
		}
		ev := Evaluate(resultFrom(users, nil), truth)
		if ev.Precision < 0 || ev.Precision > 1 || ev.Recall < 0 || ev.Recall > 1 {
			return false
		}
		if ev.Precision+ev.Recall == 0 {
			return ev.F1 == 0
		}
		want := 2 * ev.Precision * ev.Recall / (ev.Precision + ev.Recall)
		return math.Abs(ev.F1-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
