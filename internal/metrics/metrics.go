// Package metrics implements the paper's evaluation measures: precision
// (Eq 5), recall (Eq 6) and F1-score over suspicious-node sets, for users
// and items jointly or per side.
package metrics

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Eval holds one evaluation outcome.
type Eval struct {
	Precision float64
	Recall    float64
	F1        float64

	// TruePositives, Output and Known are the raw counts behind the
	// ratios: detected∩known, |output|, |known|.
	TruePositives int
	Output        int
	Known         int
}

// String formats the evaluation compactly.
func (e Eval) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d out=%d known=%d)",
		e.Precision, e.Recall, e.F1, e.TruePositives, e.Output, e.Known)
}

// Evaluate scores a detection result against ground truth over the union of
// user and item nodes, the way the paper's Eq 5–6 count "abnormal nodes".
func Evaluate(res *detect.Result, truth *detect.Labels) Eval {
	tp := 0
	out := 0
	for _, u := range res.Users() {
		out++
		if truth.Users[u] {
			tp++
		}
	}
	for _, v := range res.Items() {
		out++
		if truth.Items[v] {
			tp++
		}
	}
	return newEval(tp, out, truth.NumAbnormal())
}

// EvaluateUsers scores only the user side.
func EvaluateUsers(res *detect.Result, truth *detect.Labels) Eval {
	tp := 0
	users := res.Users()
	for _, u := range users {
		if truth.Users[u] {
			tp++
		}
	}
	return newEval(tp, len(users), len(truth.Users))
}

// EvaluateItems scores only the item side.
func EvaluateItems(res *detect.Result, truth *detect.Labels) Eval {
	tp := 0
	items := res.Items()
	for _, v := range items {
		if truth.Items[v] {
			tp++
		}
	}
	return newEval(tp, len(items), len(truth.Items))
}

// EvaluateNodes scores arbitrary node lists (used by rankers' top-k cuts).
func EvaluateNodes(users, items []bipartite.NodeID, truth *detect.Labels) Eval {
	tp := 0
	for _, u := range users {
		if truth.Users[u] {
			tp++
		}
	}
	for _, v := range items {
		if truth.Items[v] {
			tp++
		}
	}
	return newEval(tp, len(users)+len(items), truth.NumAbnormal())
}

func newEval(tp, out, known int) Eval {
	e := Eval{TruePositives: tp, Output: out, Known: known}
	if out > 0 {
		e.Precision = float64(tp) / float64(out)
	}
	if known > 0 {
		e.Recall = float64(tp) / float64(known)
	}
	if e.Precision+e.Recall > 0 {
		e.F1 = 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
	}
	return e
}
