// Package faultinject is a test-only fault hook for the detection
// pipeline. Production code marks interruption/recovery checkpoints with
// Hit(site); tests arm faults (panics, delays, arbitrary callbacks such as
// a context cancel) at named sites to prove every stage is cancellable and
// panic-isolated.
//
// The package follows the same zero-cost-when-disabled discipline as
// internal/obs: when no fault plan is armed — the default everywhere — a
// Hit is a single atomic load and an immediate return, with no locks and
// no allocations. Production code never arms faults; only tests do.
//
// Typical test wiring:
//
//	defer faultinject.Reset()
//	faultinject.Arm("core.prune.round", faultinject.Fault{Do: cancel})
//	res, err := det.DetectContext(ctx, g) // cancelled at the first round
//	if faultinject.HitCount("core.prune.round") == 0 { t.Fatal("site not reached") }
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault is what happens when an armed site is hit. Fields compose; they are
// applied in order Do → Delay → Panic (Err is returned last, and only by
// ErrAt — plain Hit sites cannot surface errors).
type Fault struct {
	// Do, when non-nil, runs at the site — typically a context.CancelFunc
	// to force cancellation exactly at that checkpoint.
	Do func()
	// Delay, when positive, sleeps at the site, simulating a stalled stage.
	Delay time.Duration
	// Panic, when non-nil, panics with this value, simulating a stage bug.
	Panic any
	// Err, when non-nil, is returned by ErrAt at the site, simulating an
	// I/O failure (disk write, fsync, rename). Sites probed with plain Hit
	// ignore it.
	Err error
	// Times bounds how often the fault fires; 0 means every hit.
	Times int
}

// active is nonzero while a plan is armed; the fast path of Hit loads only
// this.
var active atomic.Int32

var (
	mu     sync.Mutex
	faults map[string]*armed
	hits   map[string]int
)

type armed struct {
	fault Fault
	fired int
}

// Arm installs a fault at a named site. Arming any site switches the
// package into active mode, in which every Hit is also counted (see
// HitCount). Tests must Reset when done.
func Arm(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = map[string]*armed{}
		hits = map[string]int{}
	}
	faults[site] = &armed{fault: f}
	active.Store(1)
}

// Record switches the package into active mode without arming any fault,
// so tests can enumerate which sites a run passes through via HitCount.
func Record() {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = map[string]*armed{}
		hits = map[string]int{}
	}
	active.Store(1)
}

// Reset disarms all faults, clears hit counts and returns the package to
// the zero-cost inactive mode.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = nil
	hits = nil
	active.Store(0)
}

// HitCount returns how many times a site was hit while the package was
// active (always 0 in inactive mode).
func HitCount(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Sites returns the names of all sites hit while active.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(hits))
	for s := range hits {
		out = append(out, s)
	}
	return out
}

// Hit marks a named pipeline checkpoint. Inactive (the production default)
// it is a single atomic load. Active, it counts the hit and applies any
// armed fault — which may sleep, run a callback, or panic (the panic
// propagates to the caller's recovery layer, exactly like a stage bug).
func Hit(site string) {
	if active.Load() == 0 {
		return
	}
	hit(site)
}

// ErrAt marks a fallible I/O checkpoint (disk write, fsync, rename). Like
// Hit it is a single atomic load when inactive, and it additionally returns
// the armed fault's Err so the caller's error path runs exactly as it would
// on a real I/O failure. A nil return means "the I/O may proceed".
func ErrAt(site string) error {
	if active.Load() == 0 {
		return nil
	}
	return hit(site)
}

func hit(site string) error {
	mu.Lock()
	hits[site]++
	a := faults[site]
	if a == nil || (a.fault.Times > 0 && a.fired >= a.fault.Times) {
		mu.Unlock()
		return nil
	}
	a.fired++
	f := a.fault
	mu.Unlock()

	if f.Do != nil {
		f.Do()
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}
