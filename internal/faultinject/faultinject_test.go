package faultinject

import (
	"testing"
	"time"
)

func TestInactiveIsNoOp(t *testing.T) {
	Reset()
	Hit("anything") // must not panic, count, or block
	if n := HitCount("anything"); n != 0 {
		t.Fatalf("inactive HitCount = %d, want 0", n)
	}
}

func TestRecordCountsHits(t *testing.T) {
	defer Reset()
	Record()
	Hit("a")
	Hit("a")
	Hit("b")
	if n := HitCount("a"); n != 2 {
		t.Fatalf("HitCount(a) = %d, want 2", n)
	}
	if n := HitCount("b"); n != 1 {
		t.Fatalf("HitCount(b) = %d, want 1", n)
	}
	if got := len(Sites()); got != 2 {
		t.Fatalf("Sites() has %d entries, want 2", got)
	}
}

func TestArmPanic(t *testing.T) {
	defer Reset()
	Arm("boom", Fault{Panic: "injected"})
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recovered %v, want \"injected\"", r)
		}
	}()
	Hit("boom")
	t.Fatal("Hit did not panic")
}

func TestArmDoAndTimes(t *testing.T) {
	defer Reset()
	calls := 0
	Arm("once", Fault{Do: func() { calls++ }, Times: 1})
	Hit("once")
	Hit("once")
	if calls != 1 {
		t.Fatalf("Do ran %d times, want 1 (Times bound)", calls)
	}
	if n := HitCount("once"); n != 2 {
		t.Fatalf("HitCount = %d, want 2 (hits count even when the fault is spent)", n)
	}
}

func TestArmDelay(t *testing.T) {
	defer Reset()
	Arm("slow", Fault{Delay: 10 * time.Millisecond})
	start := time.Now()
	Hit("slow")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Hit returned after %v, want ≥ 10ms", d)
	}
}

func TestResetDisarms(t *testing.T) {
	Arm("boom", Fault{Panic: "injected"})
	Reset()
	Hit("boom") // must not panic
	if n := HitCount("boom"); n != 0 {
		t.Fatalf("HitCount after Reset = %d, want 0", n)
	}
}
