package riskcontrol

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestRulesValidate(t *testing.T) {
	if err := DefaultRules().Validate(); err != nil {
		t.Fatalf("default rules invalid: %v", err)
	}
	if err := (Rules{}).Validate(); err == nil {
		t.Error("all-disabled rules accepted")
	}
	if err := (Rules{MaxItemShare: 1.5}).Validate(); err == nil {
		t.Error("share > 1 accepted")
	}
}

func TestPairClickRule(t *testing.T) {
	b := bipartite.NewBuilder(3, 3)
	b.Add(0, 0, 60) // excessive
	b.Add(1, 1, 10) // fine
	g := b.Build()
	d := &Detector{Rules: Rules{MaxPairClicks: 50}}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	users := res.Users()
	if len(users) != 1 || users[0] != 0 {
		t.Errorf("flagged users = %v, want [0]", users)
	}
	items := res.Items()
	if len(items) != 1 || items[0] != 0 {
		t.Errorf("flagged items = %v, want [0]", items)
	}
}

func TestUserVolumeRule(t *testing.T) {
	b := bipartite.NewBuilder(2, 40)
	for v := bipartite.NodeID(0); v < 40; v++ {
		b.Add(0, v, 20) // 800 total: bot-like
		b.Add(1, v, 2)  // 80 total: fine
	}
	g := b.Build()
	d := &Detector{Rules: Rules{MaxUserClicks: 600}}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	users := res.Users()
	if len(users) != 1 || users[0] != 0 {
		t.Errorf("flagged users = %v, want [0]", users)
	}
}

func TestItemShareRule(t *testing.T) {
	b := bipartite.NewBuilder(3, 1)
	b.Add(0, 0, 45) // 45 of 60 = 75% share
	b.Add(1, 0, 10)
	b.Add(2, 0, 5)
	g := b.Build()
	d := &Detector{Rules: Rules{MaxItemShare: 0.4}}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users()) != 1 || res.Users()[0] != 0 {
		t.Errorf("flagged users = %v, want [0]", res.Users())
	}
}

func TestItemShareRuleIgnoresSoleClicker(t *testing.T) {
	// A brand-new item with a single organic clicker trivially has 100%
	// share; the rule must not flag it.
	b := bipartite.NewBuilder(1, 1)
	b.Add(0, 0, 3)
	d := &Detector{Rules: Rules{MaxItemShare: 0.4}}
	res, err := d.Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumNodes() != 0 {
		t.Errorf("sole clicker flagged: %v", res.Users())
	}
}

// TestBudgetedAttackEvadesRules is the package's reason to exist: the
// paper's crowd workers calibrate their click budget against exactly these
// rules, so the injected attack must slip under them almost entirely.
func TestBudgetedAttackEvadesRules(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Rules: DefaultRules()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("risk control vs attack: %v", ev)
	if ev.Recall > 0.10 {
		t.Errorf("rules caught %.0f%% of the budgeted attack; the attack model "+
			"is supposed to evade them", 100*ev.Recall)
	}
}

func TestWouldFlag(t *testing.T) {
	b := bipartite.NewBuilder(2, 2)
	b.Add(0, 0, 30)
	g := b.Build()
	d := &Detector{Rules: Rules{MaxPairClicks: 50}}
	if d.WouldFlag(g, 0, 0, 10) {
		t.Error("30+10 < 50 should not flag")
	}
	if !d.WouldFlag(g, 0, 0, 25) {
		t.Error("30+25 ≥ 50 should flag")
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if (&Detector{}).Name() != "RiskControl" {
		t.Error("bad name")
	}
}

func TestInvalidRulesRejected(t *testing.T) {
	d := &Detector{}
	if _, err := d.Detect(bipartite.NewGraph(1, 1)); err == nil {
		t.Error("expected validation error")
	}
}
