// Package riskcontrol implements the platform rule-based risk-control layer
// the paper's attack analysis presumes: "the risk control system can easily
// detect excessive clicks on an item from a user" (Section IV-A). The rules
// flag per-edge and per-account excess — precisely the tripwires that force
// crowd workers to adopt a click budget C_b, and precisely what a budgeted,
// camouflaged attack slips under. It doubles as a baseline detector
// demonstrating why simple rules cannot catch the "Ride Item's Coattails"
// attack.
package riskcontrol

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Rules are the thresholds of the rule engine. Zero-valued rules are
// disabled.
type Rules struct {
	// MaxPairClicks flags any user with ≥ this many clicks on a single
	// item (the "excessive clicks" rule).
	MaxPairClicks uint32
	// MaxUserClicks flags accounts whose total clicks exceed this bound
	// (bot-like volume).
	MaxUserClicks uint64
	// MaxItemShare flags items where a single account contributed more
	// than this fraction of the item's clicks (0 < share ≤ 1).
	MaxItemShare float64
}

// DefaultRules models a production-ish configuration: no single edge above
// 50 clicks, no account above 600 clicks, no account owning more than 40%
// of an item's traffic.
func DefaultRules() Rules {
	return Rules{MaxPairClicks: 50, MaxUserClicks: 600, MaxItemShare: 0.4}
}

// Validate reports nonsensical configurations.
func (r Rules) Validate() error {
	if r.MaxPairClicks == 0 && r.MaxUserClicks == 0 && r.MaxItemShare == 0 {
		return fmt.Errorf("riskcontrol: all rules disabled")
	}
	if r.MaxItemShare < 0 || r.MaxItemShare > 1 {
		return fmt.Errorf("riskcontrol: MaxItemShare must be in [0,1], got %v", r.MaxItemShare)
	}
	return nil
}

// Detector applies the rules as a detect.Detector, flagging rule-breaking
// users and the items they hammered.
type Detector struct {
	Rules Rules
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "RiskControl" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if err := d.Rules.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	r := d.Rules

	userFlag := map[bipartite.NodeID]bool{}
	itemFlag := map[bipartite.NodeID]bool{}

	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if r.MaxUserClicks > 0 && g.UserStrength(u) >= r.MaxUserClicks {
			userFlag[u] = true
		}
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if r.MaxPairClicks > 0 && w >= r.MaxPairClicks {
				userFlag[u] = true
				itemFlag[v] = true
			}
			if r.MaxItemShare > 0 {
				if total := g.ItemStrength(v); total > 0 &&
					float64(w) >= r.MaxItemShare*float64(total) && total > uint64(w) {
					userFlag[u] = true
					itemFlag[v] = true
				}
			}
			return true
		})
		return true
	})

	res := &detect.Result{Elapsed: time.Since(start)}
	res.DetectElapsed = res.Elapsed
	if len(userFlag) > 0 || len(itemFlag) > 0 {
		grp := detect.Group{}
		for u := range userFlag {
			grp.Users = append(grp.Users, u)
		}
		for v := range itemFlag {
			grp.Items = append(grp.Items, v)
		}
		sortIDs(grp.Users)
		sortIDs(grp.Items)
		res.Groups = []detect.Group{grp}
	}
	return res, nil
}

func sortIDs(ids []bipartite.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// WouldFlag reports whether a hypothetical extra click burst (user clicking
// item `clicks` times on top of existing traffic) trips any rule — the
// check a careful crowd worker performs when choosing a click budget.
func (d *Detector) WouldFlag(g *bipartite.Graph, user, item bipartite.NodeID, clicks uint32) bool {
	r := d.Rules
	newPair := g.Weight(user, item) + clicks
	if r.MaxPairClicks > 0 && newPair >= r.MaxPairClicks {
		return true
	}
	if r.MaxUserClicks > 0 && g.UserStrength(user)+uint64(clicks) >= r.MaxUserClicks {
		return true
	}
	if r.MaxItemShare > 0 {
		total := g.ItemStrength(item) + uint64(clicks)
		if total > 0 && float64(newPair) >= r.MaxItemShare*float64(total) && total > uint64(newPair) {
			return true
		}
	}
	return false
}
