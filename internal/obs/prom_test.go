package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheus renders a small registry and checks the exposition
// line by line: TYPE comments, sanitized names, cumulative seconds-labeled
// buckets ending at +Inf, and a seconds-valued sum.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ricd.detections").Add(3)
	r.Gauge("stream.dirty_users").Set(17)
	h := r.Histogram("core.prune")
	h.Observe(5 * time.Microsecond)   // bucket 10µs
	h.Observe(500 * time.Microsecond) // bucket 1ms
	h.Observe(2 * time.Second)        // bucket 10s
	h.Observe(time.Minute)            // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, "ricd", r); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE ricd_ricd_detections counter\nricd_ricd_detections 3\n",
		"# TYPE ricd_stream_dirty_users gauge\nricd_stream_dirty_users 17\n",
		"# TYPE ricd_core_prune histogram\n",
		`ricd_core_prune_bucket{le="1e-05"} 1` + "\n",
		`ricd_core_prune_bucket{le="0.001"} 2` + "\n",
		`ricd_core_prune_bucket{le="10"} 3` + "\n",
		`ricd_core_prune_bucket{le="+Inf"} 4` + "\n",
		"ricd_core_prune_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative (monotonically nondecreasing) and the sum
	// seconds-valued: 5µs+500µs+2s+60s ≈ 62.0005s.
	var prevCum int64 = -1
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ricd_core_prune_bucket{") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prevCum {
				t.Errorf("buckets not cumulative at %q", line)
			}
			prevCum = v
		}
		if strings.HasPrefix(line, "ricd_core_prune_sum ") {
			var err error
			sum, err = strconv.ParseFloat(strings.TrimPrefix(line, "ricd_core_prune_sum "), 64)
			if err != nil {
				t.Fatalf("sum line %q: %v", line, err)
			}
		}
	}
	if sum < 62.0 || sum > 62.001 {
		t.Errorf("histogram sum = %v, want ≈62.0005 seconds", sum)
	}

	// Every sample line must be well-formed: name{labels} value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') ||
				(c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && j > 0)
			if !ok {
				t.Errorf("invalid metric name %q", name)
				break
			}
		}
	}
}

// TestSecondsLabels pins every default bucket's label: ASCII, float
// parseable, strictly increasing.
func TestSecondsLabels(t *testing.T) {
	want := []string{"1e-05", "0.0001", "0.001", "0.01", "0.1", "1", "10"}
	prev := 0.0
	for i, d := range DefaultBuckets {
		got := secondsLabel(d)
		if got != want[i] {
			t.Errorf("bucket %v label = %q, want %q", d, got, want[i])
		}
		v, err := strconv.ParseFloat(got, 64)
		if err != nil {
			t.Errorf("label %q not a float: %v", got, err)
		}
		if v <= prev {
			t.Errorf("labels not increasing at %q", got)
		}
		prev = v
		for j := 0; j < len(got); j++ {
			if got[j] >= 0x80 {
				t.Errorf("label %q is not ASCII", got)
			}
		}
	}
}

// TestPromName covers sanitization corner cases.
func TestPromName(t *testing.T) {
	cases := map[[2]string]string{
		{"ricd", "core.prune.rounds"}: "ricd_core_prune_rounds",
		{"", "a-b c"}:                 "a_b_c",
		{"", "9lives"}:                "_lives",
		{"ns", "0k"}:                  "ns_0k", // digit is valid after the prefix
	}
	for in, want := range cases {
		if got := promName(in[0], in[1]); got != want {
			t.Errorf("promName(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}

// TestMetricsAndRunsHandlers smoke-tests the two debug endpoints.
func TestMetricsAndRunsHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("ricd.detections").Inc()
	rec := httptest.NewRecorder()
	MetricsHandler("ricd", r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ricd_ricd_detections 1") {
		t.Errorf("metrics body missing counter:\n%s", rec.Body.String())
	}

	l := NewLedger(4)
	l.Record(RunSummary{Root: "ricd.detect", Groups: 2})
	rec = httptest.NewRecorder()
	RunsHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runs", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `"root": "ricd.detect"`) || !strings.Contains(body, `"groups": 2`) {
		t.Errorf("runs body missing summary:\n%s", body)
	}

	// An empty ledger serves [] (valid JSON), not null.
	rec = httptest.NewRecorder()
	RunsHandler(NewLedger(1)).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runs", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Errorf("empty ledger served %q, want []", got)
	}
}
