// Package obs is the dependency-free observability core of the RICD
// pipeline: a metrics registry of atomic counters, gauges and fixed-bucket
// latency histograms, a stage tracer that records the pipeline's nested
// phase structure (the detection/screening split of the paper's Fig 8b,
// pruning rounds, engine supersteps, stream sweeps) as spans with
// durations and key=value attributes, a structured audit-event sink
// (EventSink) that captures the per-decision trail an analyst reviews —
// which vertex was pruned under which bound, which behavior check dropped
// a user, how the feedback loop widened the parameters — and a bounded
// run ledger (Ledger) of recent run summaries. A hand-rolled Prometheus
// text exposition of the registry lives in prom.go.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Trace, *Span,
// *Counter, *Gauge, *Histogram, *EventSink or *Ledger is a valid no-op
// receiver. Instrumented hot paths therefore cost a nil check — no
// branches on a feature flag, no allocations — when observability is
// disabled, which is the default everywhere.
//
// Typical wiring:
//
//	o := obs.NewObserver("ricd")
//	det := &core.Detector{Params: p, Obs: o}
//	res, _ := det.Detect(g)
//	o.Trace.Finish()
//	fmt.Print(o.Trace.Tree())      // human-readable stage tree
//	data, _ := o.Trace.JSON()      // machine-readable trace
//	for _, s := range o.Metrics.Snapshot() { ... }
package obs

// Observer bundles the per-run stage trace with a metrics registry. It is
// the single hook detectors and commands share; a nil *Observer disables
// all instrumentation.
type Observer struct {
	// Trace is the stage trace of the run; spans nest under Trace.Root().
	Trace *Trace
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Events, when non-nil, receives the structured audit trail: one
	// Event per pipeline decision (prune removals, screening drops,
	// feedback widenings, group verdicts). Nil disables auditing at no
	// cost — the pipeline never even builds the event structs.
	Events *EventSink
	// Ledger, when non-nil, records one RunSummary per pipeline run for
	// the /debug/runs endpoint and the CLIs' -runs flag.
	Ledger *Ledger
}

// NewObserver returns an Observer with a fresh trace (rooted at rootName)
// and an empty registry.
func NewObserver(rootName string) *Observer {
	return &Observer{Trace: NewTrace(rootName), Metrics: NewRegistry()}
}

// Root returns the root span of the observer's trace, or nil.
func (o *Observer) Root() *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Root()
}

// Counter returns the named counter, or a nil no-op when o is nil.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or a nil no-op when o is nil.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named latency histogram, or a nil no-op.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Sink returns the audit-event sink, or a nil no-op.
func (o *Observer) Sink() *EventSink {
	if o == nil {
		return nil
	}
	return o.Events
}

// RunLedger returns the run ledger, or a nil no-op.
func (o *Observer) RunLedger() *Ledger {
	if o == nil {
		return nil
	}
	return o.Ledger
}
