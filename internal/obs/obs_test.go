package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; run with -race to verify the atomics.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent hammers a histogram across all buckets and
// checks the bucket totals survive concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	durations := []time.Duration{
		time.Microsecond,       // le.1e-05 (10µs bound)
		50 * time.Microsecond,  // le.0.0001
		500 * time.Microsecond, // le.0.001
		5 * time.Millisecond,   // le.0.01
		2 * time.Second,        // le.10
		time.Minute,            // le.inf (overflow)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("lat")
			for _, d := range durations {
				h.Observe(d)
			}
		}()
	}
	wg.Wait()

	h := r.Histogram("lat")
	if got, want := h.Count(), int64(workers*len(durations)); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	// Bucket labels are seconds-valued numbers (ASCII, Prometheus-parseable),
	// not Duration strings like "10µs".
	m := r.Map()
	for _, bucket := range []string{"lat.le.1e-05", "lat.le.0.0001", "lat.le.0.001", "lat.le.0.01", "lat.le.10", "lat.le.inf"} {
		if m[bucket] != workers {
			t.Errorf("%s = %d, want %d", bucket, m[bucket], workers)
		}
	}
	if m["lat.le.0.1"] != 0 || m["lat.le.1"] != 0 {
		t.Errorf("empty buckets populated: %v", m)
	}
}

// TestSnapshotSorted checks Snapshot returns samples in name order.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Add(1)
	r.Gauge("mid").Set(2)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	want := map[string]int64{"alpha": 1, "mid": 2, "zeta": 3}
	got := map[string]int64{}
	for _, s := range snap {
		got[s.Name] = s.Value
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot = %v, want %v", got, want)
	}
}

// TestSpanNestingOrder checks children appear under the right parents in
// creation order.
func TestSpanNestingOrder(t *testing.T) {
	tr := NewTrace("run")
	a := tr.Root().Start("a")
	a1 := a.Start("a1")
	a1.End()
	a2 := a.Start("a2")
	a2.End()
	a.End()
	b := tr.Root().Start("b")
	b.End()
	tr.Finish()

	e := tr.Export()
	if e.Name != "run" || len(e.Children) != 2 {
		t.Fatalf("root = %q with %d children, want run/2", e.Name, len(e.Children))
	}
	if e.Children[0].Name != "a" || e.Children[1].Name != "b" {
		t.Errorf("root children = %q,%q, want a,b", e.Children[0].Name, e.Children[1].Name)
	}
	ca := e.Children[0]
	if len(ca.Children) != 2 || ca.Children[0].Name != "a1" || ca.Children[1].Name != "a2" {
		t.Errorf("a's children wrong: %+v", ca.Children)
	}
	if got := e.SpanNames(); !reflect.DeepEqual(got, []string{"a", "a1", "a2", "b", "run"}) {
		t.Errorf("SpanNames = %v", got)
	}
}

// TestTraceJSONRoundTrip exports a trace with attributes, parses it back,
// and requires structural equality.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace("detect")
	sp := tr.Root().Start("prune")
	sp.SetInt("rounds", 3)
	sp.SetFloat("alpha", 0.9)
	sp.SetDuration("budget", 150*time.Millisecond)
	sp.Set("mode", "fixpoint")
	sp.End()
	tr.Finish()

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("invalid JSON: %s", data)
	}
	parsed, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, tr.Export()) {
		t.Errorf("round trip mismatch:\nparsed  %+v\nexport  %+v", parsed, tr.Export())
	}
	p := parsed.Find("prune")
	if p == nil {
		t.Fatal("prune span lost in round trip")
	}
	want := []Attr{{"rounds", "3"}, {"alpha", "0.900"}, {"budget", "150ms"}, {"mode", "fixpoint"}}
	if !reflect.DeepEqual(p.Attrs, want) {
		t.Errorf("attrs = %v, want %v", p.Attrs, want)
	}
}

// TestTreeRendering smoke-tests the human-readable output.
func TestTreeRendering(t *testing.T) {
	tr := NewTrace("run")
	s := tr.Root().Start("stage")
	s.SetInt("n", 7)
	s.End()
	tr.Finish()
	out := tr.Tree()
	for _, want := range []string{"run", "stage", "n=7"} {
		if !containsLine(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestNoopZeroAlloc verifies the disabled (nil) path allocates nothing:
// the acceptance bar for leaving instrumentation in hot loops.
func TestNoopZeroAlloc(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		sp := o.Root().Start("stage")
		sp.SetInt("n", 1)
		sp.Set("k", "v")
		sp.End()
		o.Counter("c").Add(5)
		o.Gauge("g").Set(9)
		o.Histogram("h").Observe(time.Millisecond)
		var r *Registry
		r.Counter("x").Inc()
		var tr *Trace
		tr.Root().Start("y").End()
		tr.Finish()
		o.Sink().Emit(Event{Type: EventPruneRemove, Side: "user", ID: 3})
		var s *EventSink
		s.Emit(Event{Type: EventScreenDrop})
		var l *Ledger
		l.Record(RunSummary{Root: "ricd.detect"})
	})
	if allocs != 0 {
		t.Errorf("nil observer path allocates %.1f per run, want 0", allocs)
	}
}

// TestNilSafety exercises every nil receiver for panics and zero values.
func TestNilSafety(t *testing.T) {
	var (
		o  *Observer
		r  *Registry
		tr *Trace
		sp *Span
		c  *Counter
		g  *Gauge
		h  *Histogram
	)
	if o.Root() != nil || o.Counter("x") != nil || o.Gauge("x") != nil || o.Histogram("x") != nil {
		t.Error("nil observer must hand out nil instruments")
	}
	if r.Counter("x") != nil || r.Map() != nil || r.Counters() != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	if o.Sink() != nil || o.RunLedger() != nil {
		t.Error("nil observer must hand out nil sink/ledger")
	}
	var es *EventSink
	es.Emit(Event{Type: EventRunStart})
	if es.Seq() != 0 || es.Events() != nil || es.Err() != nil {
		t.Error("nil event sink must be inert")
	}
	var lg *Ledger
	lg.Record(RunSummary{})
	if lg.Len() != 0 || lg.Runs() != nil {
		t.Error("nil ledger must be inert")
	}
	if tr.Root() != nil || tr.Export() != nil || tr.Tree() != "" {
		t.Error("nil trace must export nothing")
	}
	if data, err := tr.JSON(); err != nil || string(data) != "null" {
		t.Errorf("nil trace JSON = %s, %v", data, err)
	}
	if sp.Start("x") != nil || sp.Name() != "" || sp.Duration() != 0 || sp.Export() != nil {
		t.Error("nil span must be inert")
	}
	sp.End()
	sp.Set("k", "v")
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
}

// TestConcurrentSpanChildren attaches children to one parent from many
// goroutines (the engine does this per worker); run with -race.
func TestConcurrentSpanChildren(t *testing.T) {
	tr := NewTrace("run")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := tr.Root().Start("child")
			s.SetInt("i", 1)
			s.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Export().Children); got != n {
		t.Errorf("children = %d, want %d", got, n)
	}
}

// TestCoveredDuration checks the trace-coverage helper used by the
// acceptance test.
func TestCoveredDuration(t *testing.T) {
	e := &SpanExport{
		Name:       "run",
		DurationNS: 100,
		Children: []*SpanExport{
			{Name: "a", DurationNS: 60},
			{Name: "b", DurationNS: 35},
		},
	}
	if got := e.CoveredDuration(); got != 95 {
		t.Errorf("covered = %d, want 95", got)
	}
}
