package obs

import (
	"io"
	"strconv"
	"sync"
)

// Audit event types. Each names one kind of pipeline decision; DESIGN.md
// §11 maps them to the paper's modules.
const (
	// EventRunStart / EventRunEnd bracket one detection run.
	EventRunStart = "run.start"
	EventRunEnd   = "run.end"
	// EventPruneRemove is one vertex removal during Algorithm 3 pruning;
	// Reason distinguishes the core degree bound from the square
	// (α,k)-neighbor bound, Stat carries the violated inequality.
	EventPruneRemove = "prune.remove"
	// EventScreenDrop is one user/item screened out of a candidate group;
	// Reason names the failed behavior check, Stat the failing statistic.
	EventScreenDrop = "screen.drop"
	// EventGroupVerdict is one final group with its risk score and the
	// forensic evidence (density, mean edge clicks, organic share).
	EventGroupVerdict = "group.verdict"
	// EventFeedbackWiden is one parameter relaxed by the feedback loop;
	// Reason names the knob, Old/New its values.
	EventFeedbackWiden = "feedback.widen"
	// EventShardDone marks one component shard's pruning boundary.
	EventShardDone = "shard.done"
	// EventSweepStart / EventSweepCommit / EventSweepAbort bracket one
	// incremental stream sweep.
	EventSweepStart  = "sweep.start"
	EventSweepCommit = "sweep.commit"
	EventSweepAbort  = "sweep.abort"
	// EventSweepRetry is one watchdog-driven sweep retry after a failure;
	// Round is the attempt number, Stat the backoff applied.
	EventSweepRetry = "sweep.retry"
	// EventWALRecover summarizes a crash recovery: Reason is "snapshot" or
	// "cold", Stat carries the replayed-record and truncated-byte counts.
	EventWALRecover = "wal.recover"
	// EventWALDegraded marks the detector falling back to memory-only
	// operation after a WAL write failure; Reason carries the error.
	EventWALDegraded = "wal.degraded"
	// EventSnapshotWrite is one durable state snapshot; Stat carries the
	// clock and payload size, Reason is "error: ..." when the write failed.
	EventSnapshotWrite = "snapshot.write"
	// EventIngestShed is one pending-click drop by the overload buffer;
	// Reason names the shed policy that fired.
	EventIngestShed = "ingest.shed"
	// EventIndexSwap is one atomic verdict-index publication by the serving
	// layer: Round carries the new epoch, Groups/Users/Items the index
	// contents, Reason is "partial" when the source report was cut short.
	EventIndexSwap = "serve.swap"
	// EventIndexSwapFail marks a failed publication (the previous epoch
	// keeps serving); Reason carries the error.
	EventIndexSwapFail = "serve.swap_fail"
)

// Event is one structured audit-trail record: a single pipeline decision
// with the inputs that produced it. Unused fields are omitted from the
// JSONL encoding; ID is emitted only when Side is set (node ID 0 is a real
// dense ID, so presence is keyed on Side rather than on the value).
type Event struct {
	// Seq is the sink-assigned emission sequence number, starting at 1.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// Side ("user"/"item") and ID identify the node a removal or drop is
	// about, always in the original graph's ID space.
	Side string `json:"side,omitempty"`
	ID   uint32 `json:"id"`
	// Round is the pruning/feedback round the decision happened in.
	Round int `json:"round,omitempty"`
	// Shard is the 1-based component shard (0 = unsharded).
	Shard int `json:"shard,omitempty"`
	// Group is the 1-based candidate (screen.drop) or final (group.verdict)
	// group index.
	Group  int `json:"group,omitempty"`
	Users  int `json:"users,omitempty"`
	Items  int `json:"items,omitempty"`
	Groups int `json:"groups,omitempty"`
	// Reason is the typed cause (e.g. "core.degree", "user.no_attack_edge",
	// "t_click"); Stat is the human-auditable failing statistic.
	Reason string `json:"reason,omitempty"`
	Stat   string `json:"stat,omitempty"`
	// Old and New carry a feedback widening's parameter change.
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
	// Score is a group verdict's risk score (always emitted for verdicts).
	Score float64 `json:"score,omitempty"`
}

// appendJSON renders the event as a single JSON object. Hand-rolled so
// zero-valued fields are dropped with the field-presence rules above
// (encoding/json's omitempty would also drop a legitimate ID 0); the
// output is plain encoding/json-compatible, which is what tests and
// downstream tooling parse it with.
func (e *Event) appendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = appendStringField(b, "type", e.Type)
	if e.Side != "" {
		b = appendStringField(b, "side", e.Side)
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, uint64(e.ID), 10)
	}
	b = appendIntField(b, "round", e.Round)
	b = appendIntField(b, "shard", e.Shard)
	b = appendIntField(b, "group", e.Group)
	b = appendIntField(b, "users", e.Users)
	b = appendIntField(b, "items", e.Items)
	b = appendIntField(b, "groups", e.Groups)
	if e.Reason != "" {
		b = appendStringField(b, "reason", e.Reason)
	}
	if e.Stat != "" {
		b = appendStringField(b, "stat", e.Stat)
	}
	if e.Old != "" {
		b = appendStringField(b, "old", e.Old)
	}
	if e.New != "" {
		b = appendStringField(b, "new", e.New)
	}
	if e.Score != 0 || e.Type == EventGroupVerdict {
		b = append(b, `,"score":`...)
		b = strconv.AppendFloat(b, e.Score, 'g', -1, 64)
	}
	return append(b, '}')
}

func appendIntField(b []byte, key string, v int) []byte {
	if v == 0 {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendStringField(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendJSONString(b, v)
}

// appendJSONString appends v as a JSON string literal, escaping the
// characters JSON requires (quotes, backslashes, control bytes). Event
// fields are ASCII identifiers and formatted statistics, so the fast path
// is a straight copy.
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// EventSink receives the structured audit trail of a detection run. It
// writes each event as one JSONL line to an optional io.Writer and retains
// the last ring events in memory. The nil *EventSink is a no-op, mirroring
// the registry's nil-safe instruments, so audit calls can stay in place at
// no cost when auditing is off.
//
// Emit is safe for concurrent use from any number of goroutines (sharded
// prune workers, parallel screeners, the stream ingester): the sequence
// number is assigned and the full line written under one mutex hold with a
// single Write call, so lines are never torn or interleaved and Seq is
// contiguous from 1.
type EventSink struct {
	mu      sync.Mutex
	w       io.Writer
	seq     uint64
	buf     []byte
	ring    []Event
	next    int
	wrapped bool
	err     error
}

// NewEventSink returns a sink writing JSONL to w (nil disables writing)
// and retaining the most recent ring events in memory (≤ 0 disables
// retention). At least one of the two should be wanted, but a sink with
// neither is still valid and merely counts.
func NewEventSink(w io.Writer, ring int) *EventSink {
	s := &EventSink{w: w}
	if ring > 0 {
		s.ring = make([]Event, ring)
	}
	return s
}

// Emit records one event: assigns its sequence number, appends it to the
// ring, and writes its JSONL line. The first write error is latched (see
// Err) and subsequent writes are skipped; ring retention continues.
func (s *EventSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seq++
	e.Seq = s.seq
	if s.ring != nil {
		s.ring[s.next] = e
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
			s.wrapped = true
		}
	}
	if s.w != nil && s.err == nil {
		s.buf = e.appendJSON(s.buf[:0])
		s.buf = append(s.buf, '\n')
		if _, err := s.w.Write(s.buf); err != nil {
			s.err = err
		}
	}
	s.mu.Unlock()
}

// Seq returns the number of events emitted so far (0 for nil).
func (s *EventSink) Seq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Events returns a copy of the retained ring, oldest first (nil when
// retention is off or the sink is nil).
func (s *EventSink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return nil
	}
	var out []Event
	if s.wrapped {
		out = append(out, s.ring[s.next:]...)
	}
	return append(out, s.ring[:s.next]...)
}

// Err returns the first write error encountered, if any (nil for nil).
func (s *EventSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
