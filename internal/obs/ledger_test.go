package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestLedgerBounded fills a small ledger past capacity and checks the ring
// keeps only the newest entries, oldest first, with monotone run numbers.
func TestLedgerBounded(t *testing.T) {
	l := NewLedger(3)
	for i := 0; i < 5; i++ {
		l.Record(RunSummary{Root: "ricd.detect", Groups: i})
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
	runs := l.Runs()
	if len(runs) != 3 {
		t.Fatalf("retained %d runs, want 3", len(runs))
	}
	for i, rs := range runs {
		if want := int64(i + 3); rs.Seq != want {
			t.Errorf("runs[%d].Seq = %d, want %d", i, rs.Seq, want)
		}
		if want := i + 2; rs.Groups != want {
			t.Errorf("runs[%d].Groups = %d, want %d", i, rs.Groups, want)
		}
	}

	data, err := l.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []RunSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("ledger JSON invalid: %v", err)
	}
	if len(back) != 3 {
		t.Errorf("JSON holds %d runs, want 3", len(back))
	}
}

// TestStagesOf converts a span tree into the ledger's stage timings.
func TestStagesOf(t *testing.T) {
	e := &SpanExport{
		Name:       "ricd.detect",
		DurationNS: 100,
		Children: []*SpanExport{
			{Name: "detection", DurationNS: 60, Children: []*SpanExport{{Name: "prune", DurationNS: 50}}},
			{Name: "screening", DurationNS: 30},
			{Name: "identification", DurationNS: 5},
		},
	}
	stages := StagesOf(e)
	if len(stages) != 3 || stages[0].Name != "detection" || stages[2].Name != "identification" {
		t.Fatalf("stages = %+v", stages)
	}
	if got := TotalDuration(stages); got != 95*time.Nanosecond {
		t.Errorf("TotalDuration = %v, want 95ns", got)
	}
	if StagesOf(nil) != nil || StagesOf(&SpanExport{Name: "x"}) != nil {
		t.Error("empty trees must yield nil stage lists")
	}
}

// TestCounterDelta checks per-run counter attribution.
func TestCounterDelta(t *testing.T) {
	before := map[string]int64{"a": 2, "b": 5}
	after := map[string]int64{"a": 2, "b": 9, "c": 1}
	d := CounterDelta(before, after)
	if len(d) != 2 || d["b"] != 4 || d["c"] != 1 {
		t.Errorf("delta = %v", d)
	}
	if CounterDelta(after, after) != nil {
		t.Error("no-change delta must be nil")
	}
}
