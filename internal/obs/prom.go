package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// This file hand-rolls the Prometheus text exposition format 0.0.4 from
// the registry — no client_golang dependency, per the repo's
// stdlib-only rule. Counters and gauges map directly; histograms are
// rendered with CUMULATIVE `le` buckets (each bucket counts observations
// ≤ its bound, ending in le="+Inf"), seconds-valued bucket bounds, and a
// seconds-valued _sum, which is what Prometheus' histogram_quantile
// expects. Note the registry's own Snapshot/Map view keeps per-bucket
// (non-cumulative) counts; only the exposition is cumulative.

// secondsLabel renders a histogram bucket bound as a seconds-valued
// number ("1e-05", "0.001", "10") — ASCII and float-parseable, unlike
// time.Duration.String()'s "10µs". Shared by the Prometheus exposition
// and the Snapshot/Map/expvar views so the two stay consistent.
func secondsLabel(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// promName sanitizes a registry metric name into a valid Prometheus
// metric name under a namespace prefix: dots and any other invalid byte
// become underscores ("core.prune.rounds" → "ricd_core_prune_rounds").
func promName(namespace, name string) string {
	b := make([]byte, 0, len(namespace)+1+len(name))
	appendSan := func(s string) {
		for i := 0; i < len(s); i++ {
			c := s[i]
			valid := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && len(b) > 0)
			if valid {
				b = append(b, c)
			} else {
				b = append(b, '_')
			}
		}
	}
	if namespace != "" {
		appendSan(namespace)
		b = append(b, '_')
	}
	appendSan(name)
	return string(b)
}

// WritePrometheus renders every metric of r in Prometheus text format
// under the namespace prefix. Metrics are emitted in sorted name order
// per kind (counters, gauges, histograms) so scrapes are diffable. A nil
// registry writes nothing.
func WritePrometheus(w io.Writer, namespace string, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	histograms := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		histograms = append(histograms, name)
	}
	r.mu.Unlock()
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)

	for _, name := range counters {
		pn := promName(namespace, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			pn, pn, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		pn := promName(namespace, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
			pn, pn, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range histograms {
		h := r.Histogram(name)
		pn := promName(namespace, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			label := "+Inf"
			if i < len(h.bounds) {
				label = secondsLabel(h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, label, cum); err != nil {
				return err
			}
		}
		sum := time.Duration(h.sum.Load()).Seconds()
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			pn, strconv.FormatFloat(sum, 'g', -1, 64), pn, h.count.Load()); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler serves the registry as a Prometheus text-format scrape
// endpoint (mount at /metrics on the debug server).
func MetricsHandler(namespace string, r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, namespace, r); err != nil {
			// The response is already streaming; nothing to do but stop.
			return
		}
	})
}

// RunsHandler serves the run ledger as JSON (mount at /debug/runs).
func RunsHandler(l *Ledger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		data, err := l.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
}
