package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter
// is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the fixed latency histogram bucket upper bounds:
// decades from 10µs to 10s. Observations above the last bound land in an
// implicit overflow bucket.
var DefaultBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram with an atomic count per
// bucket plus total count and sum. The nil *Histogram is a no-op.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Sample is one metric value in a registry snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Registry is a named collection of counters, gauges and histograms.
// Instruments are created on first use and live forever. The nil *Registry
// hands out nil (no-op) instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the latency histogram registered under name (with
// DefaultBuckets), creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(DefaultBuckets)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every metric as a flat list of samples sorted by name.
// Histograms expand into one sample per bucket (`name.le.<bound>` with the
// bound rendered as a seconds-valued number, e.g. `name.le.0.001`, and
// `name.le.inf` for the overflow bucket) plus `name.count` and
// `name.sum_ns`. Bucket samples are per-bucket counts; the Prometheus
// exposition (prom.go) is where they become cumulative.
func (r *Registry) Snapshot() []Sample {
	m := r.Map()
	out := make([]Sample, 0, len(m))
	for name, v := range m {
		out = append(out, Sample{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Map returns the same flat view as Snapshot as a name→value map, the
// shape expvar.Func wants.
func (r *Registry) Map() map[string]int64 {
	if r == nil {
		return nil
	}
	out := map[string]int64{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		for i := range h.buckets {
			label := "inf"
			if i < len(h.bounds) {
				label = secondsLabel(h.bounds[i])
			}
			out[name+".le."+label] = h.buckets[i].Load()
		}
		out[name+".count"] = h.count.Load()
		out[name+".sum_ns"] = h.sum.Load()
	}
	return out
}

// Counters returns a name→value map of the counters alone — the
// monotonic subset whose before/after difference is meaningful, used by
// the run ledger to attribute counts to individual runs (CounterDelta).
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}
