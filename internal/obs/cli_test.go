package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIShutdownStepOrder pins the helper's teardown sequence: debug
// server stop, THEN audit close. Reordering would drop the shutdown's own
// events from the audit trail while the process still looks alive.
// Commands with more state (cmd/stream) splice their steps before these
// two; this test is the contract their orders build on.
func TestCLIShutdownStepOrder(t *testing.T) {
	var got []string
	step := func(name string) func() {
		return func() { got = append(got, name) }
	}
	for _, f := range CLIShutdownSteps(step("stop-server"), step("close-audit")) {
		f()
	}
	want := []string{"stop-server", "close-audit"}
	if len(got) != len(want) {
		t.Fatalf("ran %d steps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %q, want %q (full order %v)", i, got[i], want[i], got)
		}
	}
}

// TestStartCLIDisabled: with no feature requested, the helper returns a
// nil CLI whose whole lifecycle is a safe no-op — commands need no
// branching.
func TestStartCLIDisabled(t *testing.T) {
	c, err := StartCLI(CLIConfig{Namespace: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatalf("disabled config built a CLI: %+v", c)
	}
	if o := c.Obs(); o != nil {
		t.Fatalf("nil CLI returned observer %v", o)
	}
	c.Hold(context.Background(), 0)
	c.Finish()
	c.Shutdown()
	c.Shutdown() // idempotent
}

// TestStartCLILifecycle drives the full helper lifecycle on a private mux:
// audit file created and closed fsynced, /metrics and /debug/runs mounted,
// Finish emits without panicking, Shutdown is idempotent.
func TestStartCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	mux := http.NewServeMux()
	c, err := StartCLI(CLIConfig{
		Namespace: "clitest",
		AuditPath: auditPath,
		Runs:      true,
		DebugAddr: "127.0.0.1:0", // port taken over by httptest below
		Mux:       mux,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Obs() == nil {
		t.Fatal("enabled config returned nil CLI/observer")
	}
	if c.Obs().Events == nil {
		t.Fatal("audit sink not wired")
	}
	if c.Obs().Ledger == nil {
		t.Fatal("run ledger not wired")
	}

	// The mounted handlers answer on the helper's mux regardless of the
	// listener the helper itself opened.
	c.Obs().Counter("clitest.hits").Inc()
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "clitest_clitest_hits") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body[:n])
	}
	resp, err = http.Get(ts.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/runs = %d", resp.StatusCode)
	}

	c.Obs().Events.Emit(Event{Type: "test.event"})
	c.Finish()
	c.Shutdown()
	c.Shutdown() // second shutdown must be a no-op, not a double close

	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"test.event"`) {
		t.Fatalf("audit file missing emitted event: %q", data)
	}
}
