package obs

import (
	"context"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/durable"
)

// This file is the shared CLI observability bootstrap: every command
// (ricd, stream, serve) previously hand-rolled the same observer
// construction, audit-file plumbing, pprof/expvar debug server and
// artifact emission, drifting apart comment by comment. StartCLI owns
// that lifecycle in one place.
//
// The helper deliberately does NOT import net/http/pprof: obs is linked
// into every binary, and pprof's blank import registers handlers on the
// process-global DefaultServeMux as a side effect. Commands that want
// /debug/pprof/ keep their own `_ "net/http/pprof"` import; the helper
// merely serves whatever mux it is given (DefaultServeMux by default,
// which is where pprof and expvar register).

// DefaultLedgerSize bounds the run ledger: one summary per run or daily
// sweep, so 64 covers a feedback loop's inner runs or a two-month replay
// while /debug/runs stays a quick read.
const DefaultLedgerSize = 64

// CLIConfig declares which observability features a command run wants —
// the union of the ricd/stream/serve flag sets.
type CLIConfig struct {
	// Namespace prefixes the Prometheus exposition and the expvar map
	// (e.g. "ricd" → ricd_core_prune_rounds, ricd_metrics).
	Namespace string
	// TracePath, when set, writes the run's stage trace there as JSON at
	// Finish (atomically: temp + fsync + rename).
	TracePath string
	// TraceTree prints the human-readable stage tree at Finish.
	TraceTree bool
	// AuditPath, when set, streams the explainable audit trail there as
	// JSON Lines; the file is fsynced and closed by CloseAudit.
	AuditPath string
	// Runs prints the run ledger as JSON at Finish.
	Runs bool
	// DebugAddr, when set, serves the debug mux (pprof/expvar if the
	// command imports them, plus /metrics and /debug/runs) on this
	// address.
	DebugAddr string
	// LedgerSize bounds the run ledger (0 = DefaultLedgerSize).
	LedgerSize int
	// Mux is the debug mux to extend and serve; nil uses
	// http.DefaultServeMux, where net/http/pprof and expvar register.
	// Tests pass a private mux so repeated StartCLI calls cannot collide
	// on process-global patterns.
	Mux *http.ServeMux
}

// enabled reports whether any observability feature is requested; with
// none, StartCLI returns a nil CLI whose methods are all no-ops, so
// commands need no branching.
func (c CLIConfig) enabled() bool {
	return c.TracePath != "" || c.TraceTree || c.AuditPath != "" || c.Runs || c.DebugAddr != ""
}

// CLI is a command run's observability bundle: the observer to thread
// through the pipeline plus the debug server and audit file lifecycles.
// The nil *CLI is a valid no-op (observability off), mirroring the
// package's nil-safe instruments.
type CLI struct {
	// Observer carries the trace, metrics, audit sink and run ledger; nil
	// only on a nil CLI.
	Observer *Observer

	cfg       CLIConfig
	srv       *http.Server
	auditFile *os.File
}

// Obs returns the CLI's observer (nil for a nil CLI), the value commands
// thread into detector configs.
func (c *CLI) Obs() *Observer {
	if c == nil {
		return nil
	}
	return c.Observer
}

// StartCLI builds the run's observer per the config and starts the debug
// server when DebugAddr is set. Callers must eventually run StopServer
// and CloseAudit (in that order — CLIShutdownSteps pins it) on every exit
// path; Finish emits the trace/tree/ledger artifacts.
func StartCLI(cfg CLIConfig) (*CLI, error) {
	if !cfg.enabled() {
		return nil, nil
	}
	o := NewObserver(cfg.Namespace)
	c := &CLI{Observer: o, cfg: cfg}
	if cfg.AuditPath != "" {
		f, err := os.Create(cfg.AuditPath)
		if err != nil {
			return nil, fmt.Errorf("-audit: %w", err)
		}
		c.auditFile = f
		o.Events = NewEventSink(f, 0)
	}
	if cfg.Runs || cfg.DebugAddr != "" {
		size := cfg.LedgerSize
		if size <= 0 {
			size = DefaultLedgerSize
		}
		o.Ledger = NewLedger(size)
	}
	if cfg.DebugAddr != "" {
		mux := cfg.Mux
		if mux == nil {
			mux = http.DefaultServeMux
		}
		// expvar.Publish and mux registration both panic on reuse; the
		// expvar name is guarded so a command embedding StartCLI into a
		// retry loop cannot crash itself, while a pattern collision on a
		// shared mux still fails loudly (it IS a programming error).
		if expvar.Get(cfg.Namespace+"_metrics") == nil {
			expvar.Publish(cfg.Namespace+"_metrics", expvar.Func(func() any { return o.Metrics.Map() }))
		}
		mux.Handle("/metrics", MetricsHandler(cfg.Namespace, o.Metrics))
		mux.Handle("/debug/runs", RunsHandler(o.Ledger))
		srv := &http.Server{Addr: cfg.DebugAddr, Handler: mux}
		c.srv = srv
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("debug server: %v", err)
			}
		}()
		fmt.Printf("debug server on %s (/debug/pprof/, /debug/vars, /metrics, /debug/runs)\n", cfg.DebugAddr)
	}
	return c, nil
}

// CLIShutdownSteps returns a CLI's teardown in its one correct order:
//
//  1. stop the debug server — the process may stop looking alive, and
//     metrics stayed scrapeable until everything that matters happened;
//  2. close the audit sink — step 1 (and everything before it) remains
//     in the audit trail.
//
// Closing audit first would lose the shutdown's own events; commands with
// more state (cmd/stream's buffer flush and WAL close) splice their steps
// BEFORE these two, keeping the same tail. TestCLIShutdownStepOrder pins
// this order.
func CLIShutdownSteps(stopServer, closeAudit func()) []func() {
	return []func(){stopServer, closeAudit}
}

// Shutdown runs the pinned teardown (StopServer then CloseAudit). Safe on
// nil and safe to call more than once.
func (c *CLI) Shutdown() {
	if c == nil {
		return
	}
	for _, step := range CLIShutdownSteps(c.StopServer, c.CloseAudit) {
		step()
	}
}

// StopServer gracefully shuts down the debug server (no-op without one),
// bounding the drain so a stuck debug client cannot hold the exit
// hostage.
func (c *CLI) StopServer() {
	if c == nil || c.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.srv.Shutdown(ctx); err != nil {
		log.Printf("debug server shutdown: %v", err)
	}
	c.srv = nil
}

// Hold keeps the process alive (and the debug server scrapeable) for d,
// or until ctx is cancelled (SIGINT). No-op without a debug server.
func (c *CLI) Hold(ctx context.Context, d time.Duration) {
	if c == nil || c.srv == nil || d <= 0 {
		return
	}
	fmt.Printf("holding debug server for %v (interrupt to exit sooner)\n", d)
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// CloseAudit flushes and closes the audit file, fsyncing first so an
// audit trail that claims to exist survives the machine failing right
// after exit — the same durability discipline as the WAL. Surfaces any
// write error the sink latched mid-run. Safe on nil and idempotent.
func (c *CLI) CloseAudit() {
	if c == nil || c.auditFile == nil {
		return
	}
	f := c.auditFile
	c.auditFile = nil
	if c.Observer != nil && c.Observer.Events != nil {
		if err := c.Observer.Events.Err(); err != nil {
			log.Printf("-audit: %v", err)
		}
	}
	if err := f.Sync(); err != nil {
		log.Printf("-audit: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Printf("-audit: %v", err)
	}
}

// Finish ends the trace and emits the requested artifacts: the trace JSON
// (written atomically — temp + fsync + rename — so a crash mid-write can
// never leave a torn half-JSON artifact), the human-readable stage tree,
// and the run ledger. Safe on nil.
func (c *CLI) Finish() {
	if c == nil {
		return
	}
	o := c.Observer
	o.Trace.Finish()
	if c.cfg.TracePath != "" {
		data, err := o.Trace.JSON()
		if err != nil {
			log.Printf("-trace: %v", err)
		} else if err := durable.WriteFileAtomic(c.cfg.TracePath, data, 0o644); err != nil {
			log.Printf("-trace: %v", err)
		} else {
			fmt.Printf("stage trace written to %s\n", c.cfg.TracePath)
		}
	}
	if c.cfg.TraceTree {
		fmt.Print(o.Trace.Tree())
	}
	if c.cfg.Runs {
		data, err := o.Ledger.JSON()
		if err != nil {
			log.Printf("-runs: %v", err)
		} else {
			fmt.Printf("run ledger:\n%s\n", data)
		}
	}
}
