package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span. Values are stored as
// strings so traces serialize without type wrangling; use the typed
// setters on Span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a pipeline run. Spans form a tree: Start
// creates a running child, End freezes the duration. All methods are
// nil-safe no-ops and safe for concurrent use (parallel stages may attach
// children to the same parent).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start creates and returns a running child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration; subsequent Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the frozen duration, or the running duration if the
// span has not ended (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Set attaches a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%d", v))
}

// SetFloat attaches a float attribute (3 decimal places).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%.3f", v))
}

// SetDuration attaches a duration attribute.
func (s *Span) SetDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.Set(key, d.String())
}

// Trace is a span tree rooted at a single run-level span. The nil *Trace
// is a no-op.
type Trace struct {
	root *Span
}

// NewTrace returns a trace whose root span (named rootName) starts now.
func NewTrace(rootName string) *Trace {
	return &Trace{root: newSpan(rootName)}
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() { t.Root().End() }

// SpanExport is the serialized form of a span subtree.
type SpanExport struct {
	Name       string        `json:"name"`
	DurationNS int64         `json:"duration_ns"`
	Attrs      []Attr        `json:"attrs,omitempty"`
	Children   []*SpanExport `json:"children,omitempty"`
}

// Export snapshots the span subtree (running spans export their duration
// so far).
func (s *Span) Export() *SpanExport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	e := &SpanExport{
		Name:       s.name,
		DurationNS: int64(s.dur),
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	if !s.ended {
		e.DurationNS = int64(time.Since(s.start))
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		e.Children = append(e.Children, c.Export())
	}
	return e
}

// Export snapshots the whole trace (nil for a nil trace).
func (t *Trace) Export() *SpanExport { return t.Root().Export() }

// JSON serializes the trace, indented for human diffing.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(t.Export(), "", "  ")
}

// ParseTrace parses the output of Trace.JSON back into an export tree.
func ParseTrace(data []byte) (*SpanExport, error) {
	var e SpanExport
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("obs: parsing trace: %w", err)
	}
	return &e, nil
}

// Tree renders the trace as an indented human-readable stage tree:
//
//	ricd                              41.2ms
//	  detection                       36.0ms
//	    hotset                         1.1ms  hot_items=12
//	    prune                         30.4ms  rounds=3
//
// Durations are right-padded per column; attributes trail the duration.
func (t *Trace) Tree() string {
	e := t.Export()
	if e == nil {
		return ""
	}
	// First pass: longest name+indent, so durations align.
	width := 0
	var walk func(e *SpanExport, depth int)
	walk = func(e *SpanExport, depth int) {
		if w := 2*depth + len(e.Name); w > width {
			width = w
		}
		for _, c := range e.Children {
			walk(c, depth+1)
		}
	}
	walk(e, 0)

	var b strings.Builder
	var render func(e *SpanExport, depth int)
	render = func(e *SpanExport, depth int) {
		pad := 2 * depth
		fmt.Fprintf(&b, "%*s%-*s  %10v", pad, "", width-pad, e.Name,
			time.Duration(e.DurationNS).Round(time.Microsecond))
		for _, a := range e.Attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range e.Children {
			render(c, depth+1)
		}
	}
	render(e, 0)
	return b.String()
}

// CoveredDuration returns the sum of the direct children's durations — the
// share of a parent span its instrumented stages account for. Used by
// tests to assert trace coverage of the measured pipeline time.
func (e *SpanExport) CoveredDuration() time.Duration {
	if e == nil {
		return 0
	}
	var sum time.Duration
	for _, c := range e.Children {
		sum += time.Duration(c.DurationNS)
	}
	return sum
}

// Find returns the first span with the given name in a pre-order walk of
// the subtree, or nil.
func (e *SpanExport) Find(name string) *SpanExport {
	if e == nil {
		return nil
	}
	if e.Name == name {
		return e
	}
	for _, c := range e.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// SpanNames returns the sorted distinct span names of the subtree.
func (e *SpanExport) SpanNames() []string {
	seen := map[string]bool{}
	var walk func(e *SpanExport)
	walk = func(e *SpanExport) {
		if e == nil {
			return
		}
		seen[e.Name] = true
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
