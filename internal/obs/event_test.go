package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestEventSinkJSONL checks that emitted events round-trip through the
// JSONL encoding with encoding/json on the read side, that sequence
// numbers are contiguous from 1, and that the ring retains the tail.
func TestEventSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 3)

	events := []Event{
		{Type: EventRunStart, Reason: "RICD", Users: 100, Items: 50},
		{Type: EventPruneRemove, Side: "user", ID: 0, Round: 1, Reason: "core.degree", Stat: "deg=3 min=10"},
		{Type: EventPruneRemove, Side: "item", ID: 42, Round: 2, Shard: 3, Reason: "square.neighbors"},
		{Type: EventScreenDrop, Side: "user", ID: 7, Group: 2, Reason: "user.hot_avg", Stat: "hot_avg=9.5 max=8.0"},
		{Type: EventFeedbackWiden, Round: 2, Reason: "t_click", Old: "12", New: "10"},
		{Type: EventGroupVerdict, Group: 1, Users: 10, Items: 10, Score: 9.75, Stat: "density=1.000"},
		{Type: EventGroupVerdict, Group: 2, Users: 5, Items: 5, Score: 0}, // zero score still emitted
	}
	for _, e := range events {
		s.Emit(e)
	}
	if s.Err() != nil {
		t.Fatalf("sink error: %v", s.Err())
	}
	if got := s.Seq(); got != uint64(len(events)) {
		t.Fatalf("Seq = %d, want %d", got, len(events))
	}

	var parsed []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("invalid JSON line: %s", sc.Text())
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unmarshal %q: %v", sc.Text(), err)
		}
		parsed = append(parsed, e)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d lines, want %d", len(parsed), len(events))
	}
	for i, e := range parsed {
		want := events[i]
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(e, want) {
			t.Errorf("line %d round trip:\ngot  %+v\nwant %+v", i, e, want)
		}
	}

	// The ring holds the last 3, oldest first.
	ring := s.Events()
	if len(ring) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(ring))
	}
	for i, e := range ring {
		if want := uint64(len(events) - 2 + i); e.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}

	// A group verdict with score zero must still carry the score field
	// (the acceptance bar: every verdict has its risk score).
	var raw map[string]any
	lastLine := func() string {
		// Re-render to inspect the raw field set.
		b := events[6]
		b.Seq = 7
		return string(b.appendJSON(nil))
	}()
	if err := json.Unmarshal([]byte(lastLine), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["score"]; !ok {
		t.Errorf("zero-score verdict dropped its score field: %s", lastLine)
	}
	// A node-less event must not carry an id; a node event for ID 0 must.
	if strings.Contains(string(events[0].appendJSON(nil)), `"id"`) {
		t.Error("run.start carries an id field")
	}
	if !strings.Contains(string(events[1].appendJSON(nil)), `"id":0`) {
		t.Error("removal of node 0 lost its id field")
	}
}

// TestEventJSONEscaping pushes JSON-hostile bytes through the hand-rolled
// encoder and requires encoding/json to agree on the way back.
func TestEventJSONEscaping(t *testing.T) {
	e := Event{Seq: 1, Type: "x", Reason: `quote " back \ slash`, Stat: "line\nbreak\ttab\x01ctl"}
	line := e.appendJSON(nil)
	if !json.Valid(line) {
		t.Fatalf("invalid JSON: %s", line)
	}
	var back Event
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if back.Reason != e.Reason || back.Stat != e.Stat {
		t.Errorf("escaping mangled fields: %+v", back)
	}
}

// TestEventSinkConcurrent hammers one sink from many goroutines and
// checks nothing is lost or torn: every line parses, and the sequence
// numbers form exactly 1..N with no gaps or duplicates. Run with -race.
func TestEventSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 16)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Emit(Event{Type: EventPruneRemove, Side: "user", ID: uint32(w*perWorker + i), Reason: "core.degree"})
			}
		}(w)
	}
	wg.Wait()

	seen := make([]bool, workers*perWorker+1)
	n := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("torn/corrupt line %q: %v", sc.Text(), err)
		}
		if e.Seq < 1 || e.Seq > uint64(workers*perWorker) || seen[e.Seq] {
			t.Fatalf("bad/duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		n++
	}
	if n != workers*perWorker {
		t.Fatalf("got %d lines, want %d", n, workers*perWorker)
	}
}

// failWriter fails every write after the first.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestEventSinkWriteError checks the first write error is latched and the
// ring keeps recording.
func TestEventSinkWriteError(t *testing.T) {
	s := NewEventSink(&failWriter{}, 8)
	for i := 0; i < 4; i++ {
		s.Emit(Event{Type: EventRunStart})
	}
	if s.Err() == nil {
		t.Fatal("write error not latched")
	}
	if got := len(s.Events()); got != 4 {
		t.Errorf("ring recorded %d events after write error, want 4", got)
	}
}

// TestEventSinkNoRetention covers the writer-only and count-only modes.
func TestEventSinkNoRetention(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 0)
	s.Emit(Event{Type: EventRunStart})
	if s.Events() != nil {
		t.Error("ring disabled but Events returned data")
	}
	if buf.Len() == 0 {
		t.Error("writer-only sink wrote nothing")
	}
	c := NewEventSink(nil, 0)
	for i := 0; i < 3; i++ {
		c.Emit(Event{Type: EventRunStart})
	}
	if c.Seq() != 3 || c.Err() != nil {
		t.Errorf("count-only sink: seq=%d err=%v", c.Seq(), c.Err())
	}
}

// TestEventFieldsStable pins the JSONL field names — the audit trail is an
// interchange format consumed by jq pipelines and the promcheck-style
// tooling, so renames are breaking changes.
func TestEventFieldsStable(t *testing.T) {
	e := Event{
		Seq: 9, Type: "t", Side: "user", ID: 1, Round: 2, Shard: 3,
		Group: 4, Users: 5, Items: 6, Groups: 7, Reason: "r", Stat: "s",
		Old: "o", New: "n", Score: 1.5,
	}
	want := `{"seq":9,"type":"t","side":"user","id":1,"round":2,"shard":3,` +
		`"group":4,"users":5,"items":6,"groups":7,"reason":"r","stat":"s",` +
		`"old":"o","new":"n","score":1.5}`
	if got := string(e.appendJSON(nil)); got != want {
		t.Errorf("encoding drifted:\ngot  %s\nwant %s", got, want)
	}
}

// BenchmarkEventSinkEmit measures the enabled emit path (discard writer).
func BenchmarkEventSinkEmit(b *testing.B) {
	s := NewEventSink(discard{}, 0)
	e := Event{Type: EventPruneRemove, Side: "user", ID: 7, Round: 3, Reason: "core.degree", Stat: "deg=3 min=10"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(e)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
