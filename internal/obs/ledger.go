package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// StageTiming is one pipeline stage's wall time inside a run summary.
type StageTiming struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// RunSummary is the ledger's record of one pipeline run: what ran, how
// long each stage took, what came out, and whether it was cut short.
type RunSummary struct {
	// Seq is the ledger-assigned run number, starting at 1.
	Seq int64 `json:"seq"`
	// Root names the run kind: "ricd.detect", "stream.sweep", "engine.run".
	Root       string `json:"root"`
	DurationNS int64  `json:"duration_ns"`
	Groups     int    `json:"groups"`
	Users      int    `json:"users,omitempty"`
	Items      int    `json:"items,omitempty"`
	// Partial/Stage/Err mirror the graceful-degradation contract of
	// detect.Result: a cut-short run records the stage it reached and the
	// cause.
	Partial bool   `json:"partial,omitempty"`
	Stage   string `json:"stage,omitempty"`
	Err     string `json:"err,omitempty"`
	// Stages are the run span's direct children (per-stage durations from
	// the tracer).
	Stages []StageTiming `json:"stages,omitempty"`
	// Stats are the run's counter deltas (pruning rounds, shard count,
	// frontier evaluations, screening drops, …).
	Stats map[string]int64 `json:"stats,omitempty"`
}

// Ledger is a bounded ring of the last N run summaries, served at
// /debug/runs and dumpable via the CLIs' -runs flag. The nil *Ledger is a
// no-op.
type Ledger struct {
	mu      sync.Mutex
	seq     int64
	runs    []RunSummary
	next    int
	wrapped bool
}

// NewLedger returns a ledger retaining the last n runs (n < 1 is clamped
// to 1).
func NewLedger(n int) *Ledger {
	if n < 1 {
		n = 1
	}
	return &Ledger{runs: make([]RunSummary, n)}
}

// Record appends one run summary, assigning its sequence number and
// evicting the oldest entry when the ring is full.
func (l *Ledger) Record(rs RunSummary) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	rs.Seq = l.seq
	l.runs[l.next] = rs
	l.next++
	if l.next == len(l.runs) {
		l.next = 0
		l.wrapped = true
	}
	l.mu.Unlock()
}

// Runs returns the retained summaries, oldest first (nil for nil).
func (l *Ledger) Runs() []RunSummary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []RunSummary
	if l.wrapped {
		out = append(out, l.runs[l.next:]...)
	}
	return append(out, l.runs[:l.next]...)
}

// Len returns how many runs have been recorded in total (not capped by
// the ring size; 0 for nil).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.seq)
}

// JSON serializes the retained runs, oldest first, indented for curling.
func (l *Ledger) JSON() ([]byte, error) {
	runs := l.Runs()
	if runs == nil {
		runs = []RunSummary{}
	}
	return json.MarshalIndent(runs, "", "  ")
}

// StagesOf flattens a run span's direct children into stage timings — the
// per-stage duration breakdown a RunSummary carries.
func StagesOf(e *SpanExport) []StageTiming {
	if e == nil || len(e.Children) == 0 {
		return nil
	}
	out := make([]StageTiming, 0, len(e.Children))
	for _, c := range e.Children {
		out = append(out, StageTiming{Name: c.Name, DurationNS: c.DurationNS})
	}
	return out
}

// TotalDuration sums the recorded stage timings.
func TotalDuration(stages []StageTiming) time.Duration {
	var sum int64
	for _, s := range stages {
		sum += s.DurationNS
	}
	return time.Duration(sum)
}

// CounterDelta returns the counters that advanced between two Counters()
// snapshots — the per-run share of the registry's cumulative counts.
// Counters absent from before count from zero.
func CounterDelta(before, after map[string]int64) map[string]int64 {
	var out map[string]int64
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			if out == nil {
				out = map[string]int64{}
			}
			out[name] = d
		}
	}
	return out
}
