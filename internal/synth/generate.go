package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/detect"
)

// InjectedGroup describes one implanted attack group: the ground truth a
// detector is judged against, plus the hot items the group rides (victims,
// not targets) and the agency affiliation of each attacker (used only by
// the Section VII case-study reproduction).
type InjectedGroup struct {
	Attackers []bipartite.NodeID
	Targets   []bipartite.NodeID
	HotItems  []bipartite.NodeID
	// Agency[i] is the crowdsourcing-agency ID of Attackers[i].
	Agency []int
}

// Dataset is a generated workload: the click table, its graph, complete
// ground truth, and the injected-group descriptions.
type Dataset struct {
	Config Config
	Table  *clicktable.Table
	Graph  *bipartite.Graph
	Truth  *detect.Labels
	Groups []InjectedGroup

	// NumNormalUsers and NumNormalItems delimit the ID ranges: user IDs
	// >= NumNormalUsers are attackers, item IDs >= NumNormalItems are
	// injected target items.
	NumNormalUsers int
	NumNormalItems int
}

// Generate builds a dataset from the configuration. Generation is
// deterministic in Config (including Seed).
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumUsers <= 0 || cfg.NumItems <= 0 {
		return nil, fmt.Errorf("synth: need positive NumUsers/NumItems, got %d/%d", cfg.NumUsers, cfg.NumItems)
	}
	if cfg.UserActivityAlpha <= 1 {
		return nil, fmt.Errorf("synth: UserActivityAlpha must be > 1, got %v", cfg.UserActivityAlpha)
	}
	if cfg.ItemZipfS <= 1 {
		return nil, fmt.Errorf("synth: ItemZipfS must be > 1, got %v", cfg.ItemZipfS)
	}
	if a := cfg.Attack; a.Groups > 0 {
		switch {
		case a.AttackersMin <= 0 || a.AttackersMax < a.AttackersMin:
			return nil, fmt.Errorf("synth: bad attacker bounds [%d,%d]", a.AttackersMin, a.AttackersMax)
		case a.TargetsMin <= 0 || a.TargetsMax < a.TargetsMin:
			return nil, fmt.Errorf("synth: bad target bounds [%d,%d]", a.TargetsMin, a.TargetsMax)
		case a.HotMin <= 0 || a.HotMax < a.HotMin:
			return nil, fmt.Errorf("synth: bad hot bounds [%d,%d]", a.HotMin, a.HotMax)
		case a.TargetClicksMin <= 0 || a.TargetClicksMax < a.TargetClicksMin:
			return nil, fmt.Errorf("synth: bad target-click bounds [%d,%d]", a.TargetClicksMin, a.TargetClicksMax)
		case a.Participation <= 0 || a.Participation > 1:
			return nil, fmt.Errorf("synth: Participation must be in (0,1], got %v", a.Participation)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := clicktable.New(cfg.NumUsers * 8)

	rankToItem := generateBackground(rng, cfg, tbl)
	generateConfusers(rng, cfg, tbl, rankToItem)

	ds := &Dataset{
		Config:         cfg,
		Truth:          detect.NewLabels(),
		NumNormalUsers: cfg.NumUsers,
		NumNormalItems: cfg.NumItems,
	}
	injectAttacks(rng, cfg, tbl, ds)

	ds.Table = tbl.Aggregate()
	ds.Graph = ds.Table.ToGraph()
	return ds, nil
}

// MustGenerate is Generate for known-good configurations; it panics on
// configuration errors. Intended for tests and benchmarks.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// generateBackground emits the normal click traffic: each user performs a
// Pareto-distributed number of click events, each event picking an item
// from a Zipf popularity distribution; repeated picks of the same item
// accumulate into multi-click edges (heavier on popular items, matching the
// ordinary-user profile of the paper's Table IV). It returns the popularity
// rank → item ID mapping for downstream confuser generation.
func generateBackground(rng *rand.Rand, cfg Config, tbl *clicktable.Table) []int {
	zipf := rand.NewZipf(rng, cfg.ItemZipfS, cfg.ItemZipfV, uint64(cfg.NumItems-1))
	// Shuffle the popularity ranks onto item IDs so that popular items are
	// spread across the ID space rather than clustered at ID 0.
	rankToItem := rng.Perm(cfg.NumItems)

	for u := 0; u < cfg.NumUsers; u++ {
		events := int(paretoSample(rng, cfg.UserActivityMin, cfg.UserActivityAlpha))
		if events < 1 {
			events = 1
		}
		// Cap pathological tail draws to keep single users from dominating
		// the dataset (Taobao's risk control would likewise throttle them).
		if events > 400 {
			events = 400
		}
		clicks := map[int]uint32{}
		for e := 0; e < events; e++ {
			clicks[rankToItem[int(zipf.Uint64())]]++
		}
		for item, n := range clicks {
			tbl.Append(uint32(u), uint32(item), n)
		}
	}
	return rankToItem
}

// generateConfusers emits the innocent heavy-click populations: loyal fans
// who re-click a few favorite mid-popularity items many times, and
// group-buying crowds hammering a single item together. Neither is labeled
// abnormal — they exist to punish detectors that mistake heavy clicks alone
// for attack behavior.
func generateConfusers(rng *rand.Rand, cfg Config, tbl *clicktable.Table, rankToItem []int) {
	c := cfg.Confusers

	// Favorite items come from the mid-popularity band: below the hot
	// range (attacks ride the top) but popular enough that many fans can
	// share a favorite.
	bandLo := cfg.NumItems / 50
	bandHi := cfg.NumItems / 4
	if bandLo < 1 {
		bandLo = 1
	}
	if bandHi <= bandLo {
		bandHi = bandLo + 1
	}
	pickBandItem := func() uint32 {
		return uint32(rankToItem[bandLo+rng.Intn(bandHi-bandLo)])
	}

	if c.FanFraction > 0 && c.FanItemsMax > 0 {
		numFans := int(c.FanFraction * float64(cfg.NumUsers))
		for f := 0; f < numFans; f++ {
			u := uint32(rng.Intn(cfg.NumUsers))
			favorites := 1 + rng.Intn(c.FanItemsMax)
			for i := 0; i < favorites; i++ {
				tbl.Append(u, pickBandItem(),
					uint32(randBetween(rng, c.FanClicksMin, c.FanClicksMax)))
			}
		}
	}

	for gb := 0; gb < c.GroupBuys; gb++ {
		item := pickBandItem()
		crowd := randBetween(rng, c.GroupBuyUsersMin, c.GroupBuyUsersMax)
		for i := 0; i < crowd; i++ {
			u := uint32(rng.Intn(cfg.NumUsers))
			tbl.Append(u, item,
				uint32(randBetween(rng, c.GroupBuyClicksMin, c.GroupBuyClicksMax)))
		}
	}
}

// paretoSample draws from a Pareto distribution with scale xm and shape
// alpha: P(X > x) = (xm/x)^alpha for x >= xm.
func paretoSample(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// injectAttacks implants cfg.Attack.Groups attack groups following the
// optimal crowd-worker strategy derived in Section IV-A of the paper.
func injectAttacks(rng *rand.Rand, cfg Config, tbl *clicktable.Table, ds *Dataset) {
	a := cfg.Attack
	if a.Groups == 0 {
		return
	}

	// Hot items ridden by attacks are drawn from the most popular normal
	// items (popularity re-derived from the table to stay agnostic of the
	// generator internals). The pool is deliberately shallow so that the
	// ridden items are genuinely hot under the experiments' T_hot values;
	// different groups therefore often ride the same hot items, exactly
	// like real attacks piling onto the same flagship products.
	poolSize := a.HotPoolSize
	if poolSize <= 0 {
		poolSize = maxInt(a.HotMax*3, 12)
	}
	hotPool := topItemsByClicks(tbl, poolSize)

	nextUser := uint32(cfg.NumUsers)
	nextItem := uint32(cfg.NumItems)
	agencyCounter := 0

	for gi := 0; gi < a.Groups; gi++ {
		// Group sizes span the detectability spectrum: the first
		// CampaignGroups are mega-campaigns whose targets will cross a
		// low hot threshold (the Fig 9e effect); the rest alternate small
		// crews near k₁ and mid-size crews.
		mid := (a.AttackersMin + a.AttackersMax) / 2
		var numAttackers int
		switch {
		case gi < a.CampaignGroups && a.CampaignAttackers > 0:
			numAttackers = randBetween(rng,
				a.CampaignAttackers*9/10, a.CampaignAttackers*11/10)
		case gi == a.CampaignGroups:
			// One minimal crew hugging the k₁ bound: it is what the α,
			// T_click and k₁ sensitivity sweeps pivot on.
			numAttackers = randBetween(rng, a.AttackersMin, a.AttackersMin+4)
		case gi%2 == 0:
			numAttackers = randBetween(rng, a.AttackersMin, mid)
		default:
			numAttackers = randBetween(rng, mid+1, a.AttackersMax)
		}
		numTargets := randBetween(rng, a.TargetsMin, a.TargetsMax)
		numHot := randBetween(rng, a.HotMin, a.HotMax)

		grp := InjectedGroup{}

		// Target items are new item IDs with a trickle of organic traffic.
		for t := 0; t < numTargets; t++ {
			item := nextItem
			nextItem++
			grp.Targets = append(grp.Targets, item)
			ds.Truth.Items[item] = true
			organic := poissonish(rng, a.OrganicClickers)
			for o := 0; o < organic; o++ {
				u := uint32(rng.Intn(cfg.NumUsers))
				tbl.Append(u, item, uint32(1+rng.Intn(2)))
			}
		}

		// Hot items: sample without replacement from the hot pool.
		perm := rng.Perm(len(hotPool))
		for h := 0; h < numHot && h < len(hotPool); h++ {
			grp.HotItems = append(grp.HotItems, hotPool[perm[h]])
		}

		// Attacker accounts: new user IDs, mostly from one agency.
		dominantAgency := agencyCounter
		agencyCounter++
		for w := 0; w < numAttackers; w++ {
			user := nextUser
			nextUser++
			grp.Attackers = append(grp.Attackers, user)
			ds.Truth.Users[user] = true
			agency := dominantAgency
			if rng.Float64() >= a.AgencyLoyalty {
				agency = agencyCounter + 1000 + rng.Intn(100) // outside account
			}
			grp.Agency = append(grp.Agency, agency)

			// Hot-item clicks: the optimal strategy is one click; leave a
			// little slack up to HotClicksMax (paper: average < 4).
			for _, hot := range grp.HotItems {
				c := uint32(1)
				if a.HotClicksMax > 1 && rng.Float64() < 0.35 {
					c = uint32(2 + rng.Intn(a.HotClicksMax-1))
				}
				tbl.Append(user, hot, c)
			}

			// Target clicks: spend the budget here (Eq 3: maximize clicks
			// on the target). Participation < 1 drops some attacker-target
			// edges, producing a near-biclique.
			for _, target := range grp.Targets {
				if rng.Float64() > a.Participation {
					continue
				}
				c := uint32(randBetween(rng, a.TargetClicksMin, a.TargetClicksMax))
				tbl.Append(user, target, c)
			}

			// Camouflage: a few light clicks on random normal items,
			// avoiding the group's hot items (the worker already has those
			// edges and extra clicks there would waste the budget, Eq 3).
			inGroup := map[uint32]bool{}
			for _, h := range grp.HotItems {
				inGroup[h] = true
			}
			camo := randBetween(rng, a.CamouflageItemsMin, a.CamouflageItemsMax)
			for c := 0; c < camo; c++ {
				item := uint32(rng.Intn(cfg.NumItems))
				if inGroup[item] {
					continue
				}
				tbl.Append(user, item, uint32(1+rng.Intn(maxInt(a.CamouflageClicksMax, 1))))
			}
		}

		ds.Groups = append(ds.Groups, grp)
	}
}

// topItemsByClicks returns the IDs of the k items with the highest total
// clicks in the table.
func topItemsByClicks(tbl *clicktable.Table, k int) []bipartite.NodeID {
	totals := map[uint32]uint64{}
	tbl.Each(func(r clicktable.Record) bool {
		totals[r.ItemID] += uint64(r.Clicks)
		return true
	})
	type kv struct {
		id uint32
		n  uint64
	}
	all := make([]kv, 0, len(totals))
	for id, n := range totals {
		all = append(all, kv{id, n})
	}
	// Partial selection sort is fine: k is small.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[best].n || (all[j].n == all[best].n && all[j].id < all[best].id) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]bipartite.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

func randBetween(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// poissonish draws a small non-negative count with the given mean using a
// simple binomial approximation (adequate for organic-click counts).
func poissonish(rng *rand.Rand, mean int) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	for i := 0; i < mean*2; i++ {
		if rng.Float64() < 0.5 {
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
