package synth

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLabels asserts the label parser never panics and accepted labels
// re-serialize consistently (WriteLabels needs a Dataset, so the check here
// is acceptance-stability: parsing twice gives identical results).
func FuzzReadLabels(f *testing.F) {
	f.Add("kind,id,group\nuser,1,0\nitem,2,0\n")
	f.Add("kind,id,group\n")
	f.Add("kind,id,group\nuser,4294967295,11\n")
	f.Add("")
	f.Add("kind,id,group\nwidget,1,0\n")
	f.Fuzz(func(t *testing.T, data string) {
		l1, g1, err := ReadLabels(strings.NewReader(data))
		if err != nil {
			return
		}
		l2, g2, err := ReadLabels(bytes.NewReader([]byte(data)))
		if err != nil {
			t.Fatalf("second parse rejected identical input: %v", err)
		}
		if l1.NumAbnormal() != l2.NumAbnormal() || len(g1) != len(g2) {
			t.Fatal("parse not deterministic")
		}
	})
}
