package synth

// EquivCorpus returns the shared ≥ 20-workload seeded corpus every
// golden-oracle equivalence harness runs against — the sharded-pipeline
// harness (internal/core), the delta-maintenance and verdict-cache
// harnesses (internal/stream), and the query-serving harness (facade).
// One corpus keeps the oracles honest about the same inputs: a workload
// shape added here is exercised end to end by every equivalence proof.
//
// Shapes vary deliberately: small marketplaces (2k users, 400 items) with
// varied attack-group counts and near-biclique participation, plus tiny
// marketplaces (600 users, 150 items) whose residuals shatter into several
// small components — and some of which detect nothing at all, so the
// all-clean run is a corpus member, not a special case.
func EquivCorpus() []Config {
	var cfgs []Config
	for seed := int64(1); seed <= 8; seed++ {
		c := SmallConfig()
		c.Seed = seed
		c.Attack.Groups = 2 + int(seed%3)
		c.Attack.Participation = 0.85 + 0.05*float64(seed%3)
		cfgs = append(cfgs, c)
	}
	for seed := int64(100); seed < 112; seed++ {
		c := SmallConfig()
		c.Seed = seed
		c.NumUsers = 600
		c.NumItems = 150
		c.Attack.Groups = 2 + int(seed%4)
		c.Attack.AttackersMin = 10
		c.Attack.AttackersMax = 14
		c.Attack.TargetsMin = 10
		c.Attack.TargetsMax = 12
		c.Attack.HotPoolSize = 6
		c.Confusers.GroupBuys = 2
		cfgs = append(cfgs, c)
	}
	return cfgs
}
