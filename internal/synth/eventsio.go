package synth

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Event CSV interchange format: header "day,user_id,item_id,click", one
// event per row, day-ordered. cmd/synthgen can emit it and cmd/stream
// replays it through the incremental detector.

var eventHeader = []string{"day", "user_id", "item_id", "click"}

// WriteEvents writes an event stream as CSV.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(eventHeader); err != nil {
		return fmt.Errorf("synth: write event header: %w", err)
	}
	rec := make([]string, 4)
	for i, e := range events {
		rec[0] = strconv.Itoa(e.Day)
		rec[1] = strconv.FormatUint(uint64(e.UserID), 10)
		rec[2] = strconv.FormatUint(uint64(e.ItemID), 10)
		rec[3] = strconv.FormatUint(uint64(e.Clicks), 10)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("synth: write event %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("synth: flush events: %w", err)
	}
	return bw.Flush()
}

// ReadEvents reads an event-stream CSV. Events must be day-ordered; out of
// order input is rejected so downstream day-windowed replay stays sound.
func ReadEvents(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true

	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("synth: read event header: %w", err)
	}
	for i, want := range eventHeader {
		if hdr[i] != want {
			return nil, fmt.Errorf("synth: bad event header column %d: got %q, want %q", i, hdr[i], want)
		}
	}

	var events []Event
	prevDay := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("synth: events line %d: %w", line, err)
		}
		day, err := strconv.Atoi(rec[0])
		if err != nil || day < 1 {
			return nil, fmt.Errorf("synth: events line %d: bad day %q", line, rec[0])
		}
		if day < prevDay {
			return nil, fmt.Errorf("synth: events line %d: day %d after day %d (stream must be ordered)",
				line, day, prevDay)
		}
		prevDay = day
		u, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("synth: events line %d: bad user %q: %w", line, rec[1], err)
		}
		v, err := strconv.ParseUint(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("synth: events line %d: bad item %q: %w", line, rec[2], err)
		}
		c, err := strconv.ParseUint(rec[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("synth: events line %d: bad click %q: %w", line, rec[3], err)
		}
		events = append(events, Event{Day: day, UserID: uint32(u), ItemID: uint32(v), Clicks: uint32(c)})
	}
}
