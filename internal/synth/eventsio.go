package synth

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// parseUint32 parses one uint32 CSV field of the `where` stream (events,
// labels) with an operator-grade diagnosis: negative values and values past
// the uint32 range get their own messages instead of strconv's generic ones.
func parseUint32(where string, line int, name, s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err == nil {
		return uint32(v), nil
	}
	switch {
	case strings.HasPrefix(strings.TrimSpace(s), "-"):
		return 0, fmt.Errorf("synth: %s line %d: %s %q is negative (must be a non-negative integer)", where, line, name, s)
	case errors.Is(err, strconv.ErrRange):
		return 0, fmt.Errorf("synth: %s line %d: %s %q out of range for uint32 (max %d)", where, line, name, s, uint64(math.MaxUint32))
	default:
		return 0, fmt.Errorf("synth: %s line %d: %s %q is not an unsigned integer", where, line, name, s)
	}
}

// Event CSV interchange format: header "day,user_id,item_id,click", one
// event per row, day-ordered. cmd/synthgen can emit it and cmd/stream
// replays it through the incremental detector.

var eventHeader = []string{"day", "user_id", "item_id", "click"}

// WriteEvents writes an event stream as CSV.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(eventHeader); err != nil {
		return fmt.Errorf("synth: write event header: %w", err)
	}
	rec := make([]string, 4)
	for i, e := range events {
		rec[0] = strconv.Itoa(e.Day)
		rec[1] = strconv.FormatUint(uint64(e.UserID), 10)
		rec[2] = strconv.FormatUint(uint64(e.ItemID), 10)
		rec[3] = strconv.FormatUint(uint64(e.Clicks), 10)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("synth: write event %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("synth: flush events: %w", err)
	}
	return bw.Flush()
}

// ReadEvents reads an event-stream CSV. Events must be day-ordered; out of
// order input is rejected so downstream day-windowed replay stays sound.
func ReadEvents(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true

	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("synth: empty event input: missing header row %q", strings.Join(eventHeader, ","))
	}
	if err != nil {
		return nil, fmt.Errorf("synth: read event header: %w", err)
	}
	for i, want := range eventHeader {
		if hdr[i] != want {
			return nil, fmt.Errorf("synth: bad event header column %d: got %q, want %q", i, hdr[i], want)
		}
	}

	var events []Event
	prevDay := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("synth: events line %d: %w", line, err)
		}
		day, err := strconv.Atoi(rec[0])
		if err != nil || day < 1 {
			return nil, fmt.Errorf("synth: events line %d: bad day %q (must be an integer ≥ 1)", line, rec[0])
		}
		if day < prevDay {
			return nil, fmt.Errorf("synth: events line %d: day %d after day %d (stream must be ordered)",
				line, day, prevDay)
		}
		prevDay = day
		u, err := parseUint32("events", line, "user_id", rec[1])
		if err != nil {
			return nil, err
		}
		v, err := parseUint32("events", line, "item_id", rec[2])
		if err != nil {
			return nil, err
		}
		c, err := parseUint32("events", line, "click", rec[3])
		if err != nil {
			return nil, err
		}
		events = append(events, Event{Day: day, UserID: u, ItemID: v, Clicks: c})
	}
}
