package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/clicktable"
)

// Event is one timestamped click: user clicked item `Clicks` times on day
// Day (1-based). Event streams drive the incremental-detection extension
// and the campaign monitor.
type Event struct {
	Day    int
	UserID uint32
	ItemID uint32
	Clicks uint32
}

// EventStreamConfig controls how a generated dataset is unrolled into a
// day-stamped event stream.
type EventStreamConfig struct {
	// Days is the window length.
	Days int
	// AttackStartDay is the first day carrying attack clicks; attack
	// volume ramps linearly from that day through the end of the window
	// (the pre-campaign ramp of Fig 10).
	AttackStartDay int
	// Seed drives the deterministic shuffling and day assignment.
	Seed int64
}

// DefaultEventStreamConfig spreads traffic over 6 days with the attack
// starting on day 3, matching the campaign example's timeline.
func DefaultEventStreamConfig() EventStreamConfig {
	return EventStreamConfig{Days: 6, AttackStartDay: 3, Seed: 99}
}

// EventStream unrolls a dataset into a day-ordered stream of click events:
// background rows are split into single-day events uniformly across the
// window, attack rows are split across the ramp [AttackStartDay, Days] with
// volume growing toward the end. Aggregating the whole stream reproduces
// the dataset's click table exactly.
func EventStream(ds *Dataset, cfg EventStreamConfig) ([]Event, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("synth: Days must be ≥ 1, got %d", cfg.Days)
	}
	if cfg.AttackStartDay < 1 || cfg.AttackStartDay > cfg.Days {
		return nil, fmt.Errorf("synth: AttackStartDay %d outside [1,%d]", cfg.AttackStartDay, cfg.Days)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	rampDays := cfg.Days - cfg.AttackStartDay + 1
	// Linear ramp weights 1,2,...,rampDays over the attack window.
	rampTotal := rampDays * (rampDays + 1) / 2
	pickRampDay := func() int {
		r := rng.Intn(rampTotal)
		for d := 0; d < rampDays; d++ {
			r -= d + 1
			if r < 0 {
				return cfg.AttackStartDay + d
			}
		}
		return cfg.Days
	}

	var events []Event
	ds.Table.Each(func(rec clicktable.Record) bool {
		isAttack := int(rec.UserID) >= ds.NumNormalUsers
		remaining := rec.Clicks
		// Split the row's clicks into up to `Days` day-chunks; most rows
		// are small and land in one or two events.
		for remaining > 0 {
			chunk := remaining
			if remaining > 1 {
				chunk = 1 + uint32(rng.Intn(int(remaining)))
			}
			remaining -= chunk
			day := 1 + rng.Intn(cfg.Days)
			if isAttack {
				day = pickRampDay()
			}
			events = append(events, Event{
				Day:    day,
				UserID: rec.UserID,
				ItemID: rec.ItemID,
				Clicks: chunk,
			})
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].Day < events[j].Day })
	return events, nil
}

// EventsToTable aggregates a prefix of the stream (events with Day ≤ upToDay)
// back into a click table.
func EventsToTable(events []Event, upToDay int) *clicktable.Table {
	t := clicktable.New(len(events))
	for _, e := range events {
		if e.Day > upToDay {
			break // stream is day-ordered
		}
		t.Append(e.UserID, e.ItemID, e.Clicks)
	}
	return t.Aggregate()
}
