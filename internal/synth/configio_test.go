package synth

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	cfg.Attack.Groups = 3
	var buf bytes.Buffer
	if err := SaveConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip changed config:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"Seed":1,"Bogus":2}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestLoadConfigRejectsGarbage(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	md := BuildMetadata(ds)
	if md.Attack.Groups != len(ds.Groups) {
		t.Fatalf("metadata groups = %d, want %d", md.Attack.Groups, len(ds.Groups))
	}
	if md.Scale != ds.Table.Scale() {
		t.Errorf("metadata scale mismatch")
	}
	var buf bytes.Buffer
	if err := SaveMetadata(&buf, md); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMetadata(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != md.Config || got.Scale != md.Scale || got.Attack != md.Attack {
		t.Errorf("metadata round trip changed data")
	}
}
