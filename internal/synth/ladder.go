package synth

import "repro/internal/bipartite"

// LadderGraph builds the rounds-heavy pruning stress workload used by the
// frontier benchmarks and tests: a "ladder" of `layers` user layers U_0..U_{D-1}
// (m users each) and item layers V_0..V_{D-1} (k items each), where every user
// of U_j clicks every item of V_j and V_{j+1}.
//
// Pruned with k₁ = 2m+1, k₂ = k, α = 0.5 (so ⌈α·k₂⌉ = k/2+… common items
// certify a user pair and ⌈α·k₁⌉ = m+1 common users certify an item pair),
// the structure peels one layer per fixpoint round from each end:
//
//   - interior users see 3m qualifying co-users (own layer + both adjacent
//     layers) ≥ 2m+1 and survive, but the end layers see only 2m < 2m+1 and
//     fail;
//   - once an end user layer dies, the adjacent item layer's live user set
//     drops to m < m+1 common users and dies the same round, exposing the
//     next user layer as the new end.
//
// The fixpoint therefore needs ≈ layers/2 rounds of *small* removals — the
// workload where per-round full rescans are maximally wasteful and the dirty
// frontier shines. The residual is empty. LadderParams returns the matching
// thresholds.
func LadderGraph(layers, m, k int) *bipartite.Graph {
	b := bipartite.NewBuilder(layers*m, layers*k)
	for j := 0; j < layers; j++ {
		for u := 0; u < m; u++ {
			uid := bipartite.NodeID(j*m + u)
			for v := 0; v < k; v++ {
				b.Add(uid, bipartite.NodeID(j*k+v), 1)
				if j+1 < layers {
					b.Add(uid, bipartite.NodeID((j+1)*k+v), 1)
				}
			}
		}
	}
	return b.Build()
}

// LadderParams returns the (k1, k2, alpha) thresholds that make LadderGraph
// peel one layer per round from each end (see LadderGraph).
func LadderParams(m, k int) (k1, k2 int, alpha float64) {
	return 2*m + 1, k, 0.5
}
