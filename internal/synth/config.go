// Package synth generates synthetic e-commerce click workloads with
// implanted "Ride Item's Coattails" attacks.
//
// The paper's evaluation ran on a proprietary Taobao click table
// (20M users, 4M items, 90M edges). This package replaces it with a seeded
// generator whose two halves mirror the paper's own analysis (Section IV):
//
//   - Background traffic: heavy-tailed item popularity (Pareto principle —
//     ~20% of items draw ~80% of clicks, Fig 2a) and heavy-tailed user
//     activity (Fig 2b), calibrated so user-side statistics land near the
//     paper's Table II (Avg_clk ≈ 11, Avg_cnt ≈ 4).
//   - Attack traffic: crowd workers following the paper's derived optimal
//     strategy (Eq 2-3): click each assigned hot item a small number of
//     times (average < 4), spend the click budget on the target items
//     (each ≥ T_click), and add light camouflage clicks on random normal
//     items. Target items additionally attract a trickle of organic
//     clicks (challenge (4) of Section I).
//
// Every generated dataset carries complete ground-truth labels, replacing
// the paper's expert labeling.
package synth

// Config controls dataset generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal configs generate equal datasets.
	Seed int64

	// NumUsers and NumItems size the normal population. Attackers and
	// target items are appended after these ID ranges, so normal users
	// have IDs < NumUsers and normal items have IDs < NumItems.
	NumUsers int
	NumItems int

	// UserActivityAlpha is the Pareto tail exponent of per-user click
	// event counts. Smaller values mean heavier tails. Must be > 1.
	UserActivityAlpha float64
	// UserActivityMin is the minimum number of click events per user.
	UserActivityMin float64

	// ItemZipfS and ItemZipfV parametrize the Zipf item-popularity
	// distribution P(rank k) ∝ (v+k)^(-s).
	ItemZipfS float64
	ItemZipfV float64

	// Confusers configures the innocent heavy-click populations that make
	// detection non-trivial.
	Confusers ConfuserConfig

	// Attack configures the implanted groups.
	Attack AttackConfig
}

// ConfuserConfig describes innocent behaviors that superficially resemble
// crowd-worker clicks — the reason naive screening is not enough on real
// data. Confusers are NOT labeled abnormal; detectors that flag them pay in
// precision.
type ConfuserConfig struct {
	// FanFraction of normal users are loyal fans: each picks a few
	// favorite ordinary items and re-clicks them heavily (re-buys,
	// wishlist revisits).
	FanFraction float64
	// FanItemsMax bounds a fan's favorite-item count (≥ 1).
	FanItemsMax int
	// FanClicksMin/Max bound clicks per favorite item.
	FanClicksMin, FanClicksMax int

	// GroupBuys is the number of group-buying events: a crowd of normal
	// users simultaneously hammering ONE item (the benign phenomenon
	// desired property 4b protects via the k₂ group-size bound).
	GroupBuys int
	// GroupBuyUsersMin/Max bound the crowd size per event.
	GroupBuyUsersMin, GroupBuyUsersMax int
	// GroupBuyClicksMin/Max bound clicks per participant.
	GroupBuyClicksMin, GroupBuyClicksMax int
}

// AttackConfig controls the "Ride Item's Coattails" attack injector.
type AttackConfig struct {
	// Groups is the number of independent attack groups to implant.
	Groups int

	// AttackersMin/Max bound the crowd-worker head count per group.
	AttackersMin, AttackersMax int
	// TargetsMin/Max bound the number of target items per group.
	TargetsMin, TargetsMax int
	// HotMin/Max bound the number of hot items each group rides.
	HotMin, HotMax int

	// TargetClicksMin/Max bound an attacker's clicks on one target item
	// (the paper's analysis: spend the budget here; compare T_click=12).
	TargetClicksMin, TargetClicksMax int
	// HotClicksMax bounds an attacker's clicks on one hot item (paper:
	// average < 4; optimal strategy is 1).
	HotClicksMax int

	// CamouflageItemsMin/Max bound the random normal items an attacker
	// clicks to disguise, with 1..CamouflageClicksMax clicks each.
	CamouflageItemsMin, CamouflageItemsMax int
	CamouflageClicksMax                    int

	// Participation is the probability an attacker clicks any given
	// target of its group; < 1 makes groups near-bicliques rather than
	// perfect bicliques.
	Participation float64

	// OrganicClickers is the expected number of normal users who click a
	// target item organically (the "normal users attracted by deceptive
	// items" of Section I).
	OrganicClickers int

	// AgencyLoyalty is the probability that an attacker account belongs
	// to its group's dominant crowdsourcing agency; the case study
	// (Section VII) reports ≥ 85% of caught accounts are associated.
	AgencyLoyalty float64

	// HotPoolSize is how many of the most-clicked items attacks may ride.
	// Keeping it small guarantees ridden items are genuinely hot under
	// the experiments' T_hot settings; 0 means max(3×HotMax, 12).
	HotPoolSize int

	// CampaignGroups of the Groups are mega-campaigns: crews of about
	// CampaignAttackers accounts whose targets accumulate enough fake
	// clicks to cross a low hot threshold. They reproduce the paper's
	// Fig 9e observation that T_hot = 1,000 misclassifies heavily
	// attacked targets as hot items and loses their groups.
	CampaignGroups    int
	CampaignAttackers int
}

// DefaultConfig is the paper's dataset at 1:1000 scale: 20k users, 4k items,
// ~90k edges, ~220k clicks, with 8 implanted attack groups.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumUsers:          20000,
		NumItems:          4000,
		UserActivityAlpha: 1.9,
		UserActivityMin:   4.0,
		ItemZipfS:         1.15,
		ItemZipfV:         3.0,
		Confusers: ConfuserConfig{
			FanFraction:       0.03,
			FanItemsMax:       3,
			FanClicksMin:      8,
			FanClicksMax:      18,
			GroupBuys:         5,
			GroupBuyUsersMin:  30,
			GroupBuyUsersMax:  60,
			GroupBuyClicksMin: 8,
			GroupBuyClicksMax: 16,
		},
		Attack: AttackConfig{
			Groups: 8,
			// Wide head-count spread: small crews barely above k₁ up to
			// heavy campaigns whose targets accumulate enough clicks to
			// cross a low T_hot — the effect behind Fig 9e, where a
			// too-low hot threshold misclassifies heavily-attacked
			// targets as hot items and loses their groups.
			AttackersMin:       8,
			AttackersMax:       55,
			TargetsMin:         12,
			TargetsMax:         18,
			HotMin:             2,
			HotMax:             3,
			TargetClicksMin:    8,
			TargetClicksMax:    24,
			HotClicksMax:       3,
			CamouflageItemsMin: 2,
			CamouflageItemsMax: 5,
			CamouflageClicksMax: 2,
			Participation:      0.95,
			OrganicClickers:    6,
			AgencyLoyalty:      0.88,
			CampaignGroups:     1,
			CampaignAttackers:  110,
		},
	}
}

// SmallConfig is a fast configuration for unit tests and examples: 1:10 of
// DefaultConfig with 3 attack groups. Group head counts and click budgets
// are trimmed so that attack-inflated target items stay clearly below the
// hot-item range of this smaller marketplace (use THot ≈ 400 with it).
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumUsers = 2000
	c.NumItems = 400
	c.Attack.Groups = 3
	c.Attack.AttackersMin = 13
	c.Attack.AttackersMax = 18
	c.Attack.TargetsMin = 12
	c.Attack.TargetClicksMin = 12 // keep unit-test detection robust
	c.Attack.TargetClicksMax = 20
	c.Attack.HotPoolSize = 8
	c.Attack.CampaignGroups = 0
	return c
}
