package synth

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.Len() != b.Table.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Table.Len(), b.Table.Len())
	}
	for i := 0; i < a.Table.Len(); i++ {
		if a.Table.Row(i) != b.Table.Row(i) {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Table.Row(i), b.Table.Row(i))
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := SmallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	same := a.Table.Len() == b.Table.Len()
	if same {
		for i := 0; i < a.Table.Len(); i++ {
			if a.Table.Row(i) != b.Table.Row(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumUsers = 0 },
		func(c *Config) { c.NumItems = -1 },
		func(c *Config) { c.UserActivityAlpha = 1.0 },
		func(c *Config) { c.ItemZipfS = 0.9 },
		func(c *Config) { c.Attack.AttackersMin = 0 },
		func(c *Config) { c.Attack.AttackersMax = c.Attack.AttackersMin - 1 },
		func(c *Config) { c.Attack.TargetsMin = 0 },
		func(c *Config) { c.Attack.HotMin = 0 },
		func(c *Config) { c.Attack.TargetClicksMin = 0 },
		func(c *Config) { c.Attack.Participation = 0 },
		func(c *Config) { c.Attack.Participation = 1.5 },
	}
	for i, mutate := range bad {
		cfg := SmallConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestBackgroundStatisticsNearPaper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Attack.Groups = 0 // background only
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := clicktable.ComputeStats(ds.Table)
	// The paper's Table II: Avg_clk = 11.35, Avg_cnt = 4.32 for users.
	// The generator targets those shapes loosely.
	if stats.User.AvgClicks < 5 || stats.User.AvgClicks > 25 {
		t.Errorf("User.AvgClicks = %v, want within [5,25] (paper: 11.35)", stats.User.AvgClicks)
	}
	if stats.User.AvgCount < 2 || stats.User.AvgCount > 12 {
		t.Errorf("User.AvgCount = %v, want within [2,12] (paper: 4.32)", stats.User.AvgCount)
	}
	// Item stdev far exceeds user stdev (paper: 992 vs 33).
	if stats.Item.StdevClicks < 3*stats.User.StdevClicks {
		t.Errorf("Item.StdevClicks = %v not ≫ User.StdevClicks = %v",
			stats.Item.StdevClicks, stats.User.StdevClicks)
	}
}

func TestBackgroundHeavyTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Attack.Groups = 0
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	share := bipartite.TopClickShare(ds.Graph, bipartite.ItemSide, 0.2)
	if share < 0.6 {
		t.Errorf("top-20%% item click share = %v, want ≥ 0.6 (Pareto principle)", share)
	}
	gini := bipartite.GiniClicks(ds.Graph, bipartite.ItemSide)
	if gini < 0.5 {
		t.Errorf("item Gini = %v, want ≥ 0.5", gini)
	}
}

func TestInjectedIDRanges(t *testing.T) {
	ds := testDataset(t)
	for u := range ds.Truth.Users {
		if int(u) < ds.NumNormalUsers {
			t.Errorf("attacker %d inside normal user ID range", u)
		}
	}
	for v := range ds.Truth.Items {
		if int(v) < ds.NumNormalItems {
			t.Errorf("target item %d inside normal item ID range", v)
		}
	}
}

func TestInjectedGroupsMatchLabels(t *testing.T) {
	ds := testDataset(t)
	users := 0
	items := 0
	for _, g := range ds.Groups {
		users += len(g.Attackers)
		items += len(g.Targets)
		for _, u := range g.Attackers {
			if !ds.Truth.Users[u] {
				t.Errorf("attacker %d not labeled", u)
			}
		}
		for _, v := range g.Targets {
			if !ds.Truth.Items[v] {
				t.Errorf("target %d not labeled", v)
			}
		}
		for _, h := range g.HotItems {
			if ds.Truth.Items[h] {
				t.Errorf("hot item %d wrongly labeled as target", h)
			}
		}
		if len(g.Agency) != len(g.Attackers) {
			t.Errorf("agency list length %d != attackers %d", len(g.Agency), len(g.Attackers))
		}
	}
	if users != len(ds.Truth.Users) || items != len(ds.Truth.Items) {
		t.Errorf("groups carry %d users / %d items, labels have %d / %d",
			users, items, len(ds.Truth.Users), len(ds.Truth.Items))
	}
}

func TestGroupSizesWithinBounds(t *testing.T) {
	ds := testDataset(t)
	a := ds.Config.Attack
	if len(ds.Groups) != a.Groups {
		t.Fatalf("got %d groups, want %d", len(ds.Groups), a.Groups)
	}
	for i, g := range ds.Groups {
		if i < a.CampaignGroups {
			lo, hi := a.CampaignAttackers*9/10, a.CampaignAttackers*11/10
			if n := len(g.Attackers); n < lo || n > hi {
				t.Errorf("campaign group %d: %d attackers, want [%d,%d]", i, n, lo, hi)
			}
		} else if n := len(g.Attackers); n < a.AttackersMin || n > a.AttackersMax {
			t.Errorf("group %d: %d attackers, want [%d,%d]", i, n, a.AttackersMin, a.AttackersMax)
		}
		if n := len(g.Targets); n < a.TargetsMin || n > a.TargetsMax {
			t.Errorf("group %d: %d targets, want [%d,%d]", i, n, a.TargetsMin, a.TargetsMax)
		}
		if n := len(g.HotItems); n < a.HotMin || n > a.HotMax {
			t.Errorf("group %d: %d hot items, want [%d,%d]", i, n, a.HotMin, a.HotMax)
		}
	}
}

func TestAttackerClickPattern(t *testing.T) {
	ds := testDataset(t)
	a := ds.Config.Attack
	g := ds.Graph
	for _, grp := range ds.Groups {
		for _, u := range grp.Attackers {
			// Hot clicks small (paper: avg < 4, optimal strategy 1).
			var hotClicks, hotEdges int
			for _, h := range grp.HotItems {
				if w := g.Weight(u, h); w > 0 {
					hotClicks += int(w)
					hotEdges++
					if int(w) > a.HotClicksMax {
						t.Errorf("attacker %d clicked hot %d %d times > max %d", u, h, w, a.HotClicksMax)
					}
				}
			}
			if hotEdges == 0 {
				t.Errorf("attacker %d has no hot-item edge", u)
			}
			if hotEdges > 0 && float64(hotClicks)/float64(hotEdges) >= 4 {
				t.Errorf("attacker %d: avg hot clicks %v ≥ 4", u, float64(hotClicks)/float64(hotEdges))
			}
			// Target clicks within the configured budget band.
			participated := 0
			for _, target := range grp.Targets {
				w := int(g.Weight(u, target))
				if w == 0 {
					continue
				}
				participated++
				if w < a.TargetClicksMin || w > a.TargetClicksMax {
					t.Errorf("attacker %d clicked target %d %d times, want [%d,%d]",
						u, target, w, a.TargetClicksMin, a.TargetClicksMax)
				}
			}
			if participated == 0 {
				t.Errorf("attacker %d clicked no targets", u)
			}
		}
	}
}

func TestTargetsDrawOrganicTraffic(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	organic := 0
	for _, grp := range ds.Groups {
		for _, target := range grp.Targets {
			g.EachItemNeighbor(target, func(u bipartite.NodeID, _ uint32) bool {
				if int(u) < ds.NumNormalUsers {
					organic++
				}
				return true
			})
		}
	}
	if organic == 0 {
		t.Error("no organic clicks on any target item; challenge (4) not reproduced")
	}
}

func TestAgencyLoyaltyNearConfig(t *testing.T) {
	cfg := DefaultConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loyal, total := 0, 0
	for _, grp := range ds.Groups {
		counts := map[int]int{}
		for _, ag := range grp.Agency {
			counts[ag]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		loyal += best
		total += len(grp.Agency)
	}
	frac := float64(loyal) / float64(total)
	if frac < cfg.Attack.AgencyLoyalty-0.15 {
		t.Errorf("agency loyalty = %v, want near %v", frac, cfg.Attack.AgencyLoyalty)
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic on bad config")
		}
	}()
	cfg := SmallConfig()
	cfg.NumUsers = 0
	MustGenerate(cfg)
}
