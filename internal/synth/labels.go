package synth

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/detect"
)

// Ground-truth label interchange format: a CSV with header "kind,id,group";
// kind is "user" or "item", id the node ID, group the zero-based injected-
// group index. cmd/synthgen writes it, cmd/ricd consumes it for evaluation.

var labelHeader = []string{"kind", "id", "group"}

// WriteLabels writes the dataset's ground truth in the label CSV format.
func WriteLabels(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(labelHeader); err != nil {
		return fmt.Errorf("synth: write label header: %w", err)
	}
	rec := make([]string, 3)
	for gi, grp := range ds.Groups {
		for _, u := range grp.Attackers {
			rec[0], rec[1], rec[2] = "user", strconv.FormatUint(uint64(u), 10), strconv.Itoa(gi)
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("synth: write label: %w", err)
			}
		}
		for _, v := range grp.Targets {
			rec[0], rec[1], rec[2] = "item", strconv.FormatUint(uint64(v), 10), strconv.Itoa(gi)
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("synth: write label: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("synth: flush labels: %w", err)
	}
	return bw.Flush()
}

// ReadLabels reads ground truth in the label CSV format. The group column
// is returned as a parallel structure: groups[gi] lists the node IDs of
// group gi, in file order.
func ReadLabels(r io.Reader) (*detect.Labels, []detect.Group, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true

	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("synth: empty label input: missing header row %q", strings.Join(labelHeader, ","))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("synth: read label header: %w", err)
	}
	for i, want := range labelHeader {
		if hdr[i] != want {
			return nil, nil, fmt.Errorf("synth: bad label header column %d: got %q, want %q", i, hdr[i], want)
		}
	}

	labels := detect.NewLabels()
	groupsByIdx := map[int]*detect.Group{}
	maxIdx := -1
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("synth: labels line %d: %w", line, err)
		}
		id, err := parseUint32("labels", line, "id", rec[1])
		if err != nil {
			return nil, nil, err
		}
		gi, err := strconv.Atoi(rec[2])
		if err != nil || gi < 0 {
			return nil, nil, fmt.Errorf("synth: labels line %d: bad group %q (must be a zero-based group index)", line, rec[2])
		}
		grp := groupsByIdx[gi]
		if grp == nil {
			grp = &detect.Group{}
			groupsByIdx[gi] = grp
		}
		if gi > maxIdx {
			maxIdx = gi
		}
		switch rec[0] {
		case "user":
			labels.Users[id] = true
			grp.Users = append(grp.Users, id)
		case "item":
			labels.Items[id] = true
			grp.Items = append(grp.Items, id)
		default:
			return nil, nil, fmt.Errorf("synth: labels line %d: bad kind %q", line, rec[0])
		}
	}
	groups := make([]detect.Group, maxIdx+1)
	for gi, grp := range groupsByIdx {
		groups[gi] = *grp
	}
	return labels, groups, nil
}
