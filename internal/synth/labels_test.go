package synth

import (
	"bytes"
	"strings"
	"testing"
)

func TestLabelsRoundTrip(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	var buf bytes.Buffer
	if err := WriteLabels(&buf, ds); err != nil {
		t.Fatal(err)
	}
	labels, groups, err := ReadLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels.Users) != len(ds.Truth.Users) || len(labels.Items) != len(ds.Truth.Items) {
		t.Fatalf("label counts = %d/%d, want %d/%d",
			len(labels.Users), len(labels.Items), len(ds.Truth.Users), len(ds.Truth.Items))
	}
	for u := range ds.Truth.Users {
		if !labels.Users[u] {
			t.Errorf("user %d lost in round trip", u)
		}
	}
	if len(groups) != len(ds.Groups) {
		t.Fatalf("got %d groups, want %d", len(groups), len(ds.Groups))
	}
	for gi, grp := range groups {
		if len(grp.Users) != len(ds.Groups[gi].Attackers) {
			t.Errorf("group %d: %d users, want %d", gi, len(grp.Users), len(ds.Groups[gi].Attackers))
		}
		if len(grp.Items) != len(ds.Groups[gi].Targets) {
			t.Errorf("group %d: %d items, want %d", gi, len(grp.Items), len(ds.Groups[gi].Targets))
		}
	}
}

func TestReadLabelsRejectsBadInput(t *testing.T) {
	cases := []string{
		"a,b,c\n",                         // bad header
		"kind,id,group\nuser,x,0\n",       // bad id
		"kind,id,group\nuser,1,x\n",       // bad group
		"kind,id,group\nuser,1,-1\n",      // negative group
		"kind,id,group\nwidget,1,0\n",     // bad kind
		"kind,id,group\nuser,1\n",         // short row
		"kind,id,group\nuser,1,0,extra\n", // long row
	}
	for _, c := range cases {
		if _, _, err := ReadLabels(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestReadLabelsEmptyBody(t *testing.T) {
	labels, groups, err := ReadLabels(strings.NewReader("kind,id,group\n"))
	if err != nil {
		t.Fatal(err)
	}
	if labels.NumAbnormal() != 0 || len(groups) != 0 {
		t.Errorf("empty labels = %d abnormal, %d groups", labels.NumAbnormal(), len(groups))
	}
}
