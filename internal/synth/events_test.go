package synth

import (
	"testing"

	"repro/internal/clicktable"
)

func TestEventStreamConservesClicks(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	events, err := EventStream(ds, DefaultEventStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := EventsToTable(events, DefaultEventStreamConfig().Days)
	if full.Scale() != ds.Table.Scale() {
		t.Errorf("aggregated stream scale %+v != dataset scale %+v",
			full.Scale(), ds.Table.Scale())
	}
	// Per-pair weights must match exactly.
	want := map[uint64]uint32{}
	ds.Table.Each(func(r clicktable.Record) bool {
		want[uint64(r.UserID)<<32|uint64(r.ItemID)] += r.Clicks
		return true
	})
	full.Each(func(r clicktable.Record) bool {
		key := uint64(r.UserID)<<32 | uint64(r.ItemID)
		if want[key] != r.Clicks {
			t.Errorf("pair (%d,%d): %d clicks, want %d", r.UserID, r.ItemID, r.Clicks, want[key])
		}
		return true
	})
}

func TestEventStreamDayOrderedAndBounded(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	cfg := DefaultEventStreamConfig()
	events, err := EventStream(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, e := range events {
		if e.Day < prev {
			t.Fatal("events not day-ordered")
		}
		prev = e.Day
		if e.Day < 1 || e.Day > cfg.Days {
			t.Fatalf("event day %d outside window", e.Day)
		}
	}
}

func TestEventStreamAttackRespectsStartDay(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	cfg := DefaultEventStreamConfig()
	events, err := EventStream(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perDay [16]uint64
	for _, e := range events {
		if int(e.UserID) >= ds.NumNormalUsers {
			if e.Day < cfg.AttackStartDay {
				t.Fatalf("attack event on day %d before start day %d", e.Day, cfg.AttackStartDay)
			}
			perDay[e.Day] += uint64(e.Clicks)
		}
	}
	// Attack volume must ramp: last day carries more than the first.
	if perDay[cfg.Days] <= perDay[cfg.AttackStartDay] {
		t.Errorf("attack volume not ramping: day %d = %d, day %d = %d",
			cfg.AttackStartDay, perDay[cfg.AttackStartDay], cfg.Days, perDay[cfg.Days])
	}
}

func TestEventStreamDeterministic(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	a, err := EventStream(ds, DefaultEventStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EventStream(ds, DefaultEventStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEventStreamValidation(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	if _, err := EventStream(ds, EventStreamConfig{Days: 0, AttackStartDay: 1}); err == nil {
		t.Error("expected Days error")
	}
	if _, err := EventStream(ds, EventStreamConfig{Days: 5, AttackStartDay: 9}); err == nil {
		t.Error("expected AttackStartDay error")
	}
}

func TestEventsToTablePrefix(t *testing.T) {
	events := []Event{
		{Day: 1, UserID: 1, ItemID: 1, Clicks: 2},
		{Day: 2, UserID: 1, ItemID: 1, Clicks: 3},
		{Day: 3, UserID: 2, ItemID: 2, Clicks: 1},
	}
	tbl := EventsToTable(events, 2)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (aggregated)", tbl.Len())
	}
	if r := tbl.Row(0); r.Clicks != 5 {
		t.Errorf("clicks = %d, want 5", r.Clicks)
	}
}
