package synth

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventStream(b *testing.B) {
	ds := MustGenerate(SmallConfig())
	cfg := DefaultEventStreamConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EventStream(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	ds := MustGenerate(SmallConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table.Aggregate()
	}
}
