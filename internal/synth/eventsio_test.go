package synth

import (
	"bytes"
	"strings"
	"testing"
)

func TestEventsCSVRoundTrip(t *testing.T) {
	ds := MustGenerate(SmallConfig())
	events, err := EventStream(ds, DefaultEventStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReadEventsRejectsBadInput(t *testing.T) {
	cases := []string{
		"a,b,c,d\n",
		"day,user_id,item_id,click\nx,1,1,1\n",
		"day,user_id,item_id,click\n0,1,1,1\n",           // day < 1
		"day,user_id,item_id,click\n2,1,1,1\n1,1,1,1\n",  // out of order
		"day,user_id,item_id,click\n1,x,1,1\n",
		"day,user_id,item_id,click\n1,1,x,1\n",
		"day,user_id,item_id,click\n1,1,1,x\n",
		"day,user_id,item_id,click\n1,1,1\n",
	}
	for _, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestReadEventsEmpty(t *testing.T) {
	got, err := ReadEvents(strings.NewReader("day,user_id,item_id,click\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d events", len(got))
	}
}

func TestReadEventsErrorDiagnostics(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "missing header row"},
		{"day,user_id,item_id,click\n1,99999999999,1,1\n", "out of range for uint32"},
		{"day,user_id,item_id,click\n1,-3,1,1\n", "negative"},
		{"day,user_id,item_id,click\n1,1,1,x\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := ReadEvents(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("no error for %q", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error for %q = %q, want it to mention %q", tc.in, err, tc.want)
		}
	}
}
