package synth

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/clicktable"
)

// LoadConfig reads a Config from JSON. Unknown fields are rejected so
// typos in experiment configs fail loudly instead of silently running the
// defaults.
func LoadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("synth: decode config: %w", err)
	}
	return cfg, nil
}

// SaveConfig writes a Config as indented JSON.
func SaveConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cfg); err != nil {
		return fmt.Errorf("synth: encode config: %w", err)
	}
	return nil
}

// Metadata is the reproducibility sidecar written next to a generated
// dataset: the exact configuration plus the realized scale and statistics.
type Metadata struct {
	Config Config           `json:"config"`
	Scale  clicktable.Scale `json:"scale"`
	Stats  clicktable.Stats `json:"stats"`
	Attack AttackMetadata   `json:"attack"`
}

// AttackMetadata summarizes the implanted ground truth.
type AttackMetadata struct {
	Groups        int `json:"groups"`
	AbnormalUsers int `json:"abnormal_users"`
	AbnormalItems int `json:"abnormal_items"`
}

// BuildMetadata assembles the sidecar for a generated dataset.
func BuildMetadata(ds *Dataset) Metadata {
	return Metadata{
		Config: ds.Config,
		Scale:  ds.Table.Scale(),
		Stats:  clicktable.ComputeStats(ds.Table),
		Attack: AttackMetadata{
			Groups:        len(ds.Groups),
			AbnormalUsers: len(ds.Truth.Users),
			AbnormalItems: len(ds.Truth.Items),
		},
	}
}

// SaveMetadata writes the sidecar as indented JSON.
func SaveMetadata(w io.Writer, md Metadata) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(md); err != nil {
		return fmt.Errorf("synth: encode metadata: %w", err)
	}
	return nil
}

// LoadMetadata reads a sidecar.
func LoadMetadata(r io.Reader) (Metadata, error) {
	var md Metadata
	if err := json.NewDecoder(r).Decode(&md); err != nil {
		return md, fmt.Errorf("synth: decode metadata: %w", err)
	}
	return md, nil
}
