package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// ScalePoint is one dataset-size sample of the X7 scaling study.
type ScalePoint struct {
	Users, Items, Edges int
	Elapsed             time.Duration
	Eval                metrics.Eval
}

// RunScale (X7) measures RICD end-to-end across dataset scales, supporting
// desired property (1) — "applicable to large e-commerce graphs". Each
// scale keeps the paper's 5:1 user:item ratio and the same attack mix, so
// elapsed time growth reflects the algorithm, not a shifting workload.
func RunScale(p Params, userCounts []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, users := range userCounts {
		cfg := p.Dataset
		cfg.NumUsers = users
		cfg.NumItems = users / 5
		ds, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		d := &core.Detector{Params: p.Detection}
		start := time.Now()
		res, err := d.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Users:   ds.Graph.NumUsers(),
			Items:   ds.Graph.NumItems(),
			Edges:   ds.Graph.LiveEdges(),
			Elapsed: time.Since(start),
			Eval:    metrics.Evaluate(res, ds.Truth),
		})
	}
	return out, nil
}

// Scale renders the X7 artifact.
func Scale(p Params) (Report, error) {
	points, err := RunScale(p, []int{5000, 10000, 20000, 40000})
	if err != nil {
		return Report{}, err
	}
	var rows [][]string
	var times []float64
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprint(pt.Users), fmt.Sprint(pt.Items), fmt.Sprint(pt.Edges),
			pt.Elapsed.Round(time.Millisecond).String(),
			f3(pt.Eval.Precision), f3(pt.Eval.Recall),
		})
		times = append(times, float64(pt.Elapsed))
	}
	var b strings.Builder
	b.WriteString(table([]string{"users", "items", "edges", "elapsed", "P", "R"}, rows))
	fmt.Fprintf(&b, "elapsed shape: %s\n", sparkline(times))
	b.WriteString("(desired property (1): quality holds as the graph grows; cost rises\n" +
		" superlinearly because the square-pruning stage dominates — consistent\n" +
		" with the paper's complexity analysis O((|U|+|V|)(|V||U|+1)+|E|)\n" +
		" (Section V-D), which is why the paper parallelizes it across 16 Grape\n" +
		" workers at Taobao scale)\n")
	return Report{ID: "X7", Title: "Extension — scaling study", Text: b.String()}, nil
}
