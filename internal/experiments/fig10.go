package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/i2i"
	"repro/internal/synth"
)

// Figure10Result carries the case-study artifacts: the simulated traffic
// timeline and the account-association statistic of the caught group.
type Figure10Result struct {
	Timeline []i2i.TrafficPoint
	// AssociationShare is the fraction of caught accounts associated with
	// the group's dominant crowdsourcing agency (paper: > 85%).
	AssociationShare float64
	// CaughtUsers and CaughtItems size the detected group.
	CaughtUsers, CaughtItems int
}

// RunFigure10 reproduces the Section VII case study: simulate the
// campaign-window traffic of a target item (Fig 10), run RICD on the
// dataset, and verify the account-association evidence on the best-scored
// caught group.
func RunFigure10(p Params) (Figure10Result, error) {
	var out Figure10Result

	timeline, err := i2i.SimulateCampaign(i2i.DefaultCampaignConfig())
	if err != nil {
		return out, err
	}
	out.Timeline = timeline

	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return out, err
	}
	d := &core.Detector{Params: p.Detection}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		return out, err
	}
	if len(res.Groups) == 0 {
		return out, fmt.Errorf("experiments: case study found no groups")
	}
	caught := res.Groups[0] // highest risk score
	out.CaughtUsers = len(caught.Users)
	out.CaughtItems = len(caught.Items)

	// Account association: among caught users that are true attackers,
	// measure the share belonging to their group's dominant agency.
	agencyOf := map[uint32]int{}
	for _, grp := range ds.Groups {
		for i, u := range grp.Attackers {
			agencyOf[u] = grp.Agency[i]
		}
	}
	counts := map[int]int{}
	total := 0
	for _, u := range caught.Users {
		if ag, ok := agencyOf[u]; ok {
			counts[ag]++
			total++
		}
	}
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	if total > 0 {
		out.AssociationShare = float64(best) / float64(total)
	}
	return out, nil
}

// Figure10 renders the case study.
func Figure10(p Params) (Report, error) {
	r, err := RunFigure10(p)
	if err != nil {
		return Report{}, err
	}
	rows := make([][]string, 0, len(r.Timeline))
	var totals []float64
	for _, pt := range r.Timeline {
		rows = append(rows, []string{
			fmt.Sprint(pt.Day),
			f2(pt.Normal), f2(pt.Abnormal), f2(pt.Total()),
			fmt.Sprintf("%.4f", pt.I2IScore),
		})
		totals = append(totals, pt.Total())
	}
	var b strings.Builder
	b.WriteString(table([]string{"day", "normal", "abnormal", "total", "I2I-score"}, rows))
	fmt.Fprintf(&b, "traffic shape: %s\n", sparkline(totals))
	b.WriteString("(attack ramps before the campaign, organic traffic surges days 6-9,\n" +
		" detection on day 9 cleans fake clicks, traffic normalizes day 10, delisting day 13)\n\n")
	fmt.Fprintf(&b, "caught group: %d accounts, %d target items; ", r.CaughtUsers, r.CaughtItems)
	fmt.Fprintf(&b, "account-association share = %.0f%% (paper: >85%%)\n", 100*r.AssociationShare)
	return Report{ID: "F10", Title: "Figure 10 — case study", Text: b.String()}, nil
}
