package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines/catchsync"
	"repro/internal/baselines/quasi"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/riskcontrol"
	"repro/internal/synth"
)

// RelatedWorkRow is one detector's outcome in the X8 comparison.
type RelatedWorkRow struct {
	Name    string
	Eval    metrics.Eval
	Groups  int
	Elapsed time.Duration
}

// RunRelatedWork (X8) evaluates the Section II related-work approaches the
// paper argues are NOT directly applicable — maximum quasi-biclique search
// (outputs a single block), CATCHSYNC-style synchronized-behavior detection
// (no group structure, camouflage-fragile), and the platform's rule-based
// risk control (blind to budgeted attacks) — against RICD on the same
// workload, raw (no +UI screening), so each approach's intrinsic behavior
// is visible.
func RunRelatedWork(p Params) ([]RelatedWorkRow, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}
	dets := []detect.Detector{
		&core.Detector{Params: p.Detection},
		quasi.DefaultDetector(p.Detection.K1, p.Detection.K2),
		catchsync.DefaultDetector(),
		&riskcontrol.Detector{Rules: riskcontrol.DefaultRules()},
	}
	var rows []RelatedWorkRow
	for _, d := range dets {
		res, err := d.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RelatedWorkRow{
			Name:    d.Name(),
			Eval:    metrics.Evaluate(res, ds.Truth),
			Groups:  len(res.Groups),
			Elapsed: res.Elapsed,
		})
	}
	return rows, nil
}

// RelatedWork renders the X8 artifact.
func RelatedWork(p Params) (Report, error) {
	rows, err := RunRelatedWork(p)
	if err != nil {
		return Report{}, err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			f3(r.Eval.Precision), f3(r.Eval.Recall), f3(r.Eval.F1),
			fmt.Sprint(r.Groups),
			r.Elapsed.Round(time.Millisecond).String(),
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"detector", "P", "R", "F1", "groups", "elapsed"}, out))
	b.WriteString("\n(Section II's case that related work is not directly applicable:\n" +
		" maximum quasi-biclique search outputs ONE block and misses the other\n" +
		" groups; CATCHSYNC flags synchronized users without group structure and\n" +
		" degrades under camouflage; rule-based risk control never sees a\n" +
		" budgeted attack at all.)\n")
	return Report{ID: "X8", Title: "Extension — related-work detectors", Text: b.String()}, nil
}
