package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// SensitivityPoint is one sweep sample of Fig 9.
type SensitivityPoint struct {
	Value float64
	Eval  metrics.Eval
}

// SensitivitySweep is one panel of Fig 9 (one parameter swept, others at
// the Fig 9 defaults).
type SensitivitySweep struct {
	Param  string
	Points []SensitivityPoint
}

// fig9Defaults are the paper's sensitivity-analysis defaults: k₁ = k₂ = 10,
// α = 1.0, T_click = 12, T_hot = 2,000.
func fig9Defaults(p core.Params) core.Params {
	p.K1, p.K2 = 10, 10
	p.Alpha = 1.0
	p.TClick = 12
	p.THot = 2000
	return p
}

// RunFigure9 sweeps the five parameters of Fig 9a–9e.
func RunFigure9(p Params) ([]SensitivitySweep, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}
	base := fig9Defaults(p.Detection)

	run := func(mutate func(*core.Params, float64), values []float64, name string) (SensitivitySweep, error) {
		sw := SensitivitySweep{Param: name}
		for _, val := range values {
			params := base
			mutate(&params, val)
			d := &core.Detector{Params: params}
			res, err := d.Detect(ds.Graph)
			if err != nil {
				return sw, fmt.Errorf("%s=%v: %w", name, val, err)
			}
			sw.Points = append(sw.Points, SensitivityPoint{
				Value: val,
				Eval:  metrics.Evaluate(res, ds.Truth),
			})
		}
		return sw, nil
	}

	sweeps := []struct {
		name   string
		values []float64
		mutate func(*core.Params, float64)
	}{
		{"k1", []float64{5, 10, 15, 20}, func(p *core.Params, v float64) { p.K1 = int(v) }},
		{"k2", []float64{5, 10, 15, 20}, func(p *core.Params, v float64) { p.K2 = int(v) }},
		{"alpha", []float64{0.7, 0.8, 0.9, 1.0}, func(p *core.Params, v float64) { p.Alpha = v }},
		{"T_click", []float64{10, 12, 14, 16}, func(p *core.Params, v float64) { p.TClick = uint32(v) }},
		{"T_hot", []float64{1000, 2000, 3000, 4000}, func(p *core.Params, v float64) { p.THot = uint64(v) }},
	}
	var out []SensitivitySweep
	for _, s := range sweeps {
		sw, err := run(s.mutate, s.values, s.name)
		if err != nil {
			return nil, err
		}
		out = append(out, sw)
	}
	return out, nil
}

// Figure9 renders the five sensitivity panels.
func Figure9(p Params) (Report, error) {
	sweeps, err := RunFigure9(p)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	for _, sw := range sweeps {
		fmt.Fprintf(&b, "Fig 9 — sensitivity to %s:\n", sw.Param)
		rows := make([][]string, 0, len(sw.Points))
		var f1s []float64
		for _, pt := range sw.Points {
			rows = append(rows, []string{
				fmt.Sprint(pt.Value),
				f3(pt.Eval.Precision), f3(pt.Eval.Recall), f3(pt.Eval.F1),
			})
			f1s = append(f1s, pt.Eval.F1)
		}
		b.WriteString(table([]string{sw.Param, "P", "R", "F1"}, rows))
		fmt.Fprintf(&b, "F1 shape: %s\n\n", sparkline(f1s))
	}
	b.WriteString("(Paper shape: monotone effects except T_hot, which peaks mid-range;\n" +
		"raising k₁/k₂ trades recall for group-size confidence.)\n")
	return Report{ID: "F9", Title: "Figure 9 — sensitivity analysis", Text: b.String()}, nil
}
