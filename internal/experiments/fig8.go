package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/baselines/cn"
	"repro/internal/baselines/copycatch"
	"repro/internal/baselines/fraudar"
	"repro/internal/baselines/louvain"
	"repro/internal/baselines/lpa"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// Figure8Row is one detector's outcome in the baseline comparison.
type Figure8Row struct {
	Name string
	// Raw is the detector without the screening module.
	Raw metrics.Eval
	// Screened is the "+UI" configuration the paper's Fig 8 reports
	// (the RICD row is the full framework itself).
	Screened metrics.Eval
	// DetectElapsed and ScreenElapsed split the screened run's wall time
	// (Fig 8b's stacking); RawElapsed is the raw run's time.
	RawElapsed    time.Duration
	DetectElapsed time.Duration
	ScreenElapsed time.Duration
}

// detectorSet builds the Fig 8 competitor list: each baseline raw and
// wrapped with the screening module, plus RICD itself.
func detectorSet(p core.Params) []struct {
	raw      detect.Detector
	screened detect.Detector
} {
	wrap := func(d detect.Detector) detect.Detector {
		return &baselines.Screened{Inner: d, Params: p}
	}
	mk := func(d detect.Detector) struct {
		raw      detect.Detector
		screened detect.Detector
	} {
		return struct {
			raw      detect.Detector
			screened detect.Detector
		}{raw: d, screened: wrap(d)}
	}
	ricd := &core.Detector{Params: p}
	ricdRaw := &core.Detector{Params: p, Variant: core.VariantUI}
	return []struct {
		raw      detect.Detector
		screened detect.Detector
	}{
		{raw: ricdRaw, screened: ricd}, // RICD: raw = RICD-UI, screened = full
		mk(lpa.DefaultDetector(p.K1, p.K2)),
		mk(cn.DefaultDetector(p.K1, p.K2)),
		mk(louvain.DefaultDetector(p.K1, p.K2)),
		mk(copycatch.DefaultDetector(p.K1, p.K2)),
		mk(fraudar.DefaultDetector(p.K1, p.K2)),
		mk(&core.NaiveDetector{Params: p}),
	}
}

// RunFigure8 executes the baseline comparison and returns the measured rows.
func RunFigure8(p Params) ([]Figure8Row, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}
	var rows []Figure8Row
	for _, pair := range detectorSet(p.Detection) {
		rawRes, err := pair.raw.Detect(ds.Graph)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pair.raw.Name(), err)
		}
		scrRes, err := pair.screened.Detect(ds.Graph)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pair.screened.Name(), err)
		}
		rows = append(rows, Figure8Row{
			Name:          pair.screened.Name(),
			Raw:           metrics.Evaluate(rawRes, ds.Truth),
			Screened:      metrics.Evaluate(scrRes, ds.Truth),
			RawElapsed:    rawRes.Elapsed,
			DetectElapsed: scrRes.DetectElapsed,
			ScreenElapsed: scrRes.ScreenElapsed,
		})
	}
	return rows, nil
}

// Figure8a renders the precision/recall/F1 comparison.
func Figure8a(p Params) (Report, error) {
	rows, err := RunFigure8(p)
	if err != nil {
		return Report{}, err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			f3(r.Screened.Precision), f3(r.Screened.Recall), f3(r.Screened.F1),
			f3(r.Raw.Precision), f3(r.Raw.Recall), f3(r.Raw.F1),
		})
	}
	var b strings.Builder
	b.WriteString(table(
		[]string{"detector", "P(+UI)", "R(+UI)", "F1(+UI)", "P(raw)", "R(raw)", "F1(raw)"},
		out,
	))
	b.WriteString("\n(+UI columns reproduce Fig 8a; raw columns expose the detection phase alone.\n" +
		"Expected shape: RICD top F1; dense-block methods precise, community methods recall-heavy.)\n")
	return Report{ID: "F8a", Title: "Figure 8a — baseline comparison", Text: b.String()}, nil
}

// Figure8b renders the elapsed-time comparison. As in the paper,
// COPYCATCH and FRAUDAR are excluded (their budgets/implementations make
// wall-clock comparison unfair); detection and UI times are stacked.
func Figure8b(p Params) (Report, error) {
	rows, err := RunFigure8(p)
	if err != nil {
		return Report{}, err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		if r.Name == "COPYCATCH+UI" || r.Name == "FRAUDAR+UI" {
			continue
		}
		total := r.DetectElapsed + r.ScreenElapsed
		out = append(out, []string{
			r.Name,
			r.DetectElapsed.Round(time.Millisecond).String(),
			r.ScreenElapsed.Round(time.Millisecond).String(),
			total.Round(time.Millisecond).String(),
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"detector", "detect", "UI", "total"}, out))
	b.WriteString("\n(Reproduces Fig 8b: detection dominates; Naive fastest; " +
		"RICD cheaper than CN+UI.)\n")
	return Report{ID: "F8b", Title: "Figure 8b — elapsed time", Text: b.String()}, nil
}
