package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// testParams runs the experiments on the fast small dataset so the suite
// stays quick; artifact structure, not absolute values, is under test.
func testParams() Params {
	det := core.DefaultParams()
	det.THot = 400
	return Params{Dataset: synth.SmallConfig(), Detection: det}
}

func TestAllExperimentsRun(t *testing.T) {
	p := testParams()
	for _, e := range All() {
		switch e.ID {
		case "F8a", "F8b", "F9", "X7":
			continue // the heavy ones have dedicated tests below
		}
		r, err := e.Run(p)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if r.ID != e.ID {
			t.Errorf("%s: report ID = %q", e.ID, r.ID)
		}
		if strings.TrimSpace(r.Text) == "" {
			t.Errorf("%s: empty report", e.ID)
		}
	}
}

func TestFindIsCaseInsensitive(t *testing.T) {
	if _, ok := Find("f8a"); !ok {
		t.Error("Find(f8a) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func TestRunFigure8SmallShape(t *testing.T) {
	rows, err := RunFigure8(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d detectors, want 7", len(rows))
	}
	if rows[0].Name != "RICD" {
		t.Errorf("first row = %q, want RICD", rows[0].Name)
	}
	for _, r := range rows {
		if r.Screened.Precision < r.Raw.Precision-1e-9 {
			t.Errorf("%s: screening lowered precision %v → %v",
				r.Name, r.Raw.Precision, r.Screened.Precision)
		}
		if r.DetectElapsed <= 0 {
			t.Errorf("%s: no detect time recorded", r.Name)
		}
	}
	// RICD's F1 must be at least competitive: no detector may beat it by
	// a wide margin on the small dataset.
	best := 0.0
	for _, r := range rows {
		if r.Screened.F1 > best {
			best = r.Screened.F1
		}
	}
	if rows[0].Screened.F1 < best-0.1 {
		t.Errorf("RICD F1 %v not competitive with best %v", rows[0].Screened.F1, best)
	}
}

func TestRunTableVIOrdering(t *testing.T) {
	rows, err := RunTableVI(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d variants, want 3", len(rows))
	}
	if !(rows[0].Name == "RICD-UI" && rows[1].Name == "RICD-I" && rows[2].Name == "RICD") {
		t.Fatalf("variant order: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	if !(rows[2].Eval.Precision >= rows[1].Eval.Precision &&
		rows[1].Eval.Precision >= rows[0].Eval.Precision) {
		t.Errorf("precision not monotone across variants: %v %v %v",
			rows[0].Eval.Precision, rows[1].Eval.Precision, rows[2].Eval.Precision)
	}
	if rows[0].Eval.Recall < rows[2].Eval.Recall-1e-9 {
		t.Errorf("UI recall %v below full recall %v", rows[0].Eval.Recall, rows[2].Eval.Recall)
	}
}

func TestRunFigure9SmallSweeps(t *testing.T) {
	p := testParams()
	sweeps, err := RunFigure9(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 5 {
		t.Fatalf("got %d sweeps, want 5", len(sweeps))
	}
	names := map[string]bool{}
	for _, sw := range sweeps {
		names[sw.Param] = true
		if len(sw.Points) != 4 {
			t.Errorf("%s: %d points, want 4", sw.Param, len(sw.Points))
		}
	}
	for _, want := range []string{"k1", "k2", "alpha", "T_click", "T_hot"} {
		if !names[want] {
			t.Errorf("missing sweep %q", want)
		}
	}
}

func TestRunFigure10CaseStudy(t *testing.T) {
	r, err := RunFigure10(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != 13 {
		t.Errorf("timeline = %d days, want 13", len(r.Timeline))
	}
	if r.CaughtUsers == 0 || r.CaughtItems == 0 {
		t.Error("case study caught nothing")
	}
	if r.AssociationShare < 0.5 {
		t.Errorf("association share = %v, want ≥ 0.5 (paper: >0.85)", r.AssociationShare)
	}
}

func TestRunScaleSmall(t *testing.T) {
	points, err := RunScale(testParams(), []int{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[1].Edges <= points[0].Edges {
		t.Errorf("edges did not grow with users: %d → %d", points[0].Edges, points[1].Edges)
	}
	for _, pt := range points {
		if pt.Elapsed <= 0 {
			t.Error("missing elapsed time")
		}
	}
}

func TestRunIncrementalGrows(t *testing.T) {
	pts, err := RunIncremental(testParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if pts[len(pts)-1].Eval.Recall <= pts[0].Eval.Recall {
		t.Errorf("recall did not grow: day1=%v dayN=%v",
			pts[0].Eval.Recall, pts[len(pts)-1].Eval.Recall)
	}
	if _, err := RunIncremental(testParams(), 0); err == nil {
		t.Error("expected error for days=0")
	}
}

func TestRenderHelpers(t *testing.T) {
	txt := table([]string{"a", "bbb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rendered %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	if s := sparkline([]float64{0, 1, 2, 4}); len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	p := testParams()
	p.Dataset.NumUsers = 0 // invalid
	if _, err := RunAll(p); err == nil {
		t.Error("expected dataset error to propagate")
	}
}

func TestFigure8bExcludesBudgetedDetectors(t *testing.T) {
	r, err := Figure8b(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Text, "COPYCATCH") || strings.Contains(r.Text, "FRAUDAR") {
		t.Error("Fig 8b must exclude COPYCATCH and FRAUDAR, as the paper does")
	}
}

func TestExperimentsFinishQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing check skipped in -short")
	}
	start := time.Now()
	if _, err := TableI(testParams()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("TableI took %v", elapsed)
	}
}
