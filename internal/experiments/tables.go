package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/synth"
)

// TableI reproduces Table I — the scale of the click table (users, items,
// edges, total clicks), next to the paper's numbers for reference.
func TableI(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	s := ds.Table.Scale()
	text := table(
		[]string{"", "User", "Item", "Edge", "Total_click"},
		[][]string{
			{"paper (Taobao)", "20M", "4M", "90M", "200M"},
			{"synthetic", fmt.Sprint(s.Users), fmt.Sprint(s.Items),
				fmt.Sprint(s.Edges), fmt.Sprint(s.TotalClicks)},
		},
	)
	return Report{ID: "T1", Title: "Table I — data scale", Text: text}, nil
}

// TableII reproduces Table II — Avg_clk, Avg_cnt, Stdev per side.
func TableII(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	st := clicktable.ComputeStats(ds.Table)
	text := table(
		[]string{"", "Avg_clk", "Avg_cnt", "Stdev"},
		[][]string{
			{"User (paper)", "11.35", "4.32", "33.34"},
			{"User (synthetic)", f2(st.User.AvgClicks), f2(st.User.AvgCount), f2(st.User.StdevClicks)},
			{"Item (paper)", "54.94", "20.49", "992.78"},
			{"Item (synthetic)", f2(st.Item.AvgClicks), f2(st.Item.AvgCount), f2(st.Item.StdevClicks)},
		},
	)
	return Report{ID: "T2", Title: "Table II — data statistics", Text: text}, nil
}

// TableIII reproduces Table III — part of the click record of a suspect: the
// most active injected attacker's click list, annotated with item totals and
// hotness, showing the crowd-worker signature (hot items touched lightly,
// targets hammered, light camouflage).
func TableIII(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	// Pick the injected attacker with the largest click list.
	var suspect bipartite.NodeID
	bestDeg := -1
	for u := range ds.Truth.Users {
		if d := ds.Graph.UserDegree(u); d > bestDeg {
			bestDeg = d
			suspect = u
		}
	}
	text := clickRecordTable(ds, suspect, p.Detection.THot) +
		fmt.Sprintf("\n(suspect user %d: hot items clicked sparsely, ordinary targets ≥ T_click=%d)\n",
			suspect, p.Detection.TClick)
	return Report{ID: "T3", Title: "Table III — click record of a suspect", Text: text}, nil
}

// TableIV reproduces Table IV — the click record of an ordinary user: the
// busiest normal (unlabeled) user, whose heavy clicks go to hot items.
func TableIV(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	var user bipartite.NodeID
	var bestClicks uint64
	ds.Graph.EachLiveUser(func(u bipartite.NodeID) bool {
		if ds.Truth.Users[u] {
			return true
		}
		if s := ds.Graph.UserStrength(u); s > bestClicks {
			bestClicks = s
			user = u
		}
		return true
	})
	text := clickRecordTable(ds, user, p.Detection.THot) +
		fmt.Sprintf("\n(ordinary user %d: heavy clicks concentrate on hot items)\n", user)
	return Report{ID: "T4", Title: "Table IV — click record of an ordinary user", Text: text}, nil
}

// clickRecordTable renders a user's click list the way Tables III/IV do:
// sequence ID, clicks, the item's total clicks, and its hot flag (against
// the experiments' T_hot). At most the ten heaviest-total items are shown,
// ordered by item total clicks.
func clickRecordTable(ds *synth.Dataset, u bipartite.NodeID, tHot uint64) string {
	type rec struct {
		clicks uint32
		total  uint64
	}
	var recs []rec
	ds.Graph.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
		recs = append(recs, rec{clicks: w, total: ds.Graph.ItemStrength(v)})
		return true
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].total > recs[j].total })
	if len(recs) > 10 {
		recs = recs[:10]
	}
	rows := make([][]string, 0, len(recs))
	for i, r := range recs {
		hot := "0"
		if r.total >= tHot {
			hot = "1"
		}
		rows = append(rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(r.clicks), fmt.Sprint(r.total), hot,
		})
	}
	return table([]string{"ID", "Click", "Total_click", "Hot"}, rows)
}

// TableV reproduces Table V — statistics of a suspicious item and a normal
// item with similar total clicks: clicker count, per-user click mean/stdev/
// max/min, and the share of abnormal users in each click list.
func TableV(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	// Suspicious item: the injected target with the most clicks.
	var suspicious bipartite.NodeID
	var susClicks uint64
	for v := range ds.Truth.Items {
		if s := ds.Graph.ItemStrength(v); s > susClicks {
			susClicks = s
			suspicious = v
		}
	}
	// Normal item: the unlabeled item whose total clicks are closest
	// (< 10% apart per the paper's setup).
	var normal bipartite.NodeID
	bestGap := uint64(1) << 62
	ds.Graph.EachLiveItem(func(v bipartite.NodeID) bool {
		if ds.Truth.Items[v] {
			return true
		}
		s := ds.Graph.ItemStrength(v)
		gap := s - susClicks
		if s < susClicks {
			gap = susClicks - s
		}
		if gap < bestGap {
			bestGap = gap
			normal = v
		}
		return true
	})

	rows := [][]string{
		itemStatRow("suspicious", ds, suspicious),
		itemStatRow("normal", ds, normal),
	}
	text := table([]string{"", "Total_click", "Mean", "Stdev", "User_num", "Max", "Min", "Abnormal%"}, rows)
	return Report{ID: "T5", Title: "Table V — suspicious vs normal item", Text: text}, nil
}

func itemStatRow(label string, ds *synth.Dataset, v bipartite.NodeID) []string {
	var weights []float64
	abnormal := 0
	users := 0
	minW, maxW := uint32(1)<<31, uint32(0)
	ds.Graph.EachItemNeighbor(v, func(u bipartite.NodeID, w uint32) bool {
		weights = append(weights, float64(w))
		users++
		if ds.Truth.Users[u] {
			abnormal++
		}
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
		return true
	})
	var sum, sumSq float64
	for _, w := range weights {
		sum += w
		sumSq += w * w
	}
	mean, stdev := 0.0, 0.0
	if users > 0 {
		mean = sum / float64(users)
		if variance := sumSq/float64(users) - mean*mean; variance > 0 {
			stdev = math.Sqrt(variance)
		}
	}
	if users == 0 {
		minW = 0
	}
	abnormalPct := 0.0
	if users > 0 {
		abnormalPct = 100 * float64(abnormal) / float64(users)
	}
	return []string{
		label,
		fmt.Sprint(ds.Graph.ItemStrength(v)),
		f2(mean),
		f2(stdev),
		fmt.Sprint(users),
		fmt.Sprint(maxW),
		fmt.Sprint(minW),
		f2(abnormalPct),
	}
}

// Figure2 reproduces Fig 2a/2b — the log-binned click distributions of items
// and users, rendered as count tables plus sparklines; both must be heavy-
// tailed.
func Figure2(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	for _, side := range []bipartite.Side{bipartite.ItemSide, bipartite.UserSide} {
		h := bipartite.Histogram(ds.Graph, side)
		rows := make([][]string, 0, len(h.Count))
		var series []float64
		for i := range h.Count {
			lo := "0"
			if i > 0 {
				lo = fmt.Sprintf("[%d,%d)", h.BucketLow[i], h.BucketLow[i]*2)
			}
			rows = append(rows, []string{lo, fmt.Sprint(h.Count[i])})
			series = append(series, float64(h.Count[i]))
		}
		share := bipartite.TopClickShare(ds.Graph, side, 0.2)
		fmt.Fprintf(&b, "Fig 2 (%s side): top-20%% click share = %.3f, Gini = %.3f\n",
			side, share, bipartite.GiniClicks(ds.Graph, side))
		b.WriteString(table([]string{"clicks", "count"}, rows))
		fmt.Fprintf(&b, "shape: %s\n\n", sparkline(series))
	}
	return Report{ID: "F2", Title: "Figure 2 — click distributions", Text: b.String()}, nil
}
