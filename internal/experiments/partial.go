package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// PartialLabelPoint is one sample of the X9 study.
type PartialLabelPoint struct {
	// KnownFraction of the true abnormal nodes are treated as "known".
	KnownFraction float64
	Eval          metrics.Eval
}

// RunPartialLabels (X9) quantifies the measurement artifact behind the gap
// between this reproduction's absolute numbers and the paper's: the paper
// evaluated against ~2,000 expert-confirmed nodes out of a larger unknown
// abnormal population, so every correct detection outside the labeled set
// counts AGAINST precision. Holding the detector output fixed and shrinking
// the "known" set reproduces the paper's measured ranges.
func RunPartialLabels(p Params, fractions []float64) ([]PartialLabelPoint, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}
	d := &core.Detector{Params: p.Detection}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Dataset.Seed + 1000))
	users := ds.Truth.UserIDs()
	items := ds.Truth.ItemIDs()

	var out []PartialLabelPoint
	for _, frac := range fractions {
		partial := detect.NewLabels()
		for _, u := range sampleIDs(rng, users, frac) {
			partial.Users[u] = true
		}
		for _, v := range sampleIDs(rng, items, frac) {
			partial.Items[v] = true
		}
		out = append(out, PartialLabelPoint{
			KnownFraction: frac,
			Eval:          metrics.Evaluate(res, partial),
		})
	}
	return out, nil
}

func sampleIDs(rng *rand.Rand, ids []bipartite.NodeID, frac float64) []bipartite.NodeID {
	n := int(frac * float64(len(ids)))
	if n > len(ids) {
		n = len(ids)
	}
	perm := rng.Perm(len(ids))
	out := make([]bipartite.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ids[perm[i]])
	}
	return out
}

// PartialLabels renders the X9 artifact.
func PartialLabels(p Params) (Report, error) {
	fractions := []float64{1.0, 0.75, 0.5, 0.25, 0.1}
	points, err := RunPartialLabels(p, fractions)
	if err != nil {
		return Report{}, err
	}
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*pt.KnownFraction),
			f3(pt.Eval.Precision), f3(pt.Eval.Recall), f3(pt.Eval.F1),
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"labels known", "measured P", "measured R", "measured F1"}, rows))
	b.WriteString("\n(the detector output is IDENTICAL in every row — only the evaluator's\n" +
		" knowledge shrinks. The paper measured against ~2,000 partial expert\n" +
		" labels, which mechanically deflates precision exactly like this; its\n" +
		" Table VI row RICD P=0.81/R=0.51 is consistent with a complete-label\n" +
		" P near 1.0. The paper acknowledges this: \"the precision rate shown\n" +
		" in the results will be lower than the true precision rate\".)\n")
	return Report{ID: "X9", Title: "Extension — the partial-label measurement artifact", Text: b.String()}, nil
}
