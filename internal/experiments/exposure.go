package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/i2i"
	"repro/internal/synth"
)

// ExposureResult is the X3 artifact: the attack's end-to-end effect on the
// recommendation surface before and after RICD-driven cleanup.
type ExposureResult struct {
	// Before/After measure target exposure in hot items' top-k lists on
	// the attacked graph and on the graph with detected users' clicks
	// removed.
	Before, After i2i.Exposure
	// MissedTargets counts labeled targets still exposed after cleanup.
	MissedTargets int
	// K is the recommendation list depth examined.
	K int
}

// RunExposure (X3) quantifies why the attack matters and why detection
// fixes it: the share of hot items' top-k recommendation slots captured by
// injected target items, before and after removing the detected crowd
// workers' clicks — the measurement behind the case study's "protects
// hundreds of thousands of users from incorrect recommendations".
func RunExposure(p Params, k int) (ExposureResult, error) {
	var out ExposureResult
	out.K = k
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return out, err
	}
	// Detection runs at the Fig 9 defaults (T_hot = 2,000): at 1,000 the
	// mega-campaign's targets read as hot, the campaign evades detection
	// entirely (the Fig 9e effect), and cleanup can show no effect.
	det := fig9Defaults(p.Detection)
	anchors := i2i.HotAnchors(ds.Graph, det.THot)
	targets := map[bipartite.NodeID]bool{}
	for v := range ds.Truth.Items {
		targets[v] = true
	}
	out.Before = i2i.TargetExposure(ds.Graph, anchors, targets, k)

	// Detect and clean: drop every edge of a detected suspicious user.
	d := &core.Detector{Params: det}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		return out, err
	}
	cleaned := ds.Graph.Clone()
	for _, u := range res.Users() {
		cleaned.RemoveUser(u)
	}
	out.After = i2i.TargetExposure(cleaned, anchors, targets, k)

	seen := map[bipartite.NodeID]bool{}
	for _, anchor := range anchors {
		for _, item := range i2i.Recommend(cleaned, anchor, k) {
			if targets[item] && !seen[item] {
				seen[item] = true
				out.MissedTargets++
			}
		}
	}
	return out, nil
}

// Exposure renders the X3 artifact.
func Exposure(p Params) (Report, error) {
	r, err := RunExposure(p, 10)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "target exposure in hot items' top-%d recommendation lists\n", r.K)
	b.WriteString(table(
		[]string{"", "anchors", "slots", "target slots", "share", "anchors hit"},
		[][]string{
			{"attacked", fmt.Sprint(r.Before.Anchors), fmt.Sprint(r.Before.Slots),
				fmt.Sprint(r.Before.TargetSlots), f3(r.Before.Share()), fmt.Sprint(r.Before.AnchorsHit)},
			{"cleaned", fmt.Sprint(r.After.Anchors), fmt.Sprint(r.After.Slots),
				fmt.Sprint(r.After.TargetSlots), f3(r.After.Share()), fmt.Sprint(r.After.AnchorsHit)},
		},
	))
	fmt.Fprintf(&b, "\ntargets still exposed after cleanup: %d\n", r.MissedTargets)
	b.WriteString("(the attack's purpose is exactly these hijacked slots; cleaning the\n" +
		" detected crowd workers' clicks collapses the manipulated I2I scores)\n")
	return Report{ID: "X3", Title: "Extension — recommendation exposure before/after cleanup", Text: b.String()}, nil
}
