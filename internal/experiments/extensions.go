package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/i2i"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// StrategyOptimality (X1) validates the Eq 2–3 analysis numerically: for a
// sweep of budgets and marketplace states, the exhaustive best allocation
// must equal the closed form C′ = C = C_b − 2, and the attained score must
// match Eq 3's bound.
func StrategyOptimality(p Params) (Report, error) {
	var rows [][]string
	for _, budget := range []int{4, 8, 12, 20, 30} {
		baseSum := uint64(10000)
		cInit := uint64(1)
		cp, c, score := i2i.BestStrategy(baseSum, cInit, budget)
		wantCp, wantC := i2i.OptimalStrategy(budget)
		bound := i2i.AttackScore(baseSum, cInit, wantCp, wantC)
		ok := "yes"
		if cp != wantCp || c != wantC || math.Abs(score-bound) > 1e-15 {
			ok = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprint(budget),
			fmt.Sprintf("C'=%d C=%d", cp, c),
			fmt.Sprintf("C'=%d C=%d", wantCp, wantC),
			fmt.Sprintf("%.6f", score),
			ok,
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"budget C_b", "exhaustive best", "closed form (Eq 3)", "I2I-score", "match"}, rows))
	b.WriteString("\n(Eq 3: the optimal crowd-worker strategy is one click on the hot item,\n" +
		" every remaining click on the target.)\n")
	return Report{ID: "X1", Title: "Extension — strategy optimality", Text: b.String()}, nil
}

// IncrementalPoint is one day of the streaming-detection extension.
type IncrementalPoint struct {
	Day    int
	Eval   metrics.Eval
	Groups int
}

// RunIncremental (X2) prototypes the paper's future-work direction: run
// RICD day by day on a growing click stream. Background traffic is in place
// from day 0; the attack's fake clicks accumulate linearly over the window,
// so early days see only a fraction of each attacker-target weight. Recall
// must grow as the attack matures — and the experiment reports how early
// each deployment-day catches the campaign.
func RunIncremental(p Params, days int) ([]IncrementalPoint, error) {
	if days < 1 {
		return nil, fmt.Errorf("experiments: days must be ≥ 1, got %d", days)
	}
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}

	var out []IncrementalPoint
	for day := 1; day <= days; day++ {
		frac := float64(day) / float64(days)
		tbl := clicktable.New(ds.Table.Len())
		ds.Table.Each(func(r clicktable.Record) bool {
			w := r.Clicks
			if int(r.UserID) >= ds.NumNormalUsers {
				// Attack traffic accumulates over the window.
				w = uint32(math.Ceil(float64(r.Clicks) * frac))
			}
			tbl.Append(r.UserID, r.ItemID, w)
			return true
		})
		g := tbl.ToGraph()
		d := &core.Detector{Params: p.Detection}
		res, err := d.Detect(g)
		if err != nil {
			return nil, err
		}
		out = append(out, IncrementalPoint{
			Day:    day,
			Eval:   metrics.Evaluate(res, ds.Truth),
			Groups: len(res.Groups),
		})
	}
	return out, nil
}

// Incremental renders the streaming extension.
func Incremental(p Params) (Report, error) {
	points, err := RunIncremental(p, 5)
	if err != nil {
		return Report{}, err
	}
	rows := make([][]string, 0, len(points))
	var recalls []float64
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprint(pt.Day),
			f3(pt.Eval.Precision), f3(pt.Eval.Recall), f3(pt.Eval.F1),
			fmt.Sprint(pt.Groups),
		})
		recalls = append(recalls, pt.Eval.Recall)
	}
	var b strings.Builder
	b.WriteString(table([]string{"day", "P", "R", "F1", "groups"}, rows))
	fmt.Fprintf(&b, "recall shape: %s\n", sparkline(recalls))
	b.WriteString("(Section VIII future work: detection recall grows as the fake-click\n" +
		" stream accumulates — the earlier the sweep, the smaller the damage window.\n" +
		" A late-window dip is possible at T_hot = 1,000: fully matured heavy\n" +
		" campaigns push their targets past the hot threshold — the same\n" +
		" misclassification the paper observes in Fig 9e.)\n")
	return Report{ID: "X2", Title: "Extension — incremental detection", Text: b.String()}, nil
}

