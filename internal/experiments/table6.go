package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// TableVIRow is one ablation variant's outcome.
type TableVIRow struct {
	Name string
	Eval metrics.Eval
}

// RunTableVI executes the screening ablation: RICD-UI (no screening),
// RICD-I (user check only), RICD (full).
func RunTableVI(p Params) ([]TableVIRow, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return nil, err
	}
	var rows []TableVIRow
	for _, v := range []core.Variant{core.VariantUI, core.VariantI, core.VariantFull} {
		d := &core.Detector{Params: p.Detection, Variant: v}
		res, err := d.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVIRow{Name: d.Name(), Eval: metrics.Evaluate(res, ds.Truth)})
	}
	return rows, nil
}

// TableVI renders the screening ablation next to the paper's values.
func TableVI(p Params) (Report, error) {
	rows, err := RunTableVI(p)
	if err != nil {
		return Report{}, err
	}
	paper := map[string][3]string{
		"RICD-UI": {"0.03", "0.82", "0.06"},
		"RICD-I":  {"0.14", "0.78", "0.23"},
		"RICD":    {"0.81", "0.51", "0.63"},
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		pp := paper[r.Name]
		out = append(out, []string{
			r.Name,
			f3(r.Eval.Precision), f3(r.Eval.Recall), f3(r.Eval.F1),
			pp[0], pp[1], pp[2],
		})
	}
	var b strings.Builder
	b.WriteString(table(
		[]string{"variant", "P", "R", "F1", "P(paper)", "R(paper)", "F1(paper)"},
		out,
	))
	b.WriteString("\n(Shape to reproduce: precision climbs UI → I → full while recall declines;\n" +
		"absolute values differ — synthetic labels are complete, the paper's were partial.)\n")
	return Report{ID: "T6", Title: "Table VI — screening ablation", Text: b.String()}, nil
}
