package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// TestReproducibilityPin pins the headline numbers of the default
// experiment configuration (seed 1). Everything in the pipeline is
// deterministic, so any change to the generator's random-stream consumption
// or to the detection semantics shows up here as an explicit diff — update
// the constants deliberately, alongside EXPERIMENTS.md, never accidentally.
func TestReproducibilityPin(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale pin skipped in -short")
	}
	p := DefaultParams()
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		t.Fatal(err)
	}

	// Dataset shape.
	scale := ds.Table.Scale()
	if scale.Users != 20289 || scale.Items != 4087 ||
		scale.Edges != 152276 || scale.TotalClicks != 244090 {
		t.Errorf("dataset scale drifted: %+v (update the pin AND EXPERIMENTS.md)", scale)
	}
	if got := ds.Truth.NumAbnormal(); got != 401 {
		t.Errorf("abnormal nodes = %d, want 401", got)
	}

	// RICD at the Fig 8 defaults.
	d := &core.Detector{Params: p.Detection}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	if ev.TruePositives != 261 || ev.Output != 261 {
		t.Errorf("RICD pin drifted: %v (want tp=261 out=261)", ev)
	}
	if len(res.Groups) != 6 {
		t.Errorf("RICD groups = %d, want 6", len(res.Groups))
	}
}
