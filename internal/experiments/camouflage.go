package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/baselines/fraudar"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/riskcontrol"
	"repro/internal/synth"
)

// CamouflageRow is one camouflage-intensity sample of X5.
type CamouflageRow struct {
	// CamoItems is the per-attacker camouflage item budget.
	CamoItems int
	// Evals maps detector name → evaluation at this intensity.
	Evals map[string]metrics.Eval
}

// RunCamouflage (X5) empirically validates desired property (3): RICD's
// quality must hold as attackers add more and more camouflage edges,
// because camouflage cannot dissolve the biclique core the attack needs
// (the Zarankiewicz argument of Section V-C). FRAUDAR (designed to be
// camouflage-resistant) and the rule-based risk-control layer are measured
// alongside for contrast.
func RunCamouflage(p Params, intensities []int) ([]CamouflageRow, error) {
	var rows []CamouflageRow
	for _, camo := range intensities {
		cfg := p.Dataset
		cfg.Attack.CamouflageItemsMin = camo
		cfg.Attack.CamouflageItemsMax = camo
		if camo == 0 {
			cfg.Attack.CamouflageItemsMin = 0
			cfg.Attack.CamouflageItemsMax = 0
		}
		ds, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		row := CamouflageRow{CamoItems: camo, Evals: map[string]metrics.Eval{}}

		ricd := &core.Detector{Params: p.Detection}
		res, err := ricd.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		row.Evals["RICD"] = metrics.Evaluate(res, ds.Truth)

		fr := &baselines.Screened{
			Inner:  fraudar.DefaultDetector(p.Detection.K1, p.Detection.K2),
			Params: p.Detection,
		}
		res, err = fr.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		row.Evals["FRAUDAR+UI"] = metrics.Evaluate(res, ds.Truth)

		rc := &riskcontrol.Detector{Rules: riskcontrol.DefaultRules()}
		res, err = rc.Detect(ds.Graph)
		if err != nil {
			return nil, err
		}
		row.Evals["RiskControl"] = metrics.Evaluate(res, ds.Truth)

		rows = append(rows, row)
	}
	return rows, nil
}

// Camouflage renders the X5 artifact.
func Camouflage(p Params) (Report, error) {
	intensities := []int{0, 3, 8, 16}
	rows, err := RunCamouflage(p, intensities)
	if err != nil {
		return Report{}, err
	}
	names := []string{"RICD", "FRAUDAR+UI", "RiskControl"}
	header := []string{"camo items/attacker"}
	for _, n := range names {
		header = append(header, n+" P", n+" R")
	}
	var out [][]string
	for _, row := range rows {
		line := []string{fmt.Sprint(row.CamoItems)}
		for _, n := range names {
			e := row.Evals[n]
			line = append(line, f3(e.Precision), f3(e.Recall))
		}
		out = append(out, line)
	}
	var b strings.Builder
	b.WriteString(table(header, out))
	b.WriteString("\n(property (3), camouflage restriction: extra disguise edges cannot hide\n" +
		" the biclique core, so RICD's quality holds as camouflage grows; the\n" +
		" rule-based risk-control layer stays blind at every intensity)\n")
	return Report{ID: "X5", Title: "Extension — camouflage robustness", Text: b.String()}, nil
}

// ZarankiewiczBound (X6) renders the Kővári–Sós–Turán upper bound behind
// property (3): the maximum fake edges an attacker can place without
// creating a K_{k₁,k₂} biclique, next to what the injected attacks actually
// place — every implanted group far exceeds its bound, which is WHY the
// extraction stage is guaranteed to see a core.
func ZarankiewiczBound(p Params) (Report, error) {
	ds, err := synth.Generate(p.Dataset)
	if err != nil {
		return Report{}, err
	}
	k1, k2 := p.Detection.K1, p.Detection.K2
	n := ds.NumNormalItems

	var rows [][]string
	for _, m := range []int{20, 50, 100, 200} {
		bound := core.CamouflageBound(m, n, k1, k2)
		rows = append(rows, []string{
			fmt.Sprint(m),
			fmt.Sprintf("%.0f", bound),
			fmt.Sprintf("%.1f", bound/float64(m)),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Kővári–Sós–Turán bound z(m, %d; %d, %d): max biclique-free fake edges\n", n, k1, k2)
	b.WriteString(table([]string{"accounts m", "edge bound", "edges/account"}, rows))

	b.WriteString("\ninjected groups vs their bound (attack edges = attacker-target links):\n")
	var grows [][]string
	for gi, grp := range ds.Groups {
		m := len(grp.Attackers)
		edges := 0
		for _, u := range grp.Attackers {
			for _, v := range grp.Targets {
				if ds.Graph.HasEdge(u, v) {
					edges++
				}
			}
		}
		bound := core.CamouflageBound(m, len(grp.Targets), k1, k2)
		verdict := "below bound"
		if float64(edges) > bound {
			verdict = "EXCEEDS bound -> biclique core guaranteed"
		}
		grows = append(grows, []string{
			fmt.Sprintf("g%d", gi), fmt.Sprint(m), fmt.Sprint(len(grp.Targets)),
			fmt.Sprint(edges), fmt.Sprintf("%.0f", bound), verdict,
		})
	}
	b.WriteString(table([]string{"group", "attackers", "targets", "fake edges", "z-bound", ""}, grows))
	return Report{ID: "X6", Title: "Extension — Zarankiewicz camouflage bound", Text: b.String()}, nil
}
