// Package experiments regenerates every table and figure of the paper's
// analysis and evaluation sections on the synthetic reproduction dataset.
// Each experiment is a pure function from a Dataset (plus parameters) to a
// typed result with an ASCII rendering; cmd/experiments and the root bench
// suite drive them. The per-experiment index lives in DESIGN.md §4.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
)

// Report is a rendered experiment artifact.
type Report struct {
	ID    string // "T1", "F8a", ...
	Title string
	Text  string
}

// Params bundles the experiment-wide configuration.
type Params struct {
	// Dataset is the synthetic workload configuration.
	Dataset synth.Config
	// Detection carries the RICD parameters used everywhere (the paper's
	// Section VI-B defaults unless a sweep overrides them).
	Detection core.Params
}

// DefaultParams mirrors the paper's experimental setup at 1:1000 scale.
func DefaultParams() Params {
	return Params{
		Dataset:   synth.DefaultConfig(),
		Detection: core.DefaultParams(),
	}
}

// Experiment is one runnable artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params) (Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Table I — data scale of the click table", TableI},
		{"T2", "Table II — data statistics of the click table", TableII},
		{"F2", "Figure 2 — distribution of item and user clicks", Figure2},
		{"T3", "Table III — click record of a suspect", TableIII},
		{"T4", "Table IV — click record of an ordinary user", TableIV},
		{"T5", "Table V — suspicious vs normal item statistics", TableV},
		{"F8a", "Figure 8a — baseline comparison (precision/recall/F1)", Figure8a},
		{"F8b", "Figure 8b — baseline comparison (elapsed time)", Figure8b},
		{"T6", "Table VI — effectiveness of suspicious group screening", TableVI},
		{"F9", "Figure 9 — parameter sensitivity analysis", Figure9},
		{"F10", "Figure 10 — case study: target-item traffic timeline", Figure10},
		{"X1", "Extension — optimal crowd-worker strategy (Eqs 2-3)", StrategyOptimality},
		{"X2", "Extension — incremental detection on a day-by-day stream", Incremental},
		{"X3", "Extension — recommendation exposure before/after cleanup", Exposure},
		{"X5", "Extension — camouflage robustness", Camouflage},
		{"X6", "Extension — Zarankiewicz camouflage bound", ZarankiewiczBound},
		{"X7", "Extension — scaling study", Scale},
		{"X8", "Extension — related-work detectors", RelatedWork},
		{"X9", "Extension — the partial-label measurement artifact", PartialLabels},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, stopping at the first error.
func RunAll(p Params) ([]Report, error) {
	var out []Report
	for _, e := range All() {
		r, err := e.Run(p)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// --- rendering helpers -----------------------------------------------------

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sparkline renders a numeric series as a unicode bar chart.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	max := xs[0]
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if max > 0 {
			idx = int(x / max * float64(len(bars)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
