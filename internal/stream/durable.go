// Durability for the streaming detector: every state-changing operation
// (click, sweep commit, reset) is written ahead to a checksummed WAL, and
// the full detector state is periodically captured in an atomic snapshot,
// so a crashed detector reopens exactly where it stopped — Open loads the
// newest valid snapshot and replays only the WAL tail behind it.
//
// The recovery-equivalence guarantee (tested in durable_test.go): a
// detector recovered from snapshot + WAL replay produces byte-identical
// Sweep results to one that never crashed. Three mechanisms make that
// hold:
//
//  1. The record clock (Detector.seq) ticks once per click and per
//     committed sweep; the dirty map stores each user's newest click seq,
//     so a replayed sweep-commit record can retire exactly the users whose
//     activity the original sweep's snapshot saw (seq ≤ startSeq) while
//     users touched mid-sweep stay dirty.
//  2. Sweep records carry the committed groups, so replay installs the
//     cache without re-running detection — replay is pure state
//     application, fast and deterministic.
//  3. Sweeps sort their dirty seeds (stream.go), making detection output
//     independent of map iteration order.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Durability configures the WAL + snapshot layer of a detector opened with
// Open. The zero Dir means memory-only (New's behavior).
type Durability struct {
	// Dir holds the WAL segments and snapshots (wal-*.seg, snap-*.snap).
	Dir string
	// SegmentBytes is the WAL segment rotation size (0 = 64 MiB).
	SegmentBytes int64
	// Sync is the WAL fsync policy: durable.SyncNever survives process
	// crashes, durable.SyncAlways also survives power loss.
	Sync durable.SyncPolicy
	// SnapshotEvery takes an automatic snapshot at the first sweep boundary
	// after this many WAL records (0 disables automatic snapshots; Snapshot
	// can still be called explicitly).
	SnapshotEvery int
	// KeepSnapshots is how many snapshot generations to retain (< 1 = 2;
	// keeping ≥ 2 lets recovery fall back past a corrupt newest snapshot).
	KeepSnapshots int
}

func (dur *Durability) normalize() {
	if dur.KeepSnapshots < 1 {
		dur.KeepSnapshots = 2
	}
}

func (dur Durability) walOptions() durable.Options {
	return durable.Options{SegmentBytes: dur.SegmentBytes, Sync: dur.Sync}
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// ColdStart is true when neither a snapshot nor WAL records existed.
	ColdStart bool
	// SnapshotClock is the record clock of the loaded snapshot (0 if none).
	SnapshotClock uint64
	// SnapshotsSkipped counts newer snapshots that failed validation.
	SnapshotsSkipped int
	// Replayed is how many WAL records were applied on top of the snapshot.
	Replayed int
	// TruncatedBytes is how many torn trailing WAL bytes were cut.
	TruncatedBytes int64
	// Seq is the record clock after recovery.
	Seq uint64
}

// WAL record types. Payload layouts (all little endian):
//
//	click: u8 recClick | u32 user | u32 item | u32 clicks
//	sweep: u8 recSweep | u64 startSeq | groups
//	reset: u8 recReset
//
// where groups = u32 count | per group { u64 scoreBits | u32 nUsers |
// u32 nItems | users | items }.
const (
	recClick = 1
	recSweep = 2
	recReset = 3
)

const stateVersion = 1

// Open creates a durable detector backed by dur.Dir, recovering any state
// a previous incarnation persisted there: the newest valid snapshot is
// loaded, the WAL tail behind it replayed (torn trailing records are
// truncated), and the WAL reopened for appending. A fresh directory is a
// cold start. The observer may be nil.
func Open(dur Durability, params core.Params, o *obs.Observer) (*Detector, *RecoveryInfo, error) {
	if dur.Dir == "" {
		return nil, nil, errors.New("stream: Open requires Durability.Dir")
	}
	dur.normalize()
	d, err := New(nil, params)
	if err != nil {
		return nil, nil, err
	}
	d.Obs = o
	d.dur = dur

	info := &RecoveryInfo{}
	payload, sinfo, err := durable.LatestSnapshot(dur.Dir)
	switch {
	case err == nil:
		if derr := d.decodeState(payload, sinfo.Clock); derr != nil {
			return nil, nil, fmt.Errorf("stream: snapshot %s: %w", sinfo.Path, derr)
		}
		info.SnapshotClock = sinfo.Clock
		info.SnapshotsSkipped = sinfo.Skipped
	case errors.Is(err, durable.ErrNoSnapshot):
		// Cold start unless the WAL has records.
	default:
		return nil, nil, err
	}

	opts := dur.walOptions()
	res, err := durable.Replay(dur.Dir, d.seq, opts, d.applyRecord)
	if err != nil {
		return nil, nil, err
	}
	info.Replayed = res.Records
	info.TruncatedBytes = res.TruncatedBytes
	info.ColdStart = info.SnapshotClock == 0 && res.Records == 0

	w, err := durable.OpenWAL(dur.Dir, opts)
	if err != nil {
		return nil, nil, err
	}
	d.wal = w
	// Records appended since the snapshot still await the next one.
	d.sinceSnap = int(d.seq - info.SnapshotClock)
	info.Seq = d.seq

	o.Counter("stream.wal.recoveries").Inc()
	o.Counter("stream.wal.replayed_records").Add(int64(res.Records))
	o.Gauge("stream.degraded").Set(0)
	if sink := o.Sink(); sink != nil {
		reason := "snapshot"
		if info.SnapshotClock == 0 {
			reason = "cold"
		}
		sink.Emit(obs.Event{
			Type:   obs.EventWALRecover,
			Reason: reason,
			Stat: fmt.Sprintf("clock=%d replayed=%d truncated_bytes=%d skipped_snapshots=%d seq=%d",
				info.SnapshotClock, info.Replayed, info.TruncatedBytes, info.SnapshotsSkipped, d.seq),
		})
	}
	return d, info, nil
}

// walActiveLocked reports whether appends should be written ahead; d.mu
// must be held.
func (d *Detector) walActiveLocked() bool {
	return d.wal != nil && d.walErr == nil
}

// degradeLocked latches the first WAL failure and drops the detector to
// memory-only operation: detection keeps running, but state stops being
// durable and the stream.degraded gauge flips so operators notice. d.mu
// must be held.
func (d *Detector) degradeLocked(err error) {
	if d.walErr != nil {
		return
	}
	d.walErr = err
	d.Obs.Counter("stream.wal.append_errors").Inc()
	d.Obs.Gauge("stream.degraded").Set(1)
	if sink := d.Obs.Sink(); sink != nil {
		sink.Emit(obs.Event{Type: obs.EventWALDegraded, Reason: err.Error()})
	}
}

// DurabilityErr returns the latched WAL failure that degraded the detector
// to memory-only operation, nil while durability is healthy (or for a
// memory-only detector).
func (d *Detector) DurabilityErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walErr
}

// Durable reports whether the detector was opened with a durability layer
// (even if it has since degraded — see DurabilityErr).
func (d *Detector) Durable() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal != nil
}

// Close flushes and closes the WAL. The detector keeps working in memory
// after Close; call it last. Memory-only detectors are a no-op.
func (d *Detector) Close() error {
	d.mu.Lock()
	w := d.wal
	d.wal = nil
	d.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Snapshot atomically persists the full detector state at the current
// record clock, then prunes snapshots beyond Durability.KeepSnapshots and
// WAL segments the new snapshot covers. Safe to call concurrently with
// ingestion and sweeps (a sweep's in-flight dirty set is included, so
// nothing is lost whichever way the sweep ends). Returns an error on a
// memory-only detector.
func (d *Detector) Snapshot() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	d.mu.Lock()
	if d.dur.Dir == "" {
		d.mu.Unlock()
		return errors.New("stream: Snapshot on a memory-only detector")
	}
	w := d.wal
	clock := d.seq
	table := d.table.Clone()
	dirty := make(map[bipartite.NodeID]uint64, len(d.dirty)+len(d.inflight))
	for u, s := range d.inflight {
		dirty[u] = s
	}
	for u, s := range d.dirty {
		if cur, ok := dirty[u]; !ok || cur < s {
			dirty[u] = s
		}
	}
	cached := append([]detect.Group(nil), d.cached...)
	events, detections, lastFull := d.events, d.detections, d.lastFull
	d.mu.Unlock()

	payload := encodeState(table, dirty, cached, events, detections, lastFull)
	err := faultinject.ErrAt("stream.snapshot")
	if err == nil {
		faultinject.Hit("stream.snapshot")
		_, err = durable.WriteSnapshot(d.dur.Dir, clock, payload)
	}
	if err != nil {
		d.Obs.Counter("stream.snapshot.errors").Inc()
		if sink := d.Obs.Sink(); sink != nil {
			sink.Emit(obs.Event{Type: obs.EventSnapshotWrite, Reason: "error: " + err.Error()})
		}
		return err
	}
	// Retention: old snapshots beyond the keep count and WAL segments the
	// new snapshot supersedes. Failures here do not invalidate the snapshot.
	_, _ = durable.PruneSnapshots(d.dur.Dir, d.dur.KeepSnapshots)
	if w != nil {
		_, _ = w.Prune(clock)
	}
	d.mu.Lock()
	d.sinceSnap = int(d.seq - clock)
	d.mu.Unlock()
	d.Obs.Counter("stream.snapshot.writes").Inc()
	d.Obs.Gauge("stream.snapshot.bytes").Set(int64(len(payload)))
	if sink := d.Obs.Sink(); sink != nil {
		sink.Emit(obs.Event{
			Type: obs.EventSnapshotWrite,
			Stat: fmt.Sprintf("clock=%d bytes=%d dirty=%d rows=%d", clock, len(payload), len(dirty), table.Len()),
		})
	}
	return nil
}

// applyRecord applies one replayed WAL record. Called only during Open,
// before the detector is shared, so no locking.
func (d *Detector) applyRecord(seq uint64, payload []byte) error {
	if len(payload) == 0 {
		return errors.New("stream: empty WAL record")
	}
	switch payload[0] {
	case recClick:
		user, item, clicks, err := decodeClickRecord(payload)
		if err != nil {
			return err
		}
		d.seq = seq
		d.table.Append(user, item, clicks)
		d.dirty[user] = seq
		d.events++
	case recSweep:
		startSeq, groups, err := decodeSweepRecord(payload)
		if err != nil {
			return err
		}
		d.seq = seq
		// Retire exactly the users the original sweep's snapshot owned:
		// everyone whose newest click preceded the sweep's start clock.
		for u, s := range d.dirty {
			if s <= startSeq {
				delete(d.dirty, u)
			}
		}
		d.cached = groups
		d.lastFull = true
		d.detections++
	case recReset:
		d.seq = seq
		d.resetLocked()
	default:
		return fmt.Errorf("stream: unknown WAL record type %d", payload[0])
	}
	return nil
}

// --- record and snapshot codecs ---

func appendClickRecord(b []byte, user, item, clicks uint32) []byte {
	b = append(b, recClick)
	b = binary.LittleEndian.AppendUint32(b, user)
	b = binary.LittleEndian.AppendUint32(b, item)
	b = binary.LittleEndian.AppendUint32(b, clicks)
	return b
}

func decodeClickRecord(p []byte) (user, item, clicks uint32, err error) {
	if len(p) != 13 || p[0] != recClick {
		return 0, 0, 0, fmt.Errorf("stream: malformed click record (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint32(p[1:]),
		binary.LittleEndian.Uint32(p[5:]),
		binary.LittleEndian.Uint32(p[9:]), nil
}

func appendSweepRecord(b []byte, startSeq uint64, groups []detect.Group) []byte {
	b = append(b, recSweep)
	b = binary.LittleEndian.AppendUint64(b, startSeq)
	return appendGroups(b, groups)
}

func decodeSweepRecord(p []byte) (startSeq uint64, groups []detect.Group, err error) {
	if len(p) < 9 || p[0] != recSweep {
		return 0, nil, errors.New("stream: malformed sweep record")
	}
	r := &reader{p: p, off: 1}
	startSeq = r.u64()
	groups = r.groups()
	if r.err != nil || r.off != len(p) {
		return 0, nil, errors.New("stream: malformed sweep record")
	}
	return startSeq, groups, nil
}

func appendResetRecord(b []byte) []byte {
	return append(b, recReset)
}

func appendGroups(b []byte, groups []detect.Group) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(groups)))
	for _, g := range groups {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(g.Score))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Users)))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Items)))
		for _, u := range g.Users {
			b = binary.LittleEndian.AppendUint32(b, u)
		}
		for _, v := range g.Items {
			b = binary.LittleEndian.AppendUint32(b, v)
		}
	}
	return b
}

// encodeState serializes the full detector state for a snapshot. Layout:
//
//	u32 stateVersion | u64 events | u64 detections | u8 lastFull
//	u32 nRows  | rows  (u32 user | u32 item | u32 clicks)
//	u32 nDirty | pairs (u32 user | u64 seq)
//	groups (same layout as sweep records)
//
// The snapshot container (durable.WriteSnapshot) adds the clock, version
// and checksum around this. The staged table flattens to plain rows
// (aggregated base first, then the raw pending tail): the base/pending
// split is a build-cost optimization, not state — a recovered detector
// reloads everything as pending, so its first graph build is a full
// rebuild whose aggregate equals the live detector's patched graph
// (bipartite.PatchGraph's byte-identity contract), preserving the
// recovery-equivalence guarantee.
func encodeState(table *clicktable.Staged, dirty map[bipartite.NodeID]uint64, cached []detect.Group, events, detections int, lastFull bool) []byte {
	b := make([]byte, 0, 17+12*table.Len()+12*len(dirty))
	b = binary.LittleEndian.AppendUint32(b, stateVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(events))
	b = binary.LittleEndian.AppendUint64(b, uint64(detections))
	if lastFull {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(table.Len()))
	table.Each(func(r clicktable.Record) bool {
		b = binary.LittleEndian.AppendUint32(b, r.UserID)
		b = binary.LittleEndian.AppendUint32(b, r.ItemID)
		b = binary.LittleEndian.AppendUint32(b, r.Clicks)
		return true
	})
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dirty)))
	for u, s := range dirty {
		b = binary.LittleEndian.AppendUint32(b, u)
		b = binary.LittleEndian.AppendUint64(b, s)
	}
	return appendGroups(b, cached)
}

// decodeState installs a snapshot payload into a freshly created detector.
func (d *Detector) decodeState(p []byte, clock uint64) error {
	r := &reader{p: p}
	if v := r.u32(); r.err == nil && v != stateVersion {
		return fmt.Errorf("unsupported state version %d", v)
	}
	events := r.u64()
	detections := r.u64()
	lastFull := r.u8() != 0
	nRows := int(r.u32())
	if r.err != nil || nRows > r.remaining()/12 {
		return errors.New("truncated state")
	}
	table := clicktable.New(nRows)
	for i := 0; i < nRows; i++ {
		u, it, c := r.u32(), r.u32(), r.u32()
		table.Append(u, it, c)
	}
	nDirty := int(r.u32())
	if r.err != nil || nDirty > r.remaining()/12 {
		return errors.New("truncated state")
	}
	dirty := make(map[bipartite.NodeID]uint64, nDirty)
	for i := 0; i < nDirty; i++ {
		u := r.u32()
		dirty[u] = r.u64()
	}
	groups := r.groups()
	if r.err != nil || r.off != len(p) {
		return errors.New("truncated state")
	}
	d.seq = clock
	d.events = int(events)
	d.detections = int(detections)
	d.lastFull = lastFull
	// All recovered rows land in the pending tail (see encodeState): the
	// first build after recovery re-aggregates the full history.
	d.table = clicktable.NewStaged(table)
	d.graph = nil
	d.dirty = dirty
	d.cached = groups
	return nil
}

// reader is a bounds-checked little-endian cursor; the first overrun
// latches err and every later read returns zero.
type reader struct {
	p   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = errors.New("stream: short read")
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *reader) groups() []detect.Group {
	n := int(r.u32())
	if r.err != nil || n > r.remaining()/16+1 {
		r.fail()
		return nil
	}
	groups := make([]detect.Group, 0, n)
	for i := 0; i < n; i++ {
		score := math.Float64frombits(r.u64())
		nu := int(r.u32())
		ni := int(r.u32())
		if r.err != nil || nu+ni > r.remaining()/4 {
			r.fail()
			return nil
		}
		g := detect.Group{Score: score}
		for j := 0; j < nu; j++ {
			g.Users = append(g.Users, r.u32())
		}
		for j := 0; j < ni; j++ {
			g.Items = append(g.Items, r.u32())
		}
		groups = append(groups, g)
	}
	return groups
}
