package stream

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Backoff computes capped exponential backoff with jitter for sweep
// retries. The zero value is usable (100ms base, 30s cap, 25% jitter).
type Backoff struct {
	// Base is the first retry's delay (0 = 100ms).
	Base time.Duration
	// Max caps the exponential growth (0 = 30s).
	Max time.Duration
	// Jitter is the fraction of the delay randomized on top of it, in
	// [0, 1]; negative disables jitter (0 = 0.25). Jitter decorrelates the
	// retry storms of detectors that degraded at the same moment.
	Jitter float64
	// Rand overrides the jitter source for deterministic tests
	// (nil = math/rand).
	Rand func(n int64) int64

	attempt int
}

func (b *Backoff) normalize() {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Jitter == 0 {
		b.Jitter = 0.25
	}
	if b.Rand == nil {
		b.Rand = rand.Int63n
	}
}

// Next returns the delay before the next retry: Base doubled per attempt,
// capped at Max, plus jitter.
func (b *Backoff) Next() time.Duration {
	b.normalize()
	d := b.Base
	for i := 0; i < b.attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	b.attempt++
	if b.Jitter > 0 {
		if span := int64(float64(d) * b.Jitter); span > 0 {
			d += time.Duration(b.Rand(span))
		}
	}
	return d
}

// Attempt returns how many times Next has been called since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset returns the backoff to its base delay after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Watchdog periodically sweeps a Detector and keeps sweeping through
// failures: a failed or partial sweep is retried after an exponential
// backoff with jitter (the sweep interval widens instead of hammering a
// struggling detector), each retry is counted and audited, and the
// stream.degraded gauge reflects detection health — 1 while sweeps are
// failing or the WAL has degraded, 0 when healthy.
type Watchdog struct {
	// D is the detector to sweep.
	D *Detector
	// Interval is the healthy-path sweep cadence (0 = 1s).
	Interval time.Duration
	// Backoff paces retries after failures.
	Backoff Backoff
}

// Run sweeps until ctx is done, returning ctx's error. Sweep failures
// never stop the loop — they widen it.
func (w *Watchdog) Run(ctx context.Context) error {
	interval := w.Interval
	if interval <= 0 {
		interval = time.Second
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if _, err := w.D.SweepContext(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			delay := w.Backoff.Next()
			attempt := w.Backoff.Attempt()
			w.D.Obs.Counter("stream.sweep.retries").Inc()
			w.D.Obs.Gauge("stream.degraded").Set(1)
			if sink := w.D.Obs.Sink(); sink != nil {
				sink.Emit(obs.Event{
					Type:   obs.EventSweepRetry,
					Round:  attempt,
					Reason: err.Error(),
					Stat:   "backoff=" + delay.String(),
				})
			}
			timer.Reset(delay)
			continue
		}
		w.Backoff.Reset()
		healthy := int64(0)
		if w.D.DurabilityErr() != nil {
			healthy = 1 // WAL degradation persists regardless of sweep health
		}
		w.D.Obs.Gauge("stream.degraded").Set(healthy)
		timer.Reset(interval)
	}
}
