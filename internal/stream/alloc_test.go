package stream

import (
	"testing"

	"repro/internal/clicktable"
)

// allocDetector builds a warmed-up memory-only detector: enough history for
// a realistic base graph, one full sweep so the incremental path is active,
// and a few steady-state cycles so every scratch buffer has reached its
// working size.
func allocDetector(t testing.TB) (*Detector, []clicktable.Record) {
	t.Helper()
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		d.AddClick(uint32(i%120), uint32(i%40), uint32(1+i%3))
	}
	batch := make([]clicktable.Record, 8)
	for i := range batch {
		batch[i] = clicktable.Record{UserID: uint32(10 + i), ItemID: uint32(i % 6), Clicks: 2}
	}
	if _, err := d.Sweep(); err != nil {
		t.Fatal(err)
	}
	for warm := 0; warm < 5; warm++ {
		d.AddBatch(batch)
		if _, err := d.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	return d, batch
}

// TestSteadyStateSweepAllocs is the regression guard for the sweep-loop
// allocation work: once warm, an AddBatch+Sweep cycle must not allocate
// per-history state (seed slices, delta buffers, WAL scratch are all reused;
// graph builds patch O(delta) rows). The bound is deliberately generous —
// a sweep legitimately allocates its snapshot map, result, spans, and the
// patched graph's touched rows — but a regression to rebuild-per-sweep or
// fresh-scratch-per-sweep blows through it by an order of magnitude.
func TestSteadyStateSweepAllocs(t *testing.T) {
	d, batch := allocDetector(t)
	avg := testing.AllocsPerRun(50, func() {
		d.AddBatch(batch)
		if _, err := d.Sweep(); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 400
	t.Logf("steady-state AddBatch+Sweep cycle: %.1f allocs/run (bound %d)", avg, maxAllocs)
	if avg > maxAllocs {
		t.Errorf("steady-state AddBatch+Sweep cycle: %.1f allocs/run, want ≤ %d", avg, maxAllocs)
	}
}

// TestSteadyStateAddBatchAllocs pins ingestion on its own: appending a warm
// batch touches only the pending table tail and the dirty map, both of which
// grow amortized — the per-batch average must stay near zero.
func TestSteadyStateAddBatchAllocs(t *testing.T) {
	d, batch := allocDetector(t)
	avg := testing.AllocsPerRun(200, func() {
		d.AddBatch(batch)
	})
	const maxAllocs = 8
	t.Logf("steady-state AddBatch: %.2f allocs/run (bound %d)", avg, maxAllocs)
	if avg > maxAllocs {
		t.Errorf("steady-state AddBatch: %.2f allocs/run, want ≤ %d", avg, maxAllocs)
	}
}

// TestSeedScratchReuse is the white-box half of the regression guard: after
// warm-up the sweep's seed slice must be the SAME backing array sweep after
// sweep (taken at snapshot, returned at commit), not a fresh allocation.
func TestSeedScratchReuse(t *testing.T) {
	d, batch := allocDetector(t)
	d.mu.Lock()
	before := cap(d.seedScratch)
	d.mu.Unlock()
	if before == 0 {
		t.Fatal("warm detector has no seed scratch")
	}
	for i := 0; i < 10; i++ {
		d.AddBatch(batch)
		if _, err := d.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	d.mu.Lock()
	after := cap(d.seedScratch)
	d.mu.Unlock()
	if after != before {
		t.Errorf("seed scratch capacity changed %d -> %d across steady-state sweeps (reuse broken)", before, after)
	}
}
