package stream

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/synth"
)

// This file is the golden-oracle harness for delta-maintained graph
// builds: across a ≥ 20-workload corpus, a detector that patches each
// sweep's click delta onto its previous graph (the default) must produce
// graphs AND sweep results byte-identical to a detector pinned to the
// historical full-rebuild path (NoDelta — the stream CLI's -no-delta).
// The corpus crosses marketplace shapes with the three compaction regimes
// (compact-every-build, never-compact/pure-patching, default policy) and
// folds in mid-sweep ingestion and crash-recovery replays, so compaction
// boundaries and WAL replay are corpus members, not special cases.

// deltaEquivCorpus is the shared seeded workload corpus
// (synth.EquivCorpus): varied small marketplaces plus tiny
// shattered-residual ones, several of which detect nothing (the all-clean
// stream exercises patching of pure background churn).
func deltaEquivCorpus() []synth.Config { return synth.EquivCorpus() }

func deltaEquivParams(c synth.Config) core.Params {
	p := smallParams()
	if c.NumUsers < 1000 {
		p.THot = 200
	}
	return p
}

func graphBytes(t *testing.T, g *bipartite.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bipartite.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sameGraphBytes(t *testing.T, label string, oracle, delta *Detector) {
	t.Helper()
	want, got := graphBytes(t, oracle.Graph()), graphBytes(t, delta.Graph())
	if !bytes.Equal(want, got) {
		t.Fatalf("%s: delta-maintained graph diverged from full rebuild (%d vs %d bytes)",
			label, len(got), len(want))
	}
}

// TestDeltaEquivalenceGoldenWorkloads is the harness proper: for every
// corpus workload, drive a NoDelta oracle and a delta-maintained detector
// through an identical three-phase stream (background, first attack half,
// second attack half) with a sweep after each phase, comparing the
// serialized graph and the serialized groups at every step.
//
// Workload index picks the hostile extras:
//   - i%3 selects the compaction regime (always / never / default), so
//     compaction boundaries and long patch chains are both covered;
//   - i%3 == 0 also injects clicks mid-sweep through the stream.sweep
//     fault site (they must land in the NEXT sweep, exactly as the
//     oracle's post-sweep feed does);
//   - i%4 == 1 runs the delta detector durably and crash-recovers it
//     (abandoned WAL handle, reopened directory) between sweeps 2 and 3 —
//     the replayed detector must re-derive the identical patched graph.
func TestDeltaEquivalenceGoldenWorkloads(t *testing.T) {
	defer faultinject.Reset()
	cfgs := deltaEquivCorpus()
	if len(cfgs) < 20 {
		t.Fatalf("corpus has %d workloads, want ≥ 20", len(cfgs))
	}
	totalGroups := 0
	for i, cfg := range cfgs {
		t.Run(fmt.Sprintf("workload%02d", i), func(t *testing.T) {
			defer faultinject.Reset()
			params := deltaEquivParams(cfg)
			ds := synth.MustGenerate(cfg)
			background, attack := splitDataset(ds)
			half := len(attack) / 2
			phaseA, phaseB := attack[:half], attack[half:]
			var bg []clicktable.Record
			background.Each(func(r clicktable.Record) bool {
				bg = append(bg, r)
				return true
			})

			oracle, err := New(nil, params)
			if err != nil {
				t.Fatal(err)
			}
			oracle.NoDelta = true

			var delta *Detector
			durDir := ""
			if i%4 == 1 {
				durDir = t.TempDir()
				delta, _, err = Open(Durability{Dir: durDir, SnapshotEvery: 150, SegmentBytes: 1 << 16}, params, nil)
			} else {
				delta, err = New(nil, params)
			}
			if err != nil {
				t.Fatal(err)
			}
			switch i % 3 {
			case 0:
				delta.CompactFraction = 1e-9 // every build hits a compaction boundary
			case 1:
				delta.CompactFraction = 1e9 // pure patching: one rebuild, then patch forever
			}
			compactFraction := delta.CompactFraction

			oracle.AddBatch(bg)
			delta.AddBatch(bg)
			r1o := mustSweep(t, oracle)
			// Mid-sweep ingestion: the fault site fires inside the sweep
			// stage, after the graph snapshot — injected clicks are invisible
			// to that sweep and must surface in the next one. Armed only
			// around the delta detector's sweep (the site is global and the
			// oracle's sweeps would consume it).
			midSweep := phaseA[:min(8, len(phaseA))]
			if i%3 == 0 {
				faultinject.Arm("stream.sweep", faultinject.Fault{
					Do:    func() { delta.AddBatch(midSweep) },
					Times: 1,
				})
			}
			r1d := mustSweep(t, delta)
			sameGroups(t, "sweep1", r1o, r1d)
			if i%3 == 0 {
				// The oracle gets the mid-sweep clicks now: for both
				// detectors they are post-sweep-1, pre-sweep-2 traffic.
				faultinject.Reset()
				oracle.AddBatch(midSweep)
				sameGraphBytes(t, "after sweep1", oracle, delta)
			} else {
				sameGraphBytes(t, "after sweep1", oracle, delta)
			}

			oracle.AddBatch(phaseA)
			delta.AddBatch(phaseA)
			r2o := mustSweep(t, oracle)
			r2d := mustSweep(t, delta)
			sameGroups(t, "sweep2", r2o, r2d)
			sameGraphBytes(t, "after sweep2", oracle, delta)

			if durDir != "" {
				// Crash: abandon the durable detector WAL-open, reopen the
				// directory. The recovered detector starts from snapshot +
				// replay — its next build re-derives the patched graph from
				// scratch and must land on the identical bytes.
				recovered, info, err := Open(Durability{Dir: durDir, SnapshotEvery: 150, SegmentBytes: 1 << 16}, params, nil)
				if err != nil {
					t.Fatal(err)
				}
				if info.ColdStart {
					t.Fatal("recovery saw a cold start")
				}
				recovered.CompactFraction = compactFraction
				delta = recovered
				sameGraphBytes(t, "after recovery", oracle, delta)
			}

			oracle.AddBatch(phaseB)
			delta.AddBatch(phaseB)
			r3o := mustSweep(t, oracle)
			r3d := mustSweep(t, delta)
			sameGroups(t, "sweep3", r3o, r3d)
			sameGraphBytes(t, "after sweep3", oracle, delta)
			totalGroups += len(r3o.Groups)

			if durDir != "" {
				if err := delta.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	if totalGroups == 0 {
		t.Fatal("corpus detected no groups anywhere — the harness exercised only the all-clean path")
	}
}

// TestGraphBuildModeCounters pins the observable split between the two
// build paths: a never-compacting detector rebuilds once (the first build)
// and patches afterwards; a NoDelta detector only ever rebuilds.
func TestGraphBuildModeCounters(t *testing.T) {
	feed := func(d *Detector) {
		for round := 0; round < 3; round++ {
			for i := 0; i < 50; i++ {
				d.AddClick(uint32(i), uint32(i%10), uint32(1+round))
			}
			d.Graph()
		}
	}

	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	d.CompactFraction = 1e9
	d.Obs = obs.NewObserver("stream")
	feed(d)
	counters := d.Obs.Metrics.Counters()
	if got := counters["stream.graph.rebuild"]; got != 1 {
		t.Errorf("never-compact: %d rebuilds, want 1", got)
	}
	if got := counters["stream.graph.patch"]; got != 2 {
		t.Errorf("never-compact: %d patches, want 2", got)
	}
	if got := counters["stream.graph.delta_rows"]; got != 150 {
		t.Errorf("delta_rows = %d, want 150", got)
	}

	nd, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	nd.NoDelta = true
	nd.Obs = obs.NewObserver("stream")
	feed(nd)
	counters = nd.Obs.Metrics.Counters()
	if got := counters["stream.graph.rebuild"]; got != 3 {
		t.Errorf("no-delta: %d rebuilds, want 3", got)
	}
	if got := counters["stream.graph.patch"]; got != 0 {
		t.Errorf("no-delta: %d patches, want 0", got)
	}
}

// TestCompactionPolicyTriggers pins the CompactFraction policy arithmetic:
// with the base at N rows, a pending tail ≤ frac·N patches and a larger
// one compacts.
func TestCompactionPolicyTriggers(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	d.CompactFraction = 0.5
	d.Obs = obs.NewObserver("stream")
	for i := 0; i < 100; i++ {
		d.AddClick(uint32(i), uint32(i%10), 1)
	}
	d.Graph() // build 1: full rebuild, base = 100 rows

	for i := 0; i < 40; i++ { // tail 40 ≤ 0.5·100 → patch
		d.AddClick(uint32(200+i), uint32(i%10), 1)
	}
	d.Graph()
	counters := d.Obs.Metrics.Counters()
	if counters["stream.graph.patch"] != 1 || counters["stream.graph.rebuild"] != 1 {
		t.Fatalf("after small tail: patch=%d rebuild=%d, want 1/1",
			counters["stream.graph.patch"], counters["stream.graph.rebuild"])
	}

	for i := 0; i < 30; i++ { // tail 70 > 0.5·100 → compact
		d.AddClick(uint32(300+i), uint32(i%10), 1)
	}
	d.Graph()
	counters = d.Obs.Metrics.Counters()
	if counters["stream.graph.patch"] != 1 || counters["stream.graph.rebuild"] != 2 {
		t.Fatalf("after large tail: patch=%d rebuild=%d, want 1/2",
			counters["stream.graph.patch"], counters["stream.graph.rebuild"])
	}
}

// TestEventsCountsLifetimeTotal pins Events' contract (the resolution of
// the old PendingEvents name/doc mismatch): the count is the lifetime
// total of non-zero click events, monotone across sweeps and resets.
func TestEventsCountsLifetimeTotal(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.AddClick(uint32(i), 1, 2)
	}
	d.AddClick(99, 1, 0) // zero-click: dropped, not counted
	if got := d.Events(); got != 30 {
		t.Fatalf("Events = %d, want 30", got)
	}
	mustSweep(t, d)
	if got := d.Events(); got != 30 {
		t.Errorf("Events after sweep = %d, want 30 (sweeps must not consume it)", got)
	}
	d.Reset()
	if got := d.Events(); got != 30 {
		t.Errorf("Events after reset = %d, want 30 (resets must not consume it)", got)
	}
	d.AddBatch([]clicktable.Record{{UserID: 1, ItemID: 2, Clicks: 3}, {UserID: 2, ItemID: 2, Clicks: 0}})
	if got := d.Events(); got != 31 {
		t.Errorf("Events after batch = %d, want 31", got)
	}
}
