package stream

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/synth"
)

// TestSweepAuditTrail streams an attack through two sweeps with an event
// sink attached and checks the streaming audit contract: every sweep is
// bracketed by sweep.start and sweep.commit, committed groups get verdict
// events with evidence, ingestion feeds the stream.clicks counter, and
// the JSONL sequence stays contiguous.
func TestSweepAuditTrail(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)

	d, err := New(background, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := obs.NewObserver("stream")
	o.Events = obs.NewEventSink(&buf, 0)
	d.Obs = o

	if _, err := d.Detect(); err != nil { // full baseline sweep
		t.Fatal(err)
	}
	d.AddBatch(attack)
	res, err := d.Detect() // incremental sweep catches the attack
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("streamed attack produced no groups; verdict assertions would be vacuous")
	}

	var events []obs.Event
	starts, commits, verdicts := 0, 0, 0
	for i, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("audit line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("audit line %d has seq %d (lost or torn line)", i+1, e.Seq)
		}
		switch e.Type {
		case obs.EventSweepStart:
			starts++
			if e.Reason != "full" && e.Reason != "incremental" {
				t.Errorf("sweep.start with unknown type %q", e.Reason)
			}
		case obs.EventSweepCommit:
			commits++
			if commits == 2 && e.Groups != len(res.Groups) {
				t.Errorf("final sweep.commit groups = %d, want %d", e.Groups, len(res.Groups))
			}
		case obs.EventGroupVerdict:
			verdicts++
			if e.Stat == "" {
				t.Errorf("sweep verdict without evidence statistics: %+v", e)
			}
		}
		events = append(events, e)
	}
	if starts != 2 || commits != 2 {
		t.Errorf("got %d sweep.start / %d sweep.commit events, want 2/2", starts, commits)
	}
	if verdicts != len(res.Groups) {
		t.Errorf("%d verdict events for %d committed groups", verdicts, len(res.Groups))
	}
	// Sweep brackets must be ordered: a commit never precedes its start.
	depth := 0
	for _, e := range events {
		switch e.Type {
		case obs.EventSweepStart:
			depth++
		case obs.EventSweepCommit, obs.EventSweepAbort:
			depth--
		}
		if depth < 0 || depth > 1 {
			t.Fatalf("unbalanced sweep brackets at seq %d", e.Seq)
		}
	}

	if got := o.Metrics.Counters()["stream.clicks"]; got == 0 {
		t.Error("AddBatch ingested clicks but stream.clicks counter is 0")
	}
}
