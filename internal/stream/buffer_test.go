package stream

import (
	"context"
	"testing"
	"time"

	"repro/internal/clicktable"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func rec(u uint32) clicktable.Record { return clicktable.Record{UserID: u, ItemID: 1, Clicks: 2} }

func TestBufferDeliversEverythingUnderCapacity(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(d, BufferConfig{Capacity: 64})
	for u := uint32(0); u < 50; u++ {
		if !b.Offer(rec(u)) {
			t.Fatalf("offer %d rejected", u)
		}
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := d.Events(); got != 50 {
		t.Fatalf("detector saw %d events, want 50", got)
	}
	accepted, shed := b.Stats()
	if accepted != 50 || shed != 0 {
		t.Fatalf("stats accepted=%d shed=%d", accepted, shed)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b.Offer(rec(99)) {
		t.Fatal("offer after close accepted")
	}
}

// TestBufferShedOldest fills a drainer-less buffer past capacity and
// checks that the oldest clicks are the ones sacrificed.
func TestBufferShedOldest(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b := newBuffer(d, BufferConfig{Capacity: 4, Policy: ShedOldest})
	for u := uint32(1); u <= 6; u++ {
		if !b.Offer(rec(u)) {
			t.Fatalf("shed-oldest rejected incoming click %d", u)
		}
	}
	if depth := b.Depth(); depth != 4 {
		t.Fatalf("depth = %d, want 4", depth)
	}
	if _, shed := b.Stats(); shed != 2 {
		t.Fatalf("shed = %d, want 2", shed)
	}
	b.startDrain()
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Users 1 and 2 were shed; 3–6 survive.
	g := d.Graph()
	for u := uint32(1); u <= 6; u++ {
		want := u >= 3
		if got := g.UserDegree(u) > 0; got != want {
			t.Fatalf("user %d present=%v, want %v", u, got, want)
		}
	}
}

func TestBufferShedNewest(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var sinkBuf []obs.Event
	o := obs.NewObserver("stream")
	o.Events = obs.NewEventSink(nil, 16)
	d.Obs = o
	b := newBuffer(d, BufferConfig{Capacity: 4, Policy: ShedNewest})
	for u := uint32(1); u <= 4; u++ {
		if !b.Offer(rec(u)) {
			t.Fatalf("offer %d rejected below capacity", u)
		}
	}
	if b.Offer(rec(5)) {
		t.Fatal("offer into a full shed-newest buffer accepted")
	}
	if _, shed := b.Stats(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	sinkBuf = o.Events.Events()
	found := false
	for _, e := range sinkBuf {
		if e.Type == obs.EventIngestShed && e.Reason == "newest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ingest.shed audit event: %+v", sinkBuf)
	}
}

func TestBufferShedBlockTimesOutThenUnblocks(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b := newBuffer(d, BufferConfig{Capacity: 2, Policy: ShedBlock, BlockWait: 20 * time.Millisecond})
	b.Offer(rec(1))
	b.Offer(rec(2))
	start := time.Now()
	if b.Offer(rec(3)) {
		t.Fatal("offer into a full blocked buffer accepted with no drainer")
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("block policy gave up after %v, before the deadline", waited)
	}
	if _, shed := b.Stats(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	// With the drainer running, a blocked Offer gets its slot instead of
	// timing out.
	b.startDrain()
	if !b.Offer(rec(4)) {
		t.Fatal("offer rejected though the drainer freed space")
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := d.Events(); got != 3 {
		t.Fatalf("detector saw %d events, want 3 (click 3 was shed)", got)
	}
}

func TestBufferFlushDeadline(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b := newBuffer(d, BufferConfig{Capacity: 8}) // no drainer: queue never empties
	b.Offer(rec(1))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Flush(ctx); err == nil {
		t.Fatal("flush with a stuck drainer returned nil")
	}
}

func TestBackoffExponentialCappedAndReset(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	var got []time.Duration
	for i := 0; i < 5; i++ {
		got = append(got, b.Next())
	}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
	b.Reset()
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("post-reset delay = %v", d)
	}
	// Jitter stays within its fraction and uses the injected source.
	j := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5, Rand: func(n int64) int64 { return n - 1 }}
	if d := j.Next(); d < 100*time.Millisecond || d > 150*time.Millisecond {
		t.Fatalf("jittered delay = %v, want within [100ms, 150ms]", d)
	}
}

// TestWatchdogRetriesThroughFailures arms a fault that kills the first two
// sweeps; the watchdog must retry with backoff (auditing each retry),
// recover, and clear the degraded gauge.
func TestWatchdogRetriesThroughFailures(t *testing.T) {
	defer faultinject.Reset()
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver("stream")
	o.Events = obs.NewEventSink(nil, 64)
	d.Obs = o
	d.AddClick(1, 2, 3)

	faultinject.Arm("stream.sweep", faultinject.Fault{Panic: "injected sweep failure", Times: 2})
	w := &Watchdog{
		D:        d,
		Interval: 5 * time.Millisecond,
		Backoff:  Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: -1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for d.Detections() == 0 {
		select {
		case <-deadline:
			t.Fatal("watchdog never recovered")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("run returned %v", err)
	}
	retries := 0
	for _, e := range o.Events.Events() {
		if e.Type == obs.EventSweepRetry {
			retries++
			if e.Reason == "" || e.Stat == "" {
				t.Fatalf("retry event missing cause or backoff: %+v", e)
			}
		}
	}
	if retries != 2 {
		t.Fatalf("audited %d retries, want 2", retries)
	}
	if v := o.Gauge("stream.degraded").Value(); v != 0 {
		t.Fatalf("degraded gauge = %d after recovery", v)
	}
}
