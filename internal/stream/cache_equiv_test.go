package stream

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/synth"
)

// This file is the golden-oracle harness for the component verdict cache:
// across the shared ≥ 20-workload corpus (synth.EquivCorpus — the fourth
// consumer, after the sharding, delta-maintenance and serving harnesses), a
// detector replaying cached component verdicts must produce sweep results
// AND served index epochs byte-identical to a detector pinned to the
// cache-free path (NoCache — the stream CLI's -no-cache). The drive folds
// in warm full sweeps (all-hit replays), incremental sweeps (dirty-set
// skips), mid-sweep ingestion, adversarial single-click component merges
// and splits, resets, and durable crash recovery with a cold cache, so
// every invalidation rule of DESIGN.md §15 is a corpus member, not a
// special case.

// cacheEquivHarness drives one oracle/cached detector pair through
// identical input and compares every committed sweep.
type cacheEquivHarness struct {
	t              *testing.T
	oracle, cached *Detector
	oracleStore    *serve.Store
	cachedStore    *serve.Store
}

// publishTo wires d's commits into a fresh serve.Store, as cmd/stream and
// the facade do — the cache must never change what gets published, nor
// when.
func publishTo(d *Detector, store *serve.Store) {
	thot, tclick := d.params.THot, d.params.TClick
	d.OnCommit = func(res *detect.Result, g *bipartite.Graph) {
		_ = store.Publish(serve.Compile(g, res, thot, tclick))
	}
}

func (h *cacheEquivHarness) feed(records []clicktable.Record) {
	h.oracle.AddBatch(records)
	h.cached.AddBatch(records)
}

func (h *cacheEquivHarness) click(u, v, n uint32) {
	h.oracle.AddClick(u, v, n)
	h.cached.AddClick(u, v, n)
}

// sweep runs one sweep (full or incremental) on both detectors — oracle
// first, so a fault armed for the cached sweep is not consumed early — and
// compares serialized groups, served epoch, and a sample of served
// verdicts.
func (h *cacheEquivHarness) sweep(label string, full bool, beforeCached func()) *detect.Result {
	h.t.Helper()
	run := func(d *Detector) *detect.Result {
		h.t.Helper()
		var res *detect.Result
		var err error
		if full {
			res, err = d.FullDetect()
		} else {
			res, err = d.Sweep()
		}
		if err != nil {
			h.t.Fatalf("%s: sweep: %v", label, err)
		}
		return res
	}
	want := run(h.oracle)
	if beforeCached != nil {
		beforeCached()
	}
	got := run(h.cached)
	sameGroups(h.t, label, want, got)
	if oe, ce := h.oracleStore.Epoch(), h.cachedStore.Epoch(); oe != ce {
		h.t.Fatalf("%s: served epoch diverged: oracle %d, cached %d", label, oe, ce)
	}
	h.sameServed(label, want)
	return want
}

// sameServed spot-checks the published indexes: group counts, suspicious
// totals, and the verdicts for each group's first member pair must answer
// identically out of both stores.
func (h *cacheEquivHarness) sameServed(label string, res *detect.Result) {
	h.t.Helper()
	oix, cix := h.oracleStore.Current(), h.cachedStore.Current()
	if oix == nil || cix == nil {
		if (oix == nil) != (cix == nil) {
			h.t.Fatalf("%s: one store published, the other did not", label)
		}
		return
	}
	if oix.NumGroups() != cix.NumGroups() ||
		oix.NumSuspiciousUsers() != cix.NumSuspiciousUsers() ||
		oix.NumSuspiciousItems() != cix.NumSuspiciousItems() {
		h.t.Fatalf("%s: served index shape diverged", label)
	}
	for _, grp := range res.Groups {
		u, v := uint32(grp.Users[0]), uint32(grp.Items[0])
		if !reflect.DeepEqual(oix.User(u), cix.User(u)) ||
			!reflect.DeepEqual(oix.Item(v), cix.Item(v)) ||
			!reflect.DeepEqual(oix.Pair(u, v), cix.Pair(u, v)) {
			h.t.Fatalf("%s: served verdicts for pair (%d,%d) diverged", label, u, v)
		}
	}
}

// TestCacheEquivalenceGoldenWorkloads is the harness proper. Per workload:
//
//	background → sweep 1 (first sweep: full) → full sweep 2 (unchanged
//	graph: warm, all components replay) → attack phase A → incremental
//	sweep 3 → adversarial single-click merge (a TClick-weight bridge
//	between two detected groups) and split (a click pushing a group item
//	over THot) → attack phase B → sweep 6.
//
// Workload index picks the hostile extras, mirroring the delta harness:
// i%3 == 0 injects clicks mid-sweep into the cached detector (fault site
// stream.sweep); i%4 == 1 runs the cached detector durably and
// crash-recovers it — the reopened detector starts with a COLD cache and
// must converge to identical verdicts; i%5 == 0 resets both detectors at
// the end (cache purged) and re-sweeps the same history.
func TestCacheEquivalenceGoldenWorkloads(t *testing.T) {
	defer faultinject.Reset()
	cfgs := synth.EquivCorpus()
	if len(cfgs) < 20 {
		t.Fatalf("corpus has %d workloads, want ≥ 20", len(cfgs))
	}
	totalGroups, totalHits := 0, int64(0)
	for i, cfg := range cfgs {
		t.Run(fmt.Sprintf("workload%02d", i), func(t *testing.T) {
			defer faultinject.Reset()
			params := deltaEquivParams(cfg)
			ds := synth.MustGenerate(cfg)
			background, attack := splitDataset(ds)
			half := len(attack) / 2
			phaseA, phaseB := attack[:half], attack[half:]
			var bg []clicktable.Record
			background.Each(func(r clicktable.Record) bool {
				bg = append(bg, r)
				return true
			})

			oracle, err := New(nil, params)
			if err != nil {
				t.Fatal(err)
			}
			oracle.NoCache = true

			var cached *Detector
			durDir := ""
			if i%4 == 1 {
				durDir = t.TempDir()
				cached, _, err = Open(Durability{Dir: durDir, SnapshotEvery: 150, SegmentBytes: 1 << 16}, params, nil)
			} else {
				cached, err = New(nil, params)
			}
			if err != nil {
				t.Fatal(err)
			}

			h := &cacheEquivHarness{
				t: t, oracle: oracle, cached: cached,
				oracleStore: serve.NewStore(nil), cachedStore: serve.NewStore(nil),
			}
			publishTo(oracle, h.oracleStore)
			publishTo(cached, h.cachedStore)

			h.feed(bg)
			// Mid-sweep ingestion (i%3 == 0): the fault site fires inside the
			// cached detector's sweep, after its snapshot — the clicks must be
			// invisible to that sweep (and to its cache stores) and surface in
			// the next one. The oracle gets them right after.
			midSweep := phaseA[:min(8, len(phaseA))]
			var arm func()
			if i%3 == 0 {
				arm = func() {
					faultinject.Arm("stream.sweep", faultinject.Fault{
						Do:    func() { cached.AddBatch(midSweep) },
						Times: 1,
					})
				}
			}
			h.sweep("sweep1", false, arm)
			if i%3 == 0 {
				faultinject.Reset()
				oracle.AddBatch(midSweep)
			}

			// Two full sweeps over the (oracle-side unchanged) graph. Sweep 1
			// ingested the whole background, so every component was in its
			// dirty set and nothing was cached; the first full sweep consults
			// and stores every component, and the second must replay them all
			// without changing a byte of the result or the served epoch
			// cadence.
			h.sweep("warm-full", true, nil)
			h.sweep("warm-full2", true, nil)

			h.feed(phaseA)
			r3 := h.sweep("sweep3", false, nil)

			// Adversarial merge: one click of exactly TClick weight bridging
			// two detected groups fuses their residual components — both
			// fingerprints change, neither may replay stale verdicts.
			if len(r3.Groups) >= 2 {
				g0, g1 := r3.Groups[0], r3.Groups[1]
				h.click(uint32(g0.Users[0]), uint32(g1.Items[0]), params.TClick)
				h.sweep("merge", false, nil)
			}
			// Adversarial split: one click pushing a detected group's item
			// over THot flips its hot bit, so screening drops it and the
			// group shrinks or splits — a change invisible in the component's
			// own CSR weights-topology alone on the oracle's full-graph view,
			// caught by the hot bits folded into the fingerprint.
			if len(r3.Groups) >= 1 {
				h.click(0, uint32(r3.Groups[0].Items[0]), uint32(params.THot)+1)
				h.sweep("split", false, nil)
			}

			if durDir != "" {
				// Crash: abandon the durable cached detector, reopen the
				// directory. The recovered detector's cache is COLD by
				// construction (the cache is volatile, never persisted); its
				// next sweeps must converge to identical verdicts and epochs.
				recovered, info, rerr := Open(Durability{Dir: durDir, SnapshotEvery: 150, SegmentBytes: 1 << 16}, params, nil)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if info.ColdStart {
					t.Fatal("recovery saw a cold start")
				}
				if hits := recovered.CacheStats().Hits; hits != 0 {
					t.Fatalf("recovered detector's cache is not cold: %d hits", hits)
				}
				// The store outlives the crash (it is the serving side);
				// recovered commits continue its epoch sequence.
				publishTo(recovered, h.cachedStore)
				totalHits += cached.CacheStats().Hits
				h.cached = recovered
				cached = recovered
			}

			h.feed(phaseB)
			r6 := h.sweep("sweep6", false, nil)
			totalGroups += len(r6.Groups)

			if i%5 == 0 {
				// Reset both: the cached detector must purge its entries (the
				// history is re-swept from scratch) and still agree.
				oracle.Reset()
				cached.Reset()
				h.sweep("post-reset", false, nil)
			}

			totalHits += cached.CacheStats().Hits
			if durDir != "" {
				if err := cached.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	if totalGroups == 0 {
		t.Fatal("corpus detected no groups anywhere — the harness exercised only the all-clean path")
	}
	if totalHits == 0 {
		t.Fatal("no sweep anywhere replayed a cached verdict — the harness never exercised the hit path")
	}
}

// TestConcurrentIngestDuringCachedSweeps is the -race companion: while full
// sweeps replay cached verdicts, a goroutine hammers AddClick the whole
// time. Served epochs must stay strictly monotone and every committed
// result must stay byte-stable after publication — a cache hit must never
// hand out state a concurrent ingest can dirty.
func TestConcurrentIngestDuringCachedSweeps(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	params := smallParams()
	d, err := New(nil, params)
	if err != nil {
		t.Fatal(err)
	}
	store := serve.NewStore(nil)
	type committed struct {
		epoch  uint64
		frozen []byte         // serialized at commit time
		groups []detect.Group // the very slices that were committed
	}
	var commits []committed
	d.OnCommit = func(res *detect.Result, g *bipartite.Graph) {
		_ = store.Publish(serve.Compile(g, res, params.THot, params.TClick))
		commits = append(commits, committed{store.Epoch(), groupBytes(res.Groups), res.Groups})
	}

	background, attack := splitDataset(ds)
	var bg []clicktable.Record
	background.Each(func(r clicktable.Record) bool {
		bg = append(bg, r)
		return true
	})
	d.AddBatch(bg)
	d.AddBatch(attack)
	if _, err := d.FullDetect(); err != nil { // cold pass fills the cache
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A narrow band of organic users churns throughout; components not
		// containing them keep matching their fingerprints mid-ingest.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				d.AddClick(uint32(i%7), uint32(i%11), 1)
			}
		}
	}()
	for k := 0; k < 5; k++ {
		if _, err := d.FullDetect(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if hits := d.CacheStats().Hits; hits == 0 {
		t.Fatal("no full sweep replayed a cached verdict; the race surface was never exercised")
	}
	for i, c := range commits {
		if i > 0 && c.epoch <= commits[i-1].epoch {
			t.Errorf("served epochs not monotone: commit %d has epoch %d after %d",
				i, c.epoch, commits[i-1].epoch)
		}
		if !bytes.Equal(groupBytes(c.groups), c.frozen) {
			t.Errorf("groups served under epoch %d were mutated after commit", c.epoch)
		}
	}
}
