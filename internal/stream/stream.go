// Package stream implements the paper's Section VIII future-work
// direction: incremental "Ride Item's Coattails" detection over a dynamic
// click stream, so that attacks are caught while a marketing campaign is
// still running instead of in a nightly batch.
//
// The detector keeps the click graph under a stream of click events and
// exploits two structural facts to avoid full recomputation:
//
//  1. Click streams only ADD edges and weight. Both pruning conditions of
//     Algorithm 3 are monotone in the edge set, so a node inside a valid
//     candidate group cannot fall out of one because of new clicks —
//     previously detected groups only need cheap re-screening (hotness may
//     shift as items gain clicks), never re-extraction.
//  2. A new attack group must involve recently touched nodes. Scoped
//     detection seeds Algorithm 2's graph generator with the users touched
//     since the last detection, pruning the search to their neighborhoods.
package stream

import (
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
)

// Detector is an incremental RICD detector. It is not safe for concurrent
// use; callers stream events and periodically ask for Detect.
type Detector struct {
	params core.Params

	// ExpandDegreeCap bounds dirty-region seed expansion: items with more
	// live clickers than the cap are not traversed through (their fan
	// bases cannot co-form a near-biclique with a seed anyway — see
	// core.GraphGeneratorBounded). Zero falls back to DefaultExpandCap.
	ExpandDegreeCap int

	// Obs, when non-nil, records every Detect as a stream.sweep span
	// (sweep type, dirty-user scope, seed count, sweep-local graph size)
	// and feeds stream.* metrics, including separate full/incremental
	// sweep latency histograms for incremental-speedup ratios. Nil costs
	// nothing.
	Obs *obs.Observer

	table *clicktable.Table
	graph *bipartite.Graph // nil when table has pending rows
	dirty map[bipartite.NodeID]struct{}

	// cached are the groups of the last detection, kept for cheap
	// re-validation.
	cached []detect.Group

	// stats
	events     int
	detections int
	lastFull   bool
}

// DefaultExpandCap is the default item-degree traversal bound for
// dirty-region expansion: generous relative to plausible attack-group head
// counts (the paper's case-study group had 28 accounts) yet far below hot
// items' fan bases.
const DefaultExpandCap = 500

// New creates an incremental detector over an optional initial click table
// (nil starts empty). The initial table counts as dirty: the first Detect
// is a full detection.
func New(initial *clicktable.Table, params core.Params) (*Detector, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	d := &Detector{
		params: params,
		table:  clicktable.New(0),
		dirty:  map[bipartite.NodeID]struct{}{},
	}
	if initial != nil {
		initial.Each(func(r clicktable.Record) bool {
			d.table.AppendRecord(r)
			return true
		})
	}
	d.lastFull = false
	return d, nil
}

// AddClick streams one aggregated click event.
func (d *Detector) AddClick(user, item uint32, clicks uint32) {
	if clicks == 0 {
		return
	}
	d.table.Append(user, item, clicks)
	d.dirty[user] = struct{}{}
	d.graph = nil
	d.events++
	d.Obs.Counter("stream.events").Inc()
	d.Obs.Gauge("stream.dirty_users").Set(int64(len(d.dirty)))
}

// AddBatch streams a batch of click records.
func (d *Detector) AddBatch(records []clicktable.Record) {
	for _, r := range records {
		d.AddClick(r.UserID, r.ItemID, r.Clicks)
	}
}

// PendingEvents returns the number of click events streamed since creation.
func (d *Detector) PendingEvents() int { return d.events }

// Graph returns the current aggregated click graph, rebuilding it if the
// stream advanced. The returned graph must not be mutated.
func (d *Detector) Graph() *bipartite.Graph {
	if d.graph == nil {
		d.table = d.table.Aggregate()
		d.graph = d.table.ToGraph()
	}
	return d.graph
}

// Detect runs incremental detection: previously detected groups are
// re-screened against the current graph, and group extraction runs scoped
// to the neighborhoods of nodes touched since the last call. The very
// first call (or a call after Reset) is a full detection.
func (d *Detector) Detect() (*detect.Result, error) {
	start := time.Now()
	full := !d.lastFull
	sp := d.Obs.Root().Start("stream.sweep")
	sweepType := "incremental"
	if full {
		sweepType = "full"
	}
	sp.Set("type", sweepType)
	sp.SetInt("dirty_users", int64(len(d.dirty)))

	bsp := sp.Start("graph_rebuild")
	g := d.Graph()
	bsp.End()
	hsp := sp.Start("hotset")
	hot := core.ComputeHotSet(g, d.params.THot)
	hsp.End()

	var seeds detect.Seeds
	if !full {
		// Seed only dirty users showing the crowd-worker signature: an
		// edge of weight ≥ T_click to a non-hot item. Every member of a
		// screenable group satisfies this (the user behavior check
		// requires it), so filtering cannot lose a detectable group, and
		// it keeps ordinary background churn from widening the sweep.
		fsp := sp.Start("seed_filter")
		for u := range d.dirty {
			if d.suspiciousUser(g, hot, u) {
				seeds.Users = append(seeds.Users, u)
			}
		}
		fsp.SetInt("seeds", int64(len(seeds.Users)))
		fsp.End()
	}

	var fresh []detect.Group
	if full {
		work := core.GraphGenerator(g, detect.Seeds{})
		fresh = core.NearBicliqueExtractObserved(work, d.params, sp, d.Obs)
	} else if len(seeds.Users) > 0 {
		cap := d.ExpandDegreeCap
		if cap <= 0 {
			cap = DefaultExpandCap
		}
		gsp := sp.Start("dirty_expand")
		work := core.GraphGeneratorBounded(g, seeds, cap)
		gsp.SetInt("scope_users", int64(work.LiveUsers()))
		gsp.SetInt("scope_items", int64(work.LiveItems()))
		gsp.End()
		d.Obs.Gauge("stream.sweep.scope_users").Set(int64(work.LiveUsers()))
		fresh = core.NearBicliqueExtractObserved(work, d.params, sp, d.Obs)
	}

	// Merge candidates: freshly extracted groups around the dirty region
	// plus the cached groups (monotonicity keeps their extraction validity;
	// screening below re-judges them against current weights and hotness).
	candidates := append(append([]detect.Group(nil), fresh...), d.cached...)
	ssp := sp.Start("screening")
	groups := core.ScreenGroupsObserved(g, candidates, hot, d.params, ssp, d.Obs)
	ssp.End()

	res := &detect.Result{Groups: groups}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	sp.SetInt("groups", int64(len(groups)))
	sp.End()
	d.Obs.Counter("stream.sweeps." + sweepType).Inc()
	d.Obs.Histogram("stream.sweep." + sweepType).Observe(res.Elapsed)
	d.Obs.Gauge("stream.dirty_users").Set(0)

	d.cached = groups
	d.dirty = map[bipartite.NodeID]struct{}{}
	d.lastFull = true
	d.detections++
	return res, nil
}

// suspiciousUser reports whether u carries the abnormal-click signature of
// Section IV-A: at least T_click clicks on some ordinary (non-hot) item.
func (d *Detector) suspiciousUser(g *bipartite.Graph, hot *core.HotSet, u bipartite.NodeID) bool {
	found := false
	g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
		if w >= d.params.TClick && !hot.IsHot(v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// FullDetect bypasses the incremental path and runs the batch RICD detector
// on the current graph — the reference the incremental result is validated
// against in tests and benchmarks.
func (d *Detector) FullDetect() (*detect.Result, error) {
	det := &core.Detector{Params: d.params, Obs: d.Obs}
	return det.Detect(d.Graph())
}

// Reset drops the cached detection state, forcing the next Detect to run
// fully (for example after a parameter change via Retune).
func (d *Detector) Reset() {
	d.cached = nil
	d.lastFull = false
	d.dirty = map[bipartite.NodeID]struct{}{}
}

// Retune swaps detection parameters and resets the incremental state.
func (d *Detector) Retune(params core.Params) error {
	if err := params.Validate(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	d.params = params
	d.Reset()
	return nil
}

// Detections returns how many Detect calls have run.
func (d *Detector) Detections() int { return d.detections }
