// Package stream implements the paper's Section VIII future-work
// direction: incremental "Ride Item's Coattails" detection over a dynamic
// click stream, so that attacks are caught while a marketing campaign is
// still running instead of in a nightly batch.
//
// The detector keeps the click graph under a stream of click events and
// exploits two structural facts to avoid full recomputation:
//
//  1. Click streams only ADD edges and weight. Both pruning conditions of
//     Algorithm 3 are monotone in the edge set, so a node inside a valid
//     candidate group cannot fall out of one because of new clicks —
//     previously detected groups only need cheap re-screening (hotness may
//     shift as items gain clicks), never re-extraction.
//  2. A new attack group must involve recently touched nodes. Scoped
//     detection seeds Algorithm 2's graph generator with the users touched
//     since the last detection, pruning the search to their neighborhoods.
package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bipartite"
	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Detector is an incremental RICD detector. Ingestion and detection are
// safe to run concurrently: AddClick/AddBatch may race with an in-flight
// Detect, which sweeps a consistent snapshot of the graph taken at entry;
// clicks streamed during a sweep land in the next one.
type Detector struct {
	params core.Params

	// ExpandDegreeCap bounds dirty-region seed expansion: items with more
	// live clickers than the cap are not traversed through (their fan
	// bases cannot co-form a near-biclique with a seed anyway — see
	// core.GraphGeneratorBounded). Zero falls back to DefaultExpandCap.
	ExpandDegreeCap int

	// NoDelta pins the historical full-rebuild graph path: every sweep
	// re-aggregates the whole click history and rebuilds the graph from
	// scratch instead of patching the delta onto the previous build. Output
	// is byte-identical either way — the flag exists as the equivalence
	// oracle (stream CLI -no-delta) and as an escape hatch, mirroring
	// core.Params.NoFrontier. Set before first use; do not flip afterwards.
	NoDelta bool

	// NoCache disables the cross-sweep component verdict cache (the
	// equivalence oracle, stream CLI -no-cache): every sweep re-detects
	// every component live. Output is byte-identical either way — the
	// cache's fingerprint covers all verdict-affecting inputs (DESIGN.md
	// §15) and cache_equiv_test.go pins the equivalence. Set before first
	// use; do not flip afterwards.
	NoCache bool

	// CacheBytes bounds the verdict cache (0 = core.DefaultCacheBytes).
	// Set before first use.
	CacheBytes int64

	// CompactFraction is the delta-maintenance compaction policy: when the
	// raw rows accumulated since the last compaction exceed this fraction
	// of the aggregated base table, the next graph build folds them in with
	// a full rebuild instead of patching (amortizing the pending tail away).
	// Zero means DefaultCompactFraction; ignored under NoDelta. Set before
	// first use; do not change afterwards.
	CompactFraction float64

	// Obs, when non-nil, records every Detect as a stream.sweep span
	// (sweep type, dirty-user scope, seed count, sweep-local graph size)
	// and feeds stream.* metrics, including separate full/incremental
	// sweep latency histograms for incremental-speedup ratios. Nil costs
	// nothing.
	Obs *obs.Observer

	// OnCommit, when non-nil, is invoked after every COMMITTED sweep with
	// the sweep's result and the immutable graph it examined — the
	// sweep-completion hook the serving layer uses to compile and publish
	// a fresh verdict index (serve.Compile + Store.Publish). It runs on
	// the sweeping goroutine, outside the detector's lock, so ingestion
	// proceeds while it executes; aborted (partial) sweeps never fire it,
	// so consumers only ever see fully committed verdicts. Set it before
	// the first sweep and do not mutate it afterwards.
	OnCommit func(res *detect.Result, g *bipartite.Graph)

	// mu guards all mutable state below. Detect holds it only while taking
	// its snapshot and while committing a completed sweep, never during the
	// detection work itself, so ingestion stalls for microseconds, not for
	// a whole sweep.
	mu    sync.Mutex
	table *clicktable.Staged
	// graph is the last built click graph: nil before the first build,
	// stale while table.DeltaLen() > 0. Builds after the first patch the
	// delta onto the previous graph (bipartite.PatchGraph) unless the
	// compaction policy or NoDelta forces a full rebuild; either way the
	// result is byte-identical to rebuilding from the full history.
	graph *bipartite.Graph
	// dirty maps each user touched since the last committed sweep to the
	// record-clock value (seq) of their newest click. The seq lets sweep
	// commits — live or WAL-replayed — retire exactly the users whose
	// newest activity the sweep's snapshot actually saw.
	dirty map[bipartite.NodeID]uint64

	// seq is the detector's record clock: one tick per click event and per
	// committed sweep. Durable detectors stamp WAL records with it, so a
	// snapshot's clock says precisely which WAL tail still needs replay.
	seq uint64

	// inflight is the dirty set a running sweep took ownership of, kept
	// visible so a concurrent state snapshot still includes those users —
	// if the sweep aborts they merge back, and losing them from a snapshot
	// taken mid-sweep would silently drop detections after recovery.
	inflight map[bipartite.NodeID]uint64

	// cached are the groups of the last detection, kept for cheap
	// re-validation.
	cached []detect.Group

	// cache is the cross-sweep component verdict cache, created lazily by
	// cacheLocked. It lives across sweeps and is purged on every reset
	// (Reset/Retune/WAL-replayed resets). It is volatile by design: a
	// recovered detector starts cold and re-derives byte-identical verdicts
	// (the fingerprint, not the cache, is the correctness authority).
	cache *core.VerdictCache

	// durability (all nil/zero for a memory-only detector; see Open)
	wal       *durable.WAL
	dur       Durability
	walBuf    []byte
	walErr    error // first WAL failure, latched; see DurabilityErr
	sinceSnap int   // WAL records since the last snapshot
	snapMu    sync.Mutex

	// stats
	events     int
	detections int
	lastFull   bool

	// lastSweepEnd is when the previous sweep (committed or aborted)
	// finished; the stream.sweep.lag_ms gauge reports the age of that
	// moment at the start of each sweep, the operational "how stale is
	// detection" signal.
	lastSweepEnd time.Time

	// Steady-state scratch buffers, reused across sweeps and batches so
	// the hot ingest/sweep loop stops allocating once warm. All are only
	// touched under mu except seedScratch, which a sweep takes ownership
	// of (swapped to nil under mu) and returns at commit/abort.
	seedScratch []bipartite.NodeID
	deltaEdges  []bipartite.Edge
	walEnds     []int
	walEntries  []durable.Entry
}

// DefaultCompactFraction is the default compaction policy: a full rebuild
// once the raw pending rows exceed half the aggregated base. Patch cost is
// linear in the delta while rebuild cost is sort-dominated over the whole
// history, so by the time the delta is a constant fraction of the base a
// rebuild costs only a small multiple of the patch — compacting there
// bounds both the pending tail's memory and the patch chain's length.
const DefaultCompactFraction = 0.5

// DefaultExpandCap is the default item-degree traversal bound for
// dirty-region expansion: generous relative to plausible attack-group head
// counts (the paper's case-study group had 28 accounts) yet far below hot
// items' fan bases.
const DefaultExpandCap = 500

// New creates an incremental detector over an optional initial click table
// (nil starts empty). The initial table counts as dirty: the first Detect
// is a full detection.
func New(initial *clicktable.Table, params core.Params) (*Detector, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	d := &Detector{
		params: params,
		table:  clicktable.NewStaged(nil),
		dirty:  map[bipartite.NodeID]uint64{},
	}
	if initial != nil {
		d.table = clicktable.NewStaged(initial.Clone())
	}
	d.lastFull = false
	return d, nil
}

// AddClick streams one aggregated click event. Safe to call while a sweep
// is in flight; the click joins the next sweep's dirty region. On a
// durable detector the click is appended to the WAL before it touches the
// in-memory state (write-ahead), so every click visible to a sweep is
// recoverable.
func (d *Detector) AddClick(user, item uint32, clicks uint32) {
	if clicks == 0 {
		return
	}
	d.mu.Lock()
	d.seq++
	logged := false
	if d.walActiveLocked() {
		d.walBuf = appendClickRecord(d.walBuf[:0], user, item, clicks)
		faultinject.Hit("stream.wal.append")
		if err := d.wal.Append(d.seq, d.walBuf); err != nil {
			d.degradeLocked(err)
		} else {
			d.sinceSnap++
			logged = true
		}
	}
	d.table.Append(user, item, clicks)
	d.dirty[user] = d.seq
	d.events++
	n := len(d.dirty)
	d.mu.Unlock()
	d.Obs.Counter("stream.events").Inc()
	d.Obs.Counter("stream.clicks").Add(int64(clicks))
	d.Obs.Gauge("stream.dirty_users").Set(int64(n))
	if logged {
		d.Obs.Counter("stream.wal.appends").Inc()
	}
}

// AddBatch streams a batch of click records under one lock acquisition, so
// bulk replay (log catch-up, backfill) does not pay per-record contention
// against an in-flight sweep. Zero-click records are skipped, matching
// AddClick.
func (d *Detector) AddBatch(records []clicktable.Record) {
	if len(records) == 0 {
		return
	}
	d.mu.Lock()
	walAppends := 0
	if d.walActiveLocked() {
		// Write-ahead for the whole batch in one syscall (and one fsync
		// under SyncAlways): records are encoded back to back into walBuf,
		// then sliced per entry once the buffer has stopped growing.
		d.walBuf = d.walBuf[:0]
		ends := d.walEnds[:0]
		for _, r := range records {
			if r.Clicks == 0 {
				continue
			}
			d.walBuf = appendClickRecord(d.walBuf, r.UserID, r.ItemID, r.Clicks)
			ends = append(ends, len(d.walBuf))
		}
		// entries reuses detector-owned scratch: AppendAll frames the batch
		// into its own buffer before returning, so neither the slice nor the
		// walBuf-aliasing payloads are retained.
		entries := d.walEntries[:0]
		prev := 0
		for i, end := range ends {
			entries = append(entries, durable.Entry{Seq: d.seq + uint64(i) + 1, Payload: d.walBuf[prev:end]})
			prev = end
		}
		d.walEnds, d.walEntries = ends, entries
		faultinject.Hit("stream.wal.append")
		if err := d.wal.AppendAll(entries); err != nil {
			d.degradeLocked(err)
		} else {
			d.sinceSnap += len(entries)
			walAppends = len(entries)
		}
	}
	n := 0
	var clicks int64
	for _, r := range records {
		if r.Clicks == 0 {
			continue
		}
		d.seq++
		d.table.Append(r.UserID, r.ItemID, r.Clicks)
		d.dirty[r.UserID] = d.seq
		d.events++
		n++
		clicks += int64(r.Clicks)
	}
	dirty := len(d.dirty)
	d.mu.Unlock()
	d.Obs.Counter("stream.events").Add(int64(n))
	d.Obs.Counter("stream.clicks").Add(clicks)
	d.Obs.Gauge("stream.dirty_users").Set(int64(dirty))
	if walAppends > 0 {
		d.Obs.Counter("stream.wal.appends").Add(int64(walAppends))
	}
}

// Events returns the total number of click events streamed since the
// detector was created (or, for a durable detector, since its very first
// incarnation — the count survives recovery). It never decreases: sweeps
// consume the dirty region, not this counter. Zero-click events are not
// counted, matching AddClick/AddBatch dropping them.
//
// This method was previously named PendingEvents, whose name wrongly
// suggested events-since-last-sweep while both the doc comment and every
// caller meant the lifetime total; see TestEventsCountsLifetimeTotal.
func (d *Detector) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// Graph returns the current aggregated click graph, bringing it up to date
// if the stream advanced: the clicks since the last build are patched onto
// the previous graph in O(delta) (or the graph is rebuilt from scratch
// when the compaction policy or NoDelta says so — the output is identical
// either way). The returned graph must not be mutated; once built it is
// never modified by the detector (new clicks produce a fresh Graph value),
// so it stays safe to read concurrently with ingestion.
func (d *Detector) Graph() *bipartite.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.graphLocked()
}

// graphLocked brings the aggregated graph up to date; d.mu must be held.
//
// This is the delta-maintenance core: between compactions the graph — not
// the table — is the aggregated source of truth. Fresh clicks accumulate
// as a raw pending tail; a build patches just that tail's aggregate onto
// the previous graph (copy-on-write on touched rows/columns), which costs
// O(clicks since last build) instead of O(total history). When the tail
// outgrows CompactFraction of the base — or under NoDelta, always — the
// build compacts: the full history is re-aggregated and the graph rebuilt
// from scratch, exactly the historical path. bipartite.PatchGraph's
// byte-identity contract (tested by FuzzGraphPatch and the delta/no-delta
// golden harness) makes the two paths indistinguishable to every consumer.
func (d *Detector) graphLocked() *bipartite.Graph {
	if d.graph != nil && d.table.DeltaLen() == 0 {
		return d.graph
	}
	sp := d.Obs.Root().Start("stream.graph")
	faultinject.Hit("stream.graph")
	deltaRows := d.table.DeltaLen()
	frac := d.CompactFraction
	if frac <= 0 {
		frac = DefaultCompactFraction
	}
	patch := !d.NoDelta && d.graph != nil &&
		float64(d.table.PendingLen()) <= frac*float64(d.table.BaseLen())
	if patch {
		delta := d.table.Delta()
		edges := d.deltaEdges[:0]
		delta.Records.Each(func(r clicktable.Record) bool {
			edges = append(edges, bipartite.Edge{U: r.UserID, V: r.ItemID, Weight: r.Clicks})
			return true
		})
		d.deltaEdges = edges
		d.graph = bipartite.PatchGraph(d.graph, edges)
		d.table.MarkPatched()
		sp.Set("mode", "patch")
		d.Obs.Counter("stream.graph.patch").Inc()
	} else {
		d.table.Compact()
		d.graph = d.table.Base().ToGraph()
		sp.Set("mode", "rebuild")
		d.Obs.Counter("stream.graph.rebuild").Inc()
	}
	d.Obs.Counter("stream.graph.delta_rows").Add(int64(deltaRows))
	sp.SetInt("delta_rows", int64(deltaRows))
	sp.End()
	return d.graph
}

// Detect runs incremental detection: previously detected groups are
// re-screened against the current graph, and group extraction runs scoped
// to the neighborhoods of nodes touched since the last call. The very
// first call (or a call after Reset) is a full detection.
func (d *Detector) Detect() (*detect.Result, error) {
	return d.DetectContext(context.Background())
}

// Sweep is the operational name for Detect: one batched pass over the
// clicks accumulated since the last pass.
func (d *Detector) Sweep() (*detect.Result, error) {
	return d.DetectContext(context.Background())
}

// SweepContext is Sweep under a context, with DetectContext's partial-result
// contract. The sweep inherits the component-sharded orchestration of
// core.NearBicliqueExtractCtx: the dirty-region subgraph splits into
// connected components after core pruning and each runs on its own worker
// (bounded by the detector's core.Params.Workers), so a sweep touching
// several disjoint dirty neighborhoods prunes them concurrently while
// producing output identical to a serial sweep.
//
// Pruning inside a sweep is frontier-driven end to end: an incremental
// sweep's work graph is already scoped to the dirty users' neighborhoods
// (GraphGeneratorBounded), so the frontier's all-dirty round-1 seed IS the
// sweep's dirty set rather than a whole-component re-prime, and every later
// round touches only vertices within two hops of an actual removal.
// core.Params.NoFrontier (the stream CLI's -no-frontier) restores the
// full-rescan rounds; output is identical either way.
func (d *Detector) SweepContext(ctx context.Context) (*detect.Result, error) {
	return d.DetectContext(ctx)
}

// DetectContext is Detect under a context. The sweep checks ctx at its
// stage boundaries and inside extraction/screening; a cancelled or
// deadline-expired sweep returns a non-nil PARTIAL result (Result.Partial,
// Result.StageReached) with whatever the completed stages produced, plus
// the context's error. A partial sweep commits nothing: the snapshotted
// dirty region is merged back and the cached groups are left untouched, so
// the next sweep redoes the work in full. A panicking stage is isolated
// into a *detect.StageError.
func (d *Detector) DetectContext(ctx context.Context) (*detect.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()

	// Snapshot: the sweep works on an immutable graph and private copies of
	// the dirty set and cached groups, so ingestion can proceed during it.
	// The sweep takes OWNERSHIP of the dirty map — mid-sweep AddClick marks
	// users in a fresh map, so a click for an already-snapshotted user
	// (streamed after the snapshot, hence invisible to this sweep's graph)
	// stays dirty for the next sweep instead of being un-marked by the
	// commit below.
	d.mu.Lock()
	g := d.graphLocked()
	params := d.params
	params.Cache = d.cacheLocked()
	full := !d.lastFull
	snap := d.dirty
	d.dirty = map[bipartite.NodeID]uint64{}
	// inflight keeps the owned set visible to concurrent state snapshots;
	// startSeq is the record-clock position this sweep's graph reflects —
	// the WAL sweep record carries it so replayed commits retire exactly
	// the same users.
	d.inflight = snap
	startSeq := d.seq
	// The seed slice is detector-owned scratch: this sweep takes ownership
	// (a hypothetical concurrent sweep would just allocate fresh) and
	// returns it at commit/abort, so steady-state sweeps reuse one backing
	// array instead of allocating per sweep.
	dirty := d.seedScratch[:0]
	d.seedScratch = nil
	for u := range snap {
		dirty = append(dirty, u)
	}
	cached := append([]detect.Group(nil), d.cached...)
	lastEnd := d.lastSweepEnd
	d.mu.Unlock()
	// Sorted seeds make the sweep bit-reproducible regardless of map
	// iteration order — required for the recovery-equivalence guarantee
	// (a replayed detector must re-derive byte-identical sweeps).
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	// The sorted dirty set doubles as the verdict cache's touched hint:
	// components containing a dirty user are known-churned and skip the
	// cache (shard.go). The slice is not mutated until commit/abort returns
	// it to scratch, well after detection finishes reading it.
	params.CacheTouched = dirty
	if !lastEnd.IsZero() {
		d.Obs.Gauge("stream.sweep.lag_ms").Set(time.Since(lastEnd).Milliseconds())
	}

	sp := d.Obs.Root().Start("stream.sweep")
	sweepType := "incremental"
	if full {
		sweepType = "full"
	}
	sp.Set("type", sweepType)
	pruneMode := "frontier"
	if params.NoFrontier {
		pruneMode = "rescan"
	}
	sp.Set("prune_mode", pruneMode)
	sp.SetInt("dirty_users", int64(len(dirty)))
	var cacheBefore core.CacheStats
	if params.Cache != nil {
		cacheBefore = params.Cache.Stats()
		sp.Set("cache", "on")
	} else {
		sp.Set("cache", "off")
	}

	sink := d.Obs.Sink()
	if sink != nil {
		sink.Emit(obs.Event{Type: obs.EventSweepStart, Reason: sweepType, Users: len(dirty)})
	}
	ledger := d.Obs.RunLedger()
	var countersBefore map[string]int64
	if ledger != nil {
		countersBefore = d.Obs.Metrics.Counters()
	}
	// record files one RunSummary per sweep (committed or aborted): stage
	// durations from the sweep span, outcome counts, per-sweep counter
	// deltas.
	record := func(res *detect.Result, err error) {
		if ledger == nil {
			return
		}
		sum := obs.RunSummary{
			Root:       "stream.sweep",
			DurationNS: res.Elapsed.Nanoseconds(),
			Groups:     len(res.Groups),
			Users:      len(res.Users()),
			Items:      len(res.Items()),
			Partial:    res.Partial,
			Stage:      res.StageReached,
			Stages:     obs.StagesOf(sp.Export()),
			Stats:      obs.CounterDelta(countersBefore, d.Obs.Metrics.Counters()),
		}
		if err != nil {
			sum.Err = err.Error()
		}
		ledger.Record(sum)
	}

	var (
		groups  []detect.Group
		reached string
	)
	err := detect.RunStage("stream.sweep", func() error {
		faultinject.Hit("stream.sweep")
		reached = "hotset"
		if err := ctx.Err(); err != nil {
			return err
		}
		hsp := sp.Start("hotset")
		hot := core.ComputeHotSet(g, params.THot)
		hsp.End()

		var seeds detect.Seeds
		if !full {
			// Seed only dirty users showing the crowd-worker signature: an
			// edge of weight ≥ T_click to a non-hot item. Every member of a
			// screenable group satisfies this (the user behavior check
			// requires it), so filtering cannot lose a detectable group, and
			// it keeps ordinary background churn from widening the sweep.
			fsp := sp.Start("seed_filter")
			for _, u := range dirty {
				if suspiciousUser(g, hot, u, params.TClick) {
					seeds.Users = append(seeds.Users, u)
				}
			}
			fsp.SetInt("seeds", int64(len(seeds.Users)))
			fsp.End()
		}

		reached = "extraction"
		var fresh []detect.Group
		var screened []detect.Group
		var screenedOK bool
		if full {
			work := core.GraphGenerator(g, detect.Seeds{})
			var eerr error
			if params.Cache != nil && len(cached) == 0 {
				// A full sweep carries no cached groups (lastFull is only
				// cleared by New/Reset, which also clear them), so the
				// candidate set IS the fresh extraction and screening can
				// ride inside the shards: cache hits skip it entirely.
				// Incremental sweeps must keep the global screening pass —
				// fresh and carried-over groups can overlap or connect.
				fresh, screened, screenedOK, eerr = core.NearBicliqueExtractCachedCtx(ctx, work, hot, params, sp, d.Obs)
			} else {
				fresh, eerr = core.NearBicliqueExtractCtx(ctx, work, params, sp, d.Obs)
			}
			if eerr != nil {
				return eerr
			}
		} else if len(seeds.Users) > 0 {
			cap := d.ExpandDegreeCap
			if cap <= 0 {
				cap = DefaultExpandCap
			}
			gsp := sp.Start("dirty_expand")
			work := core.GraphGeneratorBounded(g, seeds, cap)
			gsp.SetInt("scope_users", int64(work.LiveUsers()))
			gsp.SetInt("scope_items", int64(work.LiveItems()))
			gsp.End()
			d.Obs.Gauge("stream.sweep.scope_users").Set(int64(work.LiveUsers()))
			var eerr error
			fresh, eerr = core.NearBicliqueExtractCtx(ctx, work, params, sp, d.Obs)
			if eerr != nil {
				return eerr
			}
		}

		// Merge candidates: freshly extracted groups around the dirty region
		// plus the cached groups (monotonicity keeps their extraction
		// validity; screening below re-judges them against current weights
		// and hotness).
		reached = "screening"
		if screenedOK && len(cached) == 0 {
			ssp := sp.Start("screening")
			ssp.Set("cached", "shards")
			ssp.End()
			groups = screened
			reached = ""
			return nil
		}
		candidates := append(append([]detect.Group(nil), fresh...), cached...)
		ssp := sp.Start("screening")
		var serr error
		groups, serr = core.ScreenGroupsCtx(ctx, g, candidates, hot, params, ssp, d.Obs)
		ssp.End()
		if serr != nil {
			return serr
		}
		reached = ""
		return nil
	})

	res := &detect.Result{Groups: groups}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	sp.SetInt("groups", int64(len(groups)))
	if params.Cache != nil {
		cs := params.Cache.Stats()
		sp.SetInt("cache_hits", cs.Hits-cacheBefore.Hits)
		sp.SetInt("cache_misses", cs.Misses-cacheBefore.Misses)
	}
	if err != nil {
		// Graceful degradation: report what completed, commit nothing. The
		// snapshotted dirty users merge back into the live set (which may
		// have gained mid-sweep users, whose newer seqs win) so the next
		// sweep redoes this one's work.
		d.mu.Lock()
		for u, s := range snap {
			if cur, ok := d.dirty[u]; !ok || cur < s {
				d.dirty[u] = s
			}
		}
		d.inflight = nil
		d.seedScratch = dirty[:0]
		remaining := len(d.dirty)
		d.lastSweepEnd = time.Now()
		d.mu.Unlock()
		res.Partial = true
		res.StageReached = reached
		sp.Set("partial", reached)
		sp.End()
		d.Obs.Counter("stream.sweeps.aborted").Inc()
		d.Obs.Counter("detect.partial").Inc()
		if reached != "" {
			d.Obs.Counter("detect.stage_reached." + reached).Inc()
		}
		d.Obs.Histogram("stream.sweep.latency").Observe(res.Elapsed)
		d.Obs.Gauge("stream.dirty_users").Set(int64(remaining))
		if sink != nil {
			sink.Emit(obs.Event{Type: obs.EventSweepAbort, Reason: reached, Groups: len(groups)})
		}
		record(res, err)
		return res, err
	}
	sp.End()
	d.Obs.Counter("stream.sweeps." + sweepType).Inc()
	d.Obs.Histogram("stream.sweep." + sweepType).Observe(res.Elapsed)
	d.Obs.Histogram("stream.sweep.latency").Observe(res.Elapsed)

	// Commit: the sweep owned its dirty snapshot, so only the users whose
	// clicks this sweep actually examined are retired; clicks streamed
	// during the sweep are already accumulating in the live map for the
	// next one. On a durable detector the commit is written ahead to the
	// WAL — a recovered detector replays it as "at record startSeq, these
	// groups became the cache", which retires the same users by seq.
	d.mu.Lock()
	d.seq++
	walLogged := false
	if d.walActiveLocked() {
		d.walBuf = appendSweepRecord(d.walBuf[:0], startSeq, groups)
		faultinject.Hit("stream.wal.append")
		if werr := d.wal.Append(d.seq, d.walBuf); werr != nil {
			d.degradeLocked(werr)
		} else {
			d.sinceSnap++
			walLogged = true
		}
	}
	d.cached = groups
	d.inflight = nil
	d.seedScratch = dirty[:0]
	remaining := len(d.dirty)
	d.lastFull = true
	d.detections++
	d.lastSweepEnd = time.Now()
	snapDue := d.wal != nil && d.walErr == nil && d.dur.SnapshotEvery > 0 && d.sinceSnap >= d.dur.SnapshotEvery
	d.mu.Unlock()
	if walLogged {
		d.Obs.Counter("stream.wal.appends").Inc()
	}
	d.Obs.Gauge("stream.dirty_users").Set(int64(remaining))
	if sink != nil {
		// One verdict per committed group with its forensic evidence. Sweeps
		// skip Module 3's risk ranking (the facade ranks on demand), so the
		// score mirrors whatever the group carries — 0 for sweep-built groups.
		for i, grp := range groups {
			st := core.ComputeGroupStats(g, grp)
			sink.Emit(obs.Event{
				Type:  obs.EventGroupVerdict,
				Group: i + 1,
				Users: len(grp.Users),
				Items: len(grp.Items),
				Score: grp.Score,
				Stat: fmt.Sprintf("density=%.3f mean_edge_clicks=%.1f outside_share=%.3f",
					st.Density, st.MeanEdgeClicks, st.OutsideShare),
			})
		}
		sink.Emit(obs.Event{Type: obs.EventSweepCommit, Reason: sweepType, Groups: len(groups)})
	}
	if d.OnCommit != nil {
		// g is the immutable snapshot this sweep examined (mid-sweep clicks
		// rebuilt a fresh graph), so the hook reads consistent state.
		d.OnCommit(res, g)
	}
	if snapDue {
		// Automatic snapshot at the sweep boundary — the only point where
		// state is compact (dirty region retired) and no sweep is running.
		// Failures are counted and audited inside Snapshot; the sweep's
		// result stands either way.
		_ = d.Snapshot()
	}
	record(res, nil)
	return res, nil
}

// suspiciousUser reports whether u carries the abnormal-click signature of
// Section IV-A: at least tClick clicks on some ordinary (non-hot) item.
func suspiciousUser(g *bipartite.Graph, hot *core.HotSet, u bipartite.NodeID, tClick uint32) bool {
	found := false
	g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
		if w >= tClick && !hot.IsHot(v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// FullDetect bypasses the incremental path and runs the batch RICD detector
// on the current graph — the reference the incremental result is validated
// against in tests and benchmarks.
func (d *Detector) FullDetect() (*detect.Result, error) {
	return d.FullDetectContext(context.Background())
}

// FullDetectContext is FullDetect under a context, with the same partial
// result contract as core.(*Detector).DetectContext.
func (d *Detector) FullDetectContext(ctx context.Context) (*detect.Result, error) {
	d.mu.Lock()
	g := d.graphLocked()
	params := d.params
	// Full detections share the sweep cache (no touched hint: the batch
	// detector examines the whole current graph, so every unchanged
	// component is a legitimate hit).
	params.Cache = d.cacheLocked()
	params.CacheTouched = nil
	d.mu.Unlock()
	det := &core.Detector{Params: params, Obs: d.Obs}
	return det.DetectContext(ctx, g)
}

// cacheLocked returns the detector's verdict cache, creating it on first
// use; nil under NoCache. d.mu must be held.
func (d *Detector) cacheLocked() *core.VerdictCache {
	if d.NoCache {
		return nil
	}
	if d.cache == nil {
		d.cache = core.NewVerdictCache(d.CacheBytes)
	}
	return d.cache
}

// CacheStats reports the verdict cache's lifetime counters (the zero value
// when the cache is disabled or not yet created).
func (d *Detector) CacheStats() core.CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cache == nil {
		return core.CacheStats{}
	}
	return d.cache.Stats()
}

// Reset drops the cached detection state, forcing the next Detect to run
// fully (for example after a parameter change via Retune). On a durable
// detector the reset is WAL-logged so recovery reproduces it.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.logResetLocked()
	d.resetLocked()
}

// resetLocked is the pure state reset shared by Reset, Retune and WAL
// replay; d.mu must be held. It does not touch the record clock — the
// callers that originate a reset log it first.
func (d *Detector) resetLocked() {
	d.cached = nil
	d.lastFull = false
	d.dirty = map[bipartite.NodeID]uint64{}
	if d.cache != nil {
		// Invalidate wholesale: Reset/Retune change what a fingerprint's
		// entry would have been computed under (params may change via
		// Retune; replayed resets mark state discontinuities), and the
		// cache is cheap to rebuild — correctness over warmth.
		d.cache.Purge()
	}
}

// logResetLocked advances the record clock and write-ahead-logs a reset.
func (d *Detector) logResetLocked() {
	d.seq++
	if d.walActiveLocked() {
		d.walBuf = appendResetRecord(d.walBuf[:0])
		if err := d.wal.Append(d.seq, d.walBuf); err != nil {
			d.degradeLocked(err)
		} else {
			d.sinceSnap++
		}
	}
}

// Retune swaps detection parameters and resets the incremental state.
// Parameters themselves are configuration, not state: a durable detector
// recovered via Open uses whatever params the reopening caller passes, so
// operators must persist param changes in their own config alongside the
// WAL directory.
func (d *Detector) Retune(params core.Params) error {
	if err := params.Validate(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.params = params
	d.logResetLocked()
	d.resetLocked()
	return nil
}

// Detections returns how many Detect calls have completed successfully.
func (d *Detector) Detections() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detections
}
