package stream

import (
	"testing"

	"repro/internal/clicktable"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func smallParams() core.Params {
	p := core.DefaultParams()
	p.THot = 400
	return p
}

// splitDataset splits a synthetic dataset into the background table and the
// attack records (rows from injected attacker IDs).
func splitDataset(ds *synth.Dataset) (background *clicktable.Table, attack []clicktable.Record) {
	background = clicktable.New(ds.Table.Len())
	ds.Table.Each(func(r clicktable.Record) bool {
		if int(r.UserID) >= ds.NumNormalUsers {
			attack = append(attack, r)
		} else {
			background.AppendRecord(r)
		}
		return true
	})
	return background, attack
}

func TestNewValidatesParams(t *testing.T) {
	if _, err := New(nil, core.Params{}); err == nil {
		t.Error("expected params error")
	}
}

func TestFirstDetectIsFull(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.FullDetect()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Groups), len(full.Groups); got != want {
		t.Errorf("first Detect found %d groups, full detection %d", got, want)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	if ev.F1 < 0.8 {
		t.Errorf("first detection F1 = %v, want ≥ 0.8", ev.F1)
	}
}

func TestIncrementalCatchesStreamedAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)

	d, err := New(background, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline sweep over clean traffic.
	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("clean traffic produced %d groups", len(res.Groups))
	}

	// Stream the attack, then re-detect incrementally.
	d.AddBatch(attack)
	res, err = d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("incremental after attack: %v (elapsed %v)", ev, res.Elapsed)
	if ev.Recall < 0.9 || ev.Precision < 0.9 {
		t.Errorf("incremental detection = %v, want ≥ 0.9 / ≥ 0.9", ev)
	}
}

func TestIncrementalMatchesFullDetection(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)

	d, err := New(background, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil {
		t.Fatal(err)
	}
	// Stream the attack in three chunks with a detection after each.
	third := len(attack) / 3
	chunks := [][]clicktable.Record{attack[:third], attack[third : 2*third], attack[2*third:]}
	var inc *metrics.Eval
	for _, chunk := range chunks {
		d.AddBatch(chunk)
		res, err := d.Detect()
		if err != nil {
			t.Fatal(err)
		}
		e := metrics.Evaluate(res, ds.Truth)
		inc = &e
	}
	full, err := d.FullDetect()
	if err != nil {
		t.Fatal(err)
	}
	fe := metrics.Evaluate(full, ds.Truth)
	t.Logf("incremental: %v\nfull:        %v", *inc, fe)
	if inc.F1 < fe.F1-0.05 {
		t.Errorf("incremental F1 %v materially below full %v", inc.F1, fe.F1)
	}
}

func TestCachedGroupsSurviveQuietStream(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	// No new events: detection must return the cached groups.
	second, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Groups) != len(first.Groups) {
		t.Errorf("quiet re-detection changed groups: %d → %d",
			len(first.Groups), len(second.Groups))
	}
}

func TestRescreeningDropsGroupWhenTargetGoesHot(t *testing.T) {
	// Build an attack whose target then organically gains enough clicks to
	// cross T_hot; re-screening must stop reporting it as a target.
	p := core.DefaultParams()
	p.THot = 500
	p.K1, p.K2 = 3, 2

	tbl := clicktable.New(0)
	// Attack: users 0..3 hammer items 0 and 1.
	for u := uint32(0); u < 4; u++ {
		tbl.Append(u, 0, 14)
		tbl.Append(u, 1, 14)
	}
	d, err := New(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("initial detection found %d groups, want 1", len(res.Groups))
	}

	// Item 0 and item 1 go viral: hundreds of organic users.
	for u := uint32(100); u < 700; u++ {
		d.AddClick(u, 0, 1)
		d.AddClick(u, 1, 1)
	}
	res, err = d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range res.Groups {
		for _, v := range grp.Items {
			if v == 0 || v == 1 {
				t.Errorf("item %d is now hot but still reported as target", v)
			}
		}
	}
}

func TestResetForcesFullDetection(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Error("post-reset detection found nothing")
	}
}

func TestRetune(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Retune(core.Params{}); err == nil {
		t.Error("Retune accepted invalid params")
	}
	p := smallParams()
	p.TClick = 10
	if err := d.Retune(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil {
		t.Fatal(err)
	}
	if d.Detections() != 1 {
		t.Errorf("Detections = %d, want 1", d.Detections())
	}
}

func TestZeroClickEventIgnored(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	d.AddClick(1, 1, 0)
	if d.Events() != 0 {
		t.Error("zero-click event counted")
	}
}

func TestGraphReflectsStream(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	d.AddClick(0, 0, 3)
	d.AddClick(0, 0, 2)
	g := d.Graph()
	if g.Weight(0, 0) != 5 {
		t.Errorf("Weight = %d, want 5 (aggregated)", g.Weight(0, 0))
	}
}
