package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clicktable"
	"repro/internal/detect"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/synth"
)

// This file is the golden-oracle harness for the durability layer: a
// detector recovered from snapshot + WAL replay must produce BYTE-IDENTICAL
// sweep results to an uninterrupted in-memory detector fed the same
// clicks. "Crash" in these tests means abandoning a detector without Close
// (its WAL is left exactly as a killed process would leave it) and
// reopening the directory.

// groupBytes canonicalizes sweep output for byte-level comparison.
func groupBytes(groups []detect.Group) []byte {
	return appendGroups(nil, groups)
}

func mustSweep(t *testing.T, d *Detector) *detect.Result {
	t.Helper()
	res, err := d.Sweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return res
}

func sameGroups(t *testing.T, label string, want, got *detect.Result) {
	t.Helper()
	if !bytes.Equal(groupBytes(want.Groups), groupBytes(got.Groups)) {
		t.Fatalf("%s: sweep diverged: want %d groups, got %d (serialized forms differ)",
			label, len(want.Groups), len(got.Groups))
	}
}

func openDurable(t *testing.T, dir string, dur Durability) (*Detector, *RecoveryInfo) {
	t.Helper()
	dur.Dir = dir
	d, info, err := Open(dur, smallParams(), nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d, info
}

// recoveryWorkloads is the golden corpus: varied marketplace shapes so the
// equivalence claim covers empty results, single groups and multi-group
// sweeps.
func recoveryWorkloads() []synth.Config {
	var cfgs []synth.Config
	for seed := int64(1); seed <= 4; seed++ {
		c := synth.SmallConfig()
		c.Seed = seed
		c.Attack.Groups = 1 + int(seed%3)
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// TestRecoveryEquivalenceGoldenWorkloads drives an oracle (memory-only)
// detector and a durable detector through identical three-phase streams
// (background batch, first attack half, second attack half) with a sweep
// after each phase, crashing and recovering the durable one at two
// different points. Every sweep after recovery must match the oracle
// byte for byte.
func TestRecoveryEquivalenceGoldenWorkloads(t *testing.T) {
	for _, cfg := range recoveryWorkloads() {
		ds := synth.MustGenerate(cfg)
		background, attack := splitDataset(ds)
		half := len(attack) / 2
		phaseA, phaseB := attack[:half], attack[half:]
		var bg []clicktable.Record
		background.Each(func(r clicktable.Record) bool {
			bg = append(bg, r)
			return true
		})

		// Oracle: never crashes, never persists — and pins the full-rebuild
		// graph path, so recovered delta-patched sweeps are compared against
		// pure from-scratch rebuilds.
		oracle, err := New(nil, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		oracle.NoDelta = true
		oracle.AddBatch(bg)
		r1 := mustSweep(t, oracle)
		oracle.AddBatch(phaseA)
		r2 := mustSweep(t, oracle)
		oracle.AddBatch(phaseB)
		r3 := mustSweep(t, oracle)

		for _, crashPoint := range []string{"after-sweep-2", "mid-phase-3"} {
			dir := t.TempDir()
			// Small snapshot cadence and segments so recovery exercises
			// snapshot + tail replay and segment rotation, not just one log.
			dur := Durability{SnapshotEvery: 200, SegmentBytes: 1 << 16}
			d1, info := openDurable(t, dir, dur)
			if !info.ColdStart {
				t.Fatalf("seed %d/%s: fresh dir was not a cold start: %+v", cfg.Seed, crashPoint, info)
			}
			d1.AddBatch(bg)
			sameGroups(t, crashPoint+"/sweep1", r1, mustSweep(t, d1))
			// Phase A half by batch, half by single clicks: both WAL paths.
			d1.AddBatch(phaseA[:len(phaseA)/2])
			for _, r := range phaseA[len(phaseA)/2:] {
				d1.AddClick(r.UserID, r.ItemID, r.Clicks)
			}
			sameGroups(t, crashPoint+"/sweep2", r2, mustSweep(t, d1))
			if crashPoint == "mid-phase-3" {
				d1.AddBatch(phaseB)
			}
			// Crash: abandon d1 with its WAL handle mid-air.
			d2, info := openDurable(t, dir, dur)
			if info.ColdStart {
				t.Fatalf("seed %d/%s: recovery saw a cold start", cfg.Seed, crashPoint)
			}
			if info.SnapshotClock == 0 && info.Replayed == 0 {
				t.Fatalf("seed %d/%s: recovery found nothing: %+v", cfg.Seed, crashPoint, info)
			}
			if crashPoint == "after-sweep-2" {
				d2.AddBatch(phaseB)
			}
			sameGroups(t, crashPoint+"/sweep3", r3, mustSweep(t, d2))
			if got, want := d2.Events(), oracle.Events(); got != want {
				t.Fatalf("seed %d/%s: recovered events=%d oracle=%d", cfg.Seed, crashPoint, got, want)
			}
			if got, want := d2.Detections(), oracle.Detections(); got != want {
				t.Fatalf("seed %d/%s: recovered detections=%d oracle=%d", cfg.Seed, crashPoint, got, want)
			}
			if err := d2.Close(); err != nil {
				t.Fatalf("seed %d/%s: close: %v", cfg.Seed, crashPoint, err)
			}
		}
	}
}

// TestRecoverySnapshotTakenMidSweep crashes a detector whose LAST state
// snapshot was taken while a sweep was in flight and which then died
// before that sweep committed. The snapshot must have captured the sweep's
// in-flight dirty set (Detector.inflight), or the recovered detector's
// incremental sweep would silently skip the attack. Run under -race this
// also exercises Snapshot racing a live sweep.
func TestRecoverySnapshotTakenMidSweep(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)
	var bg []clicktable.Record
	background.Each(func(r clicktable.Record) bool {
		bg = append(bg, r)
		return true
	})

	oracle, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle.AddBatch(bg)
	mustSweep(t, oracle)
	oracle.AddBatch(attack)
	want := mustSweep(t, oracle)

	dir := t.TempDir()
	d1, _ := openDurable(t, dir, Durability{})
	d1.AddBatch(bg)
	mustSweep(t, d1)
	d1.AddBatch(attack)

	// The second sweep blocks at its fault site (after taking ownership of
	// the dirty set), we snapshot mid-sweep, then the sweep dies before
	// committing — the injected panic stands in for the process crash.
	started := make(chan struct{})
	snapped := make(chan struct{})
	faultinject.Arm("stream.sweep", faultinject.Fault{
		Do: func() {
			close(started)
			<-snapped
		},
		Panic: "injected crash before commit",
		Times: 1,
	})
	sweepDone := make(chan *detect.Result, 1)
	go func() {
		res, _ := d1.Sweep()
		sweepDone <- res
	}()
	<-started
	if err := d1.Snapshot(); err != nil {
		t.Fatalf("mid-sweep snapshot: %v", err)
	}
	close(snapped)
	if res := <-sweepDone; !res.Partial {
		t.Fatal("faulted sweep was not partial")
	}
	faultinject.Reset()

	d2, info := openDurable(t, dir, Durability{})
	if info.SnapshotClock == 0 {
		t.Fatalf("recovery ignored the mid-sweep snapshot: %+v", info)
	}
	sameGroups(t, "post-recovery sweep", want, mustSweep(t, d2))
}

// TestRecoveryCrashBetweenSnapshotAndAppend kills the detector after a
// snapshot but exactly at the next WAL append (the stream.wal.append fault
// site panics before any bytes land), then re-sends the lost click to both
// the oracle and the recovered detector. State must rejoin the oracle
// exactly: the half-applied click may not exist anywhere.
func TestRecoveryCrashBetweenSnapshotAndAppend(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)
	var bg []clicktable.Record
	background.Each(func(r clicktable.Record) bool {
		bg = append(bg, r)
		return true
	})

	oracle, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle.AddBatch(bg)
	mustSweep(t, oracle)

	dir := t.TempDir()
	d1, _ := openDurable(t, dir, Durability{})
	d1.AddBatch(bg)
	mustSweep(t, d1)
	if err := d1.Snapshot(); err != nil {
		t.Fatal(err)
	}

	// The very next WAL append dies before writing. AddClick panics while
	// holding the detector lock — exactly what a crash looks like from the
	// outside: the click is neither on disk nor recoverable.
	faultinject.Arm("stream.wal.append", faultinject.Fault{Panic: "injected crash at append", Times: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("append fault did not fire")
			}
		}()
		d1.AddClick(attack[0].UserID, attack[0].ItemID, attack[0].Clicks)
	}()
	faultinject.Reset()

	d2, info := openDurable(t, dir, Durability{})
	if info.SnapshotClock == 0 || info.Replayed != 0 {
		t.Fatalf("expected pure-snapshot recovery, got %+v", info)
	}
	// The lost click is re-sent (an at-least-once upstream would do this),
	// then both detectors see the rest of the attack.
	oracle.AddBatch(attack)
	want := mustSweep(t, oracle)
	d2.AddBatch(attack)
	sameGroups(t, "post-recovery sweep", want, mustSweep(t, d2))
}

// TestWALTornTailRecovery corrupts the WAL the way a crash does — cutting
// the last frame short — and verifies recovery truncates, reports it, and
// rejoins an oracle that never saw the torn click.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	d1, _ := openDurable(t, dir, Durability{})
	for i := 0; i < 10; i++ {
		d1.AddClick(uint32(i), 1, 5)
	}
	// Tear the newest segment mid-frame, as if the process died inside the
	// final write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	d2, info := openDurable(t, dir, Durability{})
	if info.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", info)
	}
	if info.Replayed != 9 {
		t.Fatalf("replayed %d clicks, want 9", info.Replayed)
	}
	oracle, _ := New(nil, smallParams())
	for i := 0; i < 9; i++ {
		oracle.AddClick(uint32(i), 1, 5)
	}
	sameGroups(t, "post-truncation sweep", mustSweep(t, oracle), mustSweep(t, d2))
}

// TestWALWriteFailureDegradesToMemoryOnly proves graceful degradation: a
// disk failure flips the detector to memory-only operation — detection
// keeps working on everything already ingested plus new clicks — and the
// latched error is visible via DurabilityErr.
func TestWALWriteFailureDegradesToMemoryOnly(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	dir := t.TempDir()
	d, _ := openDurable(t, dir, Durability{})
	var recs []clicktable.Record
	ds.Table.Each(func(r clicktable.Record) bool {
		recs = append(recs, r)
		return true
	})
	d.AddBatch(recs[:len(recs)/2])

	diskErr := errors.New("injected disk failure")
	faultinject.Arm(durable.SiteWrite, faultinject.Fault{Err: diskErr, Times: 1})
	d.AddClick(1, 2, 3)
	faultinject.Reset()
	if err := d.DurabilityErr(); !errors.Is(err, diskErr) {
		t.Fatalf("DurabilityErr = %v, want the injected failure", err)
	}
	// Ingestion and detection continue in memory.
	d.AddBatch(recs[len(recs)/2:])
	res := mustSweep(t, d)
	oracle, _ := New(nil, smallParams())
	oracle.AddBatch(recs[:len(recs)/2])
	oracle.AddClick(1, 2, 3)
	oracle.AddBatch(recs[len(recs)/2:])
	sameGroups(t, "degraded sweep", mustSweep(t, oracle), res)
	if err := d.Close(); !errors.Is(err, diskErr) && err != nil {
		t.Fatalf("close after degrade: %v", err)
	}
}

// TestSnapshotPrunesWALAndOldSnapshots checks retention: after snapshots,
// covered WAL segments and surplus snapshot generations are deleted, and
// the directory still recovers to the oracle state.
func TestSnapshotPrunesWALAndOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	dur := Durability{SegmentBytes: 1 << 10, KeepSnapshots: 2}
	d1, _ := openDurable(t, dir, dur)
	oracle, _ := New(nil, smallParams())
	for round := 0; round < 4; round++ {
		for i := 0; i < 200; i++ {
			u, it, c := uint32(round*200+i), uint32(i%40), uint32(1+i%7)
			d1.AddClick(u, it, c)
			oracle.AddClick(u, it, c)
		}
		if err := d1.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, snaps := 0, 0
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			segs++
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("kept %d snapshots, want 2", snaps)
	}
	if segs > 2 {
		t.Fatalf("%d WAL segments survived snapshot pruning", segs)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, info := openDurable(t, dir, dur)
	if info.SnapshotClock == 0 {
		t.Fatalf("recovery: %+v", info)
	}
	sameGroups(t, "post-prune sweep", mustSweep(t, oracle), mustSweep(t, d2))
}

// TestResetAndRetuneSurviveRecovery: a logged reset must replay, so a
// recovered detector's first sweep is full exactly when the original's
// would have been.
func TestResetAndRetuneSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	d1, _ := openDurable(t, dir, Durability{})
	for i := 0; i < 50; i++ {
		d1.AddClick(uint32(i), uint32(i%10), 3)
	}
	mustSweep(t, d1)
	d1.Reset()

	oracle, _ := New(nil, smallParams())
	for i := 0; i < 50; i++ {
		oracle.AddClick(uint32(i), uint32(i%10), 3)
	}
	mustSweep(t, oracle)
	oracle.Reset()

	d2, info := openDurable(t, dir, Durability{})
	if info.Replayed != 52 { // 50 clicks + 1 sweep + 1 reset
		t.Fatalf("replayed %d records, want 52", info.Replayed)
	}
	sameGroups(t, "post-reset sweep", mustSweep(t, oracle), mustSweep(t, d2))
}

// TestOpenRequiresDir pins the misuse error.
func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Durability{}, smallParams(), nil); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

// TestSnapshotOnMemoryOnlyDetectorErrors pins the other misuse error.
func TestSnapshotOnMemoryOnlyDetectorErrors(t *testing.T) {
	d, err := New(nil, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err == nil {
		t.Fatal("Snapshot on memory-only detector succeeded")
	}
}
