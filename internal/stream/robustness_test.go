package stream

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/synth"
)

// TestDetectContextCancelledSweepCommitsNothing: a cancelled sweep returns
// a partial result and leaves the detector's incremental state untouched,
// so the next sweep redoes the work and matches an uninterrupted run.
func TestDetectContextCancelledSweepCommitsNothing(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("stream.sweep", faultinject.Fault{Do: cancel, Times: 1})
	res, err := d.DetectContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("cancelled sweep result = %+v, want a partial result", res)
	}
	if d.Detections() != 0 {
		t.Error("cancelled sweep counted as a completed detection")
	}
	faultinject.Reset()

	// The aborted sweep committed nothing, so the retry is still the first
	// full detection and must match a reference detector exactly.
	res2, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.FullDetect()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res2.Groups), len(full.Groups); got != want {
		t.Errorf("post-cancel sweep found %d groups, reference %d", got, want)
	}
}

// TestDetectContextPanicIsStageError: a panicking sweep stage surfaces as
// a *detect.StageError, and like a cancel it commits nothing.
func TestDetectContextPanicIsStageError(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm("core.screen.group", faultinject.Fault{Panic: "sweep bug", Times: 1})

	res, err := d.DetectContext(context.Background())
	var se *detect.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *detect.StageError", err)
	}
	if res == nil || !res.Partial {
		t.Error("panicking sweep did not yield a partial result")
	}
	if d.Detections() != 0 {
		t.Error("panicked sweep counted as a completed detection")
	}
}

// TestConcurrentIngestAndSweep races AddClick against in-flight sweeps —
// run under -race this is the proof of the snapshot-based concurrency
// contract. Clicks streamed during a sweep must land in a later one, never
// be lost.
func TestConcurrentIngestAndSweep(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)
	d, err := New(background, smallParams())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range attack {
			d.AddClick(r.UserID, r.ItemID, r.Clicks)
		}
	}()
	for i := 0; i < 8; i++ {
		if _, err := d.DetectContext(context.Background()); err != nil {
			t.Errorf("sweep %d: %v", i, err)
		}
	}
	wg.Wait()

	// One quiescent sweep after ingestion finishes: every attack click is
	// now visible, so the implanted groups must be found.
	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Error("no groups found after concurrent ingestion of the attack records")
	}
	if d.Events() != len(attack) {
		t.Errorf("Events = %d, want %d", d.Events(), len(attack))
	}
}

// TestConcurrentIngestWithCancelledSweeps mixes cancellation into the race:
// aborted sweeps must neither corrupt state nor lose streamed clicks.
func TestConcurrentIngestWithCancelledSweeps(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	background, attack := splitDataset(ds)
	d, err := New(background, smallParams())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range attack {
			d.AddClick(r.UserID, r.ItemID, r.Clicks)
		}
	}()
	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // cancelled before the sweep starts: partial, no commit
		}
		res, err := d.DetectContext(ctx)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("sweep %d: %v", i, err)
		}
		if errors.Is(err, context.Canceled) && (res == nil || !res.Partial) {
			t.Errorf("sweep %d: cancelled sweep did not return a partial result", i)
		}
		cancel()
	}
	wg.Wait()

	res, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Error("no groups found after cancelled-sweep churn")
	}
}

// TestMidSweepClickOnSnapshottedUserStaysDirty: a click streamed DURING a
// sweep for a user that sweep already snapshotted was taken on a graph the
// sweep cannot see, so the commit must leave the user dirty for the next
// sweep (regression: the commit used to delete exactly the snapshotted
// users, silently un-marking the mid-sweep click forever).
func TestMidSweepClickOnSnapshottedUserStaysDirty(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil { // full sweep; retires all dirty users
		t.Fatal(err)
	}

	d.AddClick(1, 2, 3) // user 1 joins the next sweep's snapshot
	// The stream.sweep site fires after the snapshot is taken: this click
	// races the in-flight sweep, exactly the advertised ingestion pattern.
	faultinject.Arm("stream.sweep", faultinject.Fault{Do: func() {
		d.AddClick(1, 2, 4)
	}, Times: 1})
	if _, err := d.Detect(); err != nil {
		t.Fatal(err)
	}

	d.mu.Lock()
	_, stillDirty := d.dirty[1]
	d.mu.Unlock()
	if !stillDirty {
		t.Fatal("mid-sweep click for a snapshotted user was un-marked by the commit; the next sweep will never examine it")
	}
}

// TestAbortedSweepRestoresDirtySet: an aborted sweep owns its dirty
// snapshot, so the abort path must merge it back — losing it would shrink
// the next sweep's scope below what correctness requires.
func TestAbortedSweepRestoresDirtySet(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	d, err := New(ds.Table, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil {
		t.Fatal(err)
	}

	d.AddClick(7, 3, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("stream.sweep", faultinject.Fault{Do: cancel, Times: 1})
	if _, err := d.DetectContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	d.mu.Lock()
	_, stillDirty := d.dirty[7]
	d.mu.Unlock()
	if !stillDirty {
		t.Fatal("aborted sweep dropped its dirty snapshot instead of merging it back")
	}
}
