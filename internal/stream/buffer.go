package stream

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clicktable"
	"repro/internal/obs"
)

// ShedPolicy says what Buffer.Offer does with a click when the pending
// queue is full.
type ShedPolicy int

const (
	// ShedBlock makes Offer wait up to BlockWait for the drainer to free a
	// slot, then shed the incoming click — backpressure first, load
	// shedding only as the last resort.
	ShedBlock ShedPolicy = iota
	// ShedOldest drops the oldest queued click to admit the new one:
	// freshest data wins, staleness stays bounded by the queue depth.
	ShedOldest
	// ShedNewest drops the incoming click unexamined: the cheapest policy,
	// already-queued data wins.
	ShedNewest
)

func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedOldest:
		return "oldest"
	case ShedNewest:
		return "newest"
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// ParseShedPolicy parses the CLI spelling of a policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "block":
		return ShedBlock, nil
	case "oldest":
		return ShedOldest, nil
	case "newest":
		return ShedNewest, nil
	}
	return 0, fmt.Errorf("stream: unknown shed policy %q (want block, oldest or newest)", s)
}

// BufferConfig tunes a Buffer. The zero value is usable.
type BufferConfig struct {
	// Capacity bounds the pending queue (0 = 4096 clicks).
	Capacity int
	// Policy is the overload behavior.
	Policy ShedPolicy
	// BlockWait is ShedBlock's maximum wait for a free slot (0 = 100ms).
	BlockWait time.Duration
	// Batch is how many clicks the drainer hands to AddBatch per lock
	// acquisition (0 = 512).
	Batch int
}

func (c *BufferConfig) normalize() {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.BlockWait <= 0 {
		c.BlockWait = 100 * time.Millisecond
	}
	if c.Batch <= 0 {
		c.Batch = 512
	}
}

// Buffer is the bounded intake queue in front of a Detector: producers
// Offer clicks, a single drainer goroutine batches them into AddBatch
// (amortizing lock and WAL costs), and overload is absorbed by the
// configured ShedPolicy instead of unbounded memory growth. Every shed is
// counted (stream.ingest.shed) and audited (ingest.shed events), so load
// shedding is an explicit, observable decision — never a silent loss.
type Buffer struct {
	det *Detector
	cfg BufferConfig

	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	idle     sync.Cond // queue empty and drainer between batches
	q        []clicktable.Record
	head, n  int
	draining bool
	closed   bool
	accepted uint64
	shed     uint64
	done     chan struct{}
}

// NewBuffer creates a buffer in front of det and starts its drainer.
func NewBuffer(det *Detector, cfg BufferConfig) *Buffer {
	b := newBuffer(det, cfg)
	b.startDrain()
	return b
}

// newBuffer builds the buffer without a drainer; tests use this to pin
// Offer semantics against a deliberately full queue.
func newBuffer(det *Detector, cfg BufferConfig) *Buffer {
	cfg.normalize()
	b := &Buffer{
		det:  det,
		cfg:  cfg,
		q:    make([]clicktable.Record, cfg.Capacity),
		done: make(chan struct{}),
	}
	b.notFull.L = &b.mu
	b.notEmpty.L = &b.mu
	b.idle.L = &b.mu
	return b
}

func (b *Buffer) startDrain() { go b.drain() }

// Offer enqueues one click for ingestion, applying the shed policy when
// the queue is full. It reports whether the click was accepted; a false
// return means the click was shed (or the buffer is closed) and has been
// counted and audited. Zero-click records are accepted and dropped,
// matching AddClick.
func (b *Buffer) Offer(r clicktable.Record) bool {
	if r.Clicks == 0 {
		return true
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	if b.n == len(b.q) {
		switch b.cfg.Policy {
		case ShedOldest:
			b.head = (b.head + 1) % len(b.q)
			b.n--
			b.shedLocked("oldest")
		case ShedNewest:
			b.shedLocked("newest")
			b.mu.Unlock()
			return false
		case ShedBlock:
			deadline := time.Now().Add(b.cfg.BlockWait)
			timer := time.AfterFunc(b.cfg.BlockWait, func() {
				b.mu.Lock()
				b.notFull.Broadcast()
				b.mu.Unlock()
			})
			for b.n == len(b.q) && !b.closed && time.Now().Before(deadline) {
				b.notFull.Wait()
			}
			timer.Stop()
			if b.closed {
				b.mu.Unlock()
				return false
			}
			if b.n == len(b.q) {
				b.shedLocked("block_timeout")
				b.mu.Unlock()
				return false
			}
		}
	}
	b.q[(b.head+b.n)%len(b.q)] = r
	b.n++
	b.accepted++
	depth := b.n
	b.notEmpty.Signal()
	b.mu.Unlock()
	b.det.Obs.Gauge("stream.buffer.depth").Set(int64(depth))
	return true
}

// shedLocked counts and audits one dropped click; b.mu must be held.
func (b *Buffer) shedLocked(reason string) {
	b.shed++
	b.det.Obs.Counter("stream.ingest.shed").Inc()
	if sink := b.det.Obs.Sink(); sink != nil {
		sink.Emit(obs.Event{Type: obs.EventIngestShed, Reason: reason})
	}
}

// drain is the single consumer: it batches queued clicks into AddBatch
// until Close, then drains whatever remains and exits.
func (b *Buffer) drain() {
	defer close(b.done)
	scratch := make([]clicktable.Record, 0, b.cfg.Batch)
	b.mu.Lock()
	for {
		for b.n == 0 && !b.closed {
			b.idle.Broadcast()
			b.notEmpty.Wait()
		}
		if b.n == 0 {
			b.idle.Broadcast()
			b.mu.Unlock()
			return
		}
		scratch = scratch[:0]
		for len(scratch) < b.cfg.Batch && b.n > 0 {
			scratch = append(scratch, b.q[b.head])
			b.head = (b.head + 1) % len(b.q)
			b.n--
		}
		b.draining = true
		depth := b.n
		b.notFull.Broadcast()
		b.mu.Unlock()
		b.det.Obs.Gauge("stream.buffer.depth").Set(int64(depth))
		b.det.AddBatch(scratch)
		b.mu.Lock()
		b.draining = false
	}
}

// Depth returns how many clicks are queued right now.
func (b *Buffer) Depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Stats returns how many clicks were accepted and how many shed.
func (b *Buffer) Stats() (accepted, shed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accepted, b.shed
}

// Flush blocks until every queued click has reached the detector (or ctx
// expires). Producers may keep offering during a Flush; it waits for the
// queue observed empty, not for quiescence.
func (b *Buffer) Flush(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.idle.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for (b.n > 0 || b.draining) && ctx.Err() == nil {
		b.idle.Wait()
	}
	return ctx.Err()
}

// Close stops intake (later Offers return false), lets the drainer flush
// everything already queued, and waits for it to exit — the ordered-
// shutdown step between "stop accepting" and "close the WAL". ctx bounds
// the wait.
func (b *Buffer) Close(ctx context.Context) error {
	b.mu.Lock()
	b.closed = true
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
	b.mu.Unlock()
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
