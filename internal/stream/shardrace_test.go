package stream

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clicktable"
	"repro/internal/faultinject"
)

// blockTable builds a click table of n disjoint k×k attack blocks of edge
// weight w: each block prunes into its own residual component, so sharded
// sweeps fan out across a real worker pool.
func blockTable(n, k int, w uint32) *clicktable.Table {
	tbl := clicktable.New(n * k * k)
	for blk := 0; blk < n; blk++ {
		off := uint32(blk * k)
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				tbl.Append(off+uint32(u), off+uint32(v), w)
			}
		}
	}
	return tbl
}

// TestRaceAddClickDuringShardedSweeps hammers concurrent ingestion —
// AddClick and AddBatch from several goroutines — against back-to-back
// sharded SweepContext calls. Run under -race this pins the
// ingestion/sweep/shard-pool interleavings; functionally it asserts sweeps
// stay complete and keep finding the planted blocks while the stream churns.
func TestRaceAddClickDuringShardedSweeps(t *testing.T) {
	p := smallParams()
	p.Workers = 8
	d, err := New(blockTable(4, 12, 15), p)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.AddClick(1000+uint32(rng.Intn(200)), 500+uint32(rng.Intn(100)), uint32(1+rng.Intn(3)))
			}
		}(int64(w + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]clicktable.Record, 20)
			for i := range batch {
				batch[i] = clicktable.Record{
					UserID: 2000 + uint32(rng.Intn(100)),
					ItemID: 700 + uint32(rng.Intn(50)),
					Clicks: uint32(rng.Intn(3)), // includes zero-click records
				}
			}
			d.AddBatch(batch)
		}
	}()

	var last int
	for i := 0; i < 6; i++ {
		res, err := d.SweepContext(context.Background())
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		if res.Partial {
			t.Fatalf("sweep %d unexpectedly partial (stage %q)", i, res.StageReached)
		}
		last = len(res.Groups)
	}
	close(stop)
	wg.Wait()
	if last != 4 {
		t.Fatalf("final sweep found %d groups, want the 4 planted blocks", last)
	}
}

// TestMidShardCancelLeaksNoGoroutines cancels the sweep from inside the
// shard pool (fault-injection site "core.shard", which fires as a worker
// picks up a shard) and asserts that the pool drains completely: every
// worker goroutine joins before the partial result is returned, so the
// process goroutine count settles back to its pre-sweep level.
func TestMidShardCancelLeaksNoGoroutines(t *testing.T) {
	defer faultinject.Reset()

	p := smallParams()
	p.Workers = 8
	d, err := New(blockTable(6, 12, 15), p)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("core.shard", faultinject.Fault{Do: cancel, Times: 1})

	res, rerr := d.SweepContext(ctx)
	if rerr == nil || !res.Partial {
		t.Fatalf("expected a partial sweep, got partial=%v err=%v", res.Partial, rerr)
	}
	if faultinject.HitCount("core.shard") == 0 {
		t.Fatal("cancel fault never fired — the sweep did not reach the shard pool")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before sweep, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The detector must remain fully usable: the aborted sweep committed
	// nothing, and the next sweep redoes the work and finds every block.
	res, rerr = d.SweepContext(context.Background())
	if rerr != nil {
		t.Fatalf("follow-up sweep: %v", rerr)
	}
	if len(res.Groups) != 6 {
		t.Fatalf("follow-up sweep found %d groups, want 6", len(res.Groups))
	}
}

// TestMidFrontierRoundCancelRestoresDirtySet cancels an incremental sweep
// from inside a dirty-frontier pruning round (fault-injection site
// "core.frontier", which fires at the top of every frontier evaluation
// round) and asserts the PR-2/PR-3 robustness contract end to end: the
// shard pool drains with no leaked goroutines, the sweep's truncated dirty
// snapshot is merged back so nothing is lost, and the next sweep redoes the
// work completely.
func TestMidFrontierRoundCancelRestoresDirtySet(t *testing.T) {
	defer faultinject.Reset()

	p := smallParams()
	p.Workers = 8
	d, err := New(blockTable(6, 12, 15), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(); err != nil { // full warm-up sweep, caches 6 groups
		t.Fatal(err)
	}

	// Dirty one attacker of block 0; its weight-15 edges to non-hot items
	// pass the incremental seed filter, so the next sweep prunes its
	// neighborhood — and reaches the frontier rounds.
	d.AddClick(0, 0, 5)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("core.frontier", faultinject.Fault{Do: cancel, Times: 1})

	res, rerr := d.SweepContext(ctx)
	if rerr == nil || !res.Partial {
		t.Fatalf("expected a partial sweep, got partial=%v err=%v", res.Partial, rerr)
	}
	if faultinject.HitCount("core.frontier") == 0 {
		t.Fatal("cancel fault never fired — the sweep did not reach a frontier round")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before sweep, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	d.mu.Lock()
	_, stillDirty := d.dirty[0]
	d.mu.Unlock()
	if !stillDirty {
		t.Fatal("aborted mid-frontier sweep dropped its dirty snapshot instead of merging it back")
	}

	res, rerr = d.SweepContext(context.Background())
	if rerr != nil {
		t.Fatalf("follow-up sweep: %v", rerr)
	}
	if len(res.Groups) != 6 {
		t.Fatalf("follow-up sweep found %d groups, want 6", len(res.Groups))
	}
}
