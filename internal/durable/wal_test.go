package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// collect replays dir from seq `from` and returns the records seen.
func collect(t *testing.T, dir string, from uint64) (map[uint64]string, ReplayResult) {
	t.Helper()
	got := map[uint64]string{}
	res, err := Replay(dir, from, Options{}, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, res
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if err := w.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir, 0)
	if len(got) != 100 || res.Records != 100 || res.LastSeq != 100 || res.TruncatedBytes != 0 {
		t.Fatalf("replay got %d records, res=%+v", len(got), res)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if got[seq] != fmt.Sprintf("rec-%d", seq) {
			t.Fatalf("record %d = %q", seq, got[seq])
		}
	}
	// Replay from an offset skips the prefix.
	got, res = collect(t, dir, 60)
	if len(got) != 40 || res.Records != 40 {
		t.Fatalf("offset replay got %d records, res=%+v", len(got), res)
	}
	if _, ok := got[60]; ok {
		t.Fatal("record 60 should be excluded (seq > from)")
	}
}

func TestWALSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for seq := uint64(1); seq <= 40; seq++ {
		if err := w.Append(seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	if segs := w.Segments(); segs < 3 {
		t.Fatalf("expected ≥ 3 segments after 40×80-byte frames at 256-byte cap, got %d", segs)
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 40 {
		t.Fatalf("replay across segments got %d records", len(got))
	}
	// Prune everything a snapshot at seq 20 covers: only segments wholly
	// ≤ 20 go; the record stream after 20 must be untouched.
	removed, err := w.Prune(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	got, _ = collect(t, dir, 20)
	if len(got) != 20 {
		t.Fatalf("post-prune replay from 20 got %d records, want 20", len(got))
	}
	if err := w.Append(41, payload); err != nil {
		t.Fatalf("append after prune: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 11} { // mid-header, mid-body, mid-frame
		dir := t.TempDir()
		w, err := OpenWAL(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 10; seq++ {
			if err := w.Append(seq, []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		starts, err := listSegments(dir)
		if err != nil || len(starts) != 1 {
			t.Fatalf("segments: %v %v", starts, err)
		}
		path := filepath.Join(dir, segName(starts[0]))
		fi, _ := os.Stat(path)
		if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, dir, 0)
		if len(got) != 9 || res.LastSeq != 9 {
			t.Fatalf("cut %d: got %d records, res=%+v", cut, len(got), res)
		}
		if res.TruncatedBytes == 0 {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		// The torn frame is gone from disk; appending resumes cleanly.
		w2, err := OpenWAL(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if w2.LastSeq() != 9 {
			t.Fatalf("cut %d: reopened LastSeq = %d, want 9", cut, w2.LastSeq())
		}
		if err := w2.Append(10, []byte("again")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got, _ = collect(t, dir, 0)
		if len(got) != 10 || got[10] != "again" {
			t.Fatalf("cut %d: resumed log has %d records", cut, len(got))
		}
	}
}

func TestWALBitFlipTruncatesAtBadFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.Append(seq, []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, _ := listSegments(dir)
	path := filepath.Join(dir, segName(starts[0]))
	data, _ := os.ReadFile(path)
	// Flip a bit inside record 8's body: records 1–7 must survive, the
	// rest of the tail is dropped at the first bad checksum.
	frame := frameHeaderLen + 8 + len("payload-payload")
	data[7*frame+frameHeaderLen+9] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir, 0)
	if len(got) != 7 || res.LastSeq != 7 || res.TruncatedBytes != int64(3*frame) {
		t.Fatalf("got %d records, res=%+v, want 7 records and %d truncated bytes", len(got), res, 3*frame)
	}
}

func TestWALCorruptionInOldSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 20; seq++ {
		if err := w.Append(seq, make([]byte, 48)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, _ := listSegments(dir)
	if len(starts) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(starts))
	}
	path := filepath.Join(dir, segName(starts[0]))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, Options{}, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over mid-log corruption returned %v, want ErrCorrupt", err)
	}
}

func TestWALAppendAllBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Entry
	for seq := uint64(1); seq <= 32; seq++ {
		batch = append(batch, Entry{Seq: seq, Payload: []byte{byte(seq)}})
	}
	if err := w.AppendAll(batch); err != nil {
		t.Fatal(err)
	}
	// Out-of-order and duplicate seqs are rejected before any bytes land.
	if err := w.AppendAll([]Entry{{Seq: 32, Payload: nil}}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 32 {
		t.Fatalf("batch replay got %d records", len(got))
	}
}

func TestWALWriteErrorPoisonsLog(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	diskErr := errors.New("injected disk failure")
	faultinject.Arm(SiteWrite, faultinject.Fault{Err: diskErr, Times: 1})
	if err := w.Append(2, []byte("lost")); !errors.Is(err, diskErr) {
		t.Fatalf("append under write fault: %v", err)
	}
	// The fault fired once, but the WAL stays poisoned: no later append may
	// slip a frame after the failure point.
	if err := w.Append(3, []byte("refused")); !errors.Is(err, diskErr) {
		t.Fatalf("append after poison: %v", err)
	}
	if err := w.Err(); !errors.Is(err, diskErr) {
		t.Fatalf("Err() = %v", err)
	}
	w.Close()
	got, _ := collect(t, dir, 0)
	if len(got) != 1 {
		t.Fatalf("on-disk log has %d records, want the pre-fault prefix of 1", len(got))
	}
}

func TestWALFsyncErrorPoisonsLog(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	diskErr := errors.New("injected fsync failure")
	faultinject.Arm(SiteFsync, faultinject.Fault{Err: diskErr, Times: 1})
	if err := w.Append(1, []byte("x")); !errors.Is(err, diskErr) {
		t.Fatalf("append under fsync fault: %v", err)
	}
	if err := w.Append(2, []byte("y")); !errors.Is(err, diskErr) {
		t.Fatalf("append after fsync poison: %v", err)
	}
}

func TestWALEmptyDirReplay(t *testing.T) {
	got, res := collect(t, t.TempDir(), 0)
	if len(got) != 0 || res.Records != 0 || res.Segments != 0 {
		t.Fatalf("empty dir replay: %v %+v", got, res)
	}
	// A directory that does not exist at all is also a cold start.
	res2, err := Replay(filepath.Join(t.TempDir(), "missing"), 0, Options{}, nil)
	if err != nil || res2.Records != 0 {
		t.Fatalf("missing dir replay: %+v %v", res2, err)
	}
}
