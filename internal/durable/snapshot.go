package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files capture the full detector state at a WAL position, so
// recovery loads the newest valid one and replays only the WAL tail behind
// it. Each file is written atomically (WriteFileAtomic) and named by the
// clock it covers:
//
//	snap-00000000000000001234.snap
//	magic "DSN1" | u32 version | u64 clock | payload | u32 crc32
//
// where crc32 is IEEE over everything between the magic and the checksum.
// A corrupt or torn snapshot simply fails validation and recovery falls
// back to the next-newest one (which is why PruneSnapshots keeps more than
// one), so a crash during snapshotting can never lose state: the WAL tail
// behind the older snapshot is still intact.

var snapMagic = [4]byte{'D', 'S', 'N', '1'}

const (
	snapVersion    = 1
	snapPrefix     = "snap-"
	snapSuffix     = ".snap"
	snapHeaderLen  = 4 + 4 + 8 // magic + version + clock
	snapTrailerLen = 4         // crc32
)

// ErrNoSnapshot reports that no valid snapshot exists in the directory.
var ErrNoSnapshot = errors.New("durable: no valid snapshot")

func snapName(clock uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, segSeqDigits, clock, snapSuffix)
}

func snapClock(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	mid := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	if len(mid) != segSeqDigits {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	var clocks []uint64
	for _, e := range ents {
		if c, ok := snapClock(e.Name()); ok && !e.IsDir() {
			clocks = append(clocks, c)
		}
	}
	sort.Slice(clocks, func(i, j int) bool { return clocks[i] < clocks[j] })
	return clocks, nil
}

// WriteSnapshot atomically writes a snapshot of payload covering WAL
// position clock, returning the file path.
func WriteSnapshot(dir string, clock uint64, payload []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("durable: create snapshot dir: %w", err)
	}
	buf := make([]byte, 0, snapHeaderLen+len(payload)+snapTrailerLen)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, clock)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[len(snapMagic):])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	path := filepath.Join(dir, snapName(clock))
	if err := WriteFileAtomic(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string, wantClock uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < snapHeaderLen+snapTrailerLen {
		return nil, fmt.Errorf("durable: snapshot %s: too short", path)
	}
	if [4]byte(data[:4]) != snapMagic {
		return nil, fmt.Errorf("durable: snapshot %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("durable: snapshot %s: unsupported version %d", path, v)
	}
	body, trailer := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
	if crc32.ChecksumIEEE(body[len(snapMagic):]) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("durable: snapshot %s: checksum mismatch", path)
	}
	if clock := binary.LittleEndian.Uint64(data[8:]); clock != wantClock {
		return nil, fmt.Errorf("durable: snapshot %s: clock %d does not match name", path, clock)
	}
	return body[snapHeaderLen:], nil
}

// SnapshotInfo describes what LatestSnapshot found.
type SnapshotInfo struct {
	// Clock is the WAL position the loaded snapshot covers.
	Clock uint64
	// Path is the loaded file.
	Path string
	// Skipped counts newer snapshot files that failed validation (torn or
	// corrupt) and were passed over.
	Skipped int
}

// LatestSnapshot loads the newest snapshot in dir that validates, skipping
// corrupt ones. ErrNoSnapshot means a cold start (no usable snapshot).
func LatestSnapshot(dir string) ([]byte, SnapshotInfo, error) {
	var info SnapshotInfo
	clocks, err := listSnapshots(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, info, ErrNoSnapshot
		}
		return nil, info, err
	}
	for i := len(clocks) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapName(clocks[i]))
		payload, err := readSnapshot(path, clocks[i])
		if err != nil {
			info.Skipped++
			continue
		}
		info.Clock = clocks[i]
		info.Path = path
		return payload, info, nil
	}
	return nil, info, ErrNoSnapshot
}

// PruneSnapshots removes all but the newest keep snapshots (keep < 1 is
// clamped to 1; the newest is never removed). Returns how many were
// deleted.
func PruneSnapshots(dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	clocks, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i < len(clocks)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, snapName(clocks[i]))); err != nil {
			return removed, fmt.Errorf("durable: prune snapshot: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
