package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func TestSnapshotRoundTripAndLatest(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}
	for _, clock := range []uint64{10, 20, 30} {
		if _, err := WriteSnapshot(dir, clock, []byte{byte(clock)}); err != nil {
			t.Fatal(err)
		}
	}
	payload, info, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Clock != 30 || !bytes.Equal(payload, []byte{30}) || info.Skipped != 0 {
		t.Fatalf("latest = %+v payload=%v", info, payload)
	}
}

func TestSnapshotCorruptFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 10, []byte("good")); err != nil {
		t.Fatal(err)
	}
	path, err := WriteSnapshot(dir, 20, []byte("newer"))
	if err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"torn tail": func(b []byte) []byte { return b[:len(b)-3] },
		"truncated": func(b []byte) []byte { return b[:5] },
		"empty":     func(b []byte) []byte { return nil },
	} {
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
			t.Fatal(err)
		}
		payload, info, err := LatestSnapshot(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Clock != 10 || string(payload) != "good" || info.Skipped != 1 {
			t.Fatalf("%s: fell back to %+v payload=%q", name, info, payload)
		}
		// Restore the newer snapshot for the next mangle.
		if _, err := WriteSnapshot(dir, 20, []byte("newer")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneSnapshotsKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, clock := range []uint64{1, 2, 3, 4, 5} {
		if _, err := WriteSnapshot(dir, clock, nil); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneSnapshots(dir, 2)
	if err != nil || removed != 3 {
		t.Fatalf("removed %d (%v), want 3", removed, err)
	}
	clocks, _ := listSnapshots(dir)
	if len(clocks) != 2 || clocks[0] != 4 || clocks[1] != 5 {
		t.Fatalf("kept %v, want [4 5]", clocks)
	}
	// keep < 1 clamps: the newest snapshot can never be pruned away.
	if _, err := PruneSnapshots(dir, 0); err != nil {
		t.Fatal(err)
	}
	clocks, _ = listSnapshots(dir)
	if len(clocks) != 1 || clocks[0] != 5 {
		t.Fatalf("kept %v, want [5]", clocks)
	}
}

func TestWriteFileAtomicReplacesWholly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("first version"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second" {
		t.Fatalf("read back %q (%v)", data, err)
	}
	fi, _ := os.Stat(path)
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v", fi.Mode().Perm())
	}
}

// TestWriteFileAtomicCrashLeavesOldFile proves the satellite guarantee: a
// failure at any of the three I/O steps leaves the previous artifact
// byte-identical, never truncated, and no stray temp file behind (except
// past the rename fault, where cleanup still removes it).
func TestWriteFileAtomicCrashLeavesOldFile(t *testing.T) {
	defer faultinject.Reset()
	for _, site := range []string{SiteWrite, SiteFsync, SiteRename} {
		faultinject.Reset()
		dir := t.TempDir()
		path := filepath.Join(dir, "artifact.json")
		if err := WriteFileAtomic(path, []byte("precious old contents"), 0o644); err != nil {
			t.Fatal(err)
		}
		diskErr := errors.New("injected failure")
		faultinject.Arm(site, faultinject.Fault{Err: diskErr, Times: 1})
		if err := WriteFileAtomic(path, []byte("half-written"), 0o644); !errors.Is(err, diskErr) {
			t.Fatalf("%s: error = %v", site, err)
		}
		data, err := os.ReadFile(path)
		if err != nil || string(data) != "precious old contents" {
			t.Fatalf("%s: old file damaged: %q (%v)", site, data, err)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 {
			t.Fatalf("%s: temp litter left behind: %v", site, ents)
		}
	}
}
