package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultinject"
)

// The WAL is a directory of append-only segment files, each named by the
// sequence number of its first record:
//
//	wal-00000000000000000042.seg
//
// A segment is a run of frames:
//
//	u32 length | u32 crc32 | body            (little endian)
//	body = u64 seq | payload
//
// where length = len(body) and crc32 is IEEE over body. Frames carry their
// own sequence numbers (strictly increasing, gaps allowed) so replay can
// skip everything a snapshot already covers. A crash can tear only the tail
// of the newest segment; Replay and OpenWAL both truncate at the first
// frame that fails its length or checksum there, while a bad frame in an
// older segment — which append-only writing cannot produce — is reported as
// corruption rather than silently skipped.

// SyncPolicy says when the WAL fsyncs appended frames.
type SyncPolicy int

const (
	// SyncNever flushes frames to the OS on every append (they survive a
	// process crash) but never fsyncs (a kernel panic or power cut can lose
	// the tail). Segment rotation still fsyncs the finished segment.
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every Append/AppendAll — each acknowledged
	// record survives power loss, at the price of one fsync per call.
	SyncAlways
)

// Options tune a WAL. The zero value is usable: 64 MiB segments, SyncNever.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one would
	// exceed this size (0 = 64 MiB).
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// MaxFrame bounds a single frame's body length (0 = 64 MiB); larger
	// length prefixes are treated as corruption.
	MaxFrame int
}

const (
	defaultSegmentBytes = 64 << 20
	defaultMaxFrame     = 64 << 20
	frameHeaderLen      = 8 // u32 length + u32 crc
	segPrefix           = "wal-"
	segSuffix           = ".seg"
	segSeqDigits        = 20
)

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = defaultMaxFrame
	}
}

// ErrCorrupt reports a bad frame that torn-tail truncation cannot explain:
// a checksum or framing failure before the newest segment's tail.
var ErrCorrupt = errors.New("durable: corrupt WAL")

func segName(start uint64) string {
	return fmt.Sprintf("%s%0*d%s", segPrefix, segSeqDigits, start, segSuffix)
}

// segStart parses a segment file name; ok is false for non-segment names.
func segStart(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(mid) != segSeqDigits {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the WAL segments under dir, sorted by start seq.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list segments: %w", err)
	}
	var starts []uint64
	for _, e := range ents {
		if s, ok := segStart(e.Name()); ok && !e.IsDir() {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// appendFrame appends one encoded frame to b.
func appendFrame(b []byte, seq uint64, payload []byte, maxFrame int) ([]byte, error) {
	bodyLen := 8 + len(payload)
	if bodyLen > maxFrame {
		return b, fmt.Errorf("durable: frame body %d bytes exceeds MaxFrame %d", bodyLen, maxFrame)
	}
	var hdr [frameHeaderLen + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(bodyLen))
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	crc := crc32.ChecksumIEEE(hdr[8:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	b = append(b, hdr[:]...)
	return append(b, payload...), nil
}

// scanFrames walks the frames in data, calling fn(seq, payload, endOffset)
// for each valid one. It returns the offset of the first invalid frame
// (len(data) when the segment is clean) — everything from that offset on is
// a torn or corrupt tail. minSeq enforces strict seq growth across frames.
func scanFrames(data []byte, minSeq uint64, maxFrame int, fn func(seq uint64, payload []byte) error) (validEnd int64, lastSeq uint64, err error) {
	off := 0
	lastSeq = minSeq
	for {
		if len(data)-off < frameHeaderLen+8 {
			return int64(off), lastSeq, nil // short tail (or clean end at off == len(data))
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		if bodyLen < 8 || bodyLen > maxFrame || bodyLen > len(data)-off-frameHeaderLen {
			return int64(off), lastSeq, nil
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		body := data[off+frameHeaderLen : off+frameHeaderLen+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return int64(off), lastSeq, nil
		}
		seq := binary.LittleEndian.Uint64(body)
		if seq <= lastSeq {
			// A record that runs backwards is corruption, not a torn tail,
			// but the caller decides; framing-wise the segment ends here.
			return int64(off), lastSeq, nil
		}
		if fn != nil {
			if err := fn(seq, body[8:]); err != nil {
				return int64(off), lastSeq, err
			}
		}
		lastSeq = seq
		off += frameHeaderLen + bodyLen
	}
}

// ReplayResult summarizes a Replay pass.
type ReplayResult struct {
	// Records is how many records were delivered to fn (seq > from).
	Records int
	// LastSeq is the last valid record's sequence number (from if none).
	LastSeq uint64
	// TruncatedBytes is how many torn/corrupt trailing bytes were cut from
	// the newest segment (0 for a clean log).
	TruncatedBytes int64
	// Segments is how many segment files were scanned.
	Segments int
}

// Replay scans the WAL under dir in order, calling fn for every valid
// record with seq > from. Torn or corrupt trailing frames in the newest
// segment are truncated in place (the defined crash wound); a bad frame in
// any older segment aborts with ErrCorrupt, because replaying past a hole
// could resurrect state the lost records had superseded. fn errors abort
// the replay unchanged.
func Replay(dir string, from uint64, opts Options, fn func(seq uint64, payload []byte) error) (ReplayResult, error) {
	opts.normalize()
	var res ReplayResult
	res.LastSeq = from
	starts, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return res, nil
		}
		return res, err
	}
	lastSeq := uint64(0)
	for i, start := range starts {
		path := filepath.Join(dir, segName(start))
		data, err := os.ReadFile(path)
		if err != nil {
			return res, fmt.Errorf("durable: read segment: %w", err)
		}
		res.Segments++
		validEnd, segLast, err := scanFrames(data, lastSeq, opts.MaxFrame, func(seq uint64, payload []byte) error {
			if seq <= from {
				return nil
			}
			res.Records++
			return fn(seq, payload)
		})
		if err != nil {
			return res, err
		}
		if segLast > lastSeq {
			lastSeq = segLast
		}
		if validEnd < int64(len(data)) {
			if i != len(starts)-1 {
				return res, fmt.Errorf("%w: bad frame at %s:%d (not the newest segment)", ErrCorrupt, segName(start), validEnd)
			}
			if err := os.Truncate(path, validEnd); err != nil {
				return res, fmt.Errorf("durable: truncate torn tail: %w", err)
			}
			res.TruncatedBytes = int64(len(data)) - validEnd
		}
	}
	if lastSeq > res.LastSeq {
		res.LastSeq = lastSeq
	}
	return res, nil
}

// WAL is an open write-ahead log positioned for appending. Appends are
// serialized by an internal mutex; after the first write or fsync error the
// WAL latches it and refuses further appends, so the on-disk log always
// stays a clean prefix of what was acknowledged (callers degrade to
// memory-only operation — see stream.Detector.DurabilityErr).
type WAL struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	size    int64
	lastSeq uint64
	closed  []uint64 // start seqs of closed segments, ascending
	segs    int      // total segments ever opened (closed + current)
	buf     []byte
	err     error
}

// OpenWAL opens (or creates) the WAL under dir for appending. The newest
// segment's torn tail, if any, is truncated — call Replay first when the
// records matter; OpenWAL re-verifies rather than trusts. The returned
// WAL's next append must use a seq greater than LastSeq.
func OpenWAL(dir string, opts Options) (*WAL, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create WAL dir: %w", err)
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	if len(starts) == 0 {
		return w, nil
	}
	w.closed = starts[:len(starts)-1]
	w.segs = len(starts)
	// Every closed segment's records precede the open one's; only the open
	// segment needs scanning to find the clean append offset and last seq.
	// The floor for seq validation is the open segment's own first frame
	// (strictly increasing within a segment is what scanFrames enforces).
	last := starts[len(starts)-1]
	path := filepath.Join(dir, segName(last))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: read segment: %w", err)
	}
	validEnd, lastSeq, _ := scanFrames(data, 0, opts.MaxFrame, nil)
	if validEnd < int64(len(data)) {
		if err := os.Truncate(path, validEnd); err != nil {
			return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("durable: open segment: %w", err)
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seek segment: %w", err)
	}
	w.f = f
	w.size = validEnd
	w.lastSeq = lastSeq
	if lastSeq == 0 && last > 0 {
		// Empty (or fully torn) open segment: its name still floors the
		// next record's seq.
		w.lastSeq = last - 1
	}
	return w, nil
}

// LastSeq returns the newest durable record's sequence number (0 when the
// log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Segments returns how many segment files the WAL currently spans.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return len(w.closed)
	}
	return len(w.closed) + 1
}

// Entry is one record for AppendAll.
type Entry struct {
	Seq     uint64
	Payload []byte
}

// Append writes one record and applies the sync policy. seq must exceed
// LastSeq. After any I/O error the WAL is poisoned: the error is latched
// and returned by this and every later call.
func (w *WAL) Append(seq uint64, payload []byte) error {
	return w.AppendAll([]Entry{{Seq: seq, Payload: payload}})
}

// AppendAll writes a batch of records with one write syscall and (under
// SyncAlways) one fsync, preserving the per-record framing — bulk ingest
// pays the durability cost once per batch instead of once per click.
func (w *WAL) AppendAll(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = w.buf[:0]
	last := w.lastSeq
	for _, e := range entries {
		if e.Seq <= last {
			return fmt.Errorf("durable: append seq %d not after %d", e.Seq, last)
		}
		var err error
		w.buf, err = appendFrame(w.buf, e.Seq, e.Payload, w.opts.MaxFrame)
		if err != nil {
			return err
		}
		last = e.Seq
	}
	if w.f == nil || (w.size > 0 && w.size+int64(len(w.buf)) > w.opts.SegmentBytes) {
		if err := w.rotate(entries[0].Seq); err != nil {
			w.err = err
			return err
		}
	}
	if err := faultinject.ErrAt(SiteWrite); err != nil {
		w.err = fmt.Errorf("durable: append: %w", err)
		return w.err
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("durable: append: %w", err)
		return w.err
	}
	w.size += int64(len(w.buf))
	w.lastSeq = last
	if w.opts.Sync == SyncAlways {
		if err := syncFile(w.f); err != nil {
			w.err = fmt.Errorf("durable: fsync: %w", err)
			return w.err
		}
	}
	return nil
}

// rotate finishes the current segment (fsynced regardless of policy, so a
// closed segment is always fully durable) and opens a new one whose name is
// the next record's seq.
func (w *WAL) rotate(nextSeq uint64) error {
	if w.f != nil {
		if err := syncFile(w.f); err != nil {
			return fmt.Errorf("durable: fsync on rotate: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("durable: close segment: %w", err)
		}
		// The closed segment's start is recoverable from its name; track it
		// for Prune. The just-closed segment is the previous newest.
		starts, err := listSegments(w.dir)
		if err == nil && len(starts) > 0 {
			w.closed = starts
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = 0
	w.segs++
	return nil
}

// Sync flushes the current segment to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	if err := syncFile(w.f); err != nil {
		w.err = fmt.Errorf("durable: fsync: %w", err)
		return w.err
	}
	return nil
}

// Prune deletes closed segments whose records are all covered by a
// snapshot at seq upTo — a segment is deletable when the next segment
// starts at or below upTo+1. The open segment is never deleted. Returns how
// many segments were removed.
func (w *WAL) Prune(upTo uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1] > upTo+1 {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(starts[i]))); err != nil {
			return removed, fmt.Errorf("durable: prune segment: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
		if rest, err := listSegments(w.dir); err == nil && len(rest) > 1 {
			w.closed = rest[:len(rest)-1]
		} else {
			w.closed = nil
		}
	}
	return removed, nil
}

// Err returns the latched I/O error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ErrClosed is latched by Close so a stray late Append fails loudly instead
// of silently rotating into a fresh segment.
var ErrClosed = errors.New("durable: WAL closed")

// Close fsyncs and closes the current segment. The WAL is unusable after:
// every later Append returns ErrClosed (or the earlier latched error).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		if w.err == nil {
			w.err = ErrClosed
		}
		return nil
	}
	syncErr := w.syncLocked()
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil {
		if closeErr != nil {
			w.err = closeErr
		} else {
			w.err = ErrClosed
		}
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
