// Package durable provides the crash-safe persistence primitives under the
// streaming detector's durability layer: a segmented, checksummed
// write-ahead log (wal.go), atomically-written snapshot files
// (snapshot.go), and the temp-file + fsync + rename atomic-write helper
// every artifact writer in the repo shares (WriteFileAtomic).
//
// The package is deliberately payload-agnostic: WAL records and snapshot
// bodies are opaque byte slices, so the detector's record schema lives next
// to the detector (internal/stream/durable.go) and this layer can be reused
// for any state machine. All failure paths carry faultinject sites
// ("durable.write", "durable.fsync", "durable.rename") so tests can prove
// the callers degrade gracefully when the disk misbehaves.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// Fault-injection sites for the three syscalls that decide durability.
// Tests arm errors here to simulate a failing disk without one.
const (
	SiteWrite  = "durable.write"
	SiteFsync  = "durable.fsync"
	SiteRename = "durable.rename"
)

// WriteFileAtomic writes data to path so that a crash at any point leaves
// either the previous file intact or the complete new one, never a
// truncated mix: the data goes to a unique temp file in the same directory,
// is fsynced, and is renamed over path; the directory is then fsynced so
// the rename itself survives a power cut.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	// On any failure the temp file is removed; a crash before rename leaves
	// at worst an orphaned .tmp-* file, never a torn target.
	fail := func(op string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: %s %s: %w", op, path, err)
	}
	if err := faultinject.ErrAt(SiteWrite); err != nil {
		return fail("write", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	if err := syncFile(f); err != nil {
		return fail("fsync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := faultinject.ErrAt(SiteRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := os.Chmod(path, perm); err != nil {
		return fmt.Errorf("durable: chmod %s: %w", path, err)
	}
	return nil
}

// syncFile fsyncs f, honoring the fsync fault site.
func syncFile(f *os.File) error {
	if err := faultinject.ErrAt(SiteFsync); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := syncFile(d); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}
