package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALScan feeds arbitrary bytes to the WAL decoder as the newest
// segment of a log. Whatever the bytes, the scan must not panic, must
// treat the input as a valid prefix plus a truncatable tail (never an
// error — a lone segment is always "the newest"), and after truncation a
// second replay must see exactly the same records with no further
// truncation (the cut is a fixpoint).
func FuzzWALScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// A valid two-record log, a torn copy of it, and a bit-flipped one.
	valid, _ := appendFrame(nil, 1, []byte("hello"), defaultMaxFrame)
	valid, _ = appendFrame(valid, 2, bytes.Repeat([]byte{0xab}, 100), defaultMaxFrame)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	// A frame whose length prefix claims far more than the file holds.
	huge := []byte{0xff, 0xff, 0xff, 0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		type rec struct {
			seq     uint64
			payload string
		}
		var first []rec
		res, err := Replay(dir, 0, Options{}, func(seq uint64, payload []byte) error {
			first = append(first, rec{seq, string(payload)})
			return nil
		})
		if err != nil {
			t.Fatalf("replay over arbitrary newest segment errored: %v", err)
		}
		if res.TruncatedBytes > int64(len(data)) {
			t.Fatalf("truncated %d bytes of a %d-byte segment", res.TruncatedBytes, len(data))
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(len(data))-res.TruncatedBytes {
			t.Fatalf("file is %d bytes after truncating %d of %d", fi.Size(), res.TruncatedBytes, len(data))
		}
		var second []rec
		res2, err := Replay(dir, 0, Options{}, func(seq uint64, payload []byte) error {
			second = append(second, rec{seq, string(payload)})
			return nil
		})
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if res2.TruncatedBytes != 0 {
			t.Fatalf("truncation is not a fixpoint: second pass cut %d more bytes", res2.TruncatedBytes)
		}
		if len(first) != len(second) {
			t.Fatalf("replays disagree: %d vs %d records", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("record %d differs across replays", i)
			}
		}
		// The surviving log must accept appends after the last seen seq.
		w, err := OpenWAL(dir, Options{})
		if err != nil {
			t.Fatalf("OpenWAL after truncation: %v", err)
		}
		if err := w.Append(res.LastSeq+1, []byte("resumed")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
