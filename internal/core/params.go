// Package core implements the paper's contribution: the RICD ("Ride Item's
// Coattails" Detection) framework — the naive detector (Algorithm 1), the
// suspicious-group detection module built on (α,k₁,k₂)-extension biclique
// extraction (Algorithms 2 and 3), the suspicious-group screening module
// (user behavior check and item behavior verification), and the
// suspicious-group identification module (risk-score ranking and the
// feedback parameter-adjustment loop).
package core

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/bipartite"
)

// Params are the tunables of the RICD framework. The names follow the paper:
// K1/K2/Alpha define the (α,k₁,k₂)-extension biclique (Definition 3), THot
// and TClick are the behavioral thresholds of Section IV, TRisk drives the
// naive algorithm.
type Params struct {
	// K1 is the minimum number of users in a suspicious group.
	K1 int
	// K2 is the minimum number of items in a suspicious group.
	K2 int
	// Alpha is the extension tolerance α ∈ (0,1]; 1.0 demands full
	// biclique-style connectivity in the pruning conditions.
	Alpha float64

	// THot is the hot-item threshold: items with total clicks ≥ THot are
	// hot (the paper derives 1,320 from the 80/20 rule and sweeps
	// 1,000–4,000 in the experiments).
	THot uint64
	// TClick is the abnormal-click threshold: a user clicking an ordinary
	// item ≥ TClick times is behaving like a crowd worker (Eq 4 derives 12).
	TClick uint32
	// TRisk is the naive algorithm's risk threshold.
	TRisk float64

	// MaxHotAvg, when positive, additionally caps the average hot-item
	// click count of a suspicious user (Section IV-A characteristic (2):
	// "extremely small (< 4)"). Zero disables the cap, which matches the
	// literal Fig 5 user-behavior check; the threshold is exposed for the
	// stricter-screening ablation.
	MaxHotAvg float64
	// DisguiseRatio is the factor by which a user's target-item clicks
	// must exceed its clicks on an in-group hot/ordinary item for that
	// edge to be considered camouflage during item behavior verification
	// (the C³₂ ≫ C³₁ test of Fig 6).
	DisguiseRatio float64

	// SinglePass, when true, runs Core/Square pruning exactly once each,
	// as the literal Algorithm 3 pseudocode does, instead of iterating
	// the two to a fixpoint. The fixpoint is the default because the
	// guarantees of Lemmas 1–2 only hold at a fixpoint.
	SinglePass bool

	// Workers bounds the goroutines used by the parallel stages (shard
	// pool, square-pruning rounds, screening); 0 means GOMAXPROCS.
	Workers int

	// NoShard disables the component-sharded parallel orchestration of
	// Algorithm 3 and forces the monolithic serial fixpoint — the reference
	// ("golden oracle") path the sharded pipeline is validated against in
	// shardequiv_test.go. Output is identical either way; NoShard trades
	// speed for the simplest possible execution.
	NoShard bool

	// NoFrontier disables the dirty-frontier incremental square pruning and
	// forces every fixpoint round to re-evaluate all live vertices — the
	// full-rescan reference path the frontier loop is validated against,
	// mirroring NoShard. Output is identical either way (the frontier
	// computes the same maximal fixpoint; see DESIGN.md §10); NoFrontier
	// trades speed for the simplest possible execution. The golden oracle of
	// the equivalence harness sets NoShard and NoFrontier together.
	NoFrontier bool

	// Cache, when non-nil, enables the cross-sweep component verdict cache
	// on the sharded extraction path: compacted components are fingerprinted
	// after the global core prune and looked up before square-pruning runs,
	// so components whose CSR, parameters and (in screened mode) hot bits
	// match a previous sweep replay their cached verdict instead of being
	// re-detected (DESIGN.md §15). Output is identical with or without the
	// cache — the fingerprint covers every verdict-affecting input, and the
	// golden harness pins cached vs cache-free equivalence. The cache is
	// ignored on the serial (NoShard/SinglePass) path and bypassed whenever
	// an audit sink is attached (replayed verdicts cannot re-emit the
	// per-decision audit trail).
	Cache *VerdictCache

	// CacheTouched is a sorted hint listing the user IDs touched since the
	// last sweep (the delta's dirty set): components intersecting it are
	// known-churned, so the sharded path skips hashing and consulting the
	// cache for them entirely. Purely an optimization — the fingerprint
	// remains the correctness authority for every component that IS
	// consulted. Nil means "consult the cache for every component".
	CacheTouched []bipartite.NodeID
}

// DefaultParams returns the paper's experiment defaults (Section VI-B):
// k₁ = k₂ = 10, α = 1.0, T_hot = 1,000, T_click = 12.
func DefaultParams() Params {
	return Params{
		K1:            10,
		K2:            10,
		Alpha:         1.0,
		THot:          1000,
		TClick:        12,
		TRisk:         50,
		MaxHotAvg:     0,
		DisguiseRatio: 4,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.K1 <= 0 || p.K2 <= 0:
		return fmt.Errorf("core: K1 and K2 must be positive, got %d/%d", p.K1, p.K2)
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("core: Alpha must be in (0,1], got %v", p.Alpha)
	case p.TClick == 0:
		return fmt.Errorf("core: TClick must be positive")
	case p.MaxHotAvg < 0:
		return fmt.Errorf("core: MaxHotAvg must be ≥ 0 (0 disables), got %v", p.MaxHotAvg)
	case p.DisguiseRatio < 1:
		return fmt.Errorf("core: DisguiseRatio must be ≥ 1, got %v", p.DisguiseRatio)
	case p.Workers < 0:
		return fmt.Errorf("core: Workers must be ≥ 0, got %d", p.Workers)
	}
	return nil
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// sharded reports whether the component-sharded orchestration should run.
// SinglePass requests the literal sequential pseudocode, which is never
// sharded.
func (p Params) sharded() bool { return !p.NoShard && !p.SinglePass }

// ceilMul returns ⌈k × α⌉, the common quantity of Definitions 3–4.
func ceilMul(k int, alpha float64) int {
	v := float64(k) * alpha
	n := int(v)
	if float64(n) < v {
		n++
	}
	return n
}

// Thresholds holds data-derived parameter values.
type Thresholds struct {
	// THot is the click count of the last item inside the top-80%% click
	// mass (the Pareto cut of Section IV-A, first step).
	THot uint64
	// HotItems is the number of items at or above THot.
	HotItems int
	// TClick is Eq 4 evaluated on the dataset:
	// (Avg_clk × 80%) / (Avg_cnt × 20%).
	TClick uint32
}

// DeriveThresholds reproduces the paper's data-driven derivation of T_hot
// (rank items by clicks, cut at 80% of total click mass) and T_click (Eq 4)
// from a click graph.
func DeriveThresholds(g *bipartite.Graph) Thresholds {
	var totals []uint64
	var sum uint64
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		s := g.ItemStrength(v)
		totals = append(totals, s)
		sum += s
		return true
	})
	sort.Slice(totals, func(i, j int) bool { return totals[i] > totals[j] })

	var th Thresholds
	var cum uint64
	for i, s := range totals {
		cum += s
		if float64(cum) >= 0.8*float64(sum) {
			th.THot = s
			th.HotItems = i + 1
			break
		}
	}

	us := bipartite.Stats(g, bipartite.UserSide)
	if us.AvgDegree > 0 {
		tc := (us.AvgClicks * 0.8) / (us.AvgDegree * 0.2)
		if tc < 1 {
			tc = 1
		}
		th.TClick = uint32(tc + 0.5)
	} else {
		th.TClick = 1
	}
	return th
}
