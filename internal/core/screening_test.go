package core

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// fig5Graph reconstructs the spirit of the paper's Fig 5 example: a
// candidate group of 3 users × 3 items where i0 is hot, u0 only has light
// clicks (and only on the hot item and one light ordinary edge), while u1
// and u2 hammer the ordinary items i1 and i2.
//
//	        i0 (hot, clicks 5000 from filler users)
//	u0: i0×2, i1×1
//	u1: i0×1, i1×15, i2×14
//	u2: i0×1, i1×13, i2×16
func fig5Graph() (*bipartite.Graph, detect.Group, *HotSet, Params) {
	b := bipartite.NewBuilder(200, 10)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 15)
	b.Add(1, 2, 14)
	b.Add(2, 0, 1)
	b.Add(2, 1, 13)
	b.Add(2, 2, 16)
	// Filler traffic making i0 hot.
	for u := bipartite.NodeID(3); u < 200; u++ {
		b.Add(u, 0, 26)
	}
	g := b.Build()
	p := DefaultParams()
	p.K1, p.K2 = 2, 2
	p.THot = 1000
	p.TClick = 12
	hot := ComputeHotSet(g, p.THot)
	grp := detect.Group{
		Users: []bipartite.NodeID{0, 1, 2},
		Items: []bipartite.NodeID{0, 1, 2},
	}
	return g, grp, hot, p
}

func TestUserBehaviorCheckDropsHotOnlyUser(t *testing.T) {
	g, grp, hot, p := fig5Graph()
	if !hot.IsHot(0) {
		t.Fatal("fixture broken: item 0 should be hot")
	}
	kept := UserBehaviorCheck(g, grp, hot, p)
	want := []bipartite.NodeID{1, 2}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept users = %v, want %v (u0 has no ≥T_click ordinary edge)", kept, want)
	}
}

func TestUserBehaviorCheckDropsHotHeavyUser(t *testing.T) {
	// A user with a strong ordinary edge but who also hammers hot items
	// (avg ≥ MaxHotAvg) behaves like a fan, not a crowd worker.
	b := bipartite.NewBuilder(200, 10)
	b.Add(0, 0, 19) // hot item, heavy clicks — ordinary-user profile (Table IV)
	b.Add(0, 1, 13)
	for u := bipartite.NodeID(1); u < 200; u++ {
		b.Add(u, 0, 26)
	}
	g := b.Build()
	p := DefaultParams()
	p.THot = 1000
	p.MaxHotAvg = 4 // enable the strict characteristic-(2) cap
	hot := ComputeHotSet(g, p.THot)
	grp := detect.Group{Users: []bipartite.NodeID{0}, Items: []bipartite.NodeID{0, 1}}
	if kept := UserBehaviorCheck(g, grp, hot, p); len(kept) != 0 {
		t.Errorf("hot-heavy user survived the check: %v", kept)
	}
	p.MaxHotAvg = 0 // disabled: the literal Fig 5 check keeps the user
	if kept := UserBehaviorCheck(g, grp, hot, p); len(kept) != 1 {
		t.Errorf("user dropped with MaxHotAvg disabled: %v", kept)
	}
}

func TestUserBehaviorCheckKeepsWorkerWithoutHotEdges(t *testing.T) {
	// An attacker whose in-group items are all ordinary must pass: the
	// hot-average condition is vacuous with no hot edges.
	b := bipartite.NewBuilder(5, 5)
	b.Add(0, 0, 14)
	b.Add(0, 1, 13)
	g := b.Build()
	p := DefaultParams()
	hot := ComputeHotSet(g, p.THot)
	grp := detect.Group{Users: []bipartite.NodeID{0}, Items: []bipartite.NodeID{0, 1}}
	if kept := UserBehaviorCheck(g, grp, hot, p); len(kept) != 1 {
		t.Errorf("worker without hot edges dropped: %v", kept)
	}
}

func TestItemBehaviorVerification(t *testing.T) {
	g, grp, hot, p := fig5Graph()
	users := UserBehaviorCheck(g, grp, hot, p) // u1, u2
	items := ItemBehaviorVerification(g, grp.Items, users, hot, p)
	// i0 is hot → excluded; i1, i2 have 2 supporters ≥ ceil(α·k1)=2.
	want := []bipartite.NodeID{1, 2}
	if !reflect.DeepEqual(items, want) {
		t.Errorf("verified items = %v, want %v", items, want)
	}
}

func TestItemBehaviorVerificationDropsCamouflage(t *testing.T) {
	g, grp, hot, p := fig5Graph()
	users := UserBehaviorCheck(g, grp, hot, p)
	// Add a camouflage item i3 clicked once by each checked user.
	b := bipartite.NewBuilder(200, 10)
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			b.Add(u, v, w)
			return true
		})
		return true
	})
	b.Add(1, 3, 1)
	b.Add(2, 3, 2)
	g2 := b.Build()
	items := ItemBehaviorVerification(g2, append(grp.Items, 3), users, hot, p)
	for _, v := range items {
		if v == 3 {
			t.Error("camouflage item 3 verified as target")
		}
	}
}

func TestDisguisedHotEdge(t *testing.T) {
	g, _, _, p := fig5Graph()
	targets := []bipartite.NodeID{1, 2}
	// u2 clicks i0 once but targets 13-16 times: disguise.
	if !DisguisedHotEdge(g, 2, 0, targets, p) {
		t.Error("u2→i0 should be a disguise edge")
	}
	// u0 clicks i0 twice and has no ≥-weight target edges... its target
	// clicks are 1, so 1 < ratio×2: not a disguise.
	if DisguisedHotEdge(g, 0, 0, targets, p) {
		t.Error("u0→i0 should not be a disguise edge")
	}
	// Nonexistent edge is never a disguise.
	if DisguisedHotEdge(g, 2, 9, targets, p) {
		t.Error("missing edge reported as disguise")
	}
}

func TestScreenGroupsEndToEnd(t *testing.T) {
	// Build two planted attack groups glued by a shared hot item, plus the
	// hot item's organic fans. Screening must drop the hot item and the
	// fans, then split the merged component back into two groups.
	b := bipartite.NewBuilder(1000, 100)
	hotItem := bipartite.NodeID(0)
	for u := bipartite.NodeID(100); u < 1000; u++ {
		b.Add(u, hotItem, 3)
	}
	// Group A: users 0..11, items 1..12.
	for u := 0; u < 12; u++ {
		b.Add(bipartite.NodeID(u), hotItem, 1)
		for v := 1; v <= 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 14)
		}
	}
	// Group B: users 12..23, items 13..24.
	for u := 12; u < 24; u++ {
		b.Add(bipartite.NodeID(u), hotItem, 1)
		for v := 13; v <= 24; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 14)
		}
	}
	g := b.Build()
	p := DefaultParams()
	p.THot = 1000
	p.K1, p.K2 = 10, 10
	hot := ComputeHotSet(g, p.THot)
	if !hot.IsHot(hotItem) {
		t.Fatal("fixture broken: item 0 should be hot")
	}

	// Feed screening one merged candidate group, as extraction would
	// produce it.
	var users, items []bipartite.NodeID
	for u := 0; u < 24; u++ {
		users = append(users, bipartite.NodeID(u))
	}
	for v := 0; v <= 24; v++ {
		items = append(items, bipartite.NodeID(v))
	}
	merged := []detect.Group{{Users: users, Items: items}}

	out := ScreenGroups(g, merged, hot, p)
	if len(out) != 2 {
		t.Fatalf("got %d groups after screening, want 2 (split on hot-item removal)", len(out))
	}
	for _, grp := range out {
		if len(grp.Users) != 12 || len(grp.Items) != 12 {
			t.Errorf("screened group = %d users / %d items, want 12/12",
				len(grp.Users), len(grp.Items))
		}
		for _, v := range grp.Items {
			if v == hotItem {
				t.Error("hot item survived screening")
			}
		}
	}
}

func TestScreenGroupsEmptyInput(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	p := DefaultParams()
	hot := ComputeHotSet(g, p.THot)
	if out := ScreenGroups(g, nil, hot, p); out != nil {
		t.Errorf("screening nil groups = %v, want nil", out)
	}
}
