package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements the Suspicious Group Screening module: the user
// behavior check (Fig 5) and the item behavior verification (Fig 6). Both
// steps read the ORIGINAL click graph — screening judges behavior against
// real weights and the marketplace-wide hot classification, not against the
// pruned residual.

// UserBehaviorCheck filters a candidate group's users down to those whose
// in-group click pattern matches the crowd-worker profile of Section IV-A:
//
//	(1) at least one in-group ordinary (non-hot) item clicked ≥ T_click
//	    times — the attack signature of Fig 5;
//	(2) optionally (MaxHotAvg > 0), average clicks on in-group hot items
//	    below MaxHotAvg — attackers touch hot items as little as possible
//	    (Section IV-A characteristic (2); optimal strategy: once).
//
// In the paper's Fig 5 example this is what removes u₁, whose only strong
// edges go to a hot item.
func UserBehaviorCheck(g *bipartite.Graph, grp detect.Group, hot *HotSet, p Params) []bipartite.NodeID {
	return userBehaviorCheck(g, grp, hot, p, nil, 0)
}

// userBehaviorCheck is UserBehaviorCheck with auditing: every dropped user
// produces a screen.drop event carrying the failed check and the statistic
// that failed it. group is the 1-based candidate-group index.
func userBehaviorCheck(g *bipartite.Graph, grp detect.Group, hot *HotSet, p Params,
	a *auditor, group int) []bipartite.NodeID {

	inGroup := make(map[bipartite.NodeID]bool, len(grp.Items))
	for _, v := range grp.Items {
		inGroup[v] = true
	}
	var kept []bipartite.NodeID
	for _, u := range grp.Users {
		var hotClicks, hotEdges int
		var maxOrdinary uint32
		hasAttackEdge := false
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if !inGroup[v] {
				return true
			}
			if hot.IsHot(v) {
				hotClicks += int(w)
				hotEdges++
			} else {
				if w > maxOrdinary {
					maxOrdinary = w
				}
				if w >= p.TClick {
					hasAttackEdge = true
				}
			}
			return true
		})
		if !hasAttackEdge {
			a.dropUserNoAttackEdge(group, u, maxOrdinary, p.TClick)
			continue
		}
		if p.MaxHotAvg > 0 && hotEdges > 0 {
			if avg := float64(hotClicks) / float64(hotEdges); avg >= p.MaxHotAvg {
				a.dropUserHotAvg(group, u, avg, p.MaxHotAvg)
				continue
			}
		}
		kept = append(kept, u)
	}
	return kept
}

// ItemBehaviorVerification filters a group's items down to verified attack
// targets, given the users that survived the user behavior check:
//
//   - hot items are excluded — they are the ridden victims, not targets;
//   - an ordinary item is a verified target iff at least ⌈α·k₁⌉ surviving
//     users clicked it ≥ T_click times (the clicked-user-set coincidence
//     test of Fig 6 — targets of one group share their attacker set);
//   - an ordinary item whose in-group clicks are uniformly a factor
//     DisguiseRatio below the users' target clicks is camouflage (the
//     C³₂ ≫ C³₁ case) and is dropped by the same supporter test, since
//     camouflage weights sit far below T_click.
func ItemBehaviorVerification(g *bipartite.Graph, items []bipartite.NodeID,
	users []bipartite.NodeID, hot *HotSet, p Params) []bipartite.NodeID {

	return itemBehaviorVerification(g, items, users, hot, p, nil, 0)
}

// itemBehaviorVerification is ItemBehaviorVerification with auditing: hot
// exclusions and failed supporter tests produce typed screen.drop events.
func itemBehaviorVerification(g *bipartite.Graph, items []bipartite.NodeID,
	users []bipartite.NodeID, hot *HotSet, p Params, a *auditor, group int) []bipartite.NodeID {

	userSet := make(map[bipartite.NodeID]bool, len(users))
	for _, u := range users {
		userSet[u] = true
	}
	minSupporters := ceilMul(p.K1, p.Alpha)
	var kept []bipartite.NodeID
	for _, v := range items {
		if hot.IsHot(v) {
			a.dropItemHot(group, v)
			continue
		}
		supporters := 0
		verified := false
		g.EachItemNeighbor(v, func(u bipartite.NodeID, w uint32) bool {
			if userSet[u] && w >= p.TClick {
				supporters++
				if supporters >= minSupporters {
					verified = true
					return false
				}
			}
			return true
		})
		if verified {
			kept = append(kept, v)
		} else {
			a.dropItemSupporters(group, v, supporters, minSupporters)
		}
	}
	return kept
}

// DisguisedHotEdge reports whether user u's edge to in-group item v looks
// like a disguise: u's median click weight on the verified targets exceeds
// DisguiseRatio × w(u,v). This is the explicit C³₂ ≫ C³₁ test of Fig 6,
// exposed for analysis tooling; the screening pipeline subsumes it through
// the supporter test.
func DisguisedHotEdge(g *bipartite.Graph, u, v bipartite.NodeID,
	targets []bipartite.NodeID, p Params) bool {

	w := g.Weight(u, v)
	if w == 0 {
		return false
	}
	var weights []uint32
	for _, t := range targets {
		if tw := g.Weight(u, t); tw > 0 {
			weights = append(weights, tw)
		}
	}
	if len(weights) == 0 {
		return false
	}
	med := medianU32(weights)
	return float64(med) >= p.DisguiseRatio*float64(w)
}

func medianU32(xs []uint32) uint32 {
	// Insertion sort: screening medians are over a handful of weights.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}

// ScreenGroups applies the full screening module to candidate groups and
// re-partitions the survivors: removing hot items can split a merged
// component (several attack groups riding the same hot items) back into its
// true attack groups, so survivors are re-clustered by connected components
// of the induced verified subgraph and the Definition 3 size bounds are
// re-applied (property (4b)).
func ScreenGroups(g *bipartite.Graph, groups []detect.Group, hot *HotSet, p Params) []detect.Group {
	return ScreenGroupsObserved(g, groups, hot, p, nil, nil)
}

// ScreenGroupsObserved is ScreenGroups with observability: the user-check
// and item-verification passes become child spans of sp, and candidate
// in/out counts feed o's registry under core.screen.*. Nil sp/o observe
// nothing.
func ScreenGroupsObserved(g *bipartite.Graph, groups []detect.Group, hot *HotSet, p Params,
	sp *obs.Span, o *obs.Observer) []detect.Group {

	out, _ := ScreenGroupsCtx(context.Background(), g, groups, hot, p, sp, o)
	return out
}

// ScreenGroupsCtx is ScreenGroupsObserved with cooperative cancellation:
// ctx is checked before each candidate group (fault-injection site
// "core.screen.group"). On cancellation the groups fully screened so far
// still go through the cheap repartition, so the partial output obeys the
// same contract as a complete one (every returned group is screened and
// satisfies the Definition 3 size bounds) — it may just be missing groups.
func ScreenGroupsCtx(ctx context.Context, g *bipartite.Graph, groups []detect.Group,
	hot *HotSet, p Params, sp *obs.Span, o *obs.Observer) ([]detect.Group, error) {

	var usersIn, itemsIn int
	for _, grp := range groups {
		usersIn += len(grp.Users)
		itemsIn += len(grp.Items)
	}

	var ctxErr error
	a := newAuditor(o)
	csp := sp.Start("behavior_checks")
	var allUsers, allItems []bipartite.NodeID
	if p.sharded() && p.workers() > 1 && len(groups) > 1 {
		allUsers, allItems, ctxErr = screenParallel(ctx, g, groups, hot, p, a)
	} else {
		for i, grp := range groups {
			faultinject.Hit("core.screen.group")
			if ctxErr = ctx.Err(); ctxErr != nil {
				break
			}
			users, items := screenOne(g, grp, hot, p, a, i+1)
			allUsers = append(allUsers, users...)
			allItems = append(allItems, items...)
		}
	}
	csp.SetInt("users_in", int64(usersIn))
	csp.SetInt("users_kept", int64(len(allUsers)))
	csp.SetInt("items_in", int64(itemsIn))
	csp.SetInt("items_kept", int64(len(allItems)))
	csp.End()
	o.Counter("core.screen.groups_in").Add(int64(len(groups)))
	o.Counter("core.screen.users_dropped").Add(int64(usersIn - len(allUsers)))
	o.Counter("core.screen.items_dropped").Add(int64(itemsIn - len(allItems)))
	if len(allUsers) == 0 || len(allItems) == 0 {
		return nil, ctxErr
	}

	rsp := sp.Start("repartition")
	sub, err := bipartite.InducedSubgraph(g, allUsers, allItems)
	if err != nil {
		// IDs came from g itself; out-of-range is impossible.
		panic("core: screening produced invalid IDs: " + err.Error())
	}
	var out []detect.Group
	for _, comp := range bipartite.ConnectedComponents(sub) {
		if len(comp.Users) >= p.K1 && len(comp.Items) >= p.K2 {
			out = append(out, detect.Group{Users: comp.Users, Items: comp.Items})
		}
	}
	rsp.SetInt("groups_out", int64(len(out)))
	rsp.End()
	o.Counter("core.screen.groups_out").Add(int64(len(out)))
	return out, ctxErr
}

// screenOne applies the user behavior check and item behavior verification
// to one candidate group. It returns the supported users and verified items,
// both possibly empty: a dissolved group contributes nothing. group is the
// 1-based candidate index stamped on audit events.
func screenOne(g *bipartite.Graph, grp detect.Group, hot *HotSet, p Params,
	a *auditor, group int) (users, items []bipartite.NodeID) {

	checked := userBehaviorCheck(g, grp, hot, p, a, group)
	if len(checked) == 0 {
		// The group dissolved at the user check; its items fall with it.
		for _, v := range grp.Items {
			a.dropItemGroupDissolved(group, v)
		}
		return nil, nil
	}
	items = itemBehaviorVerification(g, grp.Items, checked, hot, p, a, group)
	if len(items) == 0 {
		// The group dissolved at item verification: every remaining user
		// lost their targets, which the per-item events already explain.
		for _, u := range checked {
			a.dropUserNoVerifiedTarget(group, u)
		}
		return nil, nil
	}
	// A user must still support at least one verified target;
	// users whose only strong edges went to unverified items drop out.
	itemSet := make(map[bipartite.NodeID]bool, len(items))
	for _, v := range items {
		itemSet[v] = true
	}
	for _, u := range checked {
		supports := false
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if itemSet[v] && w >= p.TClick {
				supports = true
				return false
			}
			return true
		})
		if supports {
			users = append(users, u)
		} else {
			a.dropUserNoVerifiedTarget(group, u)
		}
	}
	return users, items
}

// screenParallel screens the candidate groups on a bounded worker pool.
// Groups are independent of each other during behavior checks (only the
// final repartition is cross-group, and it is set-based), so accumulating
// per-group outputs in index order makes the result identical to the serial
// loop's. On cancellation the groups fully screened before the cancel are
// kept — each is individually sound, matching the serial partial contract.
// A panic inside a worker is rethrown on the caller's goroutine so the
// DetectContext stage isolation sees it exactly like a serial panic.
func screenParallel(ctx context.Context, g *bipartite.Graph, groups []detect.Group,
	hot *HotSet, p Params, a *auditor) (allUsers, allItems []bipartite.NodeID, ctxErr error) {

	type screenOut struct {
		users, items []bipartite.NodeID
		done         bool
		panicked     any
	}
	outs := make([]screenOut, len(groups))
	pool := p.workers()
	if pool > len(groups) {
		pool = len(groups)
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(groups) {
					return
				}
				faultinject.Hit("core.screen.group")
				if ctx.Err() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							outs[i].panicked = r
						}
					}()
					outs[i].users, outs[i].items = screenOne(g, groups[i], hot, p, a, i+1)
					outs[i].done = true
				}()
			}
		}()
	}
	wg.Wait()
	ctxErr = ctx.Err()
	for i := range outs {
		if outs[i].panicked != nil {
			panic(outs[i].panicked)
		}
		if !outs[i].done {
			continue
		}
		allUsers = append(allUsers, outs[i].users...)
		allItems = append(allItems, outs[i].items...)
	}
	return allUsers, allItems, ctxErr
}
