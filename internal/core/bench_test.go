package core

import (
	"testing"

	"repro/internal/synth"
)

func benchDataset(b *testing.B) *synth.Dataset {
	b.Helper()
	return synth.MustGenerate(synth.SmallConfig())
}

func BenchmarkPruneSmall(b *testing.B) {
	ds := benchDataset(b)
	p := smallParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.Graph.Clone()
		Prune(g, p)
	}
}

func BenchmarkDetectSmall(b *testing.B) {
	ds := benchDataset(b)
	d := &Detector{Params: smallParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Detect(ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScreenGroupsSmall(b *testing.B) {
	ds := benchDataset(b)
	p := smallParams()
	ui := &Detector{Params: p, Variant: VariantUI}
	res, err := ui.Detect(ds.Graph)
	if err != nil {
		b.Fatal(err)
	}
	hot := ComputeHotSet(ds.Graph, p.THot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScreenGroups(ds.Graph, res.Groups, hot, p)
	}
}

func BenchmarkNaiveSmall(b *testing.B) {
	ds := benchDataset(b)
	d := &NaiveDetector{Params: smallParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Detect(ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankResult(b *testing.B) {
	ds := benchDataset(b)
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankResult(ds.Graph, res)
	}
}

func BenchmarkDeriveThresholds(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeriveThresholds(ds.Graph)
	}
}
