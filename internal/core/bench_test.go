package core

import (
	"context"
	"testing"

	"repro/internal/synth"
)

func benchDataset(b *testing.B) *synth.Dataset {
	b.Helper()
	return synth.MustGenerate(synth.SmallConfig())
}

func BenchmarkPruneSmall(b *testing.B) {
	ds := benchDataset(b)
	p := smallParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.Graph.Clone()
		Prune(g, p)
	}
}

func BenchmarkDetectSmall(b *testing.B) {
	ds := benchDataset(b)
	d := &Detector{Params: smallParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Detect(ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScreenGroupsSmall(b *testing.B) {
	ds := benchDataset(b)
	p := smallParams()
	ui := &Detector{Params: p, Variant: VariantUI}
	res, err := ui.Detect(ds.Graph)
	if err != nil {
		b.Fatal(err)
	}
	hot := ComputeHotSet(ds.Graph, p.THot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScreenGroups(ds.Graph, res.Groups, hot, p)
	}
}

// BenchmarkSquareRoundCounterReuse isolates the counter-pooling win: a
// square round over a stable biclique (no victims, so no output growth)
// with a warm pool allocates zero counter state — before pooling, every
// round built a fresh graph-sized commonCounter per worker. The alloc
// report pins the steady-state claim of BENCH_frontier.json: the one
// residual alloc (112 B) is the predicate closure, not counter state.
func BenchmarkSquareRoundCounterReuse(b *testing.B) {
	g := plantedGraph(40, 40, 3, 0, 0, 0, 1)
	p := params(10, 10, 1.0)
	p.Workers = 1
	pool := newCounterPool(g.NumUsers(), g.NumItems())
	ids := g.LiveUserIDs()
	ctx := context.Background()
	squareRoundUsers(ctx, g, p, ids, pool) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		squareRoundUsers(ctx, g, p, ids, pool)
	}
}

// BenchmarkPruneLadderFrontier compares the dirty-frontier fixpoint with
// the full-rescan loop on the rounds-heavy ladder (~ layers/2 rounds of
// small removals, the regime the frontier is built for).
func BenchmarkPruneLadderFrontier(b *testing.B) {
	base := synth.LadderGraph(120, 6, 6)
	k1, k2, alpha := synth.LadderParams(6, 6)
	run := func(b *testing.B, noFrontier bool) {
		p := params(k1, k2, alpha)
		p.NoFrontier = noFrontier
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := base.Clone()
			Prune(g, p)
		}
	}
	b.Run("frontier", func(b *testing.B) { run(b, false) })
	b.Run("rescan", func(b *testing.B) { run(b, true) })
}

func BenchmarkNaiveSmall(b *testing.B) {
	ds := benchDataset(b)
	d := &NaiveDetector{Params: smallParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Detect(ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankResult(b *testing.B) {
	ds := benchDataset(b)
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankResult(ds.Graph, res)
	}
}

func BenchmarkDeriveThresholds(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeriveThresholds(ds.Graph)
	}
}
