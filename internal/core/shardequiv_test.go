package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/synth"
)

// This file is the golden-oracle equivalence harness for the
// component-sharded detection pipeline (shard.go) and the dirty-frontier
// pruning loop (pruneFixpointFrontier): across a corpus of ≥ 20 seeded
// synthetic workloads of varied shape and worker counts {1, 2, 8}, every
// mode combination must return exactly what the doubly-disabled reference
// path (Params.NoShard + Params.NoFrontier: monolithic serial full-rescan
// fixpoint) returns — same groups in the same order, same membership order,
// same risk scores, same per-group statistics, same pruning stats including
// Rounds.

// equivCorpus returns the shared seeded workload corpus
// (synth.EquivCorpus): varied marketplace sizes, attack-group counts and
// near-biclique participation, so the harness covers many-component
// residuals, single-component residuals, and empty results.
func equivCorpus() []synth.Config { return synth.EquivCorpus() }

// equivParams varies the detection knobs across the corpus so the harness
// covers α < 1, relaxed size bounds, and the tiny marketplace's hot range.
func equivParams(i int, cfg synth.Config) Params {
	p := smallParams()
	switch i % 3 {
	case 1:
		p.Alpha = 0.8
	case 2:
		p.K1, p.K2 = 8, 8
	}
	if cfg.NumUsers < 1000 {
		p.THot = 200
	}
	return p
}

func TestShardedDetectionMatchesSerialOracle(t *testing.T) {
	cfgs := equivCorpus()
	if len(cfgs) < 20 {
		t.Fatalf("corpus has %d workloads, want ≥ 20", len(cfgs))
	}
	totalGroups := 0
	for i, cfg := range cfgs {
		ds := synth.MustGenerate(cfg)
		base := equivParams(i, cfg)

		serial := base
		serial.NoShard = true
		serial.NoFrontier = true
		oracle, err := (&Detector{Params: serial}).Detect(ds.Graph)
		if err != nil {
			t.Fatalf("workload %d: serial oracle: %v", i, err)
		}
		totalGroups += len(oracle.Groups)

		// Candidate matrix: the default frontier+sharded mode across the
		// worker sweep, plus — on a corpus prefix — the two one-knob-back
		// modes (serial+frontier, sharded+rescan), so every NoShard ×
		// NoFrontier combination is pinned to the doubly-disabled oracle.
		type mode struct {
			name       string
			workers    int
			noShard    bool
			noFrontier bool
		}
		modes := []mode{
			{"w1", 1, false, false},
			{"w2", 2, false, false},
			{"w8", 8, false, false},
		}
		if i < 6 {
			modes = append(modes,
				mode{"serial-frontier", 0, true, false},
				mode{"w2-rescan", 2, false, true},
			)
		}
		for _, m := range modes {
			t.Run(fmt.Sprintf("workload%02d/%s", i, m.name), func(t *testing.T) {
				p := base
				p.Workers = m.workers
				p.NoShard = m.noShard
				p.NoFrontier = m.noFrontier
				res, err := (&Detector{Params: p}).Detect(ds.Graph)
				if err != nil {
					t.Fatalf("sharded detect: %v", err)
				}
				if len(res.Groups) != len(oracle.Groups) {
					t.Fatalf("groups = %d, oracle has %d", len(res.Groups), len(oracle.Groups))
				}
				for gi := range oracle.Groups {
					want, got := oracle.Groups[gi], res.Groups[gi]
					if !reflect.DeepEqual(got.Users, want.Users) {
						t.Errorf("group %d users diverge:\n got %v\nwant %v", gi, got.Users, want.Users)
					}
					if !reflect.DeepEqual(got.Items, want.Items) {
						t.Errorf("group %d items diverge:\n got %v\nwant %v", gi, got.Items, want.Items)
					}
					if got.Score != want.Score {
						t.Errorf("group %d score = %v, oracle %v", gi, got.Score, want.Score)
					}
					// Same members against the same graph must yield
					// byte-identical forensic statistics.
					if ComputeGroupStats(ds.Graph, got) != ComputeGroupStats(ds.Graph, want) {
						t.Errorf("group %d stats diverge", gi)
					}
				}
				if !reflect.DeepEqual(res.Users(), oracle.Users()) {
					t.Error("suspicious user sets diverge")
				}
				if !reflect.DeepEqual(res.Items(), oracle.Items()) {
					t.Error("suspicious item sets diverge")
				}
			})
		}
	}
	if totalGroups == 0 {
		t.Fatal("corpus is vacuous: the serial oracle found no groups anywhere")
	}
	t.Logf("oracle found %d groups across %d workloads", totalGroups, len(cfgs))
}

// TestShardedPruneLeavesOracleResidual pins the other half of the contract:
// not just the reported groups but the residual graph itself — PruneCtx in
// every mode combination must leave exactly the serial full-rescan fixpoint,
// with identical PruneStats (Rounds included) and an identical removal
// epoch (same number of removals applied, clone-inherited base cancelling
// out).
func TestShardedPruneLeavesOracleResidual(t *testing.T) {
	for i, cfg := range equivCorpus()[:6] {
		ds := synth.MustGenerate(cfg)
		p := equivParams(i, cfg)

		serial := ds.Graph.Clone()
		sp := p
		sp.NoShard = true
		sp.NoFrontier = true
		stSerial := Prune(serial, sp)

		check := func(name string, pp Params) {
			g := ds.Graph.Clone()
			st := Prune(g, pp)
			if stSerial != st {
				t.Errorf("workload %d %s: stats = %+v, oracle %+v", i, name, st, stSerial)
			}
			if !reflect.DeepEqual(g.LiveUserIDs(), serial.LiveUserIDs()) {
				t.Errorf("workload %d %s: surviving users diverge", i, name)
			}
			if !reflect.DeepEqual(g.LiveItemIDs(), serial.LiveItemIDs()) {
				t.Errorf("workload %d %s: surviving items diverge", i, name)
			}
			if g.RemovalEpoch() != serial.RemovalEpoch() {
				t.Errorf("workload %d %s: removal epoch %d, oracle %d",
					i, name, g.RemovalEpoch(), serial.RemovalEpoch())
			}
		}
		for _, w := range []int{1, 2, 8} {
			pp := p
			pp.Workers = w
			check(fmt.Sprintf("w%d", w), pp)
		}
		pf := p
		pf.NoShard = true
		check("serial-frontier", pf)
		pr := p
		pr.Workers = 2
		pr.NoFrontier = true
		check("w2-rescan", pr)
	}
}
