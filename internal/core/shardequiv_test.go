package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/synth"
)

// This file is the golden-oracle equivalence harness for the
// component-sharded detection pipeline (shard.go): across a corpus of ≥ 20
// seeded synthetic workloads of varied shape and worker counts {1, 2, 8},
// sharded detection must return exactly what the serial reference path
// (Params.NoShard) returns — same groups in the same order, same membership
// order, same risk scores, same per-group statistics, same pruning stats.

// equivCorpus returns the seeded workload corpus. Shapes vary deliberately:
// marketplace size, attack-group count, near-biclique participation, and
// campaign-scale crews, so the harness covers many-component residuals,
// single-component residuals, and empty results.
func equivCorpus() []synth.Config {
	var cfgs []synth.Config
	// Small marketplaces (2k users, 400 items) with varied attack shapes.
	for seed := int64(1); seed <= 8; seed++ {
		c := synth.SmallConfig()
		c.Seed = seed
		c.Attack.Groups = 2 + int(seed%3)
		c.Attack.Participation = 0.85 + 0.05*float64(seed%3)
		cfgs = append(cfgs, c)
	}
	// Tiny marketplaces (600 users, 150 items): residuals here shatter into
	// several small components, and some seeds produce none at all.
	for seed := int64(100); seed < 112; seed++ {
		c := synth.SmallConfig()
		c.Seed = seed
		c.NumUsers = 600
		c.NumItems = 150
		c.Attack.Groups = 2 + int(seed%4)
		c.Attack.AttackersMin = 10
		c.Attack.AttackersMax = 14
		c.Attack.TargetsMin = 10
		c.Attack.TargetsMax = 12
		c.Attack.HotPoolSize = 6
		c.Confusers.GroupBuys = 2
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// equivParams varies the detection knobs across the corpus so the harness
// covers α < 1, relaxed size bounds, and the tiny marketplace's hot range.
func equivParams(i int, cfg synth.Config) Params {
	p := smallParams()
	switch i % 3 {
	case 1:
		p.Alpha = 0.8
	case 2:
		p.K1, p.K2 = 8, 8
	}
	if cfg.NumUsers < 1000 {
		p.THot = 200
	}
	return p
}

func TestShardedDetectionMatchesSerialOracle(t *testing.T) {
	cfgs := equivCorpus()
	if len(cfgs) < 20 {
		t.Fatalf("corpus has %d workloads, want ≥ 20", len(cfgs))
	}
	totalGroups := 0
	for i, cfg := range cfgs {
		ds := synth.MustGenerate(cfg)
		base := equivParams(i, cfg)

		serial := base
		serial.NoShard = true
		oracle, err := (&Detector{Params: serial}).Detect(ds.Graph)
		if err != nil {
			t.Fatalf("workload %d: serial oracle: %v", i, err)
		}
		totalGroups += len(oracle.Groups)

		for _, w := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("workload%02d/w%d", i, w), func(t *testing.T) {
				p := base
				p.Workers = w
				res, err := (&Detector{Params: p}).Detect(ds.Graph)
				if err != nil {
					t.Fatalf("sharded detect: %v", err)
				}
				if len(res.Groups) != len(oracle.Groups) {
					t.Fatalf("groups = %d, oracle has %d", len(res.Groups), len(oracle.Groups))
				}
				for gi := range oracle.Groups {
					want, got := oracle.Groups[gi], res.Groups[gi]
					if !reflect.DeepEqual(got.Users, want.Users) {
						t.Errorf("group %d users diverge:\n got %v\nwant %v", gi, got.Users, want.Users)
					}
					if !reflect.DeepEqual(got.Items, want.Items) {
						t.Errorf("group %d items diverge:\n got %v\nwant %v", gi, got.Items, want.Items)
					}
					if got.Score != want.Score {
						t.Errorf("group %d score = %v, oracle %v", gi, got.Score, want.Score)
					}
					// Same members against the same graph must yield
					// byte-identical forensic statistics.
					if ComputeGroupStats(ds.Graph, got) != ComputeGroupStats(ds.Graph, want) {
						t.Errorf("group %d stats diverge", gi)
					}
				}
				if !reflect.DeepEqual(res.Users(), oracle.Users()) {
					t.Error("suspicious user sets diverge")
				}
				if !reflect.DeepEqual(res.Items(), oracle.Items()) {
					t.Error("suspicious item sets diverge")
				}
			})
		}
	}
	if totalGroups == 0 {
		t.Fatal("corpus is vacuous: the serial oracle found no groups anywhere")
	}
	t.Logf("oracle found %d groups across %d workloads", totalGroups, len(cfgs))
}

// TestShardedPruneLeavesOracleResidual pins the other half of the contract:
// not just the reported groups but the residual graph itself — PruneCtx under
// sharding must leave exactly the serial fixpoint.
func TestShardedPruneLeavesOracleResidual(t *testing.T) {
	for i, cfg := range equivCorpus()[:6] {
		ds := synth.MustGenerate(cfg)
		p := equivParams(i, cfg)

		serial := ds.Graph.Clone()
		sp := p
		sp.NoShard = true
		stSerial := Prune(serial, sp)

		for _, w := range []int{1, 2, 8} {
			sharded := ds.Graph.Clone()
			pp := p
			pp.Workers = w
			stSharded := Prune(sharded, pp)
			if stSerial != stSharded {
				t.Errorf("workload %d w=%d: stats = %+v, oracle %+v", i, w, stSharded, stSerial)
			}
			if !reflect.DeepEqual(sharded.LiveUserIDs(), serial.LiveUserIDs()) {
				t.Errorf("workload %d w=%d: surviving users diverge", i, w)
			}
			if !reflect.DeepEqual(sharded.LiveItemIDs(), serial.LiveItemIDs()) {
				t.Errorf("workload %d w=%d: surviving items diverge", i, w)
			}
		}
	}
}
