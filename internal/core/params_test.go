package core

import (
	"testing"

	"repro/internal/bipartite"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.K1 = 0 },
		func(p *Params) { p.K2 = -1 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1.2 },
		func(p *Params) { p.TClick = 0 },
		func(p *Params) { p.MaxHotAvg = -1 },
		func(p *Params) { p.DisguiseRatio = 0.5 },
		func(p *Params) { p.Workers = -2 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCeilMul(t *testing.T) {
	cases := []struct {
		k     int
		alpha float64
		want  int
	}{
		{10, 1.0, 10},
		{10, 0.7, 7},
		{10, 0.75, 8},
		{3, 0.5, 2},
		{1, 0.1, 1},
		{0, 0.9, 0},
	}
	for _, c := range cases {
		if got := ceilMul(c.k, c.alpha); got != c.want {
			t.Errorf("ceilMul(%d, %v) = %d, want %d", c.k, c.alpha, got, c.want)
		}
	}
}

func TestDeriveThresholds(t *testing.T) {
	// 10 items: one with 80 clicks, nine with 2-3 clicks. The 80% cut
	// lands inside item 0, so T_hot must equal its strength.
	b := bipartite.NewBuilder(20, 10)
	for u := bipartite.NodeID(0); u < 16; u++ {
		b.Add(u, 0, 5)
	}
	for v := bipartite.NodeID(1); v < 10; v++ {
		b.Add(bipartite.NodeID(v), v, 2)
	}
	g := b.Build()
	th := DeriveThresholds(g)
	if th.THot != 80 {
		t.Errorf("THot = %d, want 80", th.THot)
	}
	if th.HotItems != 1 {
		t.Errorf("HotItems = %d, want 1", th.HotItems)
	}
	if th.TClick < 1 {
		t.Errorf("TClick = %d, want ≥ 1", th.TClick)
	}
}

func TestDeriveThresholdsEq4(t *testing.T) {
	// Construct a graph with exactly known user-side statistics:
	// 2 users, each with 10 total clicks over 2 items → Avg_clk = 10,
	// Avg_cnt = 2 → T_click = (10×0.8)/(2×0.2) = 20.
	b := bipartite.NewBuilder(2, 4)
	b.Add(0, 0, 5)
	b.Add(0, 1, 5)
	b.Add(1, 2, 5)
	b.Add(1, 3, 5)
	g := b.Build()
	th := DeriveThresholds(g)
	if th.TClick != 20 {
		t.Errorf("TClick = %d, want 20", th.TClick)
	}
}

func TestDeriveThresholdsEmpty(t *testing.T) {
	g := bipartite.NewGraph(0, 0)
	th := DeriveThresholds(g)
	if th.THot != 0 || th.TClick != 1 {
		t.Errorf("empty thresholds = %+v", th)
	}
}

func TestHotSet(t *testing.T) {
	b := bipartite.NewBuilder(3, 3)
	b.Add(0, 0, 100)
	b.Add(1, 1, 50)
	b.Add(2, 2, 10)
	g := b.Build()
	h := ComputeHotSet(g, 50)
	if !h.IsHot(0) || !h.IsHot(1) || h.IsHot(2) {
		t.Errorf("hot flags = %v %v %v, want true true false", h.IsHot(0), h.IsHot(1), h.IsHot(2))
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	if h.Threshold() != 50 {
		t.Errorf("Threshold = %d, want 50", h.Threshold())
	}
	if h.IsHot(99) {
		t.Error("out-of-range item reported hot")
	}
}
