package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property: for random seeded graphs, the merge of per-shard PruneStats
// equals the whole-graph serial PruneStats — removal counts exactly, and
// Rounds both exactly (serial round r removes every component's round-r
// square victims, so the serial count is the max over components of their
// local fixpoint rounds) and monotonically (≥ 1, ≤ the serial count, pinned
// separately so a future relaxation of the exact-equality argument still
// leaves an enforced bound).
func TestPropertyShardMergedStatsMatchWholeGraph(t *testing.T) {
	f := func(seed int64) bool {
		g1 := randomPruneGraph(seed)
		g2 := g1.Clone()
		serial := params(6, 6, 0.8)
		serial.NoShard = true
		serial.NoFrontier = true // the golden oracle is the full-rescan serial loop
		sharded := params(6, 6, 0.8)
		sharded.Workers = 4

		stSerial := Prune(g1, serial)
		stSharded := Prune(g2, sharded)

		if stSharded.UsersRemoved != stSerial.UsersRemoved ||
			stSharded.ItemsRemoved != stSerial.ItemsRemoved {
			t.Logf("seed %d: removal counts %+v vs serial %+v", seed, stSharded, stSerial)
			return false
		}
		if stSharded.Rounds < 1 || stSharded.Rounds > stSerial.Rounds {
			t.Logf("seed %d: rounds %d outside [1, %d]", seed, stSharded.Rounds, stSerial.Rounds)
			return false
		}
		if stSharded.Rounds != stSerial.Rounds {
			t.Logf("seed %d: rounds %d, serial %d", seed, stSharded.Rounds, stSerial.Rounds)
			return false
		}
		// The fixpoints themselves must coincide, not just their sizes.
		if !reflect.DeepEqual(g1.LiveUserIDs(), g2.LiveUserIDs()) ||
			!reflect.DeepEqual(g1.LiveItemIDs(), g2.LiveItemIDs()) {
			t.Logf("seed %d: residuals diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: extraction through the sharded path returns the serial group
// sequence for random graphs too, not only for the synthetic corpus of
// shardequiv_test.go.
func TestPropertyShardedExtractionMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		p := params(6, 6, 0.8)
		serial := p
		serial.NoShard = true
		serial.NoFrontier = true

		g1 := randomPruneGraph(seed)
		g2 := g1.Clone()
		want := NearBicliqueExtract(g1, serial)
		p.Workers = 8
		got := NearBicliqueExtract(g2, p)
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: groups diverge:\n got %v\nwant %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
