package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// smallParams are tuned for synth.SmallConfig (2k users, 400 items): the
// hot range of that marketplace sits around 400+ clicks.
func smallParams() Params {
	p := DefaultParams()
	p.THot = 400
	return p
}

func TestRICDEndToEndOnSyntheticAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("RICD found no groups on a dataset with 3 implanted attacks")
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("RICD small: %v, %d groups", ev, len(res.Groups))
	if ev.Precision < 0.8 {
		t.Errorf("precision = %v, want ≥ 0.8", ev.Precision)
	}
	if ev.Recall < 0.5 {
		t.Errorf("recall = %v, want ≥ 0.5", ev.Recall)
	}
}

func TestRICDDoesNotMutateInput(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	before := ds.Graph.LiveEdges()
	d := &Detector{Params: smallParams()}
	if _, err := d.Detect(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if ds.Graph.LiveEdges() != before {
		t.Error("Detect mutated the input graph")
	}
}

func TestRICDVariantsOrdering(t *testing.T) {
	// Precision must increase UI → I → Full; recall must not increase
	// (Table VI shape).
	ds := synth.MustGenerate(synth.SmallConfig())
	run := func(v Variant) metrics.Eval {
		d := &Detector{Params: smallParams(), Variant: v}
		res, err := d.Detect(ds.Graph)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Evaluate(res, ds.Truth)
	}
	ui := run(VariantUI)
	i := run(VariantI)
	full := run(VariantFull)
	t.Logf("UI: %v\nI:  %v\nFull: %v", ui, i, full)
	if !(full.Precision >= i.Precision && i.Precision >= ui.Precision) {
		t.Errorf("precision not monotone UI≤I≤Full: %v %v %v",
			ui.Precision, i.Precision, full.Precision)
	}
	if ui.Recall < full.Recall {
		t.Errorf("UI recall %v < Full recall %v; screening should not add nodes",
			ui.Recall, full.Recall)
	}
}

func TestRICDVariantNames(t *testing.T) {
	cases := map[Variant]string{VariantFull: "RICD", VariantUI: "RICD-UI", VariantI: "RICD-I"}
	for v, want := range cases {
		d := &Detector{Variant: v}
		if d.Name() != want {
			t.Errorf("Name(%d) = %q, want %q", v, d.Name(), want)
		}
	}
}

func TestRICDRejectsBadParams(t *testing.T) {
	d := &Detector{Params: Params{}}
	if _, err := d.Detect(bipartite.NewGraph(1, 1)); err == nil {
		t.Error("expected parameter validation error")
	}
}

func TestRICDTimingSplit(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectElapsed <= 0 || res.Elapsed < res.DetectElapsed {
		t.Errorf("timings inconsistent: detect=%v screen=%v total=%v",
			res.DetectElapsed, res.ScreenElapsed, res.Elapsed)
	}
}

func TestRICDGroupsSortedByScore(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i].Score > res.Groups[i-1].Score {
			t.Errorf("groups not sorted by score: %v then %v",
				res.Groups[i-1].Score, res.Groups[i].Score)
		}
	}
}

func TestRICDWithSeedsFindsSeededGroup(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	seedUser := ds.Groups[0].Attackers[0]
	d := &Detector{
		Params: smallParams(),
		Seeds:  detect.Seeds{Users: []bipartite.NodeID{seedUser}},
	}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	users := map[bipartite.NodeID]bool{}
	for _, u := range res.Users() {
		users[u] = true
	}
	found := 0
	for _, a := range ds.Groups[0].Attackers {
		if users[a] {
			found++
		}
	}
	if found < len(ds.Groups[0].Attackers)/2 {
		t.Errorf("seeded detection found only %d/%d attackers of the seeded group",
			found, len(ds.Groups[0].Attackers))
	}
}

func TestGraphGeneratorNoSeedsClones(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	work := GraphGenerator(ds.Graph, detect.Seeds{})
	if work.LiveEdges() != ds.Graph.LiveEdges() {
		t.Error("no-seed GraphGenerator should keep the whole graph")
	}
	work.RemoveUser(0)
	if !ds.Graph.UserAlive(0) {
		t.Error("GraphGenerator returned an aliased graph")
	}
}

func TestGraphGeneratorSeedsShrinkGraph(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	seedUser := ds.Groups[0].Attackers[0]
	work := GraphGenerator(ds.Graph, detect.Seeds{Users: []bipartite.NodeID{seedUser}})
	if work.LiveUsers() >= ds.Graph.LiveUsers() {
		t.Errorf("seeded graph not smaller: %d vs %d users",
			work.LiveUsers(), ds.Graph.LiveUsers())
	}
	// The seeded group's members must all be inside the expansion.
	for _, a := range ds.Groups[0].Attackers {
		if !work.UserAlive(a) {
			t.Errorf("co-attacker %d missing from seed expansion", a)
		}
	}
	for _, v := range ds.Groups[0].Targets {
		if !work.ItemAlive(v) {
			t.Errorf("target %d missing from seed expansion", v)
		}
	}
}

func TestGraphGeneratorItemSeed(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	seedItem := ds.Groups[1].Targets[0]
	work := GraphGenerator(ds.Graph, detect.Seeds{Items: []bipartite.NodeID{seedItem}})
	for _, a := range ds.Groups[1].Attackers {
		if !work.UserAlive(a) {
			t.Errorf("attacker %d missing from item-seed expansion", a)
		}
	}
}
