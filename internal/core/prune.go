package core

import (
	"context"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements Algorithm 3: the (α,k₁,k₂)-extension biclique
// extraction algorithm, consisting of CorePruning (degree conditions,
// Lemma 1) and SquarePruning ((α,k)-neighbor conditions, Lemma 2).
//
// Both conditions are monotone: removing any vertex can only lower other
// vertices' live degrees and common-neighbor counts. The set of vertices
// satisfying both conditions therefore has a unique maximal fixpoint, which
// the default mode computes by alternating batch rounds (safe to evaluate in
// parallel because each round inspects a frozen graph and removals are
// applied between rounds). Params.SinglePass instead performs one sequential
// pass of each stage with immediate removals, matching the literal
// pseudocode.

// PruneStats reports what pruning removed.
type PruneStats struct {
	UsersRemoved int
	ItemsRemoved int
	Rounds       int
}

// Prune runs Core + Square pruning on g in place and returns removal
// statistics. After Prune returns (in fixpoint mode), every surviving user
// has live degree ≥ ⌈α·k₂⌉ and at least k₁ (α,k₂)-neighbors, and every
// surviving item has live degree ≥ ⌈α·k₁⌉ and at least k₂ (α,k₁)-neighbors.
func Prune(g *bipartite.Graph, p Params) PruneStats {
	return PruneTraced(g, p, nil)
}

// PruneTraced is Prune with stage tracing: every fixpoint round (or literal
// pass) becomes a child span of sp carrying its removal counts. A nil sp
// traces nothing at no cost.
func PruneTraced(g *bipartite.Graph, p Params, sp *obs.Span) PruneStats {
	st, _ := PruneCtx(context.Background(), g, p, sp)
	return st
}

// PruneCtx is PruneTraced with cooperative cancellation: the fixpoint loop
// checks ctx at the top of every round (fault-injection site
// "core.prune.round") and the parallel square-pruning workers poll ctx
// periodically, so a cancelled prune returns within a fraction of a round.
// On cancellation the graph is left mid-prune (still a valid graph, but not
// at the fixpoint) and the accumulated stats are returned with ctx's error.
//
// Unless p.NoShard or p.SinglePass is set, the fixpoint is computed by the
// component-sharded orchestration (shard.go); the residual graph and the
// stats are identical to the serial path's.
func PruneCtx(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span) (PruneStats, error) {
	if p.SinglePass {
		return pruneSinglePass(ctx, g, p, sp)
	}
	if p.sharded() {
		st, _, err := shardedPruneExtract(ctx, g, p, sp, nil, false)
		return st, err
	}
	return pruneFixpoint(ctx, g, p, sp)
}

func pruneFixpoint(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span) (PruneStats, error) {
	var st PruneStats
	for {
		faultinject.Hit("core.prune.round")
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Rounds++
		rsp := sp.Start("round")
		removed := corePruneFixpoint(g, p)
		uVictims := squareRoundUsers(ctx, g, p)
		for _, u := range uVictims {
			g.RemoveUser(u)
		}
		iVictims := squareRoundItems(ctx, g, p)
		for _, v := range iVictims {
			g.RemoveItem(v)
		}
		st.UsersRemoved += removed.UsersRemoved + len(uVictims)
		st.ItemsRemoved += removed.ItemsRemoved + len(iVictims)
		rsp.SetInt("core_users_removed", int64(removed.UsersRemoved))
		rsp.SetInt("core_items_removed", int64(removed.ItemsRemoved))
		rsp.SetInt("square_users_removed", int64(len(uVictims)))
		rsp.SetInt("square_items_removed", int64(len(iVictims)))
		rsp.End()
		if err := ctx.Err(); err != nil {
			// A cancelled square round returns a truncated victim list;
			// the removals applied so far are sound (both conditions are
			// monotone) but the fixpoint is not reached.
			return st, err
		}
		if len(uVictims) == 0 && len(iVictims) == 0 {
			return st, nil
		}
	}
}

func pruneSinglePass(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span) (PruneStats, error) {
	var st PruneStats
	st.Rounds = 1
	pass := sp.Start("single_pass")
	defer func() {
		pass.SetInt("users_removed", int64(st.UsersRemoved))
		pass.SetInt("items_removed", int64(st.ItemsRemoved))
		pass.End()
	}()
	faultinject.Hit("core.prune.round")
	if err := ctx.Err(); err != nil {
		return st, err
	}
	minUDeg := ceilMul(p.K2, p.Alpha)
	minIDeg := ceilMul(p.K1, p.Alpha)

	// CorePruning, literal: one scan of users, then one scan of items,
	// reading live degrees (so earlier removals are visible).
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if g.UserDegree(u) < minUDeg {
			g.RemoveUser(u)
			st.UsersRemoved++
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemDegree(v) < minIDeg {
			g.RemoveItem(v)
			st.ItemsRemoved++
		}
		return true
	})

	// SquarePruning, literal: sequential scans with immediate removal,
	// polling ctx between vertices so a cancel lands promptly.
	if err := ctx.Err(); err != nil {
		return st, err
	}
	needU := ceilMul(p.K2, p.Alpha)
	counter := newCommonCounter(g.NumUsers(), g.NumItems())
	scanned := 0
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if scanned++; scanned&0xff == 0 && ctx.Err() != nil {
			return false
		}
		if !squareSurvivesUser(g, u, needU, p.K1, counter) {
			g.RemoveUser(u)
			st.UsersRemoved++
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return st, err
	}
	needI := ceilMul(p.K1, p.Alpha)
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if scanned++; scanned&0xff == 0 && ctx.Err() != nil {
			return false
		}
		if !squareSurvivesItem(g, v, needI, p.K2, counter) {
			g.RemoveItem(v)
			st.ItemsRemoved++
		}
		return true
	})
	return st, ctx.Err()
}

// corePruneFixpoint removes vertices violating the Lemma 1 degree bounds
// until stable, propagating removals through a work queue.
func corePruneFixpoint(g *bipartite.Graph, p Params) PruneStats {
	var st PruneStats
	minUDeg := ceilMul(p.K2, p.Alpha)
	minIDeg := ceilMul(p.K1, p.Alpha)

	type node struct {
		id   bipartite.NodeID
		side bipartite.Side
	}
	var queue []node

	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if g.UserDegree(u) < minUDeg {
			queue = append(queue, node{u, bipartite.UserSide})
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemDegree(v) < minIDeg {
			queue = append(queue, node{v, bipartite.ItemSide})
		}
		return true
	})

	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if n.side == bipartite.UserSide {
			if !g.UserAlive(n.id) {
				continue
			}
			// Collect neighbors before removal so we can recheck them.
			var nbrs []bipartite.NodeID
			g.EachUserNeighbor(n.id, func(v bipartite.NodeID, _ uint32) bool {
				nbrs = append(nbrs, v)
				return true
			})
			g.RemoveUser(n.id)
			st.UsersRemoved++
			for _, v := range nbrs {
				if g.ItemAlive(v) && g.ItemDegree(v) < minIDeg {
					queue = append(queue, node{v, bipartite.ItemSide})
				}
			}
		} else {
			if !g.ItemAlive(n.id) {
				continue
			}
			var nbrs []bipartite.NodeID
			g.EachItemNeighbor(n.id, func(u bipartite.NodeID, _ uint32) bool {
				nbrs = append(nbrs, u)
				return true
			})
			g.RemoveItem(n.id)
			st.ItemsRemoved++
			for _, u := range nbrs {
				if g.UserAlive(u) && g.UserDegree(u) < minUDeg {
					queue = append(queue, node{u, bipartite.UserSide})
				}
			}
		}
	}
	return st
}

// commonCounter is a reusable dense counter for common-neighbor counting.
// countsU/countsI are indexed by vertex ID; touched remembers which slots to
// reset, keeping amortized cost proportional to work done.
type commonCounter struct {
	countsU []int32
	countsI []int32
	touched []bipartite.NodeID
	nbrs    []bipartite.NodeID
}

func newCommonCounter(numUsers, numItems int) *commonCounter {
	return &commonCounter{
		countsU: make([]int32, numUsers),
		countsI: make([]int32, numItems),
	}
}

// squareSurvivesUser reports whether user u has at least k1 users (itself
// included, per Definition 4: u trivially shares all deg(u) ≥ need neighbors
// with itself) whose common-item count with u is ≥ need.
//
// Items are scanned in ascending counterpart-degree order with an online
// exit: a vertex's (α,k)-neighbor count can only be certified after `need`
// items have been merged, and attack targets (low degree) certify their
// co-attackers long before the expensive hot-item adjacencies are touched —
// the candidate-ordering heuristic the paper adopts from reduce2Hop.
func squareSurvivesUser(g *bipartite.Graph, u bipartite.NodeID, need, k1 int, c *commonCounter) bool {
	c.nbrs = c.nbrs[:0]
	g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
		c.nbrs = append(c.nbrs, v)
		return true
	})
	sortByDegree(c.nbrs, g.ItemDegree)

	c.touched = c.touched[:0]
	num := 0
	ok := false
	for _, v := range c.nbrs {
		g.EachItemNeighbor(v, func(u2 bipartite.NodeID, _ uint32) bool {
			if c.countsU[u2] == 0 {
				c.touched = append(c.touched, u2)
			}
			c.countsU[u2]++
			if int(c.countsU[u2]) == need {
				num++
				if num >= k1 {
					ok = true
					return false
				}
			}
			return true
		})
		if ok {
			break
		}
	}
	for _, u2 := range c.touched {
		c.countsU[u2] = 0
	}
	return ok
}

// squareSurvivesItem is the item-side dual of squareSurvivesUser.
func squareSurvivesItem(g *bipartite.Graph, v bipartite.NodeID, need, k2 int, c *commonCounter) bool {
	c.nbrs = c.nbrs[:0]
	g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
		c.nbrs = append(c.nbrs, u)
		return true
	})
	sortByDegree(c.nbrs, g.UserDegree)

	c.touched = c.touched[:0]
	num := 0
	ok := false
	for _, u := range c.nbrs {
		g.EachUserNeighbor(u, func(v2 bipartite.NodeID, _ uint32) bool {
			if c.countsI[v2] == 0 {
				c.touched = append(c.touched, v2)
			}
			c.countsI[v2]++
			if int(c.countsI[v2]) == need {
				num++
				if num >= k2 {
					ok = true
					return false
				}
			}
			return true
		})
		if ok {
			break
		}
	}
	for _, v2 := range c.touched {
		c.countsI[v2] = 0
	}
	return ok
}

func sortByDegree(ids []bipartite.NodeID, deg func(bipartite.NodeID) int) {
	sort.Slice(ids, func(i, j int) bool {
		di, dj := deg(ids[i]), deg(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
}

// squareRoundUsers evaluates the user-side square condition for every live
// user against the frozen graph, in parallel, and returns the victims.
func squareRoundUsers(ctx context.Context, g *bipartite.Graph, p Params) []bipartite.NodeID {
	need := ceilMul(p.K2, p.Alpha)
	ids := g.LiveUserIDs()
	return parallelFilter(ctx, ids, p.workers(), func(c *commonCounter, u bipartite.NodeID) bool {
		return !squareSurvivesUser(g, u, need, p.K1, c)
	}, g)
}

// squareRoundItems is the item-side dual of squareRoundUsers.
func squareRoundItems(ctx context.Context, g *bipartite.Graph, p Params) []bipartite.NodeID {
	need := ceilMul(p.K1, p.Alpha)
	ids := g.LiveItemIDs()
	return parallelFilter(ctx, ids, p.workers(), func(c *commonCounter, v bipartite.NodeID) bool {
		return !squareSurvivesItem(g, v, need, p.K2, c)
	}, g)
}

// parallelFilter returns the IDs for which pred is true, preserving input
// order. Each worker owns a private counter. Workers poll ctx every 256
// vertices and stop early when it is cancelled; the caller must treat a
// cancelled round's output as truncated (pruneFixpoint re-checks ctx after
// applying it).
func parallelFilter(ctx context.Context, ids []bipartite.NodeID, workers int,
	pred func(*commonCounter, bipartite.NodeID) bool, g *bipartite.Graph) []bipartite.NodeID {

	if workers < 1 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		c := newCommonCounter(g.NumUsers(), g.NumItems())
		var out []bipartite.NodeID
		for i, id := range ids {
			if i&0xff == 0 && ctx.Err() != nil {
				return out
			}
			if pred(c, id) {
				out = append(out, id)
			}
		}
		return out
	}

	keep := make([]bool, len(ids))
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c := newCommonCounter(g.NumUsers(), g.NumItems())
			for i := lo; i < hi; i++ {
				if i&0xff == 0 && ctx.Err() != nil {
					return
				}
				keep[i] = pred(c, ids[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	var out []bipartite.NodeID
	for i, k := range keep {
		if k {
			out = append(out, ids[i])
		}
	}
	return out
}

// ExtractGroups splits the pruned residual graph into connected components
// and keeps those satisfying the size bounds |L| ≥ k₁, |R| ≥ k₂ of
// Definition 3 (this is also the explicit group-size control of desired
// property (4b): components too small to be a coordinated attack — e.g.
// group-buying clusters around a single item — are discarded).
func ExtractGroups(g *bipartite.Graph, p Params) []detect.Group {
	var groups []detect.Group
	for _, comp := range bipartite.ConnectedComponents(g) {
		if len(comp.Users) >= p.K1 && len(comp.Items) >= p.K2 {
			groups = append(groups, detect.Group{Users: comp.Users, Items: comp.Items})
		}
	}
	return groups
}
