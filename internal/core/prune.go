package core

import (
	"context"
	"slices"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements Algorithm 3: the (α,k₁,k₂)-extension biclique
// extraction algorithm, consisting of CorePruning (degree conditions,
// Lemma 1) and SquarePruning ((α,k)-neighbor conditions, Lemma 2).
//
// Both conditions are monotone: removing any vertex can only lower other
// vertices' live degrees and common-neighbor counts. The set of vertices
// satisfying both conditions therefore has a unique maximal fixpoint, which
// the default mode computes by alternating batch rounds (safe to evaluate in
// parallel because each round inspects a frozen graph and removals are
// applied between rounds). Params.SinglePass instead performs one sequential
// pass of each stage with immediate removals, matching the literal
// pseudocode.
//
// Rounds after the first do not rescan the whole graph: a vertex's square
// verdict depends only on its ≤2-hop live neighborhood, so only vertices
// within two hops of a removal can change verdict between rounds. The
// dirty-frontier loop (pruneFixpointFrontier) exploits this by observing
// every removal and re-evaluating only the marked frontier; see DESIGN.md
// §10 for the soundness argument. Params.NoFrontier falls back to the
// full-rescan reference loop the frontier is validated against.

// PruneStats reports what pruning removed.
type PruneStats struct {
	UsersRemoved int
	ItemsRemoved int
	Rounds       int
}

// Prune runs Core + Square pruning on g in place and returns removal
// statistics. After Prune returns (in fixpoint mode), every surviving user
// has live degree ≥ ⌈α·k₂⌉ and at least k₁ (α,k₂)-neighbors, and every
// surviving item has live degree ≥ ⌈α·k₁⌉ and at least k₂ (α,k₁)-neighbors.
func Prune(g *bipartite.Graph, p Params) PruneStats {
	return PruneTraced(g, p, nil)
}

// PruneTraced is Prune with stage tracing: every fixpoint round (or literal
// pass) becomes a child span of sp carrying its removal counts. A nil sp
// traces nothing at no cost.
func PruneTraced(g *bipartite.Graph, p Params, sp *obs.Span) PruneStats {
	st, _ := PruneCtx(context.Background(), g, p, sp)
	return st
}

// PruneCtx is PruneTraced with cooperative cancellation: the fixpoint loop
// checks ctx at the top of every round (fault-injection site
// "core.prune.round") and the parallel square-pruning workers poll ctx
// periodically, so a cancelled prune returns within a fraction of a round.
// On cancellation the graph is left mid-prune (still a valid graph, but not
// at the fixpoint) and the accumulated stats are returned with ctx's error.
//
// Unless p.NoShard or p.SinglePass is set, the fixpoint is computed by the
// component-sharded orchestration (shard.go); the residual graph and the
// stats are identical to the serial path's.
func PruneCtx(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span) (PruneStats, error) {
	return pruneCtxObserved(ctx, g, p, sp, nil)
}

// pruneCtxObserved is PruneCtx carrying the pipeline's observer so the
// frontier metrics and the audit trail reach internal callers (extract.go);
// the exported entry points pass nil.
func pruneCtxObserved(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span, o *obs.Observer) (PruneStats, error) {
	a := newAuditor(o)
	if p.SinglePass {
		return pruneSinglePass(ctx, g, p, sp, a)
	}
	if p.sharded() {
		st, _, err := shardedPruneExtract(ctx, g, p, sp, o, shardOptions{})
		return st, err
	}
	return pruneFixpoint(ctx, g, p, sp, o, a)
}

// testSquareEvalHook, when non-nil, is invoked for every live vertex whose
// square condition is actually evaluated during fixpoint rounds. Tests use
// it to assert the frontier never re-evaluates vertices far from every
// removal. Only set it with Workers=1 — parallel rounds would race on the
// hook's state.
var testSquareEvalHook func(side bipartite.Side, id bipartite.NodeID)

// pruneFixpoint computes the Core/Square fixpoint of Algorithm 3, selecting
// the dirty-frontier loop unless p.NoFrontier requests the full-rescan
// reference path. o (nil-safe) receives the core.frontier metrics.
func pruneFixpoint(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span, o *obs.Observer, a *auditor) (PruneStats, error) {
	if p.NoFrontier {
		return pruneFixpointRescan(ctx, g, p, sp, a)
	}
	return pruneFixpointFrontier(ctx, g, p, sp, o, a)
}

// pruneFixpointRescan is the reference fixpoint loop: every round re-evaluates
// the square condition for every live vertex. It is retained as the golden
// oracle the frontier loop is pinned against (shardequiv_test.go) and as the
// Params.NoFrontier escape hatch.
func pruneFixpointRescan(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span, a *auditor) (PruneStats, error) {
	var st PruneStats
	pool := newCounterPool(g.NumUsers(), g.NumItems())
	for {
		faultinject.Hit("core.prune.round")
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Rounds++
		rsp := sp.Start("round")
		removed := corePruneFixpoint(g, p, a, st.Rounds)
		uVictims := squareRoundUsers(ctx, g, p, g.LiveUserIDs(), pool)
		a.squareRemovals(bipartite.UserSide, uVictims, st.Rounds, ceilMul(p.K2, p.Alpha), p.K1)
		for _, u := range uVictims {
			g.RemoveUser(u)
		}
		iVictims := squareRoundItems(ctx, g, p, g.LiveItemIDs(), pool)
		a.squareRemovals(bipartite.ItemSide, iVictims, st.Rounds, ceilMul(p.K1, p.Alpha), p.K2)
		for _, v := range iVictims {
			g.RemoveItem(v)
		}
		st.UsersRemoved += removed.UsersRemoved + len(uVictims)
		st.ItemsRemoved += removed.ItemsRemoved + len(iVictims)
		rsp.SetInt("core_users_removed", int64(removed.UsersRemoved))
		rsp.SetInt("core_items_removed", int64(removed.ItemsRemoved))
		rsp.SetInt("square_users_removed", int64(len(uVictims)))
		rsp.SetInt("square_items_removed", int64(len(iVictims)))
		rsp.End()
		if err := ctx.Err(); err != nil {
			// A cancelled square round returns a truncated victim list;
			// the removals applied so far are sound (both conditions are
			// monotone) but the fixpoint is not reached.
			return st, err
		}
		if len(uVictims) == 0 && len(iVictims) == 0 {
			return st, nil
		}
	}
}

// pruneFixpointFrontier computes the same fixpoint as pruneFixpointRescan —
// byte-identical victims, rounds, and residual — but each round after the
// first evaluates only the dirty frontier: the vertices whose ≤2-hop live
// neighborhood shrank since their last evaluation. The frontier is
// maintained by observing every removal (bipartite.RemovalObserver), so core
// cascades, square victims, and caller-applied removals all feed it.
//
// Round protocol, chosen to replay the rescan loop exactly:
//
//  1. Round 1 evaluates every live vertex (the all-dirty seed), so the
//     initial core fixpoint runs before the observer attaches and the
//     redundant item-side marks of round 1's user victims are dropped.
//  2. Each later round runs the core fixpoint first (its removals mark),
//     then takes the user frontier, then — only after the round's user
//     victims are applied — takes the item frontier, mirroring the rescan
//     loop's item scan seeing the same round's user removals.
//  3. Taken frontiers are evaluated in ascending ID order with dead entries
//     skipped, so the victim sequence matches the rescan loop's
//     LiveUserIDs/LiveItemIDs order.
func pruneFixpointFrontier(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span, o *obs.Observer, a *auditor) (PruneStats, error) {
	var st PruneStats
	pool := newCounterPool(g.NumUsers(), g.NumItems())
	fr := &frontier{
		g:     g,
		users: newDirtySet(g.NumUsers()),
		items: newDirtySet(g.NumItems()),
		walkU: newDirtySet(g.NumUsers()),
		walkI: newDirtySet(g.NumItems()),
	}

	faultinject.Hit("core.prune.round")
	if err := ctx.Err(); err != nil {
		return st, err
	}
	st.Rounds = 1
	rsp := sp.Start("round")
	removed := corePruneFixpoint(g, p, a, st.Rounds)
	prev := g.SetRemovalObserver(fr)
	defer g.SetRemovalObserver(prev)

	first := true
	for {
		if !first {
			faultinject.Hit("core.prune.round")
			if err := ctx.Err(); err != nil {
				return st, err
			}
			st.Rounds++
			rsp = sp.Start("round")
			removed = corePruneFixpoint(g, p, a, st.Rounds)
		}
		faultinject.Hit("core.frontier")

		var evalU []bipartite.NodeID
		if first {
			evalU = g.LiveUserIDs()
		} else {
			fr.expand()
			evalU = fr.users.take()
		}
		uVictims := squareRoundUsers(ctx, g, p, evalU, pool)
		a.squareRemovals(bipartite.UserSide, uVictims, st.Rounds, ceilMul(p.K2, p.Alpha), p.K1)
		for _, u := range uVictims {
			g.RemoveUser(u)
		}
		var evalI []bipartite.NodeID
		if first {
			// Round 1's user victims marked their item neighborhoods, but
			// round 1 evaluates every item anyway — drop the redundant item
			// marks (the user-side marks stay queued for round 2).
			fr.items.reset()
			evalI = g.LiveItemIDs()
		} else {
			fr.expand()
			evalI = fr.items.take()
		}
		iVictims := squareRoundItems(ctx, g, p, evalI, pool)
		a.squareRemovals(bipartite.ItemSide, iVictims, st.Rounds, ceilMul(p.K1, p.Alpha), p.K2)
		for _, v := range iVictims {
			g.RemoveItem(v)
		}

		st.UsersRemoved += removed.UsersRemoved + len(uVictims)
		st.ItemsRemoved += removed.ItemsRemoved + len(iVictims)
		rsp.SetInt("core_users_removed", int64(removed.UsersRemoved))
		rsp.SetInt("core_items_removed", int64(removed.ItemsRemoved))
		rsp.SetInt("square_users_removed", int64(len(uVictims)))
		rsp.SetInt("square_items_removed", int64(len(iVictims)))
		rsp.SetInt("frontier_users", int64(len(evalU)))
		rsp.SetInt("frontier_items", int64(len(evalI)))
		rsp.SetInt("frontier_size", int64(len(evalU)+len(evalI)))
		rsp.End()
		o.Counter("core.frontier.evaluated").Add(int64(len(evalU) + len(evalI)))

		if err := ctx.Err(); err != nil {
			// The cancelled evaluations above consumed dirty marks they did
			// not finish re-checking. Merge the taken sets back so the
			// frontier still covers every potentially stale vertex — the
			// graph stays a sound mid-prune over-approximation and a resumed
			// pass (or the next stream sweep) redoes exactly that work.
			for _, u := range evalU {
				fr.users.mark(u)
			}
			for _, v := range evalI {
				fr.items.mark(v)
			}
			return st, err
		}
		if len(uVictims) == 0 && len(iVictims) == 0 {
			return st, nil
		}
		first = false
	}
}

// dirtySet tracks the vertices of one side whose square-condition inputs may
// have shrunk since their last evaluation. mark is O(1) and idempotent; take
// returns the marked IDs sorted ascending (the evaluation order of the
// rescan rounds) and resets the set. The two backing buffers alternate
// between rounds, so a steady-state fixpoint allocates nothing here.
type dirtySet struct {
	bits  []bool
	list  []bipartite.NodeID
	spare []bipartite.NodeID
}

func newDirtySet(n int) *dirtySet { return &dirtySet{bits: make([]bool, n)} }

func (s *dirtySet) mark(id bipartite.NodeID) {
	if !s.bits[id] {
		s.bits[id] = true
		s.list = append(s.list, id)
	}
}

// take returns the current dirty IDs sorted ascending and clears the set.
// The returned slice is only valid until the next take (its buffer is
// recycled).
func (s *dirtySet) take() []bipartite.NodeID {
	out := s.list
	for _, id := range out {
		s.bits[id] = false
	}
	s.list, s.spare = s.spare[:0], out
	slices.Sort(out)
	return out
}

// drain is take without the sort: for the walk sets, whose processing order
// is irrelevant (marking is commutative and idempotent).
func (s *dirtySet) drain() []bipartite.NodeID {
	out := s.list
	for _, id := range out {
		s.bits[id] = false
	}
	s.list, s.spare = s.spare[:0], out
	return out
}

// reset discards all pending marks without returning them.
func (s *dirtySet) reset() {
	for _, id := range s.list {
		s.bits[id] = false
	}
	s.list = s.list[:0]
}

// frontier is the dirty-vertex worklist of the incremental square-pruning
// fixpoint, installed as the graph's removal observer. The marking rule
// follows from the square conditions (Definition 4): removing user x shrinks
// the live degree of each item v ∈ N(x) (a 1-hop input of v's verdict) and
// the common-item counts of every user sharing an item with x (a 2-hop
// input), so those — and only those — vertices can change verdict. Item
// removals are the exact dual.
//
// The 1-hop marks are applied synchronously: the hook fires at the start of
// the removal, while x and its adjacency are still traversable, so N(x) is
// the neighborhood the removal decision saw. The 2-hop marks are deferred:
// the hook only queues N(x) in a walk set, and expand — called once before
// each frontier is taken — walks each queued vertex's neighborhood exactly
// once. Deferral makes removals O(deg) instead of O(Σ two-hop), dedupes the
// expensive walk when many removals share neighbors (in a heavy round most
// do), and skips queued vertices that died later in the round outright:
// their neighborhoods were marked 1-hop by their own removals, so walking a
// dead vertex would only re-mark what is already covered. Expansion at
// take-time liveness still marks every stale vertex — if the connecting
// vertex v on a path u–v–x is live when u is next evaluated, it was live at
// expansion and u was marked through it; if v died first, u was marked by
// v's own 1-hop hook — so the taken frontier remains a superset of the
// vertices whose verdict can have changed, which is all equivalence needs.
type frontier struct {
	g     *bipartite.Graph
	users *dirtySet
	items *dirtySet
	walkU *dirtySet // users adjacent to removed items, pending a one-hop expansion
	walkI *dirtySet // items adjacent to removed users, pending a one-hop expansion
}

func (f *frontier) UserRemoved(x bipartite.NodeID) {
	f.g.EachUserNeighbor(x, func(v bipartite.NodeID, _ uint32) bool {
		f.items.mark(v)
		f.walkI.mark(v)
		return true
	})
}

func (f *frontier) ItemRemoved(y bipartite.NodeID) {
	f.g.EachItemNeighbor(y, func(u bipartite.NodeID, _ uint32) bool {
		f.users.mark(u)
		f.walkU.mark(u)
		return true
	})
}

// expand drains the walk sets queued by the removal hooks, marking the
// deferred 2-hop side of each removal: the live users sharing an item with a
// removed user, and the live items sharing a user with a removed item.
// Each*Neighbor skips vertices that have since died, which is sound (see the
// type comment). Called before every take so the frontier is complete at the
// moment it is consumed.
func (f *frontier) expand() {
	for _, v := range f.walkI.drain() {
		f.g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			f.users.mark(u)
			return true
		})
	}
	for _, u := range f.walkU.drain() {
		f.g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			f.items.mark(v)
			return true
		})
	}
}

func pruneSinglePass(ctx context.Context, g *bipartite.Graph, p Params, sp *obs.Span, a *auditor) (PruneStats, error) {
	var st PruneStats
	st.Rounds = 1
	pass := sp.Start("single_pass")
	defer func() {
		pass.SetInt("users_removed", int64(st.UsersRemoved))
		pass.SetInt("items_removed", int64(st.ItemsRemoved))
		pass.End()
	}()
	faultinject.Hit("core.prune.round")
	if err := ctx.Err(); err != nil {
		return st, err
	}
	minUDeg := ceilMul(p.K2, p.Alpha)
	minIDeg := ceilMul(p.K1, p.Alpha)

	// CorePruning, literal: one scan of users, then one scan of items,
	// reading live degrees (so earlier removals are visible).
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if deg := g.UserDegree(u); deg < minUDeg {
			a.coreRemoval(bipartite.UserSide, u, 1, deg, minUDeg)
			g.RemoveUser(u)
			st.UsersRemoved++
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if deg := g.ItemDegree(v); deg < minIDeg {
			a.coreRemoval(bipartite.ItemSide, v, 1, deg, minIDeg)
			g.RemoveItem(v)
			st.ItemsRemoved++
		}
		return true
	})

	// SquarePruning, literal: sequential scans with immediate removal,
	// polling ctx between vertices so a cancel lands promptly.
	if err := ctx.Err(); err != nil {
		return st, err
	}
	needU := ceilMul(p.K2, p.Alpha)
	counter := newCommonCounter(g.NumUsers(), g.NumItems())
	scanned := 0
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if scanned++; scanned&0xff == 0 && ctx.Err() != nil {
			return false
		}
		if !squareSurvivesUser(g, u, needU, p.K1, counter) {
			a.squareRemoval(bipartite.UserSide, u, 1, needU, p.K1)
			g.RemoveUser(u)
			st.UsersRemoved++
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return st, err
	}
	needI := ceilMul(p.K1, p.Alpha)
	faultinject.Hit("core.prune.single_pass.items")
	// The poll cadence must restart with the scan: carrying the user scan's
	// count over would shift the &0xff poll points of the item scan by an
	// arbitrary offset.
	scanned = 0
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if scanned++; scanned&0xff == 0 && ctx.Err() != nil {
			return false
		}
		if !squareSurvivesItem(g, v, needI, p.K2, counter) {
			a.squareRemoval(bipartite.ItemSide, v, 1, needI, p.K2)
			g.RemoveItem(v)
			st.ItemsRemoved++
		}
		return true
	})
	return st, ctx.Err()
}

// corePruneFixpoint removes vertices violating the Lemma 1 degree bounds
// until stable, propagating removals through a work queue. Each removal is
// audited (a nil-safe) with the vertex's live degree at removal time and
// the round of the enclosing square fixpoint.
func corePruneFixpoint(g *bipartite.Graph, p Params, a *auditor, round int) PruneStats {
	var st PruneStats
	minUDeg := ceilMul(p.K2, p.Alpha)
	minIDeg := ceilMul(p.K1, p.Alpha)

	type node struct {
		id   bipartite.NodeID
		side bipartite.Side
	}
	var queue []node

	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if g.UserDegree(u) < minUDeg {
			queue = append(queue, node{u, bipartite.UserSide})
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemDegree(v) < minIDeg {
			queue = append(queue, node{v, bipartite.ItemSide})
		}
		return true
	})

	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if n.side == bipartite.UserSide {
			if !g.UserAlive(n.id) {
				continue
			}
			// Collect neighbors before removal so we can recheck them.
			var nbrs []bipartite.NodeID
			g.EachUserNeighbor(n.id, func(v bipartite.NodeID, _ uint32) bool {
				nbrs = append(nbrs, v)
				return true
			})
			a.coreRemoval(bipartite.UserSide, n.id, round, len(nbrs), minUDeg)
			g.RemoveUser(n.id)
			st.UsersRemoved++
			for _, v := range nbrs {
				if g.ItemAlive(v) && g.ItemDegree(v) < minIDeg {
					queue = append(queue, node{v, bipartite.ItemSide})
				}
			}
		} else {
			if !g.ItemAlive(n.id) {
				continue
			}
			var nbrs []bipartite.NodeID
			g.EachItemNeighbor(n.id, func(u bipartite.NodeID, _ uint32) bool {
				nbrs = append(nbrs, u)
				return true
			})
			a.coreRemoval(bipartite.ItemSide, n.id, round, len(nbrs), minIDeg)
			g.RemoveItem(n.id)
			st.ItemsRemoved++
			for _, u := range nbrs {
				if g.UserAlive(u) && g.UserDegree(u) < minUDeg {
					queue = append(queue, node{u, bipartite.UserSide})
				}
			}
		}
	}
	return st
}

// commonCounter is a reusable dense counter for common-neighbor counting.
// countsU/countsI are indexed by vertex ID; touched remembers which slots to
// reset, keeping amortized cost proportional to work done.
type commonCounter struct {
	countsU []int32
	countsI []int32
	touched []bipartite.NodeID
	nbrs    []bipartite.NodeID
	keys    []uint64 // sortByDegree scratch
}

func newCommonCounter(numUsers, numItems int) *commonCounter {
	return &commonCounter{
		countsU: make([]int32, numUsers),
		countsI: make([]int32, numItems),
	}
}

// counterPool recycles commonCounters across the rounds and workers of one
// pruning fixpoint. The counters are graph-sized (component-sized inside a
// compacted shard, which is why each shard builds its own pool), so reuse
// means steady-state rounds allocate no counter state at all.
type counterPool struct {
	pool sync.Pool
}

func newCounterPool(numUsers, numItems int) *counterPool {
	cp := &counterPool{}
	cp.pool.New = func() any { return newCommonCounter(numUsers, numItems) }
	return cp
}

func (cp *counterPool) get() *commonCounter  { return cp.pool.Get().(*commonCounter) }
func (cp *counterPool) put(c *commonCounter) { cp.pool.Put(c) }

// squareSurvivesUser reports whether user u has at least k1 users (itself
// included, per Definition 4: u trivially shares all deg(u) ≥ need neighbors
// with itself) whose common-item count with u is ≥ need.
//
// Items are scanned in ascending counterpart-degree order with an online
// exit: a vertex's (α,k)-neighbor count can only be certified after `need`
// items have been merged, and attack targets (low degree) certify their
// co-attackers long before the expensive hot-item adjacencies are touched —
// the candidate-ordering heuristic the paper adopts from reduce2Hop.
func squareSurvivesUser(g *bipartite.Graph, u bipartite.NodeID, need, k1 int, c *commonCounter) bool {
	c.nbrs = c.nbrs[:0]
	g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
		c.nbrs = append(c.nbrs, v)
		return true
	})
	c.keys = sortByDegree(c.nbrs, g.ItemDegree, c.keys)

	c.touched = c.touched[:0]
	num := 0
	ok := false
	for _, v := range c.nbrs {
		g.EachItemNeighbor(v, func(u2 bipartite.NodeID, _ uint32) bool {
			if c.countsU[u2] == 0 {
				c.touched = append(c.touched, u2)
			}
			c.countsU[u2]++
			if int(c.countsU[u2]) == need {
				num++
				if num >= k1 {
					ok = true
					return false
				}
			}
			return true
		})
		if ok {
			break
		}
	}
	for _, u2 := range c.touched {
		c.countsU[u2] = 0
	}
	return ok
}

// squareSurvivesItem is the item-side dual of squareSurvivesUser.
func squareSurvivesItem(g *bipartite.Graph, v bipartite.NodeID, need, k2 int, c *commonCounter) bool {
	c.nbrs = c.nbrs[:0]
	g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
		c.nbrs = append(c.nbrs, u)
		return true
	})
	c.keys = sortByDegree(c.nbrs, g.UserDegree, c.keys)

	c.touched = c.touched[:0]
	num := 0
	ok := false
	for _, u := range c.nbrs {
		g.EachUserNeighbor(u, func(v2 bipartite.NodeID, _ uint32) bool {
			if c.countsI[v2] == 0 {
				c.touched = append(c.touched, v2)
			}
			c.countsI[v2]++
			if int(c.countsI[v2]) == need {
				num++
				if num >= k2 {
					ok = true
					return false
				}
			}
			return true
		})
		if ok {
			break
		}
	}
	for _, v2 := range c.touched {
		c.countsI[v2] = 0
	}
	return ok
}

// sortByDegree orders ids ascending by (degree, id). Each id is packed once
// into a uint64 key — degree in the high 32 bits, id in the low 32 — so the
// sort runs over plain integers with no per-comparison closure and no
// repeated deg() calls (this sits in the square-pruning inner loop), and the
// NodeID tie-break falls out of the packing. keys is the caller's scratch
// buffer; the (possibly grown) buffer is returned for reuse.
func sortByDegree(ids []bipartite.NodeID, deg func(bipartite.NodeID) int, keys []uint64) []uint64 {
	keys = keys[:0]
	for _, id := range ids {
		keys = append(keys, uint64(uint32(deg(id)))<<32|uint64(id))
	}
	slices.Sort(keys)
	for i, k := range keys {
		ids[i] = bipartite.NodeID(uint32(k))
	}
	return keys
}

// squareRoundUsers evaluates the user-side square condition for the given
// candidate users against the frozen graph, in parallel, and returns the
// victims in candidate order. Candidates must be sorted ascending; dead
// candidates (stale frontier marks) are skipped, so the victim sequence is
// exactly the one a full LiveUserIDs scan would produce.
func squareRoundUsers(ctx context.Context, g *bipartite.Graph, p Params, ids []bipartite.NodeID, pool *counterPool) []bipartite.NodeID {
	need := ceilMul(p.K2, p.Alpha)
	return parallelFilter(ctx, ids, p.workers(), func(c *commonCounter, u bipartite.NodeID) bool {
		if !g.UserAlive(u) {
			return false
		}
		if h := testSquareEvalHook; h != nil {
			h(bipartite.UserSide, u)
		}
		return !squareSurvivesUser(g, u, need, p.K1, c)
	}, pool)
}

// squareRoundItems is the item-side dual of squareRoundUsers.
func squareRoundItems(ctx context.Context, g *bipartite.Graph, p Params, ids []bipartite.NodeID, pool *counterPool) []bipartite.NodeID {
	need := ceilMul(p.K1, p.Alpha)
	return parallelFilter(ctx, ids, p.workers(), func(c *commonCounter, v bipartite.NodeID) bool {
		if !g.ItemAlive(v) {
			return false
		}
		if h := testSquareEvalHook; h != nil {
			h(bipartite.ItemSide, v)
		}
		return !squareSurvivesItem(g, v, need, p.K2, c)
	}, pool)
}

// parallelFilter returns the IDs for which pred is true, preserving input
// order. Each worker leases a private counter from pool for the duration of
// its chunk. Workers poll ctx every 256 vertices and stop early when it is
// cancelled; the caller must treat a cancelled round's output as truncated
// (the fixpoint loops re-check ctx after applying it).
func parallelFilter(ctx context.Context, ids []bipartite.NodeID, workers int,
	pred func(*commonCounter, bipartite.NodeID) bool, pool *counterPool) []bipartite.NodeID {

	if workers < 1 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		if len(ids) == 0 {
			return nil
		}
		c := pool.get()
		defer pool.put(c)
		var out []bipartite.NodeID
		for i, id := range ids {
			if i&0xff == 0 && ctx.Err() != nil {
				return out
			}
			if pred(c, id) {
				out = append(out, id)
			}
		}
		return out
	}

	keep := make([]bool, len(ids))
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c := pool.get()
			defer pool.put(c)
			for i := lo; i < hi; i++ {
				if i&0xff == 0 && ctx.Err() != nil {
					return
				}
				keep[i] = pred(c, ids[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	var out []bipartite.NodeID
	for i, k := range keep {
		if k {
			out = append(out, ids[i])
		}
	}
	return out
}

// ExtractGroups splits the pruned residual graph into connected components
// and keeps those satisfying the size bounds |L| ≥ k₁, |R| ≥ k₂ of
// Definition 3 (this is also the explicit group-size control of desired
// property (4b): components too small to be a coordinated attack — e.g.
// group-buying clusters around a single item — are discarded).
func ExtractGroups(g *bipartite.Graph, p Params) []detect.Group {
	var groups []detect.Group
	for _, comp := range bipartite.ConnectedComponents(g) {
		if len(comp.Users) >= p.K1 && len(comp.Items) >= p.K2 {
			groups = append(groups, detect.Group{Users: comp.Users, Items: comp.Items})
		}
	}
	return groups
}
