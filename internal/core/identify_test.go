package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/synth"
)

func TestRankResultScores(t *testing.T) {
	// u0 clicks sus items v0,v1; u1 clicks v0 only; v0 is clicked by both
	// plus an innocent u2.
	b := bipartite.NewBuilder(3, 3)
	b.Add(0, 0, 5)
	b.Add(0, 1, 5)
	b.Add(1, 0, 5)
	b.Add(2, 0, 1)
	b.Add(2, 2, 1)
	g := b.Build()
	res := &detect.Result{Groups: []detect.Group{{
		Users: []bipartite.NodeID{0, 1},
		Items: []bipartite.NodeID{0, 1},
	}}}
	r := RankResult(g, res)
	if len(r.Users) != 2 || len(r.Items) != 2 {
		t.Fatalf("ranking sizes = %d users / %d items", len(r.Users), len(r.Items))
	}
	// u0 risk 2, u1 risk 1.
	if r.Users[0].ID != 0 || r.Users[0].Score != 2 {
		t.Errorf("top user = %+v, want u0 score 2", r.Users[0])
	}
	if r.Users[1].ID != 1 || r.Users[1].Score != 1 {
		t.Errorf("second user = %+v, want u1 score 1", r.Users[1])
	}
	// v0: clickers u0(2), u1(1), u2(0) → avg 1; v1: u0(2) → avg 2.
	if r.Items[0].ID != 1 || r.Items[0].Score != 2 {
		t.Errorf("top item = %+v, want v1 score 2", r.Items[0])
	}
	if r.Items[1].ID != 0 || r.Items[1].Score != 1 {
		t.Errorf("second item = %+v, want v0 score 1", r.Items[1])
	}
}

func TestRankingTopK(t *testing.T) {
	r := Ranking{
		Users: []RankedNode{{ID: 1, Score: 3}, {ID: 2, Score: 2}, {ID: 3, Score: 1}},
		Items: []RankedNode{{ID: 9, Score: 5}},
	}
	if got := r.TopUsers(2); len(got) != 2 || got[0].ID != 1 {
		t.Errorf("TopUsers(2) = %+v", got)
	}
	if got := r.TopUsers(10); len(got) != 3 {
		t.Errorf("TopUsers(10) returned %d", len(got))
	}
	if got := r.TopItems(0); got != nil {
		t.Errorf("TopItems(0) = %+v, want nil", got)
	}
}

func TestRankResultEmptyResult(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	r := RankResult(g, &detect.Result{})
	if len(r.Users) != 0 || len(r.Items) != 0 {
		t.Errorf("empty result produced ranking %+v", r)
	}
}

func TestDetectWithFeedbackMeetsExpectation(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	p := smallParams()
	fr, err := DetectWithFeedback(ds.Graph, p, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.MetExpectation {
		t.Errorf("expectation of 10 nodes not met: %d nodes after %d iters",
			fr.Result.NumNodes(), fr.Iterations)
	}
	if fr.Iterations != 1 {
		t.Errorf("defaults should satisfy a 10-node expectation in one run, took %d", fr.Iterations)
	}
}

func TestDetectWithFeedbackRelaxes(t *testing.T) {
	// Demand more nodes than the strict run yields; the loop must relax
	// parameters and re-run.
	ds := synth.MustGenerate(synth.SmallConfig())
	p := smallParams()
	strict := &Detector{Params: p}
	base, err := strict.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	want := base.NumNodes() + 5
	fr, err := DetectWithFeedback(ds.Graph, p, want, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Iterations < 2 {
		t.Errorf("expected ≥ 2 iterations, got %d", fr.Iterations)
	}
	if fr.Params.TClick >= p.TClick && fr.Params.Alpha >= p.Alpha &&
		fr.Params.K1 >= p.K1 && fr.Params.K2 >= p.K2 {
		t.Errorf("no parameter was relaxed: %+v", fr.Params)
	}
	if fr.Result.NumNodes() < base.NumNodes() {
		t.Errorf("relaxation shrank the output: %d < %d", fr.Result.NumNodes(), base.NumNodes())
	}
}

func TestDetectWithFeedbackStopsAtFloor(t *testing.T) {
	// An absurd expectation must terminate once every knob hits its floor.
	ds := synth.MustGenerate(synth.SmallConfig())
	fr, err := DetectWithFeedback(ds.Graph, smallParams(), 1<<30, 50)
	if err != nil {
		t.Fatal(err)
	}
	if fr.MetExpectation {
		t.Error("cannot meet an absurd expectation")
	}
	if fr.Iterations > 40 {
		t.Errorf("loop did not stop at parameter floor: %d iterations", fr.Iterations)
	}
}

func TestRelaxOrder(t *testing.T) {
	p := DefaultParams()
	// TClick relaxes first.
	q, ok := relax(p)
	if !ok || q.TClick != p.TClick-2 || q.Alpha != p.Alpha {
		t.Errorf("first relax = %+v", q)
	}
	// Exhaust TClick, then Alpha, then K1/K2, then stop.
	for i := 0; i < 100; i++ {
		var done bool
		q, done = relax(q)
		if !done {
			if q.TClick > 4 || q.Alpha > 0.7 || q.K1 > 4 || q.K2 > 4 {
				t.Errorf("relax gave up early: %+v", q)
			}
			return
		}
	}
	t.Error("relax never reached its floor")
}
