package core

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/bipartite"
)

// This file implements the cross-sweep component verdict cache (DESIGN.md
// §15). After the global core-prune fixpoint splits the residual into
// connected components, each compacted component is fingerprinted — a
// canonical 128-bit hash over its CSR rows plus the Params that affect its
// per-component output — and looked up here. A hit replays the component's
// pruning removals, extracted groups and (in screened mode) screened groups
// from the cache, translated back through the shard's local→original ID
// maps, skipping square-pruning, extraction and screening for the component
// entirely. A miss runs live detection and stores the outcome.
//
// Soundness rests on the shard decomposition invariant (shard.go): a
// component's verdict is a pure function of its compact CSR (topology +
// weights), the pruning parameters, and — when screening runs inside the
// shard — the component-local hot bits and behavioral thresholds. All of
// those are folded into the fingerprint, so equal fingerprints imply equal
// verdicts up to hash collisions (128 bits of a multiply-rotate mixer;
// entries are process-local and never persisted, see DESIGN.md §15 for the
// collision budget).

// DefaultCacheBytes is the verdict cache's default size bound.
const DefaultCacheBytes = 32 << 20

// fpVersion is folded into every fingerprint; bump it whenever the hashed
// byte layout or the set of verdict-affecting inputs changes.
const fpVersion = 1

// fingerprint is the 128-bit canonical component hash used as cache key.
type fingerprint [2]uint64

// fpHasher is a small 128-bit multiply-rotate mixer (xxhash-style lanes).
// It is NOT cryptographic — it keys a process-local cache, where the cost
// of a collision is bounded by the golden equivalence harness and the
// 2⁻¹²⁸ pair probability, not by an adversary with offline access to the
// digest. It beats crypto hashes by an order of magnitude on the per-arc
// hot loop, which keeps cold-cache sweeps at parity with uncached ones.
type fpHasher struct{ a, b uint64 }

func newFPHasher() fpHasher {
	return fpHasher{a: 0x9e3779b97f4a7c15, b: 0xc2b2ae3d27d4eb4f}
}

func (h *fpHasher) word(x uint64) {
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	h.a = bits.RotateLeft64(h.a^x, 27)*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	h.b = bits.RotateLeft64(h.b+x, 31) * 0xc2b2ae3d27d4eb4f
}

func (h *fpHasher) sum() fingerprint {
	a, b := h.a, h.b
	a ^= b
	a ^= a >> 29
	a *= 0xbf58476d1ce4e5b9
	a ^= a >> 32
	b += a
	b ^= b >> 31
	b *= 0x94d049bb133111eb
	b ^= b >> 29
	return fingerprint{a, b}
}

// componentFingerprint hashes everything that determines a freshly
// compacted component's detection outcome:
//
//   - the full CSR: per-user degree then the (item, weight) arc list, in
//     the graph's deterministic ascending order — topology AND weights, so
//     any perturbation of either changes the fingerprint;
//   - the Params the per-component passes read: K1/K2/Alpha always
//     (pruning + extraction), plus TClick/MaxHotAvg in screened mode
//     (behavior checks);
//   - in screened mode (localHot non-nil), the component-local hot bits:
//     an item's hotness is a marketplace-wide property that can change
//     without changing the component's own CSR, so it must key the entry.
//
// The mode itself is folded in, so raw-mode and screened-mode entries for
// the same CSR never collide. cg must be freshly compacted (all vertices
// alive) — the hash is taken before local pruning mutates it.
func componentFingerprint(cg *bipartite.Graph, localHot []bool, p Params) fingerprint {
	h := newFPHasher()
	mode := uint64(1)
	if localHot != nil {
		mode = 2
	}
	h.word(fpVersion<<8 | mode)
	h.word(uint64(uint32(p.K1))<<32 | uint64(uint32(p.K2)))
	h.word(math.Float64bits(p.Alpha))
	if localHot != nil {
		h.word(uint64(p.TClick))
		h.word(math.Float64bits(p.MaxHotAvg))
	}
	nu, nv := cg.NumUsers(), cg.NumItems()
	h.word(uint64(uint32(nu))<<32 | uint64(uint32(nv)))
	arc := func(v bipartite.NodeID, w uint32) bool {
		h.word(uint64(v)<<32 | uint64(w))
		return true
	}
	for u := 0; u < nu; u++ {
		h.word(uint64(cg.UserDegree(bipartite.NodeID(u))))
		cg.EachUserNeighbor(bipartite.NodeID(u), arc)
	}
	if localHot != nil {
		var acc uint64
		for i, hb := range localHot {
			if hb {
				acc |= 1 << (uint(i) & 63)
			}
			if i&63 == 63 {
				h.word(acc)
				acc = 0
			}
		}
		h.word(acc)
	}
	return h.sum()
}

// localGroup is one extracted or screened group in component-local IDs —
// the form entries are stored in, so one entry serves every future shard
// whose compact CSR matches, regardless of where the component's vertices
// sit in the original graph.
type localGroup struct {
	Users, Items []bipartite.NodeID
}

// cacheEntry is one component's cached verdict. All slices are immutable
// after store: hits translate through fresh allocations (mapIDs), never in
// place.
type cacheEntry struct {
	epoch    uint64 // last epoch this entry was stored or hit in
	size     int64  // entrySize at store time
	rounds   int    // local fixpoint rounds
	removedU []bipartite.NodeID
	removedI []bipartite.NodeID
	raw      []localGroup // extracted candidate groups
	screened []localGroup // per-component screened groups (screened mode)
	// screenedOK records the entry's mode; the fingerprint already
	// separates modes, so this only guards against misuse.
	screenedOK bool
}

// entrySize approximates an entry's memory footprint for the byte bound.
// Screened groups that alias raw slices (the no-drop fast path) are
// double-counted — the bound errs toward evicting early, never late.
func entrySize(e *cacheEntry) int64 {
	const nodeBytes = 4
	s := int64(128)
	s += int64(len(e.removedU)+len(e.removedI)) * nodeBytes
	for _, grps := range [][]localGroup{e.raw, e.screened} {
		for _, g := range grps {
			s += 48 + int64(len(g.Users)+len(g.Items))*nodeBytes
		}
	}
	return s
}

// CacheStats is a snapshot of a VerdictCache's lifetime counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Faults    int64
	Entries   int
	Bytes     int64
	Epoch     uint64
}

// VerdictCache is a bounded, epoch-evicted map from component fingerprint
// to cached per-component verdict. It is safe for concurrent use by the
// shard workers of one sweep; one instance is meant to live across sweeps
// (stream.Detector owns one, the facade can share one across batch runs).
//
// Eviction is oldest-epoch-first: BeginEpoch advances the clock once per
// sharded pass, every store and hit restamps its entry with the current
// epoch, and when the byte bound is exceeded the entries whose last use is
// furthest in the past are dropped until the cache fits. An entry larger
// than the whole bound is simply not stored.
type VerdictCache struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	epoch     uint64
	entries   map[fingerprint]*cacheEntry
	hits      int64
	misses    int64
	evictions int64
	faults    int64
}

// NewVerdictCache creates a cache bounded to maxBytes of cached verdict
// data (≤ 0 means DefaultCacheBytes).
func NewVerdictCache(maxBytes int64) *VerdictCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &VerdictCache{maxBytes: maxBytes, entries: map[fingerprint]*cacheEntry{}}
}

// BeginEpoch advances the eviction clock; the sharded pass calls it once
// per sweep so "oldest epoch" means "least recently swept".
func (c *VerdictCache) BeginEpoch() {
	c.mu.Lock()
	c.epoch++
	c.mu.Unlock()
}

// lookup returns the entry for fp, restamping it with the current epoch.
func (c *VerdictCache) lookup(fp fingerprint) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if ok {
		e.epoch = c.epoch
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// store inserts e under fp and evicts oldest-epoch entries until the cache
// fits its byte bound again. It returns how many entries were evicted.
func (c *VerdictCache) store(fp fingerprint, e *cacheEntry) int {
	e.size = entrySize(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.size > c.maxBytes {
		return 0
	}
	if old, ok := c.entries[fp]; ok {
		c.bytes -= old.size
	}
	e.epoch = c.epoch
	c.entries[fp] = e
	c.bytes += e.size
	evicted := 0
	for c.bytes > c.maxBytes {
		var victimFP fingerprint
		var victim *cacheEntry
		for k, v := range c.entries {
			if k == fp {
				continue // never evict the entry just stored
			}
			if victim == nil || v.epoch < victim.epoch {
				victimFP, victim = k, v
			}
		}
		if victim == nil {
			break
		}
		delete(c.entries, victimFP)
		c.bytes -= victim.size
		c.evictions++
		evicted++
	}
	return evicted
}

// noteFault counts a poisoned/failed lookup that fell back to live
// detection (fault-injection site "core.cache").
func (c *VerdictCache) noteFault() {
	c.mu.Lock()
	c.faults++
	c.mu.Unlock()
}

// Purge drops every entry (reset/retune invalidation); lifetime counters
// are kept.
func (c *VerdictCache) Purge() {
	c.mu.Lock()
	c.entries = map[fingerprint]*cacheEntry{}
	c.bytes = 0
	c.mu.Unlock()
}

// Bytes returns the current cached-verdict footprint.
func (c *VerdictCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the cache's counters.
func (c *VerdictCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Faults:    c.faults,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Epoch:     c.epoch,
	}
}
