package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/synth"
)

// fpEdge is one (user, item, weight) arc of a fingerprint test graph.
type fpEdge struct {
	u, v bipartite.NodeID
	w    uint32
}

func buildFPGraph(nU, nI int, edges []fpEdge) *bipartite.Graph {
	b := bipartite.NewBuilder(nU, nI)
	for _, e := range edges {
		b.Add(e.u, e.v, e.w)
	}
	return b.Build()
}

// TestComponentFingerprintProperties drives the fingerprint's two laws with
// testing/quick over random component graphs:
//
//   - determinism: an identical rebuild (and a clone) hashes identically,
//     so equal CSR ⇒ equal cache key ⇒ the replayed verdict is the live one;
//   - sensitivity: perturbing any verdict-affecting input — one edge
//     weight, the topology, K1/K2/Alpha, a hot bit, the behavioral
//     thresholds in screened mode, or the mode itself — changes the key,
//     so a stale entry can never shadow a changed component.
func TestComponentFingerprintProperties(t *testing.T) {
	base := smallParams()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU := 3 + rng.Intn(10)
		nI := 3 + rng.Intn(8)
		// Unique (u,v) pairs so a weight perturbation below cannot be
		// shadowed by a duplicate arc.
		seen := map[[2]int]bool{}
		var edges []fpEdge
		for k := 1 + rng.Intn(40); k > 0; k-- {
			u, v := rng.Intn(nU), rng.Intn(nI)
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, fpEdge{bipartite.NodeID(u), bipartite.NodeID(v), uint32(1 + rng.Intn(20))})
		}
		if len(edges) == 0 {
			return true
		}
		g := buildFPGraph(nU, nI, edges)
		hot := make([]bool, nI)
		for i := range hot {
			hot[i] = rng.Intn(4) == 0
		}

		raw := componentFingerprint(g, nil, base)
		scr := componentFingerprint(g, hot, base)

		// Determinism across rebuild and clone, in both modes.
		if componentFingerprint(buildFPGraph(nU, nI, edges), nil, base) != raw {
			return false
		}
		if componentFingerprint(g.Clone(), hot, base) != scr {
			return false
		}
		// Weight perturbation.
		pe := append([]fpEdge(nil), edges...)
		pe[rng.Intn(len(pe))].w++
		if componentFingerprint(buildFPGraph(nU, nI, pe), nil, base) == raw {
			return false
		}
		// Topology perturbation: drop one arc.
		te := append([]fpEdge(nil), edges[:len(edges)-1]...)
		if componentFingerprint(buildFPGraph(nU, nI, te), nil, base) == raw {
			return false
		}
		// Pruning/extraction params.
		pk := base
		pk.K1++
		if componentFingerprint(g, nil, pk) == raw {
			return false
		}
		pa := base
		pa.Alpha *= 0.99
		if componentFingerprint(g, nil, pa) == raw {
			return false
		}
		// Raw and screened entries for the same CSR never collide.
		if scr == raw {
			return false
		}
		// A hot-bit flip rekeys a screened entry (hotness is a
		// marketplace-wide property invisible in the component's own CSR).
		fh := append([]bool(nil), hot...)
		i := rng.Intn(nI)
		fh[i] = !fh[i]
		if componentFingerprint(g, fh, base) == scr {
			return false
		}
		// Behavioral thresholds key only the screened mode: the raw entry
		// (pruning + extraction) does not read TClick.
		pt := base
		pt.TClick++
		if componentFingerprint(g, nil, pt) != raw {
			return false
		}
		if componentFingerprint(g, hot, pt) == scr {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestVerdictCacheEvictsOldestEpochFirst pins the eviction policy: when a
// store pushes the cache over its byte bound, the entries whose last use
// (store or hit) is furthest in the past go first, the just-stored entry is
// never the victim, and an entry larger than the whole bound is not stored.
func TestVerdictCacheEvictsOldestEpochFirst(t *testing.T) {
	entry := func() *cacheEntry { return &cacheEntry{removedU: make([]bipartite.NodeID, 18)} } // 200 bytes
	fp := func(i uint64) fingerprint { return fingerprint{i, 0} }

	c := NewVerdictCache(600) // three 200-byte entries fit
	c.BeginEpoch()            // epoch 1
	c.store(fp(1), entry())
	c.store(fp(2), entry())
	c.BeginEpoch() // epoch 2
	c.store(fp(3), entry())
	if _, ok := c.lookup(fp(1)); !ok { // hit restamps fp(1) to epoch 2
		t.Fatal("fp(1) missing before any eviction")
	}
	c.BeginEpoch() // epoch 3
	if evicted := c.store(fp(4), entry()); evicted != 1 {
		t.Fatalf("store evicted %d entries, want 1", evicted)
	}
	// fp(2) is the only entry still stamped epoch 1 — it must be the victim.
	if _, ok := c.lookup(fp(2)); ok {
		t.Error("oldest-epoch entry fp(2) survived the eviction")
	}
	for _, keep := range []uint64{1, 3, 4} {
		if _, ok := c.lookup(fp(keep)); !ok {
			t.Errorf("entry fp(%d) was evicted out of order", keep)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 600 {
		t.Errorf("stats = %+v, want 1 eviction, 3 entries, 600 bytes", st)
	}

	// An entry larger than the whole bound is simply not stored.
	if evicted := c.store(fp(9), &cacheEntry{removedU: make([]bipartite.NodeID, 200)}); evicted != 0 {
		t.Errorf("oversized store evicted %d entries, want 0", evicted)
	}
	if _, ok := c.lookup(fp(9)); ok {
		t.Error("oversized entry was stored despite exceeding the bound")
	}
}

// sameResults compares two detection results group-for-group (members,
// order, scores) plus the flattened suspicious sets.
func sameResults(t *testing.T, label string, want, got *detect.Result) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for gi := range want.Groups {
		w, g := want.Groups[gi], got.Groups[gi]
		if !reflect.DeepEqual(g.Users, w.Users) || !reflect.DeepEqual(g.Items, w.Items) || g.Score != w.Score {
			t.Fatalf("%s: group %d diverged", label, gi)
		}
	}
	if !reflect.DeepEqual(got.Users(), want.Users()) || !reflect.DeepEqual(got.Items(), want.Items()) {
		t.Fatalf("%s: suspicious sets diverged", label)
	}
}

// TestCachedDetectionMatchesOracle is the batch-path sanity check (the full
// harness is internal/stream's cache-equivalence suite): cold run, warm run
// and poisoned-cache run over the same graph all reproduce the uncached
// oracle exactly, the warm run is all hits, and the obs counters agree with
// the cache's own stats.
func TestCachedDetectionMatchesOracle(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	oracle, err := (&Detector{Params: smallParams()}).Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Groups) == 0 {
		t.Fatal("oracle found no groups; the test would be vacuous")
	}

	cache := NewVerdictCache(0)
	p := smallParams()
	p.Cache = cache
	o := obs.NewObserver("core")
	det := &Detector{Params: p, Obs: o}

	cold, err := det.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cold", oracle, cold)
	afterCold := cache.Stats()
	if afterCold.Misses == 0 || afterCold.Entries == 0 {
		t.Fatalf("cold run consulted no components: %+v", afterCold)
	}

	warm, err := det.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "warm", oracle, warm)
	afterWarm := cache.Stats()
	if afterWarm.Hits == 0 {
		t.Error("warm run over an identical graph replayed nothing")
	}
	if afterWarm.Misses != afterCold.Misses {
		t.Errorf("warm run missed %d components; every fingerprint should have hit",
			afterWarm.Misses-afterCold.Misses)
	}

	// Poisoned lookups (fault site core.cache) fall back to live detection:
	// verdicts cannot depend on cache health.
	faultinject.Arm("core.cache", faultinject.Fault{Err: errors.New("poisoned lookup")})
	faulty, err := det.Detect(ds.Graph)
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "poisoned", oracle, faulty)
	st := cache.Stats()
	if st.Faults == 0 {
		t.Error("poisoned run recorded no cache faults")
	}

	// The obs counters are fed from the same merge loop that aggregates the
	// shard results; they must agree with the cache's lifetime stats.
	counters := o.Metrics.Counters()
	for counter, want := range map[string]int64{
		"core.cache.hit":   st.Hits,
		"core.cache.miss":  st.Misses,
		"core.cache.evict": st.Evictions,
		"core.cache.fault": st.Faults,
	} {
		if got := counters[counter]; got != want {
			t.Errorf("%s = %d, cache stats say %d", counter, got, want)
		}
	}
}

// TestCachedDetectionEvictionCounterMatches forces evictions through the
// real pipeline — a cache bounded to the largest single workload's entries,
// fed three distinct workloads — and checks the core.cache.evict counter
// agrees with the cache's own eviction count.
func TestCachedDetectionEvictionCounterMatches(t *testing.T) {
	datasets := make([]*synth.Dataset, 0, 3)
	for _, seed := range []int64{1, 2, 3} {
		cfg := synth.SmallConfig()
		cfg.Seed = seed
		cfg.Attack.Groups = 2 + int(seed%3)
		datasets = append(datasets, synth.MustGenerate(cfg))
	}
	// Measure each workload's cached footprint in isolation; bounding the
	// shared cache to the largest means any two workloads overflow it.
	var maxBytes int64
	for i, ds := range datasets {
		probe := NewVerdictCache(0)
		p := smallParams()
		p.Cache = probe
		if _, err := (&Detector{Params: p}).Detect(ds.Graph); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if b := probe.Bytes(); b > maxBytes {
			maxBytes = b
		}
	}
	if maxBytes == 0 {
		t.Fatal("no workload stored any cache entry")
	}

	cache := NewVerdictCache(maxBytes)
	o := obs.NewObserver("core")
	for i, ds := range datasets {
		p := smallParams()
		p.Cache = cache
		if _, err := (&Detector{Params: p, Obs: o}).Detect(ds.Graph); err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
	}
	evictions := cache.Stats().Evictions
	if evictions == 0 {
		t.Fatalf("no evictions despite a %d-byte bound across three workloads; stats %+v",
			maxBytes, cache.Stats())
	}
	if got := o.Metrics.Counters()["core.cache.evict"]; got != evictions {
		t.Errorf("core.cache.evict = %d, cache evicted %d", got, evictions)
	}
}
