package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
)

// plantedGraph builds a graph with a perfect nU×nI biclique (users 0..nU-1,
// items 0..nI-1, weight w) plus sparse random noise users/items appended
// after the biclique IDs.
func plantedGraph(nU, nI int, w uint32, noiseUsers, noiseItems, noiseEdges int, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nU+noiseUsers, nI+noiseItems)
	for u := 0; u < nU; u++ {
		for v := 0; v < nI; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), w)
		}
	}
	for e := 0; e < noiseEdges; e++ {
		u := bipartite.NodeID(nU + rng.Intn(noiseUsers))
		v := bipartite.NodeID(nI + rng.Intn(noiseItems))
		b.Add(u, v, uint32(1+rng.Intn(3)))
	}
	return b.Build()
}

func params(k1, k2 int, alpha float64) Params {
	p := DefaultParams()
	p.K1, p.K2, p.Alpha = k1, k2, alpha
	return p
}

func TestPruneKeepsBicliqueRemovesNoise(t *testing.T) {
	g := plantedGraph(12, 12, 5, 50, 50, 120, 1)
	p := params(10, 10, 1.0)
	st := Prune(g, p)
	// All 12 biclique users/items survive; the sparse noise cannot.
	for u := bipartite.NodeID(0); u < 12; u++ {
		if !g.UserAlive(u) {
			t.Errorf("biclique user %d pruned", u)
		}
	}
	for v := bipartite.NodeID(0); v < 12; v++ {
		if !g.ItemAlive(v) {
			t.Errorf("biclique item %d pruned", v)
		}
	}
	if g.LiveUsers() != 12 || g.LiveItems() != 12 {
		t.Errorf("survivors = %d users / %d items, want 12/12 (stats %+v)",
			g.LiveUsers(), g.LiveItems(), st)
	}
}

func TestPruneRemovesBicliqueBelowThreshold(t *testing.T) {
	g := plantedGraph(8, 8, 5, 0, 0, 0, 1)
	p := params(10, 10, 1.0)
	Prune(g, p)
	if g.LiveUsers() != 0 || g.LiveItems() != 0 {
		t.Errorf("8×8 biclique should not survive k=10 pruning: %v", g)
	}
}

func TestPruneAlphaRelaxation(t *testing.T) {
	// An 11×11 biclique with one user-item edge deleted per user (a
	// near-biclique): common neighbors between users drop to 9-10, so
	// α = 1.0 with k₂ = 11 prunes it but α = 0.8 keeps it.
	b := bipartite.NewBuilder(11, 11)
	for u := 0; u < 11; u++ {
		for v := 0; v < 11; v++ {
			if v == u { // knock out the diagonal
				continue
			}
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 5)
		}
	}
	strict := b.Build()
	relaxedG := strict.Clone()

	pStrict := params(11, 11, 1.0)
	Prune(strict, pStrict)
	if strict.LiveUsers() != 0 {
		t.Errorf("α=1.0 should prune the holed biclique, %d users left", strict.LiveUsers())
	}

	prelax := params(11, 11, 0.8)
	Prune(relaxedG, pRelaxFix(prelax))
	if relaxedG.LiveUsers() != 11 || relaxedG.LiveItems() != 11 {
		t.Errorf("α=0.8 should keep the holed biclique: %d users / %d items",
			relaxedG.LiveUsers(), relaxedG.LiveItems())
	}
}

func pRelaxFix(p Params) Params { return p }

func TestCorePruneCascades(t *testing.T) {
	// A path u0—v0—u1—v1—…: every vertex has degree ≤ 2, so with
	// k₁ = k₂ = 3, α = 1 core pruning alone must empty the graph through
	// cascading removals.
	b := bipartite.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
		if i+1 < 6 {
			b.Add(bipartite.NodeID(i+1), bipartite.NodeID(i), 1)
		}
	}
	g := b.Build()
	p := params(3, 3, 1.0)
	Prune(g, p)
	if g.LiveUsers() != 0 || g.LiveItems() != 0 {
		t.Errorf("path should be fully pruned: %v", g)
	}
}

func TestSinglePassWeakerThanFixpoint(t *testing.T) {
	// The single pass follows the literal pseudocode and does not iterate,
	// so it may leave vertices a fixpoint would remove — it must never
	// remove MORE than the fixpoint (both respect the same monotone
	// conditions, and the fixpoint is maximal).
	g1 := plantedGraph(12, 12, 5, 60, 60, 400, 7)
	g2 := g1.Clone()

	pFix := params(10, 10, 1.0)
	Prune(g1, pFix)

	pOne := pFix
	pOne.SinglePass = true
	Prune(g2, pOne)

	// Every fixpoint survivor also survives the single pass.
	g1.EachLiveUser(func(u bipartite.NodeID) bool {
		if !g2.UserAlive(u) {
			t.Errorf("user %d survives fixpoint but not single pass", u)
		}
		return true
	})
	g1.EachLiveItem(func(v bipartite.NodeID) bool {
		if !g2.ItemAlive(v) {
			t.Errorf("item %d survives fixpoint but not single pass", v)
		}
		return true
	})
}

func TestPruneFixpointPostconditions(t *testing.T) {
	// After fixpoint pruning, every survivor satisfies Lemma 1 (degree)
	// and Lemma 2 (number of (α,k)-neighbors, self included).
	g := plantedGraph(14, 13, 4, 80, 80, 600, 3)
	p := params(10, 10, 0.9)
	Prune(g, p)

	minUDeg := ceilMul(p.K2, p.Alpha)
	minIDeg := ceilMul(p.K1, p.Alpha)
	counter := newCommonCounter(g.NumUsers(), g.NumItems())
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if g.UserDegree(u) < minUDeg {
			t.Errorf("user %d degree %d < %d", u, g.UserDegree(u), minUDeg)
		}
		if !squareSurvivesUser(g, u, ceilMul(p.K2, p.Alpha), p.K1, counter) {
			t.Errorf("user %d violates square condition at fixpoint", u)
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemDegree(v) < minIDeg {
			t.Errorf("item %d degree %d < %d", v, g.ItemDegree(v), minIDeg)
		}
		if !squareSurvivesItem(g, v, ceilMul(p.K1, p.Alpha), p.K2, counter) {
			t.Errorf("item %d violates square condition at fixpoint", v)
		}
		return true
	})
}

func TestParallelFilterMatchesSerial(t *testing.T) {
	g := plantedGraph(12, 12, 5, 100, 100, 800, 11)
	pSerial := params(10, 10, 1.0)
	pSerial.Workers = 1
	pPar := pSerial
	pPar.Workers = 8

	pool := newCounterPool(g.NumUsers(), g.NumItems())
	serialU := squareRoundUsers(context.Background(), g, pSerial, g.LiveUserIDs(), pool)
	parU := squareRoundUsers(context.Background(), g, pPar, g.LiveUserIDs(), pool)
	if len(serialU) != len(parU) {
		t.Fatalf("victim counts differ: serial %d, parallel %d", len(serialU), len(parU))
	}
	for i := range serialU {
		if serialU[i] != parU[i] {
			t.Errorf("victim %d differs: %d vs %d", i, serialU[i], parU[i])
		}
	}
}

func TestExtractGroupsSizeFilter(t *testing.T) {
	// Two disjoint bicliques: 12×12 and 5×5. With k₁=k₂=10 only the first
	// qualifies as a group after pruning.
	b := bipartite.NewBuilder(17, 17)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 3)
		}
	}
	for u := 12; u < 17; u++ {
		for v := 12; v < 17; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 3)
		}
	}
	g := b.Build()
	p := params(10, 10, 1.0)
	groups := NearBicliqueExtract(g, p)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if len(groups[0].Users) != 12 || len(groups[0].Items) != 12 {
		t.Errorf("group = %d users / %d items, want 12/12",
			len(groups[0].Users), len(groups[0].Items))
	}
}

func TestExtractTwoSeparateGroups(t *testing.T) {
	// Two disjoint 11×11 bicliques must come back as two groups.
	b := bipartite.NewBuilder(22, 22)
	for blk := 0; blk < 2; blk++ {
		off := blk * 11
		for u := 0; u < 11; u++ {
			for v := 0; v < 11; v++ {
				b.Add(bipartite.NodeID(off+u), bipartite.NodeID(off+v), 3)
			}
		}
	}
	g := b.Build()
	groups := NearBicliqueExtract(g, params(10, 10, 1.0))
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
}

func TestPruneEmptyGraph(t *testing.T) {
	g := bipartite.NewGraph(0, 0)
	st := Prune(g, params(10, 10, 1.0))
	if st.UsersRemoved != 0 || st.ItemsRemoved != 0 {
		t.Errorf("empty graph pruning removed something: %+v", st)
	}
}

func TestSortByDegreeBreaksTiesByNodeID(t *testing.T) {
	// Regression: victim candidate ordering must be fully deterministic
	// under sharding — equal degrees break ties by NodeID, so traces and
	// the compact-graph traversal order never depend on sort instability.
	b := bipartite.NewBuilder(6, 6)
	// Items 0..5 all end with degree 2 except item 5 (degree 1).
	for v := 0; v < 5; v++ {
		b.Add(0, bipartite.NodeID(v), 1)
		b.Add(1, bipartite.NodeID(v), 1)
	}
	b.Add(2, 5, 1)
	g := b.Build()

	ids := []bipartite.NodeID{4, 2, 0, 5, 3, 1}
	sortByDegree(ids, g.ItemDegree, nil)
	want := []bipartite.NodeID{5, 0, 1, 2, 3, 4} // degree 1 first, then ID order
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted order = %v, want %v", ids, want)
		}
	}
}
