package core

import (
	"context"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements Algorithm 2, the Suspicious Group Detection module:
// GraphGenerator builds the working bipartite graph — either the whole
// click-table graph or, when known abnormal seeds are available from the
// business department, the union of the seeds' surrounding subgraphs
// (MaxBiGraph in the pseudocode) — and NearBicliqueExtract (Algorithm 3,
// prune.go) extracts the candidate groups.

// GraphGenerator returns the working graph for group detection. With no
// seeds it is a clone of g (TableToBiGraph already happened upstream). With
// seeds, it is the subgraph of g induced by the union of each seed's
// neighborhood expansion: for a seed the attack group around it lies within
// three hops (seed user → its items → their users → those users' items),
// so the expansion collects exactly that ball. Seeds only prune the search
// space — the module works without them (Lines 5–10 of Algorithm 2).
func GraphGenerator(g *bipartite.Graph, seeds detect.Seeds) *bipartite.Graph {
	return GraphGeneratorBounded(g, seeds, 0)
}

// GraphGeneratorBounded is GraphGenerator with an expansion bound: items
// whose live degree exceeds itemDegreeCap are included in the subgraph but
// not traversed THROUGH (their full fan base is not pulled in). The bound is
// safe for attack-group discovery — co-attackers of a seed always share its
// modest-degree target items, never only a hot item (a user sharing only a
// hot item with the seed cannot be in an (α,k₁,k₂)-extension biclique with
// it, which requires ⌈α·k₂⌉ common items). Zero means unbounded. The
// incremental detector uses the bound to keep dirty-region sweeps local.
func GraphGeneratorBounded(g *bipartite.Graph, seeds detect.Seeds, itemDegreeCap int) *bipartite.Graph {
	if seeds.Empty() {
		return g.Clone()
	}

	keepU := map[bipartite.NodeID]bool{}
	keepV := map[bipartite.NodeID]bool{}
	traverse := func(v bipartite.NodeID) bool {
		return itemDegreeCap <= 0 || g.ItemDegree(v) <= itemDegreeCap
	}

	// expandUser marks u, its items, their users, and those users' items.
	expandUser := func(u bipartite.NodeID) {
		if !g.UserAlive(u) {
			return
		}
		keepU[u] = true
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			keepV[v] = true
			if !traverse(v) {
				return true
			}
			g.EachItemNeighbor(v, func(u2 bipartite.NodeID, _ uint32) bool {
				if !keepU[u2] {
					keepU[u2] = true
					g.EachUserNeighbor(u2, func(v2 bipartite.NodeID, _ uint32) bool {
						keepV[v2] = true
						return true
					})
				}
				return true
			})
			return true
		})
	}
	// expandItem marks v, its users, those users' items, and one more user
	// layer, so that co-attackers who skipped v itself but click its
	// sibling targets (Participation < 1 in the attack model) are included.
	expandItem := func(v bipartite.NodeID) {
		if !g.ItemAlive(v) {
			return
		}
		keepV[v] = true
		if !traverse(v) {
			return
		}
		g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			if !keepU[u] {
				keepU[u] = true
				g.EachUserNeighbor(u, func(v2 bipartite.NodeID, _ uint32) bool {
					if keepV[v2] {
						return true
					}
					keepV[v2] = true
					if !traverse(v2) {
						return true
					}
					g.EachItemNeighbor(v2, func(u2 bipartite.NodeID, _ uint32) bool {
						keepU[u2] = true
						return true
					})
					return true
				})
			}
			return true
		})
	}

	for _, u := range seeds.Users {
		expandUser(u)
	}
	for _, v := range seeds.Items {
		expandItem(v)
	}

	sub := g.Clone()
	sub.EachLiveUser(func(u bipartite.NodeID) bool {
		if !keepU[u] {
			sub.RemoveUser(u)
		}
		return true
	})
	sub.EachLiveItem(func(v bipartite.NodeID) bool {
		if !keepV[v] {
			sub.RemoveItem(v)
		}
		return true
	})
	return sub
}

// NearBicliqueExtract runs Algorithm 3 on work (mutating it) and returns the
// surviving candidate groups.
func NearBicliqueExtract(work *bipartite.Graph, p Params) []detect.Group {
	return NearBicliqueExtractObserved(work, p, nil, nil)
}

// NearBicliqueExtractObserved is NearBicliqueExtract with observability:
// pruning rounds and the component split become child spans of sp, and
// removal/group counts feed o's registry under core.prune.* and
// core.extract.*. Nil sp/o observe nothing.
func NearBicliqueExtractObserved(work *bipartite.Graph, p Params, sp *obs.Span, o *obs.Observer) []detect.Group {
	groups, _ := NearBicliqueExtractCtx(context.Background(), work, p, sp, o)
	return groups
}

// NearBicliqueExtractCtx is NearBicliqueExtractObserved with cooperative
// cancellation: pruning checks ctx every round, and the component split is
// guarded by the "core.extract" checkpoint. A cancelled call returns no
// groups (a half-pruned residual would report organic users as attackers)
// together with ctx's error. With p.Cache set on the sharded path the
// component verdict cache serves unchanged components in raw (unscreened)
// mode; output is identical either way.
func NearBicliqueExtractCtx(ctx context.Context, work *bipartite.Graph, p Params,
	sp *obs.Span, o *obs.Observer) ([]detect.Group, error) {

	groups, _, _, err := NearBicliqueExtractCachedCtx(ctx, work, nil, p, sp, o)
	return groups, err
}

// NearBicliqueExtractCachedCtx is NearBicliqueExtractCtx plus the cached
// screening path: with p.Cache set, the sharded orchestration active and
// hot non-nil (the marketplace-wide HotSet of the input graph), the
// VariantFull screening passes run per component inside the shards, so
// cache hits skip screening as well as pruning and extraction. It returns
// the raw candidates plus, when per-shard screening actually ran
// (screenedOK), the fully screened groups — byte-identical to running
// ScreenGroupsCtx over the raw candidates. screenedOK is false whenever the
// cache was bypassed (serial path, no cache, or an audit sink demanding the
// full decision trail); callers must then screen raw globally as usual.
func NearBicliqueExtractCachedCtx(ctx context.Context, work *bipartite.Graph, hot *HotSet,
	p Params, sp *obs.Span, o *obs.Observer) (raw, screened []detect.Group, screenedOK bool, err error) {

	sharded := p.sharded()
	psp := sp.Start("prune")
	var st PruneStats
	var outc extractOutcome
	if sharded {
		// The sharded orchestration prunes and extracts per component in
		// one pass, so the groups come back already merged in serial order.
		psp.Set("mode", "sharded")
		st, outc, err = shardedPruneExtract(ctx, work, p, psp, o, shardOptions{collect: true, hot: hot})
	} else {
		st, err = pruneCtxObserved(ctx, work, p, psp, o)
	}
	psp.SetInt("rounds", int64(st.Rounds))
	psp.SetInt("users_removed", int64(st.UsersRemoved))
	psp.SetInt("items_removed", int64(st.ItemsRemoved))
	psp.End()
	o.Counter("core.prune.rounds").Add(int64(st.Rounds))
	o.Counter("core.prune.users_removed").Add(int64(st.UsersRemoved))
	o.Counter("core.prune.items_removed").Add(int64(st.ItemsRemoved))
	o.Histogram("core.prune").Observe(psp.Duration())
	if err != nil {
		return nil, nil, false, err
	}

	faultinject.Hit("core.extract")
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	esp := sp.Start("extract")
	raw = outc.raw
	if !sharded {
		raw = ExtractGroups(work, p)
	}
	esp.SetInt("groups", int64(len(raw)))
	esp.SetInt("survivor_users", int64(work.LiveUsers()))
	esp.SetInt("survivor_items", int64(work.LiveItems()))
	esp.End()
	o.Counter("core.extract.groups").Add(int64(len(raw)))
	return raw, outc.screened, outc.screenedOK, nil
}
