package core

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// NaiveDetector implements Algorithm 1 of the paper: classify items into hot
// and new, give every user an Alpha score (its total clicks on hot items),
// score every item by the sum of its clickers' Alphas, and flag items whose
// risk score exceeds T_risk. Users are then flagged symmetrically by the
// clicks they spend on flagged items.
//
// The naive detector judges each node independently — it is fast and
// intuitive but ignores group structure, which is exactly the weakness RICD
// addresses (Section V-A).
type NaiveDetector struct {
	Params Params
}

// Name implements detect.Detector.
func (d *NaiveDetector) Name() string { return "Naive" }

// Detect implements detect.Detector. The input graph is not mutated.
func (d *NaiveDetector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if err := d.Params.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	p := d.Params

	// Line 2-6: split items into hot and new (potential targets).
	hot := ComputeHotSet(g, p.THot)

	// Line 7-8: Alpha(u) = user's total clicks on hot items.
	alpha := make([]float64, g.NumUsers())
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		var a float64
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if hot.IsHot(v) {
				a += float64(w)
			}
			return true
		})
		alpha[u] = a
		return true
	})

	// Line 9-12: item risk = Σ Alpha over clickers; flag risk > T_risk.
	// Hot items are never flagged: they are victims, not targets.
	var items []bipartite.NodeID
	itemFlag := make([]bool, g.NumItems())
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if hot.IsHot(v) {
			return true
		}
		var risk float64
		g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			risk += alpha[u]
			return true
		})
		if risk > p.TRisk {
			itemFlag[v] = true
			items = append(items, v)
		}
		return true
	})

	// Symmetric pass: a user is abnormal if it spends ≥ T_click clicks on
	// some flagged item (the crowd-worker signature of Section IV-A).
	var users []bipartite.NodeID
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		abnormal := false
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			if itemFlag[v] && w >= p.TClick {
				abnormal = true
				return false
			}
			return true
		})
		if abnormal {
			users = append(users, u)
		}
		return true
	})

	res := &detect.Result{Elapsed: time.Since(start)}
	res.DetectElapsed = res.Elapsed
	if len(users) > 0 || len(items) > 0 {
		res.Groups = []detect.Group{{Users: users, Items: items}}
	}
	return res, nil
}
