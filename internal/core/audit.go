package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/obs"
)

// auditor threads the structured audit trail (obs.EventSink) through the
// pipeline internals. The nil *auditor is the disabled path: every method
// returns before building its event, so instrumented loops pay one nil
// check and zero allocations when auditing is off — the same contract as
// the nil observer.
//
// Sharded pruning runs on compacted component graphs whose vertex IDs are
// local (bipartite.CompactComponent); forShard derives a translating
// auditor from the shard's local→original maps, so every emitted event
// carries IDs in the original graph's namespace regardless of which path
// produced it.
type auditor struct {
	sink   *obs.EventSink
	shard  int                // 1-based shard index, 0 outside shards
	userOf []bipartite.NodeID // local → original user IDs; nil outside shards
	itemOf []bipartite.NodeID
}

// newAuditor returns the observer's auditor, or nil when no event sink is
// attached (the free default).
func newAuditor(o *obs.Observer) *auditor {
	if s := o.Sink(); s != nil {
		return &auditor{sink: s}
	}
	return nil
}

// forShard returns an auditor stamping events with the shard index and
// translating compact-graph IDs back to original IDs.
func (a *auditor) forShard(shard int, userOf, itemOf []bipartite.NodeID) *auditor {
	if a == nil {
		return nil
	}
	return &auditor{sink: a.sink, shard: shard, userOf: userOf, itemOf: itemOf}
}

func (a *auditor) translate(side bipartite.Side, id bipartite.NodeID) bipartite.NodeID {
	if side == bipartite.UserSide {
		if a.userOf != nil {
			return a.userOf[id]
		}
		return id
	}
	if a.itemOf != nil {
		return a.itemOf[id]
	}
	return id
}

// runStart brackets the opening of one detection run.
func (a *auditor) runStart(variant string, users, items int) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{Type: obs.EventRunStart, Reason: variant, Users: users, Items: items})
}

// runEnd brackets the close of one run; partialStage is "" for a complete
// run and the interrupted stage's name otherwise.
func (a *auditor) runEnd(groups, users, items int, partialStage string) {
	if a == nil {
		return
	}
	e := obs.Event{Type: obs.EventRunEnd, Groups: groups, Users: users, Items: items}
	if partialStage != "" {
		e.Reason = "partial:" + partialStage
	}
	a.sink.Emit(e)
}

// coreRemoval records one CorePruning removal: the vertex's live degree
// fell below the Lemma 1 bound (⌈α·k₂⌉ for users, ⌈α·k₁⌉ for items).
func (a *auditor) coreRemoval(side bipartite.Side, id bipartite.NodeID, round, deg, minDeg int) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventPruneRemove,
		Side:   side.String(),
		ID:     uint32(a.translate(side, id)),
		Round:  round,
		Shard:  a.shard,
		Reason: "core.degree",
		Stat:   fmt.Sprintf("deg=%d min=%d", deg, minDeg),
	})
}

// squareRemovals records one round's SquarePruning victims: each vertex
// had fewer than k (α,·)-neighbors, i.e. fewer than k counterparts sharing
// at least `need` common neighbors with it (Lemma 2).
func (a *auditor) squareRemovals(side bipartite.Side, victims []bipartite.NodeID, round, need, k int) {
	if a == nil || len(victims) == 0 {
		return
	}
	stat := fmt.Sprintf("ak_neighbors<%d need=%d", k, need)
	for _, id := range victims {
		a.sink.Emit(obs.Event{
			Type:   obs.EventPruneRemove,
			Side:   side.String(),
			ID:     uint32(a.translate(side, id)),
			Round:  round,
			Shard:  a.shard,
			Reason: "square.neighbors",
			Stat:   stat,
		})
	}
}

// squareRemoval is the single-vertex form used by the literal single-pass
// mode's immediate removals.
func (a *auditor) squareRemoval(side bipartite.Side, id bipartite.NodeID, round, need, k int) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventPruneRemove,
		Side:   side.String(),
		ID:     uint32(a.translate(side, id)),
		Round:  round,
		Shard:  a.shard,
		Reason: "square.neighbors",
		Stat:   fmt.Sprintf("ak_neighbors<%d need=%d", k, need),
	})
}

// shardDone marks one component shard's pruning boundary.
func (a *auditor) shardDone(shard, users, items, rounds, removed int) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:  obs.EventShardDone,
		Shard: shard,
		Users: users,
		Items: items,
		Round: rounds,
		Stat:  fmt.Sprintf("removed=%d", removed),
	})
}

// Screening drops. group is the 1-based candidate-group index (extraction
// order, before the final repartition renumbers survivors).

// dropUserNoAttackEdge: the user behavior check found no in-group ordinary
// item clicked ≥ T_click times (Fig 5 condition (1)).
func (a *auditor) dropUserNoAttackEdge(group int, u bipartite.NodeID, maxOrdinary, tClick uint32) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "user",
		ID:     uint32(u),
		Group:  group,
		Reason: "user.no_attack_edge",
		Stat:   fmt.Sprintf("max_ordinary_clicks=%d t_click=%d", maxOrdinary, tClick),
	})
}

// dropUserHotAvg: the user's average clicks on in-group hot items reached
// MaxHotAvg (Fig 5 condition (2) — attackers touch hot items minimally).
func (a *auditor) dropUserHotAvg(group int, u bipartite.NodeID, avg, max float64) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "user",
		ID:     uint32(u),
		Group:  group,
		Reason: "user.hot_avg",
		Stat:   fmt.Sprintf("hot_avg=%.1f max=%.1f", avg, max),
	})
}

// dropUserNoVerifiedTarget: every item the user supported failed item
// behavior verification, so no attack target remains for them.
func (a *auditor) dropUserNoVerifiedTarget(group int, u bipartite.NodeID) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "user",
		ID:     uint32(u),
		Group:  group,
		Reason: "user.no_verified_target",
	})
}

// dropItemHot: hot items are the ridden victims, never targets (Fig 6).
func (a *auditor) dropItemHot(group int, v bipartite.NodeID) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "item",
		ID:     uint32(v),
		Group:  group,
		Reason: "item.hot",
	})
}

// dropItemGroupDissolved: the user behavior check rejected every user in
// the candidate group, so its items fall with no surviving clickers to
// verify them against.
func (a *auditor) dropItemGroupDissolved(group int, v bipartite.NodeID) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "item",
		ID:     uint32(v),
		Group:  group,
		Reason: "item.group_dissolved",
	})
}

// dropItemSupporters: the clicked-user-set coincidence test failed — fewer
// than ⌈α·k₁⌉ surviving users clicked the item ≥ T_click times (Fig 6).
func (a *auditor) dropItemSupporters(group int, v bipartite.NodeID, supporters, need int) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:   obs.EventScreenDrop,
		Side:   "item",
		ID:     uint32(v),
		Group:  group,
		Reason: "item.supporters",
		Stat:   fmt.Sprintf("supporters=%d need=%d", supporters, need),
	})
}

// groupVerdict records one final group with its risk score and forensic
// evidence — the record an analyst reviews before acting.
func (a *auditor) groupVerdict(group, users, items int, score float64, st GroupStats) {
	if a == nil {
		return
	}
	a.sink.Emit(obs.Event{
		Type:  obs.EventGroupVerdict,
		Group: group,
		Users: users,
		Items: items,
		Score: score,
		Stat: fmt.Sprintf("density=%.3f mean_edge_clicks=%.1f outside_share=%.3f",
			st.Density, st.MeanEdgeClicks, st.OutsideShare),
	})
}

// widenEvents records the feedback loop's parameter relaxations: one event
// per knob that moved, old→new (Fig 7's adjustment step).
func (a *auditor) widenEvents(iteration int, old, relaxed Params) {
	if a == nil {
		return
	}
	emit := func(knob, oldV, newV string) {
		a.sink.Emit(obs.Event{
			Type:   obs.EventFeedbackWiden,
			Round:  iteration,
			Reason: knob,
			Old:    oldV,
			New:    newV,
		})
	}
	if old.TClick != relaxed.TClick {
		emit("t_click", fmt.Sprintf("%d", old.TClick), fmt.Sprintf("%d", relaxed.TClick))
	}
	if old.Alpha != relaxed.Alpha {
		emit("alpha", fmt.Sprintf("%.2f", old.Alpha), fmt.Sprintf("%.2f", relaxed.Alpha))
	}
	if old.K1 != relaxed.K1 {
		emit("k1", fmt.Sprintf("%d", old.K1), fmt.Sprintf("%d", relaxed.K1))
	}
	if old.K2 != relaxed.K2 {
		emit("k2", fmt.Sprintf("%d", old.K2), fmt.Sprintf("%d", relaxed.K2))
	}
}
