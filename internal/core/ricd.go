package core

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Variant selects how much of the RICD pipeline runs; the reduced variants
// are the ablation baselines of the paper's Table VI.
type Variant int

const (
	// VariantFull is the complete framework: group detection, user
	// behavior check, item behavior verification, identification.
	VariantFull Variant = iota
	// VariantUI removes the whole screening module (RICD-UI in Table VI):
	// raw extracted groups are reported as-is.
	VariantUI
	// VariantI removes only the item behavior verification step (RICD-I):
	// users are checked, hot items are excluded, but ordinary in-group
	// items skip the coincidence verification.
	VariantI
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantUI:
		return "RICD-UI"
	case VariantI:
		return "RICD-I"
	default:
		return "RICD"
	}
}

// Detector is the RICD framework as a detect.Detector.
type Detector struct {
	Params  Params
	Variant Variant
	// Seeds optionally restricts group detection to the neighborhoods of
	// known abnormal nodes (Algorithm 2's auxiliary input).
	Seeds detect.Seeds
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return d.Variant.String() }

// Detect implements detect.Detector: it runs the three modules of Fig 4 in
// sequence. The input graph is not mutated.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if err := d.Params.Validate(); err != nil {
		return nil, err
	}
	p := d.Params
	start := time.Now()

	// Module 1: suspicious group detection. Hotness is classified on the
	// full input graph before pruning.
	hot := ComputeHotSet(g, p.THot)
	work := GraphGenerator(g, d.Seeds)
	groups := NearBicliqueExtract(work, p)
	detectDone := time.Now()

	// Module 2: suspicious group screening (variant-dependent).
	switch d.Variant {
	case VariantUI:
		// No screening at all.
	case VariantI:
		groups = screenUsersOnly(g, groups, hot, p)
	default:
		groups = ScreenGroups(g, groups, hot, p)
	}

	// Module 3: identification — score groups so the most suspicious come
	// first; per-node rankings are available via RankResult.
	res := &detect.Result{Groups: groups}
	scoreGroups(g, res)
	res.DetectElapsed = detectDone.Sub(start)
	res.ScreenElapsed = time.Since(detectDone)
	res.Elapsed = time.Since(start)
	return res, nil
}

// screenUsersOnly is the RICD-I screening: user behavior check plus hot-item
// exclusion, without item behavior verification.
func screenUsersOnly(g *bipartite.Graph, groups []detect.Group, hot *HotSet, p Params) []detect.Group {
	var out []detect.Group
	for _, grp := range groups {
		users := UserBehaviorCheck(g, grp, hot, p)
		if len(users) < p.K1 {
			continue
		}
		var items []bipartite.NodeID
		for _, v := range grp.Items {
			if !hot.IsHot(v) {
				items = append(items, v)
			}
		}
		if len(items) < p.K2 {
			continue
		}
		out = append(out, detect.Group{Users: users, Items: items})
	}
	return out
}

// scoreGroups assigns every group the mean user risk score of its members
// and orders groups most-suspicious-first.
func scoreGroups(g *bipartite.Graph, res *detect.Result) {
	if len(res.Groups) == 0 {
		return
	}
	ranking := RankResult(g, res)
	userScore := make(map[bipartite.NodeID]float64, len(ranking.Users))
	for _, n := range ranking.Users {
		userScore[n.ID] = n.Score
	}
	for i := range res.Groups {
		grp := &res.Groups[i]
		var sum float64
		for _, u := range grp.Users {
			sum += userScore[u]
		}
		if len(grp.Users) > 0 {
			grp.Score = sum / float64(len(grp.Users))
		}
	}
	sortGroupsByScore(res.Groups)
}

func sortGroupsByScore(groups []detect.Group) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].Score > groups[j-1].Score; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
