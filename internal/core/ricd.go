package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Variant selects how much of the RICD pipeline runs; the reduced variants
// are the ablation baselines of the paper's Table VI.
type Variant int

const (
	// VariantFull is the complete framework: group detection, user
	// behavior check, item behavior verification, identification.
	VariantFull Variant = iota
	// VariantUI removes the whole screening module (RICD-UI in Table VI):
	// raw extracted groups are reported as-is.
	VariantUI
	// VariantI removes only the item behavior verification step (RICD-I):
	// users are checked, hot items are excluded, but ordinary in-group
	// items skip the coincidence verification.
	VariantI
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantUI:
		return "RICD-UI"
	case VariantI:
		return "RICD-I"
	default:
		return "RICD"
	}
}

// Detector is the RICD framework as a detect.Detector.
type Detector struct {
	Params  Params
	Variant Variant
	// Seeds optionally restricts group detection to the neighborhoods of
	// known abnormal nodes (Algorithm 2's auxiliary input).
	Seeds detect.Seeds
	// Obs, when non-nil, receives a stage trace (one ricd.detect span per
	// run, with the paper's Fig 8b detection/screening/identification
	// phase split as children) and pipeline metrics. Nil costs nothing.
	Obs *obs.Observer
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return d.Variant.String() }

// Detect implements detect.Detector: it runs the three modules of Fig 4 in
// sequence. The input graph is not mutated. Detect cannot be cancelled —
// use DetectContext for bounded runs — but it shares DetectContext's panic
// isolation: a stage bug surfaces as a *detect.StageError, not a crash.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	return d.DetectContext(context.Background(), g)
}

// DetectContext runs the pipeline under a context. Cancellation and
// deadline expiry are honored cooperatively at stage boundaries, between
// pruning rounds, inside the parallel pruning workers, and between
// screened groups, so a cancel lands within a fraction of a round. A
// cut-short run returns a non-nil, well-formed PARTIAL result — whatever
// groups the completed stages produced, with Result.Partial set and
// Result.StageReached naming the interrupted stage — together with the
// context's error. A stage panic is isolated the same way and returned as
// a *detect.StageError. Only parameter validation returns a nil result.
func (d *Detector) DetectContext(ctx context.Context, g *bipartite.Graph) (*detect.Result, error) {
	if err := d.Params.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := d.Params
	o := d.Obs
	run := o.Root().Start("ricd.detect")
	run.Set("variant", d.Variant.String())
	start := time.Now()

	a := newAuditor(o)
	a.runStart(d.Variant.String(), g.LiveUsers(), g.LiveItems())
	ledger := o.RunLedger()
	var countersBefore map[string]int64
	if ledger != nil {
		countersBefore = o.Metrics.Counters()
	}
	// record files one RunSummary with the ledger: stage durations from the
	// finished run span, outcome counts, and the run's own counter deltas.
	record := func(res *detect.Result, err error) {
		if ledger == nil {
			return
		}
		sum := obs.RunSummary{
			Root:       "ricd.detect",
			DurationNS: res.Elapsed.Nanoseconds(),
			Groups:     len(res.Groups),
			Users:      len(res.Users()),
			Items:      len(res.Items()),
			Partial:    res.Partial,
			Stage:      res.StageReached,
			Stages:     obs.StagesOf(run.Export()),
			Stats:      obs.CounterDelta(countersBefore, o.Metrics.Counters()),
		}
		if err != nil {
			sum.Err = err.Error()
		}
		ledger.Record(sum)
	}

	var groups []detect.Group
	detectDone := start

	// stage runs fn as a named, panic-isolated, cancellable pipeline stage:
	// the fault-injection site "core.<name>" fires first, then ctx is
	// checked, then fn runs with panics converted to *detect.StageError.
	stage := func(name string, fn func() error) error {
		return detect.RunStage(name, func() error {
			faultinject.Hit("core." + name)
			if err := ctx.Err(); err != nil {
				return err
			}
			return fn()
		})
	}

	// degrade finalizes a cut-short run: the result carries whatever groups
	// the completed stages produced (the graceful-degradation contract).
	degrade := func(stageName string, err error) (*detect.Result, error) {
		res := &detect.Result{Groups: groups, Partial: true, StageReached: stageName}
		res.Elapsed = time.Since(start)
		if detectDone.After(start) {
			res.DetectElapsed = detectDone.Sub(start)
			res.ScreenElapsed = res.Elapsed - res.DetectElapsed
		} else {
			res.DetectElapsed = res.Elapsed
		}
		run.Set("partial", stageName)
		run.End()
		var se *detect.StageError
		if errors.As(err, &se) {
			o.Counter("ricd.stage_panics").Inc()
		} else {
			o.Counter("ricd.cancellations").Inc()
		}
		o.Counter("detect.partial").Inc()
		o.Counter("detect.stage_reached." + stageName).Inc()
		a.runEnd(len(res.Groups), len(res.Users()), len(res.Items()), stageName)
		record(res, err)
		return res, err
	}

	// Module 1: suspicious group detection. Hotness is classified on the
	// full input graph before pruning.
	dsp := run.Start("detection")
	var hot *HotSet
	if err := stage("hotset", func() error {
		hsp := dsp.Start("hotset")
		hot = ComputeHotSet(g, p.THot)
		hsp.SetInt("hot_items", int64(hot.Count()))
		hsp.End()
		return nil
	}); err != nil {
		dsp.End()
		return degrade("hotset", err)
	}

	var work *bipartite.Graph
	if err := stage("graph_generator", func() error {
		gsp := dsp.Start("graph_generator")
		work = GraphGenerator(g, d.Seeds)
		gsp.SetInt("live_users", int64(work.LiveUsers()))
		gsp.SetInt("live_items", int64(work.LiveItems()))
		gsp.SetInt("live_edges", int64(work.LiveEdges()))
		gsp.End()
		return nil
	}); err != nil {
		dsp.End()
		return degrade("graph_generator", err)
	}

	// With the verdict cache armed and full screening requested, the
	// screening passes ride inside the shards (hot handed down), so cached
	// components skip screening too; screenedOK=false falls back to the
	// global screening stage below (serial path, or an audit sink bypassing
	// the cache).
	var screened []detect.Group
	var screenedOK bool
	if err := stage("extraction", func() error {
		var eerr error
		if p.Cache != nil && d.Variant == VariantFull {
			groups, screened, screenedOK, eerr = NearBicliqueExtractCachedCtx(ctx, work, hot, p, dsp, o)
		} else {
			groups, eerr = NearBicliqueExtractCtx(ctx, work, p, dsp, o)
		}
		return eerr
	}); err != nil {
		dsp.End()
		return degrade("extraction", err)
	}
	dsp.End()
	detectDone = time.Now()

	// Module 2: suspicious group screening (variant-dependent). On
	// cancellation mid-screening the groups fully screened so far are kept:
	// each is individually sound, the run is just incomplete.
	ssp := run.Start("screening")
	ssp.Set("mode", d.Variant.String())
	if err := stage("screening", func() error {
		switch d.Variant {
		case VariantUI:
			// No screening at all.
			return nil
		case VariantI:
			groups = screenUsersOnly(g, groups, hot, p, a)
			return nil
		default:
			if screenedOK {
				// Per-component screening already ran inside the shards
				// (verdict-cache mode); adopt its output — byte-identical
				// to screening the raw candidates globally.
				ssp.Set("cached", "shards")
				groups = screened
				return nil
			}
			var serr error
			groups, serr = ScreenGroupsCtx(ctx, g, groups, hot, p, ssp, o)
			return serr
		}
	}); err != nil {
		ssp.End()
		return degrade("screening", err)
	}
	ssp.SetInt("groups_out", int64(len(groups)))
	ssp.End()

	// Module 3: identification — score groups so the most suspicious come
	// first; per-node rankings are available via RankResult.
	isp := run.Start("identification")
	res := &detect.Result{Groups: groups}
	if err := stage("identification", func() error {
		scoreGroups(g, res)
		return nil
	}); err != nil {
		isp.End()
		return degrade("identification", err)
	}
	isp.End()

	// Final verdicts: one event per reported group, most suspicious first
	// (scoreGroups already ordered them), with the risk score and the
	// forensic statistics an analyst reviews before acting. Guarded so the
	// disabled path never computes the stats.
	if a != nil {
		for i, grp := range res.Groups {
			a.groupVerdict(i+1, len(grp.Users), len(grp.Items), grp.Score,
				ComputeGroupStats(g, grp))
		}
	}

	res.DetectElapsed = detectDone.Sub(start)
	res.ScreenElapsed = time.Since(detectDone)
	res.Elapsed = time.Since(start)
	run.SetInt("groups", int64(len(groups)))
	run.End()
	o.Counter("ricd.detections").Inc()
	o.Histogram("ricd.detect").Observe(res.Elapsed)
	o.Histogram("ricd.detect.detection").Observe(res.DetectElapsed)
	o.Histogram("ricd.detect.screening").Observe(res.ScreenElapsed)
	a.runEnd(len(res.Groups), len(res.Users()), len(res.Items()), "")
	record(res, nil)
	return res, nil
}

// screenUsersOnly is the RICD-I screening: user behavior check plus hot-item
// exclusion, without item behavior verification.
func screenUsersOnly(g *bipartite.Graph, groups []detect.Group, hot *HotSet, p Params, a *auditor) []detect.Group {
	var out []detect.Group
	for i, grp := range groups {
		users := userBehaviorCheck(g, grp, hot, p, a, i+1)
		if len(users) < p.K1 {
			continue
		}
		var items []bipartite.NodeID
		for _, v := range grp.Items {
			if hot.IsHot(v) {
				a.dropItemHot(i+1, v)
			} else {
				items = append(items, v)
			}
		}
		if len(items) < p.K2 {
			continue
		}
		out = append(out, detect.Group{Users: users, Items: items})
	}
	return out
}

// scoreGroups assigns every group the mean user risk score of its members
// and orders groups most-suspicious-first.
func scoreGroups(g *bipartite.Graph, res *detect.Result) {
	if len(res.Groups) == 0 {
		return
	}
	ranking := RankResult(g, res)
	userScore := make(map[bipartite.NodeID]float64, len(ranking.Users))
	for _, n := range ranking.Users {
		userScore[n.ID] = n.Score
	}
	for i := range res.Groups {
		grp := &res.Groups[i]
		var sum float64
		for _, u := range grp.Users {
			sum += userScore[u]
		}
		if len(grp.Users) > 0 {
			grp.Score = sum / float64(len(grp.Users))
		}
	}
	sortGroupsByScore(res.Groups)
}

func sortGroupsByScore(groups []detect.Group) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].Score > groups[j-1].Score; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
