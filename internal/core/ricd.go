package core

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/obs"
)

// Variant selects how much of the RICD pipeline runs; the reduced variants
// are the ablation baselines of the paper's Table VI.
type Variant int

const (
	// VariantFull is the complete framework: group detection, user
	// behavior check, item behavior verification, identification.
	VariantFull Variant = iota
	// VariantUI removes the whole screening module (RICD-UI in Table VI):
	// raw extracted groups are reported as-is.
	VariantUI
	// VariantI removes only the item behavior verification step (RICD-I):
	// users are checked, hot items are excluded, but ordinary in-group
	// items skip the coincidence verification.
	VariantI
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantUI:
		return "RICD-UI"
	case VariantI:
		return "RICD-I"
	default:
		return "RICD"
	}
}

// Detector is the RICD framework as a detect.Detector.
type Detector struct {
	Params  Params
	Variant Variant
	// Seeds optionally restricts group detection to the neighborhoods of
	// known abnormal nodes (Algorithm 2's auxiliary input).
	Seeds detect.Seeds
	// Obs, when non-nil, receives a stage trace (one ricd.detect span per
	// run, with the paper's Fig 8b detection/screening/identification
	// phase split as children) and pipeline metrics. Nil costs nothing.
	Obs *obs.Observer
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return d.Variant.String() }

// Detect implements detect.Detector: it runs the three modules of Fig 4 in
// sequence. The input graph is not mutated.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if err := d.Params.Validate(); err != nil {
		return nil, err
	}
	p := d.Params
	o := d.Obs
	run := o.Root().Start("ricd.detect")
	run.Set("variant", d.Variant.String())
	start := time.Now()

	// Module 1: suspicious group detection. Hotness is classified on the
	// full input graph before pruning.
	dsp := run.Start("detection")
	hsp := dsp.Start("hotset")
	hot := ComputeHotSet(g, p.THot)
	hsp.SetInt("hot_items", int64(hot.Count()))
	hsp.End()

	gsp := dsp.Start("graph_generator")
	work := GraphGenerator(g, d.Seeds)
	gsp.SetInt("live_users", int64(work.LiveUsers()))
	gsp.SetInt("live_items", int64(work.LiveItems()))
	gsp.SetInt("live_edges", int64(work.LiveEdges()))
	gsp.End()

	groups := NearBicliqueExtractObserved(work, p, dsp, o)
	dsp.End()
	detectDone := time.Now()

	// Module 2: suspicious group screening (variant-dependent).
	ssp := run.Start("screening")
	ssp.Set("mode", d.Variant.String())
	switch d.Variant {
	case VariantUI:
		// No screening at all.
	case VariantI:
		groups = screenUsersOnly(g, groups, hot, p)
	default:
		groups = ScreenGroupsObserved(g, groups, hot, p, ssp, o)
	}
	ssp.SetInt("groups_out", int64(len(groups)))
	ssp.End()

	// Module 3: identification — score groups so the most suspicious come
	// first; per-node rankings are available via RankResult.
	isp := run.Start("identification")
	res := &detect.Result{Groups: groups}
	scoreGroups(g, res)
	isp.End()

	res.DetectElapsed = detectDone.Sub(start)
	res.ScreenElapsed = time.Since(detectDone)
	res.Elapsed = time.Since(start)
	run.SetInt("groups", int64(len(groups)))
	run.End()
	o.Counter("ricd.detections").Inc()
	o.Histogram("ricd.detect").Observe(res.Elapsed)
	o.Histogram("ricd.detect.detection").Observe(res.DetectElapsed)
	o.Histogram("ricd.detect.screening").Observe(res.ScreenElapsed)
	return res, nil
}

// screenUsersOnly is the RICD-I screening: user behavior check plus hot-item
// exclusion, without item behavior verification.
func screenUsersOnly(g *bipartite.Graph, groups []detect.Group, hot *HotSet, p Params) []detect.Group {
	var out []detect.Group
	for _, grp := range groups {
		users := UserBehaviorCheck(g, grp, hot, p)
		if len(users) < p.K1 {
			continue
		}
		var items []bipartite.NodeID
		for _, v := range grp.Items {
			if !hot.IsHot(v) {
				items = append(items, v)
			}
		}
		if len(items) < p.K2 {
			continue
		}
		out = append(out, detect.Group{Users: users, Items: items})
	}
	return out
}

// scoreGroups assigns every group the mean user risk score of its members
// and orders groups most-suspicious-first.
func scoreGroups(g *bipartite.Graph, res *detect.Result) {
	if len(res.Groups) == 0 {
		return
	}
	ranking := RankResult(g, res)
	userScore := make(map[bipartite.NodeID]float64, len(ranking.Users))
	for _, n := range ranking.Users {
		userScore[n.ID] = n.Score
	}
	for i := range res.Groups {
		grp := &res.Groups[i]
		var sum float64
		for _, u := range grp.Users {
			sum += userScore[u]
		}
		if len(grp.Users) > 0 {
			grp.Score = sum / float64(len(grp.Users))
		}
	}
	sortGroupsByScore(res.Groups)
}

func sortGroupsByScore(groups []detect.Group) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].Score > groups[j-1].Score; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
