package core

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestExplainGroupContainsEvidence(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	p := smallParams()
	d := &Detector{Params: p}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	hot := ComputeHotSet(ds.Graph, p.THot)
	text := ExplainGroup(ds.Graph, res.Groups[0], hot, p)

	for _, want := range []string{"density", "accounts (hot clicks", "items (group supporters"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
	// Every listed account line mentions targets; sanity-check one known
	// member appears.
	found := false
	for _, u := range res.Groups[0].Users {
		if strings.Contains(text, "user "+itoa(u)) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no group member listed in explanation")
	}
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestExplainGroupCapsListings(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	p := smallParams()
	d := &Detector{Params: p}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	hot := ComputeHotSet(ds.Graph, p.THot)
	text := ExplainGroup(ds.Graph, res.Groups[0], hot, p)
	if n := strings.Count(text, "  user "); n > 12 {
		t.Errorf("%d account lines, want ≤ 12", n)
	}
	if n := strings.Count(text, "  item "); n > 12 {
		t.Errorf("%d item lines, want ≤ 12", n)
	}
}
