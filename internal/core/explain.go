package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// ExplainGroup renders the human-readable evidence trail for one detected
// group — the artifact a business expert reviews before punishing accounts
// (desired property 4a). It shows the block statistics, each account's
// click pattern against the paper's behavioral characteristics, and each
// target's supporter profile versus its organic traffic.
func ExplainGroup(g *bipartite.Graph, grp detect.Group, hot *HotSet, p Params) string {
	var b strings.Builder
	st := ComputeGroupStats(g, grp)
	fmt.Fprintf(&b, "group: %d accounts × %d items, density %.2f, mean edge clicks %.1f, organic share %.0f%%\n",
		st.Users, st.Items, st.Density, st.MeanEdgeClicks, 100*st.OutsideShare)

	inItems := make(map[bipartite.NodeID]bool, len(grp.Items))
	for _, v := range grp.Items {
		inItems[v] = true
	}
	inUsers := make(map[bipartite.NodeID]bool, len(grp.Users))
	for _, u := range grp.Users {
		inUsers[u] = true
	}

	b.WriteString("accounts (hot clicks vs target clicks — Section IV-A characteristics):\n")
	users := append([]bipartite.NodeID(nil), grp.Users...)
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range limitNodes(users) {
		var hotClicks, hotEdges, tgtClicks, tgtEdges, outEdges int
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			switch {
			case hot.IsHot(v):
				hotClicks += int(w)
				hotEdges++
			case inItems[v]:
				tgtClicks += int(w)
				tgtEdges++
			default:
				outEdges++
			}
			return true
		})
		hotAvg := 0.0
		if hotEdges > 0 {
			hotAvg = float64(hotClicks) / float64(hotEdges)
		}
		tgtAvg := 0.0
		if tgtEdges > 0 {
			tgtAvg = float64(tgtClicks) / float64(tgtEdges)
		}
		fmt.Fprintf(&b, "  user %-8d hot: %d items ×%.1f | targets: %d items ×%.1f | other: %d items\n",
			u, hotEdges, hotAvg, tgtEdges, tgtAvg, outEdges)
	}

	b.WriteString("items (group supporters ≥ T_click vs organic clickers — Table V profile):\n")
	items := append([]bipartite.NodeID(nil), grp.Items...)
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, v := range limitNodes(items) {
		supporters, organic := 0, 0
		g.EachItemNeighbor(v, func(u bipartite.NodeID, w uint32) bool {
			if inUsers[u] && w >= p.TClick {
				supporters++
			} else if !inUsers[u] {
				organic++
			}
			return true
		})
		fmt.Fprintf(&b, "  item %-8d total %-6d supporters %-4d organic clickers %d\n",
			v, g.ItemStrength(v), supporters, organic)
	}
	return b.String()
}

// limitNodes caps explanation listings at 12 entries to keep reports
// reviewable; the ranking module orders full output.
func limitNodes(ids []bipartite.NodeID) []bipartite.NodeID {
	const maxEntries = 12
	if len(ids) > maxEntries {
		return ids[:maxEntries]
	}
	return ids
}
