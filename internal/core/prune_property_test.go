package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
)

// randomPruneGraph builds a random bipartite graph mixing a planted dense
// block with noise, for pruning property tests.
func randomPruneGraph(seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(60, 60)
	// Planted block with random size 6..14.
	n := 6 + rng.Intn(9)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.9 {
				b.Add(bipartite.NodeID(u), bipartite.NodeID(v), uint32(1+rng.Intn(15)))
			}
		}
	}
	for e := 0; e < 250; e++ {
		b.Add(bipartite.NodeID(rng.Intn(60)), bipartite.NodeID(rng.Intn(60)), uint32(1+rng.Intn(3)))
	}
	return b.Build()
}

// Property: the pruning fixpoint is independent of worker count — the
// batch-parallel rounds and the serial rounds land on the same (unique
// maximal) fixpoint.
func TestPropertyFixpointWorkerIndependent(t *testing.T) {
	f := func(seed int64) bool {
		g1 := randomPruneGraph(seed)
		g2 := g1.Clone()
		p1 := params(6, 6, 0.8)
		p1.Workers = 1
		p2 := p1
		p2.Workers = 8
		Prune(g1, p1)
		Prune(g2, p2)
		if g1.LiveUsers() != g2.LiveUsers() || g1.LiveItems() != g2.LiveItems() {
			return false
		}
		ok := true
		g1.EachLiveUser(func(u bipartite.NodeID) bool {
			if !g2.UserAlive(u) {
				ok = false
			}
			return ok
		})
		g1.EachLiveItem(func(v bipartite.NodeID) bool {
			if !g2.ItemAlive(v) {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: pruning is monotone in the edge set — adding clicks never
// causes a previously surviving vertex to be pruned.
func TestPropertyPruneMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
		g := randomPruneGraph(seed)
		p := params(6, 6, 0.9)

		before := g.Clone()
		Prune(before, p)

		// Add random extra edges on top of the same base graph.
		b := bipartite.NewBuilder(60, 60)
		for _, e := range g.Edges() {
			b.Add(e.U, e.V, e.Weight)
		}
		for e := 0; e < 60; e++ {
			b.Add(bipartite.NodeID(rng.Intn(60)), bipartite.NodeID(rng.Intn(60)), 1)
		}
		after := b.Build()
		Prune(after, p)

		ok := true
		before.EachLiveUser(func(u bipartite.NodeID) bool {
			if !after.UserAlive(u) {
				ok = false
			}
			return ok
		})
		before.EachLiveItem(func(v bipartite.NodeID) bool {
			if !after.ItemAlive(v) {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every extracted group is a subgraph whose vertices all satisfy
// the Definition 3 size bounds, and groups are vertex-disjoint.
func TestPropertyExtractedGroupsDisjointAndSized(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPruneGraph(seed)
		p := params(5, 5, 0.8)
		groups := NearBicliqueExtract(g, p)
		seenU := map[bipartite.NodeID]bool{}
		seenV := map[bipartite.NodeID]bool{}
		for _, grp := range groups {
			if len(grp.Users) < p.K1 || len(grp.Items) < p.K2 {
				return false
			}
			for _, u := range grp.Users {
				if seenU[u] {
					return false
				}
				seenU[u] = true
			}
			for _, v := range grp.Items {
				if seenV[v] {
					return false
				}
				seenV[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: screening never invents nodes — every screened user/item was in
// some candidate group, and screened groups satisfy the size bounds.
func TestPropertyScreeningSubsetOfCandidates(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPruneGraph(seed)
		p := params(5, 5, 0.8)
		p.THot = 200
		hot := ComputeHotSet(g, p.THot)
		work := g.Clone()
		candidates := NearBicliqueExtract(work, p)
		inCand := map[bipartite.NodeID]bool{}
		inCandV := map[bipartite.NodeID]bool{}
		for _, grp := range candidates {
			for _, u := range grp.Users {
				inCand[u] = true
			}
			for _, v := range grp.Items {
				inCandV[v] = true
			}
		}
		for _, grp := range ScreenGroups(g, candidates, hot, p) {
			if len(grp.Users) < p.K1 || len(grp.Items) < p.K2 {
				return false
			}
			for _, u := range grp.Users {
				if !inCand[u] {
					return false
				}
			}
			for _, v := range grp.Items {
				if !inCandV[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
