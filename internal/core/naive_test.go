package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestNaiveDetectorToyScenario(t *testing.T) {
	// Hot item 0 (huge traffic), target item 1 hammered by users 0-4 who
	// also touch the hot item, and innocent item 2 clicked by user 5 who
	// never visits hot items.
	b := bipartite.NewBuilder(100, 3)
	for u := bipartite.NodeID(10); u < 100; u++ {
		b.Add(u, 0, 20)
	}
	for u := bipartite.NodeID(0); u < 5; u++ {
		b.Add(u, 0, 30) // very hot-engaged accounts
		b.Add(u, 1, 15) // hammer the target
	}
	b.Add(5, 2, 15)
	g := b.Build()

	p := DefaultParams()
	p.THot = 1000
	p.TRisk = 100
	d := &NaiveDetector{Params: p}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	items := res.Items()
	users := res.Users()
	wantItem := false
	for _, v := range items {
		if v == 1 {
			wantItem = true
		}
		if v == 0 {
			t.Error("hot item flagged by naive detector")
		}
		if v == 2 {
			t.Error("item clicked by hot-oblivious user flagged")
		}
	}
	if !wantItem {
		t.Errorf("target item 1 not flagged; items = %v", items)
	}
	gotUsers := map[bipartite.NodeID]bool{}
	for _, u := range users {
		gotUsers[u] = true
	}
	for u := bipartite.NodeID(0); u < 5; u++ {
		if !gotUsers[u] {
			t.Errorf("attacker %d not flagged", u)
		}
	}
	if gotUsers[5] {
		t.Error("innocent user 5 flagged")
	}
}

func TestNaiveDetectorThresholdControlsOutput(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	run := func(risk float64) int {
		p := smallParams()
		p.TRisk = risk
		d := &NaiveDetector{Params: p}
		res, err := d.Detect(ds.Graph)
		if err != nil {
			t.Fatal(err)
		}
		return res.NumNodes()
	}
	low := run(10)
	high := run(10000)
	if low < high {
		t.Errorf("raising T_risk should shrink output: low=%d high=%d", low, high)
	}
}

func TestNaiveDetectorOnSyntheticAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	p := smallParams()
	d := &NaiveDetector{Params: p}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("Naive small: %v", ev)
	// The naive detector must find a reasonable share of the attack but
	// with precision well below RICD's (it judges nodes independently).
	if ev.Recall < 0.3 {
		t.Errorf("naive recall = %v, want ≥ 0.3", ev.Recall)
	}
}

func TestNaiveDetectorValidatesParams(t *testing.T) {
	d := &NaiveDetector{}
	if _, err := d.Detect(bipartite.NewGraph(1, 1)); err == nil {
		t.Error("expected validation error for zero params")
	}
}

func TestNaiveDetectorName(t *testing.T) {
	d := &NaiveDetector{}
	if d.Name() != "Naive" {
		t.Errorf("Name = %q", d.Name())
	}
}
