package core

import "math"

// This file quantifies desired property (3) — camouflage restriction. Every
// (α,k₁,k₂)-extension biclique contains a biclique (Definition 3), so an
// attacker who wants to stay invisible to RICD must avoid creating any
// K_{k₁,k₂} biclique among its fake edges. The maximum number of edges an
// m×n bipartite graph can carry without containing K_{s,t} is the
// Zarankiewicz number z(m,n;s,t); Kővári–Sós–Turán (and Füredi's refinement)
// give the classical upper bound implemented here.

// CamouflageBound returns the Kővári–Sós–Turán upper bound on the number of
// fake click edges an attacker controlling m accounts can add across n items
// without forming a K_{s,t} biclique (s on the account side, t on the item
// side):
//
//	z(m, n; s, t) ≤ (s−1)^(1/t) · (n−t+1) · m^(1−1/t) + (t−1) · m
//
// For RICD with parameters k₁, k₂ call CamouflageBound(m, n, k₁, k₂): any
// attacker adding more edges than this bound is guaranteed to create an
// extractable biclique core and be caught.
func CamouflageBound(m, n, s, t int) float64 {
	if m <= 0 || n <= 0 || s <= 0 || t <= 0 {
		return 0
	}
	if s > m || t > n {
		// No K_{s,t} fits at all: every edge is safe.
		return float64(m) * float64(n)
	}
	fm, fn := float64(m), float64(n)
	fs, ft := float64(s), float64(t)
	return math.Pow(fs-1, 1/ft)*(fn-ft+1)*math.Pow(fm, 1-1/ft) + (ft-1)*fm
}

// ContainsBiclique reports whether the 0/1 adjacency matrix adj (m rows =
// accounts, n cols = items) contains a complete K_{s,t} sub-biclique. It is
// exponential and intended only for validating CamouflageBound on small
// instances in tests.
func ContainsBiclique(adj [][]bool, s, t int) bool {
	m := len(adj)
	if m == 0 || s <= 0 || t <= 0 || s > m {
		return false
	}
	n := len(adj[0])
	if t > n {
		return false
	}
	rows := make([]int, 0, s)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(rows) == s {
			// Count columns common to all chosen rows.
			common := 0
			for c := 0; c < n; c++ {
				all := true
				for _, r := range rows {
					if !adj[r][c] {
						all = false
						break
					}
				}
				if all {
					common++
					if common >= t {
						return true
					}
				}
			}
			return false
		}
		for r := start; r < m; r++ {
			rows = append(rows, r)
			if rec(r + 1) {
				return true
			}
			rows = rows[:len(rows)-1]
		}
		return false
	}
	return rec(0)
}
