package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements the component-sharded parallel form of Algorithm 3.
//
// The decomposition is sound because pruning removes VERTICES, never edges:
// once the cheap CorePruning fixpoint has converged globally, the surviving
// graph splits into connected components that share no edge, so no removal
// inside one component can ever change a degree or common-neighbor count in
// another. The union of per-component (α,k₁,k₂) fixpoints therefore equals
// the global fixpoint, and each component can be pruned, extracted and
// screened on its own goroutine. Each shard is compacted first
// (bipartite.CompactComponent), which shrinks the dense common-neighbor
// counters from whole-graph size to component size — the dominant allocation
// of the square rounds.
//
// Determinism/merge contract: shard outputs are merged in a canonical order
// that reproduces the serial path exactly. ExtractGroups walks
// ConnectedComponents of the whole residual — discovery in ascending
// minimum-user-ID order, then a stable sort by component size descending.
// Shard groups are exactly those residual components, so replaying the same
// two-key stable sort over the union of shard outputs yields the serial
// sequence independent of goroutine scheduling. Compaction preserves
// verdicts too: local IDs are assigned in ascending original-ID order, so
// every ID-ordered traversal (and the degree-then-ID candidate order of
// sortByDegree) coincides with the original graph's.
//
// Verdict caching (DESIGN.md §15): with p.Cache set, each shard hashes its
// freshly compacted CSR (componentFingerprint) and consults the cache
// before pruning. A hit replays the cached removals/groups through the
// shard's local→original maps; a miss detects live and stores the local
// outcome. Components intersecting p.CacheTouched (the sweep delta's dirty
// users) skip the cache entirely — they are known-churned. With opt.hot
// set, the Fig 5/Fig 6 screening passes and the survivor repartition also
// run inside the shard against the compact graph, which is sound because
// screening only ever reads in-group edges (all present in the compact
// graph with identical weights) and survivors of different shards can share
// no edge (see screenComponentGroups).

// maxShardSpans caps the per-shard child spans recorded under the prune
// span, keeping traces bounded when the residual shatters into thousands of
// tiny components.
const maxShardSpans = 48

// shardOptions selects what shardedPruneExtract produces beyond the pruned
// residual.
type shardOptions struct {
	// collect extracts candidate groups (the extraction callers); false
	// prunes only (PruneCtx).
	collect bool
	// hot, when non-nil in collect mode with p.Cache set, additionally runs
	// the VariantFull screening passes per shard so cached components skip
	// screening too. The HotSet must be the marketplace-wide one computed
	// on the full input graph.
	hot *HotSet
}

// extractOutcome is the collect-mode output of shardedPruneExtract.
type extractOutcome struct {
	raw []detect.Group // extracted candidates, serial order
	// screened/screenedOK carry the per-shard screening output when it ran
	// (cache active, opt.hot set, no audit sink); when screenedOK is false
	// the caller must screen raw globally as usual.
	screened   []detect.Group
	screenedOK bool
	cacheHits  int
	cacheMiss  int
}

// shardResult is one component's contribution to the merged outcome.
type shardResult struct {
	removedU []bipartite.NodeID // original IDs pruned inside the shard
	removedI []bipartite.NodeID
	groups   []detect.Group // extracted groups in original IDs (collect mode)
	screened []detect.Group // per-shard screened groups (screening mode)
	rounds   int            // local fixpoint rounds
	elapsed  time.Duration
	done     bool  // shard ran (possibly cut short by ctx with err set)
	err      error // ctx error observed mid-shard
	panicked any   // recovered panic, rethrown on the caller's goroutine

	cacheHit   bool // verdict replayed from the cache
	cacheMiss  bool // cache consulted, no entry (stored after live run)
	cacheFault bool // poisoned lookup (fault site core.cache), ran live
	evicted    int  // entries evicted by this shard's store
}

// shardedPruneExtract runs Algorithm 3 sharded by connected component:
// global CorePruning fixpoint → component split → per-shard compaction +
// local Core/Square fixpoint (+ group extraction and optionally screening
// when opt says so) on a bounded worker pool → deterministic merge. g is
// left at the same residual the serial path produces; the returned stats
// and groups are identical to the serial path's (see shardequiv_test.go).
//
// Cancellation: ctx is checked at entry (fault-injection site
// "core.prune.round", matching the serial loop), before each shard
// ("core.shard"), and between pruning rounds inside shards. Completed
// shards' removals are applied even when later shards were skipped — both
// pruning conditions are monotone, so a partially sharded residual is a
// sound over-approximation, exactly like a serial mid-prune graph. On
// cancellation no groups are returned.
func shardedPruneExtract(ctx context.Context, g *bipartite.Graph, p Params,
	sp *obs.Span, o *obs.Observer, opt shardOptions) (PruneStats, extractOutcome, error) {

	var st PruneStats
	var outc extractOutcome
	a := newAuditor(o)
	cache := p.Cache
	if !opt.collect || a != nil {
		// The cache replays verdicts without re-running the per-decision
		// passes, so it cannot re-emit the audit trail's removal and
		// screening events; with a sink attached the trail's completeness
		// wins and the cache is bypassed. Prune-only callers don't produce
		// groups, so caching them is not worth an entry.
		cache = nil
	}
	screening := opt.hot != nil && cache != nil
	hot := opt.hot
	if !screening {
		hot = nil
	}
	if cache != nil {
		cache.BeginEpoch()
	}
	faultinject.Hit("core.prune.round")
	if err := ctx.Err(); err != nil {
		return st, outc, err
	}
	st.Rounds = 1
	csp := sp.Start("global_core")
	removed := corePruneFixpoint(g, p, a, 1)
	st.UsersRemoved = removed.UsersRemoved
	st.ItemsRemoved = removed.ItemsRemoved
	csp.SetInt("users_removed", int64(removed.UsersRemoved))
	csp.SetInt("items_removed", int64(removed.ItemsRemoved))
	csp.End()

	plan := sp.Start("shard_plan")
	comps := bipartite.ConnectedComponents(g)
	plan.SetInt("shards", int64(len(comps)))
	plan.End()
	o.Counter("core.shards").Add(int64(len(comps)))
	if len(comps) == 0 {
		outc.screenedOK = screening
		return st, outc, nil
	}

	// Worker budget: one pool worker per shard up to p.workers(); when there
	// are fewer shards than workers, the spare workers parallelize the
	// square rounds INSIDE the shards instead, extra share to the biggest
	// ones (comps is sorted by size descending).
	workers := p.workers()
	inner := make([]int, len(comps))
	base, rem := 1, 0
	if len(comps) < workers {
		base, rem = workers/len(comps), workers%len(comps)
	}
	for i := range inner {
		inner[i] = base
		if i < rem {
			inner[i]++
		}
	}
	pool := workers
	if pool > len(comps) {
		pool = len(comps)
	}

	outs := make([]shardResult, len(comps))
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) || ctx.Err() != nil {
					return
				}
				var ssp *obs.Span
				if i < maxShardSpans {
					ssp = sp.Start("shard")
				}
				outs[i] = runShard(ctx, g, comps[i], p, inner[i], ssp, o, a, i+1,
					opt.collect, cache, hot)
			}
		}()
	}
	wg.Wait()

	// Merge. Panics recovered inside shard workers are rethrown here, on
	// the caller's goroutine, so the serial contract (a stage bug surfaces
	// as a panic through PruneCtx / the DetectContext stage isolation)
	// holds unchanged.
	maxRounds := 0
	evicted, faults := 0, 0
	var firstErr error
	for i := range outs {
		out := &outs[i]
		if out.panicked != nil {
			panic(out.panicked)
		}
		if !out.done {
			continue
		}
		for _, u := range out.removedU {
			g.RemoveUser(u)
		}
		for _, v := range out.removedI {
			g.RemoveItem(v)
		}
		st.UsersRemoved += len(out.removedU)
		st.ItemsRemoved += len(out.removedI)
		if out.rounds > maxRounds {
			maxRounds = out.rounds
		}
		if out.err != nil && firstErr == nil {
			firstErr = out.err
		}
		if out.cacheHit {
			outc.cacheHits++
		}
		if out.cacheMiss {
			outc.cacheMiss++
		}
		if out.cacheFault {
			faults++
		}
		evicted += out.evicted
		o.Histogram("core.shard").Observe(out.elapsed)
	}
	// Serial round r removes each component's round-r square victims, and a
	// converged component stays converged, so the serial round count is the
	// max over components of their local fixpoint rounds.
	if maxRounds > st.Rounds {
		st.Rounds = maxRounds
	}
	if cache != nil {
		o.Counter("core.cache.hit").Add(int64(outc.cacheHits))
		o.Counter("core.cache.miss").Add(int64(outc.cacheMiss))
		o.Counter("core.cache.evict").Add(int64(evicted))
		o.Counter("core.cache.fault").Add(int64(faults))
		o.Gauge("core.cache.bytes").Set(cache.Bytes())
		sp.SetInt("cache_hits", int64(outc.cacheHits))
		sp.SetInt("cache_misses", int64(outc.cacheMiss))
	}
	if err := ctx.Err(); err != nil {
		return st, extractOutcome{}, err
	}
	if firstErr != nil {
		return st, extractOutcome{}, firstErr
	}

	if !opt.collect {
		return st, outc, nil
	}
	for i := range outs {
		outc.raw = append(outc.raw, outs[i].groups...)
	}
	sortGroupsCanonical(outc.raw)
	if screening {
		for i := range outs {
			outc.screened = append(outc.screened, outs[i].screened...)
		}
		// The global repartition's output order is the same
		// ConnectedComponents order the extraction merge reproduces
		// (discovery ascending by minimum user, then stable size-descending),
		// so the identical two-key sort canonicalizes the screened merge.
		sortGroupsCanonical(outc.screened)
		outc.screenedOK = true
	}
	return st, outc, nil
}

// sortGroupsCanonical orders groups the way the serial
// ExtractGroups/repartition paths do: ascending minimum user ID (Users is
// sorted, so Users[0] is the minimum), then a stable sort by group size
// descending.
func sortGroupsCanonical(groups []detect.Group) {
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].Users[0] < groups[j].Users[0] })
	sort.SliceStable(groups, func(i, j int) bool {
		return len(groups[i].Users)+len(groups[i].Items) > len(groups[j].Users)+len(groups[j].Items)
	})
}

// runShard prunes one compacted component to its local fixpoint and, in
// collect mode, extracts its candidate groups, all in original IDs. Each
// shard's compact graph carries its own dirty frontier (attached inside
// pruneFixpoint), sized to the component rather than the whole graph. A
// panic is recovered into the result for deterministic rethrow by the
// merger.
//
// With cache non-nil the shard consults/feeds the verdict cache (unless the
// component intersects p.CacheTouched); with hot non-nil it additionally
// screens its own groups against the compact graph. The two always arrive
// together with hot ⊆ cache-enabled (shardedPruneExtract gates them).
//
// Audit events emitted inside the shard carry the 1-based shard index and
// original-graph IDs (via the auditor's local→original maps); rounds are
// shard-local. A shard.done boundary event closes each completed shard.
func runShard(ctx context.Context, g *bipartite.Graph, comp bipartite.Component,
	p Params, innerWorkers int, ssp *obs.Span, o *obs.Observer, a *auditor,
	shardIdx int, collect bool, cache *VerdictCache, hot *HotSet) (out shardResult) {

	start := time.Now()
	defer func() {
		out.elapsed = time.Since(start)
		if r := recover(); r != nil {
			out.panicked = r
			out.done = false
		}
		ssp.SetInt("users", int64(len(comp.Users)))
		ssp.SetInt("items", int64(len(comp.Items)))
		ssp.SetInt("rounds", int64(out.rounds))
		ssp.SetInt("removed", int64(len(out.removedU)+len(out.removedI)))
		ssp.End()
	}()

	faultinject.Hit("core.shard")
	if err := ctx.Err(); err != nil {
		out.err = err
		return
	}

	cg, userOf, itemOf := bipartite.CompactComponent(g, comp)
	var localHot []bool
	if hot != nil {
		localHot = make([]bool, len(itemOf))
		for lv, v := range itemOf {
			localHot[lv] = hot.IsHot(v)
		}
	}
	// Components the sweep's delta touched are known-churned: skip both the
	// lookup (it would miss) and the store (the entry would be invalidated
	// by the very next click). The fingerprint stays the correctness
	// authority for every component that IS consulted.
	useCache := cache != nil && !intersectsSorted(comp.Users, p.CacheTouched)
	var fp fingerprint
	if useCache {
		fp = componentFingerprint(cg, localHot, p)
		if ferr := faultinject.ErrAt("core.cache"); ferr != nil {
			// Poisoned lookup: fall back to live detection (and restore the
			// entry below); the sweep's verdicts must not depend on cache
			// health.
			out.cacheFault = true
			cache.noteFault()
		} else if e, ok := cache.lookup(fp); ok && e.screenedOK == (hot != nil) {
			out.rounds = e.rounds
			out.removedU = mapIDs(e.removedU, userOf)
			out.removedI = mapIDs(e.removedI, itemOf)
			if collect {
				out.groups = translateGroups(e.raw, userOf, itemOf)
				if hot != nil {
					out.screened = translateGroups(e.screened, userOf, itemOf)
				}
			}
			out.done = true
			out.cacheHit = true
			ssp.Set("cache", "hit")
			return
		} else {
			out.cacheMiss = true
		}
	}

	lp := p
	lp.Workers = innerWorkers
	lst, err := pruneFixpoint(ctx, cg, lp, ssp, o, a.forShard(shardIdx, userOf, itemOf))
	out.rounds = lst.Rounds
	var locRemU, locRemI []bipartite.NodeID
	for lu := 0; lu < cg.NumUsers(); lu++ {
		if !cg.UserAlive(bipartite.NodeID(lu)) {
			out.removedU = append(out.removedU, userOf[lu])
			if useCache {
				locRemU = append(locRemU, bipartite.NodeID(lu))
			}
		}
	}
	for lv := 0; lv < cg.NumItems(); lv++ {
		if !cg.ItemAlive(bipartite.NodeID(lv)) {
			out.removedI = append(out.removedI, itemOf[lv])
			if useCache {
				locRemI = append(locRemI, bipartite.NodeID(lv))
			}
		}
	}
	out.done = true
	if err != nil {
		out.err = err
		return
	}
	a.shardDone(shardIdx, len(comp.Users), len(comp.Items), out.rounds,
		len(out.removedU)+len(out.removedI))
	if !collect {
		return
	}
	var locals []localGroup
	for _, c := range bipartite.ConnectedComponents(cg) {
		if len(c.Users) >= p.K1 && len(c.Items) >= p.K2 {
			locals = append(locals, localGroup{Users: c.Users, Items: c.Items})
		}
	}
	out.groups = translateGroups(locals, userOf, itemOf)
	var screenedLocals []localGroup
	if hot != nil {
		lh := &HotSet{hot: localHot, tHot: p.THot}
		screenedLocals = screenComponentGroups(cg, locals, lh, p)
		out.screened = translateGroups(screenedLocals, userOf, itemOf)
	}
	if useCache {
		out.evicted = cache.store(fp, &cacheEntry{
			rounds:     out.rounds,
			removedU:   locRemU,
			removedI:   locRemI,
			raw:        locals,
			screened:   screenedLocals,
			screenedOK: hot != nil,
		})
	}
	return
}

// screenComponentGroups runs the Fig 5/Fig 6 screening passes and the
// survivor repartition for one shard's candidate groups, entirely against
// the compact component graph. This matches the global
// ScreenGroupsCtx-over-the-original-graph output exactly:
//
//   - every read the behavior checks perform is filtered to in-group
//     edges, and an in-group edge (both endpoints in the component) exists
//     in the compact graph with an identical weight;
//   - hotness comes in through the component-local hot bits, mapped from
//     the marketplace-wide HotSet;
//   - the global repartition can never merge survivors of different
//     extraction components: pruning removes vertices, not edges, so an
//     original-graph edge between two surviving vertices also survives in
//     the residual, putting its endpoints in the same residual component —
//     i.e. the same raw group. Cross-group edges therefore cannot exist,
//     and repartitioning each raw group on its own is the identity
//     decomposition of the global repartition.
//
// The no-drop fast path is the satellite fix for recomputing
// ConnectedComponents per screening pass: when screening kept every member
// of a raw group, that group is still exactly the connected residual
// component extraction found, so the component split is reused instead of
// re-deriving it from an induced subgraph.
func screenComponentGroups(cg *bipartite.Graph, locals []localGroup, lh *HotSet, p Params) []localGroup {
	var out []localGroup
	for _, grp := range locals {
		// Same fault-injection surface as the global screening loops: a
		// fault armed on "core.screen.group" fires here too (a panic is
		// recovered into the shard result and rethrown at merge, exactly
		// like a pruning-stage panic).
		faultinject.Hit("core.screen.group")
		users, items := screenOne(cg, detect.Group{Users: grp.Users, Items: grp.Items}, lh, p, nil, 0)
		if len(users) == 0 || len(items) == 0 {
			continue
		}
		if len(users) == len(grp.Users) && len(items) == len(grp.Items) {
			out = append(out, localGroup{Users: users, Items: items})
			continue
		}
		sub, err := bipartite.InducedSubgraph(cg, users, items)
		if err != nil {
			// IDs came from cg itself; out-of-range is impossible.
			panic("core: screening produced invalid IDs: " + err.Error())
		}
		for _, c := range bipartite.ConnectedComponents(sub) {
			if len(c.Users) >= p.K1 && len(c.Items) >= p.K2 {
				out = append(out, localGroup{Users: c.Users, Items: c.Items})
			}
		}
	}
	return out
}

// translateGroups maps component-local groups back to original IDs through
// the shard's userOf/itemOf tables, allocating fresh slices so cache
// entries stay immutable across hits.
func translateGroups(locals []localGroup, userOf, itemOf []bipartite.NodeID) []detect.Group {
	if len(locals) == 0 {
		return nil
	}
	out := make([]detect.Group, len(locals))
	for i, l := range locals {
		out[i] = detect.Group{Users: mapIDs(l.Users, userOf), Items: mapIDs(l.Items, itemOf)}
	}
	return out
}

// intersectsSorted reports whether the two ascending NodeID slices share an
// element (two-pointer walk; both are sorted — Component.Users by
// construction, CacheTouched by the stream sweep).
func intersectsSorted(a, b []bipartite.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// mapIDs translates sorted local IDs back to original IDs; the mapping is
// strictly increasing, so the output stays sorted.
func mapIDs(local, of []bipartite.NodeID) []bipartite.NodeID {
	out := make([]bipartite.NodeID, len(local))
	for i, id := range local {
		out[i] = of[id]
	}
	return out
}
