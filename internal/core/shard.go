package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements the component-sharded parallel form of Algorithm 3.
//
// The decomposition is sound because pruning removes VERTICES, never edges:
// once the cheap CorePruning fixpoint has converged globally, the surviving
// graph splits into connected components that share no edge, so no removal
// inside one component can ever change a degree or common-neighbor count in
// another. The union of per-component (α,k₁,k₂) fixpoints therefore equals
// the global fixpoint, and each component can be pruned, extracted and
// screened on its own goroutine. Each shard is compacted first
// (bipartite.CompactComponent), which shrinks the dense common-neighbor
// counters from whole-graph size to component size — the dominant allocation
// of the square rounds.
//
// Determinism/merge contract: shard outputs are merged in a canonical order
// that reproduces the serial path exactly. ExtractGroups walks
// ConnectedComponents of the whole residual — discovery in ascending
// minimum-user-ID order, then a stable sort by component size descending.
// Shard groups are exactly those residual components, so replaying the same
// two-key stable sort over the union of shard outputs yields the serial
// sequence independent of goroutine scheduling. Compaction preserves
// verdicts too: local IDs are assigned in ascending original-ID order, so
// every ID-ordered traversal (and the degree-then-ID candidate order of
// sortByDegree) coincides with the original graph's.

// maxShardSpans caps the per-shard child spans recorded under the prune
// span, keeping traces bounded when the residual shatters into thousands of
// tiny components.
const maxShardSpans = 48

// shardResult is one component's contribution to the merged outcome.
type shardResult struct {
	removedU []bipartite.NodeID // original IDs pruned inside the shard
	removedI []bipartite.NodeID
	groups   []detect.Group // extracted groups in original IDs (collect mode)
	rounds   int            // local fixpoint rounds
	elapsed  time.Duration
	done     bool  // shard ran (possibly cut short by ctx with err set)
	err      error // ctx error observed mid-shard
	panicked any   // recovered panic, rethrown on the caller's goroutine
}

// shardedPruneExtract runs Algorithm 3 sharded by connected component:
// global CorePruning fixpoint → component split → per-shard compaction +
// local Core/Square fixpoint (+ group extraction when collect is true) on a
// bounded worker pool → deterministic merge. g is left at the same residual
// the serial path produces; the returned stats and groups are identical to
// the serial path's (see shardequiv_test.go).
//
// Cancellation: ctx is checked at entry (fault-injection site
// "core.prune.round", matching the serial loop), before each shard
// ("core.shard"), and between pruning rounds inside shards. Completed
// shards' removals are applied even when later shards were skipped — both
// pruning conditions are monotone, so a partially sharded residual is a
// sound over-approximation, exactly like a serial mid-prune graph. On
// cancellation no groups are returned.
func shardedPruneExtract(ctx context.Context, g *bipartite.Graph, p Params,
	sp *obs.Span, o *obs.Observer, collect bool) (PruneStats, []detect.Group, error) {

	var st PruneStats
	a := newAuditor(o)
	faultinject.Hit("core.prune.round")
	if err := ctx.Err(); err != nil {
		return st, nil, err
	}
	st.Rounds = 1
	csp := sp.Start("global_core")
	removed := corePruneFixpoint(g, p, a, 1)
	st.UsersRemoved = removed.UsersRemoved
	st.ItemsRemoved = removed.ItemsRemoved
	csp.SetInt("users_removed", int64(removed.UsersRemoved))
	csp.SetInt("items_removed", int64(removed.ItemsRemoved))
	csp.End()

	plan := sp.Start("shard_plan")
	comps := bipartite.ConnectedComponents(g)
	plan.SetInt("shards", int64(len(comps)))
	plan.End()
	o.Counter("core.shards").Add(int64(len(comps)))
	if len(comps) == 0 {
		return st, nil, nil
	}

	// Worker budget: one pool worker per shard up to p.workers(); when there
	// are fewer shards than workers, the spare workers parallelize the
	// square rounds INSIDE the shards instead, extra share to the biggest
	// ones (comps is sorted by size descending).
	workers := p.workers()
	inner := make([]int, len(comps))
	base, rem := 1, 0
	if len(comps) < workers {
		base, rem = workers/len(comps), workers%len(comps)
	}
	for i := range inner {
		inner[i] = base
		if i < rem {
			inner[i]++
		}
	}
	pool := workers
	if pool > len(comps) {
		pool = len(comps)
	}

	outs := make([]shardResult, len(comps))
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) || ctx.Err() != nil {
					return
				}
				var ssp *obs.Span
				if i < maxShardSpans {
					ssp = sp.Start("shard")
				}
				outs[i] = runShard(ctx, g, comps[i], p, inner[i], ssp, o, a, i+1, collect)
			}
		}()
	}
	wg.Wait()

	// Merge. Panics recovered inside shard workers are rethrown here, on
	// the caller's goroutine, so the serial contract (a stage bug surfaces
	// as a panic through PruneCtx / the DetectContext stage isolation)
	// holds unchanged.
	maxRounds := 0
	var firstErr error
	for i := range outs {
		out := &outs[i]
		if out.panicked != nil {
			panic(out.panicked)
		}
		if !out.done {
			continue
		}
		for _, u := range out.removedU {
			g.RemoveUser(u)
		}
		for _, v := range out.removedI {
			g.RemoveItem(v)
		}
		st.UsersRemoved += len(out.removedU)
		st.ItemsRemoved += len(out.removedI)
		if out.rounds > maxRounds {
			maxRounds = out.rounds
		}
		if out.err != nil && firstErr == nil {
			firstErr = out.err
		}
		o.Histogram("core.shard").Observe(out.elapsed)
	}
	// Serial round r removes each component's round-r square victims, and a
	// converged component stays converged, so the serial round count is the
	// max over components of their local fixpoint rounds.
	if maxRounds > st.Rounds {
		st.Rounds = maxRounds
	}
	if err := ctx.Err(); err != nil {
		return st, nil, err
	}
	if firstErr != nil {
		return st, nil, firstErr
	}

	if !collect {
		return st, nil, nil
	}
	var groups []detect.Group
	for i := range outs {
		groups = append(groups, outs[i].groups...)
	}
	// Canonical merge order = the serial ExtractGroups order: ascending
	// minimum user ID (Users is sorted, so Users[0] is the minimum), then a
	// stable sort by group size descending.
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].Users[0] < groups[j].Users[0] })
	sort.SliceStable(groups, func(i, j int) bool {
		return len(groups[i].Users)+len(groups[i].Items) > len(groups[j].Users)+len(groups[j].Items)
	})
	return st, groups, nil
}

// runShard prunes one compacted component to its local fixpoint and, in
// collect mode, extracts its candidate groups, all in original IDs. Each
// shard's compact graph carries its own dirty frontier (attached inside
// pruneFixpoint), sized to the component rather than the whole graph. A
// panic is recovered into the result for deterministic rethrow by the
// merger.
//
// Audit events emitted inside the shard carry the 1-based shard index and
// original-graph IDs (via the auditor's local→original maps); rounds are
// shard-local. A shard.done boundary event closes each completed shard.
func runShard(ctx context.Context, g *bipartite.Graph, comp bipartite.Component,
	p Params, innerWorkers int, ssp *obs.Span, o *obs.Observer, a *auditor,
	shardIdx int, collect bool) (out shardResult) {

	start := time.Now()
	defer func() {
		out.elapsed = time.Since(start)
		if r := recover(); r != nil {
			out.panicked = r
			out.done = false
		}
		ssp.SetInt("users", int64(len(comp.Users)))
		ssp.SetInt("items", int64(len(comp.Items)))
		ssp.SetInt("rounds", int64(out.rounds))
		ssp.SetInt("removed", int64(len(out.removedU)+len(out.removedI)))
		ssp.End()
	}()

	faultinject.Hit("core.shard")
	if err := ctx.Err(); err != nil {
		out.err = err
		return
	}

	cg, userOf, itemOf := bipartite.CompactComponent(g, comp)
	lp := p
	lp.Workers = innerWorkers
	lst, err := pruneFixpoint(ctx, cg, lp, ssp, o, a.forShard(shardIdx, userOf, itemOf))
	out.rounds = lst.Rounds
	for lu := 0; lu < cg.NumUsers(); lu++ {
		if !cg.UserAlive(bipartite.NodeID(lu)) {
			out.removedU = append(out.removedU, userOf[lu])
		}
	}
	for lv := 0; lv < cg.NumItems(); lv++ {
		if !cg.ItemAlive(bipartite.NodeID(lv)) {
			out.removedI = append(out.removedI, itemOf[lv])
		}
	}
	out.done = true
	if err != nil {
		out.err = err
		return
	}
	a.shardDone(shardIdx, len(comp.Users), len(comp.Items), out.rounds,
		len(out.removedU)+len(out.removedI))
	if collect {
		for _, c := range bipartite.ConnectedComponents(cg) {
			if len(c.Users) >= p.K1 && len(c.Items) >= p.K2 {
				out.groups = append(out.groups, detect.Group{
					Users: mapIDs(c.Users, userOf),
					Items: mapIDs(c.Items, itemOf),
				})
			}
		}
	}
	return
}

// mapIDs translates sorted local IDs back to original IDs; the mapping is
// strictly increasing, so the output stays sorted.
func mapIDs(local, of []bipartite.NodeID) []bipartite.NodeID {
	out := make([]bipartite.NodeID, len(local))
	for i, id := range local {
		out[i] = of[id]
	}
	return out
}
