package core

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestPropertyFrontierMatchesRescanOracle is the frontier-vs-oracle
// testing/quick property: on random graphs, the dirty-frontier fixpoint
// (the default) must leave exactly the residual, stats (Rounds included),
// and removal epoch of the full-rescan reference loop. Both run NoShard so
// the property isolates the frontier from the sharding equivalence, which
// has its own harness.
func TestPropertyFrontierMatchesRescanOracle(t *testing.T) {
	f := func(seed int64) bool {
		g1 := randomPruneGraph(seed)
		g2 := g1.Clone()

		rescan := params(6, 6, 0.8)
		rescan.NoShard = true
		rescan.NoFrontier = true
		front := params(6, 6, 0.8)
		front.NoShard = true

		stR := Prune(g1, rescan)
		stF := Prune(g2, front)
		if stR != stF {
			t.Logf("seed %d: frontier stats %+v, rescan %+v", seed, stF, stR)
			return false
		}
		if !reflect.DeepEqual(g1.LiveUserIDs(), g2.LiveUserIDs()) ||
			!reflect.DeepEqual(g1.LiveItemIDs(), g2.LiveItemIDs()) {
			t.Logf("seed %d: residuals diverge", seed)
			return false
		}
		if g1.RemovalEpoch() != g2.RemovalEpoch() {
			t.Logf("seed %d: removal epochs diverge: %d vs %d",
				seed, g2.RemovalEpoch(), g1.RemovalEpoch())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// ladderWithBiclique builds a rounds-heavy ladder (synth.LadderGraph shape)
// plus a disjoint stable n×n biclique appended after the ladder IDs. Under
// the ladder thresholds the ladder peels one layer per round from each end
// while the biclique survives untouched — and sits arbitrarily many hops
// from every removal.
func ladderWithBiclique(layers, m, k, n int) (*bipartite.Graph, int, int) {
	uOff, vOff := layers*m, layers*k
	b := bipartite.NewBuilder(uOff+n, vOff+n)
	for j := 0; j < layers; j++ {
		for u := 0; u < m; u++ {
			uid := bipartite.NodeID(j*m + u)
			for v := 0; v < k; v++ {
				b.Add(uid, bipartite.NodeID(j*k+v), 1)
				if j+1 < layers {
					b.Add(uid, bipartite.NodeID((j+1)*k+v), 1)
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			b.Add(bipartite.NodeID(uOff+u), bipartite.NodeID(vOff+v), 1)
		}
	}
	return b.Build(), uOff, vOff
}

// TestFrontierSkipsVerticesFarFromRemovals pins the point of the frontier:
// a vertex more than two hops from every removal is never re-evaluated.
// The ladder component needs several rounds of removals; the disjoint
// biclique must be square-evaluated exactly once (round 1), where the
// rescan loop re-evaluates it every round.
func TestFrontierSkipsVerticesFarFromRemovals(t *testing.T) {
	const layers, m, k = 8, 6, 6
	k1, k2, alpha := synth.LadderParams(m, k)
	n := k1 // an n×n biclique with n = k1 satisfies both square conditions

	type key struct {
		side bipartite.Side
		id   bipartite.NodeID
	}
	countEvals := func(p Params) (PruneStats, map[key]int, *bipartite.Graph) {
		g, _, _ := ladderWithBiclique(layers, m, k, n)
		evals := map[key]int{}
		testSquareEvalHook = func(side bipartite.Side, id bipartite.NodeID) {
			evals[key{side, id}]++
		}
		defer func() { testSquareEvalHook = nil }()
		st := Prune(g, p)
		return st, evals, g
	}

	p := params(k1, k2, alpha)
	p.NoShard = true
	p.Workers = 1 // the eval hook is not synchronized
	st, evals, g := countEvals(p)

	if st.Rounds < 3 {
		t.Fatalf("ladder fixpoint took %d rounds, want ≥ 3 (workload is not rounds-heavy)", st.Rounds)
	}
	uOff, vOff := layers*m, layers*k
	if g.LiveUsers() != n || g.LiveItems() != n {
		t.Fatalf("residual = %d users / %d items, want the %d×%d biclique only",
			g.LiveUsers(), g.LiveItems(), n, n)
	}
	for u := 0; u < n; u++ {
		if c := evals[key{bipartite.UserSide, bipartite.NodeID(uOff + u)}]; c != 1 {
			t.Errorf("far biclique user %d evaluated %d times, want exactly 1", uOff+u, c)
		}
	}
	for v := 0; v < n; v++ {
		if c := evals[key{bipartite.ItemSide, bipartite.NodeID(vOff + v)}]; c != 1 {
			t.Errorf("far biclique item %d evaluated %d times, want exactly 1", vOff+v, c)
		}
	}

	// Non-vacuity: the rescan loop re-evaluates the same far vertices every
	// round, so the frontier's exactly-once count is a real saving.
	pr := p
	pr.NoFrontier = true
	stR, evalsR, _ := countEvals(pr)
	if stR != st {
		t.Fatalf("rescan stats %+v diverge from frontier %+v", stR, st)
	}
	if c := evalsR[key{bipartite.UserSide, bipartite.NodeID(uOff)}]; c != st.Rounds {
		t.Errorf("rescan evaluated far user %d times, want once per round (%d)", c, st.Rounds)
	}
}

// TestFrontierMetricsRecorded checks the obs wiring: a frontier-mode
// extraction reports how many square evaluations the dirty frontier
// admitted via the core.frontier.evaluated counter.
func TestFrontierMetricsRecorded(t *testing.T) {
	g := synth.LadderGraph(8, 6, 6)
	k1, k2, alpha := synth.LadderParams(6, 6)
	p := params(k1, k2, alpha)
	o := obs.NewObserver("test")
	if _, err := NearBicliqueExtractCtx(context.Background(), g, p, o.Root(), o); err != nil {
		t.Fatal(err)
	}
	if v := o.Counter("core.frontier.evaluated").Value(); v == 0 {
		t.Error("core.frontier.evaluated counter never incremented")
	}
}

// TestSinglePassItemScanCancellation pins the per-scan reset of the literal
// pass's ctx-poll counter. The cycle graph u_i—v_i—u_{i+1} keeps every
// vertex at degree 2 (core-safe for k₁=k₂=2, α=1) but gives no vertex a
// second (α,k)-neighbor, so the sequential user scan removes all n users
// one by one, and the item scan then finds every item dead-ended. A cancel
// armed at the item scan's start ("core.prune.single_pass.items") is first
// noticed at the scan's own 256th poll point: exactly 255 items removed.
// Before the reset, the counter carried the user scan's n evaluations and
// the cut drifted to a cadence-dependent value (111 for n=400).
func TestSinglePassItemScanCancellation(t *testing.T) {
	defer faultinject.Reset()
	const n = 400
	b := bipartite.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
		b.Add(bipartite.NodeID((i+1)%n), bipartite.NodeID(i), 1)
	}
	g := b.Build()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("core.prune.single_pass.items", faultinject.Fault{Do: cancel, Times: 1})

	p := params(2, 2, 1.0)
	p.SinglePass = true
	st, err := PruneCtx(ctx, g, p, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if faultinject.HitCount("core.prune.single_pass.items") == 0 {
		t.Fatal("item-scan site never fired")
	}
	if st.UsersRemoved != n {
		t.Errorf("users removed = %d, want %d (user scan must complete before the cancel)", st.UsersRemoved, n)
	}
	if st.ItemsRemoved != 255 {
		t.Errorf("items removed = %d, want 255 (first poll of a freshly reset scan counter)", st.ItemsRemoved)
	}
}
