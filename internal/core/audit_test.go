package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/synth"
)

// parseAudit decodes a JSONL audit buffer, failing the test on any
// unparseable line and verifying the sink's contiguous-sequence contract.
func parseAudit(t *testing.T, buf *bytes.Buffer) []obs.Event {
	t.Helper()
	var events []obs.Event
	for i, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("audit line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("audit line %d has seq %d, want %d (lost or torn line)", i+1, e.Seq, i+1)
		}
		events = append(events, e)
	}
	return events
}

// auditedObserver returns an observer whose audit trail lands in the
// returned buffer as JSONL.
func auditedObserver(name string) (*obs.Observer, *bytes.Buffer) {
	var buf bytes.Buffer
	o := obs.NewObserver(name)
	o.Events = obs.NewEventSink(&buf, 0)
	return o, &buf
}

// screenDropReasons is the closed set of typed screening causes; the audit
// contract is that every screened-out node carries one of these.
var screenDropReasons = map[string]bool{
	"user.no_attack_edge":     true,
	"user.hot_avg":            true,
	"user.no_verified_target": true,
	"item.hot":                true,
	"item.supporters":         true,
	"item.group_dissolved":    true,
}

// TestAuditTrailEndToEnd runs the full pipeline with an event sink and
// checks the explainability contract: bracketed run, a typed reason and
// failing statistic on every removal and drop, and a risk score plus
// evidence on every final verdict.
func TestAuditTrailEndToEnd(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	o, buf := auditedObserver("test")
	d := &Detector{Params: smallParams(), Obs: o}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups found; the verdict assertions below would be vacuous")
	}

	events := parseAudit(t, buf)
	if len(events) < 4 {
		t.Fatalf("audit trail has only %d events", len(events))
	}
	if events[0].Type != obs.EventRunStart {
		t.Errorf("first event is %q, want %q", events[0].Type, obs.EventRunStart)
	}
	if events[0].Users == 0 || events[0].Items == 0 {
		t.Errorf("run.start missing graph size: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != obs.EventRunEnd {
		t.Errorf("last event is %q, want %q", last.Type, obs.EventRunEnd)
	}
	if last.Groups != len(res.Groups) {
		t.Errorf("run.end groups = %d, want %d", last.Groups, len(res.Groups))
	}

	var verdicts []obs.Event
	for _, e := range events {
		switch e.Type {
		case obs.EventPruneRemove:
			if e.Side != "user" && e.Side != "item" {
				t.Fatalf("prune.remove without side: %+v", e)
			}
			if e.Reason != "core.degree" && e.Reason != "square.neighbors" {
				t.Fatalf("prune.remove with untyped reason %q", e.Reason)
			}
			if e.Stat == "" {
				t.Fatalf("prune.remove without the violated bound: %+v", e)
			}
			if e.Round < 1 {
				t.Fatalf("prune.remove without round: %+v", e)
			}
		case obs.EventScreenDrop:
			if !screenDropReasons[e.Reason] {
				t.Fatalf("screen.drop with untyped reason %q: %+v", e.Reason, e)
			}
			if e.Group < 1 {
				t.Fatalf("screen.drop without candidate group index: %+v", e)
			}
		case obs.EventGroupVerdict:
			verdicts = append(verdicts, e)
		}
	}
	if len(verdicts) != len(res.Groups) {
		t.Fatalf("%d group.verdict events for %d final groups", len(verdicts), len(res.Groups))
	}
	for i, v := range verdicts {
		if v.Group != i+1 {
			t.Errorf("verdict %d has group index %d", i, v.Group)
		}
		if v.Score != res.Groups[i].Score {
			t.Errorf("verdict %d score = %v, want %v", i, v.Score, res.Groups[i].Score)
		}
		if v.Score <= 0 {
			t.Errorf("verdict %d has no positive risk score", i)
		}
		if v.Stat == "" {
			t.Errorf("verdict %d carries no evidence statistics", i)
		}
		if v.Users == 0 || v.Items == 0 {
			t.Errorf("verdict %d missing group size: %+v", i, v)
		}
	}
}

// removalSet projects an audit trail onto its prune removals as a
// side-qualified ID set.
func removalSet(events []obs.Event) map[string]bool {
	set := make(map[string]bool)
	for _, e := range events {
		if e.Type == obs.EventPruneRemove {
			set[fmt.Sprintf("%s/%d", e.Side, e.ID)] = true
		}
	}
	return set
}

// TestAuditSerialShardedEquivalence checks that the audit trail names the
// same removed vertices whether pruning runs serially or component-sharded
// with translated shard-local IDs — the observable counterpart of the
// shard-equivalence harness.
func TestAuditSerialShardedEquivalence(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())

	run := func(mutate func(*Params)) map[string]bool {
		p := smallParams()
		mutate(&p)
		o, buf := auditedObserver("test")
		d := &Detector{Params: p, Obs: o}
		if _, err := d.Detect(ds.Graph); err != nil {
			t.Fatal(err)
		}
		return removalSet(parseAudit(t, buf))
	}

	serial := run(func(p *Params) { p.NoShard = true; p.NoFrontier = true; p.Workers = 1 })
	sharded := run(func(p *Params) { p.Workers = 4 })

	if len(serial) == 0 {
		t.Fatal("serial run pruned nothing; equivalence is vacuous")
	}
	for id := range serial {
		if !sharded[id] {
			t.Errorf("serial removed %s but sharded audit has no such event", id)
		}
	}
	for id := range sharded {
		if !serial[id] {
			t.Errorf("sharded removed %s but serial audit has no such event", id)
		}
	}
}

// TestAuditFeedbackWiden forces the relax loop and checks every widening
// is audited with the knob, both values, and the iteration.
func TestAuditFeedbackWiden(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	o, buf := auditedObserver("test")
	// An unreachable expectation guarantees at least one relaxation.
	fr, err := DetectWithFeedbackObserved(ds.Graph, smallParams(), ds.Graph.LiveUsers()*2, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Iterations < 2 {
		t.Fatalf("feedback loop ran only %d iteration(s); no widening to audit", fr.Iterations)
	}
	knobs := map[string]bool{"t_click": true, "alpha": true, "k1": true, "k2": true}
	widens := 0
	for _, e := range parseAudit(t, buf) {
		if e.Type != obs.EventFeedbackWiden {
			continue
		}
		widens++
		if !knobs[e.Reason] {
			t.Errorf("feedback.widen with unknown knob %q", e.Reason)
		}
		if e.Old == "" || e.New == "" {
			t.Errorf("feedback.widen without old/new values: %+v", e)
		}
		if e.Old == e.New {
			t.Errorf("feedback.widen with unchanged value %q", e.Old)
		}
		if e.Round < 1 {
			t.Errorf("feedback.widen without iteration: %+v", e)
		}
	}
	if widens == 0 {
		t.Error("relax loop iterated but emitted no feedback.widen events")
	}
}

// TestDetectPartialCounters checks the graceful-degradation metrics: a
// cut-short run increments detect.partial and attributes the interrupted
// stage via detect.stage_reached.<stage>.
func TestDetectPartialCounters(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	defer faultinject.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("core.screening", faultinject.Fault{Do: cancel, Times: 1})

	o := obs.NewObserver("test")
	d := &Detector{Params: smallParams(), Obs: o}
	res, err := d.DetectContext(ctx, ds.Graph)
	if err == nil || res == nil || !res.Partial {
		t.Fatalf("expected a partial run, got res=%+v err=%v", res, err)
	}
	counters := o.Metrics.Counters()
	if counters["detect.partial"] != 1 {
		t.Errorf("detect.partial = %d, want 1", counters["detect.partial"])
	}
	if counters["detect.stage_reached.screening"] != 1 {
		t.Errorf("detect.stage_reached.screening = %d, want 1 (counters: %v)",
			counters["detect.stage_reached.screening"], counters)
	}
}

// TestDetectCompleteRunNoPartialCounter is the negative: a complete run
// must not touch the partial counters.
func TestDetectCompleteRunNoPartialCounter(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	o := obs.NewObserver("test")
	d := &Detector{Params: smallParams(), Obs: o}
	if _, err := d.Detect(ds.Graph); err != nil {
		t.Fatal(err)
	}
	for name, v := range o.Metrics.Counters() {
		if name == "detect.partial" && v != 0 {
			t.Errorf("complete run incremented detect.partial to %d", v)
		}
	}
}

// TestAuditConcurrentCancel runs the sharded pipeline (multiple prune
// workers and parallel screeners all emitting into ONE sink) and cancels
// it mid-run. Under -race this doubles as the data-race check; the
// assertions check the sink's integrity contract — every line parses, the
// sequence is contiguous (no lost or torn writes) — and that the cut-short
// run leaks no goroutines.
func TestAuditConcurrentCancel(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	baseline := runtime.NumGoroutine()

	defer faultinject.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire the cancel from inside a shard worker after a few frontier
	// batches, so other workers are mid-emission when it lands.
	var hits atomic.Int32
	faultinject.Arm("core.frontier", faultinject.Fault{Do: func() {
		if hits.Add(1) == 3 {
			cancel()
		}
	}})

	p := smallParams()
	p.Workers = 4
	o, buf := auditedObserver("test")
	d := &Detector{Params: p, Obs: o}
	res, err := d.DetectContext(ctx, ds.Graph)
	if res == nil {
		t.Fatalf("cancelled run returned nil result (err=%v)", err)
	}

	events := parseAudit(t, buf) // verifies parse + contiguous seq
	if got := o.Events.Seq(); got != uint64(len(events)) {
		t.Errorf("sink saw %d emissions but %d lines were written", got, len(events))
	}

	// Workers must wind down after the cancel; allow the runtime a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d running, baseline %d", n, baseline)
	}
}
