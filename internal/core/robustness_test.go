package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/synth"
)

// assertPartial checks the graceful-degradation contract: a cut-short run
// returns a well-formed non-nil result tagged partial, naming the stage
// that was interrupted.
func assertPartial(t *testing.T, res *detect.Result, err, wantErr error, wantStage string) {
	t.Helper()
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if res == nil {
		t.Fatal("cut-short run returned a nil result")
	}
	if !res.Partial {
		t.Error("result not tagged Partial")
	}
	if res.StageReached != wantStage {
		t.Errorf("StageReached = %q, want %q", res.StageReached, wantStage)
	}
	if res.Elapsed <= 0 {
		t.Error("partial result has no Elapsed timing")
	}
	// A partial result must still be structurally sound: every reported
	// group has both sides populated.
	for i, grp := range res.Groups {
		if len(grp.Users) == 0 || len(grp.Items) == 0 {
			t.Errorf("partial group %d is malformed: %d users, %d items",
				i, len(grp.Users), len(grp.Items))
		}
	}
}

// TestDetectContextCancelAtEverySite arms a context cancel at every named
// interruption checkpoint of the batch pipeline and asserts each yields a
// well-formed partial result attributing the right stage.
func TestDetectContextCancelAtEverySite(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	cases := []struct {
		site      string
		wantStage string
	}{
		{"core.hotset", "hotset"},
		{"core.graph_generator", "graph_generator"},
		{"core.extraction", "extraction"},
		{"core.prune.round", "extraction"},
		{"core.frontier", "extraction"},
		{"core.extract", "extraction"},
		{"core.screening", "screening"},
		{"core.screen.group", "screening"},
		{"core.identification", "identification"},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			defer faultinject.Reset()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			faultinject.Arm(tc.site, faultinject.Fault{Do: cancel, Times: 1})

			d := &Detector{Params: smallParams()}
			res, err := d.DetectContext(ctx, ds.Graph)
			if faultinject.HitCount(tc.site) == 0 {
				t.Fatalf("site %q never reached", tc.site)
			}
			assertPartial(t, res, err, context.Canceled, tc.wantStage)
		})
	}
}

// TestDetectContextPanicIsStageError arms a panic at every stage boundary
// and asserts it surfaces as a *detect.StageError naming the stage — never
// as a process crash — alongside a partial result.
func TestDetectContextPanicIsStageError(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	for _, stage := range []string{"hotset", "graph_generator", "extraction", "screening", "identification"} {
		t.Run(stage, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Arm("core."+stage, faultinject.Fault{Panic: "injected bug", Times: 1})

			d := &Detector{Params: smallParams()}
			res, err := d.DetectContext(context.Background(), ds.Graph)
			var se *detect.StageError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want a *detect.StageError", err)
			}
			if se.Stage != stage {
				t.Errorf("StageError.Stage = %q, want %q", se.Stage, stage)
			}
			if se.Panic != "injected bug" {
				t.Errorf("StageError.Panic = %v, want the injected value", se.Panic)
			}
			if res == nil || !res.Partial {
				t.Error("panicking stage did not yield a partial result")
			}
		})
	}
}

// TestDetectContextCancelledExtractionReportsNoGroups: a run cancelled
// mid-pruning must not report groups cut from a half-pruned residual graph
// — those would be organic users misclassified by an incomplete fixpoint.
func TestDetectContextCancelledExtractionReportsNoGroups(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Let one round pass, then cancel: the fixpoint is genuinely unreached.
	faultinject.Arm("core.prune.round", faultinject.Fault{Do: cancel, Times: 1})

	d := &Detector{Params: smallParams()}
	res, err := d.DetectContext(ctx, ds.Graph)
	assertPartial(t, res, err, context.Canceled, "extraction")
	if len(res.Groups) != 0 {
		t.Errorf("cancelled extraction reported %d groups from a half-pruned graph", len(res.Groups))
	}
}

// disjointBicliques builds a graph of n separate k×k bicliques of edge
// weight w: extraction yields one candidate group per biclique, giving the
// screening loop n distinct interruption checkpoints.
func disjointBicliques(n, k int, w uint32) *bipartite.Graph {
	b := bipartite.NewBuilder(n*k, n*k)
	for c := 0; c < n; c++ {
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				b.Add(bipartite.NodeID(c*k+u), bipartite.NodeID(c*k+v), w)
			}
		}
	}
	return b.Build()
}

// TestDetectContextCancelledScreeningKeepsScreenedPrefix: groups fully
// screened before the cancel stay in the partial result and still satisfy
// the size bounds (each survived the full screening pipeline).
func TestDetectContextCancelledScreeningKeepsScreenedPrefix(t *testing.T) {
	defer faultinject.Reset()
	g := disjointBicliques(3, 12, 15)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Screen two groups, then cancel at the third checkpoint.
	calls := 0
	faultinject.Arm("core.screen.group", faultinject.Fault{Do: func() {
		calls++
		if calls == 3 {
			cancel()
		}
	}})

	p := smallParams()
	d := &Detector{Params: p}
	res, err := d.DetectContext(ctx, g)
	assertPartial(t, res, err, context.Canceled, "screening")
	if len(res.Groups) == 0 {
		t.Error("no fully-screened group survived in the partial result")
	}
	for i, grp := range res.Groups {
		if len(grp.Users) < p.K1 || len(grp.Items) < p.K2 {
			t.Errorf("partially-screened output group %d violates size bounds: %d×%d",
				i, len(grp.Users), len(grp.Items))
		}
	}
}

// TestDetectContextCompleteRunHitsAllSites records a full run and checks
// every pipeline checkpoint actually fires — guarding against a refactor
// silently dropping an interruption point.
func TestDetectContextCompleteRunHitsAllSites(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Record()
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Params: smallParams()}
	res, err := d.DetectContext(context.Background(), ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("unhindered run tagged partial")
	}
	for _, site := range []string{
		"core.hotset", "core.graph_generator", "core.extraction",
		"core.prune.round", "core.frontier", "core.extract",
		"core.screening", "core.screen.group", "core.identification",
	} {
		if faultinject.HitCount(site) == 0 {
			t.Errorf("site %q never hit during a full run", site)
		}
	}
}

// TestFeedbackLoopCancellation: the context budget covers the whole
// feedback loop; cancelling between iterations keeps the last complete
// result and its matching parameters.
func TestFeedbackLoopCancellation(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// First iteration runs clean; cancel arriving at the second checkpoint.
	calls := 0
	faultinject.Arm("core.feedback.round", faultinject.Fault{Do: func() {
		calls++
		if calls == 2 {
			cancel()
		}
	}})

	p := smallParams()
	// An absurd expectation keeps the loop relaxing until the budget dies.
	fr, err := DetectWithFeedbackContext(ctx, ds.Graph, p, 1<<30, 10, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fr.Result == nil {
		t.Fatal("interrupted feedback loop returned no result")
	}
	if fr.Result.Partial {
		t.Error("first iteration completed; its result must not be partial")
	}
	if !reflect.DeepEqual(fr.Params, p) {
		t.Errorf("returned params %+v do not match the completed run's %+v", fr.Params, p)
	}
}

// TestFeedbackLoopCancelledBeforeFirstRun: with no completed iteration the
// loop synthesizes an empty partial result rather than returning nil.
func TestFeedbackLoopCancelledBeforeFirstRun(t *testing.T) {
	defer faultinject.Reset()
	ds := synth.MustGenerate(synth.SmallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	fr, err := DetectWithFeedbackContext(ctx, ds.Graph, smallParams(), 10, 3, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fr.Result == nil || !fr.Result.Partial {
		t.Errorf("want a synthesized partial result, got %+v", fr.Result)
	}
}

// TestPruneCtxCancelledGraphStaysSound: a cancelled prune leaves a valid
// intermediate graph (pruning is monotone), not a corrupted one — every
// still-live edge must connect two live endpoints.
func TestPruneCtxCancelledGraphStaysSound(t *testing.T) {
	defer faultinject.Reset()
	g := plantedGraph(40, 20, 15, 200, 100, 800, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm("core.prune.round", faultinject.Fault{Do: cancel, Times: 1})

	_, err := PruneCtx(ctx, g, smallParams(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	g.EachLiveUser(func(u uint32) bool {
		g.EachUserNeighbor(u, func(v uint32, _ uint32) bool {
			if !g.ItemAlive(v) {
				t.Fatalf("live user %d has edge to dead item %d after cancelled prune", u, v)
			}
			return true
		})
		return true
	})
}
