package core

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/synth"
)

func TestComputeGroupStatsPerfectBiclique(t *testing.T) {
	b := bipartite.NewBuilder(4, 3)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 10)
		}
	}
	b.Add(3, 0, 5) // organic outsider on item 0
	g := b.Build()
	grp := detect.Group{
		Users: []bipartite.NodeID{0, 1, 2},
		Items: []bipartite.NodeID{0, 1, 2},
	}
	st := ComputeGroupStats(g, grp)
	if st.Edges != 9 || st.Density != 1.0 {
		t.Errorf("edges/density = %d/%v, want 9/1.0", st.Edges, st.Density)
	}
	if st.FakeClicks != 90 || st.MeanEdgeClicks != 10 {
		t.Errorf("clicks = %d mean %v, want 90/10", st.FakeClicks, st.MeanEdgeClicks)
	}
	// Item totals: 35 + 30 + 30 = 95; outside = 5.
	want := 5.0 / 95.0
	if math.Abs(st.OutsideShare-want) > 1e-12 {
		t.Errorf("OutsideShare = %v, want %v", st.OutsideShare, want)
	}
}

func TestComputeGroupStatsSparseGroup(t *testing.T) {
	b := bipartite.NewBuilder(2, 2)
	b.Add(0, 0, 4)
	g := b.Build()
	grp := detect.Group{Users: []bipartite.NodeID{0, 1}, Items: []bipartite.NodeID{0, 1}}
	st := ComputeGroupStats(g, grp)
	if st.Edges != 1 || st.Density != 0.25 {
		t.Errorf("edges/density = %d/%v, want 1/0.25", st.Edges, st.Density)
	}
}

func TestComputeGroupStatsEmptyGroup(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	st := ComputeGroupStats(g, detect.Group{})
	if st.Edges != 0 || st.Density != 0 || st.OutsideShare != 0 {
		t.Errorf("empty group stats = %+v", st)
	}
}

func TestGroupStatsOnDetectedAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := &Detector{Params: smallParams()}
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	marketMean := float64(ds.Graph.LiveClicks()) / float64(ds.Graph.LiveEdges())
	for i, grp := range res.Groups {
		st := ComputeGroupStats(ds.Graph, grp)
		if st.Density < 0.7 {
			t.Errorf("group %d density = %v, want ≥ 0.7 (near-biclique)", i, st.Density)
		}
		if st.MeanEdgeClicks < 3*marketMean {
			t.Errorf("group %d mean edge clicks %v not ≫ market mean %v",
				i, st.MeanEdgeClicks, marketMean)
		}
		if st.OutsideShare > 0.5 {
			t.Errorf("group %d outside share = %v; attacked targets should be attacker-dominated",
				i, st.OutsideShare)
		}
	}
}
