package core

import "repro/internal/bipartite"

// HotSet marks which items are hot (total clicks ≥ T_hot). It is computed
// once on the full input graph, before any pruning, because hotness is a
// property of the marketplace, not of a pruned residual.
type HotSet struct {
	hot  []bool
	n    int
	tHot uint64
}

// ComputeHotSet classifies every live item of g against tHot.
func ComputeHotSet(g *bipartite.Graph, tHot uint64) *HotSet {
	h := &HotSet{hot: make([]bool, g.NumItems()), tHot: tHot}
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemStrength(v) >= tHot {
			h.hot[v] = true
			h.n++
		}
		return true
	})
	return h
}

// IsHot reports whether item v is hot.
func (h *HotSet) IsHot(v bipartite.NodeID) bool {
	return int(v) < len(h.hot) && h.hot[v]
}

// Count returns the number of hot items.
func (h *HotSet) Count() int { return h.n }

// Threshold returns the T_hot value the set was computed with.
func (h *HotSet) Threshold() uint64 { return h.tHot }
