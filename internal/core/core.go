package core
