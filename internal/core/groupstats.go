package core

import (
	"repro/internal/bipartite"
	"repro/internal/detect"
)

// GroupStats are the forensic numbers a business expert reviews before
// punishing a detected group (the "easy of use for end-users" goal of
// desired property 4): how dense the block is, how hard the targets were
// hammered, and how isolated the group's items are from organic traffic.
type GroupStats struct {
	Users int
	Items int

	// Edges and Density describe the in-group block: Density is
	// Edges / (Users × Items) — 1.0 is a perfect biclique.
	Edges   int
	Density float64

	// FakeClicks is the total in-group click weight; MeanEdgeClicks its
	// mean per edge (crowd workers hammer targets, so this runs far above
	// the marketplace's per-edge average).
	FakeClicks     uint64
	MeanEdgeClicks float64

	// OutsideShare is the fraction of the items' total clicks that come
	// from OUTSIDE the group's users — low for freshly attacked targets
	// (Table V: few organic clickers), high for innocently popular items.
	OutsideShare float64
}

// ComputeGroupStats measures grp against the full click graph.
func ComputeGroupStats(g *bipartite.Graph, grp detect.Group) GroupStats {
	st := GroupStats{Users: len(grp.Users), Items: len(grp.Items)}
	inGroup := make(map[bipartite.NodeID]bool, len(grp.Users))
	for _, u := range grp.Users {
		inGroup[u] = true
	}

	var itemTotal uint64
	for _, v := range grp.Items {
		itemTotal += g.ItemStrength(v)
		g.EachItemNeighbor(v, func(u bipartite.NodeID, w uint32) bool {
			if inGroup[u] {
				st.Edges++
				st.FakeClicks += uint64(w)
			}
			return true
		})
	}
	if st.Users > 0 && st.Items > 0 {
		st.Density = float64(st.Edges) / (float64(st.Users) * float64(st.Items))
	}
	if st.Edges > 0 {
		st.MeanEdgeClicks = float64(st.FakeClicks) / float64(st.Edges)
	}
	if itemTotal > 0 {
		st.OutsideShare = float64(itemTotal-st.FakeClicks) / float64(itemTotal)
	}
	return st
}
