package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known Zarankiewicz numbers z(n,n;2,2): the maximum edges of an n×n
// bipartite graph with no K_{2,2}. Source: classical small values.
var zarankiewicz22 = map[int]int{
	2: 3,
	3: 6,
	4: 9,
	5: 12,
	6: 16,
}

func TestCamouflageBoundDominatesKnownValues(t *testing.T) {
	for n, z := range zarankiewicz22 {
		bound := CamouflageBound(n, n, 2, 2)
		if bound < float64(z) {
			t.Errorf("bound(%d,%d;2,2) = %v below true z = %d", n, n, bound, z)
		}
		// The KST bound is reasonably tight for these sizes.
		if bound > float64(z)*2.2 {
			t.Errorf("bound(%d,%d;2,2) = %v too loose vs z = %d", n, n, bound, z)
		}
	}
}

func TestCamouflageBoundEdgeCases(t *testing.T) {
	if CamouflageBound(0, 5, 2, 2) != 0 {
		t.Error("m=0 should bound 0")
	}
	// s > m: no K_{s,t} can exist; everything is safe.
	if got := CamouflageBound(3, 5, 4, 2); got != 15 {
		t.Errorf("s>m bound = %v, want full 15", got)
	}
	if got := CamouflageBound(3, 5, 2, 6); got != 15 {
		t.Errorf("t>n bound = %v, want full 15", got)
	}
}

func TestContainsBiclique(t *testing.T) {
	adj := [][]bool{
		{true, true, false},
		{true, true, false},
		{false, false, true},
	}
	if !ContainsBiclique(adj, 2, 2) {
		t.Error("2×2 biclique in rows 0-1 not found")
	}
	if ContainsBiclique(adj, 3, 2) {
		t.Error("no 3×2 biclique exists")
	}
	if ContainsBiclique(adj, 2, 3) {
		t.Error("no 2×3 biclique exists")
	}
	if ContainsBiclique(nil, 1, 1) {
		t.Error("empty matrix contains nothing")
	}
}

// Property: CamouflageBound is a genuine upper bound — any random bipartite
// graph with MORE edges than the bound must contain a K_{s,t}.
func TestPropertyBoundIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(4) // 3..6
		n := 3 + rng.Intn(4)
		s, tt := 2, 2
		bound := CamouflageBound(m, n, s, tt)

		// Build a random graph edge by edge; once edges > bound a
		// K_{2,2} must exist.
		adj := make([][]bool, m)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		edges := 0
		order := rng.Perm(m * n)
		for _, p := range order {
			adj[p/n][p%n] = true
			edges++
			if float64(edges) > bound {
				if !ContainsBiclique(adj, s, tt) {
					return false
				}
				// One check above the bound is enough for this instance.
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
