package core

import (
	"context"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file implements the Suspicious Group Identification module: the
// risk-score ranking strategy and the feedback-based parameter adjustment
// strategy (Fig 7), which together make the framework consumable by business
// experts (desired property 4).

// RankedNode is one row of the identification module's output table.
type RankedNode struct {
	ID   bipartite.NodeID
	Side bipartite.Side
	// Score is the risk score: for users, the number of suspicious items
	// clicked; for items, the average risk score of its clickers.
	Score float64
}

// Ranking is the ordered user-item output table.
type Ranking struct {
	Users []RankedNode // descending by Score, ties by ID
	Items []RankedNode
}

// RankResult computes risk scores for every suspicious node of a detection
// result, against the original click graph:
//
//   - a user's risk score is the number of suspicious items it clicked;
//   - an item's risk score is the average risk score of the users that
//     clicked it (non-suspicious clickers contribute zero, so organically
//     popular items are diluted downward).
func RankResult(g *bipartite.Graph, res *detect.Result) Ranking {
	susItems := map[bipartite.NodeID]bool{}
	for _, v := range res.Items() {
		susItems[v] = true
	}

	userScore := map[bipartite.NodeID]float64{}
	for _, u := range res.Users() {
		n := 0
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			if susItems[v] {
				n++
			}
			return true
		})
		userScore[u] = float64(n)
	}

	var r Ranking
	for u, s := range userScore {
		r.Users = append(r.Users, RankedNode{ID: u, Side: bipartite.UserSide, Score: s})
	}
	for v := range susItems {
		var sum float64
		n := 0
		g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			sum += userScore[u] // zero for non-suspicious users
			n++
			return true
		})
		score := 0.0
		if n > 0 {
			score = sum / float64(n)
		}
		r.Items = append(r.Items, RankedNode{ID: v, Side: bipartite.ItemSide, Score: score})
	}
	sortRanked(r.Users)
	sortRanked(r.Items)
	return r
}

func sortRanked(nodes []RankedNode) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Score != nodes[j].Score {
			return nodes[i].Score > nodes[j].Score
		}
		return nodes[i].ID < nodes[j].ID
	})
}

// TopUsers returns the k highest-risk users (fewer if the ranking is short).
func (r Ranking) TopUsers(k int) []RankedNode { return top(r.Users, k) }

// TopItems returns the k highest-risk items.
func (r Ranking) TopItems(k int) []RankedNode { return top(r.Items, k) }

func top(nodes []RankedNode, k int) []RankedNode {
	if k > len(nodes) {
		k = len(nodes)
	}
	if k <= 0 {
		return nil
	}
	return nodes[:k]
}

// FeedbackResult reports the outcome of the feedback-based parameter
// adjustment loop.
type FeedbackResult struct {
	Result *detect.Result
	// Params are the final, possibly relaxed parameters.
	Params Params
	// Iterations is the number of detection runs performed (≥ 1).
	Iterations int
	// MetExpectation reports whether the final output size reached the
	// end-user's expectation.
	MetExpectation bool
}

// DetectWithFeedback runs the RICD detector, and while the number of output
// nodes falls short of the end-user's expectation, relaxes the parameters
// the way Section V-B describes (decrease T_click first — it is the most
// interpretable knob — then α, then the size bounds k₁/k₂) and retries, up
// to maxIters runs. Relaxation increases recall at the cost of precision.
func DetectWithFeedback(g *bipartite.Graph, p Params, expectation, maxIters int) (FeedbackResult, error) {
	return DetectWithFeedbackObserved(g, p, expectation, maxIters, nil)
}

// DetectWithFeedbackObserved is DetectWithFeedback with observability:
// every inner detection run records its own ricd.detect span under o's
// trace root, and the loop's iteration count feeds the registry. A nil o
// observes nothing.
func DetectWithFeedbackObserved(g *bipartite.Graph, p Params, expectation, maxIters int,
	o *obs.Observer) (FeedbackResult, error) {

	return DetectWithFeedbackContext(context.Background(), g, p, expectation, maxIters, o)
}

// DetectWithFeedbackContext is DetectWithFeedbackObserved under a context:
// the budget covers the WHOLE loop, not one run. ctx is checked before
// every iteration (fault-injection site "core.feedback.round") and inside
// each detection run. When the budget expires mid-loop the best result so
// far is returned — the last complete iteration's groups when one
// finished, else the interrupted run's partial output — together with the
// context's error, so a widened re-run that overruns still yields the
// narrower sweep's findings. When a complete iteration's output stands in
// for the interrupted loop its Partial flag stays false (the groups ARE
// complete) but StageReached is stamped "feedback", so reports built from
// the (result, ctx error) pair can name the stage that was cut short. A
// stage panic inside a run aborts the loop with its *detect.StageError and
// the same best-so-far result.
func DetectWithFeedbackContext(ctx context.Context, g *bipartite.Graph, p Params,
	expectation, maxIters int, o *obs.Observer) (FeedbackResult, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if maxIters < 1 {
		maxIters = 1
	}
	a := newAuditor(o)
	fr := FeedbackResult{Params: p}
	lastGood := p // params of the last COMPLETE run held in fr.Result
	defer func() {
		o.Counter("ricd.feedback.iterations").Add(int64(fr.Iterations))
	}()
	for i := 0; i < maxIters; i++ {
		faultinject.Hit("core.feedback.round")
		if err := ctx.Err(); err != nil {
			if fr.Result == nil {
				fr.Result = &detect.Result{Partial: true, StageReached: "feedback"}
			} else {
				fr.Params = lastGood
				stampFeedbackStage(fr.Result)
			}
			return fr, err
		}
		d := &Detector{Params: fr.Params, Obs: o}
		res, err := d.DetectContext(ctx, g)
		if err != nil {
			// Keep the last COMPLETE result when one exists: a finished
			// narrow sweep beats a half-finished wide one.
			if fr.Result == nil {
				fr.Result = res
			} else {
				fr.Params = lastGood
				stampFeedbackStage(fr.Result)
			}
			fr.Iterations = i + 1
			return fr, err
		}
		fr.Result = res
		fr.Iterations = i + 1
		lastGood = fr.Params
		if res.NumNodes() >= expectation {
			fr.MetExpectation = true
			return fr, nil
		}
		relaxed, ok := relax(fr.Params)
		if !ok {
			return fr, nil // nothing left to relax
		}
		a.widenEvents(i+1, fr.Params, relaxed)
		fr.Params = relaxed
	}
	return fr, nil
}

// stampFeedbackStage tags a COMPLETE iteration's result that is standing
// in for an interrupted feedback loop. Its groups are intact — Partial
// stays false — but the loop around it was cut short, so reports built
// from the (result, ctx error) pair need a non-empty stage name for the
// interruption: "feedback", the loop itself.
func stampFeedbackStage(res *detect.Result) {
	if res.StageReached == "" {
		res.StageReached = "feedback"
	}
}

// relax loosens parameters one notch; it returns ok=false once every knob
// is at its floor.
func relax(p Params) (Params, bool) {
	switch {
	case p.TClick > 4:
		p.TClick -= 2
	case p.Alpha > 0.7:
		p.Alpha -= 0.1
		if p.Alpha < 0.7 {
			p.Alpha = 0.7
		}
	case p.K1 > 4 || p.K2 > 4:
		if p.K1 > 4 {
			p.K1--
		}
		if p.K2 > 4 {
			p.K2--
		}
	default:
		return p, false
	}
	return p, true
}
