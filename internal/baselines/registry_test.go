package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestRegistryConstructsEveryDetector(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	p := core.DefaultParams()
	p.THot = 400
	for _, name := range Names() {
		d, err := New(name, p, false)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.Name() == "" {
			t.Errorf("%s: empty detector name", name)
		}
		if _, err := d.Detect(ds.Graph); err != nil {
			t.Errorf("%s: Detect: %v", name, err)
		}
	}
}

func TestRegistryUIWrapping(t *testing.T) {
	p := core.DefaultParams()
	d, err := New("lpa", p, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "LPA+UI" {
		t.Errorf("wrapped name = %q, want LPA+UI", d.Name())
	}
	if _, err := New("ricd", p, true); err == nil {
		t.Error("wrapping RICD with UI must be rejected")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := New("nope", core.DefaultParams(), false); err == nil {
		t.Error("unknown detector accepted")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry has %d detectors, want ≥ 10", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}
