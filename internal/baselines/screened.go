// Package baselines provides the shared machinery of the paper's baseline
// detectors, most importantly the "+UI" wrapper: Section VI-B attaches
// RICD's suspicious-group screening module (User behavior check and Item
// behavior verification) to every baseline for a fair comparison, since the
// baselines only produce raw communities or dense blocks.
package baselines

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/detect"
)

// Screened wraps any detector with RICD's screening module, reproducing the
// "<baseline>+UI" rows of Fig 8.
type Screened struct {
	// Inner produces the raw candidate groups.
	Inner detect.Detector
	// Params supplies the screening thresholds (T_hot, T_click, k₁, k₂, α).
	Params core.Params
}

// Name implements detect.Detector ("LPA+UI", "FRAUDAR+UI", ...).
func (s *Screened) Name() string { return s.Inner.Name() + "+UI" }

// Detect implements detect.Detector: run the inner detector, then screen
// its groups. Timing is split so Fig 8b can stack detection vs UI cost.
func (s *Screened) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	inner, err := s.Inner.Detect(g)
	if err != nil {
		return nil, err
	}
	detectDone := time.Now()

	hot := core.ComputeHotSet(g, s.Params.THot)
	groups := core.ScreenGroups(g, inner.Groups, hot, s.Params)

	res := &detect.Result{Groups: groups}
	res.DetectElapsed = detectDone.Sub(start)
	res.ScreenElapsed = time.Since(detectDone)
	res.Elapsed = time.Since(start)
	return res, nil
}
