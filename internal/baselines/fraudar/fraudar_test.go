package fraudar

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestFindsPlantedDenseBlock(t *testing.T) {
	// A 12×12 heavy block inside sparse background.
	b := bipartite.NewBuilder(200, 200)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 10)
		}
	}
	for i := 12; i < 200; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	d := &Detector{Blocks: 1, MinUsers: 5, MinItems: 5, LogOffset: 5}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d blocks, want 1", len(res.Groups))
	}
	grp := res.Groups[0]
	inBlock := 0
	for _, u := range grp.Users {
		if u < 12 {
			inBlock++
		}
	}
	if inBlock < 12 {
		t.Errorf("block covers %d/12 planted users: %v", inBlock, grp.Users)
	}
	if grp.Score <= 0 {
		t.Errorf("block score = %v, want > 0", grp.Score)
	}
}

func TestMultiBlockExtraction(t *testing.T) {
	// Two disjoint heavy blocks; with Blocks=2 both must be found.
	b := bipartite.NewBuilder(100, 100)
	for blk := 0; blk < 2; blk++ {
		off := blk * 12
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				b.Add(bipartite.NodeID(off+u), bipartite.NodeID(off+v), 10)
			}
		}
	}
	for i := 24; i < 100; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	d := &Detector{Blocks: 2, MinUsers: 10, MinItems: 10, LogOffset: 5}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d blocks, want 2", len(res.Groups))
	}
	// Blocks must be disjoint (second run works on the residual).
	seen := map[bipartite.NodeID]bool{}
	for _, grp := range res.Groups {
		for _, u := range grp.Users {
			if seen[u] {
				t.Errorf("user %d appears in two blocks", u)
			}
			seen[u] = true
		}
	}
}

func TestSingleBlockMissesSecondGroup(t *testing.T) {
	// The paper's criticism: without multiple blocks FRAUDAR finds only
	// one attack group.
	b := bipartite.NewBuilder(100, 100)
	for blk := 0; blk < 2; blk++ {
		off := blk * 12
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				b.Add(bipartite.NodeID(off+u), bipartite.NodeID(off+v), 10)
			}
		}
	}
	g := b.Build()
	d := &Detector{Blocks: 1, MinUsers: 10, MinItems: 10, LogOffset: 5}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	users := res.Users()
	if len(users) > 15 {
		// Both bicliques are identical in density, so one peel returns
		// everything — also acceptable; the claim only concerns separated
		// scoring. Accept either one block or the merged pair.
		if len(users) != 24 {
			t.Errorf("unexpected block size %d", len(users))
		}
	}
}

func TestCamouflageResistance(t *testing.T) {
	// Attackers hammer a fringe block and add camouflage clicks on a very
	// popular item. The popular item's log-weighted edges must not drag
	// the whole fan base into the block.
	b := bipartite.NewBuilder(500, 60)
	// Popular item 0: 480 fans.
	for u := bipartite.NodeID(20); u < 500; u++ {
		b.Add(u, 0, 3)
	}
	// Attack block: users 0..11 × items 1..12, heavy.
	for u := 0; u < 12; u++ {
		for v := 1; v <= 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 12)
		}
		b.Add(bipartite.NodeID(u), 0, 2) // camouflage on the popular item
	}
	g := b.Build()
	d := &Detector{Blocks: 1, MinUsers: 5, MinItems: 5, LogOffset: 5}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d blocks, want 1", len(res.Groups))
	}
	grp := res.Groups[0]
	attackers := 0
	innocents := 0
	for _, u := range grp.Users {
		if u < 12 {
			attackers++
		} else {
			innocents++
		}
	}
	if attackers < 12 {
		t.Errorf("only %d/12 attackers in the block", attackers)
	}
	if innocents > 20 {
		t.Errorf("%d innocent fans dragged into the block (camouflage won)", innocents)
	}
}

func TestFraudarOnSyntheticAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := DefaultDetector(10, 10)
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("FRAUDAR small: %v, blocks=%d", ev, len(res.Groups))
	if ev.Precision < 0.3 {
		t.Errorf("FRAUDAR precision = %v, want ≥ 0.3 (dense-block methods are precise)", ev.Precision)
	}
}

func TestValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	cases := []Detector{
		{Blocks: 0, MinUsers: 1, MinItems: 1, LogOffset: 5},
		{Blocks: 1, MinUsers: 0, MinItems: 1, LogOffset: 5},
		{Blocks: 1, MinUsers: 1, MinItems: 1, LogOffset: 1},
	}
	for i, d := range cases {
		if _, err := d.Detect(g); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDetectDoesNotMutateInput(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	before := ds.Graph.LiveEdges()
	if _, err := DefaultDetector(10, 10).Detect(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if ds.Graph.LiveEdges() != before {
		t.Error("Detect mutated the input graph")
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "FRAUDAR" {
		t.Error("bad name")
	}
}
