// Package fraudar is a clean-room implementation of the FRAUDAR baseline:
// camouflage-resistant dense-block detection by greedy peeling. The global
// metric is g(S) = f(S)/|S| with f(S) the sum of suspiciousness-weighted
// edges inside S; edge (u, v) carries weight w(u,v)/log(x_v + 5), where x_v
// is the item's total click mass — the logarithmic column weighting that
// makes camouflage clicks on popular items nearly worthless to attackers.
// Peeling removes the node of least marginal contribution with a priority
// queue, tracking the best prefix; the paper's experiments need multiple
// blocks, so detection repeats on the residual graph.
package fraudar

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector runs multi-block FRAUDAR as a detect.Detector.
type Detector struct {
	// Blocks is the number of dense blocks to extract (the paper notes
	// FRAUDAR cannot determine this by itself).
	Blocks int
	// MinUsers and MinItems drop degenerate blocks.
	MinUsers int
	MinItems int
	// LogOffset is the c of 1/log(x+c); FRAUDAR uses 5.
	LogOffset float64
}

// DefaultDetector returns the standard configuration with 5 blocks. The
// block count is FRAUDAR's structural weakness the paper calls out —
// "without determining the number of blocks in advance, the algorithm
// can't find multiple attack groups" — so the default deliberately does
// not assume knowledge of the true group count.
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{Blocks: 5, MinUsers: minUsers, MinItems: minItems, LogOffset: 5}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "FRAUDAR" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.Blocks < 1 {
		return nil, fmt.Errorf("fraudar: Blocks must be ≥ 1, got %d", d.Blocks)
	}
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("fraudar: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	if d.LogOffset <= 1 {
		return nil, fmt.Errorf("fraudar: LogOffset must exceed 1, got %v", d.LogOffset)
	}
	start := time.Now()

	// Column weights come from the FULL graph: camouflage resistance
	// depends on global item popularity, not the residual's.
	colW := make([]float64, g.NumItems())
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		colW[v] = 1 / math.Log(float64(g.ItemStrength(v))+d.LogOffset)
		return true
	})

	work := g.Clone()
	res := &detect.Result{}
	for b := 0; b < d.Blocks; b++ {
		users, items, score := peelOnce(work, colW)
		if len(users) < d.MinUsers || len(items) < d.MinItems {
			break
		}
		res.Groups = append(res.Groups, detect.Group{Users: users, Items: items, Score: score})
		for _, u := range users {
			work.RemoveUser(u)
		}
		for _, v := range items {
			work.RemoveItem(v)
		}
	}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	return res, nil
}

// peelOnce runs one greedy peeling pass over the residual graph and returns
// the densest prefix found with its g(S) score. The residual graph is not
// modified; peeling state is kept locally.
func peelOnce(g *bipartite.Graph, colW []float64) (users, items []bipartite.NodeID, best float64) {
	numU, numV := g.NumUsers(), g.NumItems()

	// Weighted contribution of every node under the current subset.
	contrib := make([]float64, numU+numV)
	alive := make([]bool, numU+numV)
	aliveCount := 0
	var total float64 // f(S): sum of in-subset edge suspiciousness

	g.EachLiveUser(func(u bipartite.NodeID) bool {
		alive[u] = true
		aliveCount++
		g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
			s := float64(w) * colW[v]
			contrib[u] += s
			contrib[numU+int(v)] += s
			total += s
			return true
		})
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		alive[numU+int(v)] = true
		aliveCount++
		return true
	})
	if aliveCount == 0 {
		return nil, nil, 0
	}

	pq := newNodeQueue(contrib, alive)

	// Peel to empty, remembering the best g(S) prefix; record removal
	// order so the winning subset can be reconstructed.
	order := make([]int32, 0, aliveCount)
	best = total / float64(aliveCount)
	bestIdx := 0 // number of removals performed when best was seen

	remaining := aliveCount
	for remaining > 1 {
		n := pq.popMin()
		order = append(order, int32(n))
		total -= contrib[n]
		remaining--

		// Update the counterpart contributions.
		if n < numU {
			u := bipartite.NodeID(n)
			g.EachUserNeighbor(u, func(v bipartite.NodeID, w uint32) bool {
				nv := numU + int(v)
				if alive[nv] {
					contrib[nv] -= float64(w) * colW[v]
					pq.update(nv, contrib[nv])
				}
				return true
			})
		} else {
			v := bipartite.NodeID(n - numU)
			g.EachItemNeighbor(v, func(u bipartite.NodeID, w uint32) bool {
				if alive[int(u)] {
					contrib[u] -= float64(w) * colW[v]
					pq.update(int(u), contrib[u])
				}
				return true
			})
		}
		alive[n] = false

		if gScore := total / float64(remaining); gScore > best {
			best = gScore
			bestIdx = len(order)
		}
	}

	// Survivors = all initially-alive nodes minus the first bestIdx
	// removals.
	removed := make([]bool, numU+numV)
	for i := 0; i < bestIdx; i++ {
		removed[order[i]] = true
	}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if !removed[u] {
			users = append(users, u)
		}
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if !removed[numU+int(v)] {
			items = append(items, v)
		}
		return true
	})
	return users, items, best
}

// nodeQueue is a min-heap over node contributions with decrease-key.
type nodeQueue struct {
	nodes []int32   // heap of node indices
	pos   []int32   // node → heap position (-1 if absent)
	key   []float64 // node → key
}

func newNodeQueue(contrib []float64, alive []bool) *nodeQueue {
	q := &nodeQueue{
		pos: make([]int32, len(contrib)),
		key: append([]float64(nil), contrib...),
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	for n, a := range alive {
		if a {
			q.pos[n] = int32(len(q.nodes))
			q.nodes = append(q.nodes, int32(n))
		}
	}
	heap.Init(q)
	return q
}

func (q *nodeQueue) Len() int { return len(q.nodes) }

func (q *nodeQueue) Less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if q.key[a] != q.key[b] {
		return q.key[a] < q.key[b]
	}
	return a < b // deterministic tie-break
}

func (q *nodeQueue) Swap(i, j int) {
	q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i]
	q.pos[q.nodes[i]] = int32(i)
	q.pos[q.nodes[j]] = int32(j)
}

func (q *nodeQueue) Push(x any) {
	n := x.(int32)
	q.pos[n] = int32(len(q.nodes))
	q.nodes = append(q.nodes, n)
}

func (q *nodeQueue) Pop() any {
	n := q.nodes[len(q.nodes)-1]
	q.nodes = q.nodes[:len(q.nodes)-1]
	q.pos[n] = -1
	return n
}

func (q *nodeQueue) popMin() int { return int(heap.Pop(q).(int32)) }

func (q *nodeQueue) update(n int, key float64) {
	q.key[n] = key
	if p := q.pos[n]; p >= 0 {
		heap.Fix(q, int(p))
	}
}
