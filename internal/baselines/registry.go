package baselines

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baselines/catchsync"
	"repro/internal/baselines/cn"
	"repro/internal/baselines/copycatch"
	"repro/internal/baselines/fraudar"
	"repro/internal/baselines/louvain"
	"repro/internal/baselines/lpa"
	"repro/internal/baselines/quasi"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/riskcontrol"
)

// factories maps detector names to constructors taking the shared RICD
// parameters (used for group-size bounds and screening thresholds).
var factories = map[string]func(core.Params) detect.Detector{
	"ricd":      func(p core.Params) detect.Detector { return &core.Detector{Params: p} },
	"ricd-ui":   func(p core.Params) detect.Detector { return &core.Detector{Params: p, Variant: core.VariantUI} },
	"ricd-i":    func(p core.Params) detect.Detector { return &core.Detector{Params: p, Variant: core.VariantI} },
	"naive":     func(p core.Params) detect.Detector { return &core.NaiveDetector{Params: p} },
	"lpa":       func(p core.Params) detect.Detector { return lpa.DefaultDetector(p.K1, p.K2) },
	"cn":        func(p core.Params) detect.Detector { return cn.DefaultDetector(p.K1, p.K2) },
	"louvain":   func(p core.Params) detect.Detector { return louvain.DefaultDetector(p.K1, p.K2) },
	"copycatch": func(p core.Params) detect.Detector { return copycatch.DefaultDetector(p.K1, p.K2) },
	"fraudar":   func(p core.Params) detect.Detector { return fraudar.DefaultDetector(p.K1, p.K2) },
	"quasi":     func(p core.Params) detect.Detector { return quasi.DefaultDetector(p.K1, p.K2) },
	"catchsync": func(p core.Params) detect.Detector { return catchsync.DefaultDetector() },
	"riskrules": func(p core.Params) detect.Detector {
		return &riskcontrol.Detector{Rules: riskcontrol.DefaultRules()}
	},
}

// Names returns the registry's detector names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New constructs a detector by name. `withUI` wraps non-RICD detectors with
// the screening module, as the paper's Fig 8 does; the RICD variants carry
// their own screening semantics and reject the wrapper.
func New(name string, p core.Params, withUI bool) (detect.Detector, error) {
	factory, ok := factories[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("baselines: unknown detector %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	d := factory(p)
	if withUI {
		if strings.HasPrefix(strings.ToLower(name), "ricd") {
			return nil, fmt.Errorf("baselines: %s already defines its screening; drop the UI wrapper", name)
		}
		d = &Screened{Inner: d, Params: p}
	}
	return d, nil
}
