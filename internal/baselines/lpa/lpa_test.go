package lpa

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestLPAFindsDenseBlocks(t *testing.T) {
	// Two disjoint 12×12 bicliques plus background noise pairs.
	b := bipartite.NewBuilder(40, 40)
	for blk := 0; blk < 2; blk++ {
		off := blk * 12
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				b.Add(bipartite.NodeID(off+u), bipartite.NodeID(off+v), 5)
			}
		}
	}
	for i := 24; i < 40; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	d := DefaultDetector(10, 10)
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Groups))
	}
	for _, grp := range res.Groups {
		if len(grp.Users) != 12 || len(grp.Items) != 12 {
			t.Errorf("group = %d users / %d items, want 12/12", len(grp.Users), len(grp.Items))
		}
	}
}

func TestLPASizeFilter(t *testing.T) {
	// A 5×5 biclique is below the 10/10 bound and must be filtered.
	b := bipartite.NewBuilder(5, 5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 2)
		}
	}
	res, err := DefaultDetector(10, 10).Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("got %d groups, want 0", len(res.Groups))
	}
}

func TestLPAValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	if _, err := (&Detector{MaxRound: 0, MinUsers: 1, MinItems: 1}).Detect(g); err == nil {
		t.Error("expected MaxRound error")
	}
	if _, err := (&Detector{MaxRound: 5, MinUsers: 0, MinItems: 1}).Detect(g); err == nil {
		t.Error("expected MinUsers error")
	}
}

func TestLPAHighRecallOnSynthetic(t *testing.T) {
	// The paper's Fig 8a: community methods achieve high recall. On
	// synthetic data LPA+size-filter should catch most attack groups
	// (precision is screened later by +UI).
	ds := synth.MustGenerate(synth.SmallConfig())
	res, err := DefaultDetector(10, 10).Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("LPA small: %v, groups=%d", ev, len(res.Groups))
	if ev.Recall < 0.5 {
		t.Errorf("LPA recall = %v, want ≥ 0.5", ev.Recall)
	}
}

func TestLPADetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "LPA" {
		t.Error("bad name")
	}
}
