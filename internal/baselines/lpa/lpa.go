// Package lpa implements the Label Propagation Algorithm baseline of the
// paper's evaluation: Raghavan-style label propagation over the user-item
// bipartite graph, run on the BSP engine (the Grape substitute) with the
// paper's defaults — max_round = 20 and a unique initial label per node.
// Communities large enough on both sides become candidate attack groups.
package lpa

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/engine"
)

// Detector runs LPA community detection as a detect.Detector.
type Detector struct {
	// MaxRound bounds the propagation rounds (paper default 20); one round
	// updates both sides once.
	MaxRound int
	// MinUsers and MinItems filter communities to plausible attack groups
	// (set to RICD's k₁/k₂ in the experiments).
	MinUsers int
	MinItems int
	// Workers is the engine worker count; 0 means GOMAXPROCS.
	Workers int
}

// DefaultDetector returns the paper's configuration with the given group
// size bounds.
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{MaxRound: 20, MinUsers: minUsers, MinItems: minItems}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "LPA" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.MaxRound < 1 {
		return nil, fmt.Errorf("lpa: MaxRound must be ≥ 1, got %d", d.MaxRound)
	}
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("lpa: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()

	adapter := engine.NewGraphAdapter(g)
	eng, err := engine.New(adapter.NumVertices(), workers)
	if err != nil {
		return nil, fmt.Errorf("lpa: %w", err)
	}
	prog := engine.NewLabelPropagationProgram(adapter)
	if _, err := eng.RunContext(context.Background(), prog, 2*d.MaxRound+2); err != nil {
		return nil, fmt.Errorf("lpa: %w", err)
	}
	labels := prog.Labels()

	// Group live vertices by final label.
	type comm struct {
		users []bipartite.NodeID
		items []bipartite.NodeID
	}
	comms := map[uint32]*comm{}
	get := func(l uint32) *comm {
		c := comms[l]
		if c == nil {
			c = &comm{}
			comms[l] = c
		}
		return c
	}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		c := get(labels[adapter.UserVertex(u)])
		c.users = append(c.users, u)
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		c := get(labels[adapter.ItemVertex(v)])
		c.items = append(c.items, v)
		return true
	})

	res := &detect.Result{}
	keys := make([]uint32, 0, len(comms))
	for l := range comms {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, l := range keys {
		c := comms[l]
		if len(c.users) >= d.MinUsers && len(c.items) >= d.MinItems {
			res.Groups = append(res.Groups, detect.Group{Users: c.users, Items: c.items})
		}
	}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	return res, nil
}
