// Package copycatch implements the COPYCATCH baseline as the paper used it.
// COPYCATCH proper detects temporally coherent bipartite cores; the click
// table has no timestamps, so — exactly as Section VI-A describes — it
// degenerates to enumerating (near-)biclique cores, a #P-hard problem run
// under a time budget. The enumerator is an iMBEA-style branch-and-bound
// over the item side with maximality checks, returning every maximal
// biclique with at least MinUsers × MinItems found before the deadline.
package copycatch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector enumerates maximal bicliques under a time budget.
type Detector struct {
	// MinUsers (m) and MinItems (n) bound reported bicliques, matched to
	// RICD's k₁/k₂ in the experiments.
	MinUsers int
	MinItems int
	// Budget caps enumeration time (the paper allowed ~600 s at Taobao
	// scale; default here is 2 s at 1:1000 scale).
	Budget time.Duration
	// MaxGroups stops enumeration early once this many bicliques are
	// found; 0 means unlimited.
	MaxGroups int
}

// DefaultDetector returns the experiment configuration.
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{MinUsers: minUsers, MinItems: minItems, Budget: 2 * time.Second}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "COPYCATCH" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("copycatch: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	if d.Budget <= 0 {
		return nil, fmt.Errorf("copycatch: Budget must be positive, got %v", d.Budget)
	}
	start := time.Now()
	deadline := start.Add(d.Budget)

	e := &enumerator{
		g:        g,
		minUsers: d.MinUsers,
		minItems: d.MinItems,
		deadline: deadline,
		maxOut:   d.MaxGroups,
	}
	// Initial candidate items: enough live users to matter, ordered by
	// ascending degree (iMBEA expands small candidates first to prune the
	// search tree early).
	var cand []bipartite.NodeID
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		if g.ItemDegree(v) >= d.MinUsers {
			cand = append(cand, v)
		}
		return true
	})
	sort.Slice(cand, func(i, j int) bool {
		di, dj := g.ItemDegree(cand[i]), g.ItemDegree(cand[j])
		if di != dj {
			return di < dj
		}
		return cand[i] < cand[j]
	})

	allUsers := g.LiveUserIDs()
	e.mine(allUsers, nil, cand, nil)

	res := &detect.Result{Groups: e.found}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	return res, nil
}

// enumerator carries the branch-and-bound state.
type enumerator struct {
	g        *bipartite.Graph
	minUsers int
	minItems int
	deadline time.Time
	maxOut   int

	found   []detect.Group
	ticker  int
	expired bool
}

// timeUp checks the deadline every few hundred nodes to keep the check
// cheap.
func (e *enumerator) timeUp() bool {
	if e.expired {
		return true
	}
	e.ticker++
	if e.ticker%256 == 0 && time.Now().After(e.deadline) {
		e.expired = true
	}
	if e.maxOut > 0 && len(e.found) >= e.maxOut {
		e.expired = true
	}
	return e.expired
}

// mine enumerates maximal bicliques (L, R): L users adjacent to every item
// of R; P candidate items that can extend R; Q items already processed
// (used for maximality checks).
func (e *enumerator) mine(L []bipartite.NodeID, R, P, Q []bipartite.NodeID) {
	for len(P) > 0 {
		if e.timeUp() {
			return
		}
		v := P[0]
		P = P[1:]

		// L′: users of L adjacent to v; prune if too small.
		var L2 []bipartite.NodeID
		for _, u := range L {
			if e.g.HasEdge(u, v) {
				L2 = append(L2, u)
			}
		}
		if len(L2) < e.minUsers {
			Q = append(Q, v)
			continue
		}
		R2 := append(append([]bipartite.NodeID(nil), R...), v)

		// Check maximality against Q: if some processed item covers all
		// of L′, this branch was already enumerated.
		maximal := true
		for _, q := range Q {
			if e.coversAll(q, L2) {
				maximal = false
				break
			}
		}
		if maximal {
			// Absorb candidates fully connected to L′ into R′ directly
			// (they must be in every maximal biclique over L′); others
			// form the next candidate set.
			var P2 []bipartite.NodeID
			for _, c := range P {
				if e.coversAll(c, L2) {
					R2 = append(R2, c)
				} else if e.countIn(c, L2) >= e.minUsers {
					P2 = append(P2, c)
				}
			}
			if len(R2) >= e.minItems {
				e.emit(L2, R2)
			}
			e.mine(L2, R2, P2, append(append([]bipartite.NodeID(nil), Q...), nil...))
		}
		Q = append(Q, v)
	}
}

func (e *enumerator) coversAll(item bipartite.NodeID, users []bipartite.NodeID) bool {
	for _, u := range users {
		if !e.g.HasEdge(u, item) {
			return false
		}
	}
	return true
}

func (e *enumerator) countIn(item bipartite.NodeID, users []bipartite.NodeID) int {
	n := 0
	for _, u := range users {
		if e.g.HasEdge(u, item) {
			n++
		}
	}
	return n
}

func (e *enumerator) emit(users, items []bipartite.NodeID) {
	u := append([]bipartite.NodeID(nil), users...)
	v := append([]bipartite.NodeID(nil), items...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	// Deduplicate: the same (L,R) can be reached through absorb paths.
	for _, f := range e.found {
		if equalIDs(f.Users, u) && equalIDs(f.Items, v) {
			return
		}
	}
	e.found = append(e.found, detect.Group{Users: u, Items: v})
}

func equalIDs(a, b []bipartite.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
