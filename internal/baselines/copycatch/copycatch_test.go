package copycatch

import (
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

func TestFindsPlantedMaximalBiclique(t *testing.T) {
	// One 12×12 biclique plus sparse noise.
	b := bipartite.NewBuilder(30, 30)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	for i := 12; i < 30; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	res, err := DefaultDetector(10, 10).Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d bicliques, want 1", len(res.Groups))
	}
	if len(res.Groups[0].Users) != 12 || len(res.Groups[0].Items) != 12 {
		t.Errorf("biclique = %d×%d, want 12×12",
			len(res.Groups[0].Users), len(res.Groups[0].Items))
	}
}

func TestEnumeratesOverlappingBicliques(t *testing.T) {
	// Users 0..11 all click items 0..11; users 0..5 additionally click
	// items 12..23. Maximal bicliques of size ≥ (5,10):
	// (12 users × 12 items) and (6 users × 24 items).
	b := bipartite.NewBuilder(12, 24)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	for u := 0; u < 6; u++ {
		for v := 12; v < 24; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	d := &Detector{MinUsers: 5, MinItems: 10, Budget: 5 * time.Second}
	res, err := d.Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[[2]int]bool{}
	for _, grp := range res.Groups {
		sizes[[2]int{len(grp.Users), len(grp.Items)}] = true
	}
	if !sizes[[2]int{12, 12}] {
		t.Errorf("missing 12×12 biclique; got %v", sizes)
	}
	if !sizes[[2]int{6, 24}] {
		t.Errorf("missing 6×24 biclique; got %v", sizes)
	}
}

func TestEveryReportedGroupIsABiclique(t *testing.T) {
	b := bipartite.NewBuilder(15, 15)
	for u := 0; u < 15; u++ {
		for v := 0; v < 15; v++ {
			if (u+v)%4 != 0 {
				b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
			}
		}
	}
	g := b.Build()
	d := &Detector{MinUsers: 3, MinItems: 3, Budget: 5 * time.Second}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range res.Groups {
		for _, u := range grp.Users {
			for _, v := range grp.Items {
				if !g.HasEdge(u, v) {
					t.Fatalf("group (%v, %v) is not complete: missing (%d,%d)",
						grp.Users, grp.Items, u, v)
				}
			}
		}
	}
	if len(res.Groups) == 0 {
		t.Error("no bicliques found at all")
	}
}

func TestBudgetExpires(t *testing.T) {
	// A dense random-ish graph with a 1 ns budget must return quickly,
	// possibly with partial output — and never hang.
	b := bipartite.NewBuilder(60, 60)
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			if (u*7+v*13)%3 != 0 {
				b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
			}
		}
	}
	d := &Detector{MinUsers: 3, MinItems: 3, Budget: time.Nanosecond}
	start := time.Now()
	if _, err := d.Detect(b.Build()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("budget not honored")
	}
}

func TestMaxGroupsStopsEarly(t *testing.T) {
	b := bipartite.NewBuilder(20, 20)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if (u+v)%5 != 0 {
				b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
			}
		}
	}
	d := &Detector{MinUsers: 2, MinItems: 2, Budget: 5 * time.Second, MaxGroups: 3}
	res, err := d.Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) > 3 {
		t.Errorf("MaxGroups=3 but got %d groups", len(res.Groups))
	}
}

func TestValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	if _, err := (&Detector{MinUsers: 0, MinItems: 1, Budget: time.Second}).Detect(g); err == nil {
		t.Error("expected MinUsers error")
	}
	if _, err := (&Detector{MinUsers: 1, MinItems: 1, Budget: 0}).Detect(g); err == nil {
		t.Error("expected Budget error")
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "COPYCATCH" {
		t.Error("bad name")
	}
}
