package catchsync

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestFlagsSynchronizedUsers(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	d := DefaultDetector()
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("CATCHSYNC small: %v", ev)
	// Crowd workers click near-identical fringe item sets: synchronicity
	// must catch a solid share of them.
	if ev.Recall < 0.3 {
		t.Errorf("recall = %v, want ≥ 0.3", ev.Recall)
	}
}

func TestCamouflageDegradesCatchSync(t *testing.T) {
	// The paper: "this method is not robust against experienced
	// adversaries" — heavy camouflage spreads the attacker's neighborhood
	// across feature cells and dilutes synchronicity.
	base := synth.SmallConfig()
	heavy := base
	heavy.Attack.CamouflageItemsMin = 20
	heavy.Attack.CamouflageItemsMax = 30

	run := func(cfg synth.Config) float64 {
		ds := synth.MustGenerate(cfg)
		res, err := DefaultDetector().Detect(ds.Graph)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Evaluate(res, ds.Truth).Recall
	}
	light := run(base)
	camo := run(heavy)
	t.Logf("recall: light camouflage %v, heavy camouflage %v", light, camo)
	if camo >= light {
		t.Errorf("heavy camouflage did not degrade CATCHSYNC: %v → %v", light, camo)
	}
}

func TestIgnoresSingleClickUsers(t *testing.T) {
	b := bipartite.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1) // degree-1 users
	}
	res, err := DefaultDetector().Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumNodes() != 0 {
		t.Errorf("degree-1 users flagged: %v", res.Users())
	}
}

func TestValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	bad := []Detector{
		{GridBits: 0, Theta: 3, MinItemShare: 0.5},
		{GridBits: 20, Theta: 3, MinItemShare: 0.5},
		{GridBits: 5, Theta: 1, MinItemShare: 0.5},
		{GridBits: 5, Theta: 3, MinItemShare: 0},
		{GridBits: 5, Theta: 3, MinItemShare: 1.5},
	}
	for i, d := range bad {
		if _, err := d.Detect(g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLogBucketBounds(t *testing.T) {
	side := int32(32)
	if b := logBucket(0, side); b != 0 {
		t.Errorf("logBucket(0) = %d", b)
	}
	if b := logBucket(1e12, side); b != side-1 {
		t.Errorf("logBucket(1e12) = %d, want %d", b, side-1)
	}
	if logBucket(100, side) <= logBucket(2, side) {
		t.Error("buckets not increasing with magnitude")
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector().Name() != "CATCHSYNC" {
		t.Error("bad name")
	}
}
