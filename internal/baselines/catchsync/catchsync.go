// Package catchsync implements a CATCHSYNC-style synchronized-behavior
// detector (Jiang et al., KDD 2014), adapted from directed follower graphs
// to bipartite click graphs as the paper's related work discusses
// (Section II-B). The idea: map every item into a small feature space
// (popularity × breadth), then score each user by how CONCENTRATED its
// clicked items are in that space (synchronicity) relative to how
// concentrated the marketplace is overall (normality). Crowd workers click
// near-identical item sets — a handful of hot items plus the same fringe
// targets — so their synchronicity is far above what their normality
// predicts; organic shoppers spread out.
//
// The paper's criticisms, both reproducible here: the method is "not
// robust against experienced adversaries" (heavier camouflage dilutes
// synchronicity) and it flags users without group structure (one
// undifferentiated block, no per-group output).
package catchsync

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector flags users whose neighborhood synchronicity exceeds their
// normality by Theta.
type Detector struct {
	// GridBits controls feature-space resolution: items are bucketed into
	// 2^GridBits × 2^GridBits cells over (log popularity, log breadth).
	GridBits int
	// Theta is the sync/normality ratio above which a user is flagged.
	Theta float64
	// MinItemShare flags an item when at least this fraction of its
	// clickers are flagged users.
	MinItemShare float64
}

// DefaultDetector returns a configuration tuned like the original paper's
// grid (roughly 2^5 cells per axis) with a 3× concentration threshold.
func DefaultDetector() *Detector {
	return &Detector{GridBits: 5, Theta: 3, MinItemShare: 0.5}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "CATCHSYNC" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.GridBits < 1 || d.GridBits > 12 {
		return nil, fmt.Errorf("catchsync: GridBits must be in [1,12], got %d", d.GridBits)
	}
	if d.Theta <= 1 {
		return nil, fmt.Errorf("catchsync: Theta must exceed 1, got %v", d.Theta)
	}
	if d.MinItemShare <= 0 || d.MinItemShare > 1 {
		return nil, fmt.Errorf("catchsync: MinItemShare must be in (0,1], got %v", d.MinItemShare)
	}
	start := time.Now()

	cells, cellShare := d.featurize(g)

	// Score users: synchronicity = probability two of the user's items
	// share a cell; normality = expected value of that probability if the
	// user's items were drawn from the marketplace distribution.
	var flagged []bipartite.NodeID
	flaggedSet := map[bipartite.NodeID]bool{}
	counts := map[int32]int{}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		deg := g.UserDegree(u)
		if deg < 2 {
			return true
		}
		for k := range counts {
			delete(counts, k)
		}
		norm := 0.0
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			c := cells[v]
			counts[c]++
			norm += cellShare[c]
			return true
		})
		pairs := deg * (deg - 1) / 2
		same := 0
		for _, k := range counts {
			same += k * (k - 1) / 2
		}
		sync := float64(same) / float64(pairs)
		norm /= float64(deg)
		if norm <= 0 {
			return true
		}
		if sync > d.Theta*norm {
			flagged = append(flagged, u)
			flaggedSet[u] = true
		}
		return true
	})

	// Items dominated by flagged users.
	var items []bipartite.NodeID
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		total, bad := 0, 0
		g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			total++
			if flaggedSet[u] {
				bad++
			}
			return true
		})
		if total > 0 && float64(bad) >= d.MinItemShare*float64(total) {
			items = append(items, v)
		}
		return true
	})

	res := &detect.Result{Elapsed: time.Since(start)}
	res.DetectElapsed = res.Elapsed
	if len(flagged) > 0 || len(items) > 0 {
		sort.Slice(flagged, func(i, j int) bool { return flagged[i] < flagged[j] })
		res.Groups = []detect.Group{{Users: flagged, Items: items}}
	}
	return res, nil
}

// featurize buckets every live item into a grid cell over
// (log2 total clicks, log2 clicker count) and returns each cell's share of
// all items.
func (d *Detector) featurize(g *bipartite.Graph) (cells []int32, cellShare map[int32]float64) {
	side := int32(1) << d.GridBits
	cells = make([]int32, g.NumItems())
	occupancy := map[int32]int{}
	total := 0
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		x := logBucket(float64(g.ItemStrength(v)), side)
		y := logBucket(float64(g.ItemDegree(v)), side)
		c := x*side + y
		cells[v] = c
		occupancy[c]++
		total++
		return true
	})
	cellShare = make(map[int32]float64, len(occupancy))
	for c, n := range occupancy {
		cellShare[c] = float64(n) / float64(total)
	}
	return cells, cellShare
}

// logBucket maps x ≥ 0 onto [0, side) logarithmically (~2 buckets per
// doubling at GridBits=5 over a 1..10^6 range).
func logBucket(x float64, side int32) int32 {
	if x < 1 {
		x = 1
	}
	b := int32(math.Log2(x) * float64(side) / 24)
	if b >= side {
		b = side - 1
	}
	return b
}
