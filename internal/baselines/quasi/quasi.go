// Package quasi implements a maximum quasi-biclique searcher — the related
// work of Section II-A (Wang 2013; Ignatov 2018). A γ-quasi-biclique is a
// pair (L, R) where every user of L connects to at least γ·|R| items of R
// and vice versa; finding the maximum one is NP-hard, so this package uses
// the standard greedy local-search heuristic: grow from the densest seed
// edge, adding the vertex that keeps the γ constraint while maximizing the
// block, until no vertex qualifies.
//
// The paper's criticism — which this implementation exists to demonstrate —
// is that maximum quasi-biclique search "can only output one near
// biclique": a marketplace with several attack groups yields the single
// largest one and misses the rest.
package quasi

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector searches for the maximum γ-quasi-biclique.
type Detector struct {
	// Gamma is the quasi-biclique tolerance in (0,1]; 1.0 demands a
	// perfect biclique.
	Gamma float64
	// MinUsers/MinItems discard degenerate results.
	MinUsers, MinItems int
	// Restarts is how many greedy growths from different seeds are tried;
	// the best block wins. More restarts cost time but escape bad seeds.
	Restarts int
}

// DefaultDetector mirrors the experiments' group bounds with γ = 0.9.
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{Gamma: 0.9, MinUsers: minUsers, MinItems: minItems, Restarts: 8}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "QuasiBiclique" }

// Detect implements detect.Detector: it returns at most ONE group — the
// structural limitation the paper calls out.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.Gamma <= 0 || d.Gamma > 1 {
		return nil, fmt.Errorf("quasi: Gamma must be in (0,1], got %v", d.Gamma)
	}
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("quasi: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	if d.Restarts < 1 {
		return nil, fmt.Errorf("quasi: Restarts must be ≥ 1, got %d", d.Restarts)
	}
	start := time.Now()

	seeds := d.seedUsers(g)
	var bestU, bestV []bipartite.NodeID
	bestSize := 0
	for _, seed := range seeds {
		users, items := d.grow(g, seed)
		if len(users) >= d.MinUsers && len(items) >= d.MinItems &&
			len(users)*len(items) > bestSize {
			bestU, bestV = users, items
			bestSize = len(users) * len(items)
		}
	}

	res := &detect.Result{Elapsed: time.Since(start)}
	res.DetectElapsed = res.Elapsed
	if bestSize > 0 {
		res.Groups = []detect.Group{{Users: bestU, Items: bestV}}
	}
	return res, nil
}

// seedUsers picks growth seeds by the standard quasi-biclique heuristic:
// users that share many items with some OTHER user (high best-pair common
// neighborhood) sit inside dense blocks; raw degree does not, because the
// highest-degree users are organic power shoppers whose neighborhoods
// overlap nobody's. A strided sample bounds the cost on large graphs.
func (d *Detector) seedUsers(g *bipartite.Graph) []bipartite.NodeID {
	type scored struct {
		u     bipartite.NodeID
		score int
	}
	var candidates []scored

	live := g.LiveUserIDs()
	budget := 64 * d.Restarts
	stride := 1
	if len(live) > budget {
		stride = len(live) / budget
	}
	counts := map[bipartite.NodeID]int{}
	for i := 0; i < len(live); i += stride {
		u := live[i]
		deg := g.UserDegree(u)
		if deg < d.MinItems || deg > 300 {
			continue // too sparse to span a block / organic power shopper
		}
		for k := range counts {
			delete(counts, k)
		}
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			g.EachItemNeighbor(v, func(u2 bipartite.NodeID, _ uint32) bool {
				if u2 != u {
					counts[u2]++
				}
				return true
			})
			return true
		})
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		candidates = append(candidates, scored{u, best})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].score != candidates[j].score {
			return candidates[i].score > candidates[j].score
		}
		return candidates[i].u < candidates[j].u
	})
	n := d.Restarts
	if n > len(candidates) {
		n = len(candidates)
	}
	out := make([]bipartite.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[i].u
	}
	return out
}

// grow expands a quasi-biclique from one seed user: items start as the
// seed's neighborhood, then users and items are alternately admitted while
// they satisfy the γ-connectivity against the current other side, and
// vertices that fall below γ as the block grows are evicted.
func (d *Detector) grow(g *bipartite.Graph, seed bipartite.NodeID) (users, items []bipartite.NodeID) {
	inU := map[bipartite.NodeID]bool{seed: true}
	inV := map[bipartite.NodeID]bool{}
	g.EachUserNeighbor(seed, func(v bipartite.NodeID, _ uint32) bool {
		inV[v] = true
		return true
	})

	countIn := func(u bipartite.NodeID) int {
		n := 0
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			if inV[v] {
				n++
			}
			return true
		})
		return n
	}
	countInItems := func(v bipartite.NodeID) int {
		n := 0
		g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
			if inU[u] {
				n++
			}
			return true
		})
		return n
	}

	for round := 0; round < 30; round++ {
		changed := false

		// Admit users connected to ≥ γ·|V| of the current items.
		need := ceil(d.Gamma * float64(len(inV)))
		cand := map[bipartite.NodeID]bool{}
		for v := range inV {
			g.EachItemNeighbor(v, func(u bipartite.NodeID, _ uint32) bool {
				if !inU[u] {
					cand[u] = true
				}
				return true
			})
		}
		for u := range cand {
			if countIn(u) >= need {
				inU[u] = true
				changed = true
			}
		}

		// Admit items connected to ≥ γ·|U| of the current users.
		needI := ceil(d.Gamma * float64(len(inU)))
		candV := map[bipartite.NodeID]bool{}
		for u := range inU {
			g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
				if !inV[v] {
					candV[v] = true
				}
				return true
			})
		}
		for v := range candV {
			if countInItems(v) >= needI {
				inV[v] = true
				changed = true
			}
		}

		// Evict members that fell below γ as the block grew.
		need = ceil(d.Gamma * float64(len(inV)))
		for u := range inU {
			if countIn(u) < need {
				delete(inU, u)
				changed = true
			}
		}
		needI = ceil(d.Gamma * float64(len(inU)))
		for v := range inV {
			if countInItems(v) < needI {
				delete(inV, v)
				changed = true
			}
		}

		if !changed || len(inU) == 0 || len(inV) == 0 {
			break
		}
	}

	users = sortedIDs(inU)
	items = sortedIDs(inV)
	return users, items
}

func ceil(x float64) int {
	n := int(x)
	if float64(n) < x {
		n++
	}
	return n
}

func sortedIDs(m map[bipartite.NodeID]bool) []bipartite.NodeID {
	out := make([]bipartite.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
