package quasi

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestFindsPlantedQuasiBiclique(t *testing.T) {
	// 12×12 block with 10% of edges knocked out, plus noise.
	b := bipartite.NewBuilder(40, 40)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if (u*12+v)%10 == 3 {
				continue
			}
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 5)
		}
	}
	for i := 12; i < 40; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	d := &Detector{Gamma: 0.8, MinUsers: 8, MinItems: 8, Restarts: 5}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(res.Groups))
	}
	grp := res.Groups[0]
	inBlock := 0
	for _, u := range grp.Users {
		if u < 12 {
			inBlock++
		}
	}
	if inBlock < 10 {
		t.Errorf("block coverage %d/12 users", inBlock)
	}
}

func TestOutputsOnlyOneGroup(t *testing.T) {
	// The structural limitation the paper criticizes: with three implanted
	// attack groups, the maximum quasi-biclique search reports only one.
	ds := synth.MustGenerate(synth.SmallConfig())
	d := DefaultDetector(10, 10)
	res, err := d.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) > 1 {
		t.Fatalf("maximum quasi-biclique search returned %d groups", len(res.Groups))
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("quasi on 3-group dataset: %v", ev)
	if ev.Recall > 0.6 {
		t.Errorf("recall %v too high for a single-group method on 3 groups", ev.Recall)
	}
}

func TestGammaOneDemandsBiclique(t *testing.T) {
	// With γ=1 the grown block must be a perfect biclique.
	b := bipartite.NewBuilder(10, 10)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 2)
		}
	}
	b.Add(0, 7, 1) // dangling extra edge
	g := b.Build()
	d := &Detector{Gamma: 1.0, MinUsers: 3, MinItems: 3, Restarts: 3}
	res, err := d.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d groups", len(res.Groups))
	}
	grp := res.Groups[0]
	for _, u := range grp.Users {
		for _, v := range grp.Items {
			if !g.HasEdge(u, v) {
				t.Fatalf("γ=1 block is not complete: missing (%d,%d)", u, v)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	bad := []Detector{
		{Gamma: 0, MinUsers: 1, MinItems: 1, Restarts: 1},
		{Gamma: 1.2, MinUsers: 1, MinItems: 1, Restarts: 1},
		{Gamma: 0.9, MinUsers: 0, MinItems: 1, Restarts: 1},
		{Gamma: 0.9, MinUsers: 1, MinItems: 1, Restarts: 0},
	}
	for i, d := range bad {
		if _, err := d.Detect(g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "QuasiBiclique" {
		t.Error("bad name")
	}
}
