package baselines

import (
	"errors"
	"testing"

	"repro/internal/baselines/lpa"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func smallParams() core.Params {
	p := core.DefaultParams()
	p.THot = 400
	return p
}

func TestScreenedImprovesPrecision(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	raw := lpa.DefaultDetector(10, 10)
	rawRes, err := raw.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &Screened{Inner: lpa.DefaultDetector(10, 10), Params: smallParams()}
	scrRes, err := wrapped.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rawEv := metrics.Evaluate(rawRes, ds.Truth)
	scrEv := metrics.Evaluate(scrRes, ds.Truth)
	t.Logf("LPA raw: %v\nLPA+UI:  %v", rawEv, scrEv)
	if scrEv.Precision < rawEv.Precision {
		t.Errorf("screening lowered precision: %v → %v", rawEv.Precision, scrEv.Precision)
	}
	if scrEv.Recall > rawEv.Recall+1e-9 {
		t.Errorf("screening cannot raise recall: %v → %v", rawEv.Recall, scrEv.Recall)
	}
}

func TestScreenedName(t *testing.T) {
	w := &Screened{Inner: lpa.DefaultDetector(1, 1)}
	if w.Name() != "LPA+UI" {
		t.Errorf("Name = %q, want LPA+UI", w.Name())
	}
}

func TestScreenedTimingSplit(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	w := &Screened{Inner: lpa.DefaultDetector(10, 10), Params: smallParams()}
	res, err := w.Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectElapsed <= 0 || res.Elapsed < res.DetectElapsed {
		t.Errorf("timings: detect=%v screen=%v total=%v",
			res.DetectElapsed, res.ScreenElapsed, res.Elapsed)
	}
}

func TestScreenedPropagatesInnerError(t *testing.T) {
	w := &Screened{Inner: failingDetector{}, Params: smallParams()}
	if _, err := w.Detect(bipartite.NewGraph(1, 1)); err == nil {
		t.Error("inner error swallowed")
	}
}

func TestScreenedValidatesParams(t *testing.T) {
	w := &Screened{Inner: lpa.DefaultDetector(1, 1)} // zero Params
	if _, err := w.Detect(bipartite.NewGraph(1, 1)); err == nil {
		t.Error("expected params validation error")
	}
}

type failingDetector struct{}

func (failingDetector) Name() string { return "boom" }
func (failingDetector) Detect(*bipartite.Graph) (*detect.Result, error) {
	return nil, errors.New("boom")
}
