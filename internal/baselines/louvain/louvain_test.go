package louvain

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func twoBlocks() *bipartite.Graph {
	b := bipartite.NewBuilder(24, 24)
	for blk := 0; blk < 2; blk++ {
		off := blk * 12
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				b.Add(bipartite.NodeID(off+u), bipartite.NodeID(off+v), 4)
			}
		}
	}
	// One weak bridge between the blocks.
	b.Add(0, 13, 1)
	return b.Build()
}

func TestLouvainSeparatesDenseBlocks(t *testing.T) {
	res, err := DefaultDetector(10, 10).Detect(twoBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Groups))
	}
	for _, grp := range res.Groups {
		if len(grp.Users) != 12 || len(grp.Items) != 12 {
			t.Errorf("group = %d users / %d items, want 12/12", len(grp.Users), len(grp.Items))
		}
	}
}

func TestLouvainModularityImproves(t *testing.T) {
	g := twoBlocks()
	w := newWorkGraph(g)
	singleton := w.modularity(identity(w.n))
	comm, moves := w.localMoving(1)
	if moves == 0 {
		t.Fatal("local moving made no moves on a clearly modular graph")
	}
	if q := w.modularity(comm); q <= singleton {
		t.Errorf("modularity %v did not improve over singleton %v", q, singleton)
	}
}

func TestLouvainAggregatePreservesTotalWeight(t *testing.T) {
	g := twoBlocks()
	w := newWorkGraph(g)
	comm, _ := w.localMoving(1)
	agg := w.aggregate(comm)
	if agg.total != w.total {
		t.Errorf("aggregate total = %v, want %v", agg.total, w.total)
	}
	if agg.n >= w.n {
		t.Errorf("aggregation did not shrink the graph: %d → %d", w.n, agg.n)
	}
}

func TestLouvainModularityBounds(t *testing.T) {
	g := twoBlocks()
	w := newWorkGraph(g)
	comm, _ := w.localMoving(1)
	q := w.modularity(comm)
	if q < -1 || q > 1 {
		t.Errorf("modularity %v out of [-1,1]", q)
	}
}

func TestLouvainEmptyGraph(t *testing.T) {
	res, err := DefaultDetector(1, 1).Detect(bipartite.NewGraph(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("empty graph produced %d groups", len(res.Groups))
	}
}

func TestLouvainValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	if _, err := (&Detector{MaxLevels: 1, MinUsers: 0, MinItems: 1}).Detect(g); err == nil {
		t.Error("expected MinUsers error")
	}
	if _, err := (&Detector{MaxLevels: 0, MinUsers: 1, MinItems: 1}).Detect(g); err == nil {
		t.Error("expected MaxLevels error")
	}
}

func TestLouvainOnSyntheticAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	res, err := DefaultDetector(10, 10).Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("Louvain small: %v, groups=%d", ev, len(res.Groups))
	// Louvain lumps attackers into big mixed communities: recall decent,
	// precision poor (the paper ranks it near the bottom).
	if ev.Recall < 0.3 {
		t.Errorf("Louvain recall = %v, want ≥ 0.3", ev.Recall)
	}
}

func TestLouvainDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "Louvain" {
		t.Error("bad name")
	}
}
