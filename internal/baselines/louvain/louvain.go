// Package louvain implements the Louvain community-detection baseline: the
// classic two-phase modularity heuristic (local moving + graph aggregation)
// of Blondel et al., applied to the user-item click graph treated as a
// general weighted graph, as the paper's Grape-based baseline does. The
// knobs mirror the paper's defaults: a tolerance on per-level modularity
// improvement and a minimal-progress threshold on moves per sweep.
package louvain

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector runs Louvain as a detect.Detector.
type Detector struct {
	// Tolerance is the minimum modularity gain for another aggregation
	// level to be attempted.
	Tolerance float64
	// MinProgress is the minimum number of node moves for another local
	// sweep to be attempted within a level (the paper passes 1,000 at
	// Taobao scale; scale it with the dataset).
	MinProgress int
	// MaxLevels caps aggregation depth.
	MaxLevels int
	// MinUsers and MinItems filter communities to plausible attack groups.
	MinUsers int
	MinItems int
}

// DefaultDetector returns a configuration matching the paper's spirit at
// this repository's dataset scale.
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{
		Tolerance:   1e-6,
		MinProgress: 1,
		MaxLevels:   10,
		MinUsers:    minUsers,
		MinItems:    minItems,
	}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "Louvain" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("louvain: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	if d.MaxLevels < 1 {
		return nil, fmt.Errorf("louvain: MaxLevels must be ≥ 1, got %d", d.MaxLevels)
	}
	start := time.Now()

	numUsers := g.NumUsers()
	w := newWorkGraph(g)

	// membership[v] is the original vertex's community through all levels.
	membership := make([]int, w.n)
	for i := range membership {
		membership[i] = i
	}

	prevQ := w.modularity(identity(w.n))
	for level := 0; level < d.MaxLevels; level++ {
		comm, moved := w.localMoving(d.MinProgress)
		if moved == 0 {
			break
		}
		// Fold the level's assignment into the global membership.
		for i := range membership {
			membership[i] = comm[membership[i]]
		}
		q := w.modularity(comm)
		w = w.aggregate(comm)
		// Renumber membership to the aggregated node IDs (aggregate
		// guarantees comm values are dense 0..k-1 already).
		if q-prevQ < d.Tolerance {
			break
		}
		prevQ = q
	}

	// Gather communities over original vertices.
	comms := map[int]*struct {
		users []bipartite.NodeID
		items []bipartite.NodeID
	}{}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		c := membership[int(u)]
		e := comms[c]
		if e == nil {
			e = &struct {
				users []bipartite.NodeID
				items []bipartite.NodeID
			}{}
			comms[c] = e
		}
		e.users = append(e.users, u)
		return true
	})
	g.EachLiveItem(func(v bipartite.NodeID) bool {
		c := membership[numUsers+int(v)]
		e := comms[c]
		if e == nil {
			e = &struct {
				users []bipartite.NodeID
				items []bipartite.NodeID
			}{}
			comms[c] = e
		}
		e.items = append(e.items, v)
		return true
	})

	keys := make([]int, 0, len(comms))
	for c := range comms {
		keys = append(keys, c)
	}
	sort.Ints(keys)

	res := &detect.Result{}
	for _, c := range keys {
		e := comms[c]
		if len(e.users) >= d.MinUsers && len(e.items) >= d.MinItems {
			res.Groups = append(res.Groups, detect.Group{Users: e.users, Items: e.items})
		}
	}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	return res, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// workGraph is the weighted general graph Louvain operates on; node IDs are
// dense. Bipartite users occupy 0..NumUsers-1 and items follow, at level 0.
type workGraph struct {
	n     int
	adj   []map[int]float64 // adjacency with weights; self-loops allowed
	deg   []float64         // weighted degree incl. 2×self-loop
	total float64           // 2m: sum of deg
}

func newWorkGraph(g *bipartite.Graph) *workGraph {
	numUsers := g.NumUsers()
	n := numUsers + g.NumItems()
	w := &workGraph{
		n:   n,
		adj: make([]map[int]float64, n),
		deg: make([]float64, n),
	}
	for i := range w.adj {
		w.adj[i] = map[int]float64{}
	}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		g.EachUserNeighbor(u, func(v bipartite.NodeID, wt uint32) bool {
			a, b := int(u), numUsers+int(v)
			w.adj[a][b] += float64(wt)
			w.adj[b][a] += float64(wt)
			w.deg[a] += float64(wt)
			w.deg[b] += float64(wt)
			w.total += 2 * float64(wt)
			return true
		})
		return true
	})
	return w
}

// localMoving runs Louvain phase 1 and returns a dense community assignment
// plus the total number of moves performed.
func (w *workGraph) localMoving(minProgress int) (comm []int, totalMoves int) {
	comm = identity(w.n)
	commTot := append([]float64(nil), w.deg...) // Σ_tot per community

	if w.total == 0 {
		return comm, 0
	}
	if minProgress < 1 {
		minProgress = 1
	}

	for {
		moves := 0
		for node := 0; node < w.n; node++ {
			if w.deg[node] == 0 {
				continue
			}
			cur := comm[node]
			// Weights from node to each neighboring community.
			toComm := map[int]float64{}
			for nbr, wt := range w.adj[node] {
				if nbr == node {
					continue
				}
				toComm[comm[nbr]] += wt
			}
			// Remove node from its community for gain evaluation.
			commTot[cur] -= w.deg[node]

			best, bestGain := cur, 0.0
			baseIn := toComm[cur]
			for c, in := range toComm {
				// ΔQ of joining c (relative to staying isolated):
				// in/m − Σ_tot(c)·k_i / (2m²), scaled by 2/total.
				gain := in - commTot[c]*w.deg[node]/w.total
				ref := baseIn - commTot[cur]*w.deg[node]/w.total
				if gain-ref > bestGain+1e-12 {
					best, bestGain = c, gain-ref
				}
			}
			commTot[best] += w.deg[node]
			if best != cur {
				comm[node] = best
				moves++
			}
		}
		totalMoves += moves
		if moves < minProgress {
			break
		}
	}

	// Renumber communities densely.
	remap := map[int]int{}
	for i, c := range comm {
		if _, ok := remap[c]; !ok {
			remap[c] = len(remap)
		}
		comm[i] = remap[c]
	}
	return comm, totalMoves
}

// aggregate builds the level-(k+1) graph whose nodes are the communities of
// the dense assignment comm.
func (w *workGraph) aggregate(comm []int) *workGraph {
	k := 0
	for _, c := range comm {
		if c+1 > k {
			k = c + 1
		}
	}
	agg := &workGraph{
		n:   k,
		adj: make([]map[int]float64, k),
		deg: make([]float64, k),
	}
	for i := range agg.adj {
		agg.adj[i] = map[int]float64{}
	}
	for node := 0; node < w.n; node++ {
		a := comm[node]
		for nbr, wt := range w.adj[node] {
			b := comm[nbr]
			if node <= nbr { // count each undirected edge once
				agg.adj[a][b] += wt
				if a != b {
					agg.adj[b][a] += wt
				}
			}
		}
	}
	for node := 0; node < k; node++ {
		for nbr, wt := range agg.adj[node] {
			if nbr == node {
				agg.deg[node] += 2 * wt
			} else {
				agg.deg[node] += wt
			}
		}
		agg.total += agg.deg[node]
	}
	return agg
}

// modularity computes Newman modularity of the assignment on w.
func (w *workGraph) modularity(comm []int) float64 {
	if w.total == 0 {
		return 0
	}
	in := map[int]float64{}  // Σ_in per community (×2 for internal edges)
	tot := map[int]float64{} // Σ_tot per community
	for node := 0; node < w.n; node++ {
		c := comm[node]
		tot[c] += w.deg[node]
		for nbr, wt := range w.adj[node] {
			if comm[nbr] == c {
				if nbr == node {
					in[c] += 2 * wt
				} else {
					in[c] += wt
				}
			}
		}
	}
	q := 0.0
	for c, t := range tot {
		q += in[c]/w.total - (t/w.total)*(t/w.total)
	}
	return q
}
