package cn

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestCNClustersCoClickingUsers(t *testing.T) {
	// 12 users all clicking the same 12 items (common neighbors = 12 ≥ 10)
	// plus loner users sharing nothing.
	b := bipartite.NewBuilder(20, 20)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 2)
		}
	}
	for i := 12; i < 20; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
	}
	g := b.Build()
	res, err := DefaultDetector(10, 10).Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(res.Groups))
	}
	if len(res.Groups[0].Users) != 12 || len(res.Groups[0].Items) != 12 {
		t.Errorf("group = %d users / %d items, want 12/12",
			len(res.Groups[0].Users), len(res.Groups[0].Items))
	}
}

func TestCNThresholdSeparatesClusters(t *testing.T) {
	// Users 0-11 share items 0-11; users 12-23 share items 12-23; the two
	// halves overlap in only 3 items (24-26) — below threshold 10, so CN
	// must report two clusters, not one.
	b := bipartite.NewBuilder(24, 27)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	for u := 12; u < 24; u++ {
		for v := 12; v < 24; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	for u := 0; u < 24; u++ {
		for v := 24; v < 27; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	res, err := DefaultDetector(10, 10).Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Groups))
	}
}

func TestCNLowDegreeUsersSkipped(t *testing.T) {
	// Users with fewer than Threshold items can never qualify.
	b := bipartite.NewBuilder(30, 5)
	for u := 0; u < 30; u++ {
		for v := 0; v < 5; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	res, err := DefaultDetector(10, 5).Detect(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("degree-5 users cannot share ≥10 items, got %d groups", len(res.Groups))
	}
}

func TestCNValidation(t *testing.T) {
	g := bipartite.NewGraph(1, 1)
	if _, err := (&Detector{Threshold: 0, MinUsers: 1, MinItems: 1}).Detect(g); err == nil {
		t.Error("expected Threshold error")
	}
	if _, err := (&Detector{Threshold: 1, MinUsers: 1, MinItems: 0}).Detect(g); err == nil {
		t.Error("expected MinItems error")
	}
}

func TestCNOnSyntheticAttack(t *testing.T) {
	ds := synth.MustGenerate(synth.SmallConfig())
	res, err := DefaultDetector(10, 10).Detect(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := metrics.Evaluate(res, ds.Truth)
	t.Logf("CN small: %v, groups=%d", ev, len(res.Groups))
	if ev.Recall < 0.4 {
		t.Errorf("CN recall = %v, want ≥ 0.4 (attackers share ≥10 items)", ev.Recall)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	if uf.find(0) != uf.find(3) {
		t.Error("0 and 3 should be connected")
	}
	if uf.find(4) == uf.find(0) {
		t.Error("4 should be isolated")
	}
	uf.union(4, 4) // self-union is a no-op
	if uf.find(4) != uf.find(4) {
		t.Error("self-union broke find")
	}
}

func TestCNDetectorInterface(t *testing.T) {
	var _ detect.Detector = (*Detector)(nil)
	if DefaultDetector(1, 1).Name() != "CN" {
		t.Error("bad name")
	}
}
