// Package cn implements the Common Neighbors baseline: users are linked
// when they share at least cn_threshold items (the closeness test of
// bipartite link prediction), linked users are clustered by connected
// components, and each sufficiently large cluster together with the items
// its members share becomes a candidate attack group. The paper sets
// cn_threshold = 10, consistent with RICD's k₁/k₂.
package cn

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/detect"
)

// Detector runs common-neighbors clustering as a detect.Detector.
type Detector struct {
	// Threshold is cn_threshold: the minimum number of shared items for
	// two users to be considered close.
	Threshold int
	// MinUsers and MinItems filter clusters to plausible attack groups.
	MinUsers int
	MinItems int
	// PruneLowDegree skips users with fewer than Threshold items, an
	// RICD-style optimization a generic library CN implementation (like
	// the Grape one the paper used) does not perform. Off by default to
	// stay faithful to the baseline's measured cost profile.
	PruneLowDegree bool
}

// DefaultDetector returns the paper's configuration (cn_threshold = 10).
func DefaultDetector(minUsers, minItems int) *Detector {
	return &Detector{Threshold: 10, MinUsers: minUsers, MinItems: minItems}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "CN" }

// Detect implements detect.Detector.
func (d *Detector) Detect(g *bipartite.Graph) (*detect.Result, error) {
	if d.Threshold < 1 {
		return nil, fmt.Errorf("cn: Threshold must be ≥ 1, got %d", d.Threshold)
	}
	if d.MinUsers < 1 || d.MinItems < 1 {
		return nil, fmt.Errorf("cn: MinUsers/MinItems must be ≥ 1, got %d/%d", d.MinUsers, d.MinItems)
	}
	start := time.Now()

	// Union users that share ≥ Threshold items. Candidates come from the
	// two-hop neighborhood via common-neighbor counting; a user with fewer
	// than Threshold items can never qualify and is skipped outright.
	uf := newUnionFind(g.NumUsers())
	counts := make([]int32, g.NumUsers())
	var touched []bipartite.NodeID
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if d.PruneLowDegree && g.UserDegree(u) < d.Threshold {
			return true
		}
		touched = touched[:0]
		g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
			g.EachItemNeighbor(v, func(u2 bipartite.NodeID, _ uint32) bool {
				if u2 > u { // each pair once
					if counts[u2] == 0 {
						touched = append(touched, u2)
					}
					counts[u2]++
				}
				return true
			})
			return true
		})
		for _, u2 := range touched {
			if int(counts[u2]) >= d.Threshold {
				uf.union(int(u), int(u2))
			}
			counts[u2] = 0
		}
		return true
	})

	// Collect clusters; singletons are dropped by the size filter below.
	clusters := map[int][]bipartite.NodeID{}
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		root := uf.find(int(u))
		clusters[root] = append(clusters[root], u)
		return true
	})

	roots := make([]int, 0, len(clusters))
	for r, members := range clusters {
		if len(members) >= d.MinUsers {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)

	res := &detect.Result{}
	for _, r := range roots {
		users := clusters[r]
		// The cluster's items: those clicked by at least Threshold of its
		// members — the shared neighborhoods that made the users close.
		itemCount := map[bipartite.NodeID]int{}
		for _, u := range users {
			g.EachUserNeighbor(u, func(v bipartite.NodeID, _ uint32) bool {
				itemCount[v]++
				return true
			})
		}
		var items []bipartite.NodeID
		for v, n := range itemCount {
			if n >= d.Threshold {
				items = append(items, v)
			}
		}
		if len(items) < d.MinItems {
			continue
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		res.Groups = append(res.Groups, detect.Group{Users: users, Items: items})
	}
	res.Elapsed = time.Since(start)
	res.DetectElapsed = res.Elapsed
	return res, nil
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for int(uf.parent[x]) != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = int(uf.parent[x])
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
}
