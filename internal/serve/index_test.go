package serve

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// twoGroupData builds a small hand-checkable outcome: group 1 = users
// {1,2} × items {10,11}, group 2 = users {2,3} × items {11,12}. User 2 and
// item 11 sit in both groups; user 1/item 10 only in group 1.
func twoGroupData() Data {
	return Data{
		Groups: []Group{
			{Users: []uint32{1, 2}, Items: []uint32{10, 11}, Score: 9.5},
			{Users: []uint32{2, 3}, Items: []uint32{11, 12}, Score: 4.0},
		},
		RankedUsers: []Scored{{ID: 2, Score: 4}, {ID: 1, Score: 2}, {ID: 3, Score: 2}},
		RankedItems: []Scored{{ID: 11, Score: 3}, {ID: 10, Score: 2}, {ID: 12, Score: 2}},
		THot:        200,
		TClick:      12,
	}
}

func TestBuildVerdicts(t *testing.T) {
	ix := Build(twoGroupData())

	u := ix.User(2)
	if !u.Suspicious || u.Score != 4 {
		t.Fatalf("user 2 = %+v, want suspicious score 4", u)
	}
	if len(u.Groups) != 2 || u.Groups[0] != 1 || u.Groups[1] != 2 {
		t.Fatalf("user 2 groups = %v, want [1 2] (sorted, 1-based)", u.Groups)
	}
	if v := ix.User(99); v.Suspicious || v.Score != 0 || v.Groups != nil {
		t.Fatalf("unknown user = %+v, want clean zero verdict", v)
	}
	if v := ix.Item(12); !v.Suspicious || len(v.Groups) != 1 || v.Groups[0] != 2 {
		t.Fatalf("item 12 = %+v, want suspicious in group 2 only", v)
	}

	// Pair verdicts: same-group pair flagged, cross-group pair not — user 1
	// (group 1 only) clicking item 12 (group 2 only) is two independently
	// suspicious nodes, not forged group traffic.
	if p := ix.Pair(1, 10); !p.InGroup || len(p.Groups) != 1 || p.Groups[0] != 1 {
		t.Fatalf("pair(1,10) = %+v, want in group 1", p)
	}
	if p := ix.Pair(1, 12); p.InGroup || p.Groups != nil {
		t.Fatalf("cross-group pair(1,12) = %+v, want not in-group", p)
	}
	if p := ix.Pair(2, 11); !p.InGroup || len(p.Groups) != 2 {
		t.Fatalf("pair(2,11) = %+v, want in both groups", p)
	}
	if p := ix.Pair(1, 99); p.InGroup {
		t.Fatalf("pair with unknown item = %+v, want clean", p)
	}

	if n := ix.NumGroups(); n != 2 {
		t.Fatalf("NumGroups = %d, want 2", n)
	}
	if n := ix.NumSuspiciousUsers(); n != 3 {
		t.Fatalf("NumSuspiciousUsers = %d, want 3", n)
	}
	if g, ok := ix.Group(1); !ok || g.Score != 9.5 {
		t.Fatalf("Group(1) = %+v %v, want score 9.5", g, ok)
	}
	if _, ok := ix.Group(0); ok {
		t.Fatal("Group(0) exists; indices are 1-based")
	}
	if _, ok := ix.Group(3); ok {
		t.Fatal("Group(3) exists beyond the 2 groups")
	}
}

// TestRankedOnlyNodeStillSuspicious: a ranked node missing from every
// group keeps an entry instead of being silently dropped.
func TestRankedOnlyNodeStillSuspicious(t *testing.T) {
	ix := Build(Data{RankedUsers: []Scored{{ID: 5, Score: 1.5}}})
	v := ix.User(5)
	if !v.Suspicious || v.Score != 1.5 || len(v.Groups) != 0 {
		t.Fatalf("ranked-only user = %+v, want suspicious, score 1.5, no groups", v)
	}
}

// TestNilIndexClean: the nil index (nothing published yet) answers every
// query with the clean zero verdict instead of panicking.
func TestNilIndexClean(t *testing.T) {
	var ix *Index
	if v := ix.User(1); v.Suspicious {
		t.Fatalf("nil index user verdict = %+v", v)
	}
	if v := ix.Item(1); v.Suspicious {
		t.Fatalf("nil index item verdict = %+v", v)
	}
	if p := ix.Pair(1, 2); p.InGroup {
		t.Fatalf("nil index pair verdict = %+v", p)
	}
	if _, ok := ix.Group(1); ok {
		t.Fatal("nil index has a group")
	}
	if ix.NumGroups() != 0 || ix.NumSuspiciousUsers() != 0 || ix.NumSuspiciousItems() != 0 {
		t.Fatal("nil index reports nonzero sizes")
	}
	if ix.Epoch() != 0 || ix.Partial() || !ix.At().IsZero() {
		t.Fatal("nil index reports publication state")
	}
}

func TestStorePublishEpochs(t *testing.T) {
	s := NewStore(nil)
	if s.Current() != nil || s.Epoch() != 0 {
		t.Fatal("fresh store is not empty")
	}
	if err := s.Publish(Build(twoGroupData())); err != nil {
		t.Fatal(err)
	}
	ix1 := s.Current()
	if ix1 == nil || ix1.Epoch() != 1 || ix1.At().IsZero() {
		t.Fatalf("first publish: epoch %d at %v, want epoch 1 with timestamp", ix1.Epoch(), ix1.At())
	}
	if err := s.Publish(Build(Data{})); err != nil {
		t.Fatal(err)
	}
	if got := s.Current().Epoch(); got != 2 {
		t.Fatalf("second publish epoch = %d, want 2", got)
	}
	// The first epoch's index is immutable: a reader that captured it
	// mid-request still sees epoch 1 whole.
	if ix1.Epoch() != 1 || ix1.NumGroups() != 2 {
		t.Fatalf("captured epoch-1 index changed after swap: epoch %d, %d groups", ix1.Epoch(), ix1.NumGroups())
	}
}

// TestPublishFaultKeepsOldEpoch arms the serve.index fault site: the
// failed swap must leave the previous epoch serving untouched, count the
// failure, and let the next publish proceed (with the epoch sequence
// unbroken — failed publishes consume no epoch).
func TestPublishFaultKeepsOldEpoch(t *testing.T) {
	defer faultinject.Reset()
	o := obs.NewObserver("test")
	s := NewStore(o)
	if err := s.Publish(Build(twoGroupData())); err != nil {
		t.Fatal(err)
	}

	swapErr := errors.New("injected swap failure")
	faultinject.Arm("serve.index", faultinject.Fault{Err: swapErr, Times: 1})
	if err := s.Publish(Build(Data{})); !errors.Is(err, swapErr) {
		t.Fatalf("faulted publish returned %v, want %v", err, swapErr)
	}

	ix := s.Current()
	if ix.Epoch() != 1 || ix.NumGroups() != 2 {
		t.Fatalf("after failed swap: epoch %d with %d groups, want old epoch 1 with 2 groups", ix.Epoch(), ix.NumGroups())
	}
	if got := o.Counter("serve.swap.failures").Value(); got != 1 {
		t.Fatalf("serve.swap.failures = %d, want 1", got)
	}

	if err := s.Publish(Build(Data{})); err != nil {
		t.Fatal(err)
	}
	if got := s.Current().Epoch(); got != 2 {
		t.Fatalf("epoch after recovery = %d, want 2 (failed publish consumed no epoch)", got)
	}
	if got := o.Counter("serve.swaps").Value(); got != 2 {
		t.Fatalf("serve.swaps = %d, want 2", got)
	}
}

// TestConcurrentQueriesDuringSwaps is the torn-read test: readers hammer
// the store while a publisher swaps epochs as fast as it can. Each
// published index encodes its sequence number redundantly (user 1's score
// == THot == group count's score); a torn read — fields from two epochs —
// would break the redundancy. Run under -race this also proves the
// pointer handoff is properly synchronized.
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	const (
		readers  = 8
		epochs   = 500
		queryID  = 1
		pairItem = 10
	)
	s := NewStore(nil)

	// seqData builds an index whose every queryable field encodes seq.
	seqData := func(seq int) Data {
		return Data{
			Groups:      []Group{{Users: []uint32{queryID}, Items: []uint32{pairItem}, Score: float64(seq)}},
			RankedUsers: []Scored{{ID: queryID, Score: float64(seq)}},
			RankedItems: []Scored{{ID: pairItem, Score: float64(seq)}},
			THot:        uint64(seq),
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := s.Current()
				if ix == nil {
					continue
				}
				// Epochs observed by one reader are monotone.
				e := ix.Epoch()
				if e < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
					return
				}
				lastEpoch = e
				// Internal consistency: every field of this index agrees on
				// its sequence number.
				u := ix.User(queryID)
				i := ix.Item(pairItem)
				g, ok := ix.Group(1)
				if !ok || !u.Suspicious || !i.Suspicious {
					t.Errorf("epoch %d: missing verdicts (group ok=%v user=%+v item=%+v)", e, ok, u, i)
					return
				}
				if u.Score != i.Score || u.Score != g.Score || uint64(u.Score) != ix.data.THot {
					t.Errorf("torn read at epoch %d: user %.0f item %.0f group %.0f thot %d",
						e, u.Score, i.Score, g.Score, ix.data.THot)
					return
				}
				if p := ix.Pair(queryID, pairItem); !p.InGroup {
					t.Errorf("epoch %d: pair verdict lost", e)
					return
				}
			}
		}()
	}

	for seq := 1; seq <= epochs; seq++ {
		if err := s.Publish(Build(seqData(seq))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.Current().Epoch(); got != epochs {
		t.Fatalf("final epoch = %d, want %d", got, epochs)
	}
}

// TestBuildIdempotent: compiling the same Data twice yields indexes that
// answer identically (Build is pure) — the recompile-idempotence property
// the root-level equivalence harness checks end to end over real reports.
func TestBuildIdempotent(t *testing.T) {
	d := twoGroupData()
	a, b := Build(d), Build(d)
	for id := uint32(0); id < 16; id++ {
		if av, bv := a.User(id), b.User(id); av.Suspicious != bv.Suspicious || av.Score != bv.Score {
			t.Fatalf("user %d differs across recompiles: %+v vs %+v", id, av, bv)
		}
		if av, bv := a.Item(id), b.Item(id); av.Suspicious != bv.Suspicious || av.Score != bv.Score {
			t.Fatalf("item %d differs across recompiles: %+v vs %+v", id, av, bv)
		}
	}
}
