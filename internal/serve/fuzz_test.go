package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzQueryPath throws arbitrary methods, paths and bodies at the query
// server and asserts its hard contract: no panic on any input, every
// response is valid JSON, and every non-200 carries the structured
// {"error": ...} shape — the recommender's client code never has to parse
// plain-text errors.
func FuzzQueryPath(f *testing.F) {
	f.Add("GET", "/v1/user/1", "")
	f.Add("GET", "/v1/user/", "")
	f.Add("GET", "/v1/item/4294967296", "")
	f.Add("GET", "/v1/pair?u=1&i=2", "")
	f.Add("GET", "/v1/pair?u=&i=%zz", "")
	f.Add("GET", "/v1/group/-1", "")
	f.Add("GET", "/healthz", "")
	f.Add("POST", "/v1/check", `[{"kind":"user","id":1}]`)
	f.Add("POST", "/v1/check", `[{"kind":"pair","user":1}]`)
	f.Add("POST", "/v1/check", `{`)
	f.Add("DELETE", "/v1/user/1", "")
	f.Add("GET", "//v1/user/1", "")
	f.Add("GET", "/v1/user/%31", "")
	f.Add("OPTIONS", "\x00", "\xff")

	store := NewStore(nil)
	if err := store.Publish(Build(twoGroupData())); err != nil {
		f.Fatal(err)
	}
	published := NewServer(store, Options{MaxBatch: 64})
	empty := NewServer(NewStore(nil), Options{})

	f.Fuzz(func(t *testing.T, method, path, body string) {
		// http.NewRequest rejects some byte sequences outright; those are
		// the client library's problem, not the server's.
		req, err := http.NewRequest(method, "http://host"+path, strings.NewReader(body))
		if err != nil {
			return
		}
		for _, srv := range []*Server{published, empty} {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req.Clone(req.Context()))

			got := rec.Body.Bytes()
			if !json.Valid(got) {
				t.Fatalf("%s %q: response body is not valid JSON: %q", method, path, got)
			}
			if rec.Code != http.StatusOK {
				var e errorResponse
				if err := json.Unmarshal(got, &e); err != nil || e.Error == "" {
					t.Fatalf("%s %q: status %d without structured error: %q", method, path, rec.Code, got)
				}
			}
		}
	})
}
