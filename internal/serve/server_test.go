package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func publishedStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(nil)
	if err := s.Publish(Build(twoGroupData())); err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func TestNodeEndpoints(t *testing.T) {
	srv := NewServer(publishedStore(t), Options{})

	code, body := get(t, srv, "/v1/user/2")
	if code != http.StatusOK {
		t.Fatalf("user 2: %d %s", code, body)
	}
	var nr NodeResponse
	if err := json.Unmarshal([]byte(body), &nr); err != nil {
		t.Fatal(err)
	}
	if !nr.Suspicious || nr.Score != 4 || len(nr.Groups) != 2 || nr.Epoch != 1 || nr.Kind != "user" {
		t.Fatalf("user 2 response = %+v", nr)
	}

	code, body = get(t, srv, "/v1/item/99")
	if code != http.StatusOK {
		t.Fatalf("item 99: %d %s", code, body)
	}
	nr = NodeResponse{} // fresh target: omitted "groups" must not inherit
	if err := json.Unmarshal([]byte(body), &nr); err != nil {
		t.Fatal(err)
	}
	if nr.Suspicious || nr.Groups != nil || nr.Kind != "item" {
		t.Fatalf("unknown item response = %+v, want clean", nr)
	}

	// Malformed IDs are structured 400s, not panics or plain text.
	for _, path := range []string{"/v1/user/", "/v1/user/abc", "/v1/user/-1", "/v1/user/4294967296", "/v1/item/1x"} {
		code, body = get(t, srv, path)
		if code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: %d %q, want structured 400", path, code, body)
		}
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/user/1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST node = %d, want 405", rec.Code)
	}
}

func TestPairEndpoint(t *testing.T) {
	srv := NewServer(publishedStore(t), Options{})

	code, body := get(t, srv, "/v1/pair?u=1&i=10")
	if code != http.StatusOK {
		t.Fatalf("pair: %d %s", code, body)
	}
	var pr PairResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.InGroup || len(pr.Groups) != 1 || pr.Epoch != 1 {
		t.Fatalf("pair(1,10) = %+v", pr)
	}

	code, body = get(t, srv, "/v1/pair?u=1&i=12")
	if err := json.Unmarshal([]byte(body), &pr); err != nil || code != http.StatusOK {
		t.Fatalf("pair(1,12): %d %v", code, err)
	}
	if pr.InGroup {
		t.Fatalf("cross-group pair = %+v, want not in-group", pr)
	}

	if code, body = get(t, srv, "/v1/pair?u=1"); code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
		t.Fatalf("missing i: %d %q", code, body)
	}
	if code, _ = get(t, srv, "/v1/pair?u=x&i=1"); code != http.StatusBadRequest {
		t.Fatalf("bad u: %d", code)
	}
}

func TestGroupEndpoint(t *testing.T) {
	srv := NewServer(publishedStore(t), Options{})

	code, body := get(t, srv, "/v1/group/1")
	if code != http.StatusOK {
		t.Fatalf("group 1: %d %s", code, body)
	}
	var gr GroupResponse
	if err := json.Unmarshal([]byte(body), &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Group != 1 || gr.Score != 9.5 || len(gr.Users) != 2 {
		t.Fatalf("group 1 = %+v", gr)
	}
	if code, _ = get(t, srv, "/v1/group/3"); code != http.StatusNotFound {
		t.Fatalf("group 3 = %d, want 404", code)
	}
	if code, _ = get(t, srv, "/v1/group/zzz"); code != http.StatusBadRequest {
		t.Fatalf("group zzz = %d, want 400", code)
	}
}

// TestEmptyStore503: before the first publication every verdict query is
// an explicit 503 — serving "clean" with no index would be a silent false
// negative.
func TestEmptyStore503(t *testing.T) {
	srv := NewServer(NewStore(nil), Options{})
	for _, path := range []string{"/v1/user/1", "/v1/item/1", "/v1/pair?u=1&i=1", "/v1/group/1"} {
		code, body := get(t, srv, path)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, `"error"`) {
			t.Fatalf("%s on empty store: %d %q, want structured 503", path, code, body)
		}
	}
	// /healthz still answers 200, reporting empty.
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "empty" || h.Epoch != 0 || h.AgeMS != -1 {
		t.Fatalf("empty health = %+v", h)
	}
}

func TestHealthzServingAndDegraded(t *testing.T) {
	store := publishedStore(t)
	degraded := false
	srv := NewServer(store, Options{Degraded: func() bool { return degraded }})

	code, body := get(t, srv, "/healthz")
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	if h.Status != "serving" || h.Epoch != 1 || h.Groups != 2 || h.AgeMS < 0 || h.Degraded {
		t.Fatalf("health = %+v", h)
	}

	degraded = true
	_, body = get(t, srv, "/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || !h.Degraded {
		t.Fatalf("degraded health = %+v", h)
	}
}

func TestCheckBatch(t *testing.T) {
	srv := NewServer(publishedStore(t), Options{})
	post := func(body string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
		srv.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	code, body := post(`[
		{"kind":"user","id":2},
		{"kind":"item","id":99},
		{"kind":"pair","user":1,"item":10}
	]`)
	if code != http.StatusOK {
		t.Fatalf("check: %d %s", code, body)
	}
	var out []json.RawMessage
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("check returned %d answers, want 3", len(out))
	}
	var nr NodeResponse
	if err := json.Unmarshal(out[0], &nr); err != nil || !nr.Suspicious {
		t.Fatalf("batch user verdict = %+v (%v)", nr, err)
	}
	var pr PairResponse
	if err := json.Unmarshal(out[2], &pr); err != nil || !pr.InGroup {
		t.Fatalf("batch pair verdict = %+v (%v)", pr, err)
	}

	for name, bad := range map[string]string{
		"not json":      `{`,
		"unknown field": `[{"kind":"user","id":1,"bogus":true}]`,
		"unknown kind":  `[{"kind":"shop","id":1}]`,
		"missing id":    `[{"kind":"user"}]`,
		"half pair":     `[{"kind":"pair","user":1}]`,
	} {
		if code, body := post(bad); code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: %d %q, want structured 400", name, code, body)
		}
	}

	// Batch over the limit is rejected before any work.
	small := NewServer(publishedStore(t), Options{MaxBatch: 2})
	rec := httptest.NewRecorder()
	small.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/check",
		strings.NewReader(`[{"kind":"user","id":1},{"kind":"user","id":2},{"kind":"user","id":3}]`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("over-limit batch = %d, want 400", rec.Code)
	}

	// Oversized body is a 413, not an unmarshal 400.
	huge := strings.Repeat(" ", maxCheckBody+1)
	if code, _ := post("[" + huge + "]"); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", code)
	}

	if code, _ := get(t, srv, "/v1/check"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET check = %d, want 405", code)
	}
}

func TestUnknownRoute404(t *testing.T) {
	srv := NewServer(publishedStore(t), Options{})
	for _, path := range []string{"/", "/v1", "/v1/", "/v1/users/1", "/metrics"} {
		code, body := get(t, srv, path)
		if code != http.StatusNotFound || !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: %d %q, want structured 404", path, code, body)
		}
	}
}

// TestInflightShedding saturates the in-flight semaphore (in-package, so
// the test can hold the slots deterministically) and checks the contract:
// verdict queries shed with a counted, structured 429; /healthz is exempt
// and still answers; freed slots serve again.
func TestInflightShedding(t *testing.T) {
	o := obs.NewObserver("test")
	srv := NewServer(publishedStore(t), Options{Obs: o, MaxInflight: 2})
	srv.inflight <- struct{}{}
	srv.inflight <- struct{}{} // both slots held

	code, body := get(t, srv, "/v1/user/1")
	if code != http.StatusTooManyRequests || !strings.Contains(body, `"error"`) {
		t.Fatalf("saturated server = %d %q, want structured 429", code, body)
	}
	if got := o.Counter("serve.shed").Value(); got != 1 {
		t.Fatalf("serve.shed = %d, want 1", got)
	}
	// /healthz is exempt: health must answer while every slot is held.
	if code, _ = get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, want 200", code)
	}

	<-srv.inflight
	<-srv.inflight
	if code, _ = get(t, srv, "/v1/user/1"); code != http.StatusOK {
		t.Fatalf("after slots freed = %d, want 200", code)
	}
}

// TestDrainUnderLoadNoLeaks hammers a live server over real TCP while
// epochs swap underneath, then shuts it down gracefully: every in-flight
// request completes with a whole-epoch answer and no handler goroutine
// outlives the drain.
func TestDrainUnderLoadNoLeaks(t *testing.T) {
	store := publishedStore(t)
	o := obs.NewObserver("test")
	srv := NewServer(store, Options{Obs: o, MaxInflight: 64})

	before := runtime.NumGoroutine()
	ts := httptest.NewServer(srv)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	client := ts.Client()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/v1/user/%d", ts.URL, n%8))
				if err != nil {
					return // server shutting down
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// 200 or 429 (shed) are the only acceptable answers.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("query returned %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}

	// Swap epochs underneath the load.
	for seq := 0; seq < 50; seq++ {
		if err := store.Publish(Build(twoGroupData())); err != nil {
			t.Fatal(err)
		}
	}

	close(stop)
	wg.Wait()
	ts.Close() // graceful: waits for outstanding requests

	// All handler goroutines drain; allow the runtime a moment to retire
	// them (same discipline as the facade robustness tests).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked across drain: %d before, %d after", before, now)
	}
}
