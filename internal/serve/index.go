// Package serve is the online verdict-serving layer of the RICD pipeline:
// the consumption path that lets a live I2I recommender ask, per
// impression, whether a user, an item, or a user-item co-click belongs to
// a detected "Ride Item's Coattails" group (the risk-control loop of the
// paper's Fig 1).
//
// The core is an immutable Index compiled from one detection outcome and
// published atomically through a Store (an atomic.Pointer swap) every time
// the detector finishes a sweep. Readers are completely lock-free: a query
// captures one *Index pointer and answers everything from it, so it can
// never observe a half-built index or a mix of two epochs — even while the
// next sweep's index is being compiled and swapped in.
package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Group is one detected attack group as the serving layer exposes it:
// membership, risk score, and the forensic statistics an operator reviews.
type Group struct {
	Users          []uint32
	Items          []uint32
	Score          float64
	Density        float64
	MeanEdgeClicks float64
	OutsideShare   float64
}

// Scored is one risk-ranked node (id + identification-module risk score).
type Scored struct {
	ID    uint32
	Score float64
}

// Data is the detection outcome an Index is compiled from — the subset of
// a facade Report the serving layer needs. Build copies nothing: the
// slices are referenced as-is and must not be mutated afterwards.
type Data struct {
	Groups      []Group
	RankedUsers []Scored
	RankedItems []Scored
	// THot and TClick are the thresholds the detection ran with.
	THot   uint64
	TClick uint32
	// Partial marks an index compiled from a cut-short report; queries
	// still answer, but /healthz surfaces the flag so consumers can widen
	// their own margins.
	Partial bool
}

// nodeEntry is one suspicious node's verdict material: its 1-based group
// memberships (sorted ascending) and its risk score.
type nodeEntry struct {
	groups []int
	score  float64
}

// Index is an immutable verdict index over one detection outcome. All
// methods are safe for unbounded concurrent use and never allocate on the
// clean-verdict path; a nil *Index answers every query with the clean
// verdict (no detection has been published yet).
type Index struct {
	data  Data
	users map[uint32]nodeEntry
	items map[uint32]nodeEntry

	// epoch and at are stamped by Store.Publish; 0/zero before
	// publication. They are written once, before the atomic pointer swap
	// makes the index visible, and never after.
	epoch uint64
	at    time.Time
}

// Build compiles a Data into an Index. The index references the Data's
// slices without copying; callers must not mutate them afterwards.
// Building is pure: the same Data always compiles to an index giving the
// same answers (the recompile-idempotence property of the equivalence
// harness).
func Build(d Data) *Index {
	ix := &Index{
		data:  d,
		users: make(map[uint32]nodeEntry, len(d.RankedUsers)),
		items: make(map[uint32]nodeEntry, len(d.RankedItems)),
	}
	for gi, g := range d.Groups {
		for _, u := range g.Users {
			e := ix.users[u]
			e.groups = append(e.groups, gi+1)
			ix.users[u] = e
		}
		for _, v := range g.Items {
			e := ix.items[v]
			e.groups = append(e.groups, gi+1)
			ix.items[v] = e
		}
	}
	for _, m := range []map[uint32]nodeEntry{ix.users, ix.items} {
		for id, e := range m {
			sort.Ints(e.groups)
			m[id] = e
		}
	}
	// Overlay risk scores. Ranked nodes are exactly the group-member union
	// in a well-formed report, but a ranked node missing from every group
	// still gets an entry (suspicious with no group) rather than being
	// silently dropped.
	for _, s := range d.RankedUsers {
		e := ix.users[s.ID]
		e.score = s.Score
		ix.users[s.ID] = e
	}
	for _, s := range d.RankedItems {
		e := ix.items[s.ID]
		e.score = s.Score
		ix.items[s.ID] = e
	}
	return ix
}

// NodeVerdict answers "is this node part of a detected attack group".
type NodeVerdict struct {
	// Suspicious is true when the node appears in any detected group (or
	// in the risk ranking). A clean verdict has zero Score and nil Groups.
	Suspicious bool
	// Score is the identification-module risk score (0 when clean).
	Score float64
	// Groups are the 1-based indices of the groups containing the node,
	// ascending. Shared with the index — callers must not mutate.
	Groups []int
}

// PairVerdict answers "is this user-item co-click inside a detected
// group" — the per-impression question the I2I ranker asks before letting
// a co-click contribute to Eq 1.
type PairVerdict struct {
	// InGroup is true when some single detected group contains both the
	// user and the item: the co-click is forged group traffic, not two
	// independently suspicious nodes.
	InGroup bool
	// Groups are the 1-based indices of the groups containing the pair.
	Groups []int
}

// User returns the verdict for a user ID. Unknown IDs are clean.
func (ix *Index) User(id uint32) NodeVerdict { return nodeVerdictOf(ix, ix.usersMap(), id) }

// Item returns the verdict for an item ID. Unknown IDs are clean.
func (ix *Index) Item(id uint32) NodeVerdict { return nodeVerdictOf(ix, ix.itemsMap(), id) }

func (ix *Index) usersMap() map[uint32]nodeEntry {
	if ix == nil {
		return nil
	}
	return ix.users
}

func (ix *Index) itemsMap() map[uint32]nodeEntry {
	if ix == nil {
		return nil
	}
	return ix.items
}

func nodeVerdictOf(ix *Index, m map[uint32]nodeEntry, id uint32) NodeVerdict {
	e, ok := m[id]
	if !ok {
		return NodeVerdict{}
	}
	return NodeVerdict{Suspicious: true, Score: e.score, Groups: e.groups}
}

// Pair returns the co-click verdict for a (user, item) pair: InGroup iff
// some single group contains both. Either side unknown is clean.
func (ix *Index) Pair(user, item uint32) PairVerdict {
	if ix == nil {
		return PairVerdict{}
	}
	ue, ok := ix.users[user]
	if !ok {
		return PairVerdict{}
	}
	ve, ok := ix.items[item]
	if !ok {
		return PairVerdict{}
	}
	// Both membership lists are sorted ascending; intersect by merge.
	var shared []int
	i, j := 0, 0
	for i < len(ue.groups) && j < len(ve.groups) {
		switch {
		case ue.groups[i] < ve.groups[j]:
			i++
		case ue.groups[i] > ve.groups[j]:
			j++
		default:
			shared = append(shared, ue.groups[i])
			i++
			j++
		}
	}
	return PairVerdict{InGroup: len(shared) > 0, Groups: shared}
}

// Group returns the 1-based n'th detected group (most suspicious first,
// matching the report order) and whether it exists.
func (ix *Index) Group(n int) (Group, bool) {
	if ix == nil || n < 1 || n > len(ix.data.Groups) {
		return Group{}, false
	}
	return ix.data.Groups[n-1], true
}

// NumGroups returns the number of detected groups (0 for nil).
func (ix *Index) NumGroups() int {
	if ix == nil {
		return 0
	}
	return len(ix.data.Groups)
}

// NumSuspiciousUsers returns the number of distinct suspicious users.
func (ix *Index) NumSuspiciousUsers() int {
	if ix == nil {
		return 0
	}
	return len(ix.users)
}

// NumSuspiciousItems returns the number of distinct suspicious items.
func (ix *Index) NumSuspiciousItems() int {
	if ix == nil {
		return 0
	}
	return len(ix.items)
}

// Partial reports whether the index was compiled from a cut-short report.
func (ix *Index) Partial() bool {
	if ix == nil {
		return false
	}
	return ix.data.Partial
}

// Epoch returns the publication epoch stamped by Store.Publish (0 for an
// unpublished or nil index).
func (ix *Index) Epoch() uint64 {
	if ix == nil {
		return 0
	}
	return ix.epoch
}

// At returns when the index was published (zero for unpublished/nil).
func (ix *Index) At() time.Time {
	if ix == nil {
		return time.Time{}
	}
	return ix.at
}

// Store is the epoch-swapped publication point between the detector and
// the query handlers. Current is a single atomic pointer load — readers
// never block, never see a half-built index, and observe epochs
// monotonically. Publish is serialized internally (the detector publishes
// once per sweep; concurrent publishers are safe but ordered arbitrarily).
//
// The zero Store is ready to use and serves the nil (all-clean) index
// until the first Publish.
type Store struct {
	// Obs, when non-nil, receives serve.swaps / serve.swap.failures
	// counters, the serve.epoch gauge, and one serve.swap audit event per
	// publication. Set it before the first Publish.
	Obs *obs.Observer

	mu    sync.Mutex // serializes Publish (epoch assignment + swap)
	epoch uint64
	cur   atomic.Pointer[Index]
}

// NewStore returns an empty store publishing under the given observer
// (nil disables instrumentation).
func NewStore(o *obs.Observer) *Store { return &Store{Obs: o} }

// Current returns the most recently published index, or nil before the
// first publication. The returned index is immutable and safe to use for
// the whole lifetime of a request, however long the store moves on.
func (s *Store) Current() *Index {
	if s == nil {
		return nil
	}
	return s.cur.Load()
}

// Epoch returns the epoch of the most recent successful publication (0
// before the first).
func (s *Store) Epoch() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Publish stamps ix with the next epoch and swaps it in atomically. On
// failure (the serve.index fault site, standing in for any future
// compile-and-swap I/O) the previous index keeps serving untouched and
// the failure is counted and audited — a broken sweep must degrade to
// stale verdicts, never to no verdicts.
func (s *Store) Publish(ix *Index) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := faultinject.ErrAt("serve.index"); err != nil {
		s.Obs.Counter("serve.swap.failures").Inc()
		s.Obs.Sink().Emit(obs.Event{Type: obs.EventIndexSwapFail, Reason: err.Error()})
		return err
	}
	s.epoch++
	ix.epoch = s.epoch
	ix.at = time.Now()
	s.cur.Store(ix)
	s.Obs.Counter("serve.swaps").Inc()
	s.Obs.Gauge("serve.epoch").Set(int64(s.epoch))
	reason := ""
	if ix.data.Partial {
		reason = "partial"
	}
	s.Obs.Sink().Emit(obs.Event{
		Type:   obs.EventIndexSwap,
		Round:  int(s.epoch),
		Groups: ix.NumGroups(),
		Users:  ix.NumSuspiciousUsers(),
		Items:  ix.NumSuspiciousItems(),
		Reason: reason,
	})
	return nil
}
