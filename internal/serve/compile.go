package serve

import (
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/detect"
)

// Compile builds an Index straight from a detection result and the click
// graph it was computed against — the path the streaming detector's
// sweep-completion hook uses. It derives exactly what the facade derives
// when it builds a Report (core.RankResult risk scores, ComputeGroupStats
// forensics), so an index compiled here answers byte-identically to one
// compiled from the corresponding Report via the facade.
func Compile(g *bipartite.Graph, res *detect.Result, thot uint64, tclick uint32) *Index {
	d := Data{
		THot:    thot,
		TClick:  tclick,
		Partial: res.Partial,
	}
	for _, grp := range res.Groups {
		st := core.ComputeGroupStats(g, grp)
		d.Groups = append(d.Groups, Group{
			Users:          grp.Users,
			Items:          grp.Items,
			Score:          grp.Score,
			Density:        st.Density,
			MeanEdgeClicks: st.MeanEdgeClicks,
			OutsideShare:   st.OutsideShare,
		})
	}
	rk := core.RankResult(g, res)
	for _, n := range rk.Users {
		d.RankedUsers = append(d.RankedUsers, Scored{ID: n.ID, Score: n.Score})
	}
	for _, n := range rk.Items {
		d.RankedItems = append(d.RankedItems, Scored{ID: n.ID, Score: n.Score})
	}
	return Build(d)
}
