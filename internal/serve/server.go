package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// DefaultMaxBatch bounds /v1/check request arrays: large enough for a full
// recommendation page's candidate set many times over, small enough that
// one request cannot monopolize the server.
const DefaultMaxBatch = 4096

// maxCheckBody bounds the /v1/check request body (1 MiB comfortably holds
// DefaultMaxBatch entries).
const maxCheckBody = 1 << 20

// Options configures a Server.
type Options struct {
	// Obs, when non-nil, receives per-endpoint request counters
	// (serve.req.<endpoint>), latency histograms (serve.latency.<endpoint>)
	// and the serve.shed counter. Nil disables instrumentation at no cost.
	Obs *obs.Observer
	// MaxInflight bounds concurrently served requests; excess requests are
	// shed with 429 (counted under serve.shed, never silent — the PR 6
	// buffer's shed-accounting discipline applied to queries). 0 means
	// unlimited. /healthz is exempt: health must answer under overload.
	MaxInflight int
	// MaxBatch bounds /v1/check array length (0 = DefaultMaxBatch).
	MaxBatch int
	// Degraded, when non-nil, feeds the /healthz degraded flag — wire the
	// streaming detector's durability latch (DurabilityErr != nil) here.
	Degraded func() bool
}

// Server answers verdict queries over HTTP/JSON from the store's current
// index. Every request captures one immutable *Index and answers entirely
// from it, so a response is always internally consistent — mid-swap reads
// see the old epoch whole, post-swap reads the new epoch whole, never a
// mix. Implements http.Handler.
type Server struct {
	store    *Store
	o        *obs.Observer
	inflight chan struct{}
	maxBatch int
	degraded func() bool
}

// NewServer returns a query server over store.
func NewServer(store *Store, opts Options) *Server {
	s := &Server{
		store:    store,
		o:        opts.Obs,
		maxBatch: opts.MaxBatch,
		degraded: opts.Degraded,
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	return s
}

// NodeResponse is the JSON verdict for one user or item.
type NodeResponse struct {
	Kind       string  `json:"kind"` // "user" or "item"
	ID         uint32  `json:"id"`
	Suspicious bool    `json:"suspicious"`
	Score      float64 `json:"score"`
	Groups     []int   `json:"groups,omitempty"`
	Epoch      uint64  `json:"epoch"`
}

// PairResponse is the JSON verdict for one user-item co-click.
type PairResponse struct {
	User    uint32 `json:"user"`
	Item    uint32 `json:"item"`
	InGroup bool   `json:"in_group"`
	Groups  []int  `json:"groups,omitempty"`
	Epoch   uint64 `json:"epoch"`
}

// GroupResponse is the JSON rendering of one detected group.
type GroupResponse struct {
	Group          int      `json:"group"`
	Users          []uint32 `json:"users"`
	Items          []uint32 `json:"items"`
	Score          float64  `json:"score"`
	Density        float64  `json:"density"`
	MeanEdgeClicks float64  `json:"mean_edge_clicks"`
	OutsideShare   float64  `json:"outside_share"`
	Epoch          uint64   `json:"epoch"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	// Status is "serving" once an index is published, "empty" before the
	// first publication, "degraded" when the durability latch fired.
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	Groups int    `json:"groups"`
	// AgeMS is the staleness of the served verdicts: milliseconds since
	// the current index was published (-1 while empty).
	AgeMS    int64 `json:"age_ms"`
	Partial  bool  `json:"partial,omitempty"`
	Degraded bool  `json:"degraded"`
}

// CheckItem is one entry of a /v1/check batch request.
type CheckItem struct {
	Kind string  `json:"kind"` // "user", "item" or "pair"
	ID   *uint32 `json:"id,omitempty"`
	User *uint32 `json:"user,omitempty"`
	Item *uint32 `json:"item,omitempty"`
}

// errorResponse is the structured body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// ServeHTTP routes the five query endpoints plus /healthz. Routing is
// hand-rolled (not http.ServeMux patterns) so every error path — unknown
// route, bad method, malformed ID, shed — returns the same structured
// JSON error shape.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if path == "/healthz" {
		// Health is exempt from shedding: an overloaded server must still
		// tell its load balancer it is alive.
		s.instrument("healthz", w, r, s.handleHealth)
		return
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.o.Counter("serve.shed").Inc()
			writeError(w, http.StatusTooManyRequests, "server at max in-flight requests")
			return
		}
	}
	switch {
	case strings.HasPrefix(path, "/v1/user/"):
		s.instrument("user", w, r, func(w http.ResponseWriter, r *http.Request) {
			s.handleNode(w, r, "user", strings.TrimPrefix(path, "/v1/user/"))
		})
	case strings.HasPrefix(path, "/v1/item/"):
		s.instrument("item", w, r, func(w http.ResponseWriter, r *http.Request) {
			s.handleNode(w, r, "item", strings.TrimPrefix(path, "/v1/item/"))
		})
	case strings.HasPrefix(path, "/v1/group/"):
		s.instrument("group", w, r, func(w http.ResponseWriter, r *http.Request) {
			s.handleGroup(w, r, strings.TrimPrefix(path, "/v1/group/"))
		})
	case path == "/v1/pair":
		s.instrument("pair", w, r, s.handlePair)
	case path == "/v1/check":
		s.instrument("check", w, r, s.handleCheck)
	default:
		writeError(w, http.StatusNotFound, "unknown route (endpoints: /v1/user/{id}, /v1/item/{id}, /v1/pair?u=&i=, /v1/group/{id}, /v1/check, /healthz)")
	}
}

// instrument counts the request and observes its latency under the
// endpoint's name.
func (s *Server) instrument(name string, w http.ResponseWriter, r *http.Request,
	h func(http.ResponseWriter, *http.Request)) {

	s.o.Counter("serve.req." + name).Inc()
	t0 := time.Now()
	h(w, r)
	s.o.Histogram("serve.latency." + name).Observe(time.Since(t0))
}

// index returns the current index, or writes 503 and returns nil when no
// detection outcome has been published yet (serving "everything is clean"
// before the first sweep would be a silent false negative; consumers
// choose their own fail-open/fail-closed policy on 503).
func (s *Server) index(w http.ResponseWriter) *Index {
	ix := s.store.Current()
	if ix == nil {
		writeError(w, http.StatusServiceUnavailable, "no verdict index published yet")
		return nil
	}
	return ix
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed (want GET)")
		return false
	}
	return true
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request, kind, rawID string) {
	if !requireGet(w, r) {
		return
	}
	id, err := parseID(rawID)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad %s id %q: %v", kind, rawID, err))
		return
	}
	ix := s.index(w)
	if ix == nil {
		return
	}
	writeJSON(w, nodeResponse(ix, kind, id))
}

func nodeResponse(ix *Index, kind string, id uint32) NodeResponse {
	var v NodeVerdict
	if kind == "user" {
		v = ix.User(id)
	} else {
		v = ix.Item(id)
	}
	return NodeResponse{
		Kind:       kind,
		ID:         id,
		Suspicious: v.Suspicious,
		Score:      v.Score,
		Groups:     v.Groups,
		Epoch:      ix.Epoch(),
	}
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q := r.URL.Query()
	u, err := parseID(q.Get("u"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad query param u=%q: %v", q.Get("u"), err))
		return
	}
	i, err := parseID(q.Get("i"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad query param i=%q: %v", q.Get("i"), err))
		return
	}
	ix := s.index(w)
	if ix == nil {
		return
	}
	writeJSON(w, pairResponse(ix, u, i))
}

func pairResponse(ix *Index, u, i uint32) PairResponse {
	v := ix.Pair(u, i)
	return PairResponse{User: u, Item: i, InGroup: v.InGroup, Groups: v.Groups, Epoch: ix.Epoch()}
}

func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request, rawID string) {
	if !requireGet(w, r) {
		return
	}
	n, err := strconv.Atoi(rawID)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad group index %q: %v", rawID, err))
		return
	}
	ix := s.index(w)
	if ix == nil {
		return
	}
	g, ok := ix.Group(n)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("group %d not found (index has %d groups)", n, ix.NumGroups()))
		return
	}
	writeJSON(w, GroupResponse{
		Group:          n,
		Users:          g.Users,
		Items:          g.Items,
		Score:          g.Score,
		Density:        g.Density,
		MeanEdgeClicks: g.MeanEdgeClicks,
		OutsideShare:   g.OutsideShare,
		Epoch:          ix.Epoch(),
	})
}

// handleCheck answers a batch of verdict questions in one round trip. All
// entries are answered from ONE captured index, so a batch is internally
// consistent even if a swap lands mid-request.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed (want POST)")
		return
	}
	var items []CheckItem
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCheckBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&items); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body over %d bytes", maxErr.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(items) > s.maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d entries over the %d limit", len(items), s.maxBatch))
		return
	}
	for k, it := range items {
		switch it.Kind {
		case "user", "item":
			if it.ID == nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("entry %d: kind %q needs \"id\"", k, it.Kind))
				return
			}
		case "pair":
			if it.User == nil || it.Item == nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("entry %d: kind \"pair\" needs \"user\" and \"item\"", k))
				return
			}
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("entry %d: unknown kind %q (want user, item or pair)", k, it.Kind))
			return
		}
	}
	ix := s.index(w)
	if ix == nil {
		return
	}
	out := make([]any, len(items))
	for k, it := range items {
		switch it.Kind {
		case "user", "item":
			out[k] = nodeResponse(ix, it.Kind, *it.ID)
		case "pair":
			out[k] = pairResponse(ix, *it.User, *it.Item)
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	ix := s.store.Current()
	h := HealthResponse{Status: "serving", AgeMS: -1}
	if ix == nil {
		h.Status = "empty"
	} else {
		h.Epoch = ix.Epoch()
		h.Groups = ix.NumGroups()
		h.AgeMS = time.Since(ix.At()).Milliseconds()
		h.Partial = ix.Partial()
	}
	if s.degraded != nil && s.degraded() {
		h.Degraded = true
		h.Status = "degraded"
	}
	writeJSON(w, h)
}

// parseID parses a decimal uint32 node ID.
func parseID(s string) (uint32, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, errors.Unwrap(err) // strip the "strconv.ParseUint" prefix noise
	}
	return uint32(v), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	data, _ := json.Marshal(errorResponse{Error: msg})
	w.Write(append(data, '\n'))
}
