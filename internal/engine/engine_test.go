package engine

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
)

// pathGraph builds u0—v0—u1—v1—u2 with unit weights.
func pathGraph() *bipartite.Graph {
	b := bipartite.NewBuilder(3, 2)
	b.Add(0, 0, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1)
	b.Add(2, 1, 1)
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 2); err == nil {
		t.Error("expected error for negative vertex count")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("expected error for zero workers")
	}
	e, err := New(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumWorkers() != 2 {
		t.Errorf("workers clamped to %d, want 2", e.NumWorkers())
	}
}

func TestDegreeProgram(t *testing.T) {
	g := pathGraph()
	a := NewGraphAdapter(g)
	for _, workers := range []int{1, 2, 4} {
		e, err := New(a.NumVertices(), workers)
		if err != nil {
			t.Fatal(err)
		}
		p := NewDegreeProgram(a)
		e.Run(p, 10)
		// Users 0,1,2 strengths 1,2,1; items 0,1 strengths 2,2.
		want := []float64{1, 2, 1, 2, 2}
		if !reflect.DeepEqual(p.Strength, want) {
			t.Errorf("workers=%d: Strength = %v, want %v", workers, p.Strength, want)
		}
	}
}

func TestDegreeProgramMatchesGraph(t *testing.T) {
	g := pathGraph()
	g.RemoveItem(1)
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 3)
	p := NewDegreeProgram(a)
	e.Run(p, 10)
	g.EachLiveUser(func(u bipartite.NodeID) bool {
		if got, want := p.Strength[a.UserVertex(u)], float64(g.UserStrength(u)); got != want {
			t.Errorf("user %d strength = %v, want %v", u, got, want)
		}
		return true
	})
}

func TestLPAConvergesOnTwoComponents(t *testing.T) {
	// Two disjoint 3×3 bicliques must end with exactly two labels.
	b := bipartite.NewBuilder(6, 6)
	for blk := 0; blk < 2; blk++ {
		for u := 0; u < 3; u++ {
			for v := 0; v < 3; v++ {
				b.Add(bipartite.NodeID(blk*3+u), bipartite.NodeID(blk*3+v), 2)
			}
		}
	}
	g := b.Build()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 4)
	p := NewLabelPropagationProgram(a)
	e.Run(p, 20)

	labels := p.Labels()
	blockLabel := func(us, ue, is, ie int) map[uint32]bool {
		set := map[uint32]bool{}
		for u := us; u < ue; u++ {
			set[labels[a.UserVertex(bipartite.NodeID(u))]] = true
		}
		for v := is; v < ie; v++ {
			set[labels[a.ItemVertex(bipartite.NodeID(v))]] = true
		}
		return set
	}
	blkA := blockLabel(0, 3, 0, 3)
	blkB := blockLabel(3, 6, 3, 6)
	if len(blkA) != 1 || len(blkB) != 1 {
		t.Fatalf("blocks not label-uniform: %v %v", blkA, blkB)
	}
	for l := range blkA {
		if blkB[l] {
			t.Error("disconnected blocks share a label")
		}
	}
}

func TestLPADeterministicAcrossWorkerCounts(t *testing.T) {
	b := bipartite.NewBuilder(20, 20)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if (u+v)%3 == 0 {
				b.Add(bipartite.NodeID(u), bipartite.NodeID(v), uint32(1+(u*v)%5))
			}
		}
	}
	g := b.Build()
	var ref []uint32
	for _, workers := range []int{1, 2, 7} {
		a := NewGraphAdapter(g)
		e, _ := New(a.NumVertices(), workers)
		p := NewLabelPropagationProgram(a)
		e.Run(p, 20)
		labels := append([]uint32(nil), p.Labels()...)
		if ref == nil {
			ref = labels
		} else if !reflect.DeepEqual(ref, labels) {
			t.Errorf("workers=%d: labels differ from single-worker run", workers)
		}
	}
}

func TestRunHaltsWithoutMessages(t *testing.T) {
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	p := NewDegreeProgram(a)
	steps := e.Run(p, 100)
	if steps > 3 {
		t.Errorf("degree program took %d supersteps, want ≤ 3", steps)
	}
}

func TestRunRespectsMaxSupersteps(t *testing.T) {
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	p := &chattyProgram{adapter: a}
	steps := e.Run(p, 5)
	if steps != 5 {
		t.Errorf("ran %d supersteps, want exactly the max 5", steps)
	}
}

// chattyProgram never stops talking: it exercises the superstep cap.
type chattyProgram struct {
	adapter *GraphAdapter
}

func (p *chattyProgram) Init(VertexID) {}

func (p *chattyProgram) Compute(ctx *Context, v VertexID, _ []float64) {
	p.adapter.EachNeighbor(v, func(nbr VertexID, _ uint32) bool {
		ctx.Send(nbr, 1)
		return true
	})
	ctx.VoteHalt(v)
}

func TestEmptyEngine(t *testing.T) {
	e, err := New(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := bipartite.NewGraph(0, 0)
	p := NewDegreeProgram(NewGraphAdapter(g))
	if steps := e.Run(p, 10); steps > 1 {
		t.Errorf("empty engine ran %d supersteps", steps)
	}
}

func TestGraphAdapterMapping(t *testing.T) {
	g := pathGraph()
	a := NewGraphAdapter(g)
	if a.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", a.NumVertices())
	}
	if !a.IsUser(2) || a.IsUser(3) {
		t.Error("IsUser boundary wrong")
	}
	if a.Item(a.ItemVertex(1)) != 1 {
		t.Error("item round trip failed")
	}
	if a.User(a.UserVertex(2)) != 2 {
		t.Error("user round trip failed")
	}
}
