package engine

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
)

func runComponents(t *testing.T, g *bipartite.Graph, workers int) *ComponentsProgram {
	t.Helper()
	a := NewGraphAdapter(g)
	e, err := New(a.NumVertices(), workers)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterAggregator(SumAggregator(ChangesAggregator))
	p := NewComponentsProgram(a)
	e.Run(p, 200)
	return p
}

func TestComponentsProgramMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := bipartite.NewBuilder(60, 60)
	for e := 0; e < 150; e++ {
		b.Add(bipartite.NodeID(rng.Intn(60)), bipartite.NodeID(rng.Intn(60)), 1)
	}
	g := b.Build()
	g.RemoveUser(3)
	g.RemoveItem(7)

	p := runComponents(t, g, 4)
	users, items := p.Components()

	// Engine components must induce exactly the same partition as the
	// sequential BFS. Build membership maps both ways and compare.
	seq := bipartite.ConnectedComponents(g)
	seqComp := map[string]int{} // "u3" / "i7" → component index
	for i, c := range seq {
		for _, u := range c.Users {
			seqComp[key(true, u)] = i
		}
		for _, v := range c.Items {
			seqComp[key(false, v)] = i
		}
	}
	engComp := map[string]uint32{}
	for label, us := range users {
		for _, u := range us {
			engComp[key(true, u)] = label
		}
	}
	for label, vs := range items {
		for _, v := range vs {
			engComp[key(false, v)] = label
		}
	}
	if len(engComp) != len(seqComp) {
		t.Fatalf("engine labeled %d vertices, sequential found %d", len(engComp), len(seqComp))
	}
	// Two vertices share a sequential component iff they share an engine
	// label.
	keys := make([]string, 0, len(seqComp))
	for k := range seqComp {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			same := seqComp[keys[i]] == seqComp[keys[j]]
			sameEng := engComp[keys[i]] == engComp[keys[j]]
			if same != sameEng {
				t.Fatalf("vertices %s and %s: sequential same=%v, engine same=%v",
					keys[i], keys[j], same, sameEng)
			}
		}
	}
}

func key(user bool, id bipartite.NodeID) string {
	prefix := "i"
	if user {
		prefix = "u"
	}
	return prefix + string(rune(id))
}

func TestComponentsProgramTwoBlocks(t *testing.T) {
	b := bipartite.NewBuilder(6, 6)
	for blk := 0; blk < 2; blk++ {
		for u := 0; u < 3; u++ {
			for v := 0; v < 3; v++ {
				b.Add(bipartite.NodeID(blk*3+u), bipartite.NodeID(blk*3+v), 1)
			}
		}
	}
	p := runComponents(t, b.Build(), 3)
	users, _ := p.Components()
	if len(users) != 2 {
		t.Fatalf("got %d components with users, want 2", len(users))
	}
}

func TestComponentsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := bipartite.NewBuilder(40, 40)
	for e := 0; e < 120; e++ {
		b.Add(bipartite.NodeID(rng.Intn(40)), bipartite.NodeID(rng.Intn(40)), 1)
	}
	g := b.Build()
	var ref []uint32
	for _, workers := range []int{1, 3, 8} {
		p := runComponents(t, g, workers)
		if ref == nil {
			ref = append([]uint32(nil), p.Labels...)
			continue
		}
		for v, l := range p.Labels {
			if ref[v] != l {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, v, l, ref[v])
			}
		}
	}
}

func TestAggregatorSum(t *testing.T) {
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, err := New(a.NumVertices(), 2)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterAggregator(SumAggregator(ChangesAggregator))
	p := NewComponentsProgram(a)
	e.Run(p, 50)
	// After convergence the last superstep has zero changes.
	if got := e.AggregatorValue(ChangesAggregator); got != 0 {
		t.Errorf("final change count = %v, want 0", got)
	}
}

func TestAggregatorKinds(t *testing.T) {
	e, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterAggregator(SumAggregator("s"))
	e.RegisterAggregator(MaxAggregator("max"))
	e.RegisterAggregator(MinAggregator("min"))
	p := &aggProgram{}
	e.Run(p, 2)
	if got := e.AggregatorValue("s"); got != 0+1+2+3 {
		t.Errorf("sum = %v, want 6", got)
	}
	if got := e.AggregatorValue("max"); got != 3 {
		t.Errorf("max = %v, want 3", got)
	}
	if got := e.AggregatorValue("min"); got != 0 {
		t.Errorf("min = %v, want 0", got)
	}
	if got := e.AggregatorValue("unknown"); got != 0 {
		t.Errorf("unknown aggregator = %v, want 0", got)
	}
}

// aggProgram contributes each vertex's ID to three aggregators every
// superstep and never halts (the superstep cap stops it), so the final
// published values reflect the last full superstep.
type aggProgram struct{}

func (*aggProgram) Init(VertexID) {}

func (*aggProgram) Compute(ctx *Context, v VertexID, _ []float64) {
	ctx.Aggregate("s", float64(v))
	ctx.Aggregate("max", float64(v))
	ctx.Aggregate("min", float64(v))
	ctx.Aggregate("unregistered", 1) // must be a no-op
}
