package engine

import (
	"fmt"
	"testing"

	"repro/internal/synth"
)

// BenchmarkLPAWorkers measures the engine's LPA across worker counts — the
// Grape "number of workers" knob.
func BenchmarkLPAWorkers(b *testing.B) {
	ds := synth.MustGenerate(synth.SmallConfig())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := NewGraphAdapter(ds.Graph)
				e, err := New(a.NumVertices(), workers)
				if err != nil {
					b.Fatal(err)
				}
				p := NewLabelPropagationProgram(a)
				e.Run(p, 42)
			}
		})
	}
}

func BenchmarkDegreeProgram(b *testing.B) {
	ds := synth.MustGenerate(synth.SmallConfig())
	a := NewGraphAdapter(ds.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(a.NumVertices(), 4)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(NewDegreeProgram(a), 4)
	}
}

func BenchmarkComponentsProgram(b *testing.B) {
	ds := synth.MustGenerate(synth.SmallConfig())
	a := NewGraphAdapter(ds.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(a.NumVertices(), 4)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(NewComponentsProgram(a), 200)
	}
}
