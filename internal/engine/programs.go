package engine

// Built-in vertex programs. Programs keep per-vertex state in slices indexed
// by vertex ID; Compute runs concurrently across workers but each vertex
// slot is only touched by its owning worker, so no locking is needed.
// VoteHalt must only be called for the vertex currently being computed.

// DegreeProgram computes every vertex's weighted degree (total incident
// click weight) in one message round: superstep 0 sends each edge weight to
// the neighbor, superstep 1 sums the inbox.
type DegreeProgram struct {
	Adapter *GraphAdapter
	// Strength[v] holds the result after the engine halts.
	Strength []float64
}

// NewDegreeProgram prepares a degree program over the adapter.
func NewDegreeProgram(a *GraphAdapter) *DegreeProgram {
	return &DegreeProgram{Adapter: a, Strength: make([]float64, a.NumVertices())}
}

// Init implements Program.
func (p *DegreeProgram) Init(v VertexID) { p.Strength[v] = 0 }

// Compute implements Program.
func (p *DegreeProgram) Compute(ctx *Context, v VertexID, inbox []float64) {
	switch ctx.Superstep {
	case 0:
		if p.Adapter.Alive(v) {
			p.Adapter.EachNeighbor(v, func(nbr VertexID, w uint32) bool {
				ctx.Send(nbr, float64(w))
				return true
			})
		}
		ctx.VoteHalt(v)
	default:
		for _, m := range inbox {
			p.Strength[v] += m
		}
		ctx.VoteHalt(v)
	}
}

// LabelPropagationProgram runs semi-synchronous label propagation: every
// vertex starts with a unique label (its own ID), users update on odd
// supersteps and items on even supersteps, each adopting the neighbor label
// carried by the greatest total incident click weight (ties toward the
// smaller label). The side alternation avoids the label oscillation that
// plain synchronous LPA exhibits on bipartite graphs.
//
// Labels are double-buffered: Compute reads the labels published at the
// last barrier (cur) and writes only its own slot of next; EndSuperstep
// publishes next and checks convergence (two consecutive change-free side
// rounds). One paper "round" is two supersteps, so run the engine with
// 2×max_round+2 supersteps for the paper's max_round = 20.
type LabelPropagationProgram struct {
	Adapter *GraphAdapter
	cur     []uint32
	next    []uint32

	changed []bool // per-vertex change flag for the current superstep
	quiet   int
	done    bool
}

// NewLabelPropagationProgram prepares an LPA program over the adapter.
func NewLabelPropagationProgram(a *GraphAdapter) *LabelPropagationProgram {
	n := a.NumVertices()
	return &LabelPropagationProgram{
		Adapter: a,
		cur:     make([]uint32, n),
		next:    make([]uint32, n),
		changed: make([]bool, n),
	}
}

// Labels returns the label of each vertex as of the last completed
// superstep.
func (p *LabelPropagationProgram) Labels() []uint32 { return p.cur }

// Init implements Program: unique initial labels.
func (p *LabelPropagationProgram) Init(v VertexID) {
	p.cur[v] = v
	p.next[v] = v
	p.changed[v] = false
}

// Compute implements Program.
func (p *LabelPropagationProgram) Compute(ctx *Context, v VertexID, inbox []float64) {
	if p.done || !p.Adapter.Alive(v) {
		ctx.VoteHalt(v)
		return
	}
	if ctx.Superstep == 0 {
		return // stay active; rounds begin at superstep 1
	}
	userTurn := ctx.Superstep%2 == 1
	if p.Adapter.IsUser(v) != userTurn {
		return // not this side's turn; stay active
	}

	tally := map[uint32]float64{}
	p.Adapter.EachNeighbor(v, func(nbr VertexID, w uint32) bool {
		tally[p.cur[nbr]] += float64(w)
		return true
	})
	if len(tally) == 0 {
		return
	}
	best := p.cur[v]
	bestW := -1.0
	for label, w := range tally {
		if w > bestW || (w == bestW && label < best) {
			best, bestW = label, w
		}
	}
	p.next[v] = best
	p.changed[v] = best != p.cur[v]
}

// EndSuperstep publishes the labels written this superstep and detects
// convergence: once both sides pass a full round without changes, every
// vertex votes to halt on its next turn.
func (p *LabelPropagationProgram) EndSuperstep(step int) {
	changes := 0
	for v, ch := range p.changed {
		if ch {
			changes++
			p.changed[v] = false
		}
	}
	copy(p.cur, p.next)
	if step == 0 {
		return
	}
	if changes == 0 {
		p.quiet++
	} else {
		p.quiet = 0
	}
	if p.quiet >= 2 {
		p.done = true
	}
}
