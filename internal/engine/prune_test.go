package engine

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
)

func runCorePrune(t *testing.T, g *bipartite.Graph, minU, minI, workers int) *CorePruneProgram {
	t.Helper()
	a := NewGraphAdapter(g)
	e, err := New(a.NumVertices(), workers)
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorePruneProgram(a, minU, minI)
	e.Run(p, a.NumVertices()+2)
	return p
}

// sequentialCorePrune computes the reference fixpoint by repeated scanning.
func sequentialCorePrune(g *bipartite.Graph, minU, minI int) *bipartite.Graph {
	work := g.Clone()
	for {
		changed := false
		work.EachLiveUser(func(u bipartite.NodeID) bool {
			if work.UserDegree(u) < minU {
				work.RemoveUser(u)
				changed = true
			}
			return true
		})
		work.EachLiveItem(func(v bipartite.NodeID) bool {
			if work.ItemDegree(v) < minI {
				work.RemoveItem(v)
				changed = true
			}
			return true
		})
		if !changed {
			return work
		}
	}
}

func TestCorePruneProgramCascades(t *testing.T) {
	// A path graph fully dissolves under min degree 2.
	b := bipartite.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		b.Add(bipartite.NodeID(i), bipartite.NodeID(i), 1)
		if i+1 < 5 {
			b.Add(bipartite.NodeID(i+1), bipartite.NodeID(i), 1)
		}
	}
	p := runCorePrune(t, b.Build(), 2, 2, 3)
	users, items := p.Survivors()
	if len(users) != 0 || len(items) != 0 {
		t.Errorf("path survived: %d users, %d items", len(users), len(items))
	}
}

func TestCorePruneProgramKeepsCore(t *testing.T) {
	// A 4×4 biclique with pendant vertices: the biclique survives min
	// degree 3, the pendants do not.
	b := bipartite.NewBuilder(6, 6)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	b.Add(4, 0, 1) // pendant user
	b.Add(0, 4, 1) // pendant item
	p := runCorePrune(t, b.Build(), 3, 3, 2)
	users, items := p.Survivors()
	if len(users) != 4 || len(items) != 4 {
		t.Errorf("survivors = %d users / %d items, want 4/4", len(users), len(items))
	}
}

func TestCorePruneProgramMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := bipartite.NewBuilder(50, 50)
		for e := 0; e < 300; e++ {
			b.Add(bipartite.NodeID(rng.Intn(50)), bipartite.NodeID(rng.Intn(50)), 1)
		}
		g := b.Build()
		minU, minI := 2+rng.Intn(3), 2+rng.Intn(3)

		ref := sequentialCorePrune(g, minU, minI)
		p := runCorePrune(t, g, minU, minI, 4)
		users, items := p.Survivors()

		if len(users) != ref.LiveUsers() || len(items) != ref.LiveItems() {
			t.Fatalf("seed %d: engine survivors %d/%d, sequential %d/%d",
				seed, len(users), len(items), ref.LiveUsers(), ref.LiveItems())
		}
		for _, u := range users {
			if !ref.UserAlive(u) {
				t.Fatalf("seed %d: engine kept user %d the reference pruned", seed, u)
			}
		}
		for _, v := range items {
			if !ref.ItemAlive(v) {
				t.Fatalf("seed %d: engine kept item %d the reference pruned", seed, v)
			}
		}
	}
}

func TestCorePruneProgramRespectsDeadVertices(t *testing.T) {
	b := bipartite.NewBuilder(4, 4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			b.Add(bipartite.NodeID(u), bipartite.NodeID(v), 1)
		}
	}
	g := b.Build()
	g.RemoveUser(0)
	p := runCorePrune(t, g, 2, 2, 2)
	users, _ := p.Survivors()
	for _, u := range users {
		if u == 0 {
			t.Error("dead user resurrected by prune program")
		}
	}
}
