package engine

// NaiveProgram runs the paper's Algorithm 1 (the naive detector's item
// pass) as a two-superstep vertex program, the shape its MaxCompute
// deployment takes: superstep 0, every user computes Alpha — its total
// clicks on hot items — locally and mails it to each neighboring item;
// superstep 1, every item sums its inbox into a risk score and flags
// itself when the score exceeds T_risk.
type NaiveProgram struct {
	Adapter *GraphAdapter
	// Hot[v] marks hot items (by item NodeID).
	Hot []bool
	// TRisk is the flagging threshold.
	TRisk float64

	// Alpha[u] (by user NodeID) and Risk/Flagged (by item NodeID) hold
	// the results after the engine halts.
	Alpha   []float64
	Risk    []float64
	Flagged []bool
}

// NewNaiveProgram prepares the program.
func NewNaiveProgram(a *GraphAdapter, hot []bool, tRisk float64) *NaiveProgram {
	return &NaiveProgram{
		Adapter: a,
		Hot:     hot,
		TRisk:   tRisk,
		Alpha:   make([]float64, a.G.NumUsers()),
		Risk:    make([]float64, a.G.NumItems()),
		Flagged: make([]bool, a.G.NumItems()),
	}
}

// Init implements Program.
func (p *NaiveProgram) Init(v VertexID) {
	if p.Adapter.IsUser(v) {
		p.Alpha[p.Adapter.User(v)] = 0
	} else {
		item := p.Adapter.Item(v)
		p.Risk[item] = 0
		p.Flagged[item] = false
	}
}

// Compute implements Program.
func (p *NaiveProgram) Compute(ctx *Context, v VertexID, inbox []float64) {
	if !p.Adapter.Alive(v) {
		ctx.VoteHalt(v)
		return
	}
	switch {
	case ctx.Superstep == 0 && p.Adapter.IsUser(v):
		u := p.Adapter.User(v)
		var alpha float64
		p.Adapter.EachNeighbor(v, func(nbr VertexID, w uint32) bool {
			if p.Hot[p.Adapter.Item(nbr)] {
				alpha += float64(w)
			}
			return true
		})
		p.Alpha[u] = alpha
		if alpha > 0 {
			p.Adapter.EachNeighbor(v, func(nbr VertexID, _ uint32) bool {
				ctx.Send(nbr, alpha)
				return true
			})
		}
	case ctx.Superstep == 1 && !p.Adapter.IsUser(v):
		item := p.Adapter.Item(v)
		var risk float64
		for _, a := range inbox {
			risk += a
		}
		p.Risk[item] = risk
		p.Flagged[item] = !p.Hot[item] && risk > p.TRisk
	}
	ctx.VoteHalt(v)
}
