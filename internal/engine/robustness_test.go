package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/faultinject"
)

// TestRunContextCancelBetweenSupersteps: a cancel armed at the superstep
// checkpoint stops the run at a superstep boundary with the context's
// error and the steps-so-far count.
func TestRunContextCancelBetweenSupersteps(t *testing.T) {
	defer faultinject.Reset()
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	faultinject.Arm("engine.superstep", faultinject.Fault{Do: func() {
		calls++
		if calls == 2 {
			cancel()
		}
	}})

	steps, err := e.RunContext(ctx, &chattyProgram{adapter: a}, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if steps != 1 {
		t.Errorf("ran %d supersteps before the cancel, want 1", steps)
	}
}

// TestRunContextWorkerPanicIsStageError: a panic inside a worker goroutine
// joins the barrier (no goroutine leak) and surfaces as a *detect.StageError
// from RunContext, never as a crash.
func TestRunContextWorkerPanicIsStageError(t *testing.T) {
	defer faultinject.Reset()
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 4)
	faultinject.Arm("engine.worker", faultinject.Fault{Panic: "vertex bug", Times: 1})

	before := runtime.NumGoroutine()
	_, err := e.RunContext(context.Background(), &chattyProgram{adapter: a}, 100)
	var se *detect.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *detect.StageError", err)
	}
	if se.Stage != "engine.superstep" {
		t.Errorf("StageError.Stage = %q, want engine.superstep", se.Stage)
	}
	if se.Panic != "vertex bug" {
		t.Errorf("StageError.Panic = %v, want the injected value", se.Panic)
	}
	waitForGoroutines(t, before)
}

// TestRunContextAbortedRunDoesNotReplayStaleMessages: after a panic-aborted
// superstep, a fresh run on the same engine must not deliver the aborted
// round's half-built outboxes.
func TestRunContextAbortedRunDoesNotReplayStaleMessages(t *testing.T) {
	defer faultinject.Reset()
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	// Let the workers send in superstep 0, then panic in superstep 1.
	faultinject.Arm("engine.worker", faultinject.Fault{Panic: "late bug", Times: 1})
	if _, err := e.RunContext(context.Background(), &chattyProgram{adapter: a}, 100); err == nil {
		t.Fatal("expected the injected panic to abort the run")
	}
	faultinject.Reset()

	// A clean program on the same engine: the degree program converges in
	// ≤ 3 supersteps; stale chatty messages would reactivate vertices and
	// distort the degrees.
	p := NewDegreeProgram(a)
	steps, err := e.RunContext(context.Background(), p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps > 3 {
		t.Errorf("post-abort run took %d supersteps; stale messages replayed", steps)
	}
}

// TestRunPanicsForLegacyCallers: the ctx-less Run keeps its historic
// crash-on-bug semantics, but from the calling goroutine, where tests (and
// defensive callers) can recover it.
func TestRunPanicsForLegacyCallers(t *testing.T) {
	defer faultinject.Reset()
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	faultinject.Arm("engine.worker", faultinject.Fault{Panic: "bug", Times: 1})

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic on a worker panic")
		}
		if _, ok := r.(*detect.StageError); !ok {
			t.Errorf("Run panicked with %T, want *detect.StageError", r)
		}
	}()
	e.Run(&chattyProgram{adapter: a}, 100)
}

// waitForGoroutines retries briefly until the goroutine count returns to
// the baseline (the runtime reaps worker goroutines asynchronously).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

// TestRunContextCancelMidSuperstepDiscardsRound: a cancel landing while
// workers are computing surfaces at that round's barrier — the half-built
// outboxes are never routed, the mailboxes are cleared, and EndSuperstep
// does not run on the partial round.
func TestRunContextCancelMidSuperstepDiscardsRound(t *testing.T) {
	defer faultinject.Reset()
	g := pathGraph()
	a := NewGraphAdapter(g)
	e, _ := New(a.NumVertices(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The engine.worker site fires inside the worker goroutines, after the
	// loop-top ctx check has already passed for this round.
	faultinject.Arm("engine.worker", faultinject.Fault{Do: cancel, Times: 1})

	p := &endRecordingProgram{chattyProgram: chattyProgram{adapter: a}}
	_, err := e.RunContext(ctx, p, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p.ends != 0 {
		t.Errorf("EndSuperstep ran %d times on the aborted round's partial state", p.ends)
	}
	for v := range e.mailboxes {
		if len(e.mailboxes[v]) != 0 {
			t.Fatalf("mailbox %d kept the aborted round's messages", v)
		}
	}
	for _, w := range e.workers {
		for i := range w.outbox {
			if len(w.outbox[i]) != 0 {
				t.Fatalf("worker %d outbox %d survived the abort", w.id, i)
			}
		}
	}
}

// endRecordingProgram counts EndSuperstep barrier callbacks.
type endRecordingProgram struct {
	chattyProgram
	ends int
}

func (p *endRecordingProgram) EndSuperstep(int) { p.ends++ }
