package engine

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/obs"
)

// TestEngineObservability checks that a Run records supersteps, routed
// messages and an engine.run span with per-superstep children.
func TestEngineObservability(t *testing.T) {
	b := bipartite.NewBuilder(0, 0)
	for u := uint32(0); u < 4; u++ {
		for v := uint32(0); v < 3; v++ {
			b.Add(u, v, u+v+1)
		}
	}
	a := NewGraphAdapter(b.Build())

	o := obs.NewObserver("engine-test")
	e, err := New(a.NumVertices(), 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Obs = o
	steps := e.Run(NewDegreeProgram(a), 10)

	if got := o.Counter("engine.supersteps").Value(); got != int64(steps) {
		t.Errorf("engine.supersteps = %d, want %d", got, steps)
	}
	if got := o.Counter("engine.messages_routed").Value(); got != 2*4*3 {
		// every edge sends its weight both ways in superstep 0
		t.Errorf("engine.messages_routed = %d, want %d", got, 2*4*3)
	}
	if got := o.Counter("engine.runs").Value(); got != 1 {
		t.Errorf("engine.runs = %d, want 1", got)
	}

	o.Trace.Finish()
	run := o.Trace.Export().Find("engine.run")
	if run == nil {
		t.Fatal("no engine.run span recorded")
	}
	var supersteps int
	for _, c := range run.Children {
		if c.Name == "superstep" {
			supersteps++
		}
	}
	if supersteps != steps {
		t.Errorf("trace has %d superstep spans, want %d", supersteps, steps)
	}
}

// TestEngineNilObserver pins that an engine without an observer still runs
// (the nil path is the default everywhere).
func TestEngineNilObserver(t *testing.T) {
	b := bipartite.NewBuilder(0, 0)
	b.Add(0, 0, 1)
	a := NewGraphAdapter(b.Build())
	e, err := New(a.NumVertices(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDegreeProgram(a)
	if steps := e.Run(p, 10); steps < 2 {
		t.Errorf("degree program halted after %d supersteps", steps)
	}
	if p.Strength[0] != 1 {
		t.Errorf("strength = %v", p.Strength[0])
	}
}
